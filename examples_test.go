package repro_test

// Godoc-visible, executable versions of the headline examples/ programs.
// Each Example mirrors one runnable walkthrough — examples/quickstart,
// examples/engine, examples/service, examples/explore-service — compacted
// to a deterministic transcript, so `go test ./...` executes the
// documentation and it cannot rot. The examples/ directories remain the
// narrated `go run`-able versions.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/server"
	"repro/internal/stats"
)

const pdeModelSrc = `
incr load.causes_walk;
do   LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => incr load.pde$_miss;
};
done;
`

func pdeSet() *counters.Set {
	return counters.NewSet("load.causes_walk", "load.pde$_miss")
}

// synthObs synthesises an observation hovering around (cw, pm): cw >= pm
// is consistent with the PDE-cache model, cw < pm refutes it (the paper's
// Haswell anomaly).
func synthObs(label string, cw, pm float64, samples int, seed int64) *counters.Observation {
	o := counters.NewObservation(label, pdeSet())
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < samples; i++ {
		o.Append([]float64{cw + rng.NormFloat64(), pm + rng.NormFloat64()})
	}
	return o
}

// Example_quickstart is the paper's §1 walkthrough: write a mental model
// of the PDE cache in the DSL, deduce its model constraints, and test it
// against a consistent observation and the pde$_miss > causes_walk
// anomaly that refutes it. (examples/quickstart is the runnable version.)
func Example_quickstart() {
	model, err := core.ModelFromDSL("pde-cache", pdeModelSrc, pdeSet())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model has %d μpaths\n", model.NumPaths())
	h, err := model.Constraints()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deduced model constraints:")
	for _, k := range h.All() {
		fmt.Printf("  %s\n", k)
	}
	for _, tc := range []struct {
		label  string
		cw, pm float64
	}{
		{"well-behaved", 1000, 700},
		{"haswell-anomaly", 700, 1000},
	} {
		v, err := model.TestObservation(synthObs(tc.label, tc.cw, tc.pm, 200, 1),
			core.DefaultConfidence, stats.Correlated, true)
		if err != nil {
			log.Fatal(err)
		}
		if v.Feasible {
			fmt.Printf("%s: FEASIBLE\n", tc.label)
			continue
		}
		fmt.Printf("%s: INFEASIBLE, violating:\n", tc.label)
		for _, k := range v.Violations {
			fmt.Printf("  %s\n", k)
		}
	}
	// Output:
	// model has 2 μpaths
	// deduced model constraints:
	//   load.pde$_miss <= load.causes_walk
	//   0 <= load.pde$_miss
	// well-behaved: FEASIBLE
	// haswell-anomaly: INFEASIBLE, violating:
	//   load.pde$_miss <= load.causes_walk
}

// Example_engine drives the batched feasibility engine: a Session bound to
// one model evaluates a whole corpus through the worker pool, aggregates
// the refutations, and — with StopOnInfeasible — stops a streamed run at
// the first refutation. (examples/engine is the runnable version.)
func Example_engine() {
	model, err := core.ModelFromDSL("pde-cache", pdeModelSrc, pdeSet())
	if err != nil {
		log.Fatal(err)
	}
	corpus := make([]*counters.Observation, 0, 20)
	for i := 0; i < 20; i++ {
		cw, pm := 1000.0, 700.0
		if i%10 == 9 {
			cw, pm = 700.0, 1000.0 // anomalous
		}
		corpus = append(corpus, synthObs(fmt.Sprintf("run-%02d", i), cw, pm, 400, int64(i)))
	}
	eng := engine.New(engine.WithWorkers(4))
	defer eng.Close()
	sess, err := eng.NewSession(model, engine.Config{IdentifyViolations: true})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Evaluate(context.Background(), corpus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d/%d observations refute the model\n", res.Infeasible, res.Total)
	var names []string
	for k := range res.ViolatedConstraints {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Printf("  violated %d times: %s\n", res.ViolatedConstraints[k], k)
	}

	// Early exit: StopOnInfeasible cancels the rest of the run as soon as
	// one refutation lands.
	early, err := eng.NewSession(model, engine.Config{StopOnInfeasible: true})
	if err != nil {
		log.Fatal(err)
	}
	in := make(chan *counters.Observation, len(corpus))
	for _, o := range corpus {
		in <- o
	}
	close(in)
	partial, err := early.EvaluateStream(context.Background(), in).Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("early exit found a refutation before finishing: %v\n",
		partial.Infeasible >= 1 && partial.Total < len(corpus))
	// Output:
	// corpus: 2/20 observations refute the model
	//   violated 2 times: load.pde$_miss <= load.causes_walk
	// early exit found a refutation before finishing: true
}

// Example_service drives the counterpointd HTTP/JSON API in-process:
// register a model from DSL source, read back its deduced constraints,
// and evaluate a corpus for an aggregate verdict. (examples/service is
// the runnable version.)
func Example_service() {
	eng := engine.New()
	defer eng.Close()
	ts := httptest.NewServer(server.New(server.Options{
		Engine:   eng,
		Defaults: engine.Config{IdentifyViolations: true},
	}))
	defer ts.Close()

	body, _ := json.Marshal(map[string]string{"name": "pde-cache", "source": pdeModelSrc})
	resp, err := http.Post(ts.URL+"/v1/models", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var summary struct {
		Name     string   `json:"name"`
		Counters []string `json:"counters"`
		NumPaths int      `json:"num_paths"`
	}
	json.NewDecoder(resp.Body).Decode(&summary)
	resp.Body.Close()
	fmt.Printf("registered %q: %d μpaths over %v\n", summary.Name, summary.NumPaths, summary.Counters)

	resp, err = http.Get(ts.URL + "/v1/models/pde-cache")
	if err != nil {
		log.Fatal(err)
	}
	var desc struct {
		Constraints []string `json:"constraints"`
	}
	json.NewDecoder(resp.Body).Decode(&desc)
	resp.Body.Close()
	fmt.Printf("deduced constraints: %v\n", desc.Constraints)

	payload, _ := json.Marshal(map[string]any{"observations": []*counters.Observation{
		synthObs("run-0", 1000, 700, 200, 0),
		synthObs("run-1", 1000, 700, 200, 1),
		synthObs("anomalous", 700, 1000, 200, 99),
	}})
	resp, err = http.Post(ts.URL+"/v1/models/pde-cache/evaluate", "application/json", bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	var agg struct {
		Total      int `json:"total"`
		Infeasible int `json:"infeasible"`
	}
	json.NewDecoder(resp.Body).Decode(&agg)
	resp.Body.Close()
	fmt.Printf("corpus: %d/%d observations refute the model\n", agg.Infeasible, agg.Total)
	// Output:
	// registered "pde-cache": 2 μpaths over [load.causes_walk load.pde$_miss]
	// deduced constraints: [load.pde$_miss <= load.causes_walk 0 <= load.pde$_miss]
	// corpus: 1/3 observations refute the model
}

// Example_exploreService submits a guided exploration job over HTTP — a
// feature-conditional DSL template plus a corpus exhibiting the Figure 6
// anomaly — streams its progress events, and reads the converged result.
// (examples/explore-service is the runnable version.)
func Example_exploreService() {
	const template = `
do LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => {
        incr load.pde$_miss;
#if abort
        switch Abort { Yes => done; No => pass; };
#endif
    };
};
incr load.causes_walk;
#if doublewalk
switch Double { Yes => incr load.causes_walk; No => pass; };
#endif
done;
`
	eng := engine.New()
	defer eng.Close()
	jm := jobs.NewManager(jobs.Options{})
	defer jm.Close()
	ts := httptest.NewServer(server.New(server.Options{Engine: eng, Jobs: jm}))
	defer ts.Close()

	payload, _ := json.Marshal(map[string]any{
		"source": template,
		"observations": []*counters.Observation{
			synthObs("benign", 500, 300, 200, 1),
			synthObs("anomalous", 200, 500, 200, 2),
		},
	})
	resp, err := http.Post(ts.URL+"/v1/explore", "application/json", bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	var sub struct {
		ID         string   `json:"id"`
		Candidates []string `json:"candidates"`
	}
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	fmt.Printf("submitted %s over candidates %v\n", sub.ID, sub.Candidates)

	// The NDJSON event stream replays history and follows the job live;
	// it closes itself after the terminal event.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev struct {
			Kind string `json:"kind"`
			Data struct {
				Node    *struct{ Key string } `json:"node"`
				Feature string                `json:"feature"`
			} `json:"data"`
		}
		json.Unmarshal(sc.Bytes(), &ev)
		switch ev.Kind {
		case "node-evaluated":
			fmt.Printf("evaluated {%s}\n", ev.Data.Node.Key)
		case "feature-adopted":
			fmt.Printf("adopted %q\n", ev.Data.Feature)
		case "minimal-model":
			fmt.Printf("minimal model {%s}\n", ev.Data.Node.Key)
		}
	}
	resp.Body.Close()

	deadline := time.Now().Add(30 * time.Second)
	var st struct {
		State  string `json:"state"`
		Result struct {
			Final    struct{ Key string }
			Required []string `json:"required"`
		} `json:"result"`
	}
	for {
		resp, err = http.Get(ts.URL + "/v1/jobs/" + sub.ID)
		if err != nil {
			log.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.State == "done" || st.State == "failed" || st.State == "cancelled" || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("job %s: final {%s}, required %v\n", st.State, st.Result.Final.Key, st.Result.Required)
	// Output:
	// submitted j000001 over candidates [abort doublewalk]
	// evaluated {}
	// evaluated {abort}
	// evaluated {doublewalk}
	// adopted "abort"
	// minimal model {abort}
	// job done: final {abort}, required [abort]
}
