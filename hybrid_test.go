package repro

// Solver-equivalence property tests for the two-tier feasibility solver:
// across the full Table 3/5/7 model catalogue evaluated on simulated
// observations, the hybrid (float filter + exact certificate checking +
// exact fallback) must agree verdict-for-verdict with the exact rational
// simplex, and the exact simplex's int64 kernel tableau must agree
// verdict-for-verdict with the pure big.Rat reference tableau. Fallback
// and promotion rates are reported, not hidden (ISSUE 3 and ISSUE 5
// acceptance criteria); randomized-LP equivalence lives in
// internal/floatlp and internal/simplex.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/haswell"
	"repro/internal/pagetable"
	"repro/internal/simplex"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// hybridCorpus simulates a few observations with distinct workload shapes
// so the catalogue models split into feasible and refuted verdicts.
func hybridCorpus(t *testing.T) []*counters.Observation {
	t.Helper()
	type spec struct {
		label    string
		burst    bool
		locality float64
		seed     int64
	}
	specs := []spec{
		{"burst", true, 0.9, 3},
		{"uniform", false, 0.8, 5},
	}
	if !testing.Short() {
		specs = append(specs, spec{"local", false, 0.95, 7})
	}
	var corpus []*counters.Observation
	for _, s := range specs {
		sim := haswell.NewSimulator(haswell.DefaultConfig(pagetable.Page4K))
		var gen workloads.Generator
		var err error
		if s.burst {
			gen, err = workloads.NewRandomBurst(256<<20, 8, s.locality, s.seed)
		} else {
			gen, err = workloads.NewRandom(256<<20, s.locality, s.seed)
		}
		if err != nil {
			t.Fatal(err)
		}
		sim.Step(gen, 8000)
		o := haswell.WithAggregateWalkRef(sim.Observation(gen, 12, 6000))
		o.Label = s.label
		corpus = append(corpus, o)
	}
	return corpus
}

// TestHybridMatchesExactOnCatalogue is the end-to-end equivalence property
// over the paper's model catalogue, pinning BOTH solver equivalences at
// once: the hybrid (float filter + certificates) against the exact tier,
// and the exact tier's int64 kernel tableau against the pure big.Rat
// reference tableau. Zero divergence is required on every verdict; the
// kernel promotion (overflow fallback) rate is reported, never hidden.
func TestHybridMatchesExactOnCatalogue(t *testing.T) {
	models := append(haswell.Table3Models(), haswell.Table7Models()...)
	if testing.Short() {
		models = models[:4]
	} else {
		models = append(models, haswell.Table5Models()...)
	}
	set := haswell.AnalysisSet()
	corpus := hybridCorpus(t)

	kernelWS := simplex.NewWorkspace()
	bigWS := simplex.NewWorkspace()
	bigWS.ForceBigRat = true
	hstats := &core.SolverStats{}
	hybrid := core.NewSolver(hstats)

	var feasible, infeasible int
	var kernelFast, kernelPromoted int
	for _, nf := range models {
		m, err := haswell.BuildModel(nf.Name, nf.Features, set)
		if err != nil {
			t.Fatalf("%s: %v", nf.Name, err)
		}
		for _, o := range corpus {
			r, err := stats.NewRegion(o.Project(set), core.DefaultConfidence, stats.Correlated)
			if err != nil {
				t.Fatalf("%s/%s: %v", nf.Name, o.Label, err)
			}
			p := kernelWS.Prepare(0)
			if err := m.RegionLP(p, r); err != nil {
				t.Fatalf("%s/%s: %v", nf.Name, o.Label, err)
			}
			want := bigWS.SolveStatus(p) == simplex.Optimal
			kernelVerdict := kernelWS.SolveStatus(p) == simplex.Optimal
			if kernelVerdict != want {
				t.Fatalf("%s/%s: int64-kernel verdict %v, big.Rat verdict %v — divergence",
					nf.Name, o.Label, kernelVerdict, want)
			}
			if isKernel, promos := kernelWS.LastSolveKernel(); !isKernel {
				t.Fatalf("%s/%s: default workspace did not use the kernel", nf.Name, o.Label)
			} else if promos == 0 {
				kernelFast++
			} else {
				kernelPromoted++
			}
			got := hybrid.Feasible(p)
			if got != want {
				t.Fatalf("%s/%s: hybrid verdict %v, exact verdict %v — divergence",
					nf.Name, o.Label, got, want)
			}
			if want {
				feasible++
			} else {
				infeasible++
			}
		}
	}
	c := hstats.Snapshot()
	t.Logf("catalogue sweep: %d models × %d observations = %d verdicts (%d feasible, %d infeasible)",
		len(models), len(corpus), feasible+infeasible, feasible, infeasible)
	t.Logf("solver telemetry: %+v (filter hit rate %.0f%%, fallback rate %.0f%%)",
		c, 100*float64(c.FilterHits())/float64(c.Evaluations),
		100*float64(c.ExactFallbacks)/float64(c.Evaluations))
	t.Logf("kernel: %d fast solves, %d promoted solves (promotion rate %.0f%%)",
		kernelFast, kernelPromoted, 100*float64(kernelPromoted)/float64(kernelFast+kernelPromoted))
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("corpus did not split the catalogue (feasible=%d infeasible=%d): property coverage too thin",
			feasible, infeasible)
	}
	if c.FilterHits() == 0 {
		t.Fatal("float filter never certified a verdict across the whole catalogue")
	}
}

// TestWarmMatchesExactOnCatalogue sweeps the warm-start dual simplex over
// the same Table 3/5/7 catalogue: every (model, observation) pair becomes
// a three-step drift sequence (identical constraint rows, drifting
// bounds — the workload warm starts exist for), solved by a fresh
// WarmSolver alongside the exact workspace. The warm protocol seeds on
// the second sighting of a structure, so step 0 primes, step 1 cold-seeds
// and step 2 re-enters the cached basis with dual pivots. Zero divergence
// is required on every verdict the warm solver offers, and the sweep must
// actually exercise warm re-entries (not just declines).
func TestWarmMatchesExactOnCatalogue(t *testing.T) {
	models := append(haswell.Table3Models(), haswell.Table7Models()...)
	if testing.Short() {
		models = models[:4]
	} else {
		models = append(models, haswell.Table5Models()...)
	}
	set := haswell.AnalysisSet()
	corpus := hybridCorpus(t)

	ws := simplex.NewWorkspace()
	var verdicts, warmSolves, coldSeeds, declines int
	var pivots uint64
	for _, nf := range models {
		m, err := haswell.BuildModel(nf.Name, nf.Features, set)
		if err != nil {
			t.Fatalf("%s: %v", nf.Name, err)
		}
		for _, o := range corpus {
			proj := o.Project(set)
			warm := simplex.NewWarmSolver()
			p := simplex.NewProblem(0)
			for step, frac := range []float64{0, 0.001, 0.002} {
				r, err := stats.NewRegion(driftObservation(proj, frac), core.DefaultConfidence, stats.Correlated)
				if err != nil {
					t.Fatalf("%s/%s step %d: %v", nf.Name, o.Label, step, err)
				}
				p.Reset(0)
				if err := m.RegionLP(p, r); err != nil {
					t.Fatalf("%s/%s step %d: %v", nf.Name, o.Label, step, err)
				}
				want := ws.SolveStatus(p) == simplex.Optimal
				got, ok := warm.Feasible(p)
				if !ok {
					declines++
					continue
				}
				verdicts++
				if got != want {
					t.Fatalf("%s/%s step %d: warm verdict %v, exact verdict %v — divergence",
						nf.Name, o.Label, step, got, want)
				}
				if w, piv := warm.LastSolve(); w {
					warmSolves++
					pivots += piv
				} else {
					coldSeeds++
				}
			}
		}
	}
	t.Logf("catalogue warm sweep: %d verdicts compared (%d warm re-entries, %d cold seeds, %d primer declines), 0 diverged; %d dual pivots total",
		verdicts, warmSolves, coldSeeds, declines, pivots)
	if warmSolves == 0 {
		t.Fatal("warm-start path never re-entered a basis across the catalogue sweep")
	}
}
