#!/usr/bin/env bash
# Records the performance baseline the trajectory tracks: runs the key
# feasibility/solver benchmarks with -benchmem and writes both the raw
# harness output (BENCH_results.txt) and a parsed JSON form
# (BENCH_results.json) at the repository root. When a previous
# BENCH_results.json exists, a before/after comparison (% delta per
# benchmark for ns/op and allocs/op) is written to BENCH_compare.txt.
#
# Usage:
#   scripts/bench.sh                 # default benchmark set, -count=1
#   BENCH='FeasibilityLP' scripts/bench.sh
#   COUNT=5 scripts/bench.sh         # repeat for variance estimation
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-FeasibilityLP|Fig9aFeasibility|WalkWarmStart|VerdictCacheHit|SolveWorkspace|SolveFresh|CorpusSession|CorpusPerCall|ExploreSequential|ExploreParallel|SweepGrid|StreamIngest|JournalAppend}"
COUNT="${COUNT:-1}"
TXT=BENCH_results.txt
JSON=BENCH_results.json
COMPARE=BENCH_compare.txt

OLD_JSON=""
if [ -f "${JSON}" ]; then
  OLD_JSON="$(mktemp)"
  cp "${JSON}" "${OLD_JSON}"
fi

{
  echo "# go test -run=NONE -bench '${BENCH}' -benchmem -count=${COUNT}"
  echo "# recorded $(date -u +%Y-%m-%dT%H:%M:%SZ) at $(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  echo "# cores: $(nproc 2>/dev/null || echo unknown) (ExploreParallel vs ExploreSequential measures the frontier-parallel speedup; it needs >=2 cores to show one)"
  go test -run=NONE -bench "${BENCH}" -benchmem -count="${COUNT}" -timeout 60m . ./internal/...
} | tee "${TXT}"

# Parse "BenchmarkName-P  N  ns/op  B/op  allocs/op" lines into JSON.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -f scripts/benchjson.awk "${TXT}" > "${JSON}"

echo "wrote ${TXT} and ${JSON}"

# Before/after comparison against the previous recording.
if [ -n "${OLD_JSON}" ]; then
  scripts/benchcompare.py "${OLD_JSON}" "${JSON}" | tee "${COMPARE}"
  rm -f "${OLD_JSON}"
  echo "wrote ${COMPARE}"
fi
