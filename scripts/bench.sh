#!/usr/bin/env bash
# Records the performance baseline the trajectory tracks: runs the key
# feasibility/solver benchmarks with -benchmem and writes both the raw
# harness output (BENCH_results.txt) and a parsed JSON form
# (BENCH_results.json) at the repository root.
#
# Usage:
#   scripts/bench.sh                 # default benchmark set, -count=1
#   BENCH='FeasibilityLP' scripts/bench.sh
#   COUNT=5 scripts/bench.sh         # repeat for variance estimation
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-FeasibilityLP|Fig9aFeasibility|SolveWorkspace|SolveFresh|CorpusSession|CorpusPerCall|ExploreSequential|ExploreParallel}"
COUNT="${COUNT:-1}"
TXT=BENCH_results.txt
JSON=BENCH_results.json

{
  echo "# go test -run=NONE -bench '${BENCH}' -benchmem -count=${COUNT}"
  echo "# recorded $(date -u +%Y-%m-%dT%H:%M:%SZ) at $(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  echo "# cores: $(nproc 2>/dev/null || echo unknown) (ExploreParallel vs ExploreSequential measures the frontier-parallel speedup; it needs >=2 cores to show one)"
  go test -run=NONE -bench "${BENCH}" -benchmem -count="${COUNT}" -timeout 60m . ./internal/...
} | tee "${TXT}"

# Parse "BenchmarkName-P  N  ns/op  B/op  allocs/op" lines into JSON.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { n = 0 }
/^Benchmark/ && NF >= 3 {
  name = $1; sub(/-[0-9]+$/, "", name)
  iters = $2; ns = ""; bytes = ""; allocs = ""
  for (i = 3; i < NF; i++) {
    if ($(i+1) == "ns/op") ns = $i
    if ($(i+1) == "B/op") bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
  }
  if (ns == "") next
  line = sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
  if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
  if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
  line = line "}"
  results[n++] = line
}
END {
  printf "{\n  \"recorded\": \"%s\",\n  \"benchmarks\": [\n", date
  for (i = 0; i < n; i++) printf "  %s%s\n", results[i], (i < n-1 ? "," : "")
  print "  ]\n}"
}' "${TXT}" > "${JSON}"

echo "wrote ${TXT} and ${JSON}"
