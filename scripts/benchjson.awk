# Parses `go test -bench` output lines
#   BenchmarkName-P  N  ns/op  B/op  allocs/op
# into the BENCH_results.json shape. Invoke with -v date=<iso8601>.
BEGIN { n = 0 }
/^Benchmark/ && NF >= 3 {
  name = $1; sub(/-[0-9]+$/, "", name)
  iters = $2; ns = ""; bytes = ""; allocs = ""
  for (i = 3; i < NF; i++) {
    if ($(i+1) == "ns/op") ns = $i
    if ($(i+1) == "B/op") bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
  }
  if (ns == "") next
  line = sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
  if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
  if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
  line = line "}"
  results[n++] = line
}
END {
  printf "{\n  \"recorded\": \"%s\",\n  \"benchmarks\": [\n", date
  for (i = 0; i < n; i++) printf "  %s%s\n", results[i], (i < n-1 ? "," : "")
  print "  ]\n}"
}
