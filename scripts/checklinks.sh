#!/usr/bin/env bash
# Checks that every relative markdown link in the repo's documentation
# points at a file (or directory) that exists, so README/DESIGN/docs can't
# silently rot as the tree moves under them. External links (scheme://)
# and pure anchors (#...) are left alone — no network access here.
#
# Usage: scripts/checklinks.sh [file.md ...]   (default: the doc set)
set -euo pipefail
cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  files=(README.md DESIGN.md ROADMAP.md docs/*.md)
fi

fail=0
for f in "${files[@]}"; do
  [ -f "$f" ] || { echo "checklinks: $f does not exist"; fail=1; continue; }
  dir=$(dirname "$f")
  # Markdown inline links: [text](target). One link per line after the
  # greps; targets with spaces do not occur in this repo's docs.
  while IFS= read -r target; do
    case "$target" in
      ''|\#*) continue ;;                  # pure anchor
      *://*|mailto:*) continue ;;          # external
    esac
    path="${target%%#*}"                   # strip anchor
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "checklinks: $f links to missing $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "checklinks: FAILED"
  exit 1
fi
echo "checklinks: all relative links resolve (${files[*]})"
