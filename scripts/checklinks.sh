#!/usr/bin/env bash
# Checks that every relative markdown link in the repo's documentation
# points at a file (or directory) that exists, and that links into a
# markdown file with an #anchor name a real heading there (GitHub-style
# slugs), so README/DESIGN/docs can't silently rot as the tree and the
# section headings move under them. External links (scheme://) and pure
# intra-document anchors (#...) are left alone — no network access here.
#
# Usage: scripts/checklinks.sh [file.md ...]   (default: the doc set)
set -euo pipefail
cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  files=(README.md DESIGN.md ROADMAP.md docs/*.md)
fi

# GitHub's heading slug: lowercase, punctuation stripped (backticks,
# parentheses, ...), spaces to hyphens. Headings inside fenced code
# blocks are not headings — shell comments in ```sh blocks would
# otherwise pollute the slug set and mask rot.
slugs() {
  awk '/^```/ { fence = !fence; next }
       !fence && /^#+ / { sub(/^#+ +/, ""); print }' "$1" \
    | tr '[:upper:]' '[:lower:]' \
    | sed -E 's/[^a-z0-9 _-]//g; s/ +/-/g'
}

fail=0
for f in "${files[@]}"; do
  [ -f "$f" ] || { echo "checklinks: $f does not exist"; fail=1; continue; }
  dir=$(dirname "$f")
  # Markdown inline links: [text](target). One link per line after the
  # greps; targets with spaces do not occur in this repo's docs.
  while IFS= read -r target; do
    case "$target" in
      ''|\#*) continue ;;                  # pure anchor
      *://*|mailto:*) continue ;;          # external
    esac
    path="${target%%#*}"                   # strip anchor
    resolved="$dir/$path"
    [ -e "$resolved" ] || resolved="$path"
    if [ ! -e "$resolved" ]; then
      echo "checklinks: $f links to missing $target"
      fail=1
      continue
    fi
    case "$target" in
      *.md\#*)
        anchor="${target#*#}"
        if ! slugs "$resolved" | grep -qxF "$anchor"; then
          echo "checklinks: $f links to missing anchor #$anchor in $path"
          fail=1
        fi
        ;;
    esac
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "checklinks: FAILED"
  exit 1
fi
echo "checklinks: all relative links resolve (${files[*]})"
