#!/usr/bin/env python3
"""Compare two BENCH_results.json recordings benchmark-by-benchmark.

Usage:
    scripts/benchcompare.py OLD.json NEW.json [--guard PATTERN MAXRATIO]
                                              [--guard-ns PATTERN MAXRATIO]

Prints one line per benchmark present in either file with the % delta for
ns/op and allocs/op (negative = improvement).

With --guard, exits non-zero if any benchmark whose name matches the regex
PATTERN regressed its allocs/op by more than MAXRATIO (e.g. 1.2 = +20%) —
CI uses this to keep the exact-path allocation budget honest. --guard-ns
gates ns/op the same way (use it only for benchmarks whose wall time is
dominated by work that cannot vanish into noise, like the warm-start path
vs its cold baseline). Benchmarks present on only one side are reported
but never fail either guard (they are additions or removals, not
regressions).
"""
import json
import re
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {b["name"]: b for b in data.get("benchmarks", [])}


def fmt_delta(old, new):
    if old is None or new is None:
        return "      n/a"
    if old == 0:
        return "     new0" if new else "       0%"
    return f"{100.0 * (new - old) / old:+8.1f}%"


def pop_guard(args, flag):
    if flag not in args:
        return None, None, args
    i = args.index(flag)
    pat = re.compile(args[i + 1])
    ratio = float(args[i + 2])
    return pat, ratio, args[:i] + args[i + 3 :]


def main():
    args = sys.argv[1:]
    guard_pat, guard_ratio, args = pop_guard(args, "--guard")
    ns_pat, ns_ratio, args = pop_guard(args, "--guard-ns")
    if len(args) != 2:
        sys.exit(__doc__)
    old, new = load(args[0]), load(args[1])

    names = sorted(set(old) | set(new))
    width = max(len(n) for n in names) if names else 10
    print(f"{'benchmark':<{width}}  {'ns/op Δ':>9}  {'allocs Δ':>9}")
    failures = []
    for n in names:
        o, w = old.get(n), new.get(n)
        ons = o.get("ns_per_op") if o else None
        wns = w.get("ns_per_op") if w else None
        oal = o.get("allocs_per_op") if o else None
        wal = w.get("allocs_per_op") if w else None
        print(f"{n:<{width}}  {fmt_delta(ons, wns)}  {fmt_delta(oal, wal)}")
        if (
            guard_pat is not None
            and guard_pat.search(n)
            and oal not in (None, 0)
            and wal is not None
            and wal > oal * guard_ratio
        ):
            failures.append((n, "allocs/op", oal, wal, guard_ratio))
        if (
            ns_pat is not None
            and ns_pat.search(n)
            and ons not in (None, 0)
            and wns is not None
            and wns > ons * ns_ratio
        ):
            failures.append((n, "ns/op", ons, wns, ns_ratio))
    if failures:
        print()
        for n, metric, oval, wval, ratio in failures:
            print(
                f"GUARD FAIL: {n} {metric} {oval} -> {wval} "
                f"(> {ratio:g}x budget)",
                file=sys.stderr,
            )
        sys.exit(1)


if __name__ == "__main__":
    main()
