#!/usr/bin/env python3
"""Compare two BENCH_results.json recordings benchmark-by-benchmark.

Usage:
    scripts/benchcompare.py OLD.json NEW.json [--guard PATTERN MAXRATIO]

Prints one line per benchmark present in either file with the % delta for
ns/op and allocs/op (negative = improvement).

With --guard, exits non-zero if any benchmark whose name matches the regex
PATTERN regressed its allocs/op by more than MAXRATIO (e.g. 1.2 = +20%) —
CI uses this to keep the exact-path allocation budget honest. Benchmarks
present on only one side are reported but never fail the guard (they are
additions or removals, not regressions).
"""
import json
import re
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {b["name"]: b for b in data.get("benchmarks", [])}


def fmt_delta(old, new):
    if old is None or new is None:
        return "      n/a"
    if old == 0:
        return "     new0" if new else "       0%"
    return f"{100.0 * (new - old) / old:+8.1f}%"


def main():
    args = sys.argv[1:]
    guard_pat, guard_ratio = None, None
    if "--guard" in args:
        i = args.index("--guard")
        guard_pat = re.compile(args[i + 1])
        guard_ratio = float(args[i + 2])
        args = args[:i] + args[i + 3 :]
    if len(args) != 2:
        sys.exit(__doc__)
    old, new = load(args[0]), load(args[1])

    names = sorted(set(old) | set(new))
    width = max(len(n) for n in names) if names else 10
    print(f"{'benchmark':<{width}}  {'ns/op Δ':>9}  {'allocs Δ':>9}")
    failures = []
    for n in names:
        o, w = old.get(n), new.get(n)
        ons = o.get("ns_per_op") if o else None
        wns = w.get("ns_per_op") if w else None
        oal = o.get("allocs_per_op") if o else None
        wal = w.get("allocs_per_op") if w else None
        print(f"{n:<{width}}  {fmt_delta(ons, wns)}  {fmt_delta(oal, wal)}")
        if (
            guard_pat is not None
            and guard_pat.search(n)
            and oal not in (None, 0)
            and wal is not None
            and wal > oal * guard_ratio
        ):
            failures.append((n, oal, wal))
    if failures:
        print()
        for n, oal, wal in failures:
            print(
                f"GUARD FAIL: {n} allocs/op {oal} -> {wal} "
                f"(> {guard_ratio:g}x budget)",
                file=sys.stderr,
            )
        sys.exit(1)


if __name__ == "__main__":
    main()
