#!/usr/bin/env bash
# CI bench smoke + regression guard: runs the solver benchmarks briefly,
# then fails against the committed BENCH_results.json baseline if
#   - any exact-path benchmark's allocs/op regressed by more than 20%, or
#   - the warm-start / verdict-cache-hit benchmarks regressed ns/op or
#     allocs/op by more than 20% (their wall time is the point of the
#     warm tier, so it gates; the other benchmarks' ns/op deltas are
#     printed but never gate — they move with the runner's hardware).
#
# The smoke benchmarks run a fixed short -benchtime; the gated warm
# benchmarks run the default 1s benchtime so their ns/op converges the
# same way the recorded baseline did (short fixed-count runs are too
# sensitive to transient CPU state to gate at a 20% budget).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-FeasibilityLP|Fig9aFeasibility}"
GUARDBENCH="${GUARDBENCH:-WalkWarmStart|VerdictCacheHit|SweepGrid|StreamIngest|JournalAppend}"
BENCHTIME="${BENCHTIME:-50x}"
TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

{
  go test -run=NONE -bench "${BENCH}" -benchmem -benchtime="${BENCHTIME}" -timeout 30m .
  go test -run=NONE -bench "${GUARDBENCH}" -benchmem -timeout 30m . ./internal/engine ./internal/jobs ./internal/jobstore
} | tee "${TMP}/bench.txt"
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -f scripts/benchjson.awk "${TMP}/bench.txt" > "${TMP}/bench.json"

# SweepGrid and SweepGridBatched gate allocs/op only: their allocation
# counts balloon if the behaviour-class planner, the pooled per-class
# corpus materialisation, or the verdict-cache dedup regresses, while
# their wall time tracks math/big throughput on the runner. (The
# unanchored SweepGrid pattern matches both deliberately.)
# StreamIngest gates allocs/op only, on both variants: per-observation
# allocation on the live ingest path is the stream tier's memory story,
# while its wall time — dominated by the ephemeral per-ingest region
# build — tracks allocator/GC throughput on the runner and is too noisy
# to gate at a 20% budget.
# JournalAppend gates allocs/op only: the per-event append is the hot
# path of every journaled job (one frame per committed cell/node), so
# allocation creep there multiplies across whole sweeps, while its wall
# time on the in-memory fault fs just tracks memcpy throughput.
scripts/benchcompare.py BENCH_results.json "${TMP}/bench.json" \
  --guard '/exact$|WalkWarmStart/warm$|VerdictCacheHit|SweepGrid|StreamIngest|JournalAppend' 1.2 \
  --guard-ns 'WalkWarmStart/warm$|VerdictCacheHit' 1.2
