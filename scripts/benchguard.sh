#!/usr/bin/env bash
# CI bench smoke + allocation guard: runs the solver benchmarks briefly,
# then fails if any exact-path benchmark's allocs/op regressed by more
# than 20% against the committed BENCH_results.json baseline. Allocation
# counts are deterministic enough to gate in CI (unlike ns/op, which moves
# with the runner's hardware — the % deltas are printed but never gate).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-FeasibilityLP|Fig9aFeasibility}"
BENCHTIME="${BENCHTIME:-50x}"
TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

go test -run=NONE -bench "${BENCH}" -benchmem -benchtime="${BENCHTIME}" -timeout 30m . | tee "${TMP}/bench.txt"
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -f scripts/benchjson.awk "${TMP}/bench.txt" > "${TMP}/bench.json"

scripts/benchcompare.py BENCH_results.json "${TMP}/bench.json" --guard '/exact$' 1.2
