package main

import (
	"testing"

	"repro/internal/haswell"
	"repro/internal/pagetable"
)

func TestParsePageSize(t *testing.T) {
	cases := map[string]pagetable.PageSize{"4k": pagetable.Page4K, "2M": pagetable.Page2M, "1g": pagetable.Page1G}
	for s, want := range cases {
		got, err := parsePageSize(s)
		if err != nil || got != want {
			t.Fatalf("%s: got %v, %v", s, got, err)
		}
	}
	if _, err := parsePageSize("16k"); err == nil {
		t.Fatal("bad size should error")
	}
}

func TestParseFeatures(t *testing.T) {
	cfg := haswell.DefaultConfig(pagetable.Page4K)
	if err := parseFeatures(&cfg, "nopf, nomerge,pml4e"); err != nil {
		t.Fatal(err)
	}
	if cfg.Features.TLBPrefetch || cfg.Features.WalkMerging || !cfg.Features.PML4ECache {
		t.Fatalf("overrides not applied: %+v", cfg.Features)
	}
	if err := parseFeatures(&cfg, "wat"); err == nil {
		t.Fatal("unknown override should error")
	}
	if err := parseFeatures(&cfg, ""); err != nil {
		t.Fatal(err)
	}
}

func TestBuildWorkload(t *testing.T) {
	kinds := []string{"linear", "random", "burst", "pointerchase", "zipfian", "stencil"}
	for _, k := range kinds {
		g, err := buildWorkload(k, 1<<20, 64, 4, 0.9, false, 1)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if g.Name() == "" {
			t.Fatalf("%s: empty name", k)
		}
	}
	if _, err := buildWorkload("wat", 1<<20, 64, 4, 1, false, 1); err == nil {
		t.Fatal("unknown workload should error")
	}
}
