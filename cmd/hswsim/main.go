// Command hswsim runs a workload on the simulated Haswell MMU and writes
// the ground-truth hardware event counter time series as CSV (optionally
// degraded by counter multiplexing), in the format cmd/counterpoint reads.
//
// Usage:
//
//	hswsim -workload linear [flags] > samples.csv
//
// Flags:
//
//	-workload name     linear | random | burst | pointerchase | zipfian | stencil
//	-footprint bytes   workload footprint (default 64 MiB)
//	-stride bytes      linear stride (default 64)
//	-burst n           burst length for -workload burst (default 8)
//	-loadratio f       fraction of loads (default 1.0)
//	-descending        linear: descend through the footprint
//	-pagesize s        4k | 2m | 1g (default 4k)
//	-samples n         sampling intervals to record (default 30)
//	-uops n            micro-ops per interval (default 20000)
//	-warmup n          micro-ops before recording (default one interval)
//	-seed n            workload/simulator seed (default 1)
//	-mux k             multiplex onto k physical counters (0 = off)
//	-aggregate         add the walk_ref aggregate column
//	-features list     hardware feature overrides, e.g. "nopf,nomerge,
//	                   noepsc,pml4e,noreplay" (default: discovered set)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/counters"
	"repro/internal/haswell"
	"repro/internal/multiplex"
	"repro/internal/pagetable"
	"repro/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "linear", "workload kind")
		footprint = flag.Uint64("footprint", 64<<20, "footprint in bytes")
		stride    = flag.Uint64("stride", 64, "linear stride in bytes")
		burst     = flag.Int("burst", 8, "burst length")
		loadRatio = flag.Float64("loadratio", 1.0, "fraction of loads")
		desc      = flag.Bool("descending", false, "linear: descending")
		pageSize  = flag.String("pagesize", "4k", "4k | 2m | 1g")
		samples   = flag.Int("samples", 30, "sampling intervals")
		uops      = flag.Int("uops", 20000, "micro-ops per interval")
		warmup    = flag.Int("warmup", -1, "warm-up micro-ops (-1 = one interval)")
		seed      = flag.Int64("seed", 1, "seed")
		mux       = flag.Int("mux", 0, "physical counters to multiplex onto (0 = off)")
		aggregate = flag.Bool("aggregate", false, "append walk_ref aggregate column")
		features  = flag.String("features", "", "comma-separated hardware overrides")
	)
	flag.Parse()
	if err := run(*workload, *footprint, *stride, *burst, *loadRatio, *desc,
		*pageSize, *samples, *uops, *warmup, *seed, *mux, *aggregate, *features); err != nil {
		fmt.Fprintln(os.Stderr, "hswsim:", err)
		os.Exit(1)
	}
}

func parsePageSize(s string) (pagetable.PageSize, error) {
	switch strings.ToLower(s) {
	case "4k":
		return pagetable.Page4K, nil
	case "2m":
		return pagetable.Page2M, nil
	case "1g":
		return pagetable.Page1G, nil
	}
	return 0, fmt.Errorf("unknown page size %q", s)
}

func parseFeatures(cfg *haswell.Config, list string) error {
	if list == "" {
		return nil
	}
	for _, f := range strings.Split(list, ",") {
		switch strings.TrimSpace(f) {
		case "nopf":
			cfg.Features.TLBPrefetch = false
		case "noepsc":
			cfg.Features.EarlyPSC = false
		case "nomerge":
			cfg.Features.WalkMerging = false
		case "pml4e":
			cfg.Features.PML4ECache = true
		case "noreplay":
			cfg.Features.WalkReplay = false
		case "":
		default:
			return fmt.Errorf("unknown feature override %q", f)
		}
	}
	return nil
}

func buildWorkload(kind string, footprint, stride uint64, burst int, loadRatio float64, desc bool, seed int64) (workloads.Generator, error) {
	switch kind {
	case "linear":
		return workloads.NewLinear(footprint, stride, loadRatio, desc)
	case "random":
		return workloads.NewRandom(footprint, loadRatio, seed)
	case "burst":
		return workloads.NewRandomBurst(footprint, burst, loadRatio, seed)
	case "pointerchase":
		return workloads.NewPointerChase(footprint, seed)
	case "zipfian":
		return workloads.NewZipfian(footprint, 1.2, loadRatio, seed)
	case "stencil":
		return workloads.NewStencil(footprint, loadRatio)
	}
	return nil, fmt.Errorf("unknown workload %q", kind)
}

func run(workload string, footprint, stride uint64, burst int, loadRatio float64,
	desc bool, pageSize string, samples, uops, warmup int, seed int64,
	mux int, aggregate bool, features string) error {
	ps, err := parsePageSize(pageSize)
	if err != nil {
		return err
	}
	cfg := haswell.DefaultConfig(ps)
	cfg.Seed = seed
	if err := parseFeatures(&cfg, features); err != nil {
		return err
	}
	gen, err := buildWorkload(workload, footprint, stride, burst, loadRatio, desc, seed)
	if err != nil {
		return err
	}
	sim := haswell.NewSimulator(cfg)
	if warmup < 0 {
		warmup = uops
	}
	sim.Step(gen, warmup)
	obs := sim.Observation(gen, samples, uops)
	if mux > 0 {
		// Record at slice granularity implicitly: treat each interval as a
		// slice group of 1 would be meaningless, so re-sample with finer
		// slices when multiplexing is requested.
		const slices = 20
		sim2 := haswell.NewSimulator(cfg)
		gen2, err := buildWorkload(workload, footprint, stride, burst, loadRatio, desc, seed)
		if err != nil {
			return err
		}
		sim2.Step(gen2, warmup)
		truth := sim2.Observation(gen2, samples*slices, uops/slices)
		obs, err = multiplex.Apply(truth, multiplex.Config{
			PhysicalCounters: mux, SlicesPerSample: slices,
			RotationJitter: true, JitterSeed: seed,
		})
		if err != nil {
			return err
		}
	}
	if aggregate {
		obs = haswell.WithAggregateWalkRef(obs)
	}
	return counters.WriteCSV(os.Stdout, obs)
}
