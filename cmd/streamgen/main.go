// Command streamgen is a synthetic load generator for counterpointd's
// online-refutation streams — the producer side of the backpressure soak:
// it registers a small page-walker model, opens a stream against it, and
// POSTs NDJSON observations at a target rate (or as fast as the server
// accepts them), then reports the stream's own telemetry — verdict
// state, queue high-water mark, drop counts and ingest→verdict latency
// percentiles as the server measured them.
//
// Usage:
//
//	streamgen [flags]
//
// Flags:
//
//	-addr url        counterpointd base URL (default http://127.0.0.1:8417)
//	-n count         observations to send (default 10000)
//	-rate r          target observations/sec; 0 sends unthrottled (default 0)
//	-batch k         observations per ingest request (default 256)
//	-samples s       samples per observation (default 5)
//	-infeasible f    fraction of observations drawn from an infeasible
//	                 mean, so the stream's monotone refutation state is
//	                 exercised (default 0.01)
//	-policy p        stream backpressure policy: block, drop or reject
//	                 (default block)
//	-buffer b        per-stream queue capacity override; 0 uses the
//	                 server's -stream-buffer (default 0)
//	-seed s          deterministic observation noise seed (default 1)
//
// The exit status is zero iff every request was accepted under the
// chosen policy (drop-policy drops and reject-policy 429s are reported,
// not errors — they are the point of the soak).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

// modelSource is the two-counter page-walker μDD streamgen registers:
// every load increments load.causes_walk, and a PDE cache miss
// additionally increments load.pde$_miss — so feasible observations keep
// pde$_miss ≤ causes_walk and the infeasible mean inverts the ratio.
const (
	modelName   = "streamgen-pde"
	modelSource = "incr load.causes_walk;\nswitch Pde$Status { Hit => pass; Miss => incr load.pde$_miss; };\ndone;"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "streamgen:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("streamgen", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "http://127.0.0.1:8417", "counterpointd base URL")
		n          = fs.Int("n", 10000, "observations to send")
		rate       = fs.Float64("rate", 0, "target observations/sec (0 = unthrottled)")
		batch      = fs.Int("batch", 256, "observations per ingest request")
		samples    = fs.Int("samples", 5, "samples per observation")
		infeasible = fs.Float64("infeasible", 0.01, "fraction of observations drawn from an infeasible mean")
		policy     = fs.String("policy", "block", "stream backpressure policy: block, drop or reject")
		buffer     = fs.Int("buffer", 0, "per-stream queue capacity override (0 = server default)")
		seed       = fs.Int64("seed", 1, "observation noise seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 || *batch < 1 || *samples < 1 {
		return fmt.Errorf("n, batch and samples must be positive")
	}
	if *infeasible < 0 || *infeasible > 1 {
		return fmt.Errorf("infeasible must be in [0,1], got %g", *infeasible)
	}
	base := strings.TrimRight(*addr, "/")
	client := &http.Client{}

	// Register the model; 409 means a previous streamgen already did.
	reg, _ := json.Marshal(map[string]string{"name": modelName, "source": modelSource})
	resp, err := post(ctx, client, base+"/v1/models", "application/json", bytes.NewReader(reg))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		return httpError("register model", resp)
	}
	drain(resp)

	// Open the stream.
	create, _ := json.Marshal(map[string]any{"model": modelName, "policy": *policy, "buffer": *buffer})
	resp, err = post(ctx, client, base+"/v1/streams", "application/json", bytes.NewReader(create))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated {
		return httpError("create stream", resp)
	}
	var stream struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stream); err != nil {
		drain(resp)
		return fmt.Errorf("decode stream: %w", err)
	}
	drain(resp)
	fmt.Fprintf(out, "streamgen: stream %s (policy %s) on %s\n", stream.ID, *policy, base)

	rng := rand.New(rand.NewSource(*seed))
	start := time.Now()
	var sent, queued, dropped, rejected, errorLines int
	var body bytes.Buffer
	flush := func(count int) error {
		resp, err := post(ctx, client, base+"/v1/streams/"+stream.ID+"/ingest", "application/x-ndjson", bytes.NewReader(body.Bytes()))
		body.Reset()
		if err != nil {
			return err
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
			return httpError("ingest", resp)
		}
		var sum struct {
			Queued     int `json:"queued"`
			Dropped    int `json:"dropped"`
			Rejected   int `json:"rejected"`
			ErrorLines int `json:"error_lines"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
			return fmt.Errorf("decode ingest summary: %w", err)
		}
		sent += count
		queued += sum.Queued
		dropped += sum.Dropped
		rejected += sum.Rejected
		errorLines += sum.ErrorLines
		return nil
	}
	enc := json.NewEncoder(&body)
	pending := 0
	for i := 0; i < *n; i++ {
		if err := ctx.Err(); err != nil {
			break
		}
		if err := enc.Encode(observation(rng, i, *samples, *infeasible)); err != nil {
			return err
		}
		pending++
		if pending == *batch || i == *n-1 {
			if err := flush(pending); err != nil {
				return err
			}
			pending = 0
		}
		if *rate > 0 {
			// Pace against the wall clock, not per-send sleeps, so batch
			// flush time does not erode the target rate.
			next := start.Add(time.Duration(float64(i+1) / *rate * float64(time.Second)))
			if d := time.Until(next); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
				}
			}
		}
	}
	elapsed := time.Since(start)

	// Close the stream (its backlog still evaluates), then report what
	// the server measured.
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, base+"/v1/streams/"+stream.ID, nil)
	if err != nil {
		return err
	}
	if resp, err = client.Do(req); err != nil {
		return err
	}
	drain(resp)
	resp, err = client.Get(base + "/v1/streams/" + stream.ID)
	if err != nil {
		return err
	}
	var desc struct {
		State struct {
			Total      int     `json:"total"`
			Infeasible int     `json:"infeasible"`
			Refuted    bool    `json:"refuted"`
			Confidence float64 `json:"confidence"`
		} `json:"state"`
		HighWater int `json:"high_water"`
		Latency   struct {
			P50 float64 `json:"p50_us"`
			P99 float64 `json:"p99_us"`
			Max float64 `json:"max_us"`
		} `json:"latency"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&desc); err != nil {
		drain(resp)
		return fmt.Errorf("decode describe: %w", err)
	}
	drain(resp)

	fmt.Fprintf(out, "streamgen: sent %d obs in %v (%.0f obs/sec): queued %d, dropped %d, rejected %d, errors %d\n",
		sent, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds(), queued, dropped, rejected, errorLines)
	fmt.Fprintf(out, "streamgen: verdicts %d (infeasible %d, refuted %v, confidence %.6f), queue high-water %d\n",
		desc.State.Total, desc.State.Infeasible, desc.State.Refuted, desc.State.Confidence, desc.HighWater)
	fmt.Fprintf(out, "streamgen: ingest latency p50 %.1fus p99 %.1fus max %.1fus\n",
		desc.Latency.P50, desc.Latency.P99, desc.Latency.Max)
	return ctx.Err()
}

// observation draws one synthetic observation: Poisson-ish integer noise
// around a feasible mean (walks ≥ misses) or, for the configured
// fraction, an infeasible one (misses > walks — no μDD path produces
// more PDE misses than walks, so the region excludes the cone).
func observation(rng *rand.Rand, idx, samples int, infeasible float64) map[string]any {
	walks, misses := 40, 10
	if rng.Float64() < infeasible {
		walks, misses = 10, 40
	}
	rows := make([][]int64, samples)
	for i := range rows {
		rows[i] = []int64{jitter(rng, walks), jitter(rng, misses)}
	}
	return map[string]any{
		"label":   fmt.Sprintf("gen%06d", idx),
		"events":  []string{"load.causes_walk", "load.pde$_miss"},
		"samples": rows,
	}
}

// jitter perturbs a mean by ±10% uniform integer noise, floored at zero.
func jitter(rng *rand.Rand, mean int) int64 {
	d := mean / 10
	if d < 1 {
		d = 1
	}
	v := mean - d + rng.Intn(2*d+1)
	if v < 0 {
		v = 0
	}
	return int64(v)
}

func post(ctx context.Context, c *http.Client, url, contentType string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	return c.Do(req)
}

func httpError(what string, resp *http.Response) error {
	defer drain(resp)
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("%s: status %d: %s", what, resp.StatusCode, bytes.TrimSpace(msg))
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, bufio.NewReader(io.LimitReader(resp.Body, 1<<20)))
	resp.Body.Close()
}
