package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/server"
)

// TestStreamgenEndToEnd drives the generator against an in-process
// server: every observation must be accepted under the block policy, the
// injected infeasible fraction must refute the model, and the report
// must carry the server's own telemetry.
func TestStreamgenEndToEnd(t *testing.T) {
	eng := engine.New(engine.WithWorkers(2))
	defer eng.Close()
	srv := server.New(server.Options{Engine: eng, StreamBuffer: 64})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", hs.URL, "-n", "60", "-batch", "16", "-infeasible", "0.2", "-seed", "7",
	}, &out)
	if err != nil {
		t.Fatalf("streamgen: %v (output %q)", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"queued 60, dropped 0, rejected 0, errors 0",
		"verdicts 60",
		"refuted true",
		"ingest latency p50",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestStreamgenFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "0"},
		{"-batch", "0"},
		{"-samples", "0"},
		{"-infeasible", "1.5"},
		{"-bogus"},
	} {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Fatalf("args %v must be rejected", args)
		}
	}
}
