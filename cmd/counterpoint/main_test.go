package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/counters"
)

const testModel = `
incr load.causes_walk;
switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss; };
done;
`

func writeModel(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.dsl")
	if err := os.WriteFile(path, []byte(testModel), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeObs(t *testing.T, cw, pm float64) string {
	t.Helper()
	set := counters.NewSet("load.causes_walk", "load.pde$_miss", "unrelated")
	o := counters.NewObservation("test", set)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		o.Append([]float64{cw + rng.NormFloat64(), pm + rng.NormFloat64(), 5})
	}
	path := filepath.Join(t.TempDir(), "obs.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := counters.WriteCSV(f, o); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunModelOnly(t *testing.T) {
	if err := run(writeModel(t), nil, true, true, 0.99, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunFeasible(t *testing.T) {
	if err := run(writeModel(t), []string{writeObs(t, 1000, 600)}, false, false, 0.99, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunRefuted(t *testing.T) {
	err := run(writeModel(t), []string{writeObs(t, 600, 1000)}, false, false, 0.99, false, false)
	if err != errRefuted {
		t.Fatalf("want errRefuted, got %v", err)
	}
}

func TestRunCorpus(t *testing.T) {
	// A mixed corpus streamed through the engine session: the refuting
	// observation must set the refuted exit condition.
	obs := []string{
		writeObs(t, 1000, 600),
		writeObs(t, 600, 1000),
		writeObs(t, 900, 500),
	}
	if err := run(writeModel(t), obs, false, false, 0.99, false, false); err != errRefuted {
		t.Fatalf("want errRefuted, got %v", err)
	}
	// An all-feasible corpus exits clean, including with -first.
	ok := []string{writeObs(t, 1000, 600), writeObs(t, 900, 500)}
	if err := run(writeModel(t), ok, false, false, 0.99, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunIndependentMode(t *testing.T) {
	if err := run(writeModel(t), []string{writeObs(t, 1000, 600)}, false, false, 0.95, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingModel(t *testing.T) {
	if err := run("", nil, false, false, 0.99, false, false); err == nil {
		t.Fatal("missing model should error")
	}
	if err := run(filepath.Join(t.TempDir(), "nope.dsl"), nil, false, false, 0.99, false, false); err == nil {
		t.Fatal("unreadable model should error")
	}
}

func TestRunBadModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.dsl")
	if err := os.WriteFile(path, []byte("bogus;"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, nil, false, false, 0.99, false, false); err == nil {
		t.Fatal("bad DSL should error")
	}
}

func TestRunDisjointCounters(t *testing.T) {
	set := counters.NewSet("totally.unrelated")
	o := counters.NewObservation("test", set)
	o.Append([]float64{1})
	path := filepath.Join(t.TempDir(), "obs.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := counters.WriteCSV(f, o); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(writeModel(t), []string{path}, false, false, 0.99, false, false); err == nil ||
		!strings.Contains(err.Error(), "no counters") {
		t.Fatalf("disjoint counters should error, got %v", err)
	}
}

func TestRenderDot(t *testing.T) {
	if err := renderOnly(writeModel(t), true); err != nil {
		t.Fatal(err)
	}
}

func TestRenderFormat(t *testing.T) {
	if err := renderOnly(writeModel(t), false); err != nil {
		t.Fatal(err)
	}
	if err := renderOnly("", false); err == nil {
		t.Fatal("missing model should error")
	}
}

const refinedTestModel = `
do LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => {
        incr load.pde$_miss;
        switch Abort { Yes => done; No => pass; };
    };
};
incr load.causes_walk;
done;
`

func TestDiffModels(t *testing.T) {
	a := writeModel(t)
	bPath := filepath.Join(t.TempDir(), "refined.dsl")
	if err := os.WriteFile(bPath, []byte(refinedTestModel), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := diffModels(a, bPath); err != nil {
		t.Fatal(err)
	}
	if err := diffModels(a, a); err != nil {
		t.Fatal(err)
	}
	if err := diffModels("", a); err == nil {
		t.Fatal("missing file should error")
	}
}
