// Command counterpoint tests microarchitectural models against hardware
// event counter observations (the paper's Figure 2 workflow).
//
// A model is a μDD written in the CounterPoint DSL; an observation is a CSV
// of counter samples (header row of event names, one row per sampling
// interval, as written by hswsim or converted from perf output). Several
// observation CSVs — a corpus — may be given; they are evaluated
// concurrently through one engine session, streaming verdicts as they
// complete.
//
// Usage:
//
//	counterpoint -model model.dsl [-obs samples.csv] [more.csv ...] [flags]
//
// Flags:
//
//	-model path      DSL file describing the μDD (required)
//	-obs path        observation CSV; positional arguments add more
//	-constraints     deduce and print the complete model-constraint set
//	-paths           print every μpath of the μDD
//	-confidence p    confidence level for feasibility (default 0.99)
//	-independent     use naive independent confidence regions
//	-first           stop at the first refuting observation
//
// Exit status: 0 when every observation is feasible (or none was given),
// 2 when the model is refuted, 1 on errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/dsl"
	"repro/internal/engine"
	"repro/internal/stats"
)

func main() {
	var (
		modelPath   = flag.String("model", "", "DSL file describing the μDD (required)")
		obsPath     = flag.String("obs", "", "observation CSV to test (positional args add more)")
		showCons    = flag.Bool("constraints", false, "deduce and print all model constraints")
		showPaths   = flag.Bool("paths", false, "print every μpath")
		confidence  = flag.Float64("confidence", core.DefaultConfidence, "confidence level")
		independent = flag.Bool("independent", false, "use independent (naive) confidence regions")
		first       = flag.Bool("first", false, "stop at the first refuting observation")
		dot         = flag.Bool("dot", false, "emit the μDD as Graphviz dot and exit")
		format      = flag.Bool("format", false, "reformat the DSL source to stdout and exit")
		diffPath    = flag.String("diff", "", "second DSL model: compare model cones and exit")
	)
	flag.Parse()
	if *dot || *format {
		if err := renderOnly(*modelPath, *dot); err != nil {
			fmt.Fprintln(os.Stderr, "counterpoint:", err)
			os.Exit(1)
		}
		return
	}
	if *diffPath != "" {
		if err := diffModels(*modelPath, *diffPath); err != nil {
			fmt.Fprintln(os.Stderr, "counterpoint:", err)
			os.Exit(1)
		}
		return
	}
	var obsPaths []string
	if *obsPath != "" {
		obsPaths = append(obsPaths, *obsPath)
	}
	obsPaths = append(obsPaths, flag.Args()...)
	if err := run(*modelPath, obsPaths, *showCons, *showPaths, *confidence, *independent, *first); err != nil {
		fmt.Fprintln(os.Stderr, "counterpoint:", err)
		if err == errRefuted {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// renderOnly handles the -dot and -format modes.
func renderOnly(modelPath string, dot bool) error {
	if modelPath == "" {
		return fmt.Errorf("-model is required (see -h)")
	}
	src, err := os.ReadFile(modelPath)
	if err != nil {
		return err
	}
	if dot {
		diagram, err := dsl.Compile(modelPath, string(src))
		if err != nil {
			return err
		}
		fmt.Print(diagram.DOT())
		return nil
	}
	out, err := dsl.FormatSource(string(src))
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

var errRefuted = fmt.Errorf("model refuted by observation")

// diffModels compares the model cones of two μDDs over their shared
// counters — the §5 refinement check ("the model cones are verified to
// ensure that the model cone is expanded"): whether each cone contains the
// other, and which of the first model's constraints the second relaxes.
func diffModels(pathA, pathB string) error {
	load := func(path string) (*core.Model, error) {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		d, err := dsl.Compile(path, string(src))
		if err != nil {
			return nil, err
		}
		return core.NewModel(path, d, nil)
	}
	ma, err := load(pathA)
	if err != nil {
		return err
	}
	mb, err := load(pathB)
	if err != nil {
		return err
	}
	shared := ma.Set.Union(mb.Set)
	ma, err = ma.Restrict(shared)
	if err != nil {
		return err
	}
	mb, err = mb.Restrict(shared)
	if err != nil {
		return err
	}
	fmt.Printf("counters (%d): %s\n", shared.Len(), shared)
	aInB := ma.Cone().SubsetOf(mb.Cone())
	bInA := mb.Cone().SubsetOf(ma.Cone())
	fmt.Printf("cone(%s) ⊆ cone(%s): %v\n", pathA, pathB, aInB)
	fmt.Printf("cone(%s) ⊆ cone(%s): %v\n", pathB, pathA, bInA)
	switch {
	case aInB && bInA:
		fmt.Println("the models are observationally equivalent")
	case aInB:
		fmt.Printf("%s is a refinement: it expands the model cone\n", pathB)
	case bInA:
		fmt.Printf("%s is a refinement: it expands the model cone\n", pathA)
	default:
		fmt.Println("the cones are incomparable")
	}
	ha, err := ma.Constraints()
	if err != nil {
		return err
	}
	relaxed := 0
	for _, k := range ha.All() {
		if !mb.Cone().Implies(k) {
			fmt.Printf("relaxed by %s: %s\n", pathB, k)
			relaxed++
		}
	}
	if relaxed == 0 {
		fmt.Printf("%s implies every constraint of %s\n", pathB, pathA)
	}
	return nil
}

func run(modelPath string, obsPaths []string, showCons, showPaths bool, confidence float64, independent bool, first bool) error {
	if modelPath == "" {
		return fmt.Errorf("-model is required (see -h)")
	}
	src, err := os.ReadFile(modelPath)
	if err != nil {
		return err
	}
	diagram, err := dsl.Compile(modelPath, string(src))
	if err != nil {
		return err
	}

	// Analyse over the intersection: events the model talks about that
	// every observation recorded.
	var corpus []*counters.Observation
	set := diagram.Counters()
	for _, path := range obsPaths {
		o, err := readObservation(path)
		if err != nil {
			return err
		}
		set = set.Restrict(o.Set)
		if set.Len() == 0 {
			return fmt.Errorf("observation %s shares no counters with the model", path)
		}
		corpus = append(corpus, o)
	}

	model, err := core.NewModel(modelPath, diagram, set)
	if err != nil {
		return err
	}
	fmt.Printf("model: %s\n", modelPath)
	fmt.Printf("counters (%d): %s\n", set.Len(), set)
	fmt.Printf("μpaths: %d, cone generators: %d\n", model.NumPaths(), len(model.Cone().Generators))

	if showPaths {
		paths, err := diagram.Paths()
		if err != nil {
			return err
		}
		for i, p := range paths {
			fmt.Printf("μpath %d: %s\n", i, diagram.PathString(p))
		}
	}
	if showCons {
		h, err := model.Constraints()
		if err != nil {
			return err
		}
		fmt.Printf("model constraints (%d):\n", len(h.All()))
		for _, k := range h.All() {
			fmt.Printf("  %s\n", k)
		}
	}
	if len(corpus) == 0 {
		return nil
	}

	mode := stats.Correlated
	if independent {
		mode = stats.Independent
	}
	sess, err := engine.Default().NewSession(model, engine.Config{
		Confidence:         confidence,
		Mode:               mode,
		IdentifyViolations: true,
		StopOnInfeasible:   first,
	})
	if err != nil {
		return err
	}

	// Stream the corpus through the session, printing verdicts as they
	// complete.
	in := make(chan *counters.Observation, len(corpus))
	for _, o := range corpus {
		in <- o
	}
	close(in)
	st := sess.EvaluateStream(context.Background(), in)
	for item := range st.C {
		if item.Err != nil {
			continue // reported via Result below
		}
		o, v := corpus[item.Index], item.Verdict
		fmt.Printf("observation: %s (%d samples, %s regions, %.0f%% confidence)\n",
			o.Label, o.Len(), mode, confidence*100)
		if v.Feasible {
			fmt.Println("verdict: FEASIBLE — the observation is consistent with the model")
			continue
		}
		fmt.Println("verdict: INFEASIBLE — the model is refuted at this confidence level")
		for _, k := range v.Violations {
			fmt.Printf("violated: %s\n", k)
		}
	}
	res, err := st.Result()
	if err != nil {
		return err
	}
	if len(corpus) > 1 {
		fmt.Printf("corpus: %d/%d observations infeasible\n", res.Infeasible, res.Total)
		keys := make([]string, 0, len(res.ViolatedConstraints))
		for k := range res.ViolatedConstraints {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("violated by %d observations: %s\n", res.ViolatedConstraints[k], k)
		}
	}
	if res.Infeasible > 0 {
		return errRefuted
	}
	return nil
}

func readObservation(path string) (*counters.Observation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return counters.ReadCSV(f, path)
}
