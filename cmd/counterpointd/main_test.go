package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServeAndShutdown boots the daemon on an ephemeral port, exercises a
// request end to end, and checks cancellation shuts it down cleanly.
func TestServeAndShutdown(t *testing.T) {
	addrCh := make(chan net.Addr, 1)
	testListenerHook = func(a net.Addr) { addrCh <- a }
	defer func() { testListenerHook = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-max-concurrent", "2"}, &out)
	}()

	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("daemon exited early: %v (output %q)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never bound its listener")
	}
	base := fmt.Sprintf("http://%s", addr)

	// The catalogue is seeded at boot: m0 is servable by name.
	resp, err := http.Get(base + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Models []string `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Models) == 0 {
		t.Fatal("no catalogue models registered at boot")
	}
	seeded := map[string]bool{}
	for _, m := range list.Models {
		seeded[m] = true
	}
	for _, want := range []string{"m0", "t17", "a3", "discovered"} {
		if !seeded[want] {
			t.Fatalf("catalogue model %q missing from %v", want, list.Models)
		}
	}

	// A round trip through the verdict path: register a model, test it.
	reg := `{"name":"pde","source":"incr load.causes_walk;\nswitch Pde$Status { Hit => pass; Miss => incr load.pde$_miss; };\ndone;"}`
	resp, err = http.Post(base+"/v1/models", "application/json", strings.NewReader(reg))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status %d", resp.StatusCode)
	}
	resp.Body.Close()
	body := `{"label":"x","events":["load.causes_walk","load.pde$_miss"],"samples":[[10,2],[11,2],[10,3],[12,2],[11,3]]}`
	resp, err = http.Post(base+"/v1/models/pde/test", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("test endpoint status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// A catalogue model rejects observations that do not record its
	// counters instead of zero-filling them.
	resp, err = http.Post(base+"/v1/models/m0/test", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partial observation against m0: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("graceful shutdown hung")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("output %q missing shutdown notice", out.String())
	}
}

func TestFlagValidation(t *testing.T) {
	if err := run(context.Background(), []string{"-confidence", "2"}, &bytes.Buffer{}); err == nil {
		t.Fatal("confidence 2 must be rejected")
	}
	if err := run(context.Background(), []string{"-bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown flag must be rejected")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: run writes from its own
// goroutine while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
