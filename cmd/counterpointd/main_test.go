package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServeAndShutdown boots the daemon on an ephemeral port, exercises a
// request end to end, and checks cancellation shuts it down cleanly.
func TestServeAndShutdown(t *testing.T) {
	addrCh := make(chan net.Addr, 1)
	testListenerHook = func(a net.Addr) { addrCh <- a }
	defer func() { testListenerHook = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-max-concurrent", "2"}, &out)
	}()

	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("daemon exited early: %v (output %q)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never bound its listener")
	}
	base := fmt.Sprintf("http://%s", addr)

	// The catalogue is seeded at boot: m0 is servable by name.
	resp, err := http.Get(base + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Models []string `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Models) == 0 {
		t.Fatal("no catalogue models registered at boot")
	}
	seeded := map[string]bool{}
	for _, m := range list.Models {
		seeded[m] = true
	}
	for _, want := range []string{"m0", "t17", "a3", "discovered"} {
		if !seeded[want] {
			t.Fatalf("catalogue model %q missing from %v", want, list.Models)
		}
	}

	// A round trip through the verdict path: register a model, test it.
	reg := `{"name":"pde","source":"incr load.causes_walk;\nswitch Pde$Status { Hit => pass; Miss => incr load.pde$_miss; };\ndone;"}`
	resp, err = http.Post(base+"/v1/models", "application/json", strings.NewReader(reg))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status %d", resp.StatusCode)
	}
	resp.Body.Close()
	body := `{"label":"x","events":["load.causes_walk","load.pde$_miss"],"samples":[[10,2],[11,2],[10,3],[12,2],[11,3]]}`
	resp, err = http.Post(base+"/v1/models/pde/test", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("test endpoint status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// A catalogue model rejects observations that do not record its
	// counters instead of zero-filling them.
	resp, err = http.Post(base+"/v1/models/m0/test", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partial observation against m0: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// The exploration jobs API is wired up: an empty listing at boot, and
	// a template submission is accepted and eventually terminal.
	resp, err = http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var jl struct {
		Jobs []json.RawMessage `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(jl.Jobs) != 0 {
		t.Fatalf("jobs at boot: %d", len(jl.Jobs))
	}
	submit := `{"source":"incr load.causes_walk;\n#if extra\nswitch S { Yes => incr load.causes_walk; No => pass; };\n#endif\ndone;",` +
		`"observations":[{"label":"r","events":["load.causes_walk"],"samples":[[10],[11],[10],[12],[11]]}]}`
	resp, err = http.Post(base+"/v1/explore", "application/json", strings.NewReader(submit))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("explore submit status %d", resp.StatusCode)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err = http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "cancelled" {
			t.Fatalf("exploration job ended %q", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for exploration job (state %q)", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("graceful shutdown hung")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("output %q missing shutdown notice", out.String())
	}
}

func TestFlagValidation(t *testing.T) {
	if err := run(context.Background(), []string{"-confidence", "2"}, &bytes.Buffer{}); err == nil {
		t.Fatal("confidence 2 must be rejected")
	}
	if err := run(context.Background(), []string{"-bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown flag must be rejected")
	}
	if err := run(context.Background(), []string{"-pprof-addr", "not-an-address"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unlistenable pprof address must be rejected")
	}
}

// TestPprofEndpoint boots the daemon with -pprof-addr and fetches a
// profile index from the dedicated listener, then checks the service mux
// does NOT expose pprof.
func TestPprofEndpoint(t *testing.T) {
	addrCh := make(chan net.Addr, 1)
	testListenerHook = func(a net.Addr) { addrCh <- a }
	defer func() { testListenerHook = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-pprof-addr", "127.0.0.1:0"}, &out)
	}()
	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("daemon exited early: %v (output %q)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never bound its listener")
	}

	// The pprof address is reported on the boot line.
	var pprofBase string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := regexp.MustCompile(`pprof on (http://\S+/debug/pprof/)`).FindStringSubmatch(out.String()); m != nil {
			pprofBase = m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if pprofBase == "" {
		t.Fatalf("pprof address never reported (output %q)", out.String())
	}
	resp, err := http.Get(pprofBase)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", pprofBase, resp.StatusCode)
	}
	// The service mux must not serve profiles.
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("service address must not expose pprof")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: run writes from its own
// goroutine while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
