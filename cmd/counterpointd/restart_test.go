package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// bootDaemon starts run() with the given extra flags on an ephemeral
// port and returns the base URL plus a shutdown func that stops the
// daemon and waits for a clean exit.
func bootDaemon(t *testing.T, extra ...string) (base string, shutdown func()) {
	t.Helper()
	addrCh := make(chan net.Addr, 1)
	testListenerHook = func(a net.Addr) { addrCh <- a }
	t.Cleanup(func() { testListenerHook = nil })

	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, extra...)
	go func() { done <- run(ctx, args, &out) }()

	select {
	case a := <-addrCh:
		base = fmt.Sprintf("http://%s", a)
	case err := <-done:
		cancel()
		t.Fatalf("daemon exited early: %v (output %q)", err, out.String())
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never bound its listener")
	}
	return base, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exit: %v (output %q)", err, out.String())
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon never shut down")
		}
	}
}

// daemonStats fetches and decodes GET /stats.
func daemonStats(t *testing.T, base string) map[string]json.RawMessage {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestVerdictStoreSurvivesRestart boots the daemon with -verdict-db,
// serves a verdict, shuts the process down, boots a second daemon on the
// same store, and checks the same request is served from the persisted
// verdict cache: store hits > 0 and zero solver evaluations.
func TestVerdictStoreSurvivesRestart(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "verdicts.db")
	reg := `{"name":"pde","source":"incr load.causes_walk;\nswitch Pde$Status { Hit => pass; Miss => incr load.pde$_miss; };\ndone;"}`
	body := `{"label":"x","events":["load.causes_walk","load.pde$_miss"],"samples":[[10,2],[11,2],[10,3],[12,2],[11,3]]}`

	serve := func(base string) {
		resp, err := http.Post(base+"/v1/models", "application/json", strings.NewReader(reg))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register status %d", resp.StatusCode)
		}
		resp, err = http.Post(base+"/v1/models/pde/test", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("test endpoint status %d", resp.StatusCode)
		}
	}

	base1, shutdown1 := bootDaemon(t, "-no-catalog", "-verdict-db", dbPath)
	serve(base1)
	st := daemonStats(t, base1)
	var caches struct {
		StoreHits   uint64 `json:"store_hits"`
		VerdictHits uint64 `json:"verdict_hits"`
	}
	if err := json.Unmarshal(st["caches"], &caches); err != nil {
		t.Fatal(err)
	}
	if caches.StoreHits != 0 {
		t.Fatalf("first boot already had %d store hits", caches.StoreHits)
	}
	shutdown1()

	base2, shutdown2 := bootDaemon(t, "-no-catalog", "-verdict-db", dbPath)
	defer shutdown2()
	serve(base2)
	st = daemonStats(t, base2)
	if err := json.Unmarshal(st["caches"], &caches); err != nil {
		t.Fatal(err)
	}
	if caches.StoreHits == 0 {
		t.Fatalf("restarted daemon served no persisted verdict hits: caches %s", st["caches"])
	}
	var evals uint64
	if err := json.Unmarshal(st["evaluations"], &evals); err != nil {
		t.Fatal(err)
	}
	if evals != 0 {
		t.Fatalf("restarted daemon ran %d solver evaluations, want 0 (persisted verdicts)", evals)
	}
}
