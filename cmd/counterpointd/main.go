// Command counterpointd serves CounterPoint feasibility verdicts over
// HTTP/JSON — the network-facing front end of the batched engine, so
// models can be registered and corpora evaluated without a local Go
// caller.
//
// At boot the registry is seeded with the paper's case-study catalogue
// (Tables 3, 5 and 7 plus the converged "discovered" model); uploads add
// more. One engine serves every request, so confidence-region, LP and
// session caches stay warm across the whole traffic stream.
//
// Alongside synchronous verdicts the daemon runs asynchronous jobs behind
// the /v1/jobs endpoints — the paper's §5 / Appendix C guided
// discovery/elimination search (POST /v1/explore) and hidden-event-space
// sweeps over raw event×umask×cmask config grids (POST /v1/sweep;
// "grid": "default" or "large" selects a preset) — with bounded
// concurrent jobs, NDJSON progress streams, cancellation, and
// resume-from-checkpoint. Sweeps plan the grid into behaviour classes
// and evaluate one representative per class on the engine's worker
// pool; committed events and checkpoints stay bit-identical to the
// sequential scan. See docs/API.md for the endpoint reference.
//
// The /v1/streams endpoints serve online refutation: a stream binds one
// model to one configuration, ingests NDJSON observations through a
// bounded queue with an explicit backpressure policy (block, drop or
// reject with 429), and emits verdict/state events whose monotone
// refutation state is bit-identical to a batch evaluation of the same
// observations. -max-streams caps open streams, -stream-buffer sets the
// queue high-water mark, -stream-ttl reaps idle streams.
//
// Usage:
//
//	counterpointd [flags]
//
// Flags:
//
//	-addr host:port    listen address (default :8417)
//	-confidence p      default confidence level (default 0.99)
//	-independent       default to independent (naive) confidence regions
//	-identify          identify violated constraints by default (default true)
//	-exact             force the exact LP tier (disable the float filter)
//	-max-concurrent n  cap on simultaneous evaluations (default GOMAXPROCS)
//	-workers n         engine worker pool size (default GOMAXPROCS)
//	-max-jobs n        cap on concurrently running jobs (default 2)
//	-job-history n     ring of finished jobs kept queryable (default 64)
//	-job-ttl d         how long finished jobs stay queryable (default 1h)
//	-max-sweep-cells n cap on a sweep request's expanded grid size (default 8192)
//	-max-streams n     cap on concurrently open ingest streams (default 64)
//	-stream-buffer n   per-stream ingest queue capacity / backpressure
//	                   high-water mark (default 1024)
//	-stream-ttl d      idle stream reap TTL (default 5m)
//	-no-catalog        start with an empty model registry
//	-verdict-db path   persistent content-addressed verdict store; cached
//	                   feasibility verdicts survive restarts (off by default)
//	-job-db path       durable job journal (append-only, checksummed); jobs
//	                   survive restarts, and a restarting daemon re-lists
//	                   finished jobs and auto-resumes interrupted ones from
//	                   their last checkpoint (off by default)
//	-pprof-addr a      serve net/http/pprof on a (off by default; bind
//	                   loopback only — profiles expose internals)
//
// GET /stats reports the two-tier solver's telemetry (evaluations, float
// filter hits, certification failures, exact fallbacks, warm-start dual
// simplex counts and mean pivots, plus the int64 kernel's
// fast-path/promotion counters and the certification arithmetic split),
// the engine's LP/verdict cache hit, miss and eviction counters, the
// sweep planner's telemetry (cells/classes planned, classes evaluated,
// evaluations_avoided ratio), and the stream tier's telemetry (lifecycle
// counts, ingest/verdict/drop totals, queue high-water mark,
// ingest→verdict latency), accumulated across all requests since boot.
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests (and
// their verdict streams) get shutdownGrace to finish before the listener
// is torn down; then running exploration jobs are cancelled and the
// engine closed. Without -job-db their checkpoints are lost with the
// process; with it, every submission, progress event, checkpoint and
// result is journaled with CRCs and fsync-on-commit, so the next boot
// repairs any torn tail, re-lists terminal jobs byte-identically and
// resumes interrupted explore/sweep jobs bit-identically from their last
// durable checkpoint. If the journal's disk fails at runtime the daemon
// degrades rather than dies: it keeps serving from memory, reports the
// failure on /healthz and /stats, and sheds new durable submissions with
// 503 + Retry-After until a probe write succeeds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/haswell"
	"repro/internal/jobs"
	"repro/internal/jobstore"
	"repro/internal/perfdb"
	"repro/internal/server"
	"repro/internal/stats"
)

// shutdownGrace bounds how long a graceful shutdown waits for in-flight
// requests (streams included) before closing connections.
const shutdownGrace = 10 * time.Second

// testListenerHook, when set (by tests), receives the bound listener
// address before the server starts accepting.
var testListenerHook func(net.Addr)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "counterpointd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("counterpointd", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8417", "listen address")
		confidence    = fs.Float64("confidence", core.DefaultConfidence, "default confidence level")
		independent   = fs.Bool("independent", false, "default to independent (naive) confidence regions")
		identify      = fs.Bool("identify", true, "identify violated constraints by default (per-request ?identify= overrides)")
		exact         = fs.Bool("exact", false, "force the exact LP tier by default, bypassing the float filter (per-request ?exact= overrides)")
		maxConcurrent = fs.Int("max-concurrent", runtime.GOMAXPROCS(0), "cap on simultaneous evaluations (0 = unlimited)")
		workers       = fs.Int("workers", runtime.GOMAXPROCS(0), "engine worker pool size")
		maxJobs       = fs.Int("max-jobs", jobs.DefaultMaxConcurrent, "cap on concurrently running exploration jobs")
		jobHistory    = fs.Int("job-history", jobs.DefaultMaxRetained, "how many finished exploration jobs stay queryable")
		jobTTL        = fs.Duration("job-ttl", jobs.DefaultRetainFor, "how long finished exploration jobs stay queryable")
		maxSweepCells = fs.Int("max-sweep-cells", server.DefaultMaxSweepCells, "cap on a sweep request's expanded grid size")
		maxStreams    = fs.Int("max-streams", server.DefaultMaxStreams, "cap on concurrently open ingest streams")
		streamBuffer  = fs.Int("stream-buffer", server.DefaultStreamBuffer, "per-stream ingest queue capacity (backpressure high-water mark)")
		streamTTL     = fs.Duration("stream-ttl", server.DefaultStreamIdleTTL, "idle stream reap TTL")
		noCatalog     = fs.Bool("no-catalog", false, "start with an empty model registry")
		verdictDB     = fs.String("verdict-db", "", "path to the persistent verdict store; cached feasibility verdicts survive restarts (empty disables)")
		jobDB         = fs.String("job-db", "", "path to the durable job journal; jobs survive restarts and interrupted ones auto-resume (empty disables)")
		pprofAddr     = fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables); bind loopback only, e.g. 127.0.0.1:6060")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *confidence <= 0 || *confidence >= 1 {
		return fmt.Errorf("confidence must be in (0,1), got %g", *confidence)
	}
	if *maxSweepCells < 1 {
		return fmt.Errorf("max-sweep-cells must be positive, got %d", *maxSweepCells)
	}
	if *maxStreams < 1 {
		return fmt.Errorf("max-streams must be positive, got %d", *maxStreams)
	}
	if *streamBuffer < 1 {
		return fmt.Errorf("stream-buffer must be positive, got %d", *streamBuffer)
	}

	engOpts := []engine.Option{engine.WithWorkers(*workers)}
	if *verdictDB != "" {
		vs, err := perfdb.OpenVerdictStore(*verdictDB)
		if err != nil {
			return err
		}
		defer vs.Close()
		fmt.Fprintf(out, "counterpointd: verdict store %s (%d verdicts)\n", *verdictDB, vs.Len())
		engOpts = append(engOpts, engine.WithVerdictStore(vs))
	}
	eng := engine.New(engOpts...)
	defer eng.Close()
	mode := stats.Correlated
	if *independent {
		mode = stats.Independent
	}
	var catalog []server.Model
	if !*noCatalog {
		for _, cm := range haswell.Catalog() {
			catalog = append(catalog, server.Model{Name: cm.Name, Source: cm.Source})
		}
	}
	var jst *jobstore.Store
	jopts := jobs.Options{
		MaxConcurrent: *maxJobs,
		MaxRetained:   *jobHistory,
		RetainFor:     *jobTTL,
	}
	if *jobDB != "" {
		var err error
		if jst, err = jobstore.Open(*jobDB, jobstore.Options{}); err != nil {
			return fmt.Errorf("job journal: %w", err)
		}
		// Closes after the manager (deferred LIFO), so shutdown's terminal
		// records and final checkpoints land in the journal.
		defer jst.Close()
		jopts.Journal = jst
	}
	jm := jobs.NewManager(jopts)
	defer jm.Close()
	if jst != nil {
		rep, err := jobstore.Recover(jm, jst, map[string]jobstore.Rebuilder{
			"sweep":   jobs.RebuildSweep(eng),
			"explore": jobs.RebuildExplore(),
		})
		if err != nil {
			return fmt.Errorf("job journal recovery: %w", err)
		}
		fmt.Fprintf(out, "counterpointd: job journal %s (%d jobs re-listed, %d interrupted, %d resumed",
			*jobDB, rep.Relisted+rep.Interrupted, rep.Interrupted, rep.Resumed)
		if rep.Repaired {
			fmt.Fprint(out, ", torn tail repaired")
		}
		fmt.Fprintln(out, ")")
	}
	srv := server.New(server.Options{
		Engine:        eng,
		Defaults:      engine.Config{Confidence: *confidence, Mode: mode, IdentifyViolations: *identify, ForceExact: *exact},
		MaxConcurrent: *maxConcurrent,
		Catalog:       catalog,
		Jobs:          jm,
		JobStore:      jst,
		MaxSweepCells: *maxSweepCells,
		MaxStreams:    *maxStreams,
		StreamBuffer:  *streamBuffer,
		StreamIdleTTL: *streamTTL,
	})
	// Streams close before the jobs manager and engine (deferred LIFO):
	// queued observations drain, terminal events land, workers exit.
	defer srv.Close()

	// Profiling endpoint: off by default, on its own mux and listener so
	// pprof handlers are never reachable through the service address.
	// Profiles expose internals (paths, timings, memory layout) — bind it
	// to loopback and reach it through an SSH tunnel in deployment.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer pln.Close()
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(out, "counterpointd: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() { _ = http.Serve(pln, pmux) }()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if testListenerHook != nil {
		testListenerHook(ln.Addr())
	}
	fmt.Fprintf(out, "counterpointd: listening on %s (%d models, %d workers)\n",
		ln.Addr(), srv.Registry().Len(), eng.Workers())

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "counterpointd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		// Streams outliving the grace period are closed forcibly; their
		// engine goroutines exit with the request contexts.
		hs.Close()
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
