// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-quick] [name ...]
//
// With no names, every experiment runs in presentation order. Names match
// DESIGN.md's per-experiment index (fig1a, fig1b, fig1c, fig3, fig3d,
// fig5a, table1, fig6, table3, fig10, table5, table7, corrstats, fig9a,
// fig9b).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink corpora and sweeps for a fast pass")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.Name, e.Title)
		}
		return
	}
	opts := experiments.Options{Quick: *quick}
	names := flag.Args()
	if len(names) == 0 {
		for _, e := range experiments.All() {
			names = append(names, e.Name)
		}
	}
	for _, name := range names {
		if err := experiments.Run(os.Stdout, name, opts); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}
