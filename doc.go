// Package repro is a from-scratch Go reproduction of "CounterPoint: Using
// Hardware Event Counters to Refute and Refine Microarchitectural
// Assumptions" (ASPLOS 2026).
//
// CounterPoint tests user-specified microarchitectural models — expressed
// as μpath Decision Diagrams (μDDs) — for consistency with noisy hardware
// event counter data, and pinpoints the violated model constraints when
// they disagree.
//
// The library layout (see DESIGN.md for the full inventory):
//
//   - internal/dsl, internal/mudd — the modelling language and μDDs;
//   - internal/cone, internal/exact, internal/simplex — exact model-cone
//     geometry (double description, rational simplex LP with reusable
//     workspaces);
//   - internal/stats, internal/multiplex — confidence regions (with the
//     memoising RegionBuilder) and counter multiplexing;
//   - internal/core — single-verdict feasibility testing;
//   - internal/engine — the batched feasibility engine: long-lived
//     Engine/Session pipeline with a bounded worker pool, region/LP
//     caching, and streaming corpus evaluation;
//   - internal/explore — guided model exploration over engine sessions;
//   - internal/haswell, internal/pagetable, internal/memsim,
//     internal/workloads — the simulated Haswell MMU substrate that stands
//     in for the paper's silicon;
//   - internal/experiments — regenerates every table and figure;
//   - cmd/counterpoint, cmd/hswsim, cmd/experiments — the executables;
//   - examples/ — runnable walkthroughs of the public API (see
//     examples/engine for the batched/streaming evaluation API).
//
// The benchmarks in bench_test.go regenerate each experiment (Figures 1a–9b
// and Tables 1–7) under the Go benchmark harness, and
// internal/engine/bench_test.go records the per-call vs session-cached
// corpus-evaluation comparison.
package repro
