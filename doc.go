// Package repro is a from-scratch Go reproduction of "CounterPoint: Using
// Hardware Event Counters to Refute and Refine Microarchitectural
// Assumptions" (ASPLOS 2026).
//
// CounterPoint tests user-specified microarchitectural models — expressed
// as μpath Decision Diagrams (μDDs) — for consistency with noisy hardware
// event counter data, and pinpoints the violated model constraints when
// they disagree.
//
// The library layout (see DESIGN.md for the full inventory):
//
//   - internal/dsl, internal/mudd — the modelling language and μDDs;
//   - internal/cone, internal/exact, internal/simplex — exact model-cone
//     geometry (double description, rational simplex LP);
//   - internal/stats, internal/multiplex — confidence regions and counter
//     multiplexing;
//   - internal/core — the feasibility-testing engine;
//   - internal/explore — guided model exploration;
//   - internal/haswell, internal/pagetable, internal/memsim,
//     internal/workloads — the simulated Haswell MMU substrate that stands
//     in for the paper's silicon;
//   - internal/experiments — regenerates every table and figure;
//   - cmd/counterpoint, cmd/hswsim, cmd/experiments — the executables;
//   - examples/ — runnable walkthroughs of the public API.
//
// The benchmarks in bench_test.go regenerate each experiment (Figures 1a–9b
// and Tables 1–7) under the Go benchmark harness; EXPERIMENTS.md records
// paper-vs-measured comparisons.
package repro
