// Package repro is a from-scratch Go reproduction of "CounterPoint: Using
// Hardware Event Counters to Refute and Refine Microarchitectural
// Assumptions" (ASPLOS 2026).
//
// CounterPoint tests user-specified microarchitectural models — expressed
// as μpath Decision Diagrams (μDDs) — for consistency with noisy hardware
// event counter data, and pinpoints the violated model constraints when
// they disagree.
//
// The library layout (see DESIGN.md for the full inventory):
//
//   - internal/dsl, internal/mudd — the modelling language and μDDs;
//   - internal/cone, internal/exact, internal/simplex — exact model-cone
//     geometry (double description, rational simplex LP with reusable
//     workspaces and exact certificate checkers);
//   - internal/floatlp — the float64 revised-simplex filter of the
//     two-tier feasibility solver: hardware floats propose each verdict
//     with a certificate, exact arithmetic verifies it, and unverifiable
//     claims fall back to the rational simplex (~140× fewer ns/op on the
//     full-counter-set feasibility LP, bit-identical verdicts);
//   - internal/counters — event names, counter groups, ordered counter
//     sets, observations, CSV/JSON I/O;
//   - internal/stats, internal/multiplex — confidence regions (with the
//     memoising RegionBuilder) and counter multiplexing;
//   - internal/core — single-verdict feasibility testing and the two-tier
//     Solver;
//   - internal/engine — the batched feasibility engine: long-lived
//     Engine/Session pipeline with a bounded worker pool, region/LP
//     caching, streaming corpus evaluation, and incremental
//     (per-observation) sessions whose folded verdict state is
//     bit-identical to a batch evaluation of the same observations;
//   - internal/explore — guided model exploration (§5, Appendix C):
//     frontier-parallel yet bit-identical to the sequential search,
//     progress events, checkpoint/restore, and the #if/#endif DSL
//     template builder;
//   - internal/jobs — the asynchronous job manager running exploration
//     searches and sweeps: bounded concurrency, event-log replay, retained
//     results with TTL, cancel and kind-dispatched resume-from-checkpoint;
//   - internal/sweep — the hidden-event-space sweep workload: raw
//     event×umask×cmask grids decoded into synthetic derived counters
//     over a simulated base corpus;
//   - internal/server — the HTTP/JSON feasibility service over the
//     engine, the jobs API over the manager, and live ingest streams
//     (bounded queues, explicit backpressure, replayable verdict
//     events) over incremental sessions;
//   - internal/haswell, internal/pagetable, internal/memsim,
//     internal/workloads — the simulated Haswell MMU substrate that stands
//     in for the paper's silicon;
//   - internal/dcache, internal/errata, internal/perfdb — the §9
//     extension component, counter errata modelling, and the Figure 1a
//     HEC census;
//   - internal/experiments — regenerates every table and figure;
//   - cmd/counterpoint, cmd/counterpointd, cmd/hswsim, cmd/streamgen,
//     cmd/experiments — the executables (streamgen is the stream-tier
//     load generator);
//   - examples/ — runnable walkthroughs of the public API (see
//     examples/engine for the batched/streaming evaluation API,
//     examples/service for the HTTP API, and examples/explore-service
//     for exploration jobs); the headline walkthroughs are also
//     executable godoc examples in examples_test.go.
//
// # Service quickstart
//
// Start the feasibility daemon (the registry boots with the paper's
// Table 3/5/7 model catalogue) and drive it with curl:
//
//	go run ./cmd/counterpointd -addr :8417 &
//
//	# list the catalogue, inspect a model's deduced constraints
//	curl -s localhost:8417/v1/models
//	curl -s localhost:8417/v1/models/m0
//
//	# register a model from DSL source
//	curl -s -X POST localhost:8417/v1/models \
//	  -d '{"name":"pde","source":"incr load.causes_walk;\nswitch Pde$Status { Hit => pass; Miss => incr load.pde$_miss; };\ndone;"}'
//
//	# one observation, one verdict (violated constraints included)
//	curl -s -X POST localhost:8417/v1/models/pde/test \
//	  -d '{"label":"run","events":["load.causes_walk","load.pde$_miss"],"samples":[[10,2],[11,3],[10,2]]}'
//
//	# evaluate a CSV corpus (as written by hswsim), streaming NDJSON
//	# verdicts; stop at the first refutation
//	curl -sN -X POST 'localhost:8417/v1/models/pde/evaluate/stream?first=true' \
//	  -F corpus=@samples.csv -F corpus=@more.csv
//
//	# sweep the hidden event space: a raw event×umask×cmask grid over a
//	# simulated base corpus, as an asynchronous job
//	curl -s -X POST localhost:8417/v1/sweep -d '{"seed":1}'
//
//	# live ingest: open a stream on a model, feed NDJSON observations as
//	# they arrive, watch verdict events, close
//	curl -s -X POST localhost:8417/v1/streams -d '{"model":"pde"}'
//	curl -s -X POST localhost:8417/v1/streams/s000001/ingest --data-binary @batch.ndjson
//	curl -sN localhost:8417/v1/streams/s000001/events
//	curl -s -X DELETE localhost:8417/v1/streams/s000001
//
//	# telemetry: two-tier solver counters (float-filter hits,
//	# certification failures, exact fallbacks), arithmetic-kernel and
//	# warm-start counters, engine caches, sweep planning, stream
//	# queues/latency
//	curl -s localhost:8417/stats
//
// Guided exploration runs as asynchronous jobs: submit a
// feature-conditional DSL template (lines between "#if feature" and
// "#endif" belong to that candidate feature) with a corpus, then follow
// the search:
//
//	curl -s -X POST localhost:8417/v1/explore -d @exploration.json
//	curl -s localhost:8417/v1/jobs
//	curl -sN localhost:8417/v1/jobs/j000001/events   # NDJSON progress
//	curl -s localhost:8417/v1/jobs/j000001           # result + search graph
//	curl -s -X DELETE localhost:8417/v1/jobs/j000001 # cancel
//	curl -s -X POST localhost:8417/v1/jobs/j000001/resume
//
// See README.md for the tour, docs/API.md for the complete endpoint
// reference, DESIGN.md for the design notes, and internal/server for the
// handlers.
//
// The benchmarks in bench_test.go regenerate each experiment (Figures 1a–9b
// and Tables 1–7) under the Go benchmark harness, and
// internal/engine/bench_test.go records the per-call vs session-cached
// corpus-evaluation comparison.
package repro
