// Noise: counter multiplexing and confidence regions (Figures 1c, 3d, 5c).
//
// A phased workload is measured at scheduler-slice granularity and its
// logical counters are multiplexed onto 4 physical counters, like perf
// does. We show (i) extrapolation noise growing with the number of active
// counters, and (ii) correlated confidence regions staying far tighter
// than the naive independent ones on the same noisy samples.
//
// Run with: go run ./examples/noise
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/haswell"
	"repro/internal/multiplex"
	"repro/internal/pagetable"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	// A workload that alternates between walk-heavy and TLB-resident
	// phases: per-slice counter rates vary, so multiplexed extrapolation
	// is noisy — and all counters ride the same phases, so the noise is
	// correlated.
	heavy, err := workloads.NewRandomBurst(512<<20, 4, 1.0, 3)
	if err != nil {
		log.Fatal(err)
	}
	quiet, err := workloads.NewStencil(96<<10, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workloads.NewPhased(heavy, 25000, quiet, 25000)
	if err != nil {
		log.Fatal(err)
	}

	const (
		slices       = 20
		samples      = 40
		uopsPerSlice = 1000
	)
	sim := haswell.NewSimulator(haswell.DefaultConfig(pagetable.Page4K))
	sim.Step(gen, 30000)
	truth := sim.Observation(gen, samples*slices, uopsPerSlice)

	fmt.Println("multiplexing noise vs active counters (4 physical counters):")
	events := haswell.GroundTruthSet().Events()
	for _, n := range []int{4, 8, 16, 26} {
		set := counters.NewSet(events[:n]...)
		noisy, err := multiplex.Apply(truth.Project(set), multiplex.Config{
			PhysicalCounters: 4, SlicesPerSample: slices,
			RotationJitter: true, JitterSeed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d active counters: mean σ/μ = %.3f\n", n, multiplex.NoiseSummary(noisy))
	}

	// Confidence regions on the full noisy observation.
	noisy, err := multiplex.Apply(truth, multiplex.Config{
		PhysicalCounters: 4, SlicesPerSample: slices,
		RotationJitter: true, JitterSeed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	corr, err := stats.NewRegion(noisy, core.DefaultConfidence, stats.Correlated)
	if err != nil {
		log.Fatal(err)
	}
	ind, err := stats.NewRegion(noisy, core.DefaultConfidence, stats.Independent)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n99% confidence regions on the same noisy samples:")
	fmt.Printf("  correlated (CounterPoint): log-volume %8.1f\n", corr.LogVolume())
	fmt.Printf("  independent (status quo):  log-volume %8.1f\n", ind.LogVolume())
	fmt.Println("\nper-counter 99% intervals (correlated region):")
	for _, e := range []counters.Event{"load.causes_walk", "load.pde$_miss", "load.walk_done"} {
		lo, hi, ok := corr.Project(e)
		if !ok {
			continue
		}
		fmt.Printf("  %-18s [%9.0f, %9.0f]\n", e, lo, hi)
	}
}
