// Service walkthrough: the counterpointd HTTP/JSON feasibility API.
//
// The engine example drives corpus evaluation through the Go API; this one
// drives the same engine over the wire, the way a fleet-monitoring client
// would talk to a long-running counterpointd:
//
//  1. start an in-process server (identical to cmd/counterpointd),
//  2. register a model by uploading DSL source,
//  3. fetch its deduced constraints and counter signatures,
//  4. test one observation for a single verdict,
//  5. evaluate a corpus in one shot,
//  6. stream verdicts over NDJSON and stop at the first refutation.
//
// Run with: go run ./examples/service
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"

	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/haswell"
	"repro/internal/server"
)

const modelSrc = `
incr load.causes_walk;
do   LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => incr load.pde$_miss;
};
done;
`

func main() {
	// 1. The service: one engine, catalogue-seeded registry. In production
	// this is `counterpointd -addr :8417`; here it lives in-process.
	eng := engine.New()
	defer eng.Close()
	var catalog []server.Model
	for _, cm := range haswell.Catalog() {
		catalog = append(catalog, server.Model{Name: cm.Name, Source: cm.Source})
	}
	ts := httptest.NewServer(server.New(server.Options{
		Engine:   eng,
		Defaults: engine.Config{IdentifyViolations: true},
		Catalog:  catalog,
	}))
	defer ts.Close()

	var names struct {
		Models []string `json:"models"`
	}
	getJSON(ts.URL+"/v1/models", &names)
	fmt.Printf("service is up with %d catalogue models (m0–m11, t0–t17, a0–a3, discovered)\n",
		len(names.Models))

	// 2. Register a model: POST the DSL, get the compiled summary back.
	body, _ := json.Marshal(map[string]string{"name": "pde-cache", "source": modelSrc})
	resp, err := http.Post(ts.URL+"/v1/models", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var summary struct {
		Name     string   `json:"name"`
		Counters []string `json:"counters"`
		NumPaths int      `json:"num_paths"`
	}
	decode(resp, &summary)
	fmt.Printf("registered %q: %d μpaths over counters %v\n",
		summary.Name, summary.NumPaths, summary.Counters)

	// 3. Describe it: the deduced model constraints and per-μpath counter
	// signatures, servable to any client without a Go toolchain.
	var desc struct {
		Constraints []string   `json:"constraints"`
		Signatures  [][]string `json:"signatures"`
	}
	getJSON(ts.URL+"/v1/models/pde-cache", &desc)
	fmt.Printf("deduced constraints: %v\n", desc.Constraints)
	fmt.Printf("counter signatures: %v\n", desc.Signatures)

	// 4. One observation, one verdict. The anomalous pde$_miss >
	// causes_walk pattern refutes the model.
	set := counters.NewSet("load.causes_walk", "load.pde$_miss")
	bad := synth("anomalous", set, 700, 1000, 99)
	verdict := postObservation(ts.URL+"/v1/models/pde-cache/test", bad)
	fmt.Printf("verdict for %q: feasible=%v violations=%v\n",
		"anomalous", verdict.Feasible, verdict.Violations)

	// 5. Corpus evaluation: upload many observations, get the aggregate.
	corpus := []*counters.Observation{
		synth("run-0", set, 1000, 700, 0),
		synth("run-1", set, 1000, 700, 1),
		bad,
	}
	payload, _ := json.Marshal(map[string]any{"observations": corpus})
	resp, err = http.Post(ts.URL+"/v1/models/pde-cache/evaluate", "application/json",
		bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	var agg struct {
		Total               int            `json:"total"`
		Infeasible          int            `json:"infeasible"`
		ViolatedConstraints map[string]int `json:"violated_constraints"`
	}
	decode(resp, &agg)
	fmt.Printf("corpus: %d/%d observations refute the model, violations %v\n",
		agg.Infeasible, agg.Total, agg.ViolatedConstraints)

	// 6. Streaming: NDJSON verdicts as workers complete them. first=true
	// asks the engine to stop the run at the first refutation.
	resp, err = http.Post(ts.URL+"/v1/models/pde-cache/evaluate/stream?first=true&batch=1",
		"application/json", bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Observation string `json:"observation"`
			Feasible    *bool  `json:"feasible"`
			Done        bool   `json:"done"`
			Total       int    `json:"total"`
			Infeasible  int    `json:"infeasible"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			log.Fatal(err)
		}
		switch {
		case line.Done:
			fmt.Printf("stream done: early exit after %d of %d observations\n",
				line.Total, len(corpus))
		case line.Feasible != nil && !*line.Feasible:
			fmt.Printf("streamed refutation from %q\n", line.Observation)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

// synth builds an observation whose samples hover around (cw, pm).
func synth(label string, set *counters.Set, cw, pm float64, seed int64) *counters.Observation {
	o := counters.NewObservation(label, set)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 500; i++ {
		o.Append([]float64{cw + rng.NormFloat64(), pm + rng.NormFloat64()})
	}
	return o
}

type verdictResp struct {
	Feasible   bool     `json:"feasible"`
	Violations []string `json:"violations"`
}

func postObservation(url string, o *counters.Observation) verdictResp {
	body, _ := json.Marshal(o)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var v verdictResp
	decode(resp, &v)
	return v
}

func getJSON(url string, dst any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, dst)
}

func decode(resp *http.Response, dst any) {
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("%s: %s", resp.Status, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		log.Fatal(err)
	}
}
