// Engine walkthrough: batched and streaming corpus evaluation.
//
// The quickstart example tests observations one at a time through
// core.Model. Real workloads — model sweeps, continuously-running counter
// checking, the paper's Tables 3/5/7 — test whole corpora against many
// models. This example drives the engine API that serves those workloads:
//
//  1. an Engine with a bounded worker pool and shared caches,
//  2. a Session binding a model to an evaluation configuration,
//  3. Session.Evaluate for one-shot corpus verdicts,
//  4. Session.EvaluateStream for verdicts streamed as they complete,
//     with cancellation and early exit,
//  5. Session.Restrict for counter-set sweeps that share cached work.
//
// Run with: go run ./examples/engine
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/stats"
)

const modelSrc = `
incr load.causes_walk;
do   LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => incr load.pde$_miss;
};
done;
`

func main() {
	set := counters.NewSet("load.causes_walk", "load.pde$_miss")
	model, err := core.ModelFromDSL("pde-cache", modelSrc, set)
	if err != nil {
		log.Fatal(err)
	}

	// A synthetic corpus: mostly consistent runs, with a few exhibiting the
	// Haswell pde$_miss > causes_walk anomaly.
	corpus := make([]*counters.Observation, 0, 40)
	for i := 0; i < 40; i++ {
		cw, pm := 1000.0, 700.0
		if i%10 == 9 {
			cw, pm = 700.0, 1000.0 // anomalous
		}
		obs := counters.NewObservation(fmt.Sprintf("run-%02d", i), set)
		rng := rand.New(rand.NewSource(int64(i)))
		for s := 0; s < 2000; s++ {
			obs.Append([]float64{cw + rng.NormFloat64(), pm + rng.NormFloat64()})
		}
		corpus = append(corpus, obs)
	}

	// 1. A dedicated engine. engine.Default() shares one pool process-wide;
	// a dedicated engine can be Closed and sized explicitly.
	eng := engine.New(engine.WithWorkers(4))
	defer eng.Close()

	// 2. A session: one model, one configuration.
	sess, err := eng.NewSession(model, engine.Config{
		Confidence:         core.DefaultConfidence,
		Mode:               stats.Correlated,
		IdentifyViolations: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. One-shot evaluation: the whole corpus, aggregated.
	t0 := time.Now()
	res, err := sess.Evaluate(context.Background(), corpus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d/%d observations refute the model (%.1fms)\n",
		res.Infeasible, res.Total, float64(time.Since(t0).Microseconds())/1000)
	for k, n := range res.ViolatedConstraints {
		fmt.Printf("  violated %d times: %s\n", n, k)
	}

	// Evaluating again hits the engine's region and LP caches — the
	// steady state of a model sweep over a fixed corpus.
	t1 := time.Now()
	if _, err := sess.Evaluate(context.Background(), corpus); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-evaluation with warm caches: %.1fms\n",
		float64(time.Since(t1).Microseconds())/1000)

	// 4. Streaming: verdicts arrive as workers finish them; the consumer
	// decides when it has seen enough. Here we stop the whole run at the
	// first refutation via the session config.
	early, err := eng.NewSession(model, engine.Config{StopOnInfeasible: true})
	if err != nil {
		log.Fatal(err)
	}
	in := make(chan *counters.Observation, len(corpus))
	for _, o := range corpus {
		in <- o
	}
	close(in)
	st := early.EvaluateStream(context.Background(), in)
	for item := range st.C {
		if item.Err != nil {
			log.Fatal(item.Err)
		}
		if !item.Verdict.Feasible {
			fmt.Printf("streamed refutation from %s (observation #%d)\n",
				item.Verdict.Observation, item.Index)
		}
	}
	partial, err := st.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("early exit evaluated %d of %d observations\n", partial.Total, len(corpus))

	// 5. Counter-set sweep: restricted sessions share the engine caches, so
	// dropping a counter re-uses everything already computed for the rest.
	sub, err := sess.Restrict(counters.NewSet("load.causes_walk"))
	if err != nil {
		log.Fatal(err)
	}
	subRes, err := sub.Evaluate(context.Background(), corpus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restricted to causes_walk only: %d/%d infeasible (the anomaly needs both counters)\n",
		subRes.Infeasible, subRes.Total)
}
