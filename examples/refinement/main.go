// Refinement: the paper's Figure 6 walkthrough against simulated silicon.
//
// The initial μDD assumes the walk starts before the PDE cache is looked
// up. Real (simulated) Haswell looks the PDE cache up first and can merge
// or abort requests afterwards, so measurements violate the implied
// constraint C: pde$_miss <= causes_walk. CounterPoint reports C, we refine
// the μDD with early PSC lookup + abortable requests, and the refined model
// accepts the same data — while its cone provably contains a μpath whose
// counter signature violates C (Figure 6d).
//
// Run with: go run ./examples/refinement
package main

import (
	"fmt"
	"log"

	"repro/internal/cone"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/exact"
	"repro/internal/haswell"
	"repro/internal/pagetable"
	"repro/internal/stats"
	"repro/internal/workloads"
)

const initialSrc = `
incr load.causes_walk;
do   LookupPde$;
switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss; };
done;
`

const refinedSrc = `
do LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => {
        incr load.pde$_miss;
        switch Abort { Yes => done; No => pass; };
    };
};
do   StartWalk;
incr load.causes_walk;
done;
`

func main() {
	// Measure the simulated Haswell with a bursty object-access workload —
	// the regime in which MSHR merging makes merged requests miss the PDE
	// cache without starting walks of their own.
	sim := haswell.NewSimulator(haswell.DefaultConfig(pagetable.Page4K))
	gen, err := workloads.NewRandomBurst(512<<20, 16, 1.0, 7)
	if err != nil {
		log.Fatal(err)
	}
	sim.Step(gen, 20000) // warm up
	obs := sim.Observation(gen, 20, 10000)

	set := counters.NewSet("load.causes_walk", "load.pde$_miss")
	initial, err := core.ModelFromDSL("initial", initialSrc, set)
	if err != nil {
		log.Fatal(err)
	}
	v, err := initial.TestObservation(obs, core.DefaultConfidence, stats.Correlated, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial model vs %s:\n  feasible: %v\n", obs.Label, v.Feasible)
	for _, k := range v.Violations {
		fmt.Printf("  violated: %s\n", k)
	}

	refined, err := core.ModelFromDSL("refined", refinedSrc, set)
	if err != nil {
		log.Fatal(err)
	}
	v2, err := refined.TestObservation(obs, core.DefaultConfidence, stats.Correlated, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrefined model (early PSC lookup + abortable requests):\n  feasible: %v\n", v2.Feasible)

	// Figure 6d: the refinement works because a new μpath's signature
	// explicitly violates C.
	c := cone.Constraint{Set: set, Coeffs: exact.VecFromInts(-1, 1), Rel: cone.LEZero}
	fmt.Printf("  refined cone still implies C: %v\n", refined.Cone().Implies(c))
	for _, g := range refined.Cone().Generators {
		if !c.SatisfiedBy(g) {
			fmt.Printf("  witness μpath signature (causes_walk, pde$_miss) = %v\n", g)
		}
	}
	// And refinement expanded the cone, as §5 requires.
	fmt.Printf("  initial cone ⊆ refined cone: %v\n", initial.Cone().SubsetOf(refined.Cone()))
}
