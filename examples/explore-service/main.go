// Explore-service walkthrough: guided model exploration as an
// asynchronous HTTP job.
//
// The mmu-exploration example runs the paper's §5 / Appendix C search
// through the Go API; this one drives the same search over the wire, the
// way a client without a Go toolchain would use a long-running
// counterpointd:
//
//  1. start an in-process server (identical to cmd/counterpointd),
//  2. submit an exploration job: a feature-conditional DSL template
//     (#if feature ... #endif) plus a measurement corpus,
//  3. stream its NDJSON progress events — every node evaluated, the
//     feature the discovery phase adopts, the subtrees elimination prunes,
//  4. fetch the final result: the converged model, the minimal feasible
//     models, and the Figure 7-style required/optional classification,
//  5. demonstrate cancel + resume: a second copy of the job is cancelled
//     mid-search and resumed from its checkpoint.
//
// Run with: go run ./examples/explore-service
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/server"
)

// template is the Figure 6 feature space as the HTTP API takes it: plain
// CounterPoint DSL in which #if guards mark the candidate features. The
// corpus below exhibits the pde$_miss > causes_walk anomaly that only the
// "abort" feature explains; "doublewalk" is a red herring the elimination
// phase must prune.
const template = `
do LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => {
        incr load.pde$_miss;
#if abort
        switch Abort { Yes => done; No => pass; };
#endif
    };
};
incr load.causes_walk;
#if doublewalk
switch Double { Yes => incr load.causes_walk; No => pass; };
#endif
done;
`

func main() {
	// 1. The service: one engine, one jobs manager. In production this is
	// `counterpointd -addr :8417 -max-jobs 2`; here it lives in-process.
	eng := engine.New()
	defer eng.Close()
	jm := jobs.NewManager(jobs.Options{MaxConcurrent: 1})
	defer jm.Close()
	ts := httptest.NewServer(server.New(server.Options{Engine: eng, Jobs: jm}))
	defer ts.Close()

	// 2. Submit the exploration job.
	set := counters.NewSet("load.causes_walk", "load.pde$_miss")
	payload, _ := json.Marshal(map[string]any{
		"source": template,
		"observations": []*counters.Observation{
			synth("benign", set, 500, 300, 1),
			synth("anomalous", set, 200, 500, 2), // pde$_miss > causes_walk
		},
	})
	var sub struct {
		ID         string   `json:"id"`
		State      string   `json:"state"`
		Candidates []string `json:"candidates"`
	}
	postJSON(ts.URL+"/v1/explore", payload, &sub)
	fmt.Printf("submitted job %s over candidate features %v\n", sub.ID, sub.Candidates)

	// 3. Stream progress: NDJSON, full history replayed, closed after the
	// terminal event. (A disconnected watcher never cancels the job.)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev struct {
			Kind string `json:"kind"`
			Data struct {
				Node *struct {
					Key        string `json:"key"`
					Feasible   bool   `json:"feasible"`
					Infeasible int    `json:"infeasible"`
					Total      int    `json:"total"`
				} `json:"node"`
				Feature string `json:"feature"`
			} `json:"data"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			log.Fatal(err)
		}
		switch ev.Kind {
		case "node-evaluated":
			verdict := "FEASIBLE"
			if !ev.Data.Node.Feasible {
				verdict = fmt.Sprintf("infeasible (%d/%d)", ev.Data.Node.Infeasible, ev.Data.Node.Total)
			}
			fmt.Printf("  evaluated {%s}: %s\n", ev.Data.Node.Key, verdict)
		case "feature-adopted":
			fmt.Printf("  discovery adopts %q\n", ev.Data.Feature)
		case "subtree-pruned":
			fmt.Printf("  elimination prunes removal of %q\n", ev.Data.Feature)
		case "minimal-model":
			fmt.Printf("  minimal feasible model {%s}\n", ev.Data.Node.Key)
		default:
			fmt.Printf("  [%s]\n", ev.Kind)
		}
	}
	resp.Body.Close()

	// 4. The result: final model, minimal models, classification.
	var st struct {
		State  string `json:"state"`
		Result struct {
			Final struct {
				Key string `json:"key"`
			} `json:"final"`
			Minimal  []struct{ Key string } `json:"minimal"`
			Required []string               `json:"required"`
			Optional []string               `json:"optional"`
		} `json:"result"`
	}
	getJSON(ts.URL+"/v1/jobs/"+sub.ID, &st)
	fmt.Printf("job %s: converged on {%s}\n", st.State, st.Result.Final.Key)
	fmt.Printf("features required by the data:    %v\n", st.Result.Required)
	fmt.Printf("features the data cannot resolve: %v\n", st.Result.Optional)

	// 5. Cancel + resume: the same search again, cancelled before it
	// converges, then resumed from its checkpoint. The resumed job
	// restores whatever graph the original committed and converges on the
	// identical model (the parallel search is deterministic, so an
	// interrupted-and-resumed run reproduces an uninterrupted one bit for
	// bit). To make the cancellation land deterministically in this
	// walkthrough, a stand-in job occupies the daemon's single slot so
	// our submission waits in the queue — the state a busy daemon is
	// routinely in.
	release := make(chan struct{})
	if _, err := jm.Submit("stand-in", func(ctx context.Context, job *jobs.Job) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}); err != nil {
		log.Fatal(err)
	}
	var sub2 struct {
		ID string `json:"id"`
	}
	postJSON(ts.URL+"/v1/explore", payload, &sub2)
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+sub2.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		log.Fatal(err)
	} else {
		resp.Body.Close()
	}
	waitTerminal(ts.URL, sub2.ID)
	close(release) // the stand-in finishes; the queue drains
	var resumed struct {
		ID          string `json:"id"`
		ResumedFrom string `json:"resumed_from"`
	}
	postJSON(ts.URL+"/v1/jobs/"+sub2.ID+"/resume", nil, &resumed)
	fmt.Printf("job %s cancelled; resumed as %s (from checkpoint of %s)\n", sub2.ID, resumed.ID, resumed.ResumedFrom)
	waitTerminal(ts.URL, resumed.ID)
	var st2 struct {
		State  string `json:"state"`
		Result struct {
			Final struct {
				Key string `json:"key"`
			} `json:"final"`
		} `json:"result"`
	}
	getJSON(ts.URL+"/v1/jobs/"+resumed.ID, &st2)
	fmt.Printf("resumed job %s: converged on {%s} again\n", st2.State, st2.Result.Final.Key)
}

func synth(label string, set *counters.Set, cw, pm float64, seed int64) *counters.Observation {
	o := counters.NewObservation(label, set)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 200; i++ {
		o.Append([]float64{cw + rng.NormFloat64(), pm + rng.NormFloat64()})
	}
	return o
}

func postJSON(url string, body []byte, dst any) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, e.Error)
	}
	if dst != nil {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			log.Fatal(err)
		}
	}
}

func getJSON(url string, dst any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		log.Fatal(err)
	}
}

func waitTerminal(base, id string) {
	for {
		var st struct {
			State string `json:"state"`
		}
		getJSON(base+"/v1/jobs/"+id, &st)
		switch st.State {
		case "done", "failed", "cancelled":
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
