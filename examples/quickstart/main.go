// Quickstart: the paper's §1 example end to end.
//
// We write a tiny mental model of the PDE cache in the CounterPoint DSL —
// "every page walk consults the PDE cache exactly once" — deduce its model
// constraints, and test it against two observations: one consistent, one
// exhibiting the pde$_miss > causes_walk anomaly that real Haswell shows.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/stats"
)

const modelSrc = `
// A load that misses the STLB starts a walk, then consults the PDE cache.
incr load.causes_walk;
do   LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => incr load.pde$_miss;
};
done;
`

func main() {
	set := counters.NewSet("load.causes_walk", "load.pde$_miss")
	model, err := core.ModelFromDSL("pde-cache", modelSrc, set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model has %d μpaths\n", model.NumPaths())

	h, err := model.Constraints()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deduced model constraints:")
	for _, k := range h.All() {
		fmt.Printf("  %s\n", k)
	}

	test := func(label string, causesWalk, pdeMiss float64) {
		obs := counters.NewObservation(label, set)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 200; i++ {
			obs.Append([]float64{causesWalk + rng.NormFloat64(), pdeMiss + rng.NormFloat64()})
		}
		v, err := model.TestObservation(obs, core.DefaultConfidence, stats.Correlated, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nobservation %q (causes_walk≈%.0f, pde$_miss≈%.0f):\n", label, causesWalk, pdeMiss)
		if v.Feasible {
			fmt.Println("  FEASIBLE — consistent with the mental model")
			return
		}
		fmt.Println("  INFEASIBLE — the mental model is wrong; violated constraints:")
		for _, k := range v.Violations {
			fmt.Printf("    %s\n", k)
		}
	}

	test("well-behaved", 1000, 700)
	// The surprise the paper opens with: on Haswell, PDE-cache misses can
	// exceed walks (merged walks + early PDE lookup + aborted requests).
	test("haswell-anomaly", 700, 1000)
}
