// MMU exploration: the paper's Appendix C search, automated.
//
// A corpus of MMU-stressing workloads is measured on the simulated Haswell.
// Starting from the conventional textbook MMU model, the discovery phase
// adds whichever candidate feature (TLB prefetcher, early PSC lookup, walk
// merging, PML4E cache, walk bypassing) best reduces the number of refuted
// observations; the elimination phase then prunes features whose removal
// keeps the model feasible. The search converges on the paper's discovered
// feature set and classifies the PML4E cache as unresolvable.
//
// Run with: go run ./examples/mmu-exploration
// (takes a couple of minutes: it simulates the corpus and evaluates every
// candidate model on it)
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/haswell"
)

func main() {
	fmt.Println("simulating measurement corpus on the Haswell MMU...")
	corpus, err := haswell.BuildCorpus(haswell.QuickCorpusSpec())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d observations\n\n", len(corpus))

	universe := haswell.SearchUniverse()
	set := haswell.AnalysisSet()
	builder := func(fs explore.FeatureSet) (*core.Model, error) {
		f := haswell.SearchFeatures(func(name string) bool { return fs[name] })
		return haswell.BuildModel("search:"+fs.Key(), f, set)
	}

	search := explore.NewSearch(builder, corpus)
	final, err := search.Discover(explore.NewFeatureSet(), universe)
	if err != nil {
		log.Fatal(err)
	}
	if !final.Feasible() {
		log.Fatalf("search did not converge: best model %s still has %d refuted observations",
			final.Features, final.Infeasible)
	}
	minimal, err := search.Eliminate(final, universe)
	if err != nil {
		log.Fatal(err)
	}
	// Probe the PML4E ambiguity explicitly (the paper's m4 vs m8).
	if _, err := search.Evaluate(final.Features.With("pml4e"), final.Features.Key(), explore.OpEnumerated); err != nil {
		log.Fatal(err)
	}

	fmt.Println("search graph:")
	fmt.Print(search.GraphReport())
	fmt.Println()
	for _, n := range minimal {
		fmt.Printf("minimal feasible model: %s\n", n.Features)
	}
	c := search.Classify(universe)
	fmt.Printf("features required by the data:   %v\n", c.Required)
	fmt.Printf("features the data cannot resolve: %v\n", c.Optional)
}
