package repro

// Benchmark harness: one benchmark per paper table/figure (regenerating it
// through internal/experiments in quick mode) plus micro-benchmarks for the
// core algorithmic pieces that Figures 9a/9b characterise.

import (
	"io"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/dsl"
	"repro/internal/experiments"
	"repro/internal/floatlp"
	"repro/internal/haswell"
	"repro/internal/pagetable"
	"repro/internal/simplex"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// benchExperiment reruns a whole experiment in quick mode.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	opts := experiments.Options{Quick: true}
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(io.Discard, name, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1a(b *testing.B)     { benchExperiment(b, "fig1a") }
func BenchmarkFig1b(b *testing.B)     { benchExperiment(b, "fig1b") }
func BenchmarkFig1c(b *testing.B)     { benchExperiment(b, "fig1c") }
func BenchmarkFig3(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFig3d(b *testing.B)     { benchExperiment(b, "fig3d") }
func BenchmarkFig5a(b *testing.B)     { benchExperiment(b, "fig5a") }
func BenchmarkTable1(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkFig6(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkTable3(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkFig10(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkTable5(b *testing.B)    { benchExperiment(b, "table5") }
func BenchmarkTable7(b *testing.B)    { benchExperiment(b, "table7") }
func BenchmarkCorrStats(b *testing.B) { benchExperiment(b, "corrstats") }

// BenchmarkFig9aFeasibility measures single-observation feasibility
// testing per cumulative counter group (the paper's Figure 9a, ~linear in
// counters), for both tiers of the two-tier solver: "exact" drives every
// verdict through the rational simplex, "hybrid" lets the float64
// revised-simplex filter certify verdicts first. Each iteration rebuilds
// the confidence region and the LP — the cold single-observation path.
func BenchmarkFig9aFeasibility(b *testing.B) {
	d, err := haswell.BuildDiagram("bench", haswell.DiscoveredModelFeatures())
	if err != nil {
		b.Fatal(err)
	}
	obs := benchObservation(b)
	reg := counters.NewHaswellRegistry(false)
	var acc []counters.Event
	for _, g := range []counters.Group{counters.GroupRet, counters.GroupSTLB, counters.GroupWalk} {
		acc = append(acc, reg.GroupEvents(g)...)
		set := counters.NewSet(acc...)
		m, err := core.NewModel("bench", d, set)
		if err != nil {
			b.Fatal(err)
		}
		for _, tier := range []struct {
			name   string
			solver *core.Solver
		}{
			{"exact", &core.Solver{Exact: simplex.NewWorkspace()}},
			{"hybrid", core.NewSolver(nil)},
		} {
			b.Run(string(g)+"/"+tier.name, func(b *testing.B) {
				proj := obs.Project(set)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := stats.NewRegion(proj, core.DefaultConfidence, stats.Correlated)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := m.TestRegionSolver(tier.solver, r, false); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		// certify-only isolates the per-verdict certification cost the
		// int64 kernel targets: one float-tier certificate, checked
		// exactly over and over on a fixed LP (no region/LP rebuild, no
		// float solve in the timed loop).
		b.Run(string(g)+"/certify-only", func(b *testing.B) {
			proj := obs.Project(set)
			r, err := stats.NewRegion(proj, core.DefaultConfidence, stats.Correlated)
			if err != nil {
				b.Fatal(err)
			}
			p := simplex.NewProblem(0)
			if err := m.RegionLP(p, r); err != nil {
				b.Fatal(err)
			}
			out := floatlp.NewWorkspace().Feasibility(p)
			cert := simplex.NewCertifier()
			b.ReportAllocs()
			b.ResetTimer()
			switch out.Status {
			case floatlp.Feasible:
				for i := 0; i < b.N; i++ {
					if !cert.CertifyPoint(p, out.Point) {
						b.Fatal("feasible certificate rejected")
					}
				}
			case floatlp.Infeasible:
				for i := 0; i < b.N; i++ {
					if !cert.CertifyFarkas(p, out.Ray) {
						b.Fatal("Farkas certificate rejected")
					}
				}
			default:
				b.Skip("float filter inconclusive on the bench LP")
			}
		})
	}
}

// BenchmarkFig9bDeduction measures constraint deduction per cumulative
// counter group (the paper's Figure 9b, exponential in groups).
func BenchmarkFig9bDeduction(b *testing.B) {
	d, err := haswell.BuildDiagram("bench", haswell.DiscoveredModelFeatures())
	if err != nil {
		b.Fatal(err)
	}
	reg := counters.NewHaswellRegistry(false)
	var acc []counters.Event
	for _, g := range []counters.Group{counters.GroupRet, counters.GroupSTLB, counters.GroupWalk} {
		acc = append(acc, reg.GroupEvents(g)...)
		set := counters.NewSet(acc...)
		b.Run(string(g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// A fresh model per iteration: Constraints() is cached.
				m, err := core.NewModel("bench", d, set)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.Constraints(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchObservation(b *testing.B) *counters.Observation {
	b.Helper()
	sim := haswell.NewSimulator(haswell.DefaultConfig(pagetable.Page4K))
	gen, err := workloads.NewRandomBurst(256<<20, 8, 0.9, 3)
	if err != nil {
		b.Fatal(err)
	}
	sim.Step(gen, 10000)
	return haswell.WithAggregateWalkRef(sim.Observation(gen, 12, 8000))
}

// BenchmarkSimulator measures the Haswell MMU simulator's μop throughput.
func BenchmarkSimulator(b *testing.B) {
	sim := haswell.NewSimulator(haswell.DefaultConfig(pagetable.Page4K))
	gen, err := workloads.NewRandom(256<<20, 0.8, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sim.Step(gen, b.N)
}

// BenchmarkDSLCompile measures compiling the full discovered-feature model
// from DSL source to a validated μDD.
func BenchmarkDSLCompile(b *testing.B) {
	src := haswell.GenerateDSL(haswell.DiscoveredModelFeatures())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsl.Compile("bench", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathEnumeration measures μpath enumeration and signature
// extraction for the discovered model.
func BenchmarkPathEnumeration(b *testing.B) {
	d, err := haswell.BuildDiagram("bench", haswell.DiscoveredModelFeatures())
	if err != nil {
		b.Fatal(err)
	}
	set := haswell.AnalysisSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Signatures(set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeasibilityLP measures one feasibility LP verdict on the full
// analysis counter set over a cached LP — the engine's steady state, where
// RegionLP construction is amortised by the per-(model, region) cache and
// the solve is the hot path. "exact" is the rational two-phase simplex;
// "hybrid" is the two-tier solver (float64 revised-simplex filter + exact
// certificate check, falling back to the exact solver when certification
// fails). The ISSUE 3 acceptance criterion is hybrid ≥2× fewer ns/op.
func BenchmarkFeasibilityLP(b *testing.B) {
	set := haswell.AnalysisSet()
	m, err := haswell.BuildModel("bench", haswell.DiscoveredModelFeatures(), set)
	if err != nil {
		b.Fatal(err)
	}
	obs := benchObservation(b)
	r, err := stats.NewRegion(obs.Project(set), core.DefaultConfidence, stats.Correlated)
	if err != nil {
		b.Fatal(err)
	}
	p := simplex.NewProblem(0)
	if err := m.RegionLP(p, r); err != nil {
		b.Fatal(err)
	}
	for _, tier := range []struct {
		name   string
		solver *core.Solver
	}{
		{"exact", &core.Solver{Exact: simplex.NewWorkspace()}},
		{"hybrid", core.NewSolver(nil)},
	} {
		b.Run(tier.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.TestRegionLP(tier.solver, p, r, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// driftObservation returns a copy of o with every sample shifted by the
// same constant vector (frac of the mean, per coordinate, rounded to an
// integer so counter samples stay integers and the LP bounds stay cheap
// rationals). The shift leaves the sample covariance — and therefore the
// confidence-region axes — bit-identical, so consecutive regions of a
// drift sequence yield feasibility LPs sharing their coefficient rows
// with drifting bounds: the workload the warm-start dual simplex
// re-enters a cached basis for.
func driftObservation(o *counters.Observation, frac float64) *counters.Observation {
	mean := o.Mean()
	out := counters.NewObservation(o.Label, o.Set)
	for _, s := range o.Samples {
		v := make([]float64, len(s))
		for j := range s {
			v[j] = s[j] + math.Round(frac*(1+mean[j]))
		}
		out.Append(v)
	}
	return out
}

// BenchmarkWalkWarmStart measures the walk steady state the warm-start
// dual simplex targets: a sequence of confidence regions whose axes are
// identical and whose bounds drift step to step (driftObservation), each
// step needing one exact feasibility verdict on the full analysis set —
// the same LP shape as Fig9a's Walk group. "cold" solves every step from
// scratch on the exact workspace (the PR 5 walk baseline); "warm"
// re-enters the previous step's optimal basis and repairs it with dual
// pivots. Both arms rebuild the LP rows per step (bounds change);
// verdicts are checked identical before timing.
func BenchmarkWalkWarmStart(b *testing.B) {
	// The same cumulative Walk-group counter set as Fig9a's Walk case, so
	// "cold" here is directly comparable to Fig9aFeasibility/Walk/exact.
	reg := counters.NewHaswellRegistry(false)
	var acc []counters.Event
	for _, g := range []counters.Group{counters.GroupRet, counters.GroupSTLB, counters.GroupWalk} {
		acc = append(acc, reg.GroupEvents(g)...)
	}
	set := counters.NewSet(acc...)
	m, err := haswell.BuildModel("bench", haswell.DiscoveredModelFeatures(), set)
	if err != nil {
		b.Fatal(err)
	}
	proj := benchObservation(b).Project(set)
	const steps = 32
	regions := make([]*stats.Region, steps)
	for k := 0; k < steps; k++ {
		r, err := stats.NewRegion(driftObservation(proj, 0.002*float64(k)), core.DefaultConfidence, stats.Correlated)
		if err != nil {
			b.Fatal(err)
		}
		regions[k] = r
	}

	// Untimed equivalence pass: the warm path must agree with the exact
	// solver on every step of the drift sequence.
	{
		ws := simplex.NewWorkspace()
		warm := simplex.NewWarmSolver()
		p := simplex.NewProblem(0)
		warmHits := 0
		for _, r := range regions {
			p.Reset(0)
			if err := m.RegionLP(p, r); err != nil {
				b.Fatal(err)
			}
			want := ws.SolveStatus(p) == simplex.Optimal
			if got, ok := warm.Feasible(p); ok {
				if got != want {
					b.Fatalf("warm verdict %v, exact verdict %v — divergence", got, want)
				}
				if w, _ := warm.LastSolve(); w {
					warmHits++
				}
			}
		}
		if warmHits == 0 {
			b.Fatal("warm-start path never engaged on the drift sequence")
		}
	}

	b.Run("cold", func(b *testing.B) {
		ws := simplex.NewWorkspace()
		p := simplex.NewProblem(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := regions[i%steps]
			p.Reset(0)
			if err := m.RegionLP(p, r); err != nil {
				b.Fatal(err)
			}
			_ = ws.SolveStatus(p) == simplex.Optimal
		}
	})
	b.Run("warm", func(b *testing.B) {
		warm := simplex.NewWarmSolver()
		p := simplex.NewProblem(0)
		// Two untimed passes prime and then seed every structure in the
		// drift cycle, so the timed loop is the steady state — pure basis
		// re-entries — and ns/op and allocs/op do not depend on how many
		// iterations the cold seeds amortise over.
		for pass := 0; pass < 2; pass++ {
			for _, r := range regions {
				p.Reset(0)
				if err := m.RegionLP(p, r); err != nil {
					b.Fatal(err)
				}
				warm.Feasible(p)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := regions[i%steps]
			p.Reset(0)
			if err := m.RegionLP(p, r); err != nil {
				b.Fatal(err)
			}
			if _, ok := warm.Feasible(p); !ok {
				b.Fatal("warm solver declined a seeded structure")
			}
		}
	})
}

func BenchmarkReplay(b *testing.B)    { benchExperiment(b, "replay") }
func BenchmarkExtension(b *testing.B) { benchExperiment(b, "extension") }
func BenchmarkErrata(b *testing.B)    { benchExperiment(b, "errata") }
