package repro

// Benchmark harness: one benchmark per paper table/figure (regenerating it
// through internal/experiments in quick mode) plus micro-benchmarks for the
// core algorithmic pieces that Figures 9a/9b characterise.

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/dsl"
	"repro/internal/experiments"
	"repro/internal/floatlp"
	"repro/internal/haswell"
	"repro/internal/pagetable"
	"repro/internal/simplex"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// benchExperiment reruns a whole experiment in quick mode.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	opts := experiments.Options{Quick: true}
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(io.Discard, name, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1a(b *testing.B)     { benchExperiment(b, "fig1a") }
func BenchmarkFig1b(b *testing.B)     { benchExperiment(b, "fig1b") }
func BenchmarkFig1c(b *testing.B)     { benchExperiment(b, "fig1c") }
func BenchmarkFig3(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFig3d(b *testing.B)     { benchExperiment(b, "fig3d") }
func BenchmarkFig5a(b *testing.B)     { benchExperiment(b, "fig5a") }
func BenchmarkTable1(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkFig6(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkTable3(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkFig10(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkTable5(b *testing.B)    { benchExperiment(b, "table5") }
func BenchmarkTable7(b *testing.B)    { benchExperiment(b, "table7") }
func BenchmarkCorrStats(b *testing.B) { benchExperiment(b, "corrstats") }

// BenchmarkFig9aFeasibility measures single-observation feasibility
// testing per cumulative counter group (the paper's Figure 9a, ~linear in
// counters), for both tiers of the two-tier solver: "exact" drives every
// verdict through the rational simplex, "hybrid" lets the float64
// revised-simplex filter certify verdicts first. Each iteration rebuilds
// the confidence region and the LP — the cold single-observation path.
func BenchmarkFig9aFeasibility(b *testing.B) {
	d, err := haswell.BuildDiagram("bench", haswell.DiscoveredModelFeatures())
	if err != nil {
		b.Fatal(err)
	}
	obs := benchObservation(b)
	reg := counters.NewHaswellRegistry(false)
	var acc []counters.Event
	for _, g := range []counters.Group{counters.GroupRet, counters.GroupSTLB, counters.GroupWalk} {
		acc = append(acc, reg.GroupEvents(g)...)
		set := counters.NewSet(acc...)
		m, err := core.NewModel("bench", d, set)
		if err != nil {
			b.Fatal(err)
		}
		for _, tier := range []struct {
			name   string
			solver *core.Solver
		}{
			{"exact", &core.Solver{Exact: simplex.NewWorkspace()}},
			{"hybrid", core.NewSolver(nil)},
		} {
			b.Run(string(g)+"/"+tier.name, func(b *testing.B) {
				proj := obs.Project(set)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := stats.NewRegion(proj, core.DefaultConfidence, stats.Correlated)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := m.TestRegionSolver(tier.solver, r, false); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		// certify-only isolates the per-verdict certification cost the
		// int64 kernel targets: one float-tier certificate, checked
		// exactly over and over on a fixed LP (no region/LP rebuild, no
		// float solve in the timed loop).
		b.Run(string(g)+"/certify-only", func(b *testing.B) {
			proj := obs.Project(set)
			r, err := stats.NewRegion(proj, core.DefaultConfidence, stats.Correlated)
			if err != nil {
				b.Fatal(err)
			}
			p := simplex.NewProblem(0)
			if err := m.RegionLP(p, r); err != nil {
				b.Fatal(err)
			}
			out := floatlp.NewWorkspace().Feasibility(p)
			cert := simplex.NewCertifier()
			b.ReportAllocs()
			b.ResetTimer()
			switch out.Status {
			case floatlp.Feasible:
				for i := 0; i < b.N; i++ {
					if !cert.CertifyPoint(p, out.Point) {
						b.Fatal("feasible certificate rejected")
					}
				}
			case floatlp.Infeasible:
				for i := 0; i < b.N; i++ {
					if !cert.CertifyFarkas(p, out.Ray) {
						b.Fatal("Farkas certificate rejected")
					}
				}
			default:
				b.Skip("float filter inconclusive on the bench LP")
			}
		})
	}
}

// BenchmarkFig9bDeduction measures constraint deduction per cumulative
// counter group (the paper's Figure 9b, exponential in groups).
func BenchmarkFig9bDeduction(b *testing.B) {
	d, err := haswell.BuildDiagram("bench", haswell.DiscoveredModelFeatures())
	if err != nil {
		b.Fatal(err)
	}
	reg := counters.NewHaswellRegistry(false)
	var acc []counters.Event
	for _, g := range []counters.Group{counters.GroupRet, counters.GroupSTLB, counters.GroupWalk} {
		acc = append(acc, reg.GroupEvents(g)...)
		set := counters.NewSet(acc...)
		b.Run(string(g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// A fresh model per iteration: Constraints() is cached.
				m, err := core.NewModel("bench", d, set)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.Constraints(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchObservation(b *testing.B) *counters.Observation {
	b.Helper()
	sim := haswell.NewSimulator(haswell.DefaultConfig(pagetable.Page4K))
	gen, err := workloads.NewRandomBurst(256<<20, 8, 0.9, 3)
	if err != nil {
		b.Fatal(err)
	}
	sim.Step(gen, 10000)
	return haswell.WithAggregateWalkRef(sim.Observation(gen, 12, 8000))
}

// BenchmarkSimulator measures the Haswell MMU simulator's μop throughput.
func BenchmarkSimulator(b *testing.B) {
	sim := haswell.NewSimulator(haswell.DefaultConfig(pagetable.Page4K))
	gen, err := workloads.NewRandom(256<<20, 0.8, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sim.Step(gen, b.N)
}

// BenchmarkDSLCompile measures compiling the full discovered-feature model
// from DSL source to a validated μDD.
func BenchmarkDSLCompile(b *testing.B) {
	src := haswell.GenerateDSL(haswell.DiscoveredModelFeatures())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsl.Compile("bench", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathEnumeration measures μpath enumeration and signature
// extraction for the discovered model.
func BenchmarkPathEnumeration(b *testing.B) {
	d, err := haswell.BuildDiagram("bench", haswell.DiscoveredModelFeatures())
	if err != nil {
		b.Fatal(err)
	}
	set := haswell.AnalysisSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Signatures(set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeasibilityLP measures one feasibility LP verdict on the full
// analysis counter set over a cached LP — the engine's steady state, where
// RegionLP construction is amortised by the per-(model, region) cache and
// the solve is the hot path. "exact" is the rational two-phase simplex;
// "hybrid" is the two-tier solver (float64 revised-simplex filter + exact
// certificate check, falling back to the exact solver when certification
// fails). The ISSUE 3 acceptance criterion is hybrid ≥2× fewer ns/op.
func BenchmarkFeasibilityLP(b *testing.B) {
	set := haswell.AnalysisSet()
	m, err := haswell.BuildModel("bench", haswell.DiscoveredModelFeatures(), set)
	if err != nil {
		b.Fatal(err)
	}
	obs := benchObservation(b)
	r, err := stats.NewRegion(obs.Project(set), core.DefaultConfidence, stats.Correlated)
	if err != nil {
		b.Fatal(err)
	}
	p := simplex.NewProblem(0)
	if err := m.RegionLP(p, r); err != nil {
		b.Fatal(err)
	}
	for _, tier := range []struct {
		name   string
		solver *core.Solver
	}{
		{"exact", &core.Solver{Exact: simplex.NewWorkspace()}},
		{"hybrid", core.NewSolver(nil)},
	} {
		b.Run(tier.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.TestRegionLP(tier.solver, p, r, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReplay(b *testing.B)    { benchExperiment(b, "replay") }
func BenchmarkExtension(b *testing.B) { benchExperiment(b, "extension") }
func BenchmarkErrata(b *testing.B)    { benchExperiment(b, "errata") }
