package exact

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// ratOf builds the big.Rat reference value n/d.
func ratOf(n, d int64) *big.Rat { return new(big.Rat).SetFrac64(n, d) }

// checkAgainstBig verifies that a kernel result, when ok, equals the
// big.Rat reference exactly.
func checkAgainstBig(t *testing.T, op string, got Rat64, ok bool, want *big.Rat) {
	t.Helper()
	if !ok {
		// Promotion: the big path takes over; nothing to compare. The
		// correctness property is only "ok ⇒ exact".
		return
	}
	if got.Den() <= 0 {
		t.Fatalf("%s: non-positive denominator %d", op, got.Den())
	}
	if g := GCD64(AbsU64(got.Num()), uint64(got.Den())); got.Num() != 0 && g != 1 {
		t.Fatalf("%s: result %s not in lowest terms (gcd %d)", op, got, g)
	}
	if got.Rat(nil).Cmp(want) != 0 {
		t.Fatalf("%s: kernel %s != big %s", op, got, want.RatString())
	}
}

func TestRat64Ops(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := []int64{0, 1, -1, 2, 3, -3, 7, 256, -255, 65536,
		math.MaxInt64, math.MinInt64, math.MaxInt64 - 1, math.MinInt64 + 1,
		1 << 31, -(1 << 31), (1 << 62) - 3}
	draw := func() int64 {
		if rng.Intn(3) == 0 {
			return vals[rng.Intn(len(vals))]
		}
		return rng.Int63n(1<<20) - 1<<19
	}
	for trial := 0; trial < 20000; trial++ {
		an, ad, bn, bd := draw(), draw(), draw(), draw()
		if ad == 0 || bd == 0 {
			continue
		}
		a, okA := MakeRat64(an, ad)
		b, okB := MakeRat64(bn, bd)
		if !okA || !okB {
			continue
		}
		ra, rb := ratOf(an, ad), ratOf(bn, bd)
		if a.Rat(nil).Cmp(ra) != 0 || b.Rat(nil).Cmp(rb) != 0 {
			t.Fatalf("MakeRat64 mismatch: %d/%d -> %s", an, ad, a)
		}
		sum, ok := a.Add(b)
		checkAgainstBig(t, "add", sum, ok, new(big.Rat).Add(ra, rb))
		diff, ok := a.Sub(b)
		checkAgainstBig(t, "sub", diff, ok, new(big.Rat).Sub(ra, rb))
		prod, ok := a.Mul(b)
		checkAgainstBig(t, "mul", prod, ok, new(big.Rat).Mul(ra, rb))
		if b.Sign() != 0 {
			quo, ok := a.Quo(b)
			checkAgainstBig(t, "quo", quo, ok, new(big.Rat).Quo(ra, rb))
		}
		if got, want := a.Cmp(b), ra.Cmp(rb); got != want {
			t.Fatalf("cmp(%s, %s) = %d, big says %d", a, b, got, want)
		}
		neg, ok := a.Neg()
		checkAgainstBig(t, "neg", neg, ok, new(big.Rat).Neg(ra))
	}
}

// TestRat64OverflowBoundaries pins behaviour at the int64 edges: results
// that fit must be produced, results that cannot fit must promote.
func TestRat64OverflowBoundaries(t *testing.T) {
	big1 := Rat64FromInt64(math.MaxInt64)
	if _, ok := big1.Add(Rat64FromInt64(1)); ok {
		t.Fatal("MaxInt64 + 1 must overflow")
	}
	if _, ok := big1.Mul(Rat64FromInt64(2)); ok {
		t.Fatal("MaxInt64 * 2 must overflow")
	}
	if s, ok := big1.Sub(Rat64FromInt64(1)); !ok || s.Num() != math.MaxInt64-1 {
		t.Fatalf("MaxInt64 - 1 = %v, ok=%v", s, ok)
	}
	// Cross-GCD reduction must keep representable results representable:
	// (2^62/3) · (3/2^61) = 2.
	a, _ := MakeRat64(1<<62, 3)
	b, _ := MakeRat64(3, 1<<61)
	p, ok := a.Mul(b)
	if !ok || p.Num() != 2 || p.Den() != 1 {
		t.Fatalf("cross-gcd mul failed: %v ok=%v", p, ok)
	}
	// Denominator overflow in add.
	c, _ := MakeRat64(1, math.MaxInt64)
	d, _ := MakeRat64(1, math.MaxInt64-1)
	if _, ok := c.Add(d); ok {
		t.Fatal("adding 1/(2^63-1) + 1/(2^63-2) must overflow the denominator")
	}
	// Cmp never overflows, even at the extremes.
	e, _ := MakeRat64(math.MaxInt64, math.MaxInt64-1)
	f, _ := MakeRat64(math.MaxInt64-1, math.MaxInt64-2)
	if e.Cmp(f) != -1 {
		t.Fatalf("Cmp at extremes wrong: %s vs %s", e, f)
	}
	if Rat64FromInt64(math.MinInt64).Sign() != -1 {
		t.Fatal("MinInt64 sign")
	}
	if _, ok := Rat64FromInt64(math.MinInt64).Neg(); ok {
		t.Fatal("negating MinInt64 must report overflow")
	}
}

func TestRat64FromFloat(t *testing.T) {
	cases := []float64{0, 1, -1, 0.5, -0.25, 1.0 / 65536, 3.75, 1e15,
		0.1, 1.0 / 3, math.Pi, 123456789.125, -1e-9}
	for _, f := range cases {
		r, ok := Rat64FromFloat(f)
		want := new(big.Rat).SetFloat64(f)
		if !ok {
			// Must only happen when the exact value genuinely does not fit.
			if want.Num().IsInt64() && want.Denom().IsInt64() {
				t.Fatalf("Rat64FromFloat(%v) refused a representable value %s", f, want.RatString())
			}
			continue
		}
		if r.Rat(nil).Cmp(want) != 0 {
			t.Fatalf("Rat64FromFloat(%v) = %s, want %s", f, r, want.RatString())
		}
	}
	if _, ok := Rat64FromFloat(math.NaN()); ok {
		t.Fatal("NaN must not convert")
	}
	if _, ok := Rat64FromFloat(math.Inf(1)); ok {
		t.Fatal("+Inf must not convert")
	}
	if _, ok := Rat64FromFloat(1e300); ok {
		t.Fatal("1e300 must not fit int64")
	}
	if _, ok := Rat64FromFloat(5e-324); ok {
		t.Fatal("subnormal must not fit int64")
	}
}

func TestQuantize64MatchesQuantizeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	denoms := []int64{1, 2, 256, 65536, 3, 1000}
	for trial := 0; trial < 5000; trial++ {
		f := (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(60))
		denom := denoms[rng.Intn(len(denoms))]
		ceil := rng.Intn(2) == 0
		got, ok := Quantize64(f, ceil, denom)
		want := new(big.Rat)
		if err := QuantizeInto(want, f, ceil, denom); err != nil {
			t.Fatal(err)
		}
		if !ok {
			if denom&(denom-1) == 0 && math.Abs(f*float64(denom)) < 1<<53 {
				t.Fatalf("Quantize64(%v, %v, %d) refused the fast-path domain", f, ceil, denom)
			}
			continue
		}
		if got.Rat(nil).Cmp(want) != 0 {
			t.Fatalf("Quantize64(%v, %v, %d) = %s, want %s", f, ceil, denom, got, want.RatString())
		}
	}
}

func TestSimplestRat64WithinMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5000; trial++ {
		f := (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(30))
		tol := math.Ldexp(1, -40) * (1 + math.Abs(f))
		if trial%3 == 0 {
			tol = 1e-9 * (1 + math.Abs(f))
		}
		got, ok := SimplestRat64Within(f, tol)
		if !ok {
			continue // promotion; the big path takes over
		}
		want, err := SimplestRatWithin(f, tol)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rat(nil).Cmp(want) != 0 {
			t.Fatalf("SimplestRat64Within(%v, %v) = %s, big path %s", f, tol, got, want.RatString())
		}
	}
}

// FuzzRat64VsBigRat is the differential fuzz target of the kernel: for any
// operand pair — the fuzzer drives it straight at the int64 overflow
// boundaries — the promote-on-overflow composition (Rat64 op, else big.Rat
// op) must agree with pure big.Rat arithmetic.
func FuzzRat64VsBigRat(f *testing.F) {
	f.Add(int64(1), int64(2), int64(-3), int64(4), uint8(0))
	f.Add(int64(math.MaxInt64), int64(1), int64(1), int64(1), uint8(0))
	f.Add(int64(math.MaxInt64), int64(math.MaxInt64-1), int64(math.MaxInt64-1), int64(math.MaxInt64-2), uint8(2))
	f.Add(int64(math.MinInt64), int64(3), int64(5), int64(7), uint8(1))
	f.Add(int64(1), int64(math.MaxInt64), int64(1), int64(math.MaxInt64-1), uint8(0))
	f.Add(int64(1<<62), int64(3), int64(3), int64(1<<61), uint8(2))
	f.Fuzz(func(t *testing.T, an, ad, bn, bd int64, op uint8) {
		if ad == 0 || bd == 0 {
			return
		}
		a, okA := MakeRat64(an, ad)
		b, okB := MakeRat64(bn, bd)
		ra, rb := ratOf(an, ad), ratOf(bn, bd)
		if okA && a.Rat(nil).Cmp(ra) != 0 {
			t.Fatalf("MakeRat64(%d, %d) = %s != %s", an, ad, a, ra.RatString())
		}
		if !okA || !okB {
			return
		}
		var (
			got  Rat64
			ok   bool
			want = new(big.Rat)
			name string
		)
		switch op % 4 {
		case 0:
			name = "add"
			got, ok = a.Add(b)
			want.Add(ra, rb)
		case 1:
			name = "sub"
			got, ok = a.Sub(b)
			want.Sub(ra, rb)
		case 2:
			name = "mul"
			got, ok = a.Mul(b)
			want.Mul(ra, rb)
		case 3:
			if b.Sign() == 0 {
				return
			}
			name = "quo"
			got, ok = a.Quo(b)
			want.Quo(ra, rb)
		}
		// Promote on overflow: the composed result is always `want`; when
		// the kernel answered, it must BE `want`.
		if ok && got.Rat(nil).Cmp(want) != 0 {
			t.Fatalf("%s(%s, %s): kernel %s != big %s", name, a, b, got, want.RatString())
		}
		if got, want := a.Cmp(b), ra.Cmp(rb); got != want {
			t.Fatalf("cmp(%s, %s) = %d, big says %d", a, b, got, want)
		}
	})
}
