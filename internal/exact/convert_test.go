package exact

import (
	"math"
	"math/big"
	"testing"
)

func TestRatFromFloat(t *testing.T) {
	r, err := RatFromFloat(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatalf("0.5 -> %v", r)
	}
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := RatFromFloat(f); err == nil {
			t.Fatalf("RatFromFloat(%v) should fail", f)
		}
	}
}

func TestQuantizeGrid(t *testing.T) {
	cases := []struct {
		f    float64
		ceil bool
		want *big.Rat
	}{
		{1.0, true, big.NewRat(1, 1)},
		{1.0, false, big.NewRat(1, 1)},
		{1.001, true, big.NewRat(257, 256)}, // next 1/256 step up
		{1.001, false, big.NewRat(256, 256)},
		{-1.001, true, big.NewRat(-256, 256)},
		{-1.001, false, big.NewRat(-257, 256)},
		{0, true, big.NewRat(0, 1)},
		{0, false, big.NewRat(0, 1)},
	}
	for _, c := range cases {
		got, err := Quantize(c.f, c.ceil, 256)
		if err != nil {
			t.Fatalf("Quantize(%v, %v): %v", c.f, c.ceil, err)
		}
		if got.Cmp(c.want) != 0 {
			t.Fatalf("Quantize(%v, %v) = %v, want %v", c.f, c.ceil, got, c.want)
		}
	}
}

// TestQuantizeOutward checks the contract the downstream LP depends on: the
// quantized bound never moves inward (ceil result ≥ f, floor result ≤ f),
// for power-of-two and non-power-of-two denominators alike.
func TestQuantizeOutward(t *testing.T) {
	for _, denom := range []int64{1, 10, 256, 1000} {
		for _, f := range []float64{0, 1e-9, 0.1, 0.3, 123.456, 1e6 + 0.1, -7.77, -1e5} {
			hi, err := Quantize(f, true, denom)
			if err != nil {
				t.Fatal(err)
			}
			lo, err := Quantize(f, false, denom)
			if err != nil {
				t.Fatal(err)
			}
			fr := new(big.Rat).SetFloat64(f)
			if hi.Cmp(fr) < 0 {
				t.Fatalf("ceil quantize moved inward: Quantize(%v, true, %d) = %v < %v", f, denom, hi, fr)
			}
			if lo.Cmp(fr) > 0 {
				t.Fatalf("floor quantize moved inward: Quantize(%v, false, %d) = %v > %v", f, denom, lo, fr)
			}
		}
	}
	// The regression pinning the fast-path guard: 0.1·10 rounds to exactly
	// 1.0 in float64 although the true product is above 1, so a naive
	// Ceil-based fast path would return 1/10 < 0.1 — an upper bound below
	// the value. The exact path must land one grid step higher.
	hi, err := Quantize(0.1, true, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fr := new(big.Rat).SetFloat64(0.1); hi.Cmp(fr) < 0 {
		t.Fatalf("Quantize(0.1, true, 10) = %v moved inward", hi)
	}
	if hi.Cmp(big.NewRat(2, 10)) != 0 {
		t.Fatalf("Quantize(0.1, true, 10) = %v, want 2/10", hi)
	}
}

// TestQuantizeLargeMagnitude is the regression test for the seed bug: the
// old int64(math.Ceil(f*256)) silently overflowed for means beyond ~2⁵⁵,
// producing garbage LP bounds. The big.Int slow path must stay exact.
func TestQuantizeLargeMagnitude(t *testing.T) {
	for _, f := range []float64{1e17, 1e18, 1e30, 1e300, -1e30, math.MaxFloat64, -math.MaxFloat64} {
		for _, ceil := range []bool{true, false} {
			got, err := Quantize(f, ceil, 256)
			if err != nil {
				t.Fatalf("Quantize(%v, %v): %v", f, ceil, err)
			}
			// Huge float64s are integral multiples of large powers of two, so
			// they lie exactly on the 1/256 grid: the result must equal f.
			want := new(big.Rat).SetFloat64(f)
			if got.Cmp(want) != 0 {
				t.Fatalf("Quantize(%v, %v) = %v, want exact %v", f, ceil, got.RatString(), want.RatString())
			}
		}
	}
	// A huge value just off the grid: 2^60 + 1/3 is not representable, but
	// the nearest float64 above 2^60 still exercises the slow path and must
	// round outward, not overflow.
	f := math.Nextafter(1<<60, math.Inf(1))
	hi, err := Quantize(f, true, 256)
	if err != nil {
		t.Fatal(err)
	}
	fr := new(big.Rat).SetFloat64(f)
	if hi.Cmp(fr) < 0 {
		t.Fatalf("slow-path ceil moved inward: %v < %v", hi, fr)
	}
	diff := new(big.Rat).Sub(hi, fr)
	if diff.Cmp(big.NewRat(1, 256)) > 0 {
		t.Fatalf("slow-path ceil overshot the grid: %v - %v = %v", hi, fr, diff)
	}
}

func TestQuantizeNonFinite(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := Quantize(f, true, 256); err == nil {
			t.Fatalf("Quantize(%v) should fail", f)
		}
		if _, err := Quantize(f, false, 256); err == nil {
			t.Fatalf("Quantize(%v) should fail", f)
		}
	}
}

func TestQuantizeIntoReusesStorage(t *testing.T) {
	r := new(big.Rat)
	if err := QuantizeInto(r, 3.14, true, 256); err != nil {
		t.Fatal(err)
	}
	first := new(big.Rat).Set(r)
	if err := QuantizeInto(r, 2.71, false, 256); err != nil {
		t.Fatal(err)
	}
	if r.Cmp(first) == 0 {
		t.Fatal("QuantizeInto did not overwrite dst")
	}
	want, _ := Quantize(2.71, false, 256)
	if r.Cmp(want) != 0 {
		t.Fatalf("reused dst = %v, want %v", r, want)
	}
}
