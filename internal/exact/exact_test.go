package exact

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func ratsEq(t *testing.T, got *big.Rat, want int64) {
	t.Helper()
	if got.Cmp(big.NewRat(want, 1)) != 0 {
		t.Fatalf("got %s, want %d", got.RatString(), want)
	}
}

func TestVecDot(t *testing.T) {
	v := VecFromInts(1, 2, 3)
	w := VecFromInts(4, 5, 6)
	ratsEq(t, v.Dot(w), 32)
}

func TestVecDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	VecFromInts(1).Dot(VecFromInts(1, 2))
}

func TestVecAddSubScale(t *testing.T) {
	v := VecFromInts(1, 2)
	w := VecFromInts(3, -4)
	if got := v.Add(w); !got.Equal(VecFromInts(4, -2)) {
		t.Fatalf("add: got %v", got)
	}
	if got := v.Sub(w); !got.Equal(VecFromInts(-2, 6)) {
		t.Fatalf("sub: got %v", got)
	}
	if got := v.Scale(big.NewRat(3, 1)); !got.Equal(VecFromInts(3, 6)) {
		t.Fatalf("scale: got %v", got)
	}
}

func TestAddScaled(t *testing.T) {
	v := VecFromInts(1, 1)
	v.AddScaled(big.NewRat(1, 2), VecFromInts(4, 6))
	if !v.Equal(VecFromInts(3, 4)) {
		t.Fatalf("got %v", v)
	}
}

func TestNormalizeIntegral(t *testing.T) {
	cases := []struct {
		in   Vec
		want Vec
	}{
		{VecFromInts(2, 4, 6), VecFromInts(1, 2, 3)},
		{VecFromInts(0, 0), VecFromInts(0, 0)},
		{Vec{big.NewRat(1, 2), big.NewRat(1, 3)}, VecFromInts(3, 2)},
		{VecFromInts(-2, -4), VecFromInts(-1, -2)},
		{VecFromInts(5), VecFromInts(1)},
	}
	for i, c := range cases {
		if got := c.in.NormalizeIntegral(); !got.Equal(c.want) {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

func TestNormalizeIntegralProperty(t *testing.T) {
	// Property: the normalised vector is a positive multiple of the input,
	// with integral coprime entries.
	f := func(a, b, c int16, d uint8) bool {
		den := int64(d) + 1
		v := Vec{big.NewRat(int64(a), den), big.NewRat(int64(b), den), big.NewRat(int64(c), 1)}
		n := v.NormalizeIntegral()
		if v.IsZero() {
			return n.IsZero()
		}
		// Find a non-zero coordinate and compute the ratio.
		var ratio *big.Rat
		for i := range v {
			if v[i].Sign() != 0 {
				ratio = new(big.Rat).Quo(n[i], v[i])
				break
			}
		}
		if ratio == nil || ratio.Sign() <= 0 {
			return false
		}
		for i := range v {
			want := new(big.Rat).Mul(v[i], ratio)
			if n[i].Cmp(want) != 0 {
				return false
			}
			if !n[i].IsInt() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRowEchelonRank(t *testing.T) {
	m := MatFromRows([]Vec{
		VecFromInts(1, 2, 3),
		VecFromInts(2, 4, 6),
		VecFromInts(1, 0, 1),
	})
	if r := m.Rank(); r != 2 {
		t.Fatalf("rank: got %d want 2", r)
	}
}

func TestNullSpaceBasis(t *testing.T) {
	// x + y + z = 0 has a 2-dimensional null space.
	basis := NullSpaceBasis([]Vec{VecFromInts(1, 1, 1)}, 3)
	if len(basis) != 2 {
		t.Fatalf("null space dim: got %d want 2", len(basis))
	}
	row := VecFromInts(1, 1, 1)
	for _, b := range basis {
		if row.Dot(b).Sign() != 0 {
			t.Fatalf("basis vector %v not in null space", b)
		}
	}
}

func TestNullSpaceEmptyRows(t *testing.T) {
	basis := NullSpaceBasis(nil, 2)
	if len(basis) != 2 {
		t.Fatalf("got %d basis vectors, want 2", len(basis))
	}
}

func TestNullSpaceFullRank(t *testing.T) {
	basis := NullSpaceBasis([]Vec{VecFromInts(1, 0), VecFromInts(0, 1)}, 2)
	if len(basis) != 0 {
		t.Fatalf("got %d basis vectors, want 0", len(basis))
	}
}

func TestRowSpaceBasis(t *testing.T) {
	basis := RowSpaceBasis([]Vec{
		VecFromInts(1, 1, 0),
		VecFromInts(2, 2, 0),
		VecFromInts(0, 0, 1),
	})
	if len(basis) != 2 {
		t.Fatalf("row space dim: got %d want 2", len(basis))
	}
}

func TestInSpan(t *testing.T) {
	basis := []Vec{VecFromInts(1, 0, 1), VecFromInts(0, 1, 1)}
	if !InSpan(VecFromInts(1, 1, 2), basis) {
		t.Fatal("(1,1,2) should be in span")
	}
	if InSpan(VecFromInts(0, 0, 1), basis) {
		t.Fatal("(0,0,1) should not be in span")
	}
	if !InSpan(VecFromInts(0, 0, 0), basis) {
		t.Fatal("zero is in every span")
	}
}

func TestSolveInSpan(t *testing.T) {
	basis := []Vec{VecFromInts(1, 0, 1), VecFromInts(0, 1, 1)}
	coeffs, ok := SolveInSpan(VecFromInts(2, 3, 5), basis)
	if !ok {
		t.Fatal("expected solvable")
	}
	ratsEq(t, coeffs[0], 2)
	ratsEq(t, coeffs[1], 3)
	if _, ok := SolveInSpan(VecFromInts(0, 0, 1), basis); ok {
		t.Fatal("expected unsolvable")
	}
}

func TestSolveInSpanEmptyBasis(t *testing.T) {
	if _, ok := SolveInSpan(VecFromInts(0, 0), nil); !ok {
		t.Fatal("zero should be in empty span")
	}
	if _, ok := SolveInSpan(VecFromInts(1, 0), nil); ok {
		t.Fatal("non-zero should not be in empty span")
	}
}

func TestNullSpacePropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rows := rng.Intn(4) + 1
		cols := rng.Intn(5) + 1
		rs := make([]Vec, rows)
		for i := range rs {
			rs[i] = NewVec(cols)
			for j := 0; j < cols; j++ {
				rs[i][j].SetInt64(int64(rng.Intn(7) - 3))
			}
		}
		basis := NullSpaceBasis(rs, cols)
		// rank-nullity
		if got := len(basis) + MatFromRows(rs).Rank(); got != cols {
			t.Fatalf("rank-nullity violated: %d != %d", got, cols)
		}
		for _, b := range basis {
			for _, r := range rs {
				if r.Dot(b).Sign() != 0 {
					t.Fatalf("null space vector not annihilated")
				}
			}
		}
	}
}

func TestMatMulVecTranspose(t *testing.T) {
	m := MatFromRows([]Vec{VecFromInts(1, 2), VecFromInts(3, 4)})
	got := m.MulVec(VecFromInts(1, 1))
	if !got.Equal(VecFromInts(3, 7)) {
		t.Fatalf("mulvec: got %v", got)
	}
	tr := m.Transpose()
	if tr.At(0, 1).Cmp(big.NewRat(3, 1)) != 0 {
		t.Fatalf("transpose wrong: %v", tr.At(0, 1))
	}
}

func TestVecKeyAndClone(t *testing.T) {
	v := VecFromInts(1, 2)
	w := v.Clone()
	w[0].SetInt64(9)
	if v[0].Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatal("clone aliases original")
	}
	if v.Key() == w.Key() {
		t.Fatal("keys should differ")
	}
}

func TestVecFromFloats(t *testing.T) {
	v := VecFromFloats([]float64{0.5, 2})
	if v[0].Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatalf("got %s", v[0].RatString())
	}
	fs := v.Floats()
	if fs[0] != 0.5 || fs[1] != 2 {
		t.Fatalf("floats roundtrip: %v", fs)
	}
}
