package exact

import (
	"math/big"
	"math/rand"
	"testing"
)

// randQuantizedVec builds a random "quantized observation" vector: values
// on the 1/denom dyadic grid, the shape the LP rows and slab bounds take
// after core's quantisation (see lpQuantum / stats' axis grid).
func randQuantizedVec(rng *rand.Rand, n int, denom int64) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = new(big.Rat).SetFrac64(rng.Int63n(1<<22)-1<<21, denom)
	}
	return v
}

// TestVec64DotMatchesVec is the kernel/big equivalence property on the dot
// product — the single operation every certificate check reduces to.
func TestVec64DotMatchesVec(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	denoms := []int64{1, 256, 65536}
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(24) + 1
		a := randQuantizedVec(rng, n, denoms[rng.Intn(len(denoms))])
		b := randQuantizedVec(rng, n, denoms[rng.Intn(len(denoms))])
		a64, okA := Vec64FromVec(a)
		b64, okB := Vec64FromVec(b)
		if !okA || !okB {
			t.Fatalf("trial %d: quantized vectors must convert", trial)
		}
		want := a.Dot(b)
		got, ok := a64.Dot(b64)
		if !ok {
			continue // promotion is allowed, silence is not: big path answers
		}
		if got.Rat(nil).Cmp(want) != 0 {
			t.Fatalf("trial %d: Vec64.Dot = %s, Vec.Dot = %s", trial, got, want.RatString())
		}
	}
}

func TestVec64DotRat64s(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(16) + 1
		row := randQuantizedVec(rng, n, 256)
		row64, ok := Vec64FromVec(row)
		if !ok {
			t.Fatal("row must convert")
		}
		xs := make([]Rat64, n)
		xv := make(Vec, n)
		for i := range xs {
			num, den := rng.Int63n(2048)-1024, rng.Int63n(64)+1
			r, ok := MakeRat64(num, den)
			if !ok {
				t.Fatal("small rational must construct")
			}
			xs[i] = r
			xv[i] = ratOf(num, den)
		}
		want := row.Dot(xv)
		got, ok := row64.DotRat64s(xs)
		if !ok {
			continue
		}
		if got.Rat(nil).Cmp(want) != 0 {
			t.Fatalf("trial %d: DotRat64s = %s, want %s", trial, got, want.RatString())
		}
	}
}

func TestVec64NormalizeIntegralAndKey(t *testing.T) {
	v := Vec64{Num: []int64{6, -9, 0, 12}, Den: 3}
	n := v.NormalizeIntegral()
	if n.Den != 1 || n.Num[0] != 2 || n.Num[1] != -3 || n.Num[2] != 0 || n.Num[3] != 4 {
		t.Fatalf("normalize = %+v", n)
	}
	// Key must match the big.Rat Vec key on the same values so int64 and
	// promoted rays deduplicate against each other.
	bigSide := n.Vec().NormalizeIntegral()
	if n.Key() != bigSide.Key() {
		t.Fatalf("key mismatch: %q vs %q", n.Key(), bigSide.Key())
	}
	z := Vec64{Num: []int64{0, 0}, Den: 5}
	if nz := z.NormalizeIntegral(); nz.Den != 1 || !nz.IsZero() {
		t.Fatalf("zero normalize = %+v", nz)
	}
}

func TestVec64IntDotSign(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(12) + 1
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			a[i] = rng.Int63n(4096) - 2048
			b[i] = rng.Int63n(4096) - 2048
		}
		v := Vec64{Num: a, Den: 1}
		got, ok := v.IntDotSign(b)
		if !ok {
			t.Fatal("small values must not overflow")
		}
		want := big.NewRat(0, 1)
		tmp := new(big.Rat)
		for i := range a {
			want.Add(want, tmp.SetInt64(a[i]*b[i]))
		}
		if got != want.Sign() {
			t.Fatalf("trial %d: sign %d want %d", trial, got, want.Sign())
		}
	}
}

func TestVec64FromVecRejectsWide(t *testing.T) {
	v := NewVec(2)
	v[0].SetString("123456789012345678901234567890/7")
	if _, ok := Vec64FromVec(v); ok {
		t.Fatal("wide numerator must be rejected")
	}
	w := NewVec(2)
	w[0].SetFrac64(1, 1<<40)
	w[1].SetFrac64(1, (1<<40)-1) // lcm of denominators overflows
	if _, ok := Vec64FromVec(w); ok {
		t.Fatal("denominator lcm overflow must be rejected")
	}
}
