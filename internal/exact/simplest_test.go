package exact

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

func TestSimplestRatWithinRecoversSimpleFractions(t *testing.T) {
	cases := []struct {
		num, den int64
	}{
		{0, 1}, {1, 1}, {-1, 1}, {1, 2}, {-1, 2}, {2, 3}, {-2, 3},
		{7, 16}, {355, 113}, {-355, 113}, {1, 1000}, {999, 1000},
		{123456, 7}, {5, 4096},
	}
	for _, c := range cases {
		want := big.NewRat(c.num, c.den)
		f, _ := want.Float64()
		got, err := SimplestRatWithin(f, 1e-9*(1+math.Abs(f)))
		if err != nil {
			t.Fatalf("%d/%d: %v", c.num, c.den, err)
		}
		if got.Cmp(want) != 0 {
			t.Errorf("SimplestRatWithin(%d/%d) = %v, want %v", c.num, c.den, got, want)
		}
	}
}

func TestSimplestRatWithinStaysInInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		f := (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(13)-6))
		tol := math.Pow(10, float64(-3-rng.Intn(10))) * (1 + math.Abs(f))
		r, err := SimplestRatWithin(f, tol)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := r.Float64()
		if math.Abs(v-f) > tol*(1+1e-12) {
			t.Fatalf("trial %d: SimplestRatWithin(%g, %g) = %v (%g), off by %g",
				i, f, tol, r, v, math.Abs(v-f))
		}
	}
}

func TestSimplestRatWithinIsSimplest(t *testing.T) {
	// The result must have the smallest denominator of any rational in the
	// interval: verify against a brute-force scan for small denominators.
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		f := (rng.Float64() - 0.5) * 20
		tol := 0.05 * rng.Float64()
		r, err := SimplestRatWithin(f, tol)
		if err != nil {
			t.Fatal(err)
		}
		for den := int64(1); den < r.Denom().Int64(); den++ {
			lo := int64(math.Ceil((f - tol) * float64(den)))
			hi := int64(math.Floor((f + tol) * float64(den)))
			// Exclude boundary effects of the float ceil/floor: only flag a
			// strictly interior simpler candidate.
			for num := lo; num <= hi; num++ {
				cand := float64(num) / float64(den)
				if math.Abs(cand-f) < tol*(1-1e-9) {
					t.Fatalf("trial %d: SimplestRatWithin(%g, %g) = %v but %d/%d is simpler",
						i, f, tol, r, num, den)
				}
			}
		}
	}
}

func TestSimplestRatWithinEdgeCases(t *testing.T) {
	if _, err := SimplestRatWithin(math.NaN(), 1e-9); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := SimplestRatWithin(math.Inf(1), 1e-9); err == nil {
		t.Error("+Inf accepted")
	}
	// tol <= 0 degenerates to exact conversion.
	r, err := SimplestRatWithin(0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	exact := new(big.Rat).SetFloat64(0.1)
	if r.Cmp(exact) != 0 {
		t.Errorf("tol=0: got %v, want exact %v", r, exact)
	}
	// Huge tolerance snaps to zero.
	r, _ = SimplestRatWithin(0.3, 1)
	if r.Sign() != 0 {
		t.Errorf("tol covering zero: got %v, want 0", r)
	}
}
