package exact

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// quantizeDenoms are the grid denominators the property suite sweeps:
// the LP's dyadic default, other powers of two, and the non-power-of-two
// denominators that force the exact big-integer path.
var quantizeDenoms = []int64{1, 2, 256, 1 << 20, 1 << 62, 3, 10, 1000, 999999937}

// interestingFloats are the boundary values every run checks before the
// random sweep: zeros, subnormals, the normal/subnormal boundary, values
// beyond 2^53 (where the seed's int64 idiom overflowed), and extremes.
func interestingFloats() []float64 {
	fs := []float64{
		0,
		math.Copysign(0, -1),
		math.SmallestNonzeroFloat64, // 2^-1074, subnormal
		-math.SmallestNonzeroFloat64,
		math.Float64frombits(0x000fffffffffffff), // largest subnormal
		math.Float64frombits(0x0010000000000000), // smallest normal
		1e-310,                                   // subnormal
		0.1, -0.1, 1.0 / 3.0,
		1, -1, 255.999, 256.001,
		1 << 52, 1<<53 - 1, 1 << 53, 1<<53 + 2,
		-(1 << 53), math.Ldexp(1, 60), math.Ldexp(-3, 100),
		1e300, -1e300, math.MaxFloat64, -math.MaxFloat64,
	}
	return fs
}

// TestQuantizeOutwardProperty is the property test for the float → ℚ slab
// quantisation the feasibility LP depends on: for any finite float64 x and
// any positive denominator d,
//
//	Quantize(x, floor) ≤ x ≤ Quantize(x, ceil)   (as exact rationals)
//
// so outward rounding can only grow a confidence region, never shrink it —
// plus tightness (the bounds are within 1/d of x) and grid membership
// (d·bound is an integer).
func TestQuantizeOutwardProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	floats := interestingFloats()
	// Random slab bounds across the whole exponent range, subnormals and
	// huge magnitudes included: raw bit patterns cover every regime far
	// better than uniform sampling would.
	for len(floats) < 4096 {
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		floats = append(floats, f)
	}
	one := new(big.Int).SetInt64(1)
	for _, d := range quantizeDenoms {
		denom := new(big.Rat).SetFrac(big.NewInt(1), big.NewInt(d))
		for _, f := range floats {
			lo, err := Quantize(f, false, d)
			if err != nil {
				t.Fatalf("Quantize(%g, floor, %d): %v", f, d, err)
			}
			hi, err := Quantize(f, true, d)
			if err != nil {
				t.Fatalf("Quantize(%g, ceil, %d): %v", f, d, err)
			}
			x, err := RatFromFloat(f)
			if err != nil {
				t.Fatalf("RatFromFloat(%g): %v", f, err)
			}
			// The outward property: lo ≤ x ≤ hi.
			if lo.Cmp(x) > 0 {
				t.Fatalf("floor quantize moved inward: Quantize(%g, floor, %d) = %s > %s",
					f, d, lo.RatString(), x.RatString())
			}
			if hi.Cmp(x) < 0 {
				t.Fatalf("ceil quantize moved inward: Quantize(%g, ceil, %d) = %s < %s",
					f, d, hi.RatString(), x.RatString())
			}
			// Tightness: each bound is within one grid step of x.
			if diff := new(big.Rat).Sub(x, lo); diff.Cmp(denom) >= 0 {
				t.Fatalf("floor quantize overshot: x - lo = %s ≥ 1/%d (x=%g)", diff.RatString(), d, f)
			}
			if diff := new(big.Rat).Sub(hi, x); diff.Cmp(denom) >= 0 {
				t.Fatalf("ceil quantize overshot: hi - x = %s ≥ 1/%d (x=%g)", diff.RatString(), d, f)
			}
			// Grid membership: d·lo and d·hi are integers.
			for name, b := range map[string]*big.Rat{"floor": lo, "ceil": hi} {
				scaled := new(big.Rat).Mul(b, new(big.Rat).SetInt64(d))
				if scaled.Denom().Cmp(one) != 0 {
					t.Fatalf("%s bound %s is off the 1/%d grid (x=%g)", name, b.RatString(), d, f)
				}
			}
		}
	}
}

// TestQuantizeAgreesAcrossPaths pins the fast dyadic path to the exact
// big-integer slow path: for power-of-two denominators, disabling the fast
// path by going through the rational arithmetic directly must produce the
// same grid point.
func TestQuantizeAgreesAcrossPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const d = 256
	for i := 0; i < 2000; i++ {
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		for _, ceil := range []bool{false, true} {
			got, err := Quantize(f, ceil, d)
			if err != nil {
				t.Fatalf("Quantize(%g, %v, %d): %v", f, ceil, d, err)
			}
			want := slowQuantize(t, f, ceil, d)
			if got.Cmp(want) != 0 {
				t.Fatalf("Quantize(%g, %v, %d) = %s, slow path %s",
					f, ceil, d, got.RatString(), want.RatString())
			}
		}
	}
}

// slowQuantize recomputes the quantisation with big-integer arithmetic
// only, independent of the implementation under test.
func slowQuantize(t *testing.T, f float64, ceil bool, d int64) *big.Rat {
	t.Helper()
	x := new(big.Rat)
	if x.SetFloat64(f) == nil {
		t.Fatalf("SetFloat64(%g) failed", f)
	}
	num := new(big.Int).Mul(x.Num(), big.NewInt(d))
	q, m := new(big.Int).DivMod(num, x.Denom(), new(big.Int))
	if ceil && m.Sign() != 0 {
		q.Add(q, big.NewInt(1))
	}
	return new(big.Rat).SetFrac(q, big.NewInt(d))
}
