package exact

import (
	"fmt"
	"math"
	"math/big"
)

// This file is the single home for float64 → ℚ conversion. Every layer that
// feeds floating-point data into the exact pipeline (confidence-region slab
// bounds, LP coefficient rows) must come through here so that NaN, ±Inf and
// magnitude overflow are handled in exactly one place.

// RatFromFloat converts a finite float64 exactly to a rational. NaN and ±Inf
// are rejected with an error rather than producing a nil or garbage value.
func RatFromFloat(f float64) (*big.Rat, error) {
	r := new(big.Rat)
	if err := SetRatFromFloat(r, f); err != nil {
		return nil, err
	}
	return r, nil
}

// SetRatFromFloat sets dst to the exact rational value of f, reusing dst's
// storage. It fails on NaN and ±Inf, which have no rational value.
func SetRatFromFloat(dst *big.Rat, f float64) error {
	if dst.SetFloat64(f) == nil {
		return fmt.Errorf("exact: cannot convert non-finite float %v to a rational", f)
	}
	return nil
}

// Quantize rounds f outward onto the dyadic grid of spacing 1/denom: up to
// the next multiple of 1/denom when ceil is true, down otherwise. See
// QuantizeInto for the error contract.
func Quantize(f float64, ceil bool, denom int64) (*big.Rat, error) {
	r := new(big.Rat)
	if err := QuantizeInto(r, f, ceil, denom); err != nil {
		return nil, err
	}
	return r, nil
}

// SimplestRatWithin returns the rational with the smallest denominator in
// the closed interval [f−tol, f+tol] (ties broken toward the smaller
// numerator). It is the rounding step of the two-tier solver's certificate
// checkers: a float64 candidate produced by the revised-simplex filter is
// snapped to the simplest nearby rational before being verified exactly, so
// certificates whose true values are small rationals (vertex coordinates of
// integer cones, dyadic slab bounds, sparse Farkas multipliers) are
// recovered exactly rather than dragged through a 2⁻⁵² denominator. A tol
// of 0 (or less) degenerates to the exact conversion. NaN and ±Inf are
// rejected.
func SimplestRatWithin(f, tol float64) (*big.Rat, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil, fmt.Errorf("exact: cannot round non-finite float %v to a rational", f)
	}
	if tol <= 0 {
		return RatFromFloat(f)
	}
	// Interval endpoints are computed in float64 and converted exactly; the
	// float rounding can only shrink the interval, never exclude f itself,
	// so the result is always within tol of f.
	lo, hi := new(big.Rat), new(big.Rat)
	if lo.SetFloat64(f-tol) == nil || hi.SetFloat64(f+tol) == nil {
		return RatFromFloat(f)
	}
	return simplestInInterval(lo, hi), nil
}

// simplestInInterval returns the smallest-denominator rational in [lo, hi]
// (lo ≤ hi), by the classic continued-fraction walk: descend the integer
// parts shared by both endpoints, and stop as soon as an integer lies
// between them.
func simplestInInterval(lo, hi *big.Rat) *big.Rat {
	if lo.Sign() <= 0 && hi.Sign() >= 0 {
		return new(big.Rat)
	}
	if hi.Sign() < 0 {
		r := simplestInInterval(new(big.Rat).Neg(hi), new(big.Rat).Neg(lo))
		return r.Neg(r)
	}
	// 0 < lo ≤ hi. If an integer lies in the interval, ⌈lo⌉ is the simplest
	// element (denominator 1, smallest magnitude). lo > 0, so truncating
	// division is floor division.
	floor, rem := new(big.Int).QuoRem(lo.Num(), lo.Denom(), new(big.Int))
	ceil := new(big.Int).Set(floor)
	if rem.Sign() != 0 {
		ceil.Add(ceil, big.NewInt(1))
	}
	c := new(big.Rat).SetInt(ceil)
	if c.Cmp(hi) <= 0 {
		return c
	}
	// Same integer part a = ⌊lo⌋ = ⌊hi⌋; recurse on the reciprocal of the
	// fractional parts: x = a + 1/y with y ∈ [1/(hi−a), 1/(lo−a)].
	ar := new(big.Rat).SetInt(floor)
	loF := new(big.Rat).Sub(lo, ar)
	hiF := new(big.Rat).Sub(hi, ar)
	y := simplestInInterval(hiF.Inv(hiF), loF.Inv(loF))
	return ar.Add(ar, y.Inv(y))
}

// QuantizeInto sets dst to f rounded outward onto the grid of multiples of
// 1/denom, reusing dst's storage.
//
// Unlike the int64(math.Ceil(f*denom)) idiom it replaces, the conversion is
// exact for every finite float64: magnitudes beyond 2⁵³/denom take a big.Int
// slow path instead of silently overflowing int64 (the seed bug this fixes).
// NaN and ±Inf return an error — a confidence-region bound that is not a
// finite number cannot be turned into an LP constraint.
func QuantizeInto(dst *big.Rat, f float64, ceil bool, denom int64) error {
	if denom <= 0 {
		panic(fmt.Sprintf("exact: quantize denominator must be positive, got %d", denom))
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return fmt.Errorf("exact: cannot quantize non-finite value %v", f)
	}
	scaled := f * float64(denom)
	if denom&(denom-1) == 0 && math.Abs(scaled) < 1<<53 {
		// Fast path: scaling by a power of two is exact (overflow lands in
		// the slow-path branch), so Ceil/Floor round the true value. For
		// other denominators f·denom itself rounds, which could pull an
		// "outward" bound inward — those take the exact path below.
		var n int64
		if ceil {
			n = int64(math.Ceil(scaled))
		} else {
			n = int64(math.Floor(scaled))
		}
		dst.SetFrac64(n, denom)
		return nil
	}
	// Slow path: f*denom exceeds the exactly-representable integer range, so
	// compute ⌈f·denom⌉ (or ⌊·⌋) with integer arithmetic on the exact
	// rational value of f.
	if dst.SetFloat64(f) == nil {
		return fmt.Errorf("exact: cannot quantize non-finite value %v", f)
	}
	num := new(big.Int).Mul(dst.Num(), big.NewInt(denom))
	den := new(big.Int).Set(dst.Denom())
	q, m := new(big.Int).DivMod(num, den, new(big.Int))
	// big.Int.DivMod is Euclidean: for den > 0, q = ⌊num/den⌋ and 0 ≤ m < den.
	if ceil && m.Sign() != 0 {
		q.Add(q, big.NewInt(1))
	}
	dst.SetFrac(q, big.NewInt(denom))
	return nil
}
