package exact

// Vec64 is the dense-vector side of the int64 rational kernel: a vector of
// rationals in common-denominator form. Together with Rat64 it carries the
// hot loops of the simplex certifiers (constraint-row dot products), the
// double-description method (GCD-normalised integer rays) and the LP row
// materialisation in internal/core.

import (
	"math"
	"math/big"
	"strconv"
	"strings"
)

// Vec64 is a dense rational vector with one shared positive denominator:
// component i has the exact value Num[i]/Den. GCD-normalised integer
// vectors (cone generators, DD rays) have Den == 1. The zero value (nil
// Num, Den 0) is not a valid vector; construct with Vec64FromVec,
// Vec64FromInts, or fill Num and set Den explicitly (Den must be > 0 and
// entries must not be MinInt64 — magnitude 2⁶³ is outside the kernel's
// domain, so every value stays negatable; the checked constructors
// enforce this).
type Vec64 struct {
	Num []int64
	Den int64
}

// Vec64FromInts builds an integer vector (Den 1) over its own copy of xs.
// MinInt64 entries are outside the kernel domain and panic.
func Vec64FromInts(xs ...int64) Vec64 {
	num := make([]int64, len(xs))
	for i, x := range xs {
		if x == math.MinInt64 {
			panic("exact: Vec64 entry magnitude 2⁶³ is outside the kernel domain")
		}
		num[i] = x
	}
	return Vec64{Num: num, Den: 1}
}

// Vec64FromVec converts v into common-denominator form. ok is false when
// any component does not fit int64, when the denominators' LCM overflows,
// or when a scaled numerator overflows — the caller keeps the big.Rat form.
func Vec64FromVec(v Vec) (Vec64, bool) {
	lcm := int64(1)
	for _, x := range v {
		den := x.Denom()
		if !den.IsInt64() || !x.Num().IsInt64() {
			return Vec64{}, false
		}
		d := den.Int64()
		g := int64(GCD64(uint64(lcm), uint64(d)))
		m, ok := MulInt64(lcm, d/g)
		if !ok {
			return Vec64{}, false
		}
		lcm = m
	}
	out := Vec64{Num: make([]int64, len(v)), Den: lcm}
	for i, x := range v {
		n, ok := MulInt64(x.Num().Int64(), lcm/x.Denom().Int64())
		if !ok {
			return Vec64{}, false
		}
		out.Num[i] = n
	}
	return out, true
}

// Len returns the number of components.
func (v Vec64) Len() int { return len(v.Num) }

// At returns component i in lowest terms. It panics on a vector outside
// the documented domain (Den ≤ 0, or a MinInt64 entry that reduction
// cannot shrink below magnitude 2⁶³).
func (v Vec64) At(i int) Rat64 {
	r, ok := MakeRat64(v.Num[i], v.Den)
	if !ok {
		panic("exact: invalid Vec64")
	}
	return r
}

// Clone returns a deep copy.
func (v Vec64) Clone() Vec64 {
	num := make([]int64, len(v.Num))
	copy(num, v.Num)
	return Vec64{Num: num, Den: v.Den}
}

// IsZero reports whether every component is zero.
func (v Vec64) IsZero() bool {
	for _, n := range v.Num {
		if n != 0 {
			return false
		}
	}
	return true
}

// Vec materialises v as a big.Rat vector.
func (v Vec64) Vec() Vec {
	out := make(Vec, len(v.Num))
	for i, n := range v.Num {
		out[i] = new(big.Rat).SetFrac64(n, v.Den)
	}
	return out
}

// Dot returns the inner product v·w as a reduced rational. ok is false on
// int64 overflow anywhere in the accumulation.
func (v Vec64) Dot(w Vec64) (Rat64, bool) {
	if len(v.Num) != len(w.Num) {
		panic("exact: dot length mismatch")
	}
	sum := int64(0)
	for i, a := range v.Num {
		b := w.Num[i]
		if a == 0 || b == 0 {
			continue
		}
		t, ok := MulInt64(a, b)
		if !ok {
			return Rat64{}, false
		}
		sum, ok = AddInt64(sum, t)
		if !ok {
			return Rat64{}, false
		}
	}
	den, ok := MulInt64(v.Den, w.Den)
	if !ok {
		return Rat64{}, false
	}
	return MakeRat64(sum, den)
}

// DotRat64s returns Σᵢ (Num[i]/Den)·xs[i] as a reduced rational, ok=false
// on overflow. This is the certificate-checking dot product: an LP
// constraint row (common-denominator form) against a candidate point whose
// coordinates are individually reduced rationals.
func (v Vec64) DotRat64s(xs []Rat64) (Rat64, bool) {
	if len(v.Num) != len(xs) {
		panic("exact: dot length mismatch")
	}
	sum := Rat64{0, 1}
	for i, a := range v.Num {
		if a == 0 || xs[i].n == 0 {
			continue
		}
		term, ok := Rat64{a, 1}.Mul(xs[i])
		if !ok {
			return Rat64{}, false
		}
		sum, ok = sum.Add(term)
		if !ok {
			return Rat64{}, false
		}
	}
	return sum.Quo(Rat64{v.Den, 1})
}

// IntDotSign returns the sign of Σᵢ Num[i]·w[i] — the sign of the dot
// product of v with the integer vector w scaled by the (positive) common
// denominators, which is all the cone membership/implication tests need.
// ok=false on overflow.
func (v Vec64) IntDotSign(w []int64) (int, bool) {
	if len(v.Num) != len(w) {
		panic("exact: dot length mismatch")
	}
	sum := int64(0)
	for i, a := range v.Num {
		if a == 0 || w[i] == 0 {
			continue
		}
		t, ok := MulInt64(a, w[i])
		if !ok {
			return 0, false
		}
		sum, ok = AddInt64(sum, t)
		if !ok {
			return 0, false
		}
	}
	switch {
	case sum > 0:
		return 1, true
	case sum < 0:
		return -1, true
	}
	return 0, true
}

// NormalizeIntegral scales v to coprime integers (Den 1), the kernel
// counterpart of Vec.NormalizeIntegral: the positive common denominator
// cannot change the integer content of Num, so dividing Num by its GCD is
// exact regardless of Den. Zero vectors normalise to themselves.
func (v Vec64) NormalizeIntegral() Vec64 {
	g := uint64(0)
	for _, n := range v.Num {
		if n != 0 {
			g = GCD64(g, AbsU64(n))
		}
	}
	out := Vec64{Num: make([]int64, len(v.Num)), Den: 1}
	if g == 0 {
		return out
	}
	for i, n := range v.Num {
		if n < 0 {
			out.Num[i] = -int64(AbsU64(n) / g)
		} else {
			out.Num[i] = int64(uint64(n) / g)
		}
	}
	return out
}

// Key returns the canonical deduplication key. For normalised integral
// vectors it matches Vec.Key() on the same values, so int64 and big.Rat
// rays deduplicate against each other.
func (v Vec64) Key() string {
	var sb strings.Builder
	for i, n := range v.Num {
		if i > 0 {
			sb.WriteByte('|')
		}
		if v.Den == 1 {
			sb.WriteString(strconv.FormatInt(n, 10))
		} else {
			r, ok := MakeRat64(n, v.Den)
			if !ok {
				panic("exact: invalid Vec64")
			}
			sb.WriteString(r.String())
		}
	}
	return sb.String()
}
