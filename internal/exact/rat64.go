package exact

// The int64 rational kernel. Rat64 is a machine-word rational scalar whose
// every operation is overflow-checked with math/bits: an operation either
// returns the exact reduced result, or reports ok=false, and the caller
// promotes to the big.Rat path. The kernel is therefore never wrong, only
// sometimes slow — the hot loops of the simplex solver, the certificate
// checkers and the double-description method run on Rat64/Vec64 and fall
// back to *big.Rat per element, per row or per ray on the first overflow.
//
// Values flowing through those loops are small by construction: μpath
// counter signatures are small integers, DD rays are GCD-normalised, region
// axes are snapped to a dyadic grid (stats.axisQuantum) and slab bounds to
// the lpQuantum grid, so in practice the overwhelming majority of
// operations complete in int64 (the promotion rate is surfaced through
// core.SolverStats and counterpointd's /stats).

import (
	"math"
	"math/big"
	"math/bits"
	"strconv"
)

// Rat64 is an exact rational with an int64 numerator and a positive int64
// denominator, kept in lowest terms. Construct values with MakeRat64,
// Rat64FromInt64, Rat64FromRat or Rat64FromFloat; the zero value of the
// struct is NOT a valid rational (its denominator is zero) — use
// Rat64FromInt64(0) for zero.
type Rat64 struct {
	n int64 // numerator, carries the sign
	d int64 // denominator, always > 0
}

// Num returns the numerator.
func (a Rat64) Num() int64 { return a.n }

// Den returns the (positive) denominator.
func (a Rat64) Den() int64 { return a.d }

// Sign returns -1, 0 or +1.
func (a Rat64) Sign() int {
	switch {
	case a.n > 0:
		return 1
	case a.n < 0:
		return -1
	}
	return 0
}

// IsZero reports whether a is zero.
func (a Rat64) IsZero() bool { return a.n == 0 }

// String renders a as "n/d" (or just "n" for integers).
func (a Rat64) String() string {
	if a.d == 1 {
		return strconv.FormatInt(a.n, 10)
	}
	return strconv.FormatInt(a.n, 10) + "/" + strconv.FormatInt(a.d, 10)
}

// Rat writes a's value into dst (allocating when dst is nil) and returns it.
func (a Rat64) Rat(dst *big.Rat) *big.Rat {
	if dst == nil {
		dst = new(big.Rat)
	}
	return dst.SetFrac64(a.n, a.d)
}

// RatInto writes a into dst without re-normalising: a is already in lowest
// terms with a positive denominator, so the GCD pass of big.Rat.SetFrac64 —
// the dominant cost of materialising kernel values for mixed-representation
// operations — is skipped. It detects (and survives) a zero-value dst,
// whose denominator reference is detached, by falling back to SetFrac64.
func (a Rat64) RatInto(dst *big.Rat) *big.Rat {
	if a.d == 1 {
		return dst.SetInt64(a.n) // no GCD in SetInt64
	}
	den := dst.Denom()
	den.SetInt64(a.d)
	if dst.Denom().Cmp(den) != 0 {
		// dst was an uninitialised big.Rat: Denom() handed out a detached
		// copy and the write above did not stick.
		return dst.SetFrac64(a.n, a.d)
	}
	dst.Num().SetInt64(a.n)
	return dst
}

// Float64 returns the correctly-rounded nearest float64: when numerator
// and denominator convert exactly (≤ 2⁵³) one IEEE division rounds the
// true quotient; otherwise the big.Rat conversion decides.
func (a Rat64) Float64() float64 {
	if AbsU64(a.n) <= 1<<53 && a.d <= 1<<53 {
		return float64(a.n) / float64(a.d)
	}
	f, _ := a.Rat(nil).Float64()
	return f
}

// GCD64 returns the greatest common divisor of a and b (GCD64(x, 0) = x).
func GCD64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// AbsU64 returns |x| as a uint64. The conversion is exact even for
// MinInt64, whose magnitude does not fit int64.
func AbsU64(x int64) uint64 {
	if x < 0 {
		return uint64(-x) // two's-complement wrap yields the magnitude
	}
	return uint64(x)
}

// AddInt64 returns a+b, reporting signed overflow. Exported so every
// kernel consumer (simplex, cone) shares one overflow-checked arithmetic
// implementation instead of drifting copies.
func AddInt64(a, b int64) (int64, bool) {
	s := a + b
	if ((a ^ s) & (b ^ s)) < 0 {
		return 0, false
	}
	return s, true
}

// SubInt64 returns a−b, reporting signed overflow.
func SubInt64(a, b int64) (int64, bool) {
	d := a - b
	if ((a ^ b) & (a ^ d)) < 0 {
		return 0, false
	}
	return d, true
}

// MulInt64 returns a·b, reporting overflow. Results of magnitude 2⁶³
// (MinInt64) are conservatively reported as overflow so every kernel value
// stays negatable. Exported for the same single-implementation reason as
// AddInt64.
func MulInt64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	hi, lo := bits.Mul64(AbsU64(a), AbsU64(b))
	if hi != 0 || lo > math.MaxInt64 {
		return 0, false
	}
	if (a < 0) != (b < 0) {
		return -int64(lo), true
	}
	return int64(lo), true
}

// MakeRat64 returns n/d in lowest terms. ok is false when d is zero or the
// reduced numerator or denominator cannot be represented (magnitude 2⁶³).
func MakeRat64(n, d int64) (Rat64, bool) {
	if d == 0 {
		return Rat64{}, false
	}
	if n == 0 {
		return Rat64{0, 1}, true
	}
	g := GCD64(AbsU64(n), AbsU64(d))
	un, ud := AbsU64(n)/g, AbsU64(d)/g
	if un > math.MaxInt64 || ud > math.MaxInt64 {
		return Rat64{}, false
	}
	num := int64(un)
	if (n < 0) != (d < 0) {
		num = -num
	}
	return Rat64{num, int64(ud)}, true
}

// Rat64FromInt64 returns the integer n as a rational.
func Rat64FromInt64(n int64) Rat64 { return Rat64{n, 1} }

// Rat64FromRat converts r when both numerator and denominator fit int64.
// big.Rat values are already reduced, so no normalisation is needed.
func Rat64FromRat(r *big.Rat) (Rat64, bool) {
	num, den := r.Num(), r.Denom()
	if !num.IsInt64() || !den.IsInt64() {
		return Rat64{}, false
	}
	return Rat64{num.Int64(), den.Int64()}, true
}

// Rat64FromFloat converts a finite float64 exactly. ok is false for NaN,
// ±Inf, and magnitudes or precisions outside the int64 range (the caller
// falls back to SetRatFromFloat).
func Rat64FromFloat(f float64) (Rat64, bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return Rat64{}, false
	}
	if f == 0 {
		return Rat64{0, 1}, true
	}
	fr, exp := math.Frexp(f) // f = fr·2^exp with |fr| ∈ [0.5, 1)
	m := int64(fr * (1 << 53))
	e := exp - 53
	tz := bits.TrailingZeros64(AbsU64(m))
	m >>= uint(tz)
	e += tz
	switch {
	case e >= 0:
		if e > 62 || AbsU64(m) > uint64(math.MaxInt64)>>uint(e) {
			return Rat64{}, false
		}
		return Rat64{m << uint(e), 1}, true
	case e >= -62:
		// m is odd after the shift, so m / 2^-e is already reduced.
		return Rat64{m, int64(1) << uint(-e)}, true
	}
	return Rat64{}, false
}

// Neg returns -a. ok is false only for numerator MinInt64, which the kernel
// never produces itself.
func (a Rat64) Neg() (Rat64, bool) {
	if a.n == math.MinInt64 {
		return Rat64{}, false
	}
	return Rat64{-a.n, a.d}, true
}

// Abs returns |a|.
func (a Rat64) Abs() (Rat64, bool) {
	if a.n >= 0 {
		return a, true
	}
	return a.Neg()
}

// Inv returns 1/a. ok is false when a is zero or its numerator is MinInt64.
func (a Rat64) Inv() (Rat64, bool) {
	if a.n == 0 || a.n == math.MinInt64 {
		return Rat64{}, false
	}
	if a.n < 0 {
		return Rat64{-a.d, -a.n}, true
	}
	return Rat64{a.d, a.n}, true
}

// Mul returns a·b with cross-GCD reduction before the checked multiply, so
// overflow is reported only when the reduced result itself does not fit.
func (a Rat64) Mul(b Rat64) (Rat64, bool) {
	if a.n == 0 || b.n == 0 {
		return Rat64{0, 1}, true
	}
	g1 := GCD64(AbsU64(a.n), uint64(b.d))
	g2 := GCD64(AbsU64(b.n), uint64(a.d))
	// Divide magnitudes to survive MinInt64 numerators.
	n1 := int64(AbsU64(a.n) / g1)
	n2 := int64(AbsU64(b.n) / g2)
	d1 := a.d / int64(g2)
	d2 := b.d / int64(g1)
	n, ok := MulInt64(n1, n2)
	if !ok {
		return Rat64{}, false
	}
	d, ok := MulInt64(d1, d2)
	if !ok {
		return Rat64{}, false
	}
	if (a.n < 0) != (b.n < 0) {
		n = -n
	}
	return Rat64{n, d}, true
}

// MulInt returns a·n with cross-GCD reduction (the certificate checkers'
// row-entry × multiplier product).
func (a Rat64) MulInt(n int64) (Rat64, bool) {
	if a.n == 0 || n == 0 {
		return Rat64{0, 1}, true
	}
	g := int64(GCD64(AbsU64(n), uint64(a.d)))
	nn, ok := MulInt64(a.n, n/g)
	if !ok {
		return Rat64{}, false
	}
	return Rat64{nn, a.d / g}, true
}

// Quo returns a/b (b non-zero).
func (a Rat64) Quo(b Rat64) (Rat64, bool) {
	inv, ok := b.Inv()
	if !ok {
		return Rat64{}, false
	}
	return a.Mul(inv)
}

// Add returns a+b using Knuth's GCD-aware scheme (TAOCP 4.5.1), which keeps
// intermediates minimal so overflow is reported only when the true reduced
// result is near the int64 boundary.
func (a Rat64) Add(b Rat64) (Rat64, bool) {
	if a.n == 0 {
		return b, true
	}
	if b.n == 0 {
		return a, true
	}
	g := int64(GCD64(uint64(a.d), uint64(b.d)))
	if g == 1 {
		t1, ok := MulInt64(a.n, b.d)
		if !ok {
			return Rat64{}, false
		}
		t2, ok := MulInt64(b.n, a.d)
		if !ok {
			return Rat64{}, false
		}
		n, ok := AddInt64(t1, t2)
		if !ok {
			return Rat64{}, false
		}
		d, ok := MulInt64(a.d, b.d)
		if !ok {
			return Rat64{}, false
		}
		return Rat64{n, d}, true // coprime denominators ⇒ already reduced
	}
	ad, bd := a.d/g, b.d/g
	t1, ok := MulInt64(a.n, bd)
	if !ok {
		return Rat64{}, false
	}
	t2, ok := MulInt64(b.n, ad)
	if !ok {
		return Rat64{}, false
	}
	t, ok := AddInt64(t1, t2)
	if !ok {
		return Rat64{}, false
	}
	if t == 0 {
		return Rat64{0, 1}, true
	}
	g2 := int64(GCD64(AbsU64(t), uint64(g)))
	d, ok := MulInt64(ad, b.d/g2)
	if !ok {
		return Rat64{}, false
	}
	return Rat64{t / g2, d}, true
}

// Sub returns a−b.
func (a Rat64) Sub(b Rat64) (Rat64, bool) {
	nb, ok := b.Neg()
	if !ok {
		return Rat64{}, false
	}
	return a.Add(nb)
}

// Cmp compares a and b exactly. It cannot overflow: the cross products are
// compared in 128 bits.
func (a Rat64) Cmp(b Rat64) int {
	sa, sb := a.Sign(), b.Sign()
	if sa != sb {
		if sa < sb {
			return -1
		}
		return 1
	}
	if sa == 0 {
		return 0
	}
	lh, ll := bits.Mul64(AbsU64(a.n), uint64(b.d))
	rh, rl := bits.Mul64(AbsU64(b.n), uint64(a.d))
	c := 0
	switch {
	case lh != rh:
		if lh > rh {
			c = 1
		} else {
			c = -1
		}
	case ll != rl:
		if ll > rl {
			c = 1
		} else {
			c = -1
		}
	}
	if sa < 0 {
		c = -c
	}
	return c
}

// Equal reports a == b (exact; never overflows).
func (a Rat64) Equal(b Rat64) bool { return a.n == b.n && a.d == b.d }

// Quantize64 is the int64 fast path of QuantizeInto: it rounds f outward
// onto the grid of multiples of 1/denom for power-of-two denominators whose
// scaled magnitude stays in the float64-exact integer range. ok=false sends
// the caller to QuantizeInto's big path; when ok, the result is bit-identical
// to QuantizeInto's.
func Quantize64(f float64, ceil bool, denom int64) (Rat64, bool) {
	if denom <= 0 {
		return Rat64{}, false
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return Rat64{}, false
	}
	scaled := f * float64(denom)
	if denom&(denom-1) != 0 || math.Abs(scaled) >= 1<<53 {
		return Rat64{}, false
	}
	var n int64
	if ceil {
		n = int64(math.Ceil(scaled))
	} else {
		n = int64(math.Floor(scaled))
	}
	return MakeRat64(n, denom)
}

// SimplestRat64Within is the int64 fast path of SimplestRatWithin: the
// smallest-denominator rational in [f−tol, f+tol], computed by the same
// continued-fraction walk over Rat64 endpoints. ok=false (non-finite input,
// endpoints outside int64 precision, or overflow during the walk) sends the
// caller to the big.Rat implementation; when ok, the result is identical.
func SimplestRat64Within(f, tol float64) (Rat64, bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return Rat64{}, false
	}
	if tol <= 0 {
		return Rat64FromFloat(f)
	}
	lo, okLo := Rat64FromFloat(f - tol)
	hi, okHi := Rat64FromFloat(f + tol)
	if !okLo || !okHi {
		return Rat64{}, false
	}
	return simplestInInterval64(lo, hi)
}

// simplestInInterval64 mirrors simplestInInterval over Rat64, reporting
// ok=false on any overflow so the caller can retry over big.Rat.
func simplestInInterval64(lo, hi Rat64) (Rat64, bool) {
	if lo.Sign() <= 0 && hi.Sign() >= 0 {
		return Rat64{0, 1}, true
	}
	if hi.Sign() < 0 {
		nhi, ok1 := hi.Neg()
		nlo, ok2 := lo.Neg()
		if !ok1 || !ok2 {
			return Rat64{}, false
		}
		r, ok := simplestInInterval64(nhi, nlo)
		if !ok {
			return Rat64{}, false
		}
		return r.Neg()
	}
	// 0 < lo ≤ hi. lo > 0, so truncating division is floor division.
	floor := lo.n / lo.d
	rem := lo.n % lo.d
	ceil := floor
	if rem != 0 {
		var ok bool
		ceil, ok = AddInt64(ceil, 1)
		if !ok {
			return Rat64{}, false
		}
	}
	if Rat64FromInt64(ceil).Cmp(hi) <= 0 {
		return Rat64{ceil, 1}, true
	}
	// Same integer part; recurse on the reciprocal of the fractional parts.
	ar := Rat64FromInt64(floor)
	loF, ok := lo.Sub(ar)
	if !ok {
		return Rat64{}, false
	}
	hiF, ok := hi.Sub(ar)
	if !ok {
		return Rat64{}, false
	}
	loInv, ok1 := hiF.Inv()
	hiInv, ok2 := loF.Inv()
	if !ok1 || !ok2 {
		return Rat64{}, false
	}
	y, ok := simplestInInterval64(loInv, hiInv)
	if !ok {
		return Rat64{}, false
	}
	yInv, ok := y.Inv()
	if !ok {
		return Rat64{}, false
	}
	return ar.Add(yInv)
}
