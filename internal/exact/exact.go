// Package exact provides exact rational-number linear algebra over
// math/big.Rat: vectors, matrices, Gaussian elimination, null spaces and
// row spaces.
//
// CounterPoint's constraint-deduction pipeline (paper §6) requires exact
// arithmetic: "standard numeric methods (e.g., QR factorization) are
// ill-conditioned, whilst symbolic operations preserve exact integer
// values". Every geometric computation in internal/cone and every pivot of
// the simplex solver in internal/simplex is performed over ℚ with this
// package, so feasibility verdicts and facet equations are never corrupted
// by floating-point round-off.
package exact

import (
	"fmt"
	"math/big"
	"strings"
)

// Vec is a dense vector of rationals. Elements are never nil.
type Vec []*big.Rat

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = new(big.Rat)
	}
	return v
}

// VecFromInts builds a vector from integers.
func VecFromInts(xs ...int64) Vec {
	v := make(Vec, len(xs))
	for i, x := range xs {
		v[i] = big.NewRat(x, 1)
	}
	return v
}

// VecFromFloats builds a vector from float64 values exactly.
func VecFromFloats(xs []float64) Vec {
	v := make(Vec, len(xs))
	for i, x := range xs {
		r := new(big.Rat)
		r.SetFloat64(x)
		v[i] = r
	}
	return v
}

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	for i, x := range v {
		out[i] = new(big.Rat).Set(x)
	}
	return out
}

// IsZero reports whether all components are zero.
func (v Vec) IsZero() bool {
	for _, x := range v {
		if x.Sign() != 0 {
			return false
		}
	}
	return true
}

// Dot returns the inner product v·w.
func (v Vec) Dot(w Vec) *big.Rat {
	if len(v) != len(w) {
		panic(fmt.Sprintf("exact: dot length mismatch %d vs %d", len(v), len(w)))
	}
	sum := new(big.Rat)
	t := new(big.Rat)
	for i := range v {
		if v[i].Sign() == 0 || w[i].Sign() == 0 {
			continue
		}
		t.Mul(v[i], w[i])
		sum.Add(sum, t)
	}
	return sum
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec {
	out := v.Clone()
	for i := range out {
		out[i].Add(out[i], w[i])
	}
	return out
}

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec {
	out := v.Clone()
	for i := range out {
		out[i].Sub(out[i], w[i])
	}
	return out
}

// Scale returns c·v.
func (v Vec) Scale(c *big.Rat) Vec {
	out := v.Clone()
	for i := range out {
		out[i].Mul(out[i], c)
	}
	return out
}

// AddScaled sets v += c·w in place.
func (v Vec) AddScaled(c *big.Rat, w Vec) {
	t := new(big.Rat)
	for i := range v {
		if w[i].Sign() == 0 {
			continue
		}
		t.Mul(c, w[i])
		v[i].Add(v[i], t)
	}
}

// Equal reports component-wise equality.
func (v Vec) Equal(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i].Cmp(w[i]) != 0 {
			return false
		}
	}
	return true
}

// Floats converts v to float64 components.
func (v Vec) Floats() []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i], _ = x.Float64()
	}
	return out
}

// String renders the vector as (a, b, c).
func (v Vec) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = x.RatString()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// NormalizeIntegral scales v by a positive rational so that its entries are
// coprime integers (division by the GCD after clearing denominators). The
// zero vector is returned unchanged. This is the signature normalisation
// step of paper §6 ("normalized by dividing each element by the greatest
// common factor").
func (v Vec) NormalizeIntegral() Vec {
	if v.IsZero() {
		return v.Clone()
	}
	// lcm of denominators
	lcm := big.NewInt(1)
	t := new(big.Int)
	for _, x := range v {
		d := x.Denom()
		t.GCD(nil, nil, lcm, d)
		lcm.Div(lcm, t)
		lcm.Mul(lcm, d)
	}
	// scale to integers, track gcd of numerators
	ints := make([]*big.Int, len(v))
	gcd := new(big.Int)
	for i, x := range v {
		n := new(big.Int).Mul(x.Num(), new(big.Int).Div(lcm, x.Denom()))
		ints[i] = n
		if n.Sign() != 0 {
			if gcd.Sign() == 0 {
				gcd.Abs(n)
			} else {
				gcd.GCD(nil, nil, gcd, new(big.Int).Abs(n))
			}
		}
	}
	out := make(Vec, len(v))
	for i, n := range ints {
		out[i] = new(big.Rat).SetInt(new(big.Int).Div(n, gcd))
	}
	return out
}

// Key returns a canonical string key for deduplication.
func (v Vec) Key() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = x.RatString()
	}
	return strings.Join(parts, "|")
}

// Mat is a dense row-major rational matrix.
type Mat struct {
	Rows, Cols int
	Data       []Vec // one Vec per row
}

// NewMat returns a zero rows×cols matrix.
func NewMat(rows, cols int) *Mat {
	m := &Mat{Rows: rows, Cols: cols, Data: make([]Vec, rows)}
	for i := range m.Data {
		m.Data[i] = NewVec(cols)
	}
	return m
}

// MatFromRows builds a matrix from row vectors (cloned).
func MatFromRows(rows []Vec) *Mat {
	if len(rows) == 0 {
		return &Mat{}
	}
	m := &Mat{Rows: len(rows), Cols: len(rows[0]), Data: make([]Vec, len(rows))}
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("exact: ragged rows")
		}
		m.Data[i] = r.Clone()
	}
	return m
}

// At returns the element at (i, j).
func (m *Mat) At(i, j int) *big.Rat { return m.Data[i][j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v *big.Rat) { m.Data[i][j].Set(v) }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := &Mat{Rows: m.Rows, Cols: m.Cols, Data: make([]Vec, m.Rows)}
	for i, r := range m.Data {
		out.Data[i] = r.Clone()
	}
	return out
}

// MulVec returns m·v.
func (m *Mat) MulVec(v Vec) Vec {
	out := NewVec(m.Rows)
	for i, row := range m.Data {
		out[i] = row.Dot(v)
	}
	return out
}

// Transpose returns mᵀ.
func (m *Mat) Transpose() *Mat {
	out := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j][i].Set(m.Data[i][j])
		}
	}
	return out
}

// RowEchelon reduces m in place to reduced row-echelon form and returns the
// pivot column of each pivot row, in order. Rows below the returned rank are
// zero.
func (m *Mat) RowEchelon() (pivotCols []int) {
	r := 0
	t := new(big.Rat)
	for c := 0; c < m.Cols && r < m.Rows; c++ {
		// find pivot
		p := -1
		for i := r; i < m.Rows; i++ {
			if m.Data[i][c].Sign() != 0 {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		m.Data[r], m.Data[p] = m.Data[p], m.Data[r]
		// scale pivot row to 1
		inv := new(big.Rat).Inv(m.Data[r][c])
		for j := c; j < m.Cols; j++ {
			m.Data[r][j].Mul(m.Data[r][j], inv)
		}
		// eliminate all other rows
		for i := 0; i < m.Rows; i++ {
			if i == r || m.Data[i][c].Sign() == 0 {
				continue
			}
			factor := new(big.Rat).Set(m.Data[i][c])
			for j := c; j < m.Cols; j++ {
				t.Mul(factor, m.Data[r][j])
				m.Data[i][j].Sub(m.Data[i][j], t)
			}
		}
		pivotCols = append(pivotCols, c)
		r++
	}
	return pivotCols
}

// Rank returns the rank of m (without modifying m).
func (m *Mat) Rank() int {
	c := m.Clone()
	return len(c.RowEchelon())
}

// RowSpaceBasis returns a basis (as reduced-echelon rows) for the row space
// of the matrix whose rows are rows.
func RowSpaceBasis(rows []Vec) []Vec {
	if len(rows) == 0 {
		return nil
	}
	m := MatFromRows(rows)
	pivots := m.RowEchelon()
	out := make([]Vec, len(pivots))
	for i := range pivots {
		out[i] = m.Data[i].Clone()
	}
	return out
}

// NullSpaceBasis returns a basis for {x : A·x = 0} where A's rows are rows.
// Each basis vector is normalised to coprime integers.
func NullSpaceBasis(rows []Vec, cols int) []Vec {
	m := MatFromRows(rows)
	if m.Rows == 0 {
		m = NewMat(0, cols)
		m.Cols = cols
	}
	pivots := m.RowEchelon()
	isPivot := make(map[int]bool, len(pivots))
	for _, c := range pivots {
		isPivot[c] = true
	}
	var basis []Vec
	for free := 0; free < cols; free++ {
		if isPivot[free] {
			continue
		}
		v := NewVec(cols)
		v[free].SetInt64(1)
		for i, pc := range pivots {
			// pivot row i: x[pc] = -sum_{j free} a[i][j] x[j]
			v[pc].Neg(m.Data[i][free])
		}
		basis = append(basis, v.NormalizeIntegral())
	}
	return basis
}

// InSpan reports whether v lies in the span of basis (any vectors).
func InSpan(v Vec, basis []Vec) bool {
	if v.IsZero() {
		return true
	}
	rows := make([]Vec, 0, len(basis)+1)
	rows = append(rows, basis...)
	r0 := len(RowSpaceBasis(rows))
	rows = append(rows, v)
	return len(RowSpaceBasis(rows)) == r0
}

// SolveInSpan expresses v as a combination of basis vectors, returning the
// coefficients, or ok=false if v is not in the span. basis must be linearly
// independent.
func SolveInSpan(v Vec, basis []Vec) (coeffs Vec, ok bool) {
	if len(basis) == 0 {
		return nil, v.IsZero()
	}
	n := len(v)
	// Augmented system: columns are basis vectors, RHS v.
	m := NewMat(n, len(basis)+1)
	for j, b := range basis {
		for i := 0; i < n; i++ {
			m.Data[i][j].Set(b[i])
		}
	}
	for i := 0; i < n; i++ {
		m.Data[i][len(basis)].Set(v[i])
	}
	pivots := m.RowEchelon()
	coeffs = NewVec(len(basis))
	for i, pc := range pivots {
		if pc == len(basis) {
			return nil, false // inconsistent: pivot in RHS column
		}
		coeffs[pc].Set(m.Data[i][len(basis)])
	}
	return coeffs, true
}
