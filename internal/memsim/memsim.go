// Package memsim simulates a set-associative write-allocate cache hierarchy
// (L1/L2/L3) with LRU replacement.
//
// Its sole job in this reproduction is to classify page-table-walker memory
// references into the Haswell Refs counter group: walk_ref.l1, walk_ref.l2,
// walk_ref.l3 and walk_ref.mem record at which level of the data-cache
// hierarchy each walker load was served (Table 2: page_walker_loads.*).
// Regular program accesses also flow through the hierarchy so that walker
// entries compete with data for capacity, as on real hardware.
package memsim

import "fmt"

// Level identifies where an access was served.
type Level int

// Hierarchy levels.
const (
	L1 Level = iota
	L2
	L3
	Mem
)

func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case Mem:
		return "Mem"
	}
	return "?"
}

// Cache is one set-associative LRU cache level.
type Cache struct {
	sets     int
	ways     int
	lineBits uint
	// tags[set][way]; lru[set][way] = age counter (higher = more recent)
	tags  [][]uint64
	valid [][]bool
	lru   [][]uint64
	clock uint64
}

// NewCache builds a cache of sizeBytes with the given associativity and
// line size (both powers of two).
func NewCache(sizeBytes, ways, lineBytes int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("memsim: non-positive cache geometry")
	}
	if lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("memsim: line size %d not a power of two", lineBytes)
	}
	lines := sizeBytes / lineBytes
	sets := lines / ways
	if sets == 0 || sets*ways*lineBytes != sizeBytes {
		return nil, fmt.Errorf("memsim: geometry %dB/%dway/%dB does not tile", sizeBytes, ways, lineBytes)
	}
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("memsim: set count %d not a power of two", sets)
	}
	lineBits := uint(0)
	for 1<<lineBits != lineBytes {
		lineBits++
	}
	c := &Cache{sets: sets, ways: ways, lineBits: lineBits}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.lru = make([][]uint64, sets)
	for i := 0; i < sets; i++ {
		c.tags[i] = make([]uint64, ways)
		c.valid[i] = make([]bool, ways)
		c.lru[i] = make([]uint64, ways)
	}
	return c, nil
}

// Access looks up addr, filling on miss, and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line) & (c.sets - 1)
	tag := line >> uint(log2(c.sets))
	c.clock++
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.lru[set][w] = c.clock
			return true
		}
	}
	// Miss: fill LRU way.
	victim := 0
	for w := 1; w < c.ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	c.tags[set][victim] = tag
	c.valid[set][victim] = true
	c.lru[set][victim] = c.clock
	return false
}

// Flush invalidates all lines.
func (c *Cache) Flush() {
	for s := range c.valid {
		for w := range c.valid[s] {
			c.valid[s][w] = false
		}
	}
}

func log2(x int) int {
	n := 0
	for 1<<n < x {
		n++
	}
	return n
}

// Hierarchy is an inclusive three-level cache hierarchy.
type Hierarchy struct {
	l1, l2, l3 *Cache
	stats      [4]uint64
}

// HierarchyConfig sizes each level.
type HierarchyConfig struct {
	L1Bytes, L1Ways int
	L2Bytes, L2Ways int
	L3Bytes, L3Ways int
	LineBytes       int
}

// HaswellConfig mirrors the Xeon E5-2680 v3 data-cache hierarchy used in
// the paper's testbed (32 KB L1D, 256 KB L2, shared L3 scaled down to a
// single core's slice to keep simulation memory modest).
func HaswellConfig() HierarchyConfig {
	return HierarchyConfig{
		L1Bytes: 32 << 10, L1Ways: 8,
		L2Bytes: 256 << 10, L2Ways: 8,
		L3Bytes: 2 << 20, L3Ways: 16,
		LineBytes: 64,
	}
}

// NewHierarchy builds the three levels.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1, err := NewCache(cfg.L1Bytes, cfg.L1Ways, cfg.LineBytes)
	if err != nil {
		return nil, fmt.Errorf("memsim: L1: %w", err)
	}
	l2, err := NewCache(cfg.L2Bytes, cfg.L2Ways, cfg.LineBytes)
	if err != nil {
		return nil, fmt.Errorf("memsim: L2: %w", err)
	}
	l3, err := NewCache(cfg.L3Bytes, cfg.L3Ways, cfg.LineBytes)
	if err != nil {
		return nil, fmt.Errorf("memsim: L3: %w", err)
	}
	return &Hierarchy{l1: l1, l2: l2, l3: l3}, nil
}

// MustHierarchy is NewHierarchy for statically known-good configs.
func MustHierarchy(cfg HierarchyConfig) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Access performs a load/store at addr, filling all levels on the way down,
// and returns the level that served it.
func (h *Hierarchy) Access(addr uint64) Level {
	lvl := Mem
	switch {
	case h.l1.Access(addr):
		lvl = L1
	case h.l2.Access(addr):
		lvl = L2
	case h.l3.Access(addr):
		lvl = L3
	}
	h.stats[lvl]++
	return lvl
}

// Served returns how many accesses each level has served.
func (h *Hierarchy) Served(l Level) uint64 { return h.stats[l] }

// Flush empties every level.
func (h *Hierarchy) Flush() {
	h.l1.Flush()
	h.l2.Flush()
	h.l3.Flush()
	h.stats = [4]uint64{}
}
