package memsim

import (
	"testing"
	"testing/quick"
)

func TestCacheHitAfterFill(t *testing.T) {
	c, err := NewCache(1024, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0x1000) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access should hit")
	}
	if !c.Access(0x1030) {
		t.Fatal("same-line access should hit")
	}
	if c.Access(0x1040) {
		t.Fatal("next line should miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 ways, 64B lines, 2 sets (256B total).
	c, err := NewCache(256, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Three lines mapping to set 0: line numbers 0, 2, 4 (even → set 0).
	c.Access(0 * 64)
	c.Access(2 * 64)
	c.Access(0 * 64) // touch line 0: line 2 is now LRU
	c.Access(4 * 64) // evicts line 2
	if !c.Access(0 * 64) {
		t.Fatal("line 0 should survive")
	}
	if c.Access(2 * 64) {
		t.Fatal("line 2 should have been evicted")
	}
}

func TestCacheGeometryErrors(t *testing.T) {
	if _, err := NewCache(0, 2, 64); err == nil {
		t.Fatal("zero size should error")
	}
	if _, err := NewCache(1000, 2, 60); err == nil {
		t.Fatal("non-power-of-two line should error")
	}
	if _, err := NewCache(100, 3, 64); err == nil {
		t.Fatal("non-tiling geometry should error")
	}
}

func TestCacheFlush(t *testing.T) {
	c, _ := NewCache(1024, 2, 64)
	c.Access(0x2000)
	c.Flush()
	if c.Access(0x2000) {
		t.Fatal("flushed line should miss")
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := MustHierarchy(HierarchyConfig{
		L1Bytes: 128, L1Ways: 2,
		L2Bytes: 512, L2Ways: 2,
		L3Bytes: 2048, L3Ways: 2,
		LineBytes: 64,
	})
	if lvl := h.Access(0x100); lvl != Mem {
		t.Fatalf("cold access: %v, want Mem", lvl)
	}
	if lvl := h.Access(0x100); lvl != L1 {
		t.Fatalf("warm access: %v, want L1", lvl)
	}
	// Evict from tiny L1 (2 lines total mapping... 128B/2way/64B = 1 set).
	h.Access(0x1000)
	h.Access(0x2000)
	if lvl := h.Access(0x100); lvl == L1 {
		t.Fatal("L1 should have evicted 0x100")
	}
	if h.Served(Mem) < 1 {
		t.Fatal("stats should record memory accesses")
	}
}

func TestHierarchyInclusionOrdering(t *testing.T) {
	// Property: repeated immediate access always hits L1.
	h := MustHierarchy(HaswellConfig())
	f := func(addr uint32) bool {
		a := uint64(addr)
		h.Access(a)
		return h.Access(a) == L1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := MustHierarchy(HaswellConfig())
	h.Access(0x42)
	h.Flush()
	if h.Access(0x42) != Mem {
		t.Fatal("flushed hierarchy should miss everywhere")
	}
	if h.Served(L1) != 0 {
		t.Fatal("flush should reset stats")
	}
}

func TestBadHierarchyConfig(t *testing.T) {
	if _, err := NewHierarchy(HierarchyConfig{L1Bytes: 0}); err == nil {
		t.Fatal("bad config should error")
	}
}

func TestLevelString(t *testing.T) {
	for lvl, want := range map[Level]string{L1: "L1", L2: "L2", L3: "L3", Mem: "Mem"} {
		if lvl.String() != want {
			t.Fatalf("%d: %s", lvl, lvl)
		}
	}
}
