package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/explore"
)

// recordingJournal is an in-memory jobs.Journal that logs the call
// sequence — the panic-containment tests assert that panicking runners
// still drive the full durability protocol (final checkpoint, terminal
// event, terminal record) through it.
type recordingJournal struct {
	mu  sync.Mutex
	ops []string // "submit:<id>", "event:<id>:<kind>", "checkpoint:<id>", "finished:<id>:<state>"

	lastCheckpoint map[string]any
	finishedState  map[string]State
	finishedErr    map[string]string
}

func newRecordingJournal() *recordingJournal {
	return &recordingJournal{
		lastCheckpoint: map[string]any{},
		finishedState:  map[string]State{},
		finishedErr:    map[string]string{},
	}
}

func (r *recordingJournal) JobSubmitted(id, kind, resumedFrom string, created time.Time, spec any) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, "submit:"+id)
	return nil
}

func (r *recordingJournal) JobEvent(id string, ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, "event:"+id+":"+ev.Kind)
}

func (r *recordingJournal) JobCheckpoint(id string, cp any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, "checkpoint:"+id)
	r.lastCheckpoint[id] = cp
}

func (r *recordingJournal) JobFinished(id string, state State, errMsg string, result any, started, finished time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, "finished:"+id+":"+string(state))
	r.finishedState[id] = state
	r.finishedErr[id] = errMsg
}

func (r *recordingJournal) JobRemoved(id string) {}

// lastIndex returns the position of the last op with the given prefix,
// or -1.
func (r *recordingJournal) lastIndex(prefix string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.ops) - 1; i >= 0; i-- {
		if strings.HasPrefix(r.ops[i], prefix) {
			return i
		}
	}
	return -1
}

// TestSweepPanicStillJournalsCheckpointAndTerminal: a runner panic is
// contained to its job, and the exit path still writes the final
// checkpoint and the terminal journal record — so a journaled daemon
// can resume the wreckage. The resumed run must be bit-identical to an
// uninterrupted one.
func TestSweepPanicStillJournalsCheckpointAndTerminal(t *testing.T) {
	ctx := context.Background()
	eng := engine.New()
	defer eng.Close()
	jr := newRecordingJournal()
	m := NewManager(Options{Journal: jr})
	defer m.Close()

	ref, err := m.SubmitSweep(testSweepSpec(eng))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ref.Result().(*SweepResult).Cells)
	if err != nil {
		t.Fatal(err)
	}

	spec := testSweepSpec(eng)
	spec.afterCell = func(i int) {
		if i == 2 {
			panic("sweep cell detonated")
		}
	}
	j, err := m.SubmitSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	err = j.Wait(ctx)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking sweep finished with err = %v, want contained panic", err)
	}
	if j.State() != StateFailed {
		t.Fatalf("state = %s, want failed", j.State())
	}

	// The journal saw the protocol through: last checkpoint holds the
	// three committed cells, the terminal "failed" event and the terminal
	// record landed after it.
	cp, ok := jr.lastCheckpoint[j.ID].([]SweepCell)
	if !ok || len(cp) != 3 {
		t.Fatalf("journaled checkpoint = %T len %d, want 3 cells", jr.lastCheckpoint[j.ID], len(cp))
	}
	if st := jr.finishedState[j.ID]; st != StateFailed {
		t.Fatalf("journaled terminal state = %s, want failed", st)
	}
	if msg := jr.finishedErr[j.ID]; !strings.Contains(msg, "panicked") {
		t.Fatalf("journaled terminal error = %q", msg)
	}
	ci := jr.lastIndex("checkpoint:" + j.ID)
	ei := jr.lastIndex("event:" + j.ID + ":failed")
	fi := jr.lastIndex("finished:" + j.ID)
	if ci < 0 || ei < 0 || fi < 0 || ci > ei || ei > fi {
		t.Fatalf("journal order: checkpoint@%d failed-event@%d finished@%d", ci, ei, fi)
	}

	// The manager survived the panic and resumes the job bit-identically
	// (the panic hook fires on cell index 2, which the restored prefix
	// already covers).
	r, err := m.ResumeSweep(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	got, err := json.Marshal(r.Result().(*SweepResult).Cells)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed cells diverge:\nwant %s\ngot  %s", want, got)
	}
}

// TestExplorePanicMidFrontierResumesBitIdentically: same contract for
// exploration — a Builder that panics mid-frontier fails only its job,
// the committed search graph is checkpointed on the panic exit path, and
// the resumed search finishes bit-identical to an uninterrupted run.
func TestExplorePanicMidFrontierResumesBitIdentically(t *testing.T) {
	ctx := context.Background()
	jr := newRecordingJournal()
	m := NewManager(Options{Journal: jr})
	defer m.Close()

	ref, err := m.SubmitExplore(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ref.Result())
	if err != nil {
		t.Fatal(err)
	}

	// Panic on the third model build ever — mid-frontier, after some
	// nodes have committed. Resumed runs restore those nodes instead of
	// rebuilding them, so the counter never reaches 3 again.
	var builds atomic.Int64
	spec := testSpec(2)
	inner := spec.Builder
	spec.Builder = func(fs explore.FeatureSet) (*core.Model, error) {
		if builds.Add(1) == 3 {
			panic("builder detonated")
		}
		return inner(fs)
	}
	spec.Workers = 1
	j, err := m.SubmitExplore(spec)
	if err != nil {
		t.Fatal(err)
	}
	err = j.Wait(ctx)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking explore finished with err = %v, want contained panic", err)
	}

	cp, ok := jr.lastCheckpoint[j.ID].([]*explore.Node)
	if !ok || len(cp) == 0 {
		t.Fatalf("journaled checkpoint = %T len %d, want committed nodes", jr.lastCheckpoint[j.ID], len(cp))
	}
	if st := jr.finishedState[j.ID]; st != StateFailed {
		t.Fatalf("journaled terminal state = %s, want failed", st)
	}
	ci := jr.lastIndex("checkpoint:" + j.ID)
	fi := jr.lastIndex("finished:" + j.ID)
	if ci < 0 || fi < 0 || ci > fi {
		t.Fatalf("journal order: checkpoint@%d finished@%d", ci, fi)
	}

	r, err := m.ResumeExplore(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatalf("resumed explore failed: %v", err)
	}
	got, err := json.Marshal(r.Result())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed explore result diverges:\nwant %s\ngot  %s", want, got)
	}
}
