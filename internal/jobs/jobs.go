// Package jobs runs CounterPoint's long-lived asynchronous work — guided
// exploration searches above all — behind a small job manager: submit,
// status, cancel, list; bounded concurrent execution with a bounded
// waiting queue (ErrQueueFull is the backpressure signal); a
// retained-result ring with a TTL so finished jobs stay queryable without
// growing without bound; and a per-job event log whose subscribers replay
// the full history before receiving live events.
//
// The manager is deliberately generic — a Job runs any Runner — while
// explore.go in this package provides the exploration-specific glue:
// progress-event forwarding, search-graph checkpointing after every
// committed node, and resume-from-checkpoint for cancelled or crashed
// jobs. internal/server puts the manager behind HTTP (POST /v1/explore,
// GET /v1/jobs, ...), which is how counterpointd serves the paper's §5 /
// Appendix C workflow to clients without a Go toolchain.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one progress record in a job's event log. The log is retained
// for the life of the job, so late subscribers replay the full history;
// Seq is the event's position in it. The job's terminal state is appended
// as a final event (kind "done", "failed" or "cancelled") so streaming
// consumers get closure in-band.
type Event struct {
	Seq  int    `json:"seq"`
	Kind string `json:"kind"`
	Data any    `json:"data,omitempty"`
}

// Runner is the work a job performs. It must honour ctx — cancellation is
// the manager's only way to stop it — and may report progress through
// job.Emit and record resumable state through job.SetCheckpoint. The
// returned value becomes the job's result. A panicking runner fails its
// job (with the panic recorded as the error) instead of taking the process
// down; its checkpoint survives for resumption.
type Runner func(ctx context.Context, job *Job) (any, error)

// Manager errors.
var (
	// ErrUnknownJob reports a lookup of an id that was never submitted or
	// has already been evicted from the retained ring.
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrActive reports an operation that needs a terminal job (Remove,
	// resume) applied to one still queued or running.
	ErrActive = errors.New("jobs: job is still active")
	// ErrQueueFull rejects a submission when MaxQueued jobs are already
	// waiting — the manager's backpressure signal.
	ErrQueueFull = errors.New("jobs: queue is full")
	// ErrJournal wraps a journal failure on the submission path: the job
	// was NOT accepted, because accepting it without a durable spec would
	// silently downgrade the durability contract. Callers should retry
	// later (the server maps it to 503 + Retry-After).
	ErrJournal = errors.New("jobs: journal write failed")
)

// Journal receives every durable lifecycle transition of a manager's
// jobs; internal/jobstore implements it over an append-only checksummed
// file. JobSubmitted is the only call that can veto (a submission is
// acked only once its spec is durable); the rest are best-effort — a
// failing journal degrades to in-memory operation rather than stopping
// running jobs (the store surfaces its own health separately).
//
// Specs are passed as submitted. A spec that implements
//
//	DurableSpec() (any, bool)
//
// is journaled via that wire form (ExploreSpec's closures, for example,
// are rebuilt from ExploreWire on recovery); other specs are journaled
// as-is if they marshal, or as null.
type Journal interface {
	// JobSubmitted records a new job. An error rejects the submission.
	JobSubmitted(id, kind, resumedFrom string, created time.Time, spec any) error
	// JobEvent records one appended event (terminal events included).
	JobEvent(id string, ev Event)
	// JobCheckpoint records the latest resumable state. Implementations
	// may coalesce bursts; the pending checkpoint must still be made
	// durable no later than the job's JobFinished record.
	JobCheckpoint(id string, cp any)
	// JobFinished records the terminal outcome. errMsg is empty on
	// success.
	JobFinished(id string, state State, errMsg string, result any, started, finished time.Time)
	// JobRemoved records that a job left the retained ring (expiry or
	// DELETE); recovery must not re-list it.
	JobRemoved(id string)
}

// Default Options values.
const (
	DefaultMaxConcurrent = 2
	DefaultMaxQueued     = 32
	DefaultMaxRetained   = 64
	DefaultRetainFor     = time.Hour
)

// Options configures a Manager.
type Options struct {
	// MaxConcurrent bounds simultaneously running jobs; submissions beyond
	// it queue and run in strict submission order. 0 means
	// DefaultMaxConcurrent.
	MaxConcurrent int
	// MaxQueued bounds the waiting queue: submissions beyond it fail with
	// ErrQueueFull instead of pinning their payloads (an exploration
	// job's spec holds its whole uploaded corpus) without bound. 0 means
	// DefaultMaxQueued.
	MaxQueued int
	// MaxRetained bounds the ring of finished jobs kept for status and
	// result queries; the oldest finished job is evicted first. 0 means
	// DefaultMaxRetained.
	MaxRetained int
	// RetainFor expires finished jobs even before the ring fills. 0 means
	// DefaultRetainFor.
	RetainFor time.Duration
	// Journal, when set, receives every durable lifecycle transition
	// (counterpointd wires internal/jobstore here behind -job-db). nil
	// keeps the manager purely in-memory.
	Journal Journal

	// now is the test hook for retention-TTL clocks.
	now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = DefaultMaxConcurrent
	}
	if o.MaxQueued <= 0 {
		o.MaxQueued = DefaultMaxQueued
	}
	if o.MaxRetained <= 0 {
		o.MaxRetained = DefaultMaxRetained
	}
	if o.RetainFor <= 0 {
		o.RetainFor = DefaultRetainFor
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// Manager owns a set of jobs. Create with NewManager; it is safe for
// concurrent use. Close cancels everything and waits for runners to exit.
type Manager struct {
	opts   Options
	ctx    context.Context
	cancel context.CancelFunc

	// sweep accumulates batched-sweep dedup telemetry across every sweep
	// job of this manager (surfaced by SweepStats / GET /stats).
	sweep sweepStats

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []*Job // submission order, live + retained
	retained []*Job // terminal jobs, oldest first
	queue    []*Job // submitted but not yet granted an execution slot
	running  int
	nextID   int
	closed   bool
	wg       sync.WaitGroup
}

// NewManager builds a manager from opts.
func NewManager(opts Options) *Manager {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		opts:   opts,
		ctx:    ctx,
		cancel: cancel,
		jobs:   map[string]*Job{},
	}
}

// Submit queues a job running run and returns it immediately. kind labels
// the job in listings ("explore", ...).
func (m *Manager) Submit(kind string, run Runner) (*Job, error) {
	return m.submit(kind, run, nil, "")
}

func (m *Manager) submit(kind string, run Runner, spec any, resumedFrom string) (*Job, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if len(m.queue) >= m.opts.MaxQueued {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (%d waiting)", ErrQueueFull, len(m.queue))
	}
	m.nextID++
	id := fmt.Sprintf("j%06d", m.nextID)
	created := m.opts.now()
	m.mu.Unlock()

	// Durability gate, outside m.mu (the journal fsyncs): the submission
	// is acked only once its spec is on disk, so a crash can never lose a
	// job the client was told exists. The ID is already reserved; a
	// failed journal write burns it, which is harmless.
	if m.opts.Journal != nil {
		if err := m.opts.Journal.JobSubmitted(id, kind, resumedFrom, created, spec); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		if m.opts.Journal != nil {
			m.opts.Journal.JobRemoved(id)
		}
		return nil, ErrClosed
	}
	ctx, cancel := context.WithCancel(m.ctx)
	j := &Job{
		ID:          id,
		Kind:        kind,
		ctx:         ctx,
		cancel:      cancel,
		run:         run,
		state:       StateQueued,
		wake:        make(chan struct{}),
		start:       make(chan struct{}),
		created:     created,
		spec:        spec,
		resumedFrom: resumedFrom,
		journal:     m.opts.Journal,
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j)
	m.queue = append(m.queue, j)
	m.dispatchLocked()
	m.expireLocked()
	m.wg.Add(1)
	m.mu.Unlock()
	go m.runJob(j)
	return j, nil
}

// dispatchLocked grants execution slots to queued jobs in strict
// submission order. Called under m.mu whenever a slot frees or the queue
// grows.
func (m *Manager) dispatchLocked() {
	for m.running < m.opts.MaxConcurrent && len(m.queue) > 0 {
		j := m.queue[0]
		m.queue = m.queue[1:]
		m.running++
		close(j.start)
	}
}

// runJob waits for an execution slot, runs the job, and retires it.
func (m *Manager) runJob(j *Job) {
	defer m.wg.Done()
	select {
	case <-j.start:
	case <-j.ctx.Done():
		// Cancelled (or the manager closed) while queued — unless the
		// dispatcher granted the slot in the same instant, in which case
		// the grant wins and the cancellation is handled below.
		m.mu.Lock()
		granted := false
		select {
		case <-j.start:
			granted = true
		default:
			for i, q := range m.queue {
				if q == j {
					m.queue = append(m.queue[:i], m.queue[i+1:]...)
					break
				}
			}
		}
		m.mu.Unlock()
		if !granted {
			m.retire(j, nil, j.ctx.Err())
			return
		}
	}
	defer func() {
		m.mu.Lock()
		m.running--
		m.dispatchLocked()
		m.mu.Unlock()
	}()
	if err := j.ctx.Err(); err != nil {
		// Cancelled between the slot grant and here: never run.
		m.retire(j, nil, err)
		return
	}
	j.setRunning(m.opts.now())
	var (
		res any
		err error
	)
	func() {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("jobs: job %s panicked: %v", j.ID, p)
			}
		}()
		res, err = j.run(j.ctx, j)
	}()
	m.retire(j, res, err)
}

// retire finalises the job and moves it into the retained ring — unless a
// caller raced us and already Removed it (the job turns terminal in
// finalize, before this lock, so a fast DELETE can land in between); a
// removed job must not re-enter the ring as an unlistable ghost.
func (m *Manager) retire(j *Job, res any, err error) {
	j.finalize(res, err, m.opts.now())
	m.mu.Lock()
	if _, ok := m.jobs[j.ID]; ok {
		m.retained = append(m.retained, j)
		m.expireLocked()
	}
	m.mu.Unlock()
}

// expireLocked enforces the retained ring's cap and TTL. Called under
// m.mu from every mutation and listing, so expiry needs no background
// goroutine.
func (m *Manager) expireLocked() {
	cutoff := m.opts.now().Add(-m.opts.RetainFor)
	drop := 0
	for _, j := range m.retained {
		if len(m.retained)-drop > m.opts.MaxRetained || j.FinishedAt().Before(cutoff) {
			drop++
			continue
		}
		break
	}
	if drop == 0 {
		return
	}
	dropped := map[string]bool{}
	for _, j := range m.retained[:drop] {
		dropped[j.ID] = true
		delete(m.jobs, j.ID)
		if m.opts.Journal != nil {
			m.opts.Journal.JobRemoved(j.ID)
		}
	}
	m.retained = append([]*Job(nil), m.retained[drop:]...)
	keep := m.order[:0]
	for _, j := range m.order {
		if !dropped[j.ID] {
			keep = append(keep, j)
		}
	}
	m.order = keep
}

// Get returns the job with the given id, if it is live or still retained.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked()
	j, ok := m.jobs[id]
	return j, ok
}

// Len counts the live and retained jobs (after expiry) without building
// status snapshots — the cheap form for health gauges.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked()
	return len(m.jobs)
}

// List returns a status snapshot of every live and retained job in
// submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	m.expireLocked()
	jobs := append([]*Job(nil), m.order...)
	m.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel cancels the job with the given id. Cancelling a queued job
// retires it without running; cancelling a running job ends its context
// and lets the runner unwind. Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	j, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	j.cancel()
	return nil
}

// Remove drops a terminal job from the retained ring (its events and
// result become unreachable). Cancel active jobs first.
func (m *Manager) Remove(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if !j.State().Terminal() {
		return fmt.Errorf("%w: %s is %s", ErrActive, id, j.State())
	}
	delete(m.jobs, id)
	for i, r := range m.retained {
		if r.ID == id {
			m.retained = append(m.retained[:i:i], m.retained[i+1:]...)
			break
		}
	}
	for i, r := range m.order {
		if r.ID == id {
			m.order = append(m.order[:i:i], m.order[i+1:]...)
			break
		}
	}
	if m.opts.Journal != nil {
		m.opts.Journal.JobRemoved(id)
	}
	return nil
}

// AdoptedJob is a terminal job reconstructed from a durable journal,
// handed to Adopt by the recovery path (jobstore.Recover) so a restarted
// daemon re-lists its pre-crash jobs with their original IDs, events and
// results.
type AdoptedJob struct {
	ID          string
	Kind        string
	State       State // must be terminal
	Error       string
	Result      any
	Spec        any
	Checkpoint  any
	Events      []Event
	Created     time.Time
	Started     time.Time
	Finished    time.Time
	ResumedFrom string
}

// Adopt installs a recovered terminal job into the manager's retained
// ring without running anything. The job is marked restored in its
// Status, keeps its journaled ID (the ID counter advances past it so new
// submissions never collide), and behaves like any other finished job:
// queryable, streamable (the journaled history replays), resumable via
// Resume when its spec and checkpoint were rebuilt, and subject to the
// ring's cap and TTL.
func (m *Manager) Adopt(a AdoptedJob) (*Job, error) {
	if !a.State.Terminal() {
		return nil, fmt.Errorf("jobs: adopt %s: state %q is not terminal", a.ID, a.State)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if _, dup := m.jobs[a.ID]; dup {
		return nil, fmt.Errorf("jobs: adopt %s: id already present", a.ID)
	}
	var n int
	if _, err := fmt.Sscanf(a.ID, "j%06d", &n); err == nil && n > m.nextID {
		m.nextID = n
	}
	// Pre-cancelled context: the job never runs, Cancel is a no-op.
	ctx, cancel := context.WithCancel(m.ctx)
	cancel()
	var jerr error
	if a.Error != "" {
		jerr = errors.New(a.Error)
	}
	j := &Job{
		ID:          a.ID,
		Kind:        a.Kind,
		ctx:         ctx,
		cancel:      cancel,
		journal:     m.opts.Journal,
		restored:    true,
		state:       a.State,
		err:         jerr,
		result:      a.Result,
		events:      append([]Event(nil), a.Events...),
		wake:        make(chan struct{}),
		created:     a.Created,
		started:     a.Started,
		finished:    a.Finished,
		checkpoint:  a.Checkpoint,
		spec:        a.Spec,
		resumedFrom: a.ResumedFrom,
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j)
	m.retained = append(m.retained, j)
	// A job that outlived its TTL or the ring's cap while the daemon was
	// down expires right here — normal retention, not an error.
	m.expireLocked()
	return j, nil
}

// Close cancels every job and waits for all runners to exit. Submissions
// after Close fail with ErrClosed. Close is idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
}

// Job is one submitted unit of work. All methods are safe for concurrent
// use; the exported fields are immutable after creation.
type Job struct {
	ID   string
	Kind string

	ctx    context.Context
	cancel context.CancelFunc
	run    Runner
	start  chan struct{} // closed by the dispatcher when a slot is granted
	// journal mirrors Manager.opts.Journal (nil when not durable);
	// restored marks a job adopted from the journal after a restart.
	journal  Journal
	restored bool

	mu          sync.Mutex
	state       State
	err         error
	result      any
	events      []Event
	wake        chan struct{} // closed and replaced on every append/state change
	created     time.Time
	started     time.Time
	finished    time.Time
	checkpoint  any
	spec        any
	resumedFrom string
}

// Status is a JSON-ready snapshot of a job.
type Status struct {
	ID          string     `json:"id"`
	Kind        string     `json:"kind"`
	State       State      `json:"state"`
	Error       string     `json:"error,omitempty"`
	Events      int        `json:"events"`
	Created     time.Time  `json:"created"`
	Started     *time.Time `json:"started,omitempty"`
	Finished    *time.Time `json:"finished,omitempty"`
	ResumedFrom string     `json:"resumed_from,omitempty"`
	// Restored marks a job recovered from the durable journal after a
	// daemon restart (its events and result are the journaled history).
	Restored bool `json:"restored,omitempty"`
	Result   any  `json:"result,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.ID,
		Kind:        j.Kind,
		State:       j.state,
		Events:      len(j.events),
		Created:     j.created,
		ResumedFrom: j.resumedFrom,
		Restored:    j.restored,
		Result:      j.result,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// State returns the job's current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's terminal error, if any.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the runner's result (nil until the job is done).
func (j *Job) Result() any {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// FinishedAt returns when the job reached a terminal state (zero if it
// has not).
func (j *Job) FinishedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished
}

// Emit appends one progress event to the job's log (the runner-side API).
// Events after the terminal event are dropped.
func (j *Job) Emit(kind string, data any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	ev := Event{Seq: len(j.events), Kind: kind, Data: data}
	j.events = append(j.events, ev)
	if j.journal != nil {
		j.journal.JobEvent(j.ID, ev)
	}
	j.broadcastLocked()
}

// SetCheckpoint records the runner's latest resumable state. The
// exploration runner stores the committed search graph here after every
// run, so a cancelled or crashed job can continue from its last completed
// frontier (see Manager.ResumeExplore).
func (j *Job) SetCheckpoint(cp any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.checkpoint = cp
	if j.journal != nil {
		// The journal may coalesce bursts (sweeps checkpoint per cell);
		// the contract is only that the latest checkpoint is durable by
		// the time the terminal record is.
		j.journal.JobCheckpoint(j.ID, cp)
	}
}

// Checkpoint returns the latest checkpoint recorded with SetCheckpoint.
func (j *Job) Checkpoint() any {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.checkpoint
}

// Spec returns the submission payload recorded for resumption (nil for
// plain Submit jobs).
func (j *Job) Spec() any {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.spec
}

func (j *Job) setRunning(now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return
	}
	j.state = StateRunning
	j.started = now
	j.broadcastLocked()
}

// finalize classifies the runner's outcome, appends the terminal event,
// and wakes every subscriber.
func (j *Job) finalize(res any, err error, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	state := StateDone
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		state = StateCancelled
	default:
		state = StateFailed
	}
	var data any
	if err != nil {
		data = map[string]string{"error": err.Error()}
	}
	ev := Event{Seq: len(j.events), Kind: string(state), Data: data}
	j.events = append(j.events, ev)
	j.state = state
	j.err = err
	j.result = res
	j.finished = now
	if j.journal != nil {
		// The terminal record is the commit point: the journal flushes any
		// coalesced checkpoint and fsyncs here, so the panic/cancel exit
		// paths (which SetCheckpoint before unwinding into finalize) land
		// their final frontier durably.
		errMsg := ""
		if err != nil {
			errMsg = err.Error()
		}
		j.journal.JobEvent(j.ID, ev)
		j.journal.JobFinished(j.ID, state, errMsg, res, j.started, now)
	}
	j.broadcastLocked()
}

// broadcastLocked wakes every Events subscriber and Wait caller.
func (j *Job) broadcastLocked() {
	close(j.wake)
	j.wake = make(chan struct{})
}

// Wait blocks until the job reaches a terminal state (returning its error)
// or ctx ends (returning the context error).
func (j *Job) Wait(ctx context.Context) error {
	for {
		j.mu.Lock()
		state, err, wake := j.state, j.err, j.wake
		j.mu.Unlock()
		if state.Terminal() {
			return err
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Events streams the job's event log: every event with Seq >= from (the
// full history for from = 0), then live events as they land. The channel
// closes once the terminal event has been delivered, or when ctx ends; the
// subscription goroutine exits with it either way, so an HTTP handler that
// ties ctx to its request context leaks nothing on client disconnect.
func (j *Job) Events(ctx context.Context, from int) <-chan Event {
	out := make(chan Event)
	go func() {
		defer close(out)
		next := from
		if next < 0 {
			next = 0
		}
		for {
			j.mu.Lock()
			var batch []Event
			if next < len(j.events) {
				batch = append(batch, j.events[next:]...)
			}
			// finalize appends the terminal event and flips the state under
			// one lock hold, so a terminal snapshot always includes it.
			terminal := j.state.Terminal()
			wake := j.wake
			j.mu.Unlock()
			for _, ev := range batch {
				select {
				case out <- ev:
				case <-ctx.Done():
					return
				}
			}
			next += len(batch)
			if terminal {
				return
			}
			select {
			case <-wake:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}
