package jobs

// Durable wire forms for job specs. A live spec holds closures (an
// explore Builder, a CorpusFunc) and a shared *engine.Engine — none of
// which can be journaled. The wire forms capture the declarative inputs
// those closures were built FROM, and the rebuilders reconstruct
// equivalent specs on recovery; because every job kind is a pure
// function of its declarative inputs, a rebuilt job resumes
// bit-identically from its checkpoint.
//
// The jobstore journals a spec through the DurableSpec hook:
//
//	func (spec T) DurableSpec() (any, bool)
//
// returning the JSON-marshalable wire form (false = not durable; the
// job is journaled for listing but cannot auto-resume).

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/explore"
	"repro/internal/haswell"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// CatalogHaswellMMU names the built-in exploration space: the Table 3
// feature axes over the simulated Haswell MMU (haswell.SearchUniverse).
const CatalogHaswellMMU = "haswell-mmu"

// ExploreWire is the declarative, journal-safe description of an
// exploration job: what the client actually sent, before the server
// turned it into closures. Build resolves it into a runnable
// ExploreSpec; the server submits through it and the recovery path
// replays it, so both construct byte-identical searches.
type ExploreWire struct {
	// Source is a feature-conditional DSL template; Catalog names a
	// built-in feature space. Exactly one must be set.
	Source  string `json:"source,omitempty"`
	Catalog string `json:"catalog,omitempty"`
	// Candidates restricts the searched universe (empty = everything the
	// template or catalogue defines); Initial seeds the starting model.
	Candidates []string `json:"candidates,omitempty"`
	Initial    []string `json:"initial,omitempty"`
	// Observations is the uploaded corpus (required with Source; the
	// catalogue simulates its own when empty).
	Observations []*counters.Observation `json:"observations,omitempty"`
	// Evaluation knobs, straight onto ExploreSpec.
	Confidence         float64         `json:"confidence,omitempty"`
	Mode               stats.NoiseMode `json:"mode,omitempty"`
	IdentifyViolations bool            `json:"identify,omitempty"`
	ForceExact         bool            `json:"force_exact,omitempty"`
	MaxDiscoverySteps  int             `json:"max_steps,omitempty"`
	Workers            int             `json:"workers,omitempty"`
	SkipElimination    bool            `json:"skip_elimination,omitempty"`
}

// Build resolves the wire form into a runnable ExploreSpec (Builder and,
// for a corpus-less catalogue job, CorpusFunc) plus the feature universe
// the template or catalogue defines — callers validate candidate names
// against it. The returned spec carries the wire form, so it is durable.
func (w ExploreWire) Build() (ExploreSpec, []string, error) {
	spec := ExploreSpec{
		Corpus:             w.Observations,
		Initial:            w.Initial,
		Confidence:         w.Confidence,
		Mode:               w.Mode,
		IdentifyViolations: w.IdentifyViolations,
		ForceExact:         w.ForceExact,
		MaxDiscoverySteps:  w.MaxDiscoverySteps,
		Workers:            w.Workers,
		SkipElimination:    w.SkipElimination,
		Wire:               &w,
	}
	var universe []string
	switch {
	case w.Source != "" && w.Catalog != "":
		return spec, nil, fmt.Errorf("request must set exactly one of source and catalog, not both")
	case w.Source != "":
		var err error
		spec.Builder, universe, err = explore.TemplateBuilder("explore", w.Source, nil)
		if err != nil {
			return spec, nil, err
		}
		if len(w.Observations) == 0 {
			return spec, nil, fmt.Errorf("template explorations need an uploaded corpus (observations)")
		}
	case w.Catalog == CatalogHaswellMMU:
		universe = haswell.SearchUniverse()
		set := haswell.AnalysisSet()
		spec.Builder = func(fs explore.FeatureSet) (*core.Model, error) {
			f := haswell.SearchFeatures(func(name string) bool { return fs[name] })
			return haswell.BuildModel("search:"+fs.Key(), f, set)
		}
		if len(w.Observations) == 0 {
			// Simulated corpus, built inside the job: hardware simulation
			// takes far too long to block a submission (or a recovery) on.
			// The simulator itself is not context-aware, so it runs on a
			// side goroutine and a cancelled job abandons it (freeing the
			// job slot; the goroutine finishes its simulation and exits).
			// The quick spec is deterministic, so a recovered job gets the
			// same corpus the crashed one had.
			spec.CorpusFunc = func(ctx context.Context) ([]*counters.Observation, error) {
				type built struct {
					obs []*counters.Observation
					err error
				}
				ch := make(chan built, 1)
				go func() {
					obs, err := haswell.BuildCorpus(haswell.QuickCorpusSpec())
					ch <- built{obs, err}
				}()
				select {
				case b := <-ch:
					return b.obs, b.err
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
		}
	case w.Catalog != "":
		return spec, nil, fmt.Errorf("unknown catalog %q (want %q)", w.Catalog, CatalogHaswellMMU)
	default:
		return spec, nil, fmt.Errorf("request must set source (a DSL template) or catalog")
	}
	spec.Candidates = w.Candidates
	if len(spec.Candidates) == 0 {
		spec.Candidates = universe
	}
	return spec, universe, nil
}

// DurableSpec journals the wire form an ExploreSpec was built from. A
// spec assembled by hand (Go callers wiring their own Builder closure)
// has no wire form and is not durable.
func (spec ExploreSpec) DurableSpec() (any, bool) {
	if spec.Wire == nil {
		return nil, false
	}
	return *spec.Wire, true
}

// sweepWire is SweepSpec's durable form: the pure-function inputs. The
// Engine and the afterCell test hook are process-local and rebuilt /
// dropped on recovery.
type sweepWire struct {
	Events        []uint8                 `json:"events"`
	Umasks        []uint8                 `json:"umasks"`
	Cmasks        []uint8                 `json:"cmasks"`
	Seed          int64                   `json:"seed,omitempty"`
	Samples       int                     `json:"samples,omitempty"`
	UopsPerSample int                     `json:"uops_per_sample,omitempty"`
	Base          []*counters.Observation `json:"base,omitempty"`
	Confidence    float64                 `json:"confidence,omitempty"`
	Mode          stats.NoiseMode         `json:"mode,omitempty"`
	ForceExact    bool                    `json:"force_exact,omitempty"`
	Workers       int                     `json:"workers,omitempty"`
}

// DurableSpec journals a sweep's defining inputs; sweeps are always
// durable because the whole scan is a pure function of them.
func (spec SweepSpec) DurableSpec() (any, bool) {
	return sweepWire{
		Events:        spec.Grid.Events,
		Umasks:        spec.Grid.Umasks,
		Cmasks:        spec.Grid.Cmasks,
		Seed:          spec.Seed,
		Samples:       spec.Samples,
		UopsPerSample: spec.UopsPerSample,
		Base:          spec.Base,
		Confidence:    spec.Confidence,
		Mode:          spec.Mode,
		ForceExact:    spec.ForceExact,
		Workers:       spec.Workers,
	}, true
}

// RebuildSweep returns the jobstore rebuilder for "sweep" jobs: it
// decodes the journaled wire spec and checkpoint back into the typed
// forms ResumeSweep expects, attaching the daemon's shared engine.
func RebuildSweep(eng *engine.Engine) func(spec, checkpoint []byte) (any, any, error) {
	return func(spec, checkpoint []byte) (any, any, error) {
		var w sweepWire
		if err := json.Unmarshal(spec, &w); err != nil {
			return nil, nil, fmt.Errorf("jobs: decode sweep spec: %w", err)
		}
		s := SweepSpec{
			Grid:          sweep.Grid{Events: w.Events, Umasks: w.Umasks, Cmasks: w.Cmasks},
			Seed:          w.Seed,
			Samples:       w.Samples,
			UopsPerSample: w.UopsPerSample,
			Base:          w.Base,
			Confidence:    w.Confidence,
			Mode:          w.Mode,
			ForceExact:    w.ForceExact,
			Workers:       w.Workers,
			Engine:        eng,
		}
		if len(checkpoint) == 0 {
			return s, nil, nil
		}
		var cp []SweepCell
		if err := json.Unmarshal(checkpoint, &cp); err != nil {
			return nil, nil, fmt.Errorf("jobs: decode sweep checkpoint: %w", err)
		}
		return s, cp, nil
	}
}

// RebuildExplore returns the jobstore rebuilder for "explore" jobs. The
// rebuilt spec keeps Engine nil — exploration runs on a private per-job
// engine, exactly like a fresh submission.
func RebuildExplore() func(spec, checkpoint []byte) (any, any, error) {
	return func(spec, checkpoint []byte) (any, any, error) {
		var w ExploreWire
		if err := json.Unmarshal(spec, &w); err != nil {
			return nil, nil, fmt.Errorf("jobs: decode explore spec: %w", err)
		}
		s, _, err := w.Build()
		if err != nil {
			return nil, nil, fmt.Errorf("jobs: rebuild explore spec: %w", err)
		}
		if len(checkpoint) == 0 {
			return s, nil, nil
		}
		var cp []*explore.Node
		if err := json.Unmarshal(checkpoint, &cp); err != nil {
			return nil, nil, fmt.Errorf("jobs: decode explore checkpoint: %w", err)
		}
		return s, cp, nil
	}
}
