package jobs

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/haswell"
	"repro/internal/sweep"
)

// sweepTestBase hand-builds a deterministic base corpus over the
// ground-truth set (no simulation — jobs tests exercise the scan
// machinery, not the simulator).
func sweepTestBase() []*counters.Observation {
	gt := haswell.GroundTruthSet()
	var out []*counters.Observation
	for k := 0; k < 2; k++ {
		// Integer-valued samples on purpose: the exact solver's rationals
		// stay small, so the cold (cache-miss) pass stays test-sized.
		o := counters.NewObservation("synthetic", gt)
		rng := rand.New(rand.NewSource(int64(k + 1)))
		for s := 0; s < 6; s++ {
			row := make([]float64, gt.Len())
			for j := range row {
				row[j] = float64((k*83+j*29)%300 + rng.Intn(25))
			}
			o.Append(row)
		}
		out = append(out, haswell.WithAggregateWalkRef(o))
	}
	return out
}

func sweepTestGrid() sweep.Grid {
	return sweep.Grid{
		Events: []uint8{0x42, sweep.EventPageWalkerLoads},
		Umasks: []uint8{0x01, 0x0F, 0x1F},
		Cmasks: []uint8{0x00, 0x10},
	}
}

func testSweepSpec(eng *engine.Engine) SweepSpec {
	return SweepSpec{
		Grid:   sweepTestGrid(),
		Seed:   7,
		Base:   sweepTestBase(),
		Engine: eng,
	}
}

func TestSweepJobRunsToCompletionAndDedups(t *testing.T) {
	eng := engine.New()
	defer eng.Close()
	m := NewManager(Options{})
	defer m.Close()
	j, err := m.SubmitSweep(testSweepSpec(eng))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, ok := j.Result().(*SweepResult)
	if !ok {
		t.Fatalf("result type %T", j.Result())
	}
	grid := sweepTestGrid()
	if res.GridSize != grid.Size() || len(res.Cells) != grid.Size() {
		t.Fatalf("grid size: %+v", res)
	}
	if res.BaseObservations != 2 || res.Verdicts != grid.Size()*2 {
		t.Fatalf("verdict accounting: %+v", res)
	}
	if res.Consistent+res.Refuted != grid.Size() {
		t.Fatalf("partition: %+v", res)
	}
	// Umask 0x1F aliases 0x0F on both events, so the grid must plan to
	// strictly fewer behaviour classes than cells...
	if res.UniqueBehaviours >= grid.Size() {
		t.Fatalf("no dedup: %d behaviours for %d cells", res.UniqueBehaviours, grid.Size())
	}
	if res.ClassesPlanned != res.UniqueBehaviours || res.CellsAliased != grid.Size()-res.ClassesPlanned {
		t.Fatalf("plan accounting: %+v", res)
	}
	// ...and the engine must be asked once per class, never per cell:
	// dedup observable, not assumed. Evaluations counts LP solves, so
	// verdict-cache hits can only pull it below classes × observations.
	if res.ClassesEvaluated != res.ClassesPlanned {
		t.Fatalf("fresh scan evaluated %d of %d classes", res.ClassesEvaluated, res.ClassesPlanned)
	}
	if ev := eng.SolverStats().Evaluations; ev > uint64(res.ClassesPlanned*res.BaseObservations) {
		t.Fatalf("%d LP solves for %d classes x %d observations", ev, res.ClassesPlanned, res.BaseObservations)
	}
	ss := m.SweepStats()
	if ss.Jobs != 1 || ss.CellsCommitted != uint64(grid.Size()) ||
		ss.ClassesEvaluated != uint64(res.ClassesEvaluated) || ss.EvaluationsAvoided <= 0 {
		t.Fatalf("manager telemetry: %+v", ss)
	}
	classRep := map[int]SweepCell{}
	for i, c := range res.Cells {
		if c.Index != i {
			t.Fatalf("cell %d misindexed: %+v", i, c)
		}
		if c.Feasible+c.Infeasible != 2 {
			t.Fatalf("cell %d verdict count: %+v", i, c)
		}
		// Aliased cells carry their class and inherit its verdict verbatim.
		rep, ok := classRep[c.Class]
		if !ok {
			classRep[c.Class] = c
			continue
		}
		if rep.Sig != c.Sig || rep.Feasible != c.Feasible || rep.Infeasible != c.Infeasible {
			t.Fatalf("class %d diverges: %+v vs %+v", c.Class, rep, c)
		}
	}
	if len(classRep) != res.ClassesPlanned {
		t.Fatalf("%d classes across cells, planned %d", len(classRep), res.ClassesPlanned)
	}
	// The event log narrates the scan: one plan announcement, one cell
	// event per grid cell.
	kinds := map[string]int{}
	for ev := range j.Events(context.Background(), 0) {
		kinds[ev.Kind]++
		if ev.Kind == "planned" {
			data := ev.Data.(SweepEventData)
			if data.Count != grid.Size() || data.Classes != res.ClassesPlanned || data.Aliased != res.CellsAliased {
				t.Fatalf("planned event: %+v", data)
			}
		}
	}
	if kinds["cell"] != grid.Size() || kinds["planned"] != 1 || kinds["done"] != 1 {
		t.Fatalf("event kinds: %v", kinds)
	}
}

func TestSweepSpecValidation(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	bad := []SweepSpec{
		{},
		{Grid: sweep.Grid{Events: []uint8{1}}},
		{Grid: sweepTestGrid(), Confidence: 1.5},
		{Grid: sweepTestGrid(), Workers: -1},
	}
	for i, spec := range bad {
		if _, err := m.SubmitSweep(spec); err == nil {
			t.Fatalf("spec %d should be rejected", i)
		}
	}
}

// TestSweepResumeEquivalence cancels a sweep mid-grid and checks the
// resumed job's cell list is bit-identical to an uninterrupted reference
// run — the acceptance bar for checkpoint/resume on this job kind.
func TestSweepResumeEquivalence(t *testing.T) {
	eng := engine.New()
	defer eng.Close()
	m := NewManager(Options{})
	defer m.Close()

	ref, err := m.SubmitSweep(testSweepSpec(eng))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := ref.Result().(*SweepResult)

	// Gate the second run after cell 3 commits, cancel while it is
	// blocked, then release it into the cancelled context.
	blocked := make(chan struct{})
	release := make(chan struct{})
	spec := testSweepSpec(eng)
	spec.afterCell = func(i int) {
		if i == 3 {
			close(blocked)
			<-release
		}
	}
	j, err := m.SubmitSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-blocked
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait: %v", err)
	}
	if j.State() != StateCancelled {
		t.Fatalf("state: %s", j.State())
	}
	cp, ok := j.Checkpoint().([]SweepCell)
	if !ok || len(cp) == 0 || len(cp) >= sweepTestGrid().Size() {
		t.Fatalf("checkpoint: %d cells (ok=%v)", len(cp), ok)
	}

	r, err := m.ResumeSweep(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if r.Status().ResumedFrom != j.ID {
		t.Fatalf("resumed_from: %q", r.Status().ResumedFrom)
	}
	got := r.Result().(*SweepResult)
	if !reflect.DeepEqual(got.Cells, want.Cells) {
		t.Fatalf("resumed cells differ from reference:\n got %+v\nwant %+v", got.Cells, want.Cells)
	}
	if got.Consistent != want.Consistent || got.Refuted != want.Refuted || got.Verdicts != want.Verdicts {
		t.Fatalf("resumed summary differs: %+v vs %+v", got, want)
	}
	// The resumed job announces its restored prefix.
	restored := false
	for ev := range r.Events(context.Background(), 0) {
		if ev.Kind == "restored" {
			restored = true
		}
	}
	if !restored {
		t.Fatal("no restored event")
	}
}

func TestResumeDispatchesByKind(t *testing.T) {
	eng := engine.New()
	defer eng.Close()
	m := NewManager(Options{})
	defer m.Close()

	if _, err := m.Resume("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown id: %v", err)
	}

	// Sweep jobs resume through the generic entry point.
	j, err := m.SubmitSweep(testSweepSpec(eng))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Resume(j.ID); !errors.Is(err, ErrActive) {
		t.Fatalf("active job: %v", err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	r, err := m.Resume(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Result().(*SweepResult).Cells, j.Result().(*SweepResult).Cells) {
		t.Fatal("generic resume of a finished sweep should replay its cells")
	}

	// Explore jobs dispatch too.
	e, err := m.SubmitExplore(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Resume(e.ID); err != nil {
		t.Fatalf("explore dispatch: %v", err)
	}

	// Jobs with no resumable spec are rejected.
	plain, err := m.Submit("noop", func(ctx context.Context, job *Job) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Resume(plain.ID); err == nil {
		t.Fatal("plain job should not be resumable")
	}
}

// benchmarkSweep runs full small-grid scans against a warm shared
// engine: after the first iteration every class's LP content is a
// verdict-cache hit, so a dedup regression (planner loss, cache
// rekeying) shows up directly in ns/op and allocs/op — as does a
// regression in the pooled per-class corpus materialisation.
func benchmarkSweep(b *testing.B, workers int) {
	eng := engine.New()
	defer eng.Close()
	m := NewManager(Options{})
	defer m.Close()
	spec := testSweepSpec(eng)
	spec.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := m.SubmitSweep(spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := j.Wait(context.Background()); err != nil {
			b.Fatal(err)
		}
		if j.Result().(*SweepResult).Verdicts == 0 {
			b.Fatal("no verdicts")
		}
	}
}

// BenchmarkSweepGrid is the sequential reference pipeline.
func BenchmarkSweepGrid(b *testing.B) { benchmarkSweep(b, 1) }

// BenchmarkSweepGridBatched is the batched fan-out (4 class evaluations
// in flight; wall-clock parity with the serial scan is expected on the
// 1-core recording box — the benchmark guards allocations, not speedup).
func BenchmarkSweepGridBatched(b *testing.B) { benchmarkSweep(b, 4) }
