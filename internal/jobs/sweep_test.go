package jobs

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/haswell"
	"repro/internal/sweep"
)

// sweepTestBase hand-builds a deterministic base corpus over the
// ground-truth set (no simulation — jobs tests exercise the scan
// machinery, not the simulator).
func sweepTestBase() []*counters.Observation {
	gt := haswell.GroundTruthSet()
	var out []*counters.Observation
	for k := 0; k < 2; k++ {
		// Integer-valued samples on purpose: the exact solver's rationals
		// stay small, so the cold (cache-miss) pass stays test-sized.
		o := counters.NewObservation("synthetic", gt)
		rng := rand.New(rand.NewSource(int64(k + 1)))
		for s := 0; s < 6; s++ {
			row := make([]float64, gt.Len())
			for j := range row {
				row[j] = float64((k*83+j*29)%300 + rng.Intn(25))
			}
			o.Append(row)
		}
		out = append(out, haswell.WithAggregateWalkRef(o))
	}
	return out
}

func sweepTestGrid() sweep.Grid {
	return sweep.Grid{
		Events: []uint8{0x42, sweep.EventPageWalkerLoads},
		Umasks: []uint8{0x01, 0x0F, 0x1F},
		Cmasks: []uint8{0x00, 0x10},
	}
}

func testSweepSpec(eng *engine.Engine) SweepSpec {
	return SweepSpec{
		Grid:   sweepTestGrid(),
		Seed:   7,
		Base:   sweepTestBase(),
		Engine: eng,
	}
}

func TestSweepJobRunsToCompletionAndDedups(t *testing.T) {
	eng := engine.New()
	defer eng.Close()
	m := NewManager(Options{})
	defer m.Close()
	j, err := m.SubmitSweep(testSweepSpec(eng))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, ok := j.Result().(*SweepResult)
	if !ok {
		t.Fatalf("result type %T", j.Result())
	}
	grid := sweepTestGrid()
	if res.GridSize != grid.Size() || len(res.Cells) != grid.Size() {
		t.Fatalf("grid size: %+v", res)
	}
	if res.BaseObservations != 2 || res.Verdicts != grid.Size()*2 {
		t.Fatalf("verdict accounting: %+v", res)
	}
	if res.Consistent+res.Refuted != grid.Size() {
		t.Fatalf("partition: %+v", res)
	}
	// Umask 0x1F aliases 0x0F on both events, so the grid must decode to
	// strictly fewer behaviours than cells...
	if res.UniqueBehaviours >= grid.Size() {
		t.Fatalf("no dedup: %d behaviours for %d cells", res.UniqueBehaviours, grid.Size())
	}
	// ...and the aliased re-tests must land in the engine's caches:
	// dedup observable, not assumed.
	cs := eng.CacheStats()
	if cs.LPHits == 0 || cs.VerdictHits == 0 {
		t.Fatalf("aliased cells missed the caches: %+v", cs)
	}
	for i, c := range res.Cells {
		if c.Index != i {
			t.Fatalf("cell %d misindexed: %+v", i, c)
		}
		if c.Feasible+c.Infeasible != 2 {
			t.Fatalf("cell %d verdict count: %+v", i, c)
		}
	}
	// The event log narrates the scan: one cell event per grid cell.
	kinds := map[string]int{}
	for ev := range j.Events(context.Background(), 0) {
		kinds[ev.Kind]++
	}
	if kinds["cell"] != grid.Size() || kinds["done"] != 1 {
		t.Fatalf("event kinds: %v", kinds)
	}
}

func TestSweepSpecValidation(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	bad := []SweepSpec{
		{},
		{Grid: sweep.Grid{Events: []uint8{1}}},
		{Grid: sweepTestGrid(), Confidence: 1.5},
	}
	for i, spec := range bad {
		if _, err := m.SubmitSweep(spec); err == nil {
			t.Fatalf("spec %d should be rejected", i)
		}
	}
}

// TestSweepResumeEquivalence cancels a sweep mid-grid and checks the
// resumed job's cell list is bit-identical to an uninterrupted reference
// run — the acceptance bar for checkpoint/resume on this job kind.
func TestSweepResumeEquivalence(t *testing.T) {
	eng := engine.New()
	defer eng.Close()
	m := NewManager(Options{})
	defer m.Close()

	ref, err := m.SubmitSweep(testSweepSpec(eng))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := ref.Result().(*SweepResult)

	// Gate the second run after cell 3 commits, cancel while it is
	// blocked, then release it into the cancelled context.
	blocked := make(chan struct{})
	release := make(chan struct{})
	spec := testSweepSpec(eng)
	spec.afterCell = func(i int) {
		if i == 3 {
			close(blocked)
			<-release
		}
	}
	j, err := m.SubmitSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-blocked
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait: %v", err)
	}
	if j.State() != StateCancelled {
		t.Fatalf("state: %s", j.State())
	}
	cp, ok := j.Checkpoint().([]SweepCell)
	if !ok || len(cp) == 0 || len(cp) >= sweepTestGrid().Size() {
		t.Fatalf("checkpoint: %d cells (ok=%v)", len(cp), ok)
	}

	r, err := m.ResumeSweep(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if r.Status().ResumedFrom != j.ID {
		t.Fatalf("resumed_from: %q", r.Status().ResumedFrom)
	}
	got := r.Result().(*SweepResult)
	if !reflect.DeepEqual(got.Cells, want.Cells) {
		t.Fatalf("resumed cells differ from reference:\n got %+v\nwant %+v", got.Cells, want.Cells)
	}
	if got.Consistent != want.Consistent || got.Refuted != want.Refuted || got.Verdicts != want.Verdicts {
		t.Fatalf("resumed summary differs: %+v vs %+v", got, want)
	}
	// The resumed job announces its restored prefix.
	restored := false
	for ev := range r.Events(context.Background(), 0) {
		if ev.Kind == "restored" {
			restored = true
		}
	}
	if !restored {
		t.Fatal("no restored event")
	}
}

func TestResumeDispatchesByKind(t *testing.T) {
	eng := engine.New()
	defer eng.Close()
	m := NewManager(Options{})
	defer m.Close()

	if _, err := m.Resume("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown id: %v", err)
	}

	// Sweep jobs resume through the generic entry point.
	j, err := m.SubmitSweep(testSweepSpec(eng))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Resume(j.ID); !errors.Is(err, ErrActive) {
		t.Fatalf("active job: %v", err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	r, err := m.Resume(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Result().(*SweepResult).Cells, j.Result().(*SweepResult).Cells) {
		t.Fatal("generic resume of a finished sweep should replay its cells")
	}

	// Explore jobs dispatch too.
	e, err := m.SubmitExplore(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Resume(e.ID); err != nil {
		t.Fatalf("explore dispatch: %v", err)
	}

	// Jobs with no resumable spec are rejected.
	plain, err := m.Submit("noop", func(ctx context.Context, job *Job) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Resume(plain.ID); err == nil {
		t.Fatal("plain job should not be resumable")
	}
}

// BenchmarkSweepGrid measures a full small-grid scan against a warm
// shared engine: after the first iteration every cell's LP and verdict
// are content-cache hits, so a dedup regression (cache rekeying, region
// identity loss) shows up directly in ns/op and allocs/op.
func BenchmarkSweepGrid(b *testing.B) {
	eng := engine.New()
	defer eng.Close()
	m := NewManager(Options{})
	defer m.Close()
	spec := testSweepSpec(eng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := m.SubmitSweep(spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := j.Wait(context.Background()); err != nil {
			b.Fatal(err)
		}
		if j.Result().(*SweepResult).Verdicts == 0 {
			b.Fatal("no verdicts")
		}
	}
}
