package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/sweep"
)

// sweepArtifacts captures everything a sweep run externalises: the result
// cells, the full event log, and the checkpoint bytes. The differential
// suite requires all three to be bit-identical between the batched and
// the sequential pipeline.
type sweepArtifacts struct {
	res        *SweepResult
	events     []byte
	checkpoint []byte
}

func runSweep(t *testing.T, spec SweepSpec) sweepArtifacts {
	t.Helper()
	m := NewManager(Options{})
	defer m.Close()
	j, err := m.SubmitSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	var events []Event
	for ev := range j.Events(context.Background(), 0) {
		events = append(events, ev)
	}
	evBytes, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	cpBytes, err := json.Marshal(j.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	return sweepArtifacts{res: j.Result().(*SweepResult), events: evBytes, checkpoint: cpBytes}
}

// TestSweepBatchedSerialBitIdentity is the differential suite for the
// batched pipeline: across a mixed grid, an aliased-heavy grid and the
// one-class degenerate grid, the parallel class fan-out (Workers: 4) must
// reproduce the sequential reference scan (Workers: 1) bit for bit —
// result cells, event log (order and payloads), and checkpoint bytes.
// The 1-core recording box cannot show a wall-clock win; this equality is
// what stands in for it.
func TestSweepBatchedSerialBitIdentity(t *testing.T) {
	grids := []struct {
		name string
		grid sweep.Grid
	}{
		{"mixed", sweepTestGrid()},
		// Every umask aliases low nibble 0x1, so the 12 cells collapse to
		// one class per (event, cmask) pair.
		{"aliased-heavy", sweep.Grid{
			Events: []uint8{0x42, sweep.EventPageWalkerLoads},
			Umasks: []uint8{0x01, 0x11, 0x21, 0x41, 0x81, 0xF1},
			Cmasks: []uint8{0x00},
		}},
		// Umask 0x00 selects nothing: the whole grid is the single "zero"
		// class and the batched path degenerates to one evaluation.
		{"one-class", sweep.Grid{
			Events: []uint8{0x42, 0x43, 0x44},
			Umasks: []uint8{0x00},
			Cmasks: []uint8{0x00, 0x01},
		}},
	}
	for _, tc := range grids {
		t.Run(tc.name, func(t *testing.T) {
			// Separate engines on purpose: shared caches cannot paper over a
			// divergence, and solver-side state never leaks between modes.
			serialEng := engine.New()
			defer serialEng.Close()
			serialSpec := testSweepSpec(serialEng)
			serialSpec.Grid = tc.grid
			serialSpec.Workers = 1
			serial := runSweep(t, serialSpec)

			batchedEng := engine.New()
			defer batchedEng.Close()
			batchedSpec := testSweepSpec(batchedEng)
			batchedSpec.Grid = tc.grid
			batchedSpec.Workers = 4
			batched := runSweep(t, batchedSpec)

			if !reflect.DeepEqual(batched.res.Cells, serial.res.Cells) {
				t.Fatalf("cells diverge:\nbatched %+v\nserial  %+v", batched.res.Cells, serial.res.Cells)
			}
			if !reflect.DeepEqual(batched.res, serial.res) {
				t.Fatalf("results diverge:\nbatched %+v\nserial  %+v", batched.res, serial.res)
			}
			if string(batched.events) != string(serial.events) {
				t.Fatalf("event logs diverge:\nbatched %s\nserial  %s", batched.events, serial.events)
			}
			if string(batched.checkpoint) != string(serial.checkpoint) {
				t.Fatalf("checkpoints diverge:\nbatched %s\nserial  %s", batched.checkpoint, serial.checkpoint)
			}
			if tc.name == "one-class" && batched.res.ClassesEvaluated != 1 {
				t.Fatalf("degenerate grid took %d evaluations", batched.res.ClassesEvaluated)
			}
		})
	}
}

// TestSweepBatchedCancelResume cancels a batched scan mid-batch — while
// class evaluations beyond the committed prefix are in flight — and
// checks the resumed run still reproduces an uninterrupted sequential
// scan bit for bit.
func TestSweepBatchedCancelResume(t *testing.T) {
	eng := engine.New()
	defer eng.Close()
	m := NewManager(Options{})
	defer m.Close()

	refSpec := testSweepSpec(eng)
	refSpec.Workers = 1
	ref, err := m.SubmitSweep(refSpec)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := ref.Result().(*SweepResult)

	blocked := make(chan struct{})
	release := make(chan struct{})
	spec := testSweepSpec(eng)
	spec.Workers = 4
	spec.afterCell = func(i int) {
		if i == 2 {
			close(blocked)
			<-release
		}
	}
	j, err := m.SubmitSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-blocked
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait: %v", err)
	}
	cp, ok := j.Checkpoint().([]SweepCell)
	if !ok || len(cp) == 0 || len(cp) >= spec.Grid.Size() {
		t.Fatalf("checkpoint: %d cells (ok=%v)", len(cp), ok)
	}

	r, err := m.ResumeSweep(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := r.Result().(*SweepResult)
	if !reflect.DeepEqual(got.Cells, want.Cells) {
		t.Fatalf("resumed batched cells differ from sequential reference:\n got %+v\nwant %+v", got.Cells, want.Cells)
	}
	// Classes fully covered by the restored prefix were not re-evaluated.
	if got.ClassesEvaluated >= got.ClassesPlanned {
		t.Fatalf("resume re-evaluated every class: %d of %d", got.ClassesEvaluated, got.ClassesPlanned)
	}
}

// largeSmokeGrid is the ≥4096-cell resume smoke grid: 4 events × 64
// umasks × 16 cmasks = 4096 cells. Aliasing is deliberately extreme —
// umask low nibbles only span {0x0, 0x1, 0x3, 0xF} and every cmask above
// 0x00 gates the hand-built corpus (whose totals stay below 1<<12) down
// to the all-zero behaviour — so the scan's distinct LP content stays
// test-sized while the planner still handles thousands of cells and
// hundreds of classes.
func largeSmokeGrid() sweep.Grid {
	g := sweep.Grid{
		Events: []uint8{0x42, 0x43, 0x44, sweep.EventPageWalkerLoads},
		Cmasks: []uint8{
			0x00, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70,
			0x80, 0x90, 0xA0, 0xB0, 0xC0, 0xD0, 0xE0, 0xF0,
		},
	}
	for hi := 0; hi < 16; hi++ {
		for _, lo := range []uint8{0x0, 0x1, 0x3, 0xF} {
			g.Umasks = append(g.Umasks, uint8(hi<<4)|lo)
		}
	}
	return g
}

// TestSweepLargeGridResumeEquivalence is the jobs-layer half of the
// 4096-cell acceptance smoke: a 4096-cell scan is cancelled mid-grid and
// its resumption must be bit-identical to an uninterrupted run.
func TestSweepLargeGridResumeEquivalence(t *testing.T) {
	grid := largeSmokeGrid()
	if grid.Size() < 4096 {
		t.Fatalf("smoke grid has %d cells, need >= 4096", grid.Size())
	}
	eng := engine.New()
	defer eng.Close()
	m := NewManager(Options{})
	defer m.Close()

	spec := testSweepSpec(eng)
	spec.Grid = grid
	ref, err := m.SubmitSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := ref.Result().(*SweepResult)
	if want.GridSize != grid.Size() || len(want.Cells) != grid.Size() {
		t.Fatalf("reference accounting: %+v", want)
	}
	// The planner is what makes this grid tractable at all: thousands of
	// cells, hundreds of classes.
	if want.ClassesPlanned >= grid.Size()/4 {
		t.Fatalf("planner dedup too weak for the smoke: %d classes for %d cells", want.ClassesPlanned, grid.Size())
	}

	// Cancel deep inside the grid, past the first classes' commit wave.
	blocked := make(chan struct{})
	release := make(chan struct{})
	spec2 := testSweepSpec(eng)
	spec2.Grid = grid
	spec2.afterCell = func(i int) {
		if i == 1000 {
			close(blocked)
			<-release
		}
	}
	j, err := m.SubmitSweep(spec2)
	if err != nil {
		t.Fatal(err)
	}
	<-blocked
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait: %v", err)
	}
	cp, _ := j.Checkpoint().([]SweepCell)
	if len(cp) < 1000 || len(cp) >= grid.Size() {
		t.Fatalf("checkpoint size %d", len(cp))
	}

	r, err := m.ResumeSweep(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := r.Result().(*SweepResult)
	if !reflect.DeepEqual(got.Cells, want.Cells) {
		t.Fatal("resumed 4096-cell scan is not bit-identical to the uninterrupted run")
	}
	if got.Consistent != want.Consistent || got.Refuted != want.Refuted {
		t.Fatalf("summaries diverge: %+v vs %+v", got, want)
	}
}
