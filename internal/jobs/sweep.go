package jobs

import (
	"context"
	"fmt"

	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/haswell"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// SweepSpec describes one hidden-event-space sweep job: every cell of a
// raw event×umask×cmask grid is decoded into a synthetic counter
// behaviour and tested against the hypothesis model. See package sweep
// for the decoding rules.
type SweepSpec struct {
	// Grid is the raw config space to scan.
	Grid sweep.Grid
	// Seed drives the decoder and — when Base is nil — the base corpus
	// simulation. The entire sweep is a pure function of (Grid, Seed,
	// Samples, UopsPerSample), which is what makes resume bit-identical.
	Seed int64
	// Samples and UopsPerSample size the simulated base corpus (defaults
	// from sweep.DefaultBaseSpec). Ignored when Base is set.
	Samples       int
	UopsPerSample int
	// Base supplies a pre-built base corpus; nil builds one inside the
	// job (so slow simulation does not block submission).
	Base []*counters.Observation
	// Confidence, Mode and ForceExact tune the evaluation session; zero
	// values mean 99%, correlated noise, two-tier solver.
	Confidence float64
	Mode       stats.NoiseMode
	ForceExact bool
	// Engine hosts the evaluation session. nil gives the job a private
	// engine created at start and closed at completion. The service
	// passes its shared engine so the sweep's cache dedup shows up in
	// GET /stats.
	Engine *engine.Engine

	// afterCell, when set, runs after each cell commits (test hook for
	// deterministic mid-grid cancellation).
	afterCell func(index int)
}

func (spec SweepSpec) validate() error {
	if err := spec.Grid.Validate(); err != nil {
		return err
	}
	if spec.Confidence != 0 && (spec.Confidence <= 0 || spec.Confidence >= 1) {
		return fmt.Errorf("jobs: sweep confidence must be in (0, 1), got %g", spec.Confidence)
	}
	return nil
}

// SweepCell is one grid cell's outcome: the encoding and its per-base-
// observation verdict counts. Cells double as the job's checkpoint, so
// the type must round-trip deterministically.
type SweepCell struct {
	Index      int    `json:"index"`
	Code       string `json:"code"`
	Event      uint8  `json:"event"`
	Umask      uint8  `json:"umask"`
	Cmask      uint8  `json:"cmask"`
	Sig        string `json:"sig"`
	Feasible   int    `json:"feasible"`
	Infeasible int    `json:"infeasible"`
	// Consistent means no base observation refuted the encoding: its
	// behaviour could be the walk_ref aggregate the model expects.
	Consistent bool `json:"consistent"`
}

// SweepEventData is the Data payload of sweep progress events: "corpus"
// when the job builds its base corpus, "restored" when it resumes from a
// checkpoint, and "cell" per committed grid cell.
type SweepEventData struct {
	Cell  *SweepCell `json:"cell,omitempty"`
	Count int        `json:"count,omitempty"`
}

// SweepResult is a sweep job's result payload.
type SweepResult struct {
	GridSize         int `json:"grid_size"`
	BaseObservations int `json:"base_observations"`
	// UniqueBehaviours counts distinct decoded behaviours among the cells
	// this run evaluated — the dedup denominator: every cell beyond it
	// re-used a prior derivation.
	UniqueBehaviours int `json:"unique_behaviours"`
	// Consistent / Refuted partition the grid by verdict.
	Consistent int `json:"consistent"`
	Refuted    int `json:"refuted"`
	// Verdicts counts engine tests across all cells (cache hits included).
	Verdicts int         `json:"verdicts"`
	Cells    []SweepCell `json:"cells"`
}

// SubmitSweep queues a sweep job for spec. Progress is streamed through
// the job's event log (one "cell" event per committed grid cell); the
// committed cell list is checkpointed on every exit path, so ResumeSweep
// can continue a cancelled or failed scan from its last completed cell.
func (m *Manager) SubmitSweep(spec SweepSpec) (*Job, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return m.submit("sweep", sweepRunner(spec, nil), spec, "")
}

// ResumeSweep submits a new job that continues id's scan from its last
// checkpoint: committed cells are restored verbatim and only the
// remaining grid suffix is evaluated. Determinism of the decoder and the
// base corpus makes the finished cell list bit-identical to an
// uninterrupted run. The source job must be terminal (cancel it first
// otherwise) and must have been submitted by SubmitSweep or ResumeSweep.
func (m *Manager) ResumeSweep(id string) (*Job, error) {
	j, ok := m.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	spec, ok := j.Spec().(SweepSpec)
	if !ok {
		return nil, fmt.Errorf("jobs: job %s is not a sweep job", id)
	}
	if state := j.State(); !state.Terminal() {
		return nil, fmt.Errorf("%w: %s is %s; cancel it before resuming", ErrActive, id, state)
	}
	checkpoint, _ := j.Checkpoint().([]SweepCell)
	return m.submit("sweep", sweepRunner(spec, checkpoint), spec, id)
}

// Resume continues a terminal job from its checkpoint, dispatching on the
// kind it was submitted as. It is the generic entry point behind
// POST /v1/jobs/{id}/resume.
func (m *Manager) Resume(id string) (*Job, error) {
	j, ok := m.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	switch j.Spec().(type) {
	case ExploreSpec:
		return m.ResumeExplore(id)
	case SweepSpec:
		return m.ResumeSweep(id)
	}
	return nil, fmt.Errorf("jobs: job %s (kind %q) is not resumable", id, j.Status().Kind)
}

func sweepRunner(spec SweepSpec, restore []SweepCell) Runner {
	return func(ctx context.Context, job *Job) (any, error) {
		eng := spec.Engine
		if eng == nil {
			eng = engine.New()
			defer eng.Close()
		}
		base := spec.Base
		if len(base) == 0 {
			var err error
			base, err = sweep.BuildBaseCorpus(ctx, sweep.BaseSpec{
				Samples:       spec.Samples,
				UopsPerSample: spec.UopsPerSample,
				Seed:          spec.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("jobs: build sweep corpus: %w", err)
			}
			job.Emit("corpus", SweepEventData{Count: len(base)})
		}
		// The hypothesis model is the walker the documented event semantics
		// describe: the discovered feature set minus walk bypassing, so
		// walk_ref must account for every completed walk's loads. Under the
		// full discovered model walk_ref is unbounded below (bypassed walks
		// reference nothing) and every non-negative column is feasible —
		// the hypothesis would be unfalsifiable. Against the no-bypass
		// reference the architectural encoding stays feasible (replays are
		// rare enough to sit inside the confidence region) while almost
		// every other encoding is refuted.
		feats := haswell.DiscoveredModelFeatures()
		feats.WalkBypass = false
		model, err := haswell.BuildModel("sweep/walker-reference", feats, haswell.AnalysisSet())
		if err != nil {
			return nil, fmt.Errorf("jobs: build sweep model: %w", err)
		}
		dec, err := sweep.NewDecoder(spec.Seed, base, model.Set)
		if err != nil {
			return nil, err
		}
		// Non-ephemeral observations on purpose: aliased cells re-present
		// the same observation pointers, so the engine's region cache —
		// and through content hashes the LP and verdict caches — absorb
		// the grid's redundancy. That dedup is the point of the workload.
		sess, err := eng.NewSession(model, engine.Config{
			Confidence: spec.Confidence,
			Mode:       spec.Mode,
			ForceExact: spec.ForceExact,
		})
		if err != nil {
			return nil, err
		}

		cells := spec.Grid.Cells()
		if len(restore) > len(cells) {
			return nil, fmt.Errorf("jobs: sweep checkpoint has %d cells for a %d-cell grid", len(restore), len(cells))
		}
		results := append([]SweepCell(nil), restore...)
		// The checkpoint is the committed cell list. Taken on every exit
		// path — success, error, cancellation, panic — so interrupted
		// scans resume from their last completed cell.
		defer func() {
			job.SetCheckpoint(append([]SweepCell(nil), results...))
		}()
		if len(restore) > 0 {
			job.Emit("restored", SweepEventData{Count: len(restore)})
		}

		for i := len(results); i < len(cells); i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cfg := cells[i]
			dv := dec.Decode(cfg)
			cell := SweepCell{
				Index: i,
				Code:  cfg.String(),
				Event: cfg.Event,
				Umask: cfg.Umask,
				Cmask: cfg.Cmask,
				Sig:   dv.Sig,
			}
			for _, o := range dv.Corpus {
				v, err := sess.Test(ctx, o)
				if err != nil {
					return nil, fmt.Errorf("jobs: sweep cell %s: %w", cfg, err)
				}
				if v.Feasible {
					cell.Feasible++
				} else {
					cell.Infeasible++
				}
			}
			cell.Consistent = cell.Infeasible == 0
			results = append(results, cell)
			c := cell
			job.Emit("cell", SweepEventData{Cell: &c})
			if spec.afterCell != nil {
				spec.afterCell(i)
			}
		}

		res := &SweepResult{
			GridSize:         len(cells),
			BaseObservations: len(base),
			UniqueBehaviours: dec.UniqueBehaviours(),
			Cells:            results,
		}
		for _, c := range results {
			res.Verdicts += c.Feasible + c.Infeasible
			if c.Consistent {
				res.Consistent++
			} else {
				res.Refuted++
			}
		}
		return res, nil
	}
}
