package jobs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/haswell"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// SweepSpec describes one hidden-event-space sweep job: every cell of a
// raw event×umask×cmask grid is decoded into a synthetic counter
// behaviour and tested against the hypothesis model. See package sweep
// for the decoding rules.
type SweepSpec struct {
	// Grid is the raw config space to scan.
	Grid sweep.Grid
	// Seed drives the decoder and — when Base is nil — the base corpus
	// simulation. The entire sweep is a pure function of (Grid, Seed,
	// Samples, UopsPerSample), which is what makes resume bit-identical.
	Seed int64
	// Samples and UopsPerSample size the simulated base corpus (defaults
	// from sweep.DefaultBaseSpec). Ignored when Base is set.
	Samples       int
	UopsPerSample int
	// Base supplies a pre-built base corpus; nil builds one inside the
	// job (so slow simulation does not block submission).
	Base []*counters.Observation
	// Confidence, Mode and ForceExact tune the evaluation session; zero
	// values mean 99%, correlated noise, two-tier solver.
	Confidence float64
	Mode       stats.NoiseMode
	ForceExact bool
	// Workers bounds how many behaviour classes are evaluated
	// concurrently. 0 means the engine's worker count; 1 selects the
	// sequential reference pipeline. Every setting commits cells in grid
	// order, so cells, events and checkpoints are bit-identical across
	// settings (pinned by the differential suite).
	Workers int
	// Engine hosts the evaluation session. nil gives the job a private
	// engine created at start and closed at completion. The service
	// passes its shared engine so the sweep's cache dedup shows up in
	// GET /stats.
	Engine *engine.Engine

	// afterCell, when set, runs after each cell commits (test hook for
	// deterministic mid-grid cancellation).
	afterCell func(index int)
}

func (spec SweepSpec) validate() error {
	if err := spec.Grid.Validate(); err != nil {
		return err
	}
	if spec.Confidence != 0 && (spec.Confidence <= 0 || spec.Confidence >= 1) {
		return fmt.Errorf("jobs: sweep confidence must be in (0, 1), got %g", spec.Confidence)
	}
	if spec.Workers < 0 {
		return fmt.Errorf("jobs: sweep workers must be non-negative, got %d", spec.Workers)
	}
	return nil
}

// SweepCell is one grid cell's outcome: the encoding and its per-base-
// observation verdict counts. Cells double as the job's checkpoint, so
// the type must round-trip deterministically.
type SweepCell struct {
	Index int    `json:"index"`
	Code  string `json:"code"`
	Event uint8  `json:"event"`
	Umask uint8  `json:"umask"`
	Cmask uint8  `json:"cmask"`
	Sig   string `json:"sig"`
	// Class is the cell's behaviour class in the scan's plan (classes are
	// numbered in first-occurrence order across the grid). All cells of a
	// class share one engine evaluation; the class representative is the
	// lowest cell index carrying the number.
	Class      int `json:"class"`
	Feasible   int `json:"feasible"`
	Infeasible int `json:"infeasible"`
	// Consistent means no base observation refuted the encoding: its
	// behaviour could be the walk_ref aggregate the model expects.
	Consistent bool `json:"consistent"`
}

// SweepEventData is the Data payload of sweep progress events: "corpus"
// when the job builds its base corpus, "planned" once the behaviour-class
// plan is fixed (Count cells, Classes distinct behaviours, Aliased cells
// that will inherit a verdict), "restored" when the job resumes from a
// checkpoint, and "cell" per committed grid cell.
type SweepEventData struct {
	Cell    *SweepCell `json:"cell,omitempty"`
	Count   int        `json:"count,omitempty"`
	Classes int        `json:"classes,omitempty"`
	Aliased int        `json:"aliased,omitempty"`
}

// SweepResult is a sweep job's result payload.
type SweepResult struct {
	GridSize         int `json:"grid_size"`
	BaseObservations int `json:"base_observations"`
	// UniqueBehaviours counts the distinct behaviour classes the planner
	// found across the grid — the dedup denominator: every cell beyond it
	// inherited a class verdict instead of costing an engine evaluation.
	UniqueBehaviours int `json:"unique_behaviours"`
	// ClassesPlanned echoes UniqueBehaviours; ClassesEvaluated counts the
	// classes this run actually evaluated on the engine (a resumed run
	// inherits restored classes' verdicts); CellsAliased is the grid size
	// minus the plan size.
	ClassesPlanned   int `json:"classes_planned"`
	ClassesEvaluated int `json:"classes_evaluated"`
	CellsAliased     int `json:"cells_aliased"`
	// Consistent / Refuted partition the grid by verdict.
	Consistent int `json:"consistent"`
	Refuted    int `json:"refuted"`
	// Verdicts counts per-observation verdicts attributed across all cells
	// (aliased cells count their inherited verdicts).
	Verdicts int         `json:"verdicts"`
	Cells    []SweepCell `json:"cells"`
}

// sweepStats aggregates dedup telemetry across a manager's sweep jobs.
type sweepStats struct {
	jobs             atomic.Uint64
	cellsPlanned     atomic.Uint64
	classesPlanned   atomic.Uint64
	classesEvaluated atomic.Uint64
	cellsCommitted   atomic.Uint64
	cellsRestored    atomic.Uint64
}

// SweepCounts is a JSON-ready snapshot of a manager's sweep dedup
// telemetry (GET /stats serves it under "sweep").
type SweepCounts struct {
	// Jobs counts sweep runs started (resumes included).
	Jobs uint64 `json:"jobs"`
	// CellsPlanned / ClassesPlanned accumulate plan sizes across runs.
	CellsPlanned   uint64 `json:"cells_planned"`
	ClassesPlanned uint64 `json:"classes_planned"`
	// ClassesEvaluated counts engine evaluations (one per class actually
	// solved); CellsCommitted counts cells committed fresh (restored
	// checkpoint prefixes excluded, reported as CellsRestored).
	ClassesEvaluated uint64 `json:"classes_evaluated"`
	CellsCommitted   uint64 `json:"cells_committed"`
	CellsRestored    uint64 `json:"cells_restored"`
	// EvaluationsAvoided is the dedup ratio: the fraction of freshly
	// committed cells whose verdict was copied from an already-evaluated
	// behaviour class instead of costing an engine evaluation.
	EvaluationsAvoided float64 `json:"evaluations_avoided"`
}

// SweepStats snapshots the manager's accumulated sweep dedup telemetry.
func (m *Manager) SweepStats() SweepCounts {
	c := SweepCounts{
		Jobs:             m.sweep.jobs.Load(),
		CellsPlanned:     m.sweep.cellsPlanned.Load(),
		ClassesPlanned:   m.sweep.classesPlanned.Load(),
		ClassesEvaluated: m.sweep.classesEvaluated.Load(),
		CellsCommitted:   m.sweep.cellsCommitted.Load(),
		CellsRestored:    m.sweep.cellsRestored.Load(),
	}
	if c.CellsCommitted > 0 {
		c.EvaluationsAvoided = 1 - float64(c.ClassesEvaluated)/float64(c.CellsCommitted)
		if c.EvaluationsAvoided < 0 {
			c.EvaluationsAvoided = 0
		}
	}
	return c
}

// SubmitSweep queues a sweep job for spec. Progress is streamed through
// the job's event log (one "cell" event per committed grid cell); the
// committed cell list is checkpointed on every exit path, so ResumeSweep
// can continue a cancelled or failed scan from its last completed cell.
func (m *Manager) SubmitSweep(spec SweepSpec) (*Job, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return m.submit("sweep", m.sweepRunner(spec, nil), spec, "")
}

// ResumeSweep submits a new job that continues id's scan from its last
// checkpoint: committed cells are restored verbatim and only the
// remaining grid suffix is evaluated. Determinism of the decoder and the
// base corpus makes the finished cell list bit-identical to an
// uninterrupted run. The source job must be terminal (cancel it first
// otherwise) and must have been submitted by SubmitSweep or ResumeSweep.
func (m *Manager) ResumeSweep(id string) (*Job, error) {
	j, ok := m.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	spec, ok := j.Spec().(SweepSpec)
	if !ok {
		return nil, fmt.Errorf("jobs: job %s is not a sweep job", id)
	}
	if state := j.State(); !state.Terminal() {
		return nil, fmt.Errorf("%w: %s is %s; cancel it before resuming", ErrActive, id, state)
	}
	checkpoint, _ := j.Checkpoint().([]SweepCell)
	return m.submit("sweep", m.sweepRunner(spec, checkpoint), spec, id)
}

// Resume continues a terminal job from its checkpoint, dispatching on the
// kind it was submitted as. It is the generic entry point behind
// POST /v1/jobs/{id}/resume.
func (m *Manager) Resume(id string) (*Job, error) {
	j, ok := m.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	switch j.Spec().(type) {
	case ExploreSpec:
		return m.ResumeExplore(id)
	case SweepSpec:
		return m.ResumeSweep(id)
	}
	return nil, fmt.Errorf("jobs: job %s (kind %q) is not resumable", id, j.Status().Kind)
}

// classVerdict is one behaviour class's engine outcome, shared by every
// cell of the class.
type classVerdict struct {
	feasible   int
	infeasible int
}

// sweepRunner is the batched three-stage sweep pipeline:
//
//  1. Plan — group grid cells into behaviour classes by decoder
//     signature before any solving.
//  2. Evaluate — fan class representatives out onto the engine's worker
//     pool (bounded by spec.Workers), one EvaluateBatch per class over
//     its pooled derived corpus.
//  3. Commit — walk cells in strict grid order, blocking on each cell's
//     class verdict and copying it onto the cell; aliased cells never
//     touch the engine.
//
// Because commit order is the grid order regardless of evaluation
// interleaving, the event log, checkpoints and resume behaviour are
// bit-identical to the sequential scan (Workers: 1), which the
// differential suite pins.
func (m *Manager) sweepRunner(spec SweepSpec, restore []SweepCell) Runner {
	return func(ctx context.Context, job *Job) (any, error) {
		m.sweep.jobs.Add(1)
		eng := spec.Engine
		if eng == nil {
			eng = engine.New()
			defer eng.Close()
		}
		base := spec.Base
		if len(base) == 0 {
			var err error
			base, err = sweep.BuildBaseCorpus(ctx, sweep.BaseSpec{
				Samples:       spec.Samples,
				UopsPerSample: spec.UopsPerSample,
				Seed:          spec.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("jobs: build sweep corpus: %w", err)
			}
			job.Emit("corpus", SweepEventData{Count: len(base)})
		}
		// The hypothesis model is the walker the documented event semantics
		// describe: the discovered feature set minus walk bypassing, so
		// walk_ref must account for every completed walk's loads. Under the
		// full discovered model walk_ref is unbounded below (bypassed walks
		// reference nothing) and every non-negative column is feasible —
		// the hypothesis would be unfalsifiable. Against the no-bypass
		// reference the architectural encoding stays feasible (replays are
		// rare enough to sit inside the confidence region) while almost
		// every other encoding is refuted.
		feats := haswell.DiscoveredModelFeatures()
		feats.WalkBypass = false
		model, err := haswell.BuildModel("sweep/walker-reference", feats, haswell.AnalysisSet())
		if err != nil {
			return nil, fmt.Errorf("jobs: build sweep model: %w", err)
		}
		dec, err := sweep.NewDecoder(spec.Seed, base, model.Set)
		if err != nil {
			return nil, err
		}
		// Ephemeral observations on purpose: the planner already collapsed
		// aliases, so each (class, observation) pair reaches the engine
		// exactly once per scan — pointer-keyed region caching could never
		// hit within the scan, and at 100×-catalogue grid sizes it would
		// only evict the service's real working set (it would also read
		// stale regions off the pooled DecodeClass buffers). The
		// content-addressed verdict cache still dedups identical LP content
		// across scans and processes.
		sess, err := eng.NewSession(model, engine.Config{
			Confidence:            spec.Confidence,
			Mode:                  spec.Mode,
			ForceExact:            spec.ForceExact,
			EphemeralObservations: true,
		})
		if err != nil {
			return nil, err
		}

		cells := spec.Grid.Cells()
		if len(restore) > len(cells) {
			return nil, fmt.Errorf("jobs: sweep checkpoint has %d cells for a %d-cell grid", len(restore), len(cells))
		}

		// Stage 1: plan. Pure signature computation, no solving.
		plan := dec.Plan(cells)
		classOf := make([]int, len(cells))
		for k, cl := range plan {
			for _, i := range cl.Cells {
				classOf[i] = k
			}
		}
		m.sweep.cellsPlanned.Add(uint64(len(cells)))
		m.sweep.classesPlanned.Add(uint64(len(plan)))
		job.Emit("planned", SweepEventData{
			Count:   len(cells),
			Classes: len(plan),
			Aliased: len(cells) - len(plan),
		})

		// Restored cells seed their class verdicts: a committed cell's
		// counts are by construction its whole class's outcome, so classes
		// any restored cell belongs to need no re-evaluation — their
		// remaining aliases inherit the checkpointed verdict.
		verdicts := make([]*classVerdict, len(plan))
		for _, c := range restore {
			if c.Index < 0 || c.Index >= len(cells) {
				return nil, fmt.Errorf("jobs: sweep checkpoint cell index %d out of range", c.Index)
			}
			if verdicts[classOf[c.Index]] == nil {
				verdicts[classOf[c.Index]] = &classVerdict{feasible: c.Feasible, infeasible: c.Infeasible}
			}
		}
		results := append([]SweepCell(nil), restore...)
		// The checkpoint is the committed cell list. Taken on every exit
		// path — success, error, cancellation, panic — so interrupted
		// scans resume from their last completed cell.
		defer func() {
			job.SetCheckpoint(append([]SweepCell(nil), results...))
		}()
		if len(restore) > 0 {
			m.sweep.cellsRestored.Add(uint64(len(restore)))
			job.Emit("restored", SweepEventData{Count: len(restore)})
		}

		// Classes still needing an engine evaluation, in representative
		// (ascending cell) order. A class absent from the checkpoint has
		// every cell in the unscanned suffix.
		var todo []int
		for k := range plan {
			if verdicts[k] == nil {
				todo = append(todo, k)
			}
		}

		var evaluated atomic.Int64
		evalClass := func(ctx context.Context, k int) (classVerdict, error) {
			cfg := cells[plan[k].Cells[0]]
			dv := dec.DecodeClass(cfg)
			defer dec.Release(dv)
			f, inf, err := sess.EvaluateBatch(ctx, dv.Corpus)
			if err != nil {
				return classVerdict{}, fmt.Errorf("jobs: sweep class %s (%s): %w", dv.Sig, cfg, err)
			}
			evaluated.Add(1)
			m.sweep.classesEvaluated.Add(1)
			return classVerdict{feasible: f, infeasible: inf}, nil
		}
		commit := func(i int) {
			cfg := cells[i]
			k := classOf[i]
			v := verdicts[k]
			cell := SweepCell{
				Index:      i,
				Code:       cfg.String(),
				Event:      cfg.Event,
				Umask:      cfg.Umask,
				Cmask:      cfg.Cmask,
				Sig:        plan[k].Sig,
				Class:      k,
				Feasible:   v.feasible,
				Infeasible: v.infeasible,
				Consistent: v.infeasible == 0,
			}
			results = append(results, cell)
			m.sweep.cellsCommitted.Add(1)
			c := cell
			job.Emit("cell", SweepEventData{Cell: &c})
			// Checkpoint after every committed cell so the durable journal
			// can resume a kill -9'd scan from here. The capped three-index
			// slice is O(1): committed prefixes are immutable, and later
			// appends beyond len can never show through the view. The
			// journal coalesces the burst; only the latest must land.
			job.SetCheckpoint(results[:len(results):len(results)])
			if spec.afterCell != nil {
				spec.afterCell(i)
			}
		}

		workers := spec.Workers
		if workers <= 0 {
			workers = eng.Workers()
		}
		if workers > 1 && len(todo) > 1 {
			// Stages 2+3 overlapped: class evaluations run concurrently
			// (bounded by workers); the commit loop below consumes their
			// verdicts strictly in grid order, exactly like explore's staged
			// prefetch commits frontier nodes in sequential order.
			fctx, fcancel := context.WithCancel(ctx)
			defer fcancel()
			type classResult struct {
				class int
				v     classVerdict
				err   error
			}
			resCh := make(chan classResult, len(todo))
			sem := make(chan struct{}, workers)
			var wg sync.WaitGroup
			// Drained before the deferred eng.Close (LIFO): fcancel unblocks
			// any evaluation still in flight.
			defer wg.Wait()
			for _, k := range todo {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					select {
					case sem <- struct{}{}:
					case <-fctx.Done():
						return
					}
					defer func() { <-sem }()
					v, err := func() (v classVerdict, err error) {
						// Contain panics like the job harness would: a dying
						// class becomes an error verdict instead of tearing
						// down the process from an unrecovered goroutine.
						defer func() {
							if p := recover(); p != nil {
								err = fmt.Errorf("jobs: sweep class %d panicked: %v", k, p)
							}
						}()
						return evalClass(fctx, k)
					}()
					resCh <- classResult{class: k, v: v, err: err}
				}(k)
			}
			for i := len(restore); i < len(cells); i++ {
				for verdicts[classOf[i]] == nil {
					select {
					case r := <-resCh:
						if r.err != nil {
							if ctx.Err() != nil {
								// The error is an echo of cancellation.
								return nil, ctx.Err()
							}
							return nil, r.err
						}
						v := r.v
						verdicts[r.class] = &v
					case <-ctx.Done():
						return nil, ctx.Err()
					}
				}
				commit(i)
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
		} else {
			// Sequential reference pipeline: classes are evaluated lazily at
			// first committed use, so cancellation points and engine call
			// order match the pre-batched serial scan.
			for i := len(restore); i < len(cells); i++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				k := classOf[i]
				if verdicts[k] == nil {
					v, err := evalClass(ctx, k)
					if err != nil {
						return nil, err
					}
					verdicts[k] = &v
				}
				commit(i)
			}
		}

		res := &SweepResult{
			GridSize:         len(cells),
			BaseObservations: len(base),
			UniqueBehaviours: len(plan),
			ClassesPlanned:   len(plan),
			ClassesEvaluated: int(evaluated.Load()),
			CellsAliased:     len(cells) - len(plan),
			Cells:            results,
		}
		for _, c := range results {
			res.Verdicts += c.Feasible + c.Infeasible
			if c.Consistent {
				res.Consistent++
			} else {
				res.Refuted++
			}
		}
		return res, nil
	}
}
