package jobs

import (
	"context"
	"fmt"

	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/explore"
	"repro/internal/stats"
)

// ExploreSpec describes one guided-exploration job: the paper's §5 /
// Appendix C discovery-and-elimination search, run asynchronously.
type ExploreSpec struct {
	// Builder instantiates a model per feature combination (for example
	// explore.TemplateBuilder's output, or a haswell.BuildModel closure).
	Builder explore.Builder
	// Corpus is evaluated by every search node. When nil, CorpusFunc
	// supplies it at job start (inside the job, so slow corpus generation
	// — simulated hardware runs — does not block submission).
	Corpus     []*counters.Observation
	CorpusFunc func(ctx context.Context) ([]*counters.Observation, error)
	// Candidates is the feature universe the search explores; Initial
	// seeds the starting model.
	Candidates []string
	Initial    []string
	// Confidence, Mode, IdentifyViolations and ForceExact tune evaluation;
	// zero values mean the explore package defaults (99%, correlated, off,
	// two-tier solver).
	Confidence         float64
	Mode               stats.NoiseMode
	IdentifyViolations bool
	ForceExact         bool
	// MaxDiscoverySteps bounds the discovery phase (0 = explore default).
	MaxDiscoverySteps int
	// Workers bounds concurrent frontier evaluation (0 = engine workers,
	// 1 = the sequential reference search). Results are identical either
	// way.
	Workers int
	// SkipElimination stops after the discovery phase.
	SkipElimination bool
	// Engine hosts the evaluation sessions. nil gives the job a private
	// engine created at start and closed at completion, so the job's
	// region/LP caches — keyed by its corpus pointers — die with it
	// instead of pinning the corpus in a shared engine for the life of
	// the process.
	Engine *engine.Engine
	// Wire is the declarative description this spec was built from
	// (ExploreWire.Build sets it). It is what the durable journal records;
	// a hand-assembled spec without it is not journal-recoverable.
	Wire *ExploreWire
}

func (spec ExploreSpec) validate() error {
	if spec.Builder == nil {
		return fmt.Errorf("jobs: explore spec needs a Builder")
	}
	if len(spec.Corpus) == 0 && spec.CorpusFunc == nil {
		return fmt.Errorf("jobs: explore spec needs a Corpus or CorpusFunc")
	}
	if len(spec.Candidates) == 0 {
		return fmt.Errorf("jobs: explore spec needs candidate features")
	}
	return nil
}

// NodeJSON is the wire form of one search node, used in progress events
// and results.
type NodeJSON struct {
	Features    []string       `json:"features"`
	Key         string         `json:"key"`
	Infeasible  int            `json:"infeasible"`
	Total       int            `json:"total"`
	Feasible    bool           `json:"feasible"`
	Op          string         `json:"op,omitempty"`
	DerivedFrom string         `json:"derived_from,omitempty"`
	Violated    map[string]int `json:"violated,omitempty"`
}

func nodeJSON(n *explore.Node) NodeJSON {
	names := n.Features.Names()
	if names == nil {
		names = []string{} // the initial (empty) set is [], not null, on the wire
	}
	return NodeJSON{
		Features:    names,
		Key:         n.Features.Key(),
		Infeasible:  n.Infeasible,
		Total:       n.Total,
		Feasible:    n.Feasible(),
		Op:          string(n.Op),
		DerivedFrom: n.DerivedFrom,
		Violated:    n.Violated,
	}
}

// ExploreEventData is the Data payload of exploration progress events
// (event kinds are the explore.EventKind strings, plus "corpus" when the
// job builds its corpus and "restored" when it resumes from a
// checkpoint). Step is a pointer so the first discovery step — step 0 —
// still appears on the wire.
type ExploreEventData struct {
	Node    *NodeJSON `json:"node,omitempty"`
	Feature string    `json:"feature,omitempty"`
	Step    *int      `json:"step,omitempty"`
	Count   int       `json:"count,omitempty"`
}

// ExploreResult is an exploration job's result payload.
type ExploreResult struct {
	// Final is the discovery phase's last node; Converged reports whether
	// it is feasible.
	Final     NodeJSON `json:"final"`
	Converged bool     `json:"converged"`
	// Minimal lists the elimination phase's minimal feasible models.
	Minimal []NodeJSON `json:"minimal,omitempty"`
	// Required and Optional classify the candidate universe (Figure 7):
	// features in every feasible model, and features the data cannot
	// resolve.
	Required []string `json:"required,omitempty"`
	Optional []string `json:"optional,omitempty"`
	// NodesEvaluated counts the search graph (restored nodes included);
	// Graph is the Figure 10-style text rendering.
	NodesEvaluated int    `json:"nodes_evaluated"`
	Graph          string `json:"graph"`
}

// SubmitExplore queues an exploration job for spec. Progress is streamed
// through the job's event log; the committed search graph is checkpointed
// on every exit path, so ResumeExplore can continue a cancelled, failed or
// crashed search from its last completed frontier.
func (m *Manager) SubmitExplore(spec ExploreSpec) (*Job, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return m.submit("explore", exploreRunner(spec, nil), spec, "")
}

// ResumeExplore submits a new job that continues id's search from its last
// checkpoint: already-evaluated nodes are restored into the new search, so
// only the unexplored remainder costs anything, and the finished graph is
// bit-identical to an uninterrupted run. The source job must be terminal
// (cancel it first otherwise) and must have been submitted by
// SubmitExplore or ResumeExplore.
func (m *Manager) ResumeExplore(id string) (*Job, error) {
	j, ok := m.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	spec, ok := j.Spec().(ExploreSpec)
	if !ok {
		return nil, fmt.Errorf("jobs: job %s is not an exploration job", id)
	}
	if state := j.State(); !state.Terminal() {
		return nil, fmt.Errorf("%w: %s is %s; cancel it before resuming", ErrActive, id, state)
	}
	checkpoint, _ := j.Checkpoint().([]*explore.Node)
	return m.submit("explore", exploreRunner(spec, checkpoint), spec, id)
}

func exploreRunner(spec ExploreSpec, restore []*explore.Node) Runner {
	return func(ctx context.Context, job *Job) (any, error) {
		eng := spec.Engine
		if eng == nil {
			eng = engine.New()
			defer eng.Close()
		}
		corpus := spec.Corpus
		if len(corpus) == 0 {
			// validate() guarantees CorpusFunc is set when Corpus is empty
			// (nil or a decoded-empty slice alike).
			var err error
			if corpus, err = spec.CorpusFunc(ctx); err != nil {
				return nil, fmt.Errorf("jobs: build corpus: %w", err)
			}
			job.Emit("corpus", ExploreEventData{Count: len(corpus)})
		}
		if len(corpus) == 0 {
			// A zero-observation search would report every model vacuously
			// feasible and call it convergence.
			return nil, fmt.Errorf("jobs: exploration corpus is empty")
		}
		s := explore.NewSearch(spec.Builder, corpus)
		s.Engine = eng
		s.Ctx = ctx
		s.Workers = spec.Workers
		s.Mode = spec.Mode
		s.IdentifyViolations = spec.IdentifyViolations
		s.ForceExact = spec.ForceExact
		if spec.Confidence != 0 {
			s.Confidence = spec.Confidence
		}
		if spec.MaxDiscoverySteps > 0 {
			s.MaxDiscoverySteps = spec.MaxDiscoverySteps
		}

		// Forward search progress into the job's event log from a side
		// goroutine so the search never blocks on a slow subscriber. The
		// same goroutine accumulates committed nodes and checkpoints after
		// each one (restored prefix included), so the durable journal
		// tracks the frontier as it grows — a kill -9 between exit-path
		// checkpoints still resumes from the last committed node. Node
		// events arrive in sequential commit order regardless of Workers,
		// so the incremental checkpoints match s.Nodes() prefixes exactly.
		events := make(chan explore.Event, 16)
		s.Events = events
		drained := make(chan struct{})
		committed := append([]*explore.Node(nil), restore...)
		go func() {
			defer close(drained)
			for ev := range events {
				data := ExploreEventData{Feature: ev.Feature}
				if ev.Kind == explore.EventFeatureAdopted {
					step := ev.Step
					data.Step = &step
				}
				if ev.Node != nil {
					n := nodeJSON(ev.Node)
					data.Node = &n
				}
				job.Emit(string(ev.Kind), data)
				if ev.Kind == explore.EventNodeEvaluated && ev.Node != nil {
					committed = append(committed, ev.Node)
					job.SetCheckpoint(committed[:len(committed):len(committed)])
				}
			}
		}()
		// The checkpoint is the committed search graph. Taken on every exit
		// path — success, error, cancellation, panic — so interrupted jobs
		// resume from their last completed frontier.
		defer func() {
			close(events)
			<-drained
			job.SetCheckpoint(s.Nodes())
		}()

		s.Restore(restore)
		if len(restore) > 0 {
			job.Emit("restored", ExploreEventData{Count: len(restore)})
		}

		final, err := s.Discover(explore.NewFeatureSet(spec.Initial...), spec.Candidates)
		if err != nil {
			return nil, err
		}
		res := &ExploreResult{Converged: final.Feasible()}
		if final.Feasible() && !spec.SkipElimination {
			minimal, err := s.Eliminate(final, spec.Candidates)
			if err != nil {
				return nil, err
			}
			for _, n := range minimal {
				res.Minimal = append(res.Minimal, nodeJSON(n))
			}
		}
		c := s.Classify(spec.Candidates)
		res.Required, res.Optional = c.Required, c.Optional
		res.Final = nodeJSON(final)
		res.NodesEvaluated = len(s.Nodes())
		res.Graph = s.GraphReport()
		return res, nil
	}
}
