package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// blockingRunner returns a runner that signals started, then parks until
// release closes or its context ends.
func blockingRunner(started chan<- string, release <-chan struct{}) Runner {
	return func(ctx context.Context, job *Job) (any, error) {
		if started != nil {
			started <- job.ID
		}
		select {
		case <-release:
			return "ok", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	j, err := m.Submit("test", func(ctx context.Context, job *Job) (any, error) {
		job.Emit("progress", map[string]int{"step": 1})
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := j.Status()
	if st.State != StateDone || st.Result != 42 || st.Events != 2 {
		t.Fatalf("status: %+v", st)
	}
	if st.Started == nil || st.Finished == nil {
		t.Fatalf("timestamps missing: %+v", st)
	}
}

// TestBoundedConcurrency pins the job-slot semantics: with one slot, a
// second submission stays queued until the first finishes.
func TestBoundedConcurrency(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1})
	defer m.Close()
	started := make(chan string, 2)
	release := make(chan struct{})
	j1, _ := m.Submit("test", blockingRunner(started, release))
	j2, _ := m.Submit("test", blockingRunner(started, release))
	if id := <-started; id != j1.ID {
		t.Fatalf("first started: %s", id)
	}
	// j2 must hold at queued: no second start signal while j1 runs.
	select {
	case id := <-started:
		t.Fatalf("job %s started beyond the slot bound", id)
	case <-time.After(50 * time.Millisecond):
	}
	if st := j2.State(); st != StateQueued {
		t.Fatalf("second job state: %s", st)
	}
	close(release)
	if err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if id := <-started; id != j2.ID {
		t.Fatalf("second started: %s", id)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1})
	defer m.Close()
	release := make(chan struct{})
	defer close(release)
	started := make(chan string, 1)
	m.Submit("test", blockingRunner(started, release))
	<-started
	j2, _ := m.Submit("test", blockingRunner(nil, release))
	if err := m.Cancel(j2.ID); err != nil {
		t.Fatal(err)
	}
	if err := j2.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait: %v", err)
	}
	if st := j2.State(); st != StateCancelled {
		t.Fatalf("state: %s", st)
	}
	if st := j2.Status(); st.Started != nil {
		t.Fatal("cancelled-while-queued job should never start")
	}
}

func TestCancelRunningJob(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	started := make(chan string, 1)
	j, _ := m.Submit("test", blockingRunner(started, nil))
	<-started
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait: %v", err)
	}
	if st := j.State(); st != StateCancelled {
		t.Fatalf("state: %s", st)
	}
}

func TestPanickingRunnerFailsJob(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	j, _ := m.Submit("test", func(ctx context.Context, job *Job) (any, error) {
		job.SetCheckpoint("salvaged")
		panic("boom")
	})
	j.Wait(context.Background())
	st := j.Status()
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("status: %+v", st)
	}
	if cp, _ := j.Checkpoint().(string); cp != "salvaged" {
		t.Fatalf("checkpoint lost across panic: %v", j.Checkpoint())
	}
}

func TestEventsReplayAndLive(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	gate := make(chan struct{})
	j, _ := m.Submit("test", func(ctx context.Context, job *Job) (any, error) {
		job.Emit("early", nil)
		<-gate
		job.Emit("late", nil)
		return nil, nil
	})
	// Subscribe after the first event: it must be replayed, then the live
	// events and the terminal marker delivered, then the channel closed.
	var kinds []string
	ch := j.Events(context.Background(), 0)
	if ev := <-ch; ev.Kind != "early" || ev.Seq != 0 {
		t.Fatalf("first event: %+v", ev)
	}
	close(gate)
	for ev := range ch {
		kinds = append(kinds, ev.Kind)
	}
	if fmt.Sprint(kinds) != "[late done]" {
		t.Fatalf("events after replay: %v", kinds)
	}
	// A from= subscription skips the replayed prefix.
	var tail []string
	for ev := range j.Events(context.Background(), 2) {
		tail = append(tail, ev.Kind)
	}
	if fmt.Sprint(tail) != "[done]" {
		t.Fatalf("from=2 events: %v", tail)
	}
}

func TestEventsSubscriberCancel(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	started := make(chan string, 1)
	release := make(chan struct{})
	j, _ := m.Submit("test", blockingRunner(started, release))
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	ch := j.Events(ctx, 0)
	cancel()
	for range ch {
	}
	// The subscription must close promptly even though the job runs on.
	if st := j.State(); st != StateRunning {
		t.Fatalf("job state changed by subscriber cancel: %s", st)
	}
	close(release)
	j.Wait(context.Background())
}

// TestRetentionRing pins the retained-result ring: past MaxRetained, the
// oldest finished job is evicted and becomes unknown.
func TestRetentionRing(t *testing.T) {
	m := NewManager(Options{MaxRetained: 2})
	defer m.Close()
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := m.Submit("test", func(ctx context.Context, job *Job) (any, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		j.Wait(context.Background())
		ids = append(ids, j.ID)
	}
	list := m.List()
	if len(list) != 2 {
		t.Fatalf("retained %d jobs, want 2: %+v", len(list), list)
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Fatal("oldest job should be evicted")
	}
	if _, ok := m.Get(ids[3]); !ok {
		t.Fatal("newest job should be retained")
	}
}

// TestRetentionTTL expires finished jobs by age using the clock hook.
func TestRetentionTTL(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	m := NewManager(Options{RetainFor: time.Minute, now: clock})
	defer m.Close()
	j, _ := m.Submit("test", func(ctx context.Context, job *Job) (any, error) { return nil, nil })
	j.Wait(context.Background())
	if _, ok := m.Get(j.ID); !ok {
		t.Fatal("fresh job should be retained")
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if _, ok := m.Get(j.ID); ok {
		t.Fatal("expired job should be dropped")
	}
}

func TestRemove(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	started := make(chan string, 1)
	release := make(chan struct{})
	j, _ := m.Submit("test", blockingRunner(started, release))
	<-started
	if err := m.Remove(j.ID); !errors.Is(err, ErrActive) {
		t.Fatalf("removing a running job: %v", err)
	}
	close(release)
	j.Wait(context.Background())
	if err := m.Remove(j.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(j.ID); ok {
		t.Fatal("removed job still visible")
	}
	if err := m.Remove(j.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestCloseCancelsEverything(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1})
	started := make(chan string, 1)
	j1, _ := m.Submit("test", blockingRunner(started, nil))
	j2, _ := m.Submit("test", blockingRunner(nil, nil))
	<-started
	m.Close()
	if st := j1.State(); st != StateCancelled {
		t.Fatalf("running job after close: %s", st)
	}
	if st := j2.State(); st != StateCancelled {
		t.Fatalf("queued job after close: %s", st)
	}
	if _, err := m.Submit("test", blockingRunner(nil, nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

// TestQueueBackpressure pins the submission bound: MaxQueued waiting jobs
// reject further submissions with ErrQueueFull instead of pinning their
// payloads without limit.
func TestQueueBackpressure(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1, MaxQueued: 2})
	defer m.Close()
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	m.Submit("test", blockingRunner(started, release))
	<-started
	for i := 0; i < 2; i++ {
		if _, err := m.Submit("test", blockingRunner(nil, release)); err != nil {
			t.Fatalf("queued submission %d: %v", i, err)
		}
	}
	if _, err := m.Submit("test", blockingRunner(nil, release)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-queue submission: %v", err)
	}
}

func TestUnknownJobErrors(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	if err := m.Cancel("j999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel: %v", err)
	}
	if _, err := m.ResumeExplore("j999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("resume: %v", err)
	}
}
