package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/explore"
)

// The test feature space is the Figure 6 example widened with inert
// red-herring features, so frontiers are wide enough for cancellation to
// land mid-frontier.
func testBuilder(extra int) explore.Builder {
	return func(fs explore.FeatureSet) (*core.Model, error) {
		var b strings.Builder
		b.WriteString("do LookupPde$;\n")
		b.WriteString("switch Pde$Status {\n Hit => pass;\n Miss => {\n incr load.pde$_miss;\n")
		if fs["abort"] {
			b.WriteString(" switch Abort { Yes => done; No => pass; };\n")
		}
		b.WriteString(" };\n};\n")
		b.WriteString("incr load.causes_walk;\n")
		for i := 0; i < extra; i++ {
			if fs[fmt.Sprintf("redherring%d", i)] {
				fmt.Fprintf(&b, "switch S%d { Yes => incr load.causes_walk; No => pass; };\n", i)
			}
		}
		b.WriteString("done;\n")
		set := counters.NewSet("load.causes_walk", "load.pde$_miss")
		return core.ModelFromDSL("feat:"+fs.Key(), b.String(), set)
	}
}

func testUniverse(extra int) []string {
	u := []string{"abort"}
	for i := 0; i < extra; i++ {
		u = append(u, fmt.Sprintf("redherring%d", i))
	}
	return u
}

func testCorpus() []*counters.Observation {
	set := counters.NewSet("load.causes_walk", "load.pde$_miss")
	mk := func(label string, cw, pm float64, seed int64) *counters.Observation {
		o := counters.NewObservation(label, set)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			o.Append([]float64{cw + rng.NormFloat64(), pm + rng.NormFloat64()})
		}
		return o
	}
	return []*counters.Observation{
		mk("benign", 500, 300, 1),
		mk("anomalous", 200, 500, 2),
	}
}

func testSpec(extra int) ExploreSpec {
	return ExploreSpec{
		Builder:    testBuilder(extra),
		Corpus:     testCorpus(),
		Candidates: testUniverse(extra),
	}
}

func TestExploreJobRunsToCompletion(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	j, err := m.SubmitExplore(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, ok := j.Result().(*ExploreResult)
	if !ok {
		t.Fatalf("result type %T", j.Result())
	}
	if !res.Converged || res.Final.Key != "abort" {
		t.Fatalf("result: %+v", res)
	}
	if len(res.Minimal) != 1 || res.Minimal[0].Key != "abort" {
		t.Fatalf("minimal: %+v", res.Minimal)
	}
	if len(res.Required) != 1 || res.Required[0] != "abort" {
		t.Fatalf("required: %v", res.Required)
	}
	if res.NodesEvaluated == 0 || res.Graph == "" {
		t.Fatalf("graph missing: %+v", res)
	}
	// The event log narrates the search: nodes, the adoption, the
	// terminal marker.
	kinds := map[string]int{}
	for ev := range j.Events(context.Background(), 0) {
		kinds[ev.Kind]++
	}
	if kinds[string(explore.EventNodeEvaluated)] != res.NodesEvaluated {
		t.Fatalf("node events %d, nodes %d", kinds[string(explore.EventNodeEvaluated)], res.NodesEvaluated)
	}
	if kinds[string(explore.EventFeatureAdopted)] == 0 || kinds["done"] != 1 {
		t.Fatalf("event kinds: %v", kinds)
	}
}

func TestExploreSpecValidation(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	bad := []ExploreSpec{
		{},
		{Builder: testBuilder(0)},
		{Builder: testBuilder(0), Corpus: testCorpus()},
		{Corpus: testCorpus(), Candidates: []string{"abort"}},
	}
	for i, spec := range bad {
		if _, err := m.SubmitExplore(spec); err == nil {
			t.Errorf("spec %d should be rejected", i)
		}
	}
}

// gatedSpec wraps testSpec so every non-initial model build blocks until
// release closes, signalling blocked on the first one. Cancelling between
// blocked and release is therefore guaranteed to land mid-frontier: the
// initial node is committed, the first discovery frontier is in flight,
// and nothing else has been evaluated.
func gatedSpec(extra int) (spec ExploreSpec, blocked chan struct{}, release chan struct{}) {
	spec = testSpec(extra)
	inner := spec.Builder
	blocked = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	spec.Builder = func(fs explore.FeatureSet) (*core.Model, error) {
		if len(fs) > 0 {
			once.Do(func() { close(blocked) })
			<-release
		}
		return inner(fs)
	}
	return spec, blocked, release
}

// settleGoroutines waits for the goroutine count to drop back to baseline,
// in the style of the engine's leak regression suite.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d at baseline, %d now\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// cancelMidFrontier drives a gated job to its deterministic mid-frontier
// point, cancels it there, and waits for the cancellation to finish.
func cancelMidFrontier(t *testing.T, m *Manager, j *Job, blocked <-chan struct{}, release chan struct{}) {
	t.Helper()
	select {
	case <-blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("frontier never reached the gated builder")
	}
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait after cancel: %v", err)
	}
	if st := j.State(); st != StateCancelled {
		t.Fatalf("state: %s", st)
	}
}

// TestExploreJobCancelMidFrontierLeaksNothing is the jobs counterpart of
// the engine's leak regression suite: cancelling an exploration job while
// a frontier is being evaluated must release every goroutine — frontier
// workers, the private engine's pool, event forwarders, subscribers.
func TestExploreJobCancelMidFrontierLeaksNothing(t *testing.T) {
	baseline := runtime.NumGoroutine()
	m := NewManager(Options{})
	spec, blocked, release := gatedSpec(6)
	spec.Workers = 4
	j, err := m.SubmitExplore(spec)
	if err != nil {
		t.Fatal(err)
	}
	cancelMidFrontier(t, m, j, blocked, release)
	m.Close()
	settleGoroutines(t, baseline)
}

// TestExploreResumeEquivalence pins the checkpoint/resume contract: a job
// cancelled mid-search and resumed must finish with a result identical to
// an uninterrupted run — same final model, same graph, same
// classification.
func TestExploreResumeEquivalence(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()

	// Reference: an uninterrupted run of the same spec.
	ref, err := m.SubmitExplore(testSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := ref.Result().(*ExploreResult)

	// Interrupted run: cancel mid-frontier (deterministically, via the
	// gated builder), then resume. The closed release gate lets the
	// resumed run's builds through immediately.
	spec, blocked, release := gatedSpec(3)
	j, err := m.SubmitExplore(spec)
	if err != nil {
		t.Fatal(err)
	}
	cancelMidFrontier(t, m, j, blocked, release)
	cp, _ := j.Checkpoint().([]*explore.Node)
	if len(cp) != 1 {
		t.Fatalf("checkpoint should hold exactly the initial node, got %d", len(cp))
	}

	rj, err := m.ResumeExplore(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rj.Status().ResumedFrom != j.ID {
		t.Fatalf("resumed-from: %+v", rj.Status())
	}
	if err := rj.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := rj.Result().(*ExploreResult)
	if got.Final.Key != want.Final.Key || got.Graph != want.Graph ||
		fmt.Sprint(got.Required) != fmt.Sprint(want.Required) ||
		fmt.Sprint(got.Optional) != fmt.Sprint(want.Optional) ||
		got.NodesEvaluated != want.NodesEvaluated {
		t.Fatalf("resumed result diverged:\n--- reference ---\n%+v\n--- resumed ---\n%+v", want, got)
	}
	// The resumed job announced its checkpoint restore.
	restored := false
	for ev := range rj.Events(context.Background(), 0) {
		if ev.Kind == "restored" {
			restored = true
		}
	}
	if !restored {
		t.Fatal("resumed job emitted no restored event")
	}
}

func TestResumeRequiresTerminalExploreJob(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	started := make(chan string, 1)
	release := make(chan struct{})
	plain, _ := m.Submit("other", blockingRunner(started, release))
	<-started
	if _, err := m.ResumeExplore(plain.ID); err == nil {
		t.Fatal("resuming a non-explore job should fail")
	}
	close(release)
	plain.Wait(context.Background())

	spec, blocked, releaseGate := gatedSpec(4)
	spec.Workers = 2
	j, err := m.SubmitExplore(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-blocked // deterministically mid-search
	if _, err := m.ResumeExplore(j.ID); !errors.Is(err, ErrActive) {
		t.Fatalf("resuming an active job: %v", err)
	}
	m.Cancel(j.ID)
	close(releaseGate)
	j.Wait(context.Background())
	rj, err := m.ResumeExplore(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := rj.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestExploreCorpusFunc exercises the deferred-corpus path (the catalogue
// submission shape, where simulation happens inside the job).
func TestExploreCorpusFunc(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	spec := testSpec(0)
	corpus := spec.Corpus
	// Empty-but-non-nil, the shape a decoded JSON [] produces: it must
	// route through CorpusFunc exactly like nil.
	spec.Corpus = []*counters.Observation{}
	spec.CorpusFunc = func(ctx context.Context) ([]*counters.Observation, error) {
		return corpus, nil
	}
	j, err := m.SubmitExplore(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	sawCorpus := false
	for ev := range j.Events(context.Background(), 0) {
		if ev.Kind == "corpus" {
			sawCorpus = true
		}
	}
	if !sawCorpus {
		t.Fatal("corpus event missing")
	}
	spec.CorpusFunc = func(ctx context.Context) ([]*counters.Observation, error) {
		return nil, fmt.Errorf("simulator exploded")
	}
	j2, _ := m.SubmitExplore(spec)
	j2.Wait(context.Background())
	if st := j2.Status(); st.State != StateFailed || !strings.Contains(st.Error, "simulator exploded") {
		t.Fatalf("status: %+v", st)
	}

	// A CorpusFunc that produces nothing must fail the job, not report a
	// vacuous zero-observation convergence.
	spec.CorpusFunc = func(ctx context.Context) ([]*counters.Observation, error) {
		return []*counters.Observation{}, nil
	}
	j3, _ := m.SubmitExplore(spec)
	j3.Wait(context.Background())
	if st := j3.Status(); st.State != StateFailed || !strings.Contains(st.Error, "corpus is empty") {
		t.Fatalf("status: %+v", st)
	}
}

// TestExploreJobContainsBuilderPanic pins panic containment through the
// parallel frontier: a Builder that panics on one candidate must fail the
// job (checkpoint intact), never the process.
func TestExploreJobContainsBuilderPanic(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	spec := testSpec(4)
	spec.Workers = 4
	inner := spec.Builder
	spec.Builder = func(fs explore.FeatureSet) (*core.Model, error) {
		if fs["redherring2"] {
			panic("builder exploded")
		}
		return inner(fs)
	}
	j, err := m.SubmitExplore(spec)
	if err != nil {
		t.Fatal(err)
	}
	j.Wait(context.Background())
	st := j.Status()
	if st.State != StateFailed || !strings.Contains(st.Error, "panicked") {
		t.Fatalf("status: %+v", st)
	}
	if cp, _ := j.Checkpoint().([]*explore.Node); len(cp) == 0 {
		t.Fatal("checkpoint lost across builder panic")
	}
}
