package errata

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/haswell"
	"repro/internal/pagetable"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func TestApplySMTGating(t *testing.T) {
	set := counters.NewSet("load.ret", "load.causes_walk")
	o := counters.NewObservation("w", set)
	o.Append([]float64{100, 50})

	// SMT off: nothing fires.
	clean, fired := Apply(o, MachineConfig{SMTEnabled: false}, Haswell())
	if len(fired) != 0 {
		t.Fatalf("no errata should fire with SMT off: %v", fired)
	}
	if clean.Samples[0][0] != 100 {
		t.Fatalf("values must be untouched: %v", clean.Samples[0])
	}

	// SMT on: HSD29 inflates the retirement counters only.
	dirty, fired := Apply(o, MachineConfig{SMTEnabled: true}, Haswell())
	if len(fired) != 1 || fired[0] != "HSD29" {
		t.Fatalf("HSD29 should fire: %v", fired)
	}
	if dirty.Samples[0][0] <= 100 {
		t.Fatal("load.ret should be inflated")
	}
	if dirty.Samples[0][1] != 50 {
		t.Fatal("causes_walk must be untouched")
	}
	if !strings.Contains(dirty.Label, "HSD29") {
		t.Fatalf("label should record fired errata: %q", dirty.Label)
	}
}

// TestErratumRefutesTrueModel reproduces the methodology hazard the paper
// guards against: with SMT-triggered overcounting on mem_uops_retired, the
// *correct* model of the hardware is falsely refuted; disabling SMT (the
// paper's BIOS mitigation) restores the sound verdict.
func TestErratumRefutesTrueModel(t *testing.T) {
	sim := haswell.NewSimulator(haswell.DefaultConfig(pagetable.Page4K))
	gen, err := workloads.NewRandom(64<<20, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(gen, 20000)
	truth := haswell.WithAggregateWalkRef(sim.Observation(gen, 16, 10000))

	set := haswell.AnalysisSet()
	m, err := haswell.BuildModel("true-model", haswell.DiscoveredModelFeatures(), set)
	if err != nil {
		t.Fatal(err)
	}

	smtOff, _ := Apply(truth, MachineConfig{SMTEnabled: false}, Haswell())
	v, err := m.TestObservation(smtOff, core.DefaultConfidence, stats.Correlated, false)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Feasible {
		t.Fatal("clean measurement must be consistent with the true model")
	}

	smtOn, fired := Apply(truth, MachineConfig{SMTEnabled: true}, Haswell())
	if len(fired) == 0 {
		t.Fatal("erratum should fire with SMT on")
	}
	v2, err := m.TestObservation(smtOn, core.DefaultConfidence, stats.Correlated, true)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Feasible {
		t.Fatal("erratum-corrupted measurement should falsely refute the true model")
	}
}
