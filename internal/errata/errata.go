// Package errata models published hardware event counter errata and their
// effect on CounterPoint analyses.
//
// The paper's methodology footnote (§7.1, footnote 9) is easy to miss but
// load-bearing: "We ensured that all of our HEC measurements were
// unaffected by any published HEC errata. For errata that are triggered
// when SMT is enabled (e.g., HSD29/HSM30 affecting mem_uops_retired), we
// addressed this by disabling SMT in the BIOS." An analysis framework that
// treats counter values as ground truth inherits every erratum of the
// machine it runs on: an overcounting counter can make a *correct* model
// appear refuted.
//
// This package reproduces that failure mode: Apply corrupts an observation
// the way a documented erratum would, so tests and experiments can show
// that (i) erratum-affected measurements refute the true model, and (ii)
// the paper's mitigation (disable SMT) restores sound verdicts.
package errata

import (
	"fmt"
	"strings"

	"repro/internal/counters"
)

// Erratum describes one documented counter erratum.
type Erratum struct {
	// ID is the vendor identifier, e.g. "HSD29".
	ID string
	// Summary describes the misbehaviour.
	Summary string
	// RequiresSMT: the erratum only triggers with hyperthreading enabled.
	RequiresSMT bool
	// Affected reports whether the event is miscounted.
	Affected func(e counters.Event) bool
	// Distort maps a true per-interval value of event e to the miscounted
	// value.
	Distort func(e counters.Event, trueValue float64) float64
}

// Haswell returns the modelled Haswell errata.
func Haswell() []Erratum {
	return []Erratum{
		{
			// HSD29/HSM30: MEM_UOPS_RETIRED events may overcount when SMT
			// is enabled (counting replayed micro-ops and micro-ops of the
			// sibling thread). Replays concentrate on TLB-missing accesses,
			// so the stlb_miss_* sub-events overcount harder than all_*,
			// skewing their ratio — which is what poisons model constraints
			// like ret_stlb_miss ≤ ret.
			ID:          "HSD29",
			Summary:     "mem_uops_retired.* may overcount with SMT enabled",
			RequiresSMT: true,
			Affected: func(e counters.Event) bool {
				// Table 2: the Ret group's full event names are prefixed by
				// mem_uops_retired.
				return strings.HasSuffix(string(e), counters.Ret) ||
					strings.HasSuffix(string(e), counters.RetSTLBMiss)
			},
			// Deterministic multiplicative overcounts; the magnitudes are
			// representative, not measured.
			Distort: func(e counters.Event, v float64) float64 {
				if strings.HasSuffix(string(e), counters.RetSTLBMiss) {
					return v * 1.25
				}
				return v * 1.05
			},
		},
	}
}

// MachineConfig captures the measurement-machine settings the paper's
// methodology controls for.
type MachineConfig struct {
	// SMTEnabled: hyperthreading on (the paper's mitigation is to disable
	// it in the BIOS).
	SMTEnabled bool
}

// Apply returns a copy of the observation with every triggered erratum's
// distortion applied, and the list of errata that fired.
func Apply(o *counters.Observation, machine MachineConfig, errata []Erratum) (*counters.Observation, []string) {
	out := counters.NewObservation(o.Label, o.Set)
	var fired []string
	active := make([]Erratum, 0, len(errata))
	for _, e := range errata {
		if e.RequiresSMT && !machine.SMTEnabled {
			continue
		}
		active = append(active, e)
		fired = append(fired, e.ID)
	}
	for _, row := range o.Samples {
		distorted := make([]float64, len(row))
		copy(distorted, row)
		for i, ev := range o.Set.Events() {
			for _, e := range active {
				if e.Affected(ev) {
					distorted[i] = e.Distort(ev, distorted[i])
				}
			}
		}
		out.Append(distorted)
	}
	if len(fired) == 0 {
		out.Label = o.Label
	} else {
		out.Label = fmt.Sprintf("%s+errata(%s)", o.Label, strings.Join(fired, ","))
	}
	return out, fired
}
