package explore

import (
	"math/rand"
	"testing"

	"repro/internal/counters"
	"repro/internal/engine"
)

// The benchmark search space: the Figure 6 "abort" feature plus five
// red herrings, so every discovery frontier is six candidates wide — the
// shape where frontier parallelism pays. The corpus is eight observations
// (one anomalous), large enough that each node evaluation does real
// spectral + LP work.
func benchCorpus() []*counters.Observation {
	set := counters.NewSet("load.causes_walk", "load.pde$_miss")
	mk := func(label string, cw, pm float64, seed int64) *counters.Observation {
		o := counters.NewObservation(label, set)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			o.Append([]float64{cw + rng.NormFloat64(), pm + rng.NormFloat64()})
		}
		return o
	}
	out := []*counters.Observation{mk("anomalous", 200, 500, 99)}
	for i := int64(0); i < 7; i++ {
		out = append(out, mk("benign", 500, 300, i))
	}
	return out
}

var benchUniverse = []string{"abort", "redherring0", "redherring1", "redherring2", "redherring3", "redherring4"}

// benchmarkExplore runs the full discovery + elimination search on a cold
// engine per iteration, with the given frontier parallelism.
func benchmarkExplore(b *testing.B, workers int) {
	builder := wideBuilder(benchUniverse[1:])
	corpus := benchCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := engine.New()
		s := NewSearch(builder, corpus)
		s.Engine = eng
		s.Workers = workers
		final, err := s.Discover(NewFeatureSet(), benchUniverse)
		if err != nil {
			b.Fatal(err)
		}
		if !final.Feasible() {
			b.Fatalf("search did not converge: %s", final.Features)
		}
		if _, err := s.Eliminate(final, benchUniverse); err != nil {
			b.Fatal(err)
		}
		eng.Close()
	}
}

// BenchmarkExploreSequential is the sequential reference search (one
// frontier candidate at a time; corpus batches still use the engine pool).
func BenchmarkExploreSequential(b *testing.B) { benchmarkExplore(b, 1) }

// BenchmarkExploreParallel evaluates each frontier concurrently. Results
// are bit-identical to the sequential search; only wall-clock changes.
func BenchmarkExploreParallel(b *testing.B) { benchmarkExplore(b, 0) }
