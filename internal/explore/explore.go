// Package explore implements CounterPoint's guided model exploration
// (paper §5 and Appendix C): the discovery/elimination search over a space
// of microarchitectural features, and the classification of feature
// combinations by their consistency with HEC data (Figures 7, 8 and 10).
//
// The paper drives the search with an expert in the loop: CounterPoint
// reports violated constraints and the expert chooses which feature to add.
// Here a greedy heuristic plays the expert — in the discovery phase it adds
// whichever candidate feature most reduces the number of infeasible
// observations; in the elimination phase it recursively prunes features
// from a feasible model, abandoning a subtree as soon as pruning yields an
// infeasible model (the paper's empirical pruning rule).
package explore

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/stats"
)

// FeatureSet is a set of named microarchitectural features.
type FeatureSet map[string]bool

// NewFeatureSet builds a set from names.
func NewFeatureSet(names ...string) FeatureSet {
	fs := FeatureSet{}
	for _, n := range names {
		fs[n] = true
	}
	return fs
}

// Clone copies the set.
func (fs FeatureSet) Clone() FeatureSet {
	out := make(FeatureSet, len(fs))
	for k, v := range fs {
		if v {
			out[k] = true
		}
	}
	return out
}

// With returns a copy with the feature added.
func (fs FeatureSet) With(name string) FeatureSet {
	out := fs.Clone()
	out[name] = true
	return out
}

// Without returns a copy with the feature removed.
func (fs FeatureSet) Without(name string) FeatureSet {
	out := fs.Clone()
	delete(out, name)
	return out
}

// Names returns the sorted feature names present.
func (fs FeatureSet) Names() []string {
	var out []string
	for k, v := range fs {
		if v {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Key is a canonical identity for the set.
func (fs FeatureSet) Key() string { return strings.Join(fs.Names(), "+") }

// String renders the set like "{F1, F3}".
func (fs FeatureSet) String() string {
	return "{" + strings.Join(fs.Names(), ", ") + "}"
}

// Builder constructs a model for a feature combination.
type Builder func(fs FeatureSet) (*core.Model, error)

// Op records how a search node was derived (Figure 10's edge kinds).
type Op string

// Node derivation operations.
const (
	OpInitial    Op = "initial"
	OpDiscovery  Op = "constraint-relaxation" // blue edges: feature added
	OpPruning    Op = "pruning"               // yellow edges: feature removed
	OpEnumerated Op = "enumerated"
)

// Node is one evaluated model in the search graph.
type Node struct {
	Features   FeatureSet
	Infeasible int
	Total      int
	// Violated aggregates violated-constraint counts across the corpus
	// (filled only when the search runs with violation identification).
	Violated map[string]int
	// DerivedFrom is the key of the parent node ("" for the initial node).
	DerivedFrom string
	Op          Op
}

// Feasible reports whether every observation was feasible.
func (n *Node) Feasible() bool { return n.Infeasible == 0 }

// Search runs guided exploration over a corpus. Corpus evaluation runs
// through an engine.Session per candidate model, so the expensive
// per-observation spectral work is shared across the entire search: every
// node tests the same corpus, and the engine's region cache makes node
// evaluation cost one LP per observation instead of a full region rebuild.
type Search struct {
	Builder    Builder
	Corpus     []*counters.Observation
	Confidence float64
	Mode       stats.NoiseMode
	// IdentifyViolations controls whether constraint deduction runs for
	// infeasible nodes (slower but mirrors the paper's expert feedback).
	IdentifyViolations bool
	// MaxDiscoverySteps bounds the discovery phase.
	MaxDiscoverySteps int
	// Engine hosts the evaluation sessions; nil means engine.Default().
	Engine *engine.Engine
	// Ctx cancels an in-flight search between (and inside) node
	// evaluations; nil means context.Background().
	Ctx context.Context

	nodes map[string]*Node
	order []*Node
}

// NewSearch builds a search with the paper's defaults.
func NewSearch(b Builder, corpus []*counters.Observation) *Search {
	return &Search{
		Builder:           b,
		Corpus:            corpus,
		Confidence:        core.DefaultConfidence,
		Mode:              stats.Correlated,
		MaxDiscoverySteps: 16,
		nodes:             map[string]*Node{},
	}
}

// Nodes returns every evaluated node in evaluation order.
func (s *Search) Nodes() []*Node {
	out := make([]*Node, len(s.order))
	copy(out, s.order)
	return out
}

func (s *Search) engine() *engine.Engine {
	if s.Engine != nil {
		return s.Engine
	}
	return engine.Default()
}

func (s *Search) ctx() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// Evaluate tests one feature combination (memoised).
func (s *Search) Evaluate(fs FeatureSet, parent string, op Op) (*Node, error) {
	key := fs.Key()
	if n, ok := s.nodes[key]; ok {
		return n, nil
	}
	m, err := s.Builder(fs)
	if err != nil {
		return nil, fmt.Errorf("explore: build %s: %w", fs, err)
	}
	sess, err := s.engine().NewSession(m, engine.Config{
		Confidence:         s.Confidence,
		Mode:               s.Mode,
		IdentifyViolations: s.IdentifyViolations,
	})
	if err != nil {
		return nil, fmt.Errorf("explore: session %s: %w", fs, err)
	}
	res, err := sess.Evaluate(s.ctx(), s.Corpus)
	if err != nil {
		return nil, fmt.Errorf("explore: evaluate %s: %w", fs, err)
	}
	n := &Node{
		Features:    fs.Clone(),
		Infeasible:  res.Infeasible,
		Total:       res.Total,
		Violated:    res.ViolatedConstraints,
		DerivedFrom: parent,
		Op:          op,
	}
	s.nodes[key] = n
	s.order = append(s.order, n)
	return n, nil
}

// Discover runs the discovery phase from the initial feature set: while
// the current model is infeasible, greedily add the candidate feature that
// most reduces the infeasible-observation count (ties broken by name). It
// returns the final node (feasible, or the best reachable if the candidate
// pool is exhausted).
func (s *Search) Discover(initial FeatureSet, candidates []string) (*Node, error) {
	cur, err := s.Evaluate(initial, "", OpInitial)
	if err != nil {
		return nil, err
	}
	for step := 0; step < s.MaxDiscoverySteps && !cur.Feasible(); step++ {
		var best *Node
		for _, cand := range sortedCandidates(candidates) {
			if cur.Features[cand] {
				continue
			}
			n, err := s.Evaluate(cur.Features.With(cand), cur.Features.Key(), OpDiscovery)
			if err != nil {
				return nil, err
			}
			if best == nil || n.Infeasible < best.Infeasible {
				best = n
			}
		}
		if best == nil || best.Infeasible >= cur.Infeasible {
			// No candidate helps: stuck with the best reachable model.
			return cur, nil
		}
		cur = best
	}
	return cur, nil
}

func sortedCandidates(cs []string) []string {
	out := make([]string, len(cs))
	copy(out, cs)
	sort.Strings(out)
	return out
}

// Eliminate runs the elimination phase from a feasible node: recursively
// remove single features; feasible children are recursed into, infeasible
// children terminate their subtree (the paper's pruning heuristic). It
// returns every minimal feasible feature set found.
func (s *Search) Eliminate(from *Node, removable []string) ([]*Node, error) {
	var minimal []*Node
	var rec func(n *Node) (bool, error) // returns whether any child stayed feasible
	visited := map[string]bool{}
	rec = func(n *Node) (bool, error) {
		if visited[n.Features.Key()] {
			return false, nil
		}
		visited[n.Features.Key()] = true
		anyFeasibleChild := false
		for _, f := range sortedCandidates(removable) {
			if !n.Features[f] {
				continue
			}
			child, err := s.Evaluate(n.Features.Without(f), n.Features.Key(), OpPruning)
			if err != nil {
				return false, err
			}
			if child.Feasible() {
				anyFeasibleChild = true
				if _, err := rec(child); err != nil {
					return false, err
				}
			}
		}
		if !anyFeasibleChild {
			minimal = append(minimal, n)
		}
		return anyFeasibleChild, nil
	}
	if !from.Feasible() {
		return nil, fmt.Errorf("explore: elimination must start from a feasible model, %s is not", from.Features)
	}
	if _, err := rec(from); err != nil {
		return nil, err
	}
	return minimal, nil
}

// Classification summarises the evaluated model space (Figure 7): which
// features appear in every feasible model (inferred present), and which
// appear in none (unsupported by the data).
type Classification struct {
	FeasibleModels   []FeatureSet
	InfeasibleModels []FeatureSet
	// Required features appear in every feasible model.
	Required []string
	// Optional features appear in some but not all feasible models — the
	// data cannot resolve them (like the paper's PML4E cache).
	Optional []string
}

// Classify analyses all evaluated nodes against the candidate feature
// universe.
func (s *Search) Classify(universe []string) Classification {
	var c Classification
	present := map[string]int{}
	feasibleCount := 0
	for _, n := range s.order {
		if n.Feasible() {
			c.FeasibleModels = append(c.FeasibleModels, n.Features)
			feasibleCount++
			for _, f := range n.Features.Names() {
				present[f]++
			}
		} else {
			c.InfeasibleModels = append(c.InfeasibleModels, n.Features)
		}
	}
	for _, f := range sortedCandidates(universe) {
		switch {
		case feasibleCount > 0 && present[f] == feasibleCount:
			c.Required = append(c.Required, f)
		case present[f] > 0:
			c.Optional = append(c.Optional, f)
		}
	}
	return c
}

// GraphReport renders the search graph as text (Figure 10 stand-in): one
// line per node with its derivation edge, features, and verdict.
func (s *Search) GraphReport() string {
	var b strings.Builder
	for _, n := range s.order {
		verdict := "FEASIBLE"
		if !n.Feasible() {
			verdict = fmt.Sprintf("infeasible (%d/%d)", n.Infeasible, n.Total)
		}
		from := n.DerivedFrom
		if from == "" {
			from = "(start)"
		}
		fmt.Fprintf(&b, "%-12s %-28s <- {%s}  %s\n", n.Op, n.Features.String(), from, verdict)
	}
	return b.String()
}
