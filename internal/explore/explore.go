// Package explore implements CounterPoint's guided model exploration
// (paper §5 and Appendix C): the discovery/elimination search over a space
// of microarchitectural features, and the classification of feature
// combinations by their consistency with HEC data (Figures 7, 8 and 10).
//
// The paper drives the search with an expert in the loop: CounterPoint
// reports violated constraints and the expert chooses which feature to add.
// Here a greedy heuristic plays the expert — in the discovery phase it adds
// whichever candidate feature most reduces the number of infeasible
// observations; in the elimination phase it recursively prunes features
// from a feasible model, abandoning a subtree as soon as pruning yields an
// infeasible model (the paper's empirical pruning rule).
//
// # Parallel frontiers
//
// Both phases evaluate one frontier of candidate feature sets at a time —
// every unexplored single-feature extension of the current model in
// discovery, every single-feature removal of a node in elimination. The
// frontier is evaluated concurrently (Search.Workers goroutines, each
// driving an engine session whose observation batches run on the
// engine's bounded worker pool), but results are committed to the search
// graph in the sequential reference order: parallel runs reproduce the
// sequential search — node order, adopted features, final model,
// classification, GraphReport — bit for bit. Workers = 1 selects the
// sequential reference search itself.
//
// # Progress events
//
// A Search with a non-nil Events channel reports structured progress —
// every node evaluated, every feature the discovery phase adopts, every
// subtree the elimination phase prunes, every minimal model found — as the
// search runs, instead of only a final GraphReport. internal/jobs consumes
// these events to stream long-running exploration over HTTP and to
// checkpoint the search graph (see Restore).
package explore

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/stats"
)

// FeatureSet is a set of named microarchitectural features.
type FeatureSet map[string]bool

// NewFeatureSet builds a set from names.
func NewFeatureSet(names ...string) FeatureSet {
	fs := FeatureSet{}
	for _, n := range names {
		fs[n] = true
	}
	return fs
}

// Clone copies the set.
func (fs FeatureSet) Clone() FeatureSet {
	out := make(FeatureSet, len(fs))
	for k, v := range fs {
		if v {
			out[k] = true
		}
	}
	return out
}

// With returns a copy with the feature added.
func (fs FeatureSet) With(name string) FeatureSet {
	out := fs.Clone()
	out[name] = true
	return out
}

// Without returns a copy with the feature removed.
func (fs FeatureSet) Without(name string) FeatureSet {
	out := fs.Clone()
	delete(out, name)
	return out
}

// Names returns the sorted feature names present.
func (fs FeatureSet) Names() []string {
	var out []string
	for k, v := range fs {
		if v {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Key is a canonical identity for the set.
func (fs FeatureSet) Key() string { return strings.Join(fs.Names(), "+") }

// String renders the set like "{F1, F3}".
func (fs FeatureSet) String() string {
	return "{" + strings.Join(fs.Names(), ", ") + "}"
}

// Builder constructs a model for a feature combination. Builders must be
// safe for concurrent calls with distinct feature sets: parallel frontier
// evaluation invokes one per candidate at a time.
type Builder func(fs FeatureSet) (*core.Model, error)

// Op records how a search node was derived (Figure 10's edge kinds).
type Op string

// Node derivation operations.
const (
	OpInitial    Op = "initial"
	OpDiscovery  Op = "constraint-relaxation" // blue edges: feature added
	OpPruning    Op = "pruning"               // yellow edges: feature removed
	OpEnumerated Op = "enumerated"
)

// Node is one evaluated model in the search graph.
type Node struct {
	Features   FeatureSet `json:"features"`
	Infeasible int        `json:"infeasible"`
	Total      int        `json:"total"`
	// Violated aggregates violated-constraint counts across the corpus
	// (filled only when the search runs with violation identification).
	Violated map[string]int `json:"violated,omitempty"`
	// DerivedFrom is the key of the parent node ("" for the initial node).
	DerivedFrom string `json:"derived_from,omitempty"`
	Op          Op     `json:"op"`
}

// Feasible reports whether every observation was feasible.
func (n *Node) Feasible() bool { return n.Infeasible == 0 }

// EventKind names a progress event.
type EventKind string

// Progress event kinds.
const (
	// EventNodeEvaluated fires when a node is committed to the search
	// graph, in commit (= sequential evaluation) order.
	EventNodeEvaluated EventKind = "node-evaluated"
	// EventFeatureAdopted fires when the discovery phase adopts the best
	// candidate of a frontier; Feature names it, Node is the new model.
	EventFeatureAdopted EventKind = "feature-adopted"
	// EventSubtreePruned fires when the elimination phase abandons a
	// subtree because removing Feature produced the infeasible Node.
	EventSubtreePruned EventKind = "subtree-pruned"
	// EventMinimalModel fires when a node with no feasible children is
	// recorded as a minimal feasible model.
	EventMinimalModel EventKind = "minimal-model"
)

// Event is one structured progress report from a running search.
type Event struct {
	Kind EventKind
	// Node is the node the event concerns (evaluated, adopted, pruned-to,
	// or minimal).
	Node *Node
	// Feature is the feature added (EventFeatureAdopted) or removed
	// (EventSubtreePruned).
	Feature string
	// Step is the discovery step for EventFeatureAdopted.
	Step int
}

// Search runs guided exploration over a corpus. Corpus evaluation runs
// through an engine session per candidate model on a shared engine, so
// the expensive per-observation spectral work is amortised across the
// entire search: every node tests the same corpus, and the engine's
// region cache makes node evaluation cost one LP per observation instead
// of a full region rebuild.
type Search struct {
	Builder    Builder
	Corpus     []*counters.Observation
	Confidence float64
	Mode       stats.NoiseMode
	// IdentifyViolations controls whether constraint deduction runs for
	// infeasible nodes (slower but mirrors the paper's expert feedback).
	IdentifyViolations bool
	// ForceExact routes every verdict to the exact LP tier, bypassing the
	// float filter (engine.Config.ForceExact).
	ForceExact bool
	// MaxDiscoverySteps bounds the discovery phase.
	MaxDiscoverySteps int
	// Engine hosts the evaluation sessions; nil means engine.Default().
	Engine *engine.Engine
	// Ctx cancels an in-flight search between (and inside) node
	// evaluations; nil means context.Background().
	Ctx context.Context
	// Workers bounds how many frontier candidates are evaluated
	// concurrently. 0 means the engine's worker count; 1 selects the
	// sequential reference search. Every setting commits nodes in the
	// sequential order, so results are bit-identical.
	Workers int
	// Events, when non-nil, receives structured progress events. The
	// consumer must keep receiving (or cancel Ctx): sends block, and an
	// event that cannot be delivered before Ctx ends is dropped.
	Events chan<- Event

	nodes  map[string]*Node
	order  []*Node
	staged map[string]*Node
}

// NewSearch builds a search with the paper's defaults.
func NewSearch(b Builder, corpus []*counters.Observation) *Search {
	return &Search{
		Builder:           b,
		Corpus:            corpus,
		Confidence:        core.DefaultConfidence,
		Mode:              stats.Correlated,
		MaxDiscoverySteps: 16,
		nodes:             map[string]*Node{},
		staged:            map[string]*Node{},
	}
}

// Nodes returns every evaluated node in evaluation order. The slice is the
// search graph: it snapshots cleanly mid-search (between frontier commits)
// and round-trips through Restore, which is how internal/jobs checkpoints
// and resumes a search.
func (s *Search) Nodes() []*Node {
	out := make([]*Node, len(s.order))
	copy(out, s.order)
	return out
}

// Restore preloads previously evaluated nodes — typically a checkpoint
// taken with Nodes — so a re-run search returns them without
// re-evaluation. Nodes must be supplied in their original evaluation order
// for the re-run to reproduce the original search bit-for-bit. Keys
// already present are left untouched, and no events are emitted for
// restored nodes.
func (s *Search) Restore(nodes []*Node) {
	if s.nodes == nil {
		s.nodes = map[string]*Node{}
	}
	for _, n := range nodes {
		if n == nil {
			continue
		}
		key := n.Features.Key()
		if _, ok := s.nodes[key]; ok {
			continue
		}
		s.nodes[key] = n
		s.order = append(s.order, n)
	}
}

func (s *Search) engine() *engine.Engine {
	if s.Engine != nil {
		return s.Engine
	}
	return engine.Default()
}

func (s *Search) ctx() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

func (s *Search) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return s.engine().Workers()
}

// emit delivers a progress event, dropping it if the search context ends
// before the consumer takes it.
func (s *Search) emit(ev Event) {
	if s.Events == nil {
		return
	}
	select {
	case s.Events <- ev:
	case <-s.ctx().Done():
	}
}

// build evaluates one feature combination without committing it to the
// search graph. Safe for concurrent use: all mutable search state is
// untouched. The session is created fresh rather than via
// engine.SessionFor: the search memoises each feature set and the Builder
// returns a fresh model pointer per call, so the pointer-keyed session
// cache could never produce a hit — it would only accumulate one dead
// entry per node in a shared engine. Sessions are stateless and cheap;
// the sharing that matters (worker pool, region/LP caches, workspace
// pools) is engine-level and fully in effect.
func (s *Search) build(ctx context.Context, fs FeatureSet) (*Node, error) {
	m, err := s.Builder(fs)
	if err != nil {
		return nil, fmt.Errorf("explore: build %s: %w", fs, err)
	}
	sess, err := s.engine().NewSession(m, engine.Config{
		Confidence:         s.Confidence,
		Mode:               s.Mode,
		IdentifyViolations: s.IdentifyViolations,
		ForceExact:         s.ForceExact,
	})
	if err != nil {
		return nil, fmt.Errorf("explore: session %s: %w", fs, err)
	}
	res, err := sess.Evaluate(ctx, s.Corpus)
	if err != nil {
		return nil, fmt.Errorf("explore: evaluate %s: %w", fs, err)
	}
	return &Node{
		Features:   fs.Clone(),
		Infeasible: res.Infeasible,
		Total:      res.Total,
		Violated:   res.ViolatedConstraints,
	}, nil
}

// Evaluate tests one feature combination (memoised) and commits it to the
// search graph. A result staged by a frontier prefetch is adopted instead
// of re-evaluated; either way the node's derivation edge records this
// call's parent and op.
func (s *Search) Evaluate(fs FeatureSet, parent string, op Op) (*Node, error) {
	if s.nodes == nil {
		s.nodes = map[string]*Node{}
	}
	key := fs.Key()
	if n, ok := s.nodes[key]; ok {
		return n, nil
	}
	n, ok := s.staged[key]
	if ok {
		delete(s.staged, key)
	} else {
		var err error
		if n, err = s.build(s.ctx(), fs); err != nil {
			return nil, err
		}
	}
	n.DerivedFrom, n.Op = parent, op
	s.nodes[key] = n
	s.order = append(s.order, n)
	s.emit(Event{Kind: EventNodeEvaluated, Node: n})
	return n, nil
}

// prefetch evaluates a frontier of feature sets concurrently into the
// staging area, where Evaluate picks them up in the sequential commit
// order. Sets already evaluated or staged are skipped; with one worker (or
// a frontier of one) evaluation is left to the lazy sequential path. The
// first evaluation error cancels the rest of the frontier and is returned;
// a cancelled search context is reported even when every launched
// evaluation happened to finish.
func (s *Search) prefetch(frontier []FeatureSet) error {
	if s.staged == nil {
		s.staged = map[string]*Node{}
	}
	var todo []FeatureSet
	seen := map[string]bool{}
	for _, fs := range frontier {
		k := fs.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := s.nodes[k]; ok {
			continue
		}
		if _, ok := s.staged[k]; ok {
			continue
		}
		todo = append(todo, fs)
	}
	if s.workers() <= 1 || len(todo) <= 1 {
		return s.ctx().Err()
	}
	ctx, cancel := context.WithCancel(s.ctx())
	defer cancel()
	sem := make(chan struct{}, s.workers())
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, fs := range todo {
		wg.Add(1)
		go func(fs FeatureSet) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			// Contain panics from the caller-supplied Builder (or anything
			// under it): on this goroutine an unrecovered panic would kill
			// the whole process, not just the search — with Workers=1 the
			// same panic unwinds through the caller, who may have its own
			// recovery (the jobs runner does).
			n, err := func() (n *Node, err error) {
				defer func() {
					if p := recover(); p != nil {
						err = fmt.Errorf("explore: evaluate %s panicked: %v", fs, p)
					}
				}()
				return s.build(ctx, fs)
			}()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				// Errors caused by the frontier-wide cancellation are
				// echoes of firstErr, not findings of their own.
				if firstErr == nil && ctx.Err() == nil {
					firstErr = err
				}
				cancel()
				return
			}
			s.staged[fs.Key()] = n
		}(fs)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return s.ctx().Err()
}

// Discover runs the discovery phase from the initial feature set: while
// the current model is infeasible, greedily add the candidate feature that
// most reduces the infeasible-observation count (ties broken by name, so
// parallel frontier evaluation cannot change the choice). It returns the
// final node (feasible, or the best reachable if the candidate pool is
// exhausted).
func (s *Search) Discover(initial FeatureSet, candidates []string) (*Node, error) {
	cur, err := s.Evaluate(initial, "", OpInitial)
	if err != nil {
		return nil, err
	}
	cands := sortedCandidates(candidates)
	for step := 0; step < s.MaxDiscoverySteps && !cur.Feasible(); step++ {
		var frontier []FeatureSet
		for _, cand := range cands {
			if !cur.Features[cand] {
				frontier = append(frontier, cur.Features.With(cand))
			}
		}
		if err := s.prefetch(frontier); err != nil {
			return nil, err
		}
		var best *Node
		var bestFeature string
		for _, cand := range cands {
			if cur.Features[cand] {
				continue
			}
			n, err := s.Evaluate(cur.Features.With(cand), cur.Features.Key(), OpDiscovery)
			if err != nil {
				return nil, err
			}
			if best == nil || n.Infeasible < best.Infeasible {
				best, bestFeature = n, cand
			}
		}
		if best == nil || best.Infeasible >= cur.Infeasible {
			// No candidate helps: stuck with the best reachable model.
			return cur, nil
		}
		s.emit(Event{Kind: EventFeatureAdopted, Node: best, Feature: bestFeature, Step: step})
		cur = best
	}
	return cur, nil
}

func sortedCandidates(cs []string) []string {
	out := make([]string, len(cs))
	copy(out, cs)
	sort.Strings(out)
	return out
}

// Eliminate runs the elimination phase from a feasible node: recursively
// remove single features; feasible children are recursed into, infeasible
// children terminate their subtree (the paper's pruning heuristic). Each
// node's children form one frontier, evaluated concurrently. It returns
// every minimal feasible feature set found.
func (s *Search) Eliminate(from *Node, removable []string) ([]*Node, error) {
	var minimal []*Node
	var rec func(n *Node) (bool, error) // returns whether any child stayed feasible
	visited := map[string]bool{}
	sorted := sortedCandidates(removable)
	rec = func(n *Node) (bool, error) {
		if visited[n.Features.Key()] {
			return false, nil
		}
		visited[n.Features.Key()] = true
		var frontier []FeatureSet
		for _, f := range sorted {
			if n.Features[f] {
				frontier = append(frontier, n.Features.Without(f))
			}
		}
		if err := s.prefetch(frontier); err != nil {
			return false, err
		}
		anyFeasibleChild := false
		for _, f := range sorted {
			if !n.Features[f] {
				continue
			}
			child, err := s.Evaluate(n.Features.Without(f), n.Features.Key(), OpPruning)
			if err != nil {
				return false, err
			}
			if child.Feasible() {
				anyFeasibleChild = true
				if _, err := rec(child); err != nil {
					return false, err
				}
			} else {
				s.emit(Event{Kind: EventSubtreePruned, Node: child, Feature: f})
			}
		}
		if !anyFeasibleChild {
			minimal = append(minimal, n)
			s.emit(Event{Kind: EventMinimalModel, Node: n})
		}
		return anyFeasibleChild, nil
	}
	if !from.Feasible() {
		return nil, fmt.Errorf("explore: elimination must start from a feasible model, %s is not", from.Features)
	}
	if _, err := rec(from); err != nil {
		return nil, err
	}
	return minimal, nil
}

// Classification summarises the evaluated model space (Figure 7): which
// features appear in every feasible model (inferred present), and which
// appear in none (unsupported by the data).
type Classification struct {
	FeasibleModels   []FeatureSet
	InfeasibleModels []FeatureSet
	// Required features appear in every feasible model.
	Required []string
	// Optional features appear in some but not all feasible models — the
	// data cannot resolve them (like the paper's PML4E cache).
	Optional []string
}

// Classify analyses all evaluated nodes against the candidate feature
// universe.
func (s *Search) Classify(universe []string) Classification {
	var c Classification
	present := map[string]int{}
	feasibleCount := 0
	for _, n := range s.order {
		if n.Feasible() {
			c.FeasibleModels = append(c.FeasibleModels, n.Features)
			feasibleCount++
			for _, f := range n.Features.Names() {
				present[f]++
			}
		} else {
			c.InfeasibleModels = append(c.InfeasibleModels, n.Features)
		}
	}
	for _, f := range sortedCandidates(universe) {
		switch {
		case feasibleCount > 0 && present[f] == feasibleCount:
			c.Required = append(c.Required, f)
		case present[f] > 0:
			c.Optional = append(c.Optional, f)
		}
	}
	return c
}

// GraphReport renders the search graph as text (Figure 10 stand-in): one
// line per node with its derivation edge, features, and verdict.
func (s *Search) GraphReport() string {
	var b strings.Builder
	for _, n := range s.order {
		verdict := "FEASIBLE"
		if !n.Feasible() {
			verdict = fmt.Sprintf("infeasible (%d/%d)", n.Infeasible, n.Total)
		}
		from := n.DerivedFrom
		if from == "" {
			from = "(start)"
		}
		fmt.Fprintf(&b, "%-12s %-28s <- {%s}  %s\n", n.Op, n.Features.String(), from, verdict)
	}
	return b.String()
}
