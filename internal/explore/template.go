package explore

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/counters"
)

// TemplateBuilder compiles a feature-conditional DSL template into a
// Builder — the serialisable form of a feature space, used by the HTTP
// exploration API where a Go closure cannot travel.
//
// The template is ordinary CounterPoint DSL in which whole lines may be
// guarded by feature markers:
//
//	incr load.causes_walk;
//	#if abort
//	switch Abort { Yes => done; No => pass; };
//	#endif
//	done;
//
// A guarded line is included in a feature combination's model exactly when
// every enclosing guard's feature is enabled (guards nest). The returned
// universe is the sorted list of feature names the template references —
// the natural candidate pool for Search.Discover. Each instantiated model
// is named name:<key> (or name alone for the empty set) and, when set is
// nil, derives its counter set from its own events.
//
// TemplateBuilder validates marker structure only; DSL errors surface when
// the builder first instantiates a combination (build the all-enabled set
// to validate eagerly — every template line is included in it).
func TemplateBuilder(name, source string, set *counters.Set) (Builder, []string, error) {
	lines := strings.Split(source, "\n")
	features := map[string]bool{}
	type openIf struct {
		feature string
		line    int
	}
	var stack []openIf
	for i, ln := range lines {
		fields := strings.Fields(ln)
		if len(fields) == 0 || !strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "#if":
			if len(fields) != 2 {
				return nil, nil, fmt.Errorf("explore: template line %d: #if takes exactly one feature name", i+1)
			}
			features[fields[1]] = true
			stack = append(stack, openIf{fields[1], i + 1})
		case "#endif":
			if len(fields) != 1 {
				return nil, nil, fmt.Errorf("explore: template line %d: #endif takes no arguments", i+1)
			}
			if len(stack) == 0 {
				return nil, nil, fmt.Errorf("explore: template line %d: #endif without #if", i+1)
			}
			stack = stack[:len(stack)-1]
		default:
			return nil, nil, fmt.Errorf("explore: template line %d: unknown directive %q (want #if or #endif)", i+1, fields[0])
		}
	}
	if len(stack) > 0 {
		open := stack[len(stack)-1]
		return nil, nil, fmt.Errorf("explore: template: #if %s at line %d is never closed", open.feature, open.line)
	}
	universe := make([]string, 0, len(features))
	for f := range features {
		universe = append(universe, f)
	}
	sort.Strings(universe)

	builder := func(fs FeatureSet) (*core.Model, error) {
		var out strings.Builder
		var on []bool // enclosing guards, innermost last
		include := true
		for _, ln := range lines {
			fields := strings.Fields(ln)
			if len(fields) > 0 && strings.HasPrefix(fields[0], "#") {
				switch fields[0] {
				case "#if":
					on = append(on, fs[fields[1]])
				case "#endif":
					on = on[:len(on)-1]
				}
				include = true
				for _, en := range on {
					if !en {
						include = false
						break
					}
				}
				continue
			}
			if include {
				out.WriteString(ln)
				out.WriteByte('\n')
			}
		}
		modelName := name
		if key := fs.Key(); key != "" {
			modelName = name + ":" + key
		}
		return core.ModelFromDSL(modelName, out.String(), set)
	}
	return builder, universe, nil
}
