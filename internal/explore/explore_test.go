package explore

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/counters"
)

// The test feature space reuses the paper's Figure 6 running example.
// Feature "abort": translation requests may abort after the PDE cache
// lookup (relaxes pde$_miss <= causes_walk). Feature "doublewalk": a miss
// may trigger two walks (relaxes nothing the corpus needs — a red herring
// the elimination phase must prune).
func builder(t *testing.T) Builder {
	return func(fs FeatureSet) (*core.Model, error) {
		var b strings.Builder
		b.WriteString("do LookupPde$;\n")
		b.WriteString("switch Pde$Status {\n Hit => pass;\n Miss => {\n incr load.pde$_miss;\n")
		if fs["abort"] {
			b.WriteString(" switch Abort { Yes => done; No => pass; };\n")
		}
		b.WriteString(" };\n};\n")
		b.WriteString("incr load.causes_walk;\n")
		if fs["doublewalk"] {
			b.WriteString("switch Double { Yes => incr load.causes_walk; No => pass; };\n")
		}
		b.WriteString("done;\n")
		set := counters.NewSet("load.causes_walk", "load.pde$_miss")
		return core.ModelFromDSL("feat:"+fs.Key(), b.String(), set)
	}
}

func corpus() []*counters.Observation {
	set := counters.NewSet("load.causes_walk", "load.pde$_miss")
	mk := func(label string, cw, pm float64, seed int64) *counters.Observation {
		o := counters.NewObservation(label, set)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			o.Append([]float64{cw + rng.NormFloat64(), pm + rng.NormFloat64()})
		}
		return o
	}
	return []*counters.Observation{
		mk("benign", 500, 300, 1),
		mk("anomalous", 200, 500, 2), // pde$_miss > causes_walk
	}
}

func TestFeatureSetOps(t *testing.T) {
	fs := NewFeatureSet("b", "a")
	if fs.Key() != "a+b" {
		t.Fatalf("key: %q", fs.Key())
	}
	w := fs.With("c")
	if !w["c"] || fs["c"] {
		t.Fatal("With should not mutate receiver")
	}
	wo := w.Without("a")
	if wo["a"] || !w["a"] {
		t.Fatal("Without should not mutate receiver")
	}
	if fs.String() != "{a, b}" {
		t.Fatalf("string: %q", fs.String())
	}
}

func TestDiscoveryFindsAbort(t *testing.T) {
	s := NewSearch(builder(t), corpus())
	final, err := s.Discover(NewFeatureSet(), []string{"abort", "doublewalk"})
	if err != nil {
		t.Fatal(err)
	}
	if !final.Feasible() {
		t.Fatalf("discovery should reach a feasible model, got %d infeasible", final.Infeasible)
	}
	if !final.Features["abort"] {
		t.Fatalf("abort feature must be discovered; got %s", final.Features)
	}
}

func TestEliminationPrunesRedHerring(t *testing.T) {
	s := NewSearch(builder(t), corpus())
	full, err := s.Evaluate(NewFeatureSet("abort", "doublewalk"), "", OpInitial)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Feasible() {
		t.Fatal("full model should be feasible")
	}
	minimal, err := s.Eliminate(full, []string{"abort", "doublewalk"})
	if err != nil {
		t.Fatal(err)
	}
	if len(minimal) != 1 {
		t.Fatalf("minimal models: %d, want 1", len(minimal))
	}
	if minimal[0].Features.Key() != "abort" {
		t.Fatalf("minimal model %s, want {abort}", minimal[0].Features)
	}
}

func TestEliminationRequiresFeasibleStart(t *testing.T) {
	s := NewSearch(builder(t), corpus())
	n, err := s.Evaluate(NewFeatureSet(), "", OpInitial)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Eliminate(n, []string{"abort"}); err == nil {
		t.Fatal("elimination from infeasible model should error")
	}
}

func TestClassify(t *testing.T) {
	s := NewSearch(builder(t), corpus())
	final, err := s.Discover(NewFeatureSet(), []string{"abort", "doublewalk"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Eliminate(final, []string{"abort", "doublewalk"}); err != nil {
		t.Fatal(err)
	}
	// Also evaluate the abort+doublewalk combination for coverage.
	if _, err := s.Evaluate(NewFeatureSet("abort", "doublewalk"), "", OpEnumerated); err != nil {
		t.Fatal(err)
	}
	c := s.Classify([]string{"abort", "doublewalk"})
	found := false
	for _, f := range c.Required {
		if f == "abort" {
			found = true
		}
	}
	if !found {
		t.Fatalf("abort must be classified required; got required=%v optional=%v",
			c.Required, c.Optional)
	}
	if len(c.FeasibleModels) == 0 || len(c.InfeasibleModels) == 0 {
		t.Fatal("classification should see both kinds")
	}
}

func TestDiscoveryStuckReturnsBest(t *testing.T) {
	s := NewSearch(builder(t), corpus())
	// Only the red herring available: cannot fix the anomaly.
	final, err := s.Discover(NewFeatureSet(), []string{"doublewalk"})
	if err != nil {
		t.Fatal(err)
	}
	if final.Feasible() {
		t.Fatal("doublewalk alone cannot explain the anomaly")
	}
}

func TestEvaluateMemoised(t *testing.T) {
	s := NewSearch(builder(t), corpus())
	a, err := s.Evaluate(NewFeatureSet("abort"), "", OpInitial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Evaluate(NewFeatureSet("abort"), "other", OpPruning)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("evaluation should be memoised")
	}
	if len(s.Nodes()) != 1 {
		t.Fatalf("nodes: %d", len(s.Nodes()))
	}
}

func TestGraphReport(t *testing.T) {
	s := NewSearch(builder(t), corpus())
	if _, err := s.Discover(NewFeatureSet(), []string{"abort"}); err != nil {
		t.Fatal(err)
	}
	rep := s.GraphReport()
	if !strings.Contains(rep, "FEASIBLE") || !strings.Contains(rep, "infeasible") {
		t.Fatalf("report missing verdicts:\n%s", rep)
	}
	if !strings.Contains(rep, "constraint-relaxation") {
		t.Fatalf("report missing discovery edges:\n%s", rep)
	}
}

func TestViolationIdentificationInSearch(t *testing.T) {
	s := NewSearch(builder(t), corpus())
	s.IdentifyViolations = true
	n, err := s.Evaluate(NewFeatureSet(), "", OpInitial)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Violated) == 0 {
		t.Fatal("violations should be identified for the initial model")
	}
	if _, ok := n.Violated["load.pde$_miss <= load.causes_walk"]; !ok {
		t.Fatalf("constraint C should be among violations: %v", n.Violated)
	}
}
