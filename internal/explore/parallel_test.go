package explore

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/haswell"
)

// wideBuilder spans a larger synthetic feature space than the Figure 6
// pair: "abort" is the fix the corpus demands, "redherring0..n" are inert
// switch features whose only effect is to widen every frontier.
func wideBuilder(extra []string) Builder {
	return func(fs FeatureSet) (*core.Model, error) {
		var b strings.Builder
		b.WriteString("do LookupPde$;\n")
		b.WriteString("switch Pde$Status {\n Hit => pass;\n Miss => {\n incr load.pde$_miss;\n")
		if fs["abort"] {
			b.WriteString(" switch Abort { Yes => done; No => pass; };\n")
		}
		b.WriteString(" };\n};\n")
		b.WriteString("incr load.causes_walk;\n")
		for _, f := range extra {
			if fs[f] {
				b.WriteString("switch S" + f + " { Yes => incr load.causes_walk; No => pass; };\n")
			}
		}
		b.WriteString("done;\n")
		set := counters.NewSet("load.causes_walk", "load.pde$_miss")
		return core.ModelFromDSL("feat:"+fs.Key(), b.String(), set)
	}
}

// runSearch drives a full discovery + elimination + classification pass
// and returns everything the acceptance criteria pin: the final model, the
// graph report (node-for-node evaluation order), the minimal models and
// the classification.
func runSearch(t *testing.T, workers int, universe []string, b Builder, obs []*counters.Observation, eng *engine.Engine) (final string, graph string, minimal []string, c Classification) {
	t.Helper()
	s := NewSearch(b, obs)
	s.Workers = workers
	s.Engine = eng
	fin, err := s.Discover(NewFeatureSet(), universe)
	if err != nil {
		t.Fatal(err)
	}
	var min []string
	if fin.Feasible() {
		nodes, err := s.Eliminate(fin, universe)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range nodes {
			min = append(min, n.Features.Key())
		}
	}
	return fin.Features.Key(), s.GraphReport(), min, s.Classify(universe)
}

// TestParallelMatchesSequential pins the tentpole determinism contract on
// a synthetic space: the frontier-parallel search must reproduce the
// sequential reference bit for bit — same final model, same node-for-node
// graph report, same minimal models, same classification.
func TestParallelMatchesSequential(t *testing.T) {
	universe := []string{"abort", "redherring0", "redherring1", "redherring2"}
	b := wideBuilder(universe[1:])
	obs := corpus()
	eng := engine.New(engine.WithWorkers(4))
	defer eng.Close()

	seqFinal, seqGraph, seqMin, seqC := runSearch(t, 1, universe, b, obs, eng)
	parFinal, parGraph, parMin, parC := runSearch(t, 8, universe, b, obs, eng)

	if parFinal != seqFinal {
		t.Fatalf("final model diverged: parallel %q, sequential %q", parFinal, seqFinal)
	}
	if parGraph != seqGraph {
		t.Fatalf("search graph diverged:\n--- sequential ---\n%s--- parallel ---\n%s", seqGraph, parGraph)
	}
	if strings.Join(parMin, ",") != strings.Join(seqMin, ",") {
		t.Fatalf("minimal models diverged: parallel %v, sequential %v", parMin, seqMin)
	}
	if strings.Join(parC.Required, ",") != strings.Join(seqC.Required, ",") ||
		strings.Join(parC.Optional, ",") != strings.Join(seqC.Optional, ",") {
		t.Fatalf("classification diverged: parallel %v/%v, sequential %v/%v",
			parC.Required, parC.Optional, seqC.Required, seqC.Optional)
	}
	if seqFinal != "abort" {
		t.Fatalf("search should converge on {abort}, got %q", seqFinal)
	}
}

// TestParallelMatchesSequentialCatalogue runs the same determinism check
// on the paper's Figure 7/8/10 catalogue search: the Table 3 feature space
// (haswell.SearchUniverse) over a simulated Haswell measurement corpus.
func TestParallelMatchesSequentialCatalogue(t *testing.T) {
	if testing.Short() {
		t.Skip("catalogue search simulates a measurement corpus; skipped in -short")
	}
	obs, err := haswell.BuildCorpus(haswell.QuickCorpusSpec())
	if err != nil {
		t.Fatal(err)
	}
	universe := haswell.SearchUniverse()
	set := haswell.AnalysisSet()
	builder := func(fs FeatureSet) (*core.Model, error) {
		f := haswell.SearchFeatures(func(name string) bool { return fs[name] })
		return haswell.BuildModel("search:"+fs.Key(), f, set)
	}
	// One engine for both runs: the second run hits warm region caches,
	// which must not change any verdict.
	eng := engine.New()
	defer eng.Close()

	seqFinal, seqGraph, seqMin, seqC := runSearch(t, 1, universe, builder, obs, eng)
	parFinal, parGraph, parMin, parC := runSearch(t, 0, universe, builder, obs, eng)

	if parFinal != seqFinal || parGraph != seqGraph || strings.Join(parMin, ",") != strings.Join(seqMin, ",") {
		t.Fatalf("catalogue search diverged:\nfinal %q vs %q\n--- sequential ---\n%s--- parallel ---\n%s",
			parFinal, seqFinal, seqGraph, parGraph)
	}
	if strings.Join(parC.Required, ",") != strings.Join(seqC.Required, ",") ||
		strings.Join(parC.Optional, ",") != strings.Join(seqC.Optional, ",") {
		t.Fatalf("catalogue classification diverged: parallel %v/%v, sequential %v/%v",
			parC.Required, parC.Optional, seqC.Required, seqC.Optional)
	}
	if !strings.Contains(seqFinal, "bypass") {
		t.Fatalf("catalogue discovery should adopt the walk-bypass feature, got %q", seqFinal)
	}
}

// TestSearchEvents checks the structured progress stream: every committed
// node is announced in commit order, adopted features and minimal models
// are called out, and infeasible eliminations are reported as pruned.
func TestSearchEvents(t *testing.T) {
	s := NewSearch(builder(t), corpus())
	s.Workers = 4
	events := make(chan Event, 256)
	s.Events = events

	final, err := s.Discover(NewFeatureSet(), []string{"abort", "doublewalk"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Eliminate(final, []string{"abort", "doublewalk"}); err != nil {
		t.Fatal(err)
	}
	close(events)

	var evaluated []string
	kinds := map[EventKind]int{}
	for ev := range events {
		kinds[ev.Kind]++
		if ev.Kind == EventNodeEvaluated {
			evaluated = append(evaluated, ev.Node.Features.Key())
		}
		if ev.Kind == EventFeatureAdopted && ev.Feature != "abort" {
			t.Fatalf("adopted feature %q, want abort", ev.Feature)
		}
	}
	nodes := s.Nodes()
	if len(evaluated) != len(nodes) {
		t.Fatalf("%d node events for %d nodes", len(evaluated), len(nodes))
	}
	for i, n := range nodes {
		if evaluated[i] != n.Features.Key() {
			t.Fatalf("event %d is %q, graph node %d is %q", i, evaluated[i], i, n.Features.Key())
		}
	}
	if kinds[EventFeatureAdopted] == 0 || kinds[EventMinimalModel] == 0 || kinds[EventSubtreePruned] == 0 {
		t.Fatalf("missing event kinds: %v", kinds)
	}
}

// TestRestoreSkipsEvaluation pins the checkpoint contract: a search
// restored from another's nodes must not rebuild them, and must finish
// with the identical graph.
func TestRestoreSkipsEvaluation(t *testing.T) {
	full := NewSearch(builder(t), corpus())
	if _, err := full.Discover(NewFeatureSet(), []string{"abort", "doublewalk"}); err != nil {
		t.Fatal(err)
	}
	checkpoint := full.Nodes()

	var builds atomic.Int64
	counting := func(fs FeatureSet) (*core.Model, error) {
		builds.Add(1)
		return builder(t)(fs)
	}
	resumed := NewSearch(counting, corpus())
	resumed.Restore(checkpoint)
	if _, err := resumed.Discover(NewFeatureSet(), []string{"abort", "doublewalk"}); err != nil {
		t.Fatal(err)
	}
	if n := builds.Load(); n != 0 {
		t.Fatalf("restored search rebuilt %d models; checkpoint covers the whole discovery phase", n)
	}
	if resumed.GraphReport() != full.GraphReport() {
		t.Fatalf("resumed graph diverged:\n--- original ---\n%s--- resumed ---\n%s",
			full.GraphReport(), resumed.GraphReport())
	}
}

// TestPartialRestoreReproducesSearch restores only a prefix of the graph —
// the checkpoint shape of a job cancelled mid-frontier — and checks the
// continuation reproduces the uninterrupted search exactly.
func TestPartialRestoreReproducesSearch(t *testing.T) {
	universe := []string{"abort", "redherring0", "redherring1"}
	b := wideBuilder(universe[1:])
	full := NewSearch(b, corpus())
	if _, err := full.Discover(NewFeatureSet(), universe); err != nil {
		t.Fatal(err)
	}
	nodes := full.Nodes()
	if len(nodes) < 3 {
		t.Fatalf("test needs a multi-node graph, got %d", len(nodes))
	}
	for cut := 1; cut < len(nodes); cut++ {
		resumed := NewSearch(b, corpus())
		resumed.Restore(nodes[:cut])
		if _, err := resumed.Discover(NewFeatureSet(), universe); err != nil {
			t.Fatal(err)
		}
		if resumed.GraphReport() != full.GraphReport() {
			t.Fatalf("cut at %d diverged:\n--- original ---\n%s--- resumed ---\n%s",
				cut, full.GraphReport(), resumed.GraphReport())
		}
	}
}

// TestFrontierEvaluatesConcurrently guards the parallel path against
// accidental serialization, which a wall-clock benchmark on a single-core
// machine cannot catch: a rendezvous builder requires two frontier
// evaluations to be in flight at once, so a serialized frontier fails
// (with a clear error) instead of deadlocking.
func TestFrontierEvaluatesConcurrently(t *testing.T) {
	universe := []string{"abort", "redherring0", "redherring1"}
	inner := wideBuilder(universe[1:])
	proceed := make(chan struct{})
	var arrivals atomic.Int32
	b := func(fs FeatureSet) (*core.Model, error) {
		if len(fs) > 0 { // frontier builds only; the initial node is sequential
			if arrivals.Add(1) == 2 {
				close(proceed)
			}
			select {
			case <-proceed:
			case <-time.After(10 * time.Second):
				return nil, fmt.Errorf("second frontier evaluation never started: frontier is serialized")
			}
		}
		return inner(fs)
	}
	s := NewSearch(b, corpus())
	s.Workers = 4
	final, err := s.Discover(NewFeatureSet(), universe)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Feasible() {
		t.Fatalf("search did not converge: %s", final.Features)
	}
}

// TestSearchCancellation cancels mid-search and requires a prompt
// context error from both phases.
func TestSearchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewSearch(builder(t), corpus())
	s.Ctx = ctx
	s.Workers = 4
	if _, err := s.Discover(NewFeatureSet(), []string{"abort", "doublewalk"}); err == nil {
		t.Fatal("cancelled discovery should fail")
	}
}
