package explore

import (
	"strings"
	"testing"
)

const pdeTemplate = `
do LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => {
        incr load.pde$_miss;
#if abort
        switch Abort { Yes => done; No => pass; };
#endif
    };
};
incr load.causes_walk;
#if doublewalk
switch Double { Yes => incr load.causes_walk; No => pass; };
#endif
done;
`

func TestTemplateBuilderUniverse(t *testing.T) {
	_, universe, err := TemplateBuilder("tmpl", pdeTemplate, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(universe, ",") != "abort,doublewalk" {
		t.Fatalf("universe: %v", universe)
	}
}

func TestTemplateBuilderInstantiates(t *testing.T) {
	b, universe, err := TemplateBuilder("tmpl", pdeTemplate, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := b(NewFeatureSet())
	if err != nil {
		t.Fatal(err)
	}
	all, err := b(NewFeatureSet(universe...))
	if err != nil {
		t.Fatal(err)
	}
	if base.Name != "tmpl" || all.Name != "tmpl:abort+doublewalk" {
		t.Fatalf("model names: %q, %q", base.Name, all.Name)
	}
	// The abort guard adds a μpath (the Miss/Yes early exit) and
	// doublewalk another switch: the all-features μDD must strictly grow.
	if all.NumPaths() <= base.NumPaths() {
		t.Fatalf("paths: base %d, all %d", base.NumPaths(), all.NumPaths())
	}
}

// TestTemplateSearchFindsAbort runs the Figure 6 search through a template
// instead of a hand-written builder — the exact shape the HTTP API
// submits.
func TestTemplateSearchFindsAbort(t *testing.T) {
	b, universe, err := TemplateBuilder("tmpl", pdeTemplate, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearch(b, corpus())
	final, err := s.Discover(NewFeatureSet(), universe)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Feasible() || !final.Features["abort"] {
		t.Fatalf("template search should discover abort, got %s (infeasible %d)", final.Features, final.Infeasible)
	}
	minimal, err := s.Eliminate(final, universe)
	if err != nil {
		t.Fatal(err)
	}
	if len(minimal) != 1 || minimal[0].Features.Key() != "abort" {
		t.Fatalf("minimal: %v", minimal)
	}
}

func TestTemplateBuilderNesting(t *testing.T) {
	src := `
incr a.x;
#if outer
incr a.y;
#if inner
incr a.z;
#endif
#endif
done;
`
	b, universe, err := TemplateBuilder("n", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(universe, ",") != "inner,outer" {
		t.Fatalf("universe: %v", universe)
	}
	// inner alone is shadowed by the disabled outer guard.
	innerOnly, err := b(NewFeatureSet("inner"))
	if err != nil {
		t.Fatal(err)
	}
	both, err := b(NewFeatureSet("inner", "outer"))
	if err != nil {
		t.Fatal(err)
	}
	if innerOnly.Set.Len() != 1 {
		t.Fatalf("inner-only model should see only a.x, got %d counters", innerOnly.Set.Len())
	}
	if both.Set.Len() != 3 {
		t.Fatalf("full model should see a.x, a.y, a.z, got %d counters", both.Set.Len())
	}
}

func TestTemplateBuilderErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unclosed", "#if f\nincr a.x;\ndone;", "never closed"},
		{"orphan endif", "incr a.x;\n#endif\ndone;", "#endif without #if"},
		{"missing name", "#if\nincr a.x;\n#endif\ndone;", "exactly one feature name"},
		{"two names", "#if a b\nincr a.x;\n#endif\ndone;", "exactly one feature name"},
		{"endif args", "#if a\nincr a.x;\n#endif a\ndone;", "takes no arguments"},
		{"unknown directive", "#else\ndone;", "unknown directive"},
	}
	for _, tc := range cases {
		if _, _, err := TemplateBuilder("t", tc.src, nil); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
