// Package workloads generates deterministic memory-access streams that
// stand in for the paper's benchmark corpus (GAPBS, SPEC2006, PARSEC, YCSB
// plus two microbenchmarks, §7.1).
//
// The paper's reverse-engineering power comes from workloads that stress
// distinct corners of the MMU:
//
//   - Linear: the paper's linear-access microbenchmark, parameterised by
//     footprint, stride and load-store ratio. Sequential page-crossing
//     accesses are what arm the LSQ-side TLB prefetcher (cache-line pairs
//     51→52 ascending, 8→7 descending).
//   - Random: the paper's random-access microbenchmark — defeats the
//     prefetcher, stresses walk merging and PDE-cache misses.
//   - PointerChase: dependent-chain traversal with graph-like locality
//     (GAPBS stand-in).
//   - Zipfian: skewed key-value accesses (YCSB stand-in).
//   - Stencil: repeated sweeps over a modest working set with neighbour
//     touches (PARSEC/SPEC stand-in); small footprints re-loop and expose
//     prefetcher behaviour without any TLB miss stream.
//
// Generators are infinite and deterministic for a given seed.
package workloads

import (
	"fmt"
	"math/rand"
)

// Access is one memory micro-op issued by a workload.
type Access struct {
	VA     uint64
	IsLoad bool
}

// Generator produces an infinite deterministic access stream.
type Generator interface {
	// Name identifies the workload and its parameters.
	Name() string
	// Next returns the next access.
	Next() Access
}

// VABase is where workload heaps start; leaving low VA space empty keeps
// the first PML4/PDPT indices non-trivial.
const VABase = 0x10_0000_0000

// storeEvery converts a load fraction into a deterministic interleaving
// period: one store every k accesses (k=0 means no stores).
func storeEvery(loadRatio float64) int {
	if loadRatio >= 1 {
		return 0
	}
	if loadRatio <= 0 {
		return 1
	}
	k := int(1.0 / (1.0 - loadRatio))
	if k < 1 {
		k = 1
	}
	return k
}

// Linear is the linear-access microbenchmark: an infinite loop striding
// through a footprint, ascending or descending.
type Linear struct {
	name      string
	footprint uint64
	step      uint64 // stride reduced mod footprint: all offset arithmetic stays in [0, footprint)
	desc      bool
	every     int
	off       uint64
	count     int
}

// NewLinear builds a linear generator. stride is in bytes; loadRatio in
// [0,1] sets the fraction of loads; descending reverses direction.
func NewLinear(footprint, stride uint64, loadRatio float64, descending bool) (*Linear, error) {
	if footprint == 0 || stride == 0 {
		return nil, fmt.Errorf("workloads: linear needs positive footprint and stride")
	}
	dir := "asc"
	if descending {
		dir = "desc"
	}
	return &Linear{
		name: fmt.Sprintf("linear[fp=%d,stride=%d,load=%.2f,%s]",
			footprint, stride, loadRatio, dir),
		footprint: footprint,
		step:      stride % footprint,
		desc:      descending,
		every:     storeEvery(loadRatio),
	}, nil
}

// Name implements Generator.
func (l *Linear) Name() string { return l.name }

// Next implements Generator.
func (l *Linear) Next() Access {
	var va uint64
	if l.desc {
		// The descending offset is -(off+step) mod footprint. Both operands
		// are already reduced mod footprint, so the subtraction cannot wrap
		// below zero the way footprint-stride-off did whenever stride did
		// not divide footprint; the trailing %footprint folds the pos==0
		// case back to offset 0.
		pos := (l.off + l.step) % l.footprint
		va = VABase + (l.footprint-pos)%l.footprint
	} else {
		va = VABase + l.off
	}
	l.off = (l.off + l.step) % l.footprint
	l.count++
	isLoad := l.every == 0 || l.count%l.every != 0
	return Access{VA: va, IsLoad: isLoad}
}

// Random is the random-access microbenchmark: uniform accesses over the
// footprint, defeating every prefetcher.
type Random struct {
	name      string
	footprint uint64
	every     int
	rng       *rand.Rand
	count     int
}

// NewRandom builds a random generator with the given seed. The footprint
// must cover at least one 8-byte slot: Next derives addresses from
// footprint/8 slots, so footprints 1–7 would divide by zero.
func NewRandom(footprint uint64, loadRatio float64, seed int64) (*Random, error) {
	if footprint < 8 {
		return nil, fmt.Errorf("workloads: random needs a footprint of at least 8 bytes, got %d", footprint)
	}
	return &Random{
		name:      fmt.Sprintf("random[fp=%d,load=%.2f]", footprint, loadRatio),
		footprint: footprint,
		every:     storeEvery(loadRatio),
		rng:       rand.New(rand.NewSource(seed)),
	}, nil
}

// Name implements Generator.
func (r *Random) Name() string { return r.name }

// Next implements Generator.
func (r *Random) Next() Access {
	va := VABase + (r.rng.Uint64()%(r.footprint/8))*8
	r.count++
	isLoad := r.every == 0 || r.count%r.every != 0
	return Access{VA: va, IsLoad: isLoad}
}

// PointerChase traverses a pseudo-random permutation cycle — dependent
// loads with poor locality, like graph analytics (GAPBS stand-in).
type PointerChase struct {
	name  string
	nodes []uint64
	cur   int
}

// NewPointerChase builds a chase over footprint bytes with 64-byte nodes.
func NewPointerChase(footprint uint64, seed int64) (*PointerChase, error) {
	n := int(footprint / 64)
	if n < 2 {
		return nil, fmt.Errorf("workloads: pointer chase needs at least 128 bytes")
	}
	if n > 1<<22 {
		n = 1 << 22 // cap index memory; the cycle still spans the footprint
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	nodes := make([]uint64, n)
	stride := footprint / uint64(n)
	for i, p := range perm {
		nodes[i] = VABase + uint64(p)*stride
	}
	return &PointerChase{
		name:  fmt.Sprintf("pointerchase[fp=%d]", footprint),
		nodes: nodes,
	}, nil
}

// Name implements Generator.
func (p *PointerChase) Name() string { return p.name }

// Next implements Generator.
func (p *PointerChase) Next() Access {
	va := p.nodes[p.cur]
	p.cur = (p.cur + 1) % len(p.nodes)
	return Access{VA: va, IsLoad: true}
}

// Zipfian issues skewed accesses over a key space (YCSB stand-in): hot keys
// dominate, cold keys stress the TLB tail.
type Zipfian struct {
	name  string
	zipf  *rand.Zipf
	rng   *rand.Rand
	slot  uint64
	every int
	count int
}

// NewZipfian builds a zipfian generator with skew s > 1 over footprint
// bytes in 64-byte slots.
func NewZipfian(footprint uint64, s float64, loadRatio float64, seed int64) (*Zipfian, error) {
	slots := footprint / 64
	if slots < 2 {
		return nil, fmt.Errorf("workloads: zipfian needs at least 128 bytes")
	}
	if s <= 1 {
		return nil, fmt.Errorf("workloads: zipfian skew must be > 1, got %g", s)
	}
	rng := rand.New(rand.NewSource(seed))
	return &Zipfian{
		name:  fmt.Sprintf("zipfian[fp=%d,s=%.2f,load=%.2f]", footprint, s, loadRatio),
		zipf:  rand.NewZipf(rng, s, 1, slots-1),
		rng:   rng,
		slot:  slots,
		every: storeEvery(loadRatio),
	}, nil
}

// Name implements Generator.
func (z *Zipfian) Name() string { return z.name }

// Next implements Generator.
func (z *Zipfian) Next() Access {
	// Spread ranks over the address space so hot keys are not all on one
	// page: multiply by a large odd constant mod slots.
	rank := z.zipf.Uint64()
	slot := (rank * 2654435761) % z.slot
	z.count++
	isLoad := z.every == 0 || z.count%z.every != 0
	return Access{VA: VABase + slot*64, IsLoad: isLoad}
}

// Stencil sweeps a working set repeatedly touching each element and its
// neighbours (PARSEC/SPEC stand-in). Small footprints loop forever with
// no steady-state TLB misses, which is exactly the regime that isolates
// LSQ-side prefetcher activity from the miss stream (Appendix C.2).
type Stencil struct {
	name      string
	footprint uint64
	off       uint64
	phase     int
	every     int
	count     int
}

// NewStencil builds a stencil sweep over footprint bytes.
func NewStencil(footprint uint64, loadRatio float64) (*Stencil, error) {
	if footprint < 192 {
		return nil, fmt.Errorf("workloads: stencil needs at least 192 bytes")
	}
	return &Stencil{
		name:      fmt.Sprintf("stencil[fp=%d,load=%.2f]", footprint, loadRatio),
		footprint: footprint,
		every:     storeEvery(loadRatio),
	}, nil
}

// Name implements Generator.
func (s *Stencil) Name() string { return s.name }

// Next implements Generator.
func (s *Stencil) Next() Access {
	var va uint64
	switch s.phase {
	case 0: // left neighbour
		va = VABase + (s.off+s.footprint-64)%s.footprint
	case 1: // centre
		va = VABase + s.off
	default: // right neighbour, then advance
		va = VABase + (s.off+64)%s.footprint
		s.off = (s.off + 64) % s.footprint
	}
	s.phase = (s.phase + 1) % 3
	s.count++
	isLoad := s.every == 0 || s.count%s.every != 0
	return Access{VA: va, IsLoad: isLoad}
}

// Take drains n accesses from g into a slice (test/bench helper).
func Take(g Generator, n int) []Access {
	out := make([]Access, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// RandomBurst picks a random page and issues a burst of accesses to it
// before jumping to another page — the object-access pattern (read many
// fields of one heap object, then chase to the next). Bursts are what
// exercise MMU MSHR merging: every access of a burst lands on the same
// page while its walk is outstanding, and with early paging-structure-cache
// lookup each merged request can miss the PDE cache, driving
// pde$_miss above causes_walk (the paper's §1 anomaly).
type RandomBurst struct {
	name      string
	footprint uint64
	burst     int
	every     int
	rng       *rand.Rand
	cur       uint64
	left      int
	count     int
}

// NewRandomBurst builds a burst-random generator: bursts of burstLen
// accesses to 64-byte-spaced addresses within one random 4 KB page.
func NewRandomBurst(footprint uint64, burstLen int, loadRatio float64, seed int64) (*RandomBurst, error) {
	if footprint < 4096 {
		return nil, fmt.Errorf("workloads: random burst needs at least one page")
	}
	if burstLen < 1 {
		return nil, fmt.Errorf("workloads: burst length must be positive")
	}
	return &RandomBurst{
		name: fmt.Sprintf("randburst[fp=%d,burst=%d,load=%.2f]",
			footprint, burstLen, loadRatio),
		footprint: footprint,
		burst:     burstLen,
		every:     storeEvery(loadRatio),
		rng:       rand.New(rand.NewSource(seed)),
	}, nil
}

// Name implements Generator.
func (r *RandomBurst) Name() string { return r.name }

// Next implements Generator.
func (r *RandomBurst) Next() Access {
	if r.left == 0 {
		pages := r.footprint / 4096
		r.cur = VABase + (r.rng.Uint64()%pages)*4096
		r.left = r.burst
	}
	off := uint64(r.rng.Intn(64)) * 64
	r.left--
	r.count++
	isLoad := r.every == 0 || r.count%r.every != 0
	return Access{VA: r.cur + off, IsLoad: isLoad}
}

// Phased alternates between two sub-generators with fixed phase lengths.
// Phase changes on a timescale comparable to the multiplexing quantum make
// per-slice counter rates non-stationary, which is what turns counter
// multiplexing into measurement noise (Figure 1c): an extrapolated counter
// sampled only during quiet phases under-reports, and vice versa.
type Phased struct {
	name string
	a, b Generator
	lenA int
	lenB int
	pos  int
}

// NewPhased interleaves lenA accesses from a with lenB accesses from b.
func NewPhased(a Generator, lenA int, b Generator, lenB int) (*Phased, error) {
	if lenA < 1 || lenB < 1 {
		return nil, fmt.Errorf("workloads: phase lengths must be positive")
	}
	return &Phased{
		name: fmt.Sprintf("phased[%s:%d|%s:%d]", a.Name(), lenA, b.Name(), lenB),
		a:    a, b: b, lenA: lenA, lenB: lenB,
	}, nil
}

// Name implements Generator.
func (p *Phased) Name() string { return p.name }

// Next implements Generator.
func (p *Phased) Next() Access {
	period := p.lenA + p.lenB
	inA := p.pos%period < p.lenA
	p.pos++
	if inA {
		return p.a.Next()
	}
	return p.b.Next()
}
