package workloads

import (
	"testing"
)

func TestLinearAscending(t *testing.T) {
	g, err := NewLinear(4096, 64, 1.0, false)
	if err != nil {
		t.Fatal(err)
	}
	a0 := g.Next()
	a1 := g.Next()
	if a0.VA != VABase || a1.VA != VABase+64 {
		t.Fatalf("addresses: %#x %#x", a0.VA, a1.VA)
	}
	if !a0.IsLoad || !a1.IsLoad {
		t.Fatal("loadRatio 1.0 should be all loads")
	}
	// Wraps around the footprint.
	for i := 0; i < 62; i++ {
		g.Next()
	}
	if a := g.Next(); a.VA != VABase {
		t.Fatalf("wrap: %#x", a.VA)
	}
}

func TestLinearDescending(t *testing.T) {
	g, err := NewLinear(4096, 64, 1.0, true)
	if err != nil {
		t.Fatal(err)
	}
	a0 := g.Next()
	a1 := g.Next()
	if a0.VA <= a1.VA {
		t.Fatalf("descending should decrease: %#x then %#x", a0.VA, a1.VA)
	}
}

// TestLinearDescendingNonDividingStride is the regression test for the
// uint64 underflow in the descending offset arithmetic: with
// footprint=100, stride=64 the old footprint-stride-off expression wrapped
// below zero once off exceeded footprint-stride, producing 2^64-wrapped
// addresses (offset 88 where the descending sweep should visit 72).
func TestLinearDescendingNonDividingStride(t *testing.T) {
	g, err := NewLinear(100, 64, 1.0, true)
	if err != nil {
		t.Fatal(err)
	}
	// The descending sweep visits -(k+1)*64 mod 100.
	want := []uint64{36, 72, 8, 44, 80, 16, 52, 88, 24, 60, 96, 32, 68, 4, 40}
	for k, w := range want {
		a := g.Next()
		if a.VA != VABase+w {
			t.Fatalf("access %d: offset %d, want %d", k, a.VA-VABase, w)
		}
		if a.VA < VABase || a.VA >= VABase+100 {
			t.Fatalf("access %d escaped the footprint: %#x", k, a.VA)
		}
	}
}

// TestLinearDescendingStrideEqualsHalfFootprint pins the pos==0 edge: when
// off+stride lands exactly on the footprint the descending offset must fold
// back to 0, not footprint.
func TestLinearDescendingStrideEqualsHalfFootprint(t *testing.T) {
	g, err := NewLinear(128, 64, 1.0, true)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range []uint64{64, 0, 64, 0} {
		if a := g.Next(); a.VA != VABase+w {
			t.Fatalf("access %d: offset %d, want %d", k, a.VA-VABase, w)
		}
	}
}

func TestLinearStoreRatio(t *testing.T) {
	g, err := NewLinear(1<<20, 64, 0.75, false)
	if err != nil {
		t.Fatal(err)
	}
	loads := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if g.Next().IsLoad {
			loads++
		}
	}
	ratio := float64(loads) / n
	if ratio < 0.70 || ratio > 0.80 {
		t.Fatalf("load ratio %g, want ~0.75", ratio)
	}
	// Store-only.
	gs, _ := NewLinear(1<<20, 64, 0.0, false)
	for i := 0; i < 100; i++ {
		if gs.Next().IsLoad {
			t.Fatal("loadRatio 0 should be all stores")
		}
	}
}

func TestLinearErrors(t *testing.T) {
	if _, err := NewLinear(0, 64, 1, false); err == nil {
		t.Fatal("zero footprint should error")
	}
	if _, err := NewLinear(4096, 0, 1, false); err == nil {
		t.Fatal("zero stride should error")
	}
}

func TestRandomStaysInFootprint(t *testing.T) {
	const fp = 1 << 20
	g, err := NewRandom(fp, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		a := g.Next()
		if a.VA < VABase || a.VA >= VABase+fp {
			t.Fatalf("out of footprint: %#x", a.VA)
		}
	}
}

// TestRandomTinyFootprintRejected is the regression test for the
// modulo-by-zero panic: NewRandom used to accept footprints 1–7, whose
// footprint/8 slot count is zero, so the first Next panicked.
func TestRandomTinyFootprintRejected(t *testing.T) {
	for _, fp := range []uint64{0, 1, 4, 7} {
		if _, err := NewRandom(fp, 1.0, 1); err == nil {
			t.Errorf("footprint %d should be rejected", fp)
		}
	}
	// The minimum footprint works and stays inside its single slot.
	g, err := NewRandom(8, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a := g.Next(); a.VA != VABase {
			t.Fatalf("one-slot footprint must pin VA to VABase, got %#x", a.VA)
		}
	}
}

// TestMinimumFootprints covers every generator's minimum-footprint edge the
// same way: one byte under the minimum is rejected, the minimum itself
// produces in-range accesses.
func TestMinimumFootprints(t *testing.T) {
	cases := []struct {
		name string
		min  uint64
		mk   func(fp uint64) (Generator, error)
	}{
		{"random", 8, func(fp uint64) (Generator, error) { return NewRandom(fp, 1.0, 1) }},
		{"randomburst", 4096, func(fp uint64) (Generator, error) { return NewRandomBurst(fp, 4, 1.0, 1) }},
		{"zipfian", 128, func(fp uint64) (Generator, error) { return NewZipfian(fp, 1.2, 1.0, 1) }},
		{"stencil", 192, func(fp uint64) (Generator, error) { return NewStencil(fp, 1.0) }},
		{"pointerchase", 128, func(fp uint64) (Generator, error) { return NewPointerChase(fp, 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.mk(tc.min - 1); err == nil {
				t.Fatalf("footprint %d should be rejected", tc.min-1)
			}
			g, err := tc.mk(tc.min)
			if err != nil {
				t.Fatalf("minimum footprint %d rejected: %v", tc.min, err)
			}
			for i := 0; i < 500; i++ {
				if a := g.Next(); a.VA < VABase || a.VA >= VABase+tc.min {
					t.Fatalf("access %d out of [VABase, VABase+%d): %#x", i, tc.min, a.VA)
				}
			}
		})
	}
}

func TestRandomDeterministic(t *testing.T) {
	g1, _ := NewRandom(1<<20, 0.5, 42)
	g2, _ := NewRandom(1<<20, 0.5, 42)
	for i := 0; i < 100; i++ {
		if g1.Next() != g2.Next() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRandomBurstStructure(t *testing.T) {
	g, err := NewRandomBurst(1<<24, 8, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	accs := Take(g, 16)
	page := func(a Access) uint64 { return a.VA >> 12 }
	for i := 1; i < 8; i++ {
		if page(accs[i]) != page(accs[0]) {
			t.Fatalf("burst access %d left the page", i)
		}
	}
	for i := 9; i < 16; i++ {
		if page(accs[i]) != page(accs[8]) {
			t.Fatalf("second burst access %d left the page", i)
		}
	}
}

func TestRandomBurstErrors(t *testing.T) {
	if _, err := NewRandomBurst(100, 8, 1, 1); err == nil {
		t.Fatal("small footprint should error")
	}
	if _, err := NewRandomBurst(1<<20, 0, 1, 1); err == nil {
		t.Fatal("zero burst should error")
	}
}

func TestPointerChaseCyclesAllNodes(t *testing.T) {
	g, err := NewPointerChase(64*16, 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		seen[g.Next().VA] = true
	}
	if len(seen) != 16 {
		t.Fatalf("cycle covered %d nodes, want 16", len(seen))
	}
	// Second lap repeats the same nodes.
	if !seen[g.Next().VA] {
		t.Fatal("second lap should repeat")
	}
}

func TestZipfianSkew(t *testing.T) {
	g, err := NewZipfian(1<<20, 1.5, 1.0, 9)
	if err != nil {
		t.Fatal(err)
	}
	freq := map[uint64]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		freq[g.Next().VA]++
	}
	max := 0
	for _, c := range freq {
		if c > max {
			max = c
		}
	}
	if max < n/20 {
		t.Fatalf("zipf should be skewed: hottest slot only %d/%d", max, n)
	}
	if _, err := NewZipfian(1<<20, 0.5, 1, 1); err == nil {
		t.Fatal("skew <= 1 should error")
	}
}

func TestStencilTouchesNeighbours(t *testing.T) {
	g, err := NewStencil(4096, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	a := Take(g, 3)
	// left neighbour (wrapped), centre, right.
	if a[1].VA != VABase {
		t.Fatalf("centre: %#x", a[1].VA)
	}
	if a[0].VA != VABase+4096-64 {
		t.Fatalf("left wrap: %#x", a[0].VA)
	}
	if a[2].VA != VABase+64 {
		t.Fatalf("right: %#x", a[2].VA)
	}
	if _, err := NewStencil(64, 1); err == nil {
		t.Fatal("tiny stencil should error")
	}
}

func TestTake(t *testing.T) {
	g, _ := NewLinear(4096, 64, 1, false)
	if got := len(Take(g, 7)); got != 7 {
		t.Fatalf("take: %d", got)
	}
}

func TestNamesAreDescriptive(t *testing.T) {
	gens := []Generator{}
	l, _ := NewLinear(4096, 64, 0.5, true)
	r, _ := NewRandom(1<<20, 1, 1)
	b, _ := NewRandomBurst(1<<20, 8, 1, 1)
	p, _ := NewPointerChase(1<<12, 1)
	z, _ := NewZipfian(1<<20, 1.2, 1, 1)
	s, _ := NewStencil(4096, 1)
	gens = append(gens, l, r, b, p, z, s)
	seen := map[string]bool{}
	for _, g := range gens {
		n := g.Name()
		if n == "" || seen[n] {
			t.Fatalf("name %q empty or duplicated", n)
		}
		seen[n] = true
	}
}
