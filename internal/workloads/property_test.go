package workloads

import (
	"testing"
)

// generatorCase is one parameterisation of a Generator constructor, used to
// check the package-wide contract every workload relies on — and that the
// sweep's checkpoint/resume machinery depends on: accesses stay inside
// [VABase, VABase+footprint), respect the generator's alignment, and replay
// bit-identically for a fixed seed.
type generatorCase struct {
	name      string
	footprint uint64
	align     uint64 // every VA-VABase must be a multiple of this (0 skips)
	mk        func() (Generator, error)
}

func propertyCases() []generatorCase {
	var cases []generatorCase
	add := func(name string, fp, align uint64, mk func() (Generator, error)) {
		cases = append(cases, generatorCase{name: name, footprint: fp, align: align, mk: mk})
	}
	// Linear: dividing and non-dividing strides, both directions, with the
	// regression parameters (fp=100, stride=64) included. Alignment is only
	// guaranteed when the stride divides the footprint (otherwise offsets
	// walk the full gcd lattice).
	add("linear-asc-div", 4096, 64, func() (Generator, error) { return NewLinear(4096, 64, 1.0, false) })
	add("linear-desc-div", 4096, 64, func() (Generator, error) { return NewLinear(4096, 64, 0.8, true) })
	add("linear-asc-nondiv", 100, 4, func() (Generator, error) { return NewLinear(100, 64, 1.0, false) })
	add("linear-desc-nondiv", 100, 4, func() (Generator, error) { return NewLinear(100, 64, 1.0, true) })
	add("linear-desc-bigstride", 96, 0, func() (Generator, error) { return NewLinear(96, 1000, 1.0, true) })
	add("random-small", 64, 8, func() (Generator, error) { return NewRandom(64, 1.0, 11) })
	add("random-odd", 1<<20+13, 8, func() (Generator, error) { return NewRandom(1<<20+13, 0.5, 12) })
	add("randomburst", 1<<20, 64, func() (Generator, error) { return NewRandomBurst(1<<20, 8, 0.9, 13) })
	add("randomburst-onepage", 4096, 64, func() (Generator, error) { return NewRandomBurst(4096, 3, 1.0, 14) })
	add("pointerchase", 64*128, 64, func() (Generator, error) { return NewPointerChase(64*128, 15) })
	add("zipfian", 1<<18, 64, func() (Generator, error) { return NewZipfian(1<<18, 1.3, 0.7, 16) })
	add("stencil", 4096, 64, func() (Generator, error) { return NewStencil(4096, 0.9) })
	add("stencil-min", 192, 64, func() (Generator, error) { return NewStencil(192, 1.0) })
	add("phased", 4096, 8, func() (Generator, error) {
		a, err := NewLinear(4096, 64, 1.0, false)
		if err != nil {
			return nil, err
		}
		b, err := NewRandom(2048, 1.0, 17)
		if err != nil {
			return nil, err
		}
		return NewPhased(a, 5, b, 3)
	})
	return cases
}

func TestGeneratorsStayInFootprint(t *testing.T) {
	const n = 10000
	for _, tc := range propertyCases() {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				a := g.Next()
				if a.VA < VABase || a.VA >= VABase+tc.footprint {
					t.Fatalf("access %d out of [VABase, VABase+%d): offset %d",
						i, tc.footprint, int64(a.VA)-int64(VABase))
				}
			}
		})
	}
}

func TestGeneratorsRespectAlignment(t *testing.T) {
	const n = 10000
	for _, tc := range propertyCases() {
		if tc.align == 0 {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				a := g.Next()
				if (a.VA-VABase)%tc.align != 0 {
					t.Fatalf("access %d misaligned: offset %d %% %d != 0",
						i, a.VA-VABase, tc.align)
				}
			}
		})
	}
}

// TestGeneratorsReplayBitIdentically pins the determinism contract: two
// generators built with identical parameters produce identical access
// streams — VAs and load/store flags both. Sweep resume rebuilds its base
// corpus from the same seeds and must get the same samples back.
func TestGeneratorsReplayBitIdentically(t *testing.T) {
	const n = 5000
	for _, tc := range propertyCases() {
		t.Run(tc.name, func(t *testing.T) {
			g1, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			g2, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			if g1.Name() != g2.Name() {
				t.Fatalf("names diverge: %q vs %q", g1.Name(), g2.Name())
			}
			for i := 0; i < n; i++ {
				a1, a2 := g1.Next(), g2.Next()
				if a1 != a2 {
					t.Fatalf("access %d diverged: %+v vs %+v", i, a1, a2)
				}
			}
		})
	}
}
