package core

// Content-addressed LP identity. canonicalizing a feasibility LP to a
// deterministic byte encoding — stable row order, primitive integer
// rows, reduced rationals — gives every LP a content hash that survives
// serialization boundaries: two Problems built independently (different
// pointers, different row order, scaled rows) hash equal exactly when
// they denote the same constraint system. The engine keys its verdict
// cache on this hash, and internal/perfdb persists verdicts under it, so
// cache hits outlive a counterpointd restart and can be shared across
// future distributed workers (ROADMAP).
//
// Canonical form, one text line per constraint:
//
//	clp1
//	v <numVars>
//	f <free indices, ascending>           (omitted when none)
//	o <min|max> <c0> <c1> ...             (omitted for feasibility LPs)
//	c <le|eq> <a0> ... <a(n-1)> <rhs>
//
// Rows are scaled to primitive integers (GE rows are negated onto LE
// first; EQ rows get a positive leading sign), byte-sorted and
// deduplicated — all equivalence transformations of the feasible set.
// The hash is SHA-256 over the encoding.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/big"
	"sort"
	"strconv"
	"strings"

	"repro/internal/exact"
	"repro/internal/simplex"
)

// LPHash is the SHA-256 of an LP's canonical encoding.
type LPHash [32]byte

// String returns the hash in hex.
func (h LPHash) String() string { return hex.EncodeToString(h[:]) }

// ParseLPHash parses the hex form produced by String.
func ParseLPHash(s string) (LPHash, error) {
	var h LPHash
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("core: bad LP hash %q: %w", s, err)
	}
	if len(b) != len(h) {
		return h, fmt.Errorf("core: bad LP hash %q: want %d bytes, got %d", s, len(h), len(b))
	}
	copy(h[:], b)
	return h, nil
}

// HashLP returns the content hash of p's canonical form.
func HashLP(p *simplex.Problem) LPHash {
	return sha256.Sum256(EncodeLP(p))
}

// EncodeLP returns p's canonical encoding. Encoding never fails: rows
// outside the int64 fast path take a big.Int slow path with identical
// output on the shared domain.
func EncodeLP(p *simplex.Problem) []byte {
	var buf bytes.Buffer
	buf.WriteString("clp1\nv ")
	buf.WriteString(strconv.Itoa(p.NumVars))
	buf.WriteByte('\n')
	if p.Free != nil {
		first := true
		for i, f := range p.Free {
			if !f {
				continue
			}
			if first {
				buf.WriteString("f")
				first = false
			}
			buf.WriteByte(' ')
			buf.WriteString(strconv.Itoa(i))
		}
		if !first {
			buf.WriteByte('\n')
		}
	}
	if p.Objective != nil {
		if p.Sense == simplex.Maximize {
			buf.WriteString("o max")
		} else {
			buf.WriteString("o min")
		}
		for _, c := range p.Objective {
			buf.WriteByte(' ')
			buf.WriteString(c.RatString())
		}
		buf.WriteByte('\n')
	}
	rows := make([]string, len(p.Constraints))
	for i := range p.Constraints {
		rows[i] = canonRowLine(p, i)
	}
	sort.Strings(rows)
	prev := ""
	for _, r := range rows {
		if r == prev {
			continue // duplicate constraints denote one half-space
		}
		prev = r
		buf.WriteString(r)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// canonRowLine renders constraint i in canonical primitive-integer form.
func canonRowLine(p *simplex.Problem, i int) string {
	rel := p.Constraints[i].Rel
	if v, rhs, ok := p.SnapshotRow(i); ok {
		if s, ok := canonRowFast(v, rhs, rel); ok {
			return s
		}
	}
	return canonRowBig(&p.Constraints[i])
}

// canonRowFast is the overflow-checked int64 canonicalization.
func canonRowFast(v exact.Vec64, rhs exact.Rat64, rel simplex.Rel) (string, bool) {
	n := len(v.Num)
	ints := make([]int64, n+1)
	// Common scale L = lcm(v.Den, rhs.Den()).
	g := int64(exact.GCD64(uint64(v.Den), uint64(rhs.Den())))
	l, ok := exact.MulInt64(v.Den, rhs.Den()/g)
	if !ok {
		return "", false
	}
	cs, rs := l/v.Den, l/rhs.Den()
	for j, num := range v.Num {
		ints[j], ok = exact.MulInt64(num, cs)
		if !ok {
			return "", false
		}
	}
	ints[n], ok = exact.MulInt64(rhs.Num(), rs)
	if !ok {
		return "", false
	}
	negate := rel == simplex.GE
	if rel == simplex.EQ {
		for _, x := range ints {
			if x != 0 {
				negate = x < 0
				break
			}
		}
	}
	var gg uint64
	for _, x := range ints {
		if x != 0 {
			gg = exact.GCD64(gg, exact.AbsU64(x))
		}
	}
	if gg > 1 {
		for j := range ints {
			ints[j] /= int64(gg)
		}
	}
	if negate {
		for j, x := range ints {
			if x == int64(-1)<<63 {
				return "", false
			}
			ints[j] = -x
		}
	}
	var sb strings.Builder
	if rel == simplex.EQ {
		sb.WriteString("c eq")
	} else {
		sb.WriteString("c le")
	}
	for _, x := range ints {
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatInt(x, 10))
	}
	return sb.String(), true
}

// canonRowBig is the arbitrary-precision canonicalization, bit-identical
// to canonRowFast on the shared domain.
func canonRowBig(con *simplex.Constraint) string {
	n := len(con.Coeffs)
	scale := new(big.Int).Set(con.RHS.Denom())
	g := new(big.Int)
	for _, c := range con.Coeffs {
		d := c.Denom()
		g.GCD(nil, nil, scale, d)
		scale.Div(scale, g)
		scale.Mul(scale, d)
	}
	ints := make([]*big.Int, n+1)
	for j, c := range con.Coeffs {
		v := new(big.Int).Div(scale, c.Denom())
		ints[j] = v.Mul(v, c.Num())
	}
	v := new(big.Int).Div(scale, con.RHS.Denom())
	ints[n] = v.Mul(v, con.RHS.Num())
	negate := con.Rel == simplex.GE
	if con.Rel == simplex.EQ {
		for _, x := range ints {
			if x.Sign() != 0 {
				negate = x.Sign() < 0
				break
			}
		}
	}
	g.SetInt64(0)
	abs := new(big.Int)
	for _, x := range ints {
		if x.Sign() == 0 {
			continue
		}
		if g.Sign() == 0 {
			g.Abs(x)
			continue
		}
		g.GCD(nil, nil, g, abs.Abs(x))
	}
	if g.Cmp(big.NewInt(1)) > 0 {
		for _, x := range ints {
			x.Div(x, g)
		}
	}
	if negate {
		for _, x := range ints {
			x.Neg(x)
		}
	}
	var sb strings.Builder
	if con.Rel == simplex.EQ {
		sb.WriteString("c eq")
	} else {
		sb.WriteString("c le")
	}
	for _, x := range ints {
		sb.WriteByte(' ')
		sb.WriteString(x.String())
	}
	return sb.String()
}

// DecodeLP reconstructs a Problem from a canonical encoding. The result
// denotes the same feasible set (and objective) as the encoded LP; its
// rows are the canonical ones, so EncodeLP(DecodeLP(e)) == e for any e
// produced by EncodeLP.
func DecodeLP(data []byte) (*simplex.Problem, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() || sc.Text() != "clp1" {
		return nil, fmt.Errorf("core: not a canonical LP encoding")
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("core: truncated LP encoding")
	}
	head := strings.Fields(sc.Text())
	if len(head) != 2 || head[0] != "v" {
		return nil, fmt.Errorf("core: bad variable header %q", sc.Text())
	}
	n, err := strconv.Atoi(head[1])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("core: bad variable count %q", head[1])
	}
	p := simplex.NewProblem(n)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "f":
			for _, tok := range fields[1:] {
				idx, err := strconv.Atoi(tok)
				if err != nil || idx < 0 || idx >= n {
					return nil, fmt.Errorf("core: bad free index %q", tok)
				}
				p.MarkFree(idx)
			}
		case "o":
			if len(fields) != n+2 {
				return nil, fmt.Errorf("core: objective width %d, want %d", len(fields)-2, n)
			}
			switch fields[1] {
			case "min":
				p.Sense = simplex.Minimize
			case "max":
				p.Sense = simplex.Maximize
			default:
				return nil, fmt.Errorf("core: bad objective sense %q", fields[1])
			}
			p.Objective = exact.NewVec(n)
			for j, tok := range fields[2:] {
				if _, ok := p.Objective[j].SetString(tok); !ok {
					return nil, fmt.Errorf("core: bad objective coefficient %q", tok)
				}
			}
		case "c":
			if len(fields) != n+3 {
				return nil, fmt.Errorf("core: row width %d, want %d", len(fields)-2, n+1)
			}
			var rel simplex.Rel
			switch fields[1] {
			case "le":
				rel = simplex.LE
			case "eq":
				rel = simplex.EQ
			default:
				return nil, fmt.Errorf("core: bad row relation %q", fields[1])
			}
			coeffs, rhs := p.GrowConstraint(rel)
			for j, tok := range fields[2 : n+2] {
				if _, ok := coeffs[j].SetString(tok); !ok {
					return nil, fmt.Errorf("core: bad coefficient %q", tok)
				}
			}
			if _, ok := rhs.SetString(fields[n+2]); !ok {
				return nil, fmt.Errorf("core: bad right-hand side %q", fields[n+2])
			}
		default:
			return nil, fmt.Errorf("core: unknown encoding line %q", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: scanning LP encoding: %w", err)
	}
	return p, nil
}
