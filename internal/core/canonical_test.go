package core

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/simplex"
)

// randomProblem builds a random feasibility LP with small rational
// coefficients, occasionally free variables, and a mix of relations,
// including degenerate zero rows and duplicate rows.
func randomProblem(rng *rand.Rand) *simplex.Problem {
	n := 1 + rng.Intn(5)
	p := simplex.NewProblem(n)
	for j := 0; j < n; j++ {
		if rng.Intn(4) == 0 {
			p.MarkFree(j)
		}
	}
	rows := 1 + rng.Intn(7)
	for i := 0; i < rows; i++ {
		rel := simplex.LE
		switch rng.Intn(4) {
		case 0:
			rel = simplex.GE
		case 1:
			rel = simplex.EQ
		}
		coeffs, rhs := p.GrowConstraint(rel)
		den := int64(1) << uint(rng.Intn(6))
		for j := range coeffs {
			if rng.Intn(3) == 0 {
				continue // leave zero
			}
			coeffs[j].SetFrac64(int64(rng.Intn(41)-20), den)
		}
		rhs.SetFrac64(int64(rng.Intn(61)-20), 1+int64(rng.Intn(7)))
		if i > 0 && rng.Intn(5) == 0 {
			// Duplicate a prior row verbatim: must not change the hash.
			src := &p.Constraints[rng.Intn(i)]
			dup, drhs := p.GrowConstraint(src.Rel)
			for j := range dup {
				dup[j].Set(src.Coeffs[j])
			}
			drhs.Set(src.RHS)
		}
	}
	return p
}

// permuted returns a copy of p with its rows in a random order.
func permuted(p *simplex.Problem, rng *rand.Rand) *simplex.Problem {
	q := simplex.NewProblem(p.NumVars)
	for j := 0; j < p.NumVars; j++ {
		if p.Free != nil && p.Free[j] {
			q.MarkFree(j)
		}
	}
	if p.Objective != nil {
		q.Sense = p.Sense
		q.Objective = exact.NewVec(len(p.Objective))
		for j := range p.Objective {
			q.Objective[j].Set(p.Objective[j])
		}
	}
	order := rng.Perm(len(p.Constraints))
	for _, i := range order {
		src := &p.Constraints[i]
		coeffs, rhs := q.GrowConstraint(src.Rel)
		for j := range coeffs {
			coeffs[j].Set(src.Coeffs[j])
		}
		rhs.Set(src.RHS)
	}
	return q
}

// scaledRows returns a copy of p with every row multiplied by a positive
// rational (and LE/GE rows optionally rewritten as the negated opposite
// relation) — pure equivalence transformations of the feasible set.
func scaledRows(p *simplex.Problem, rng *rand.Rand) *simplex.Problem {
	q := simplex.NewProblem(p.NumVars)
	for j := 0; j < p.NumVars; j++ {
		if p.Free != nil && p.Free[j] {
			q.MarkFree(j)
		}
	}
	var m big.Rat
	for i := range p.Constraints {
		src := &p.Constraints[i]
		m.SetFrac64(1+int64(rng.Intn(9)), 1+int64(rng.Intn(9)))
		rel := src.Rel
		neg := false
		if rel != simplex.EQ && rng.Intn(2) == 0 {
			// a·x ≤ b  ⇔  −a·x ≥ −b and vice versa.
			neg = true
			if rel == simplex.LE {
				rel = simplex.GE
			} else {
				rel = simplex.LE
			}
		}
		coeffs, rhs := q.GrowConstraint(rel)
		for j := range coeffs {
			coeffs[j].Mul(src.Coeffs[j], &m)
			if neg {
				coeffs[j].Neg(coeffs[j])
			}
		}
		rhs.Mul(src.RHS, &m)
		if neg {
			rhs.Neg(rhs)
		}
	}
	return q
}

func TestCanonicalEncodeDecodeFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		p := randomProblem(rng)
		e1 := EncodeLP(p)
		q, err := DecodeLP(e1)
		if err != nil {
			t.Fatalf("trial %d: decode: %v\nencoding:\n%s", trial, err, e1)
		}
		e2 := EncodeLP(q)
		if !bytes.Equal(e1, e2) {
			t.Fatalf("trial %d: encode∘decode not a fixpoint:\n--- first ---\n%s--- second ---\n%s",
				trial, e1, e2)
		}
		if HashLP(p) != HashLP(q) {
			t.Fatalf("trial %d: hash changed across decode round trip", trial)
		}
	}
}

func TestCanonicalHashInvariances(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		p := randomProblem(rng)
		h := HashLP(p)
		if got := HashLP(permuted(p, rng)); got != h {
			t.Fatalf("trial %d: hash not invariant under row permutation", trial)
		}
		if got := HashLP(scaledRows(p, rng)); got != h {
			t.Fatalf("trial %d: hash not invariant under positive row scaling", trial)
		}
	}
}

func TestCanonicalDistinctLPsDistinctHashes(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	seen := map[LPHash]string{}
	for trial := 0; trial < 400; trial++ {
		p := randomProblem(rng)
		e := string(EncodeLP(p))
		h := HashLP(p)
		if prev, ok := seen[h]; ok && prev != e {
			t.Fatalf("hash collision between distinct canonical forms:\n%s\nvs\n%s", prev, e)
		}
		seen[h] = e
		// A genuine semantic perturbation must change the hash.
		q := permuted(p, rng)
		c := &q.Constraints[rng.Intn(len(q.Constraints))]
		c.RHS.Add(c.RHS, big.NewRat(1, 3))
		if HashLP(q) == h && !bytes.Equal(EncodeLP(q), EncodeLP(p)) {
			t.Fatalf("trial %d: rhs perturbation did not change hash", trial)
		}
	}
	if len(seen) < 100 {
		t.Fatalf("corpus too degenerate: only %d distinct canonical forms", len(seen))
	}
}

func TestCanonicalBigPathMatchesFast(t *testing.T) {
	// A row with a huge denominator forces canonRowBig; the same
	// half-space expressed in the int64 domain takes canonRowFast. Both
	// must render the identical canonical line, so the hashes agree.
	huge := new(big.Int).Lsh(big.NewInt(1), 80)
	p := simplex.NewProblem(2)
	coeffs, rhs := p.GrowConstraint(simplex.LE)
	coeffs[0].SetFrac(big.NewInt(3), huge)
	coeffs[1].SetFrac(big.NewInt(-6), huge)
	rhs.SetFrac(big.NewInt(9), huge)

	q := simplex.NewProblem(2)
	qcoeffs, qrhs := q.GrowConstraint(simplex.LE)
	qcoeffs[0].SetInt64(1)
	qcoeffs[1].SetInt64(-2)
	qrhs.SetInt64(3)

	if HashLP(p) != HashLP(q) {
		t.Fatalf("big-path canonical form diverges from fast path:\n%s\nvs\n%s",
			EncodeLP(p), EncodeLP(q))
	}
}

func TestParseLPHashRoundTrip(t *testing.T) {
	p := simplex.NewProblem(1)
	coeffs, rhs := p.GrowConstraint(simplex.LE)
	coeffs[0].SetInt64(1)
	rhs.SetInt64(5)
	h := HashLP(p)
	got, err := ParseLPHash(h.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: %v != %v", got, h)
	}
	if _, err := ParseLPHash("zz"); err == nil {
		t.Fatal("want error for bad hex")
	}
	if _, err := ParseLPHash("abcd"); err == nil {
		t.Fatal("want error for short hash")
	}
}

// FuzzCanonicalLP drives the canonical encoder with fuzz-chosen LP
// shapes: encode→decode→encode must be a fixpoint and the hash must be
// stable under row permutation.
func FuzzCanonicalLP(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4))
	f.Add(int64(99), uint8(1), uint8(1))
	f.Add(int64(-7), uint8(6), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, nvars, nrows uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nvars)%6
		rows := 1 + int(nrows)%8
		p := simplex.NewProblem(n)
		for j := 0; j < n; j++ {
			if rng.Intn(4) == 0 {
				p.MarkFree(j)
			}
		}
		for i := 0; i < rows; i++ {
			rel := simplex.LE
			switch rng.Intn(3) {
			case 0:
				rel = simplex.GE
			case 1:
				rel = simplex.EQ
			}
			coeffs, rhs := p.GrowConstraint(rel)
			for j := range coeffs {
				num := int64(rng.Intn(2001) - 1000)
				den := int64(1 + rng.Intn(999))
				coeffs[j].SetFrac64(num, den)
			}
			rhs.SetFrac64(int64(rng.Intn(2001)-1000), int64(1+rng.Intn(999)))
		}
		e1 := EncodeLP(p)
		q, err := DecodeLP(e1)
		if err != nil {
			t.Fatalf("decode: %v\n%s", err, e1)
		}
		e2 := EncodeLP(q)
		if !bytes.Equal(e1, e2) {
			t.Fatalf("not a fixpoint:\n%s\nvs\n%s", e1, e2)
		}
		if HashLP(permuted(p, rng)) != HashLP(p) {
			t.Fatal("hash not invariant under row permutation")
		}
	})
}
