package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cone"
	"repro/internal/counters"
	"repro/internal/exact"
	"repro/internal/simplex"
	"repro/internal/stats"
)

// initialModel is the Figure 6a model: the walk is started (incrementing
// causes_walk) before the PDE cache is looked up, so pde$_miss can never
// exceed causes_walk.
const initialModelSrc = `
incr load.causes_walk;
do LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => incr load.pde$_miss;
};
done;
`

// refinedModel is the Figure 6c model: early PDE cache lookup plus abortable
// translation requests, adding the μpath with signature (0, 1).
const refinedModelSrc = `
do LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => {
        incr load.pde$_miss;
        switch Abort {
            Yes => done;
            No  => pass;
        };
    };
};
do StartWalk;
incr load.causes_walk;
done;
`

func pdeSet() *counters.Set {
	return counters.NewSet("load.causes_walk", "load.pde$_miss")
}

// obsAround builds an observation of m samples scattered tightly around
// (cw, pm) with small noise.
func obsAround(label string, cw, pm float64, m int, seed int64) *counters.Observation {
	o := counters.NewObservation(label, pdeSet())
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < m; i++ {
		o.Append([]float64{cw + rng.NormFloat64(), pm + rng.NormFloat64()})
	}
	return o
}

func TestModelFromDSLAndConstraints(t *testing.T) {
	m, err := ModelFromDSL("initial", initialModelSrc, pdeSet())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPaths() != 2 {
		t.Fatalf("paths: %d", m.NumPaths())
	}
	h, err := m.Constraints()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range h.Inequalities {
		if k.String() == "load.pde$_miss <= load.causes_walk" {
			found = true
		}
	}
	if !found {
		t.Fatalf("constraint C not found in %v", h.Inequalities)
	}
}

func TestFeasibleObservation(t *testing.T) {
	m, err := ModelFromDSL("initial", initialModelSrc, pdeSet())
	if err != nil {
		t.Fatal(err)
	}
	o := obsAround("feasible", 500, 200, 300, 1)
	v, err := m.TestObservation(o, DefaultConfidence, stats.Correlated, true)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Feasible {
		t.Fatal("observation inside the cone should be feasible")
	}
	if len(v.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", v.Violations)
	}
}

func TestInfeasibleObservationIdentifiesViolation(t *testing.T) {
	m, err := ModelFromDSL("initial", initialModelSrc, pdeSet())
	if err != nil {
		t.Fatal(err)
	}
	// pde$_miss far exceeds causes_walk: violates constraint C.
	o := obsAround("violating", 200, 500, 300, 2)
	v, err := m.TestObservation(o, DefaultConfidence, stats.Correlated, true)
	if err != nil {
		t.Fatal(err)
	}
	if v.Feasible {
		t.Fatal("observation outside the cone should be infeasible")
	}
	if len(v.Violations) == 0 {
		t.Fatal("violations should be identified")
	}
	found := false
	for _, k := range v.Violations {
		if k.String() == "load.pde$_miss <= load.causes_walk" {
			found = true
		}
	}
	if !found {
		t.Fatalf("constraint C should be among violations: %v", v.Violations)
	}
}

func TestRefinedModelAcceptsViolatingObservation(t *testing.T) {
	// The Figure 6 refinement loop: the same observation that refutes the
	// initial model is feasible under the refined model.
	refined, err := ModelFromDSL("refined", refinedModelSrc, pdeSet())
	if err != nil {
		t.Fatal(err)
	}
	o := obsAround("violating", 200, 500, 300, 2)
	v, err := refined.TestObservation(o, DefaultConfidence, stats.Correlated, false)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Feasible {
		t.Fatal("refined model must accept the observation")
	}
	// And the refined cone strictly contains the initial cone.
	initial, err := ModelFromDSL("initial", initialModelSrc, pdeSet())
	if err != nil {
		t.Fatal(err)
	}
	if !initial.Cone().SubsetOf(refined.Cone()) {
		t.Fatal("refinement must expand the model cone")
	}
	if refined.Cone().SubsetOf(initial.Cone()) {
		t.Fatal("refined cone must be strictly larger")
	}
}

func TestNoiseCanMaskViolation(t *testing.T) {
	// A mildly violating observation with huge noise is feasible (the region
	// reaches into the cone); with low noise it is infeasible.
	m, err := ModelFromDSL("initial", initialModelSrc, pdeSet())
	if err != nil {
		t.Fatal(err)
	}
	quiet := counters.NewObservation("quiet", pdeSet())
	noisy := counters.NewObservation("noisy", pdeSet())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		quiet.Append([]float64{100 + rng.NormFloat64(), 110 + rng.NormFloat64()})
		noisy.Append([]float64{100 + 40*rng.NormFloat64(), 110 + 40*rng.NormFloat64()})
	}
	vq, err := m.TestObservation(quiet, DefaultConfidence, stats.Independent, false)
	if err != nil {
		t.Fatal(err)
	}
	vn, err := m.TestObservation(noisy, DefaultConfidence, stats.Independent, false)
	if err != nil {
		t.Fatal(err)
	}
	if vq.Feasible {
		t.Fatal("quiet violating observation should be infeasible")
	}
	if !vn.Feasible {
		t.Fatal("noisy observation should be masked (feasible)")
	}
}

func TestCorrelatedDetectsMoreThanIndependent(t *testing.T) {
	// Construct samples where causes_walk and pde$_miss are strongly
	// correlated and pde$_miss slightly exceeds causes_walk. The correlated
	// region is tight around the offending direction and detects the
	// violation; the independent box is loose enough to intersect the cone.
	m, err := ModelFromDSL("initial", initialModelSrc, pdeSet())
	if err != nil {
		t.Fatal(err)
	}
	o := counters.NewObservation("correlated", pdeSet())
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 400; i++ {
		base := 1000 + 200*rng.NormFloat64()
		o.Append([]float64{base, base + 8 + rng.NormFloat64()})
	}
	vc, err := m.TestObservation(o, DefaultConfidence, stats.Correlated, false)
	if err != nil {
		t.Fatal(err)
	}
	vi, err := m.TestObservation(o, DefaultConfidence, stats.Independent, false)
	if err != nil {
		t.Fatal(err)
	}
	if vc.Feasible {
		t.Fatal("correlated region should detect the violation")
	}
	if !vi.Feasible {
		t.Fatal("independent region should mask the violation")
	}
}

func TestRegionViolatesClosedForm(t *testing.T) {
	set := pdeSet()
	r := &stats.Region{
		Set:        set,
		Mean:       []float64{10, 20},
		Axes:       [][]float64{{1, 0}, {0, 1}},
		HalfWidths: []float64{1, 1},
	}
	// pde$_miss - causes_walk <= 0: min over box = (20-10) - 2 = 8 > 0.
	k := cone.Constraint{Set: set, Coeffs: exact.VecFromInts(-1, 1), Rel: cone.LEZero}
	if !RegionViolates(r, k) {
		t.Fatal("region should violate C")
	}
	// causes_walk - pde$_miss <= 0 is satisfied everywhere on the box.
	k2 := cone.Constraint{Set: set, Coeffs: exact.VecFromInts(1, -1), Rel: cone.LEZero}
	if RegionViolates(r, k2) {
		t.Fatal("region should satisfy reversed constraint")
	}
	// Equality: causes_walk - pde$_miss = 0 violated (interval [-12,-8]).
	k3 := cone.Constraint{Set: set, Coeffs: exact.VecFromInts(1, -1), Rel: cone.EQZero}
	if !RegionViolates(r, k3) {
		t.Fatal("region should violate equality")
	}
}

// Corpus evaluation (the seed's TestEvaluateCorpus) is covered by
// internal/engine's tests, where the worker pool now lives.

// TestRegionWSReuse checks that a single workspace reused across many
// verdicts gives the same answers as fresh per-call solves.
func TestRegionWSReuse(t *testing.T) {
	m, err := ModelFromDSL("initial", initialModelSrc, pdeSet())
	if err != nil {
		t.Fatal(err)
	}
	ws := simplex.NewWorkspace()
	corpus := []*counters.Observation{
		obsAround("ok1", 500, 100, 100, 10),
		obsAround("bad1", 100, 400, 100, 12),
		obsAround("ok2", 300, 299, 100, 11),
		obsAround("bad2", 50, 200, 100, 13),
	}
	for _, o := range corpus {
		r, err := stats.NewRegion(o, DefaultConfidence, stats.Correlated)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.TestRegionWS(ws, r, true)
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.TestRegion(r, true)
		if err != nil {
			t.Fatal(err)
		}
		if got.Feasible != want.Feasible {
			t.Fatalf("%s: workspace verdict %v, fresh verdict %v", o.Label, got.Feasible, want.Feasible)
		}
		if len(got.Violations) != len(want.Violations) {
			t.Fatalf("%s: violations %v vs %v", o.Label, got.Violations, want.Violations)
		}
	}
}

func TestObservationProjection(t *testing.T) {
	// Observations with extra counters are projected onto the model set.
	m, err := ModelFromDSL("initial", initialModelSrc, pdeSet())
	if err != nil {
		t.Fatal(err)
	}
	wide := counters.NewSet("load.causes_walk", "load.pde$_miss", "unrelated")
	o := counters.NewObservation("wide", wide)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		o.Append([]float64{500 + rng.NormFloat64(), 100 + rng.NormFloat64(), 42})
	}
	v, err := m.TestObservation(o, DefaultConfidence, stats.Correlated, false)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Feasible {
		t.Fatal("projected observation should be feasible")
	}
}

func TestRestrict(t *testing.T) {
	m, err := ModelFromDSL("initial", initialModelSrc, pdeSet())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := m.Restrict(counters.NewSet("load.causes_walk"))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Set.Len() != 1 {
		t.Fatalf("restricted set: %v", sub.Set.Events())
	}
	h, err := sub.Constraints()
	if err != nil {
		t.Fatal(err)
	}
	// Single counter: only 0 <= causes_walk remains.
	if len(h.All()) != 1 {
		t.Fatalf("constraints: %v", h.All())
	}
}

func TestModelFromBadDSL(t *testing.T) {
	if _, err := ModelFromDSL("bad", "bogus;", nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestTestRegionSetMismatch(t *testing.T) {
	m, err := ModelFromDSL("initial", initialModelSrc, pdeSet())
	if err != nil {
		t.Fatal(err)
	}
	r := &stats.Region{Set: counters.NewSet("zz"), Mean: []float64{0}, Axes: [][]float64{{1}}, HalfWidths: []float64{1}}
	if _, err := m.TestRegion(r, false); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("want set mismatch error, got %v", err)
	}
}
