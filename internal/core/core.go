// Package core is CounterPoint's engine: it ties μDDs (package mudd), model
// cones (package cone), counter confidence regions (package stats) and the
// exact LP solver (package simplex) into the workflow of Figure 2:
//
//	DSL → μDD → model cone → feasibility testing against confidence regions
//
// A Model wraps a μDD together with the counter set under analysis. Testing
// an observation builds its confidence region, then solves the Appendix A
// linear program: non-negative flow variables f(p) for every μpath
// signature, the counter-flow equation v = Σ S(p)·f(p) substituted into the
// per-principal-axis box constraints |eᵢ·(v − Ȳ)| ≤ √(λᵢχ²). If the LP is
// infeasible the observation violates at least one model constraint at the
// chosen confidence level, and the violated constraints are identified by
// testing each deduced half-space against the region.
package core

import (
	"fmt"
	"math"
	"math/big"
	"runtime"
	"sync"

	"repro/internal/cone"
	"repro/internal/counters"
	"repro/internal/dsl"
	"repro/internal/exact"
	"repro/internal/mudd"
	"repro/internal/simplex"
	"repro/internal/stats"
)

// DefaultConfidence is the confidence level used throughout the paper.
const DefaultConfidence = 0.99

// Model is a microarchitectural model under test: a μDD restricted to a
// counter set of interest.
type Model struct {
	Name    string
	Diagram *mudd.Diagram
	Set     *counters.Set

	numPaths int
	kcone    *cone.Cone
}

// NewModel builds a Model from a validated μDD. set chooses the HECs under
// analysis; counter nodes outside set are ignored (unprogrammed counters do
// not count). If set is nil the diagram's own counters are used.
func NewModel(name string, d *mudd.Diagram, set *counters.Set) (*Model, error) {
	if set == nil {
		set = d.Counters()
	}
	paths, err := d.Paths()
	if err != nil {
		return nil, fmt.Errorf("core: model %q: %w", name, err)
	}
	sigs := make([]exact.Vec, len(paths))
	for i, p := range paths {
		sigs[i] = d.Signature(p, set)
	}
	return &Model{
		Name:     name,
		Diagram:  d,
		Set:      set,
		numPaths: len(paths),
		kcone:    cone.New(set, sigs),
	}, nil
}

// ModelFromDSL compiles DSL source into a Model.
func ModelFromDSL(name, src string, set *counters.Set) (*Model, error) {
	d, err := dsl.Compile(name, src)
	if err != nil {
		return nil, err
	}
	return NewModel(name, d, set)
}

// NumPaths returns the number of μpaths the μDD encodes.
func (m *Model) NumPaths() int { return m.numPaths }

// Cone returns the model cone.
func (m *Model) Cone() *cone.Cone { return m.kcone }

// Constraints returns the complete set of model constraints (the cone's
// H-representation), deduced on first use and cached.
func (m *Model) Constraints() (*cone.HRep, error) {
	return m.kcone.Constraints()
}

// Restrict returns a copy of the model analysed over a sub- (or different)
// counter set, re-deriving signatures and the cone. Used by the Figure 1b /
// Figure 9 counter-group sweeps.
func (m *Model) Restrict(set *counters.Set) (*Model, error) {
	return NewModel(m.Name, m.Diagram, set)
}

// Verdict is the outcome of testing one observation against one model.
type Verdict struct {
	Model       string
	Observation string
	Feasible    bool
	// Violations lists the deduced model constraints whose half-spaces the
	// confidence region provably misses. Populated only when infeasible and
	// constraint deduction was requested.
	Violations []cone.Constraint
	// Region is the confidence region the verdict was computed against.
	Region *stats.Region
}

// TestRegion decides whether the confidence region intersects the model
// cone (Appendix A LP). When infeasible and identifyViolations is true, the
// model constraints are deduced and each is tested against the region.
func (m *Model) TestRegion(r *stats.Region, identifyViolations bool) (*Verdict, error) {
	if !r.Set.Equal(m.Set) {
		return nil, fmt.Errorf("core: region counter set %v does not match model set %v", r.Set, m.Set)
	}
	v := &Verdict{Model: m.Name, Region: r}
	v.Feasible = m.regionIntersectsCone(r)
	if !v.Feasible && identifyViolations {
		h, err := m.Constraints()
		if err != nil {
			return nil, err
		}
		for _, k := range h.All() {
			if RegionViolates(r, k) {
				v.Violations = append(v.Violations, k)
			}
		}
	}
	return v, nil
}

// TestObservation builds the observation's confidence region at the given
// confidence level and noise mode, then calls TestRegion.
func (m *Model) TestObservation(o *counters.Observation, confidence float64, mode stats.NoiseMode, identifyViolations bool) (*Verdict, error) {
	proj := o
	if !o.Set.Equal(m.Set) {
		proj = o.Project(m.Set)
	}
	r, err := stats.NewRegion(proj, confidence, mode)
	if err != nil {
		return nil, err
	}
	verdict, err := m.TestRegion(r, identifyViolations)
	if err != nil {
		return nil, err
	}
	verdict.Observation = o.Label
	return verdict, nil
}

// regionIntersectsCone solves the Appendix A LP with the counter-flow
// equation substituted in: variables are the flows f ≥ 0 down each cone
// generator, constrained so that v = G·f lies inside every principal-axis
// slab of the region. Counter non-negativity is implied (G ≥ 0, f ≥ 0).
func (m *Model) regionIntersectsCone(r *stats.Region) bool {
	gens := m.kcone.Generators
	p := simplex.NewProblem(len(gens))
	n := m.Set.Len()
	for i, axis := range r.Axes {
		// e·(G f) ≤ e·Ȳ + h   and   e·(G f) ≥ e·Ȳ − h
		coeffs := exact.NewVec(len(gens))
		for j, g := range gens {
			dot := 0.0
			for k := 0; k < n; k++ {
				gf, _ := g[k].Float64()
				dot += axis[k] * gf
			}
			coeffs[j] = ratFromFloat(dot)
		}
		eDotMean := 0.0
		for k := 0; k < n; k++ {
			eDotMean += axis[k] * r.Mean[k]
		}
		// Quantise the slab bounds outward onto a coarse dyadic grid: the
		// box only grows (never flips a verdict to infeasible), and the LP
		// works with denominator-256 rationals instead of 2^52 ones.
		hi := ratQuantize(eDotMean+r.HalfWidths[i], true)
		lo := ratQuantize(eDotMean-r.HalfWidths[i], false)
		p.AddConstraint(coeffs, simplex.LE, hi)
		p.AddConstraint(coeffs, simplex.GE, lo)
	}
	return simplex.Solve(p).Status == simplex.Optimal
}

// RegionViolates reports whether the confidence region lies entirely
// outside the constraint's feasible half-space (or hyperplane), using the
// closed-form extrema of a linear function over the principal-axis box:
//
//	min/max over box of a·v = a·Ȳ ∓ Σᵢ |a·eᵢ|·hᵢ
func RegionViolates(r *stats.Region, k cone.Constraint) bool {
	n := len(r.Mean)
	af := make([]float64, n)
	for i, c := range k.Coeffs {
		af[i], _ = c.Float64()
	}
	center := 0.0
	for i := 0; i < n; i++ {
		center += af[i] * r.Mean[i]
	}
	spread := 0.0
	for i, axis := range r.Axes {
		dot := 0.0
		for j := 0; j < n; j++ {
			dot += af[j] * axis[j]
		}
		if dot < 0 {
			dot = -dot
		}
		spread += dot * r.HalfWidths[i]
	}
	min, max := center-spread, center+spread
	if k.Rel == cone.EQZero {
		return min > 0 || max < 0
	}
	return min > 0 // no point of the box satisfies a·v ≤ 0
}

func ratFromFloat(f float64) *big.Rat {
	r := new(big.Rat)
	r.SetFloat64(f)
	return r
}

// ratQuantize rounds f outward (up if ceil, down otherwise) to a multiple
// of 1/256.
func ratQuantize(f float64, ceil bool) *big.Rat {
	scaled := f * 256
	var n int64
	if ceil {
		n = int64(math.Ceil(scaled))
	} else {
		n = int64(math.Floor(scaled))
	}
	return big.NewRat(n, 256)
}

// CorpusResult summarises evaluating one model over a corpus.
type CorpusResult struct {
	Model      string
	Infeasible int
	Total      int
	// ViolatedConstraints aggregates, across all infeasible observations,
	// how many observations violated each constraint (keyed by its string).
	ViolatedConstraints map[string]int
	Verdicts            []*Verdict
}

// EvaluateCorpus tests every observation against the model in parallel
// (feasibility testing is embarrassingly parallel — paper §7.2) and
// aggregates infeasibility counts and violated constraints.
func EvaluateCorpus(m *Model, corpus []*counters.Observation, confidence float64, mode stats.NoiseMode, identifyViolations bool) (*CorpusResult, error) {
	if identifyViolations {
		// Deduce constraints once, up front, so workers share the cache.
		if _, err := m.Constraints(); err != nil {
			return nil, err
		}
	}
	res := &CorpusResult{
		Model:               m.Name,
		Total:               len(corpus),
		ViolatedConstraints: map[string]int{},
		Verdicts:            make([]*Verdict, len(corpus)),
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(corpus) {
		workers = len(corpus)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		fail error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if fail != nil || next >= len(corpus) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				v, err := m.TestObservation(corpus[i], confidence, mode, identifyViolations)
				mu.Lock()
				if err != nil {
					if fail == nil {
						fail = err
					}
				} else {
					res.Verdicts[i] = v
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if fail != nil {
		return nil, fail
	}
	for _, v := range res.Verdicts {
		if !v.Feasible {
			res.Infeasible++
			for _, k := range v.Violations {
				res.ViolatedConstraints[k.String()]++
			}
		}
	}
	return res, nil
}
