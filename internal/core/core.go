// Package core is CounterPoint's single-verdict feasibility layer: it ties
// μDDs (package mudd), model cones (package cone), counter confidence
// regions (package stats) and the exact LP solver (package simplex) into
// the workflow of Figure 2 (batched and streaming corpus evaluation sits
// one layer up, in package engine):
//
//	DSL → μDD → model cone → feasibility testing against confidence regions
//
// A Model wraps a μDD together with the counter set under analysis. Testing
// an observation builds its confidence region, then solves the Appendix A
// linear program: non-negative flow variables f(p) for every μpath
// signature, the counter-flow equation v = Σ S(p)·f(p) substituted into the
// per-principal-axis box constraints |eᵢ·(v − Ȳ)| ≤ √(λᵢχ²). If the LP is
// infeasible the observation violates at least one model constraint at the
// chosen confidence level, and the violated constraints are identified by
// testing each deduced half-space against the region.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync"

	"repro/internal/cone"
	"repro/internal/counters"
	"repro/internal/dsl"
	"repro/internal/exact"
	"repro/internal/mudd"
	"repro/internal/simplex"
	"repro/internal/stats"
)

// DefaultConfidence is the confidence level used throughout the paper.
const DefaultConfidence = 0.99

// lpQuantum is the dyadic grid (denominator) the LP slab bounds are
// quantised onto; see regionIntersectsCone.
const lpQuantum = 256

// Model is a microarchitectural model under test: a μDD restricted to a
// counter set of interest.
type Model struct {
	Name    string
	Diagram *mudd.Diagram
	Set     *counters.Set

	numPaths int
	kcone    *cone.Cone

	// genOnce/genF cache the cone generators converted to float64 — the
	// generator-dot-axis coefficient rows of the feasibility LP reuse this
	// matrix for every observation instead of re-converting each big.Rat
	// component per verdict.
	genOnce sync.Once
	genF    [][]float64

	// keyOnce/key cache the model content key (see ContentKey).
	keyOnce sync.Once
	key     string
}

// NewModel builds a Model from a validated μDD. set chooses the HECs under
// analysis; counter nodes outside set are ignored (unprogrammed counters do
// not count). If set is nil the diagram's own counters are used.
func NewModel(name string, d *mudd.Diagram, set *counters.Set) (*Model, error) {
	if set == nil {
		set = d.Counters()
	}
	paths, err := d.Paths()
	if err != nil {
		return nil, fmt.Errorf("core: model %q: %w", name, err)
	}
	sigs := make([]exact.Vec, len(paths))
	for i, p := range paths {
		sigs[i] = d.Signature(p, set)
	}
	return &Model{
		Name:     name,
		Diagram:  d,
		Set:      set,
		numPaths: len(paths),
		kcone:    cone.New(set, sigs),
	}, nil
}

// ModelFromDSL compiles DSL source into a Model.
func ModelFromDSL(name, src string, set *counters.Set) (*Model, error) {
	d, err := dsl.Compile(name, src)
	if err != nil {
		return nil, err
	}
	return NewModel(name, d, set)
}

// NumPaths returns the number of μpaths the μDD encodes.
func (m *Model) NumPaths() int { return m.numPaths }

// Cone returns the model cone.
func (m *Model) Cone() *cone.Cone { return m.kcone }

// Constraints returns the complete set of model constraints (the cone's
// H-representation), deduced on first use and cached.
func (m *Model) Constraints() (*cone.HRep, error) {
	return m.kcone.Constraints()
}

// Restrict returns a copy of the model analysed over a sub- (or different)
// counter set, re-deriving signatures and the cone. Used by the Figure 1b /
// Figure 9 counter-group sweeps.
func (m *Model) Restrict(set *counters.Set) (*Model, error) {
	return NewModel(m.Name, m.Diagram, set)
}

// ContentKey returns a stable content identifier of the model's LP side:
// a digest of the counter set and the normalised cone generators — the
// only model state RegionLP reads. Unlike the model pointer it survives
// serialization boundaries: two models derived independently from the
// same diagram and set share a key, so content-keyed caches hit across
// re-registration and (eventually) across workers.
func (m *Model) ContentKey() string {
	m.keyOnce.Do(func() {
		h := sha256.New()
		io.WriteString(h, m.Set.Key())
		for _, g := range m.kcone.Generators {
			h.Write([]byte{'|'})
			for _, c := range g {
				io.WriteString(h, c.RatString())
				h.Write([]byte{' '})
			}
		}
		m.key = hex.EncodeToString(h.Sum(nil)[:16])
	})
	return m.key
}

// Verdict is the outcome of testing one observation against one model.
type Verdict struct {
	Model       string
	Observation string
	Feasible    bool
	// Violations lists the deduced model constraints whose half-spaces the
	// confidence region provably misses. Populated only when infeasible and
	// constraint deduction was requested.
	Violations []cone.Constraint
	// Region is the confidence region the verdict was computed against.
	Region *stats.Region
}

// TestRegion decides whether the confidence region intersects the model
// cone (Appendix A LP). When infeasible and identifyViolations is true, the
// model constraints are deduced and each is tested against the region.
func (m *Model) TestRegion(r *stats.Region, identifyViolations bool) (*Verdict, error) {
	return m.TestRegionWS(nil, r, identifyViolations)
}

// TestRegionWS is TestRegion with an explicit exact LP workspace, solved
// exact-only — the convenience path for callers without a Solver; a nil ws
// allocates a temporary one. Hot paths (the engine's corpus evaluation)
// should use TestRegionSolver with a pooled hybrid Solver instead.
func (m *Model) TestRegionWS(ws *simplex.Workspace, r *stats.Region, identifyViolations bool) (*Verdict, error) {
	return m.TestRegionSolver(&Solver{Exact: ws}, r, identifyViolations)
}

// TestRegionSolver is TestRegion through an explicit two-tier solver: the
// float filter (when sv carries one) decides certificate-backed verdicts
// and everything else falls back to the exact simplex, so the verdict is
// identical to the exact solver's by construction.
func (m *Model) TestRegionSolver(sv *Solver, r *stats.Region, identifyViolations bool) (*Verdict, error) {
	if sv == nil {
		sv = &Solver{}
	}
	p := sv.exactWS().Prepare(0) // RegionLP resets the problem to the generator count
	if err := m.RegionLP(p, r); err != nil {
		return nil, err
	}
	return m.TestRegionLP(sv, p, r, identifyViolations)
}

// TestRegionLP completes a verdict for r given its pre-built feasibility
// LP (see RegionLP). The engine caches the LP per (model, region) so
// repeated sweeps re-solve without rebuilding constraint rows. A nil sv
// solves exact-only through a temporary workspace.
func (m *Model) TestRegionLP(sv *Solver, p *simplex.Problem, r *stats.Region, identifyViolations bool) (*Verdict, error) {
	return m.VerdictForRegion(r, sv.Feasible(p), identifyViolations)
}

// VerdictForRegion assembles the verdict for r from an already-decided
// feasibility answer — the completion path shared by TestRegionLP and
// the engine's content-addressed verdict cache. Violation identification
// needs no LP solve (RegionViolates is closed-form over the box), so a
// cached feasibility bit still yields the full verdict.
func (m *Model) VerdictForRegion(r *stats.Region, feasible, identifyViolations bool) (*Verdict, error) {
	v := &Verdict{Model: m.Name, Region: r, Feasible: feasible}
	if !feasible && identifyViolations {
		h, err := m.Constraints()
		if err != nil {
			return nil, err
		}
		for _, k := range h.All() {
			if RegionViolates(r, k) {
				v.Violations = append(v.Violations, k)
			}
		}
	}
	return v, nil
}

// TestObservation builds the observation's confidence region at the given
// confidence level and noise mode, then calls TestRegion.
func (m *Model) TestObservation(o *counters.Observation, confidence float64, mode stats.NoiseMode, identifyViolations bool) (*Verdict, error) {
	proj := o
	if !o.Set.Equal(m.Set) {
		proj = o.Project(m.Set)
	}
	r, err := stats.NewRegion(proj, confidence, mode)
	if err != nil {
		return nil, err
	}
	verdict, err := m.TestRegion(r, identifyViolations)
	if err != nil {
		return nil, err
	}
	verdict.Observation = o.Label
	return verdict, nil
}

// generatorFloats returns the cone generators as float64 rows, converted
// once per (model, counter set) and shared by every subsequent verdict.
func (m *Model) generatorFloats() [][]float64 {
	m.genOnce.Do(func() {
		n := m.Set.Len()
		m.genF = make([][]float64, len(m.kcone.Generators))
		for j, g := range m.kcone.Generators {
			row := make([]float64, n)
			for k := 0; k < n; k++ {
				row[k], _ = g[k].Float64()
			}
			m.genF[j] = row
		}
	})
	return m.genF
}

// RegionLP builds the Appendix A feasibility LP for r into p, replacing
// p's contents: the counter-flow equation is substituted in, so the
// variables are the flows f ≥ 0 down each cone generator, constrained so
// that v = G·f lies inside every principal-axis slab of the region.
// Counter non-negativity is implied (G ≥ 0, f ≥ 0).
//
// The LP depends only on (model, region); solving never mutates it, so
// callers may cache the problem and re-solve it from any workspace.
func (m *Model) RegionLP(p *simplex.Problem, r *stats.Region) error {
	if !r.Set.Equal(m.Set) {
		return fmt.Errorf("core: region counter set %v does not match model set %v", r.Set, m.Set)
	}
	gens := m.generatorFloats()
	p.Reset(len(gens))
	n := m.Set.Len()
	for i, axis := range r.Axes {
		// e·(G f) ≤ e·Ȳ + h   and   e·(G f) ≥ e·Ȳ − h
		upper, hi := p.GrowConstraint(simplex.LE)
		lower, lo := p.GrowConstraint(simplex.GE)
		for j, g := range gens {
			dot := 0.0
			for k := 0; k < n; k++ {
				dot += axis[k] * g[k]
			}
			// Materialise directly into the integer representation: the
			// axes are snapped to a dyadic grid and the generators are
			// small integers, so the dot is a small dyadic rational that
			// the int64 kernel converts exactly without a big.Rat
			// decomposition; SetRatFromFloat covers everything else with
			// the identical value.
			if r64, ok := exact.Rat64FromFloat(dot); ok {
				r64.RatInto(upper[j])
			} else if err := exact.SetRatFromFloat(upper[j], dot); err != nil {
				return fmt.Errorf("core: model %q, axis %d: %w", m.Name, i, err)
			}
			lower[j].Set(upper[j])
		}
		eDotMean := 0.0
		for k := 0; k < n; k++ {
			eDotMean += axis[k] * r.Mean[k]
		}
		// Quantise the slab bounds outward onto a coarse dyadic grid: the
		// box only grows (never flips a verdict to infeasible), and the LP
		// works with denominator-256 rationals instead of 2^52 ones. The
		// Rat64 fast path is bit-identical to QuantizeInto on its domain.
		if q, ok := exact.Quantize64(eDotMean+r.HalfWidths[i], true, lpQuantum); ok {
			q.RatInto(hi)
		} else if err := exact.QuantizeInto(hi, eDotMean+r.HalfWidths[i], true, lpQuantum); err != nil {
			return fmt.Errorf("core: model %q, axis %d upper bound: %w", m.Name, i, err)
		}
		if q, ok := exact.Quantize64(eDotMean-r.HalfWidths[i], false, lpQuantum); ok {
			q.RatInto(lo)
		} else if err := exact.QuantizeInto(lo, eDotMean-r.HalfWidths[i], false, lpQuantum); err != nil {
			return fmt.Errorf("core: model %q, axis %d lower bound: %w", m.Name, i, err)
		}
	}
	return nil
}

// RegionViolates reports whether the confidence region lies entirely
// outside the constraint's feasible half-space (or hyperplane), using the
// closed-form extrema of a linear function over the principal-axis box:
//
//	min/max over box of a·v = a·Ȳ ∓ Σᵢ |a·eᵢ|·hᵢ
func RegionViolates(r *stats.Region, k cone.Constraint) bool {
	n := len(r.Mean)
	af := make([]float64, n)
	for i, c := range k.Coeffs {
		af[i], _ = c.Float64()
	}
	center := 0.0
	for i := 0; i < n; i++ {
		center += af[i] * r.Mean[i]
	}
	spread := 0.0
	for i, axis := range r.Axes {
		dot := 0.0
		for j := 0; j < n; j++ {
			dot += af[j] * axis[j]
		}
		if dot < 0 {
			dot = -dot
		}
		spread += dot * r.HalfWidths[i]
	}
	min, max := center-spread, center+spread
	if k.Rel == cone.EQZero {
		return min > 0 || max < 0
	}
	return min > 0 // no point of the box satisfies a·v ≤ 0
}

// Corpus evaluation lives in internal/engine: engine.Session.Evaluate and
// EvaluateStream replace the worker pool the seed version of this package
// rolled inline, sharing confidence-region and LP-workspace caches across
// observations and models.
