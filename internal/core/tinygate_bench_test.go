package core

import (
	"math/rand"
	"testing"

	"repro/internal/counters"
	"repro/internal/floatlp"
	"repro/internal/simplex"
	"repro/internal/stats"
)

// BenchmarkTinyGate measures both feasibility tiers on the smallest LP in
// the test fleet (the 2-counter pde model, size 2×4 = 8) — the bottom end
// of the filterMinSize crossover. Fig9aFeasibility covers sizes 32/320/2420;
// together they are the data the filterMinSize constant is tuned against
// (see the comment on filterMinSize in solver.go).
func BenchmarkTinyGate(b *testing.B) {
	src := "incr load.causes_walk;\nswitch Pde$Status { Hit => pass; Miss => incr load.pde$_miss; };\ndone;"
	set := counters.NewSet("load.causes_walk", "load.pde$_miss")
	m, err := ModelFromDSL("pde", src, set)
	if err != nil {
		b.Fatal(err)
	}
	o := counters.NewObservation("x", set)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		o.Append([]float64{500 + rng.NormFloat64(), 100 + rng.NormFloat64()})
	}
	r, err := stats.NewRegion(o, DefaultConfidence, stats.Correlated)
	if err != nil {
		b.Fatal(err)
	}
	p := simplex.NewProblem(0)
	if err := m.RegionLP(p, r); err != nil {
		b.Fatal(err)
	}
	b.Logf("size = %d vars x %d rows = %d (filterMinSize %d)",
		p.NumVars, len(p.Constraints), p.NumVars*len(p.Constraints), filterMinSize)
	b.Run("exact", func(b *testing.B) {
		ws := simplex.NewWorkspace()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = ws.SolveStatus(p) == simplex.Optimal
		}
	})
	b.Run("filter", func(b *testing.B) {
		fl := floatlp.NewWorkspace()
		cert := simplex.NewCertifier()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := fl.Feasibility(p)
			if out.Status != floatlp.Feasible || !cert.CertifyPoint(p, out.Point) {
				b.Fatal("filter verdict changed under benchmarking")
			}
		}
	})
}
