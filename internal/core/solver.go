package core

// The two-tier feasibility solver: a float64 revised-simplex filter
// (internal/floatlp) in front of the exact rational simplex
// (internal/simplex). The filter's claims are certificate-backed and
// verified over ℚ; anything unverifiable falls back to the exact solver,
// so the hybrid's verdicts are bit-exact by construction — the exact
// solver remains the oracle, it just stops being the common path.

import (
	"sync/atomic"

	"repro/internal/floatlp"
	"repro/internal/simplex"
)

// SolverStats counts two-tier solver activity. All counters are atomic:
// one SolverStats is shared by every worker of an engine. The zero value
// is ready to use.
type SolverStats struct {
	evaluations      atomic.Uint64
	filterFeasible   atomic.Uint64
	filterInfeasible atomic.Uint64
	certFailures     atomic.Uint64
	exactFallbacks   atomic.Uint64
}

// SolverCounts is a point-in-time snapshot of SolverStats, shaped for JSON
// telemetry (counterpointd's /stats endpoint).
type SolverCounts struct {
	// Evaluations counts feasibility LPs decided (one per verdict).
	Evaluations uint64 `json:"evaluations"`
	// FilterFeasible / FilterInfeasible count verdicts decided by the
	// float tier with an exactly-verified certificate.
	FilterFeasible   uint64 `json:"filter_feasible"`
	FilterInfeasible uint64 `json:"filter_infeasible"`
	// CertFailures counts float-tier claims whose certificate failed exact
	// verification (each such evaluation also counts an exact fallback).
	CertFailures uint64 `json:"certification_failures"`
	// ExactFallbacks counts verdicts decided by the exact tier — because
	// the filter was disabled, the LP was below the filter's size gate,
	// the filter was inconclusive, or certification failed.
	ExactFallbacks uint64 `json:"exact_fallbacks"`
}

// FilterHits is the number of evaluations the float tier settled.
func (c SolverCounts) FilterHits() uint64 { return c.FilterFeasible + c.FilterInfeasible }

// Snapshot returns current counter values.
func (s *SolverStats) Snapshot() SolverCounts {
	return SolverCounts{
		Evaluations:      s.evaluations.Load(),
		FilterFeasible:   s.filterFeasible.Load(),
		FilterInfeasible: s.filterInfeasible.Load(),
		CertFailures:     s.certFailures.Load(),
		ExactFallbacks:   s.exactFallbacks.Load(),
	}
}

// Solver bundles the exact LP workspace with the optional float filter and
// a telemetry sink. Like its workspaces it is not safe for concurrent use;
// pool one per worker. The zero value (or a nil *Solver) behaves as a
// fresh exact-only solver.
type Solver struct {
	// Exact is the rational simplex workspace — the authoritative tier.
	// nil allocates a fresh workspace on first use.
	Exact *simplex.Workspace
	// Filter is the float64 revised-simplex tier; nil forces exact mode.
	Filter *floatlp.Workspace
	// Stats, when non-nil, receives per-evaluation telemetry.
	Stats *SolverStats
}

// NewSolver returns a hybrid solver with fresh workspaces reporting into
// stats (which may be nil).
func NewSolver(stats *SolverStats) *Solver {
	return &Solver{Exact: simplex.NewWorkspace(), Filter: floatlp.NewWorkspace(), Stats: stats}
}

// filterMinSize gates the float tier by LP size (variables × rows). Below
// it the exact simplex on small rationals beats the filter's convert +
// solve + certify round trip (measured crossover: the 2-counter corpus
// model loses ~2× at size 8, the Ret counter-group LP wins ~3× at size
// 32), so tiny LPs go straight to the exact tier.
const filterMinSize = 16

// exact returns the exact workspace, allocating one on first use.
func (s *Solver) exactWS() *simplex.Workspace {
	if s.Exact == nil {
		s.Exact = simplex.NewWorkspace()
	}
	return s.Exact
}

// Feasible decides whether p is feasible. The float tier runs first (when
// present); its claim stands only if the accompanying certificate verifies
// exactly, otherwise the exact simplex decides. The answer is therefore
// always the exact solver's answer, usually without running it.
func (s *Solver) Feasible(p *simplex.Problem) bool {
	if s == nil {
		return simplex.NewWorkspace().SolveStatus(p) == simplex.Optimal
	}
	if s.Stats != nil {
		s.Stats.evaluations.Add(1)
	}
	if s.Filter != nil && p.NumVars*len(p.Constraints) >= filterMinSize {
		switch out := s.Filter.Feasibility(p); out.Status {
		case floatlp.Feasible:
			if simplex.CertifyPoint(p, out.Point) {
				if s.Stats != nil {
					s.Stats.filterFeasible.Add(1)
				}
				return true
			}
			if s.Stats != nil {
				s.Stats.certFailures.Add(1)
			}
		case floatlp.Infeasible:
			if simplex.CertifyFarkas(p, out.Ray) {
				if s.Stats != nil {
					s.Stats.filterInfeasible.Add(1)
				}
				return false
			}
			if s.Stats != nil {
				s.Stats.certFailures.Add(1)
			}
		}
	}
	if s.Stats != nil {
		s.Stats.exactFallbacks.Add(1)
	}
	return s.exactWS().SolveStatus(p) == simplex.Optimal
}
