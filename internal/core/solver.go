package core

// The two-tier feasibility solver: a float64 revised-simplex filter
// (internal/floatlp) in front of the exact rational simplex
// (internal/simplex). The filter's claims are certificate-backed and
// verified over ℚ; anything unverifiable falls back to the exact solver,
// so the hybrid's verdicts are bit-exact by construction — the exact
// solver remains the oracle, it just stops being the common path.
//
// Both exact stages run on the int64 kernel (see internal/exact and
// simplex/kernel.go): certificates are checked with overflow-checked Rat64
// dot products, and exact solves run the integer-pivoting tableau,
// promoting to big arithmetic per element on overflow. The kernel
// fast-path and promotion counters below surface how often that happens.

import (
	"sync/atomic"

	"repro/internal/floatlp"
	"repro/internal/simplex"
)

// SolverStats counts two-tier solver activity. All counters are atomic:
// one SolverStats is shared by every worker of an engine. The zero value
// is ready to use.
type SolverStats struct {
	evaluations      atomic.Uint64
	filterFeasible   atomic.Uint64
	filterInfeasible atomic.Uint64
	certFailures     atomic.Uint64
	exactFallbacks   atomic.Uint64

	kernelFastSolves     atomic.Uint64
	kernelPromotedSolves atomic.Uint64
	kernelPromotions     atomic.Uint64
	certifyKernel        atomic.Uint64
	certifyBigRat        atomic.Uint64

	warmSolves     atomic.Uint64
	warmDualPivots atomic.Uint64
	coldSolves     atomic.Uint64
}

// SolverCounts is a point-in-time snapshot of SolverStats, shaped for JSON
// telemetry (counterpointd's /stats endpoint).
type SolverCounts struct {
	// Evaluations counts feasibility LPs decided (one per verdict).
	Evaluations uint64 `json:"evaluations"`
	// FilterFeasible / FilterInfeasible count verdicts decided by the
	// float tier with an exactly-verified certificate.
	FilterFeasible   uint64 `json:"filter_feasible"`
	FilterInfeasible uint64 `json:"filter_infeasible"`
	// CertFailures counts float-tier claims whose certificate failed exact
	// verification (each such evaluation also counts an exact fallback).
	CertFailures uint64 `json:"certification_failures"`
	// ExactFallbacks counts verdicts decided by the exact tier — because
	// the filter was disabled, the LP was below the filter's size gate,
	// the filter was inconclusive, or certification failed.
	ExactFallbacks uint64 `json:"exact_fallbacks"`

	// KernelFastSolves counts exact-tier solves that completed entirely in
	// overflow-checked int64 arithmetic; KernelPromotedSolves counts those
	// that promoted at least one tableau element to big arithmetic, and
	// KernelPromotions totals the element promotions. The promotion rate —
	// never hidden — is the honesty metric of the int64 kernel: verdicts
	// are bit-identical either way, promotions only cost speed.
	KernelFastSolves     uint64 `json:"kernel_fast_solves"`
	KernelPromotedSolves uint64 `json:"kernel_promoted_solves"`
	KernelPromotions     uint64 `json:"kernel_promotions"`
	// CertifyKernel / CertifyBigRat split certificate checks by arithmetic
	// path: fully int64-kernel versus big.Rat fallback.
	CertifyKernel uint64 `json:"certifications_int64"`
	CertifyBigRat uint64 `json:"certifications_bigrat"`

	// WarmSolves counts verdicts decided by the warm-start dual simplex
	// re-entering a cached basis; WarmDualPivots totals the dual pivots
	// those solves performed (mean pivots per warm start is the ratio).
	// ColdSolves counts verdicts decided by a from-scratch exact solve —
	// the exact-tier fallback or a warm-solver cold seed. Filter-decided
	// verdicts count as neither.
	WarmSolves     uint64 `json:"warm_solves"`
	WarmDualPivots uint64 `json:"warm_dual_pivots"`
	ColdSolves     uint64 `json:"cold_solves"`
}

// MeanWarmPivots returns the mean dual pivots per warm-started solve.
func (c SolverCounts) MeanWarmPivots() float64 {
	if c.WarmSolves == 0 {
		return 0
	}
	return float64(c.WarmDualPivots) / float64(c.WarmSolves)
}

// FilterHits is the number of evaluations the float tier settled.
func (c SolverCounts) FilterHits() uint64 { return c.FilterFeasible + c.FilterInfeasible }

// Snapshot returns current counter values.
func (s *SolverStats) Snapshot() SolverCounts {
	return SolverCounts{
		Evaluations:          s.evaluations.Load(),
		FilterFeasible:       s.filterFeasible.Load(),
		FilterInfeasible:     s.filterInfeasible.Load(),
		CertFailures:         s.certFailures.Load(),
		ExactFallbacks:       s.exactFallbacks.Load(),
		KernelFastSolves:     s.kernelFastSolves.Load(),
		KernelPromotedSolves: s.kernelPromotedSolves.Load(),
		KernelPromotions:     s.kernelPromotions.Load(),
		CertifyKernel:        s.certifyKernel.Load(),
		CertifyBigRat:        s.certifyBigRat.Load(),
		WarmSolves:           s.warmSolves.Load(),
		WarmDualPivots:       s.warmDualPivots.Load(),
		ColdSolves:           s.coldSolves.Load(),
	}
}

// noteCertify records which arithmetic path a certificate check took.
func (s *SolverStats) noteCertify(cert *simplex.Certifier) {
	if s == nil {
		return
	}
	if cert.LastKernel() {
		s.certifyKernel.Add(1)
	} else {
		s.certifyBigRat.Add(1)
	}
}

// noteExactSolve records the kernel telemetry of an exact-tier solve.
func (s *SolverStats) noteExactSolve(ws *simplex.Workspace) {
	if s == nil {
		return
	}
	kernel, promotions := ws.LastSolveKernel()
	if !kernel {
		return
	}
	if promotions == 0 {
		s.kernelFastSolves.Add(1)
	} else {
		s.kernelPromotedSolves.Add(1)
		s.kernelPromotions.Add(promotions)
	}
}

// Solver bundles the exact LP workspace with the optional float filter, a
// certificate-checking scratch and a telemetry sink. Like its workspaces
// it is not safe for concurrent use; pool one per worker. The zero value
// (or a nil *Solver) behaves as a fresh exact-only solver.
type Solver struct {
	// Exact is the rational simplex workspace — the authoritative tier.
	// nil allocates a fresh workspace on first use.
	Exact *simplex.Workspace
	// Filter is the float64 revised-simplex tier; nil forces exact mode.
	Filter *floatlp.Workspace
	// Cert holds the certificate checker's kernel scratch; nil allocates
	// one on first use.
	Cert *simplex.Certifier
	// Warm, when non-nil, is tried before the float filter: it re-enters
	// the cached optimal basis of the previous structurally-overlapping
	// LP by dual simplex. The engine threads one per (worker, model)
	// through consecutive region tests; a declined attempt (first
	// sighting, low overlap, unsupported shape) costs one
	// canonicalization scan and falls through to the usual tiers.
	Warm *simplex.WarmSolver
	// Stats, when non-nil, receives per-evaluation telemetry.
	Stats *SolverStats
}

// NewSolver returns a hybrid solver with fresh workspaces reporting into
// stats (which may be nil).
func NewSolver(stats *SolverStats) *Solver {
	return &Solver{
		Exact:  simplex.NewWorkspace(),
		Filter: floatlp.NewWorkspace(),
		Cert:   simplex.NewCertifier(),
		Stats:  stats,
	}
}

// filterMinSize gates the float tier by LP size (variables × rows). Below
// it the exact simplex beats the filter's convert + solve + certify round
// trip. PR 5 measured the crossover at ~512 against the freshly-landed
// int64 kernel, but the kernel also made certificate checks cheap, and
// re-measuring with the warm tier in place moved the crossover back down:
// on the Fig 9a groups the filter now wins ~1.5× at size 32 (Ret), ~2.4×
// at size 320 (L2TLB) and ~8.5× at size 2420 (Walk), and only ties at
// size 8 (the 2-counter pde model; BenchmarkTinyGate in this package
// re-measures the bottom end). Only trivially small LPs skip the filter.
const filterMinSize = 16

// exactWS returns the exact workspace, allocating one on first use.
func (s *Solver) exactWS() *simplex.Workspace {
	if s.Exact == nil {
		s.Exact = simplex.NewWorkspace()
	}
	return s.Exact
}

// certifier returns the certificate scratch, allocating one on first use.
func (s *Solver) certifier() *simplex.Certifier {
	if s.Cert == nil {
		s.Cert = simplex.NewCertifier()
	}
	return s.Cert
}

// Feasible decides whether p is feasible. The float tier runs first (when
// present); its claim stands only if the accompanying certificate verifies
// exactly, otherwise the exact simplex decides. The answer is therefore
// always the exact solver's answer, usually without running it.
func (s *Solver) Feasible(p *simplex.Problem) bool {
	if s == nil {
		return simplex.NewWorkspace().SolveStatus(p) == simplex.Optimal
	}
	if s.Stats != nil {
		s.Stats.evaluations.Add(1)
	}
	if s.Warm != nil {
		if feasible, ok := s.Warm.Feasible(p); ok {
			if s.Stats != nil {
				warm, pivots := s.Warm.LastSolve()
				if warm {
					s.Stats.warmSolves.Add(1)
					s.Stats.warmDualPivots.Add(pivots)
				} else {
					s.Stats.coldSolves.Add(1)
				}
			}
			return feasible
		}
	}
	if s.Filter != nil && p.NumVars*len(p.Constraints) >= filterMinSize {
		switch out := s.Filter.Feasibility(p); out.Status {
		case floatlp.Feasible:
			cert := s.certifier()
			if cert.CertifyPoint(p, out.Point) {
				s.Stats.noteCertify(cert)
				if s.Stats != nil {
					s.Stats.filterFeasible.Add(1)
				}
				return true
			}
			s.Stats.noteCertify(cert)
			if s.Stats != nil {
				s.Stats.certFailures.Add(1)
			}
		case floatlp.Infeasible:
			cert := s.certifier()
			if cert.CertifyFarkas(p, out.Ray) {
				s.Stats.noteCertify(cert)
				if s.Stats != nil {
					s.Stats.filterInfeasible.Add(1)
				}
				return false
			}
			s.Stats.noteCertify(cert)
			if s.Stats != nil {
				s.Stats.certFailures.Add(1)
			}
		}
	}
	if s.Stats != nil {
		s.Stats.exactFallbacks.Add(1)
		s.Stats.coldSolves.Add(1)
	}
	ws := s.exactWS()
	feasible := ws.SolveStatus(p) == simplex.Optimal
	s.Stats.noteExactSolve(ws)
	return feasible
}
