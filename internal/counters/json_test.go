package counters

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestObservationJSONRoundTrip(t *testing.T) {
	o := NewObservation("bench", NewSet("load.ret", "load.causes_walk"))
	o.Append([]float64{10, 2})
	o.Append([]float64{11, 3.5})
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var got Observation
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Label != o.Label {
		t.Fatalf("label %q, want %q", got.Label, o.Label)
	}
	if !got.Set.Equal(o.Set) {
		t.Fatalf("set %v, want %v", got.Set, o.Set)
	}
	if !reflect.DeepEqual(got.Samples, o.Samples) {
		t.Fatalf("samples %v, want %v", got.Samples, o.Samples)
	}
}

func TestObservationJSONRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"no events", `{"label":"x","events":[],"samples":[]}`, "no events"},
		{"duplicate events", `{"label":"x","events":["a","a"],"samples":[]}`, "duplicate"},
		{"ragged row", `{"label":"x","events":["a","b"],"samples":[[1,2],[3]]}`, "sample 1"},
		{"not json", `{"label":`, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var o Observation
			err := json.Unmarshal([]byte(c.body), &o)
			if err == nil {
				t.Fatal("malformed observation decoded without error")
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
