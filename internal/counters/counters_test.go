package counters

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestHaswellRegistryGroups(t *testing.T) {
	r := NewHaswellRegistry(false)
	if got := len(r.GroupEvents(GroupRet)); got != 4 {
		t.Errorf("Ret group: got %d events, want 4", got)
	}
	if got := len(r.GroupEvents(GroupSTLB)); got != 6 {
		t.Errorf("STLB group: got %d events, want 6", got)
	}
	if got := len(r.GroupEvents(GroupWalk)); got != 12 {
		t.Errorf("Walk group: got %d events, want 12", got)
	}
	if got := len(r.GroupEvents(GroupRefs)); got != 4 {
		t.Errorf("Refs group: got %d events, want 4", got)
	}
	if got := len(r.Events()); got != 26 {
		t.Errorf("total: got %d events, want 26", got)
	}
	if r.Group("load.causes_walk") != GroupWalk {
		t.Error("load.causes_walk should be in Walk group")
	}
	if r.Group("nonsense") != GroupOther {
		t.Error("unknown event should be GroupOther")
	}
}

func TestHaswellRegistryMMUCache(t *testing.T) {
	r := NewHaswellRegistry(true)
	if got := len(r.GroupEvents(GroupMMUC)); got != 6 {
		t.Errorf("MMU$ group: got %d events, want 6", got)
	}
}

func TestCumulativeGroups(t *testing.T) {
	r := NewHaswellRegistry(false)
	steps := r.CumulativeGroups(false)
	if len(steps) != 4 {
		t.Fatalf("got %d steps, want 4", len(steps))
	}
	wantSizes := []int{4, 10, 22, 26}
	for i, st := range steps {
		if st.Set.Len() != wantSizes[i] {
			t.Errorf("step %s: got %d counters, want %d", st.Group, st.Set.Len(), wantSizes[i])
		}
	}
	// Steps are cumulative.
	for i := 1; i < len(steps); i++ {
		if !steps[i-1].Set.Subset(steps[i].Set) {
			t.Errorf("step %d not cumulative", i)
		}
	}
}

func TestEventTypeAndE(t *testing.T) {
	e := E(Load, CausesWalk)
	if e != "load.causes_walk" {
		t.Fatalf("E: got %q", e)
	}
	typ, ok := e.Type()
	if !ok || typ != Load {
		t.Fatalf("Type: got %v %v", typ, ok)
	}
	if _, ok := WalkRefL1.Type(); ok {
		t.Fatal("walk_ref.l1 has no access type")
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet("b", "a", "b", "c")
	if s.Len() != 3 {
		t.Fatalf("len: got %d want 3", s.Len())
	}
	if i, ok := s.Index("a"); !ok || i != 1 {
		t.Fatalf("Index(a): got %d,%v", i, ok)
	}
	if s.At(0) != "b" {
		t.Fatalf("At(0): got %q", s.At(0))
	}
	if !s.Contains("c") || s.Contains("z") {
		t.Fatal("Contains wrong")
	}
}

func TestNewSortedSet(t *testing.T) {
	s := NewSortedSet("c", "a", "b")
	if s.At(0) != "a" || s.At(2) != "c" {
		t.Fatalf("not sorted: %v", s.Events())
	}
}

func TestSetOps(t *testing.T) {
	s := NewSet("a", "b")
	u := s.Union(NewSet("b", "c"))
	if u.Len() != 3 || !u.Contains("c") {
		t.Fatalf("union wrong: %v", u.Events())
	}
	if !s.Subset(u) || u.Subset(s) {
		t.Fatal("subset wrong")
	}
	r := u.Restrict(NewSet("c", "a"))
	if r.Len() != 2 || r.At(0) != "a" {
		t.Fatalf("restrict wrong: %v", r.Events())
	}
	if !s.Equal(NewSet("a", "b")) || s.Equal(NewSet("b", "a")) {
		t.Fatal("equal wrong")
	}
}

func TestVectorOps(t *testing.T) {
	s := NewSet("a", "b")
	v := NewVector(s)
	v.Add("a", 2)
	v.Add("a", 1)
	v.Add("zz", 100) // ignored: not programmed
	if v.Get("a") != 3 || v.Get("zz") != 0 {
		t.Fatalf("get: %v", v.Values)
	}
	v.SetValue("b", 7)
	w := v.Clone()
	w.Add("b", 1)
	if v.Get("b") != 7 {
		t.Fatal("clone aliases")
	}
	sum := v.Plus(w)
	if sum.Get("b") != 15 {
		t.Fatalf("plus: %v", sum.Values)
	}
	p := v.Project(NewSet("b", "c"))
	if p.Get("b") != 7 || p.Get("c") != 0 {
		t.Fatalf("project: %v", p.Values)
	}
	if !strings.Contains(v.String(), "a=3") {
		t.Fatalf("string: %q", v.String())
	}
	if NewVector(s).String() != "(zero)" {
		t.Fatal("zero string")
	}
}

func TestObservationMeanTotal(t *testing.T) {
	s := NewSet("a", "b")
	o := NewObservation("w", s)
	o.Append([]float64{1, 2})
	o.Append([]float64{3, 4})
	m := o.Mean()
	if m[0] != 2 || m[1] != 3 {
		t.Fatalf("mean: %v", m)
	}
	tot := o.Total()
	if tot[0] != 4 || tot[1] != 6 {
		t.Fatalf("total: %v", tot)
	}
	if o.Len() != 2 {
		t.Fatalf("len: %d", o.Len())
	}
}

func TestObservationProject(t *testing.T) {
	s := NewSet("a", "b")
	o := NewObservation("w", s)
	o.Append([]float64{1, 2})
	p := o.Project(NewSet("b", "c"))
	if p.Samples[0][0] != 2 || p.Samples[0][1] != 0 {
		t.Fatalf("project: %v", p.Samples)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := NewSet("a", "b")
	o := NewObservation("w", s)
	o.Append([]float64{1.5, 2})
	o.Append([]float64{3, 4.25})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, o); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "w")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || !back.Set.Equal(s) {
		t.Fatalf("roundtrip: %+v", back)
	}
	if back.Samples[1][1] != 4.25 {
		t.Fatalf("value: %v", back.Samples)
	}
}

func TestCSVBadInput(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b\n1,notanumber\n"), "w"); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ReadCSV(strings.NewReader("a,a\n1,2\n"), "w"); err == nil {
		t.Fatal("expected duplicate header error")
	}
	if _, err := ReadCSV(strings.NewReader(""), "w"); err == nil {
		t.Fatal("expected header error")
	}
}

func TestVectorProjectProperty(t *testing.T) {
	// Property: projecting onto the same set is the identity.
	f := func(a, b, c float64) bool {
		s := NewSet("x", "y", "z")
		v := NewVector(s)
		v.SetValue("x", a)
		v.SetValue("y", b)
		v.SetValue("z", c)
		p := v.Project(s)
		return p.Get("x") == a && p.Get("y") == b && p.Get("z") == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
