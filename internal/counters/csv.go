package counters

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes an observation as CSV with a header row of event names.
// Each subsequent row is one sample interval.
func WriteCSV(w io.Writer, o *Observation) error {
	cw := csv.NewWriter(w)
	header := make([]string, o.Set.Len())
	for i, e := range o.Set.Events() {
		header[i] = string(e)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("counters: write header: %w", err)
	}
	row := make([]string, o.Set.Len())
	for _, sample := range o.Samples {
		for i, v := range sample {
			row[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("counters: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses an observation written by WriteCSV. The label is supplied
// by the caller since CSV carries no metadata.
func ReadCSV(r io.Reader, label string) (*Observation, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("counters: read header: %w", err)
	}
	events := make([]Event, len(header))
	for i, h := range header {
		if h == "" {
			// An empty event name is meaningless and (as the sole field of
			// a row) would not even survive a CSV re-encoding.
			return nil, fmt.Errorf("counters: empty event name in CSV header column %d", i+1)
		}
		events[i] = Event(h)
	}
	set := NewSet(events...)
	if set.Len() != len(header) {
		return nil, fmt.Errorf("counters: duplicate event in CSV header")
	}
	o := NewObservation(label, set)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("counters: read row: %w", err)
		}
		row := make([]float64, len(rec))
		for i, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("counters: line %d column %d: %w", line, i+1, err)
			}
			row[i] = v
		}
		o.Append(row)
	}
	return o, nil
}
