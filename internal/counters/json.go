package counters

import (
	"encoding/json"
	"fmt"
)

// observationJSON is the wire form of an Observation: the event names fix
// the column order of the sample matrix, exactly as the CSV encoding's
// header row does.
type observationJSON struct {
	Label   string      `json:"label"`
	Events  []Event     `json:"events"`
	Samples [][]float64 `json:"samples"`
}

// MarshalJSON encodes the observation as {label, events, samples}. The
// default struct encoding would lose the counter set (its fields are
// unexported), so JSON goes through this explicit wire form.
func (o *Observation) MarshalJSON() ([]byte, error) {
	return json.Marshal(observationJSON{
		Label:   o.Label,
		Events:  o.Set.Events(),
		Samples: o.Samples,
	})
}

// UnmarshalJSON decodes the wire form written by MarshalJSON, validating
// what the typed API enforces by construction: at least one event, no
// duplicate events, and every sample row as wide as the event list.
func (o *Observation) UnmarshalJSON(data []byte) error {
	var w observationJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("counters: decode observation: %w", err)
	}
	if len(w.Events) == 0 {
		return fmt.Errorf("counters: observation %q has no events", w.Label)
	}
	for _, e := range w.Events {
		if e == "" {
			return fmt.Errorf("counters: observation %q has an empty event name", w.Label)
		}
	}
	set := NewSet(w.Events...)
	if set.Len() != len(w.Events) {
		return fmt.Errorf("counters: observation %q has duplicate events", w.Label)
	}
	for i, row := range w.Samples {
		if len(row) != set.Len() {
			return fmt.Errorf("counters: observation %q sample %d has %d values, want %d",
				w.Label, i, len(row), set.Len())
		}
	}
	o.Label = w.Label
	o.Set = set
	o.Samples = w.Samples
	return nil
}
