package counters

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV decoder's contract on untrusted corpus
// uploads: malformed input returns an error — never a panic — and
// accepted input survives a write/read round trip with bit-identical
// samples.
func FuzzReadCSV(f *testing.F) {
	seeds := []string{
		"",
		"a,b\n1,2\n",
		"a,b\n1,2\n3,4\n",
		"load.causes_walk,load.pde$_miss\n10,2\n11,3\n",
		"a,a\n1,1\n",          // duplicate header
		"a,b\n1\n",            // ragged row
		"a,b\n1,notanum\n",    // non-numeric
		"a,b\nNaN,Inf\n",      // non-finite values parse as floats
		"a,b\n1e308,-1e308\n", // huge magnitudes
		"a,b\n\"1\",\"2\"\n",  // quoted fields
		"\"a\nb\",c\n1,2\n",   // newline inside quoted header
		"a,b\r\n1,2\r\n",      // CRLF
		",\n,\n",              // empty names and fields
		"a\n0.1\n0.2\n0.30000000000000004\n",
		"a,b\n1,2,3\n", // too many fields
		"\xff\xfe,b\n1,2\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		o, err := ReadCSV(strings.NewReader(src), "fuzz")
		if err != nil {
			return // rejected input only needs to not panic
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, o); err != nil {
			t.Fatalf("accepted observation does not re-encode: %v", err)
		}
		o2, err := ReadCSV(&buf, "fuzz")
		if err != nil {
			t.Fatalf("re-encoded CSV does not re-parse: %v\n%q", err, buf.String())
		}
		if o2.Set.Len() != o.Set.Len() {
			t.Fatalf("round trip changed the counter set: %v -> %v", o.Set, o2.Set)
		}
		if len(o2.Samples) != len(o.Samples) {
			t.Fatalf("round trip changed the sample count: %d -> %d", len(o.Samples), len(o2.Samples))
		}
		for i := range o.Samples {
			for j := range o.Samples[i] {
				a, b := o.Samples[i][j], o2.Samples[i][j]
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("sample (%d,%d) changed across the round trip: %v -> %v", i, j, a, b)
				}
			}
		}
	})
}
