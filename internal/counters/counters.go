// Package counters defines hardware event counter (HEC) names, the logical
// counter groups used throughout the paper (Table 2), ordered counter sets,
// dense value vectors, and observations (time series of counter samples).
//
// CounterPoint reasons about vectors of HEC values. A CounterSet fixes an
// ordering of event names so that every component of the system — μpath
// counter signatures, model cones, confidence regions, and the feasibility
// LP — indexes counters consistently.
package counters

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Event is the name of a single hardware event counter, e.g.
// "load.causes_walk" or "walk_ref.l2". Event names follow the paper's
// shorthand (Table 2) rather than the raw perf event strings.
type Event string

// AccessType distinguishes the two fundamental micro-op types the paper
// models (Appendix C: "we assume there are two fundamental micro-op types").
type AccessType string

// The two access types. Most Haswell MMU events are parameterised by one.
const (
	Load  AccessType = "load"
	Store AccessType = "store"
)

// AccessTypes lists both access types in canonical order.
func AccessTypes() []AccessType { return []AccessType{Load, Store} }

// Group names the logical counter groups of Table 2 plus the hypothetical
// MMU$ group from Figure 1b.
type Group string

// Counter groups, in the order Figure 1b and Figure 9 sweep them.
const (
	GroupRet   Group = "Ret"   // retired micro-op events (4)
	GroupSTLB  Group = "L2TLB" // second-level TLB hit events (6; paper's axis label "L2TLB | 10" counts Ret∪STLB)
	GroupWalk  Group = "Walk"  // page-walk events (12)
	GroupRefs  Group = "Refs"  // page-walker memory reference events (4)
	GroupMMUC  Group = "MMU$"  // hypothetical per-level MMU cache events (Figure 1b, green)
	GroupOther Group = "Other"
)

// Walk-group events (parameterised by access type).
const (
	CausesWalk  = "causes_walk"  // stlb_misses.miss_causes_a_walk
	WalkDone4K  = "walk_done_4k" // walk_completed_4k
	WalkDone2M  = "walk_done_2m" // walk_completed_2m_4m
	WalkDone1G  = "walk_done_1g" // walk_completed_1g
	WalkDone    = "walk_done"    // walk_completed
	PDECacheMis = "pde$_miss"    // pde_cache_miss
)

// Ret-group events.
const (
	RetSTLBMiss = "ret_stlb_miss" // mem_uops_retired.stlb_miss_Ts
	Ret         = "ret"           // mem_uops_retired.all_Ts
)

// STLB-group events.
const (
	STLBHit4K = "stlb_hit_4k"
	STLBHit2M = "stlb_hit_2m"
	STLBHit   = "stlb_hit"
)

// Refs-group events (not parameterised by access type).
const (
	WalkRefL1  Event = "walk_ref.l1"  // page_walker_loads.dtlb_l1
	WalkRefL2  Event = "walk_ref.l2"  // page_walker_loads.dtlb_l2
	WalkRefL3  Event = "walk_ref.l3"  // page_walker_loads.dtlb_l3
	WalkRefMem Event = "walk_ref.mem" // page_walker_loads.memory
)

// E builds a typed event name such as "load.causes_walk".
func E(t AccessType, suffix string) Event {
	return Event(string(t) + "." + suffix)
}

// Type reports the access type prefix of e and whether it has one.
func (e Event) Type() (AccessType, bool) {
	s := string(e)
	if strings.HasPrefix(s, "load.") {
		return Load, true
	}
	if strings.HasPrefix(s, "store.") {
		return Store, true
	}
	return "", false
}

// Registry describes the documented events and their group classification.
type Registry struct {
	groups map[Event]Group
	order  []Event
}

// NewHaswellRegistry returns the registry for the Intel Haswell MMU events
// used in the paper (Table 2), in the paper's group order, optionally
// extended with the hypothetical MMU$ group of Figure 1b.
func NewHaswellRegistry(includeMMUCache bool) *Registry {
	r := &Registry{groups: make(map[Event]Group)}
	add := func(g Group, evs ...Event) {
		for _, e := range evs {
			if _, dup := r.groups[e]; dup {
				panic(fmt.Sprintf("counters: duplicate event %q", e))
			}
			r.groups[e] = g
			r.order = append(r.order, e)
		}
	}
	for _, t := range AccessTypes() {
		add(GroupRet, E(t, RetSTLBMiss), E(t, Ret))
	}
	for _, t := range AccessTypes() {
		add(GroupSTLB, E(t, STLBHit4K), E(t, STLBHit2M), E(t, STLBHit))
	}
	for _, t := range AccessTypes() {
		add(GroupWalk,
			E(t, CausesWalk), E(t, WalkDone4K), E(t, WalkDone2M),
			E(t, WalkDone1G), E(t, WalkDone), E(t, PDECacheMis))
	}
	add(GroupRefs, WalkRefL1, WalkRefL2, WalkRefL3, WalkRefMem)
	if includeMMUCache {
		for _, t := range AccessTypes() {
			add(GroupMMUC,
				E(t, "pdpte$_miss"), E(t, "pml4e$_miss"), E(t, "pdpte$_hit"))
		}
	}
	return r
}

// Events returns all events in registry order.
func (r *Registry) Events() []Event {
	out := make([]Event, len(r.order))
	copy(out, r.order)
	return out
}

// Group returns the group of e, or GroupOther if unknown.
func (r *Registry) Group(e Event) Group {
	if g, ok := r.groups[e]; ok {
		return g
	}
	return GroupOther
}

// GroupEvents returns the events of group g in registry order.
func (r *Registry) GroupEvents(g Group) []Event {
	var out []Event
	for _, e := range r.order {
		if r.groups[e] == g {
			out = append(out, e)
		}
	}
	return out
}

// CumulativeGroups returns the cumulative counter sets used on the x-axes of
// Figures 1b and 9: Ret | 4, L2TLB | 10, Walk | 22, Refs | 26 (the paper
// labels the Refs step "23" because it drops the redundant T.walk_done
// aggregates; we keep both variants available via dropAggregates).
func (r *Registry) CumulativeGroups(dropAggregates bool) []GroupStep {
	groupsInOrder := []Group{GroupRet, GroupSTLB, GroupWalk, GroupRefs}
	if len(r.GroupEvents(GroupMMUC)) > 0 {
		groupsInOrder = append(groupsInOrder, GroupMMUC)
	}
	var steps []GroupStep
	var acc []Event
	for _, g := range groupsInOrder {
		for _, e := range r.GroupEvents(g) {
			if dropAggregates && g == GroupRefs {
				// Drop the per-type walk_done aggregate when the Refs step is
				// reached, mirroring the paper's 23-counter "Refs" step.
				acc = removeEvent(acc, E(Load, WalkDone))
				dropAggregates = false
			}
			acc = append(acc, e)
		}
		set := NewSet(acc...)
		steps = append(steps, GroupStep{Group: g, Set: set})
	}
	return steps
}

func removeEvent(evs []Event, e Event) []Event {
	out := evs[:0]
	for _, x := range evs {
		if x != e {
			out = append(out, x)
		}
	}
	return out
}

// GroupStep is one point on the cumulative counter-group axis.
type GroupStep struct {
	Group Group
	Set   *Set
}

// Set is an ordered, indexable set of events. The ordering defines vector
// component positions for every numeric structure in CounterPoint. Sets
// are immutable once built.
type Set struct {
	events []Event
	index  map[Event]int

	keyOnce sync.Once
	key     string
}

// NewSet builds a Set from events, preserving first-occurrence order and
// dropping duplicates.
func NewSet(events ...Event) *Set {
	s := &Set{index: make(map[Event]int, len(events))}
	for _, e := range events {
		if _, dup := s.index[e]; dup {
			continue
		}
		s.index[e] = len(s.events)
		s.events = append(s.events, e)
	}
	return s
}

// NewSortedSet builds a Set with events in lexicographic order.
func NewSortedSet(events ...Event) *Set {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return NewSet(sorted...)
}

// Len returns the number of events in the set.
func (s *Set) Len() int { return len(s.events) }

// Events returns the events in set order.
func (s *Set) Events() []Event {
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Index returns the vector index of e and whether e is in the set.
func (s *Set) Index(e Event) (int, bool) {
	i, ok := s.index[e]
	return i, ok
}

// Contains reports whether e is in the set.
func (s *Set) Contains(e Event) bool {
	_, ok := s.index[e]
	return ok
}

// At returns the event at index i.
func (s *Set) At(i int) Event { return s.events[i] }

// Union returns a new set containing the events of s followed by any events
// of t not already present.
func (s *Set) Union(t *Set) *Set {
	return NewSet(append(s.Events(), t.Events()...)...)
}

// Subset reports whether every event of s is contained in t.
func (s *Set) Subset(t *Set) bool {
	for _, e := range s.events {
		if !t.Contains(e) {
			return false
		}
	}
	return true
}

// Restrict returns the events of s that are also in keep, preserving order.
func (s *Set) Restrict(keep *Set) *Set {
	var evs []Event
	for _, e := range s.events {
		if keep.Contains(e) {
			evs = append(evs, e)
		}
	}
	return NewSet(evs...)
}

// Equal reports whether s and t contain the same events in the same order.
func (s *Set) Equal(t *Set) bool {
	if s.Len() != t.Len() {
		return false
	}
	for i, e := range s.events {
		if t.events[i] != e {
			return false
		}
	}
	return true
}

// String renders the set as a comma-separated list.
func (s *Set) String() string {
	parts := make([]string, len(s.events))
	for i, e := range s.events {
		parts[i] = string(e)
	}
	return strings.Join(parts, ",")
}

// Key returns the set's canonical identity string (equal to String),
// memoised so cache lookups keyed by counter set do not re-render it.
func (s *Set) Key() string {
	s.keyOnce.Do(func() { s.key = s.String() })
	return s.key
}

// Vector is a dense vector of counter values aligned with a Set.
type Vector struct {
	Set    *Set
	Values []float64
}

// NewVector returns a zero vector over set.
func NewVector(set *Set) Vector {
	return Vector{Set: set, Values: make([]float64, set.Len())}
}

// Get returns the value of event e (0 if absent).
func (v Vector) Get(e Event) float64 {
	if i, ok := v.Set.Index(e); ok {
		return v.Values[i]
	}
	return 0
}

// Add increments event e by delta; events outside the set are ignored,
// matching hardware where unprogrammed counters simply do not count.
func (v Vector) Add(e Event, delta float64) {
	if i, ok := v.Set.Index(e); ok {
		v.Values[i] += delta
	}
}

// Set assigns value to event e if present in the set.
func (v Vector) SetValue(e Event, value float64) {
	if i, ok := v.Set.Index(e); ok {
		v.Values[i] = value
	}
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := Vector{Set: v.Set, Values: make([]float64, len(v.Values))}
	copy(out.Values, v.Values)
	return out
}

// Plus returns v + w; both must share the same Set.
func (v Vector) Plus(w Vector) Vector {
	if !v.Set.Equal(w.Set) {
		panic("counters: vector set mismatch")
	}
	out := v.Clone()
	for i := range out.Values {
		out.Values[i] += w.Values[i]
	}
	return out
}

// Project re-expresses v over target, dropping events not in target and
// zero-filling events of target absent from v.
func (v Vector) Project(target *Set) Vector {
	out := NewVector(target)
	for i, e := range v.Set.events {
		out.Add(e, v.Values[i])
	}
	return out
}

// String renders non-zero entries as "event=value" pairs.
func (v Vector) String() string {
	var b strings.Builder
	first := true
	for i, e := range v.Set.events {
		if v.Values[i] == 0 {
			continue
		}
		if !first {
			b.WriteString(" ")
		}
		first = false
		fmt.Fprintf(&b, "%s=%g", e, v.Values[i])
	}
	if first {
		return "(zero)"
	}
	return b.String()
}

// Observation is a labelled time series of counter sample vectors for one
// program execution, as recorded at regular intervals (paper §4).
type Observation struct {
	// Label identifies the workload/configuration that produced the samples.
	Label string
	// Set is the counter set shared by all samples.
	Set *Set
	// Samples holds one vector of per-interval counter values per row.
	Samples [][]float64
}

// NewObservation creates an empty observation over set.
func NewObservation(label string, set *Set) *Observation {
	return &Observation{Label: label, Set: set}
}

// Append adds one sample row (copied) to the observation.
func (o *Observation) Append(sample []float64) {
	if len(sample) != o.Set.Len() {
		panic(fmt.Sprintf("counters: sample width %d != set width %d", len(sample), o.Set.Len()))
	}
	row := make([]float64, len(sample))
	copy(row, sample)
	o.Samples = append(o.Samples, row)
}

// AppendVector adds a Vector sample, projecting it onto the observation set.
func (o *Observation) AppendVector(v Vector) {
	o.Append(v.Project(o.Set).Values)
}

// Len returns the number of samples.
func (o *Observation) Len() int { return len(o.Samples) }

// Mean returns the per-counter sample mean Ȳ.
func (o *Observation) Mean() []float64 {
	n := o.Set.Len()
	mean := make([]float64, n)
	if len(o.Samples) == 0 {
		return mean
	}
	for _, row := range o.Samples {
		for i, x := range row {
			mean[i] += x
		}
	}
	inv := 1.0 / float64(len(o.Samples))
	for i := range mean {
		mean[i] *= inv
	}
	return mean
}

// Total returns the per-counter sums over all samples.
func (o *Observation) Total() []float64 {
	n := o.Set.Len()
	tot := make([]float64, n)
	for _, row := range o.Samples {
		for i, x := range row {
			tot[i] += x
		}
	}
	return tot
}

// Project returns a copy of the observation restricted to target's events.
func (o *Observation) Project(target *Set) *Observation {
	out := NewObservation(o.Label, target)
	idx := make([]int, target.Len())
	for j := 0; j < target.Len(); j++ {
		if i, ok := o.Set.Index(target.At(j)); ok {
			idx[j] = i
		} else {
			idx[j] = -1
		}
	}
	for _, row := range o.Samples {
		proj := make([]float64, target.Len())
		for j, i := range idx {
			if i >= 0 {
				proj[j] = row[i]
			}
		}
		out.Samples = append(out.Samples, proj)
	}
	return out
}
