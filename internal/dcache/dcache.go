// Package dcache is a second, deliberately small case-study component
// demonstrating that CounterPoint generalises beyond the MMU (paper §9:
// "exploring the utility of CounterPoint to [other components] would
// broaden its applicability", §3: μpath-style modelling "is well
// positioned to extend to other microarchitectural components").
//
// The component is an L1 data cache with an optional next-line stream
// prefetcher, exposing three HECs:
//
//	l1d.hit   demand access served by the L1
//	l1d.miss  demand access that missed
//	l1d.fill  lines filled into the L1 (demand fills and prefetch fills)
//
// The conventional mental model says every fill is a demand fill:
// l1d.fill = l1d.miss. A stream prefetcher breaks that equality — fills
// exceed misses on sequential workloads — and CounterPoint localises the
// flaw the same way it does for the MMU: the violated constraint names the
// fill counter, the refined μDD adds prefetch μpaths, and the refined
// model is feasible while remaining refutable on prefetch-free hardware.
package dcache

import (
	"repro/internal/counters"
	"repro/internal/memsim"
	"repro/internal/workloads"
)

// HEC names exposed by the simulated L1D.
const (
	Hit  counters.Event = "l1d.hit"
	Miss counters.Event = "l1d.miss"
	Fill counters.Event = "l1d.fill"
)

// Set returns the component's counter set.
func Set() *counters.Set {
	return counters.NewSet(Hit, Miss, Fill)
}

// Config parameterises the simulated cache.
type Config struct {
	SizeBytes, Ways, LineBytes int
	// StreamPrefetcher fills line L+1 when two consecutive demand accesses
	// hit consecutive lines L-1, L (ascending), mirroring a next-line
	// stream detector.
	StreamPrefetcher bool
}

// DefaultConfig is a 32 KB, 8-way L1D with the prefetcher on (the
// simulated ground truth).
func DefaultConfig() Config {
	return Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, StreamPrefetcher: true}
}

// Sim is the simulated L1D.
type Sim struct {
	cfg      Config
	cache    *memsim.Cache
	counts   counters.Vector
	lastLine uint64
	haveLast bool
}

// NewSim builds the cache simulator.
func NewSim(cfg Config) (*Sim, error) {
	c, err := memsim.NewCache(cfg.SizeBytes, cfg.Ways, cfg.LineBytes)
	if err != nil {
		return nil, err
	}
	return &Sim{cfg: cfg, cache: c, counts: counters.NewVector(Set())}, nil
}

// Access performs one demand access.
func (s *Sim) Access(va uint64) {
	line := va / uint64(s.cfg.LineBytes)
	if s.cache.Access(va) {
		s.counts.Add(Hit, 1)
	} else {
		s.counts.Add(Miss, 1)
		s.counts.Add(Fill, 1)
	}
	if s.cfg.StreamPrefetcher && s.haveLast && line == s.lastLine+1 {
		// Stream detected: prefetch the next line if absent.
		next := (line + 1) * uint64(s.cfg.LineBytes)
		if !s.cache.Access(next) {
			// Access filled it; the fill is a prefetch fill.
			s.counts.Add(Fill, 1)
		}
	}
	s.lastLine = line
	s.haveLast = true
}

// Counts snapshots the counters.
func (s *Sim) Counts() counters.Vector { return s.counts.Clone() }

// Observation runs gen for numSamples intervals of accessesPerSample and
// returns per-interval counter deltas.
func (s *Sim) Observation(gen workloads.Generator, numSamples, accessesPerSample int) *counters.Observation {
	o := counters.NewObservation(gen.Name(), Set())
	prev := s.counts.Clone()
	for k := 0; k < numSamples; k++ {
		for i := 0; i < accessesPerSample; i++ {
			s.Access(gen.Next().VA)
		}
		delta := make([]float64, Set().Len())
		for i := range delta {
			delta[i] = s.counts.Values[i] - prev.Values[i]
		}
		o.Append(delta)
		prev = s.counts.Clone()
	}
	return o
}

// ConventionalModelSrc is the textbook L1D μDD: every miss is filled, and
// nothing else fills.
const ConventionalModelSrc = `
switch L1DStatus {
    Hit  => incr l1d.hit;
    Miss => { incr l1d.miss; incr l1d.fill; };
};
done;
`

// PrefetcherModelSrc refines the conventional model: a demand access may
// additionally trigger a stream prefetch that fills a line without a
// demand miss.
const PrefetcherModelSrc = `
switch L1DStatus {
    Hit  => incr l1d.hit;
    Miss => { incr l1d.miss; incr l1d.fill; };
};
switch PfTriggered {
    No  => pass;
    Yes => switch PfLineAbsent {
        Yes => incr l1d.fill;
        No  => pass;
    };
};
done;
`
