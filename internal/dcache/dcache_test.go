package dcache

import (
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func TestSimCountsBasics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StreamPrefetcher = false
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Access(0)
	s.Access(0)
	c := s.Counts()
	if c.Get(Hit) != 1 || c.Get(Miss) != 1 || c.Get(Fill) != 1 {
		t.Fatalf("counts: %s", c)
	}
}

func TestStreamPrefetcherFillsAhead(t *testing.T) {
	s, err := NewSim(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Sequential lines 0,1: the pair triggers a prefetch of line 2.
	s.Access(0)
	s.Access(64)
	c := s.Counts()
	if c.Get(Fill) != c.Get(Miss)+1 {
		t.Fatalf("prefetch fill missing: %s", c)
	}
	// The prefetched line now hits.
	s.Access(128)
	if got := s.Counts().Get(Hit); got != 1 {
		t.Fatalf("prefetched line should hit: hits=%g", got)
	}
}

func TestRandomDoesNotTriggerStreams(t *testing.T) {
	s, err := NewSim(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workloads.NewRandom(64<<20, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		s.Access(gen.Next().VA)
	}
	c := s.Counts()
	// A few accidental adjacencies are possible but fills ≈ misses.
	if c.Get(Fill) > c.Get(Miss)*1.01 {
		t.Fatalf("random stream should barely prefetch: %s", c)
	}
}

// TestCaseStudyEndToEnd runs the full CounterPoint loop on the second
// component: the conventional model is refuted by prefetching hardware on
// a sequential workload, the violated constraint names the fill counter,
// and the refined model is feasible.
func TestCaseStudyEndToEnd(t *testing.T) {
	s, err := NewSim(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workloads.NewLinear(8<<20, 64, 1.0, false)
	if err != nil {
		t.Fatal(err)
	}
	obs := s.Observation(gen, 20, 10000)

	conventional, err := core.ModelFromDSL("l1d-conventional", ConventionalModelSrc, Set())
	if err != nil {
		t.Fatal(err)
	}
	v, err := conventional.TestObservation(obs, core.DefaultConfidence, stats.Correlated, true)
	if err != nil {
		t.Fatal(err)
	}
	if v.Feasible {
		t.Fatal("conventional model must be refuted by prefetching hardware")
	}
	foundFill := false
	for _, k := range v.Violations {
		if k.String() == "l1d.fill = l1d.miss" || k.String() == "l1d.miss = l1d.fill" {
			foundFill = true
		}
	}
	if !foundFill {
		t.Fatalf("violated constraints should name the fill/miss equality: %v", v.Violations)
	}

	refined, err := core.ModelFromDSL("l1d-prefetcher", PrefetcherModelSrc, Set())
	if err != nil {
		t.Fatal(err)
	}
	v2, err := refined.TestObservation(obs, core.DefaultConfidence, stats.Correlated, false)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Feasible {
		t.Fatal("refined model must accept the data")
	}

	// And the refined model remains refutable: prefetcher-free hardware on
	// the same workload satisfies the conventional model too.
	cfg := DefaultConfig()
	cfg.StreamPrefetcher = false
	plain, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := workloads.NewLinear(8<<20, 64, 1.0, false)
	if err != nil {
		t.Fatal(err)
	}
	obs2 := plain.Observation(gen2, 20, 10000)
	v3, err := conventional.TestObservation(obs2, core.DefaultConfidence, stats.Correlated, false)
	if err != nil {
		t.Fatal(err)
	}
	if !v3.Feasible {
		t.Fatal("conventional model must accept prefetcher-free hardware")
	}
}
