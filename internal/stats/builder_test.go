package stats

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/counters"
)

func builderObs(label string, seed int64) *counters.Observation {
	set := counters.NewSet("a", "b", "c")
	o := counters.NewObservation(label, set)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 100; i++ {
		x := 100 + 5*rng.NormFloat64()
		o.Append([]float64{x, x + rng.NormFloat64(), 50 + rng.NormFloat64()})
	}
	return o
}

// TestBuilderMatchesNewRegion checks the memoised path is observationally
// identical to the direct construction.
func TestBuilderMatchesNewRegion(t *testing.T) {
	b := NewRegionBuilder()
	o := builderObs("x", 1)
	for _, mode := range []NoiseMode{Correlated, Independent} {
		got, err := b.Region(o, nil, 0.99, mode)
		if err != nil {
			t.Fatal(err)
		}
		want, err := NewRegion(o, 0.99, mode)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Set.Equal(want.Set) || got.Mode != want.Mode {
			t.Fatalf("region identity mismatch")
		}
		for i := range want.HalfWidths {
			if math.Abs(got.HalfWidths[i]-want.HalfWidths[i]) > 1e-12 {
				t.Fatalf("half-width %d: %g vs %g", i, got.HalfWidths[i], want.HalfWidths[i])
			}
			for j := range want.Axes[i] {
				if got.Axes[i][j] != want.Axes[i][j] {
					t.Fatalf("axis (%d,%d): %g vs %g", i, j, got.Axes[i][j], want.Axes[i][j])
				}
			}
		}
	}
}

// TestBuilderMemoises checks pointer-identical reuse for repeated requests
// and distinct entries per (set, confidence, mode).
func TestBuilderMemoises(t *testing.T) {
	b := NewRegionBuilder()
	o := builderObs("x", 2)
	r1, err := b.Region(o, nil, 0.99, Correlated)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.Region(o, nil, 0.99, Correlated)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("repeated request did not hit the cache")
	}
	if b.Len() != 1 {
		t.Fatalf("cache size %d, want 1", b.Len())
	}
	// A projection onto a subset is a distinct cache entry.
	sub := counters.NewSet("a", "b")
	r3, err := b.Region(o, sub, 0.99, Correlated)
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Set.Equal(sub) {
		t.Fatalf("projected region set %v", r3.Set)
	}
	if b.Len() != 2 {
		t.Fatalf("cache size %d, want 2", b.Len())
	}
	// Different mode and confidence are distinct entries too.
	if _, err := b.Region(o, nil, 0.99, Independent); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Region(o, nil, 0.95, Correlated); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 4 {
		t.Fatalf("cache size %d, want 4", b.Len())
	}
}

// TestBuilderChiSquareMemo checks the quantile cache agrees with the
// package-level function.
func TestBuilderChiSquareMemo(t *testing.T) {
	b := NewRegionBuilder()
	for i := 0; i < 3; i++ {
		got, err := b.ChiSquareQuantile(0.99, 5)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ChiSquareQuantile(0.99, 5)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("quantile %g, want %g", got, want)
		}
	}
	if _, err := b.ChiSquareQuantile(1.5, 5); err == nil {
		t.Fatal("invalid confidence should error")
	}
}

// TestBuilderConcurrent hammers one builder from many goroutines; the race
// detector plus the pointer-identity check catch unsynchronised access.
func TestBuilderConcurrent(t *testing.T) {
	b := NewRegionBuilder()
	obs := []*counters.Observation{builderObs("p", 3), builderObs("q", 4)}
	var wg sync.WaitGroup
	regions := make([]*Region, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := b.Region(obs[i%2], nil, 0.99, Correlated)
			if err != nil {
				t.Error(err)
				return
			}
			regions[i] = r
		}(i)
	}
	wg.Wait()
	for i := 2; i < 16; i++ {
		if regions[i] != regions[i%2] {
			t.Fatalf("goroutine %d got a non-canonical region", i)
		}
	}
	if b.Len() != 2 {
		t.Fatalf("cache size %d, want 2", b.Len())
	}
}
