// Package stats provides the statistical machinery behind CounterPoint's
// counter confidence regions (paper §4):
//
//   - sample means and covariance matrices of HEC time series;
//   - Pearson correlation (used to quantify how strongly HECs co-move —
//     over 25% of counter pairs on Haswell exceed ρ = 0.9);
//   - symmetric eigendecomposition (cyclic Jacobi) of covariance matrices;
//   - χ² quantiles via the regularised incomplete gamma function;
//   - confidence ellipsoids and their principal-axis bounding boxes, the
//     linear encoding used by the feasibility LP (Appendix A).
package stats

import (
	"fmt"
	"math"
)

// Mean returns the column means of samples (rows = observations).
func Mean(samples [][]float64) []float64 {
	if len(samples) == 0 {
		return nil
	}
	n := len(samples[0])
	mean := make([]float64, n)
	for _, row := range samples {
		for i, x := range row {
			mean[i] += x
		}
	}
	inv := 1.0 / float64(len(samples))
	for i := range mean {
		mean[i] *= inv
	}
	return mean
}

// Covariance returns the sample covariance matrix Σ_Y of samples (rows =
// observations, columns = counters), using the unbiased (M−1) normaliser
// when M > 1.
func Covariance(samples [][]float64) [][]float64 {
	m := len(samples)
	if m == 0 {
		return nil
	}
	n := len(samples[0])
	mean := Mean(samples)
	cov := make([][]float64, n)
	for i := range cov {
		cov[i] = make([]float64, n)
	}
	if m < 2 {
		return cov
	}
	for _, row := range samples {
		for i := 0; i < n; i++ {
			di := row[i] - mean[i]
			if di == 0 {
				continue
			}
			for j := i; j < n; j++ {
				cov[i][j] += di * (row[j] - mean[j])
			}
		}
	}
	inv := 1.0 / float64(m-1)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			cov[i][j] *= inv
			cov[j][i] = cov[i][j]
		}
	}
	return cov
}

// Diagonal returns a copy of cov with off-diagonal entries zeroed — the
// independence assumption of naive confidence regions (Figure 3d, green).
func Diagonal(cov [][]float64) [][]float64 {
	out := make([][]float64, len(cov))
	for i := range cov {
		out[i] = make([]float64, len(cov[i]))
		out[i][i] = cov[i][i]
	}
	return out
}

// Correlation converts a covariance matrix to a Pearson correlation matrix.
// Zero-variance rows/columns yield zero correlations (self-correlation 1).
func Correlation(cov [][]float64) [][]float64 {
	n := len(cov)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		out[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := cov[i][i] * cov[j][j]
			if d <= 0 {
				continue
			}
			r := cov[i][j] / math.Sqrt(d)
			out[i][j] = r
			out[j][i] = r
		}
	}
	return out
}

// FractionPairsAbove returns the fraction of distinct counter pairs whose
// absolute Pearson correlation exceeds threshold (paper §7.1: >25% of pairs
// exceed 0.9 on the Haswell corpus).
func FractionPairsAbove(corr [][]float64, threshold float64) float64 {
	n := len(corr)
	if n < 2 {
		return 0
	}
	count, total := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			total++
			if math.Abs(corr[i][j]) > threshold {
				count++
			}
		}
	}
	return float64(count) / float64(total)
}

// Scale returns cov scaled by s (e.g. the plug-in estimator Σ_Ȳ = Σ_Y / M).
func Scale(cov [][]float64, s float64) [][]float64 {
	out := make([][]float64, len(cov))
	for i := range cov {
		out[i] = make([]float64, len(cov[i]))
		for j := range cov[i] {
			out[i][j] = cov[i][j] * s
		}
	}
	return out
}

// StdDevs returns the per-counter standard deviations from a covariance
// matrix diagonal.
func StdDevs(cov [][]float64) []float64 {
	out := make([]float64, len(cov))
	for i := range cov {
		v := cov[i][i]
		if v > 0 {
			out[i] = math.Sqrt(v)
		}
	}
	return out
}

func checkSquare(m [][]float64) error {
	for i := range m {
		if len(m[i]) != len(m) {
			return fmt.Errorf("stats: matrix not square: row %d has %d cols, want %d", i, len(m[i]), len(m))
		}
	}
	return nil
}
