package stats

import (
	"sync"

	"repro/internal/counters"
)

// RegionBuilder builds confidence regions with memoisation of the two
// expensive, reusable pieces of the construction:
//
//   - χ² quantiles, keyed by (confidence, degrees of freedom) — the
//     Newton/bisection inversion of the incomplete gamma function is
//     identical for every observation over the same counter-set width;
//   - finished regions (covariance, Jacobi eigendecomposition, slab
//     half-widths), keyed by (observation, counter set, confidence, noise
//     mode) — model sweeps (explore's feature search, the Figure 1b/9
//     counter-group sweeps, Tables 3/5/7) evaluate the same corpus against
//     many models, and the spectral work depends only on the data, never on
//     the model.
//
// Observations are keyed by pointer identity: a cached region is reused
// only for the same *counters.Observation value, and mutating an
// observation's samples after it has been through the builder is a caller
// bug. The cache is capped at RegionCacheLimit entries; past the cap new
// regions are built but not retained, so a process-lifetime builder over
// unbounded distinct corpora degrades to uncached construction instead of
// growing without bound. Builders scoped to one analysis run stay well
// under the cap and keep full hit rates.
//
// A RegionBuilder is safe for concurrent use.
type RegionBuilder struct {
	mu      sync.RWMutex
	chi     map[chiKey]float64
	regions map[regionKey]*Region
}

// RegionCacheLimit bounds the number of retained regions per builder.
const RegionCacheLimit = 1 << 14

// chiCacheLimit bounds the retained χ² quantiles. The key includes the
// confidence level, which a service exposes to clients, so the cache must
// degrade to uncached computation rather than grow with adversarial
// distinct confidences.
const chiCacheLimit = 1 << 12

type chiKey struct {
	confidence float64
	df         int
}

type regionKey struct {
	obs        *counters.Observation
	set        string
	confidence float64
	mode       NoiseMode
}

// NewRegionBuilder returns an empty builder.
func NewRegionBuilder() *RegionBuilder {
	return &RegionBuilder{
		chi:     make(map[chiKey]float64),
		regions: make(map[regionKey]*Region),
	}
}

// ChiSquareQuantile is the memoised form of the package-level function.
func (b *RegionBuilder) ChiSquareQuantile(confidence float64, df int) (float64, error) {
	k := chiKey{confidence, df}
	b.mu.RLock()
	q, ok := b.chi[k]
	b.mu.RUnlock()
	if ok {
		return q, nil
	}
	q, err := ChiSquareQuantile(confidence, df)
	if err != nil {
		return 0, err
	}
	b.mu.Lock()
	if len(b.chi) < chiCacheLimit {
		b.chi[k] = q
	}
	b.mu.Unlock()
	return q, nil
}

// Region returns the confidence region of o projected onto set (o's own set
// when set is nil), memoised. Concurrent callers may race to build the same
// region; the first finished result wins and the duplicates are discarded,
// which is cheaper than holding a lock across the spectral work.
func (b *RegionBuilder) Region(o *counters.Observation, set *counters.Set, confidence float64, mode NoiseMode) (*Region, error) {
	if set == nil {
		set = o.Set
	}
	k := regionKey{obs: o, set: set.Key(), confidence: confidence, mode: mode}
	b.mu.RLock()
	r, ok := b.regions[k]
	b.mu.RUnlock()
	if ok {
		return r, nil
	}
	r, err := b.RegionUncached(o, set, confidence, mode)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	if prev, ok := b.regions[k]; ok {
		r = prev
	} else if len(b.regions) < RegionCacheLimit {
		b.regions[k] = r
	}
	b.mu.Unlock()
	return r, nil
}

// RegionUncached builds the confidence region of o projected onto set
// without inserting it into the region cache, while still sharing the
// memoised χ² quantiles. For request-scoped observations that will never
// recur (a service decoding a fresh *Observation per request), caching by
// pointer identity would pin the payload for the builder's lifetime and
// eventually exhaust the cap for everyone else.
func (b *RegionBuilder) RegionUncached(o *counters.Observation, set *counters.Set, confidence float64, mode NoiseMode) (*Region, error) {
	if set == nil {
		set = o.Set
	}
	proj := o
	if !o.Set.Equal(set) {
		proj = o.Project(set)
	}
	return newRegion(proj, confidence, mode, b.ChiSquareQuantile)
}

// Len reports how many distinct regions are cached (for tests and
// introspection).
func (b *RegionBuilder) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.regions)
}
