package stats

import (
	"fmt"
	"math"
)

// ChiSquareQuantile returns the p-quantile of the χ² distribution with df
// degrees of freedom, i.e. the x with P(X ≤ x) = p. This is the χ²_{N,1−α}
// factor scaling CounterPoint's confidence ellipsoids (Appendix A).
//
// The quantile is computed by inverting the regularised lower incomplete
// gamma function P(df/2, x/2) with a Wilson–Hilferty initial guess refined
// by bisection-safeguarded Newton iteration.
func ChiSquareQuantile(p float64, df int) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: chi-square df must be positive, got %d", df)
	}
	if p <= 0 {
		return 0, nil
	}
	if p >= 1 {
		return 0, fmt.Errorf("stats: chi-square quantile requires p < 1, got %g", p)
	}
	k := float64(df)
	// Wilson–Hilferty approximation.
	z := normalQuantile(p)
	h := 2.0 / (9.0 * k)
	x := k * math.Pow(1-h+z*math.Sqrt(h), 3)
	if x <= 0 {
		x = 1e-8
	}

	cdf := func(x float64) float64 { return regularizedGammaP(k/2, x/2) }

	// Bracket the root.
	lo, hi := 0.0, x
	for cdf(hi) < p {
		lo = hi
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("stats: chi-square quantile failed to bracket (p=%g, df=%d)", p, df)
		}
	}
	// Newton with bisection fallback.
	for iter := 0; iter < 200; iter++ {
		f := cdf(x) - p
		if math.Abs(f) < 1e-13 {
			return x, nil
		}
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		pdf := chiSquarePDF(x, k)
		var next float64
		if pdf > 0 {
			next = x - f/pdf
		}
		if pdf <= 0 || next <= lo || next >= hi {
			next = (lo + hi) / 2
		}
		if math.Abs(next-x) < 1e-12*(1+x) {
			return next, nil
		}
		x = next
	}
	return x, nil
}

func chiSquarePDF(x, k float64) float64 {
	if x <= 0 {
		return 0
	}
	half := k / 2
	logPDF := (half-1)*math.Log(x) - x/2 - half*math.Ln2 - logGamma(half)
	return math.Exp(logPDF)
}

// normalQuantile is the Acklam approximation to the standard normal inverse
// CDF, accurate to ~1e-9 — only used as an initial guess.
func normalQuantile(p float64) float64 {
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	pl, ph := 0.02425, 1-0.02425
	switch {
	case p < pl:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= ph:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// regularizedGammaP computes P(a, x) = γ(a, x)/Γ(a) by series expansion for
// x < a+1 and by continued fraction otherwise (Numerical Recipes §6.2).
func regularizedGammaP(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

func gammaSeries(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	ap := a
	sum := 1.0 / a
	del := sum
	for n := 0; n < itmax; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-logGamma(a))
}

func gammaContinuedFraction(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-logGamma(a)) * h
}

// logGamma is the Lanczos approximation to ln Γ(x) for x > 0.
func logGamma(x float64) float64 {
	g := []float64{76.18009172947146, -86.50532032941677, 24.01409824083091,
		-1.231739572450155, 0.1208650973866179e-2, -0.5395239384953e-5}
	y := x
	tmp := x + 5.5
	tmp -= (x + 0.5) * math.Log(tmp)
	ser := 1.000000000190015
	for j := 0; j < 6; j++ {
		y++
		ser += g[j] / y
	}
	return -tmp + math.Log(2.5066282746310005*ser/x)
}
