package stats

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/counters"
)

func TestMeanAndCovariance(t *testing.T) {
	samples := [][]float64{{1, 2}, {3, 6}, {5, 10}}
	m := Mean(samples)
	if m[0] != 3 || m[1] != 6 {
		t.Fatalf("mean: %v", m)
	}
	cov := Covariance(samples)
	if math.Abs(cov[0][0]-4) > 1e-12 {
		t.Fatalf("var x: %g want 4", cov[0][0])
	}
	if math.Abs(cov[1][1]-16) > 1e-12 {
		t.Fatalf("var y: %g want 16", cov[1][1])
	}
	if math.Abs(cov[0][1]-8) > 1e-12 {
		t.Fatalf("cov: %g want 8", cov[0][1])
	}
	if cov[0][1] != cov[1][0] {
		t.Fatal("covariance not symmetric")
	}
}

func TestCovarianceSingleSample(t *testing.T) {
	cov := Covariance([][]float64{{1, 2}})
	if cov[0][0] != 0 || cov[0][1] != 0 {
		t.Fatalf("single-sample covariance should be zero: %v", cov)
	}
}

func TestDiagonal(t *testing.T) {
	cov := [][]float64{{4, 8}, {8, 16}}
	d := Diagonal(cov)
	if d[0][1] != 0 || d[1][0] != 0 || d[0][0] != 4 || d[1][1] != 16 {
		t.Fatalf("diagonal: %v", d)
	}
}

func TestCorrelation(t *testing.T) {
	// y = 2x exactly → ρ = 1.
	samples := [][]float64{{1, 2}, {3, 6}, {5, 10}}
	corr := Correlation(Covariance(samples))
	if math.Abs(corr[0][1]-1) > 1e-12 {
		t.Fatalf("ρ = %g, want 1", corr[0][1])
	}
	if corr[0][0] != 1 || corr[1][1] != 1 {
		t.Fatal("self correlation must be 1")
	}
}

func TestCorrelationZeroVariance(t *testing.T) {
	samples := [][]float64{{1, 5}, {2, 5}, {3, 5}}
	corr := Correlation(Covariance(samples))
	if corr[0][1] != 0 {
		t.Fatalf("zero-variance correlation should be 0, got %g", corr[0][1])
	}
}

func TestFractionPairsAbove(t *testing.T) {
	corr := [][]float64{
		{1, 0.95, 0.1},
		{0.95, 1, -0.92},
		{0.1, -0.92, 1},
	}
	got := FractionPairsAbove(corr, 0.9)
	if math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("got %g, want 2/3", got)
	}
	if FractionPairsAbove([][]float64{{1}}, 0.9) != 0 {
		t.Fatal("single counter has no pairs")
	}
}

func TestStdDevs(t *testing.T) {
	s := StdDevs([][]float64{{4, 0}, {0, 9}})
	if s[0] != 2 || s[1] != 3 {
		t.Fatalf("stddevs: %v", s)
	}
}

func TestSymmetricEigenDiagonal(t *testing.T) {
	eig, err := SymmetricEigen([][]float64{{3, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig.Values[0]-3) > 1e-10 || math.Abs(eig.Values[1]-1) > 1e-10 {
		t.Fatalf("values: %v", eig.Values)
	}
}

func TestSymmetricEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2, (1,-1)/√2.
	eig, err := SymmetricEigen([][]float64{{2, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig.Values[0]-3) > 1e-10 || math.Abs(eig.Values[1]-1) > 1e-10 {
		t.Fatalf("values: %v", eig.Values)
	}
	v := eig.Vectors[0]
	if math.Abs(math.Abs(v[0])-math.Abs(v[1])) > 1e-10 {
		t.Fatalf("leading eigenvector: %v", v)
	}
}

func TestSymmetricEigenReconstruction(t *testing.T) {
	// Property: A = Σ λᵢ eᵢ eᵢᵀ for random symmetric matrices.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(6) + 2
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				x := rng.NormFloat64()
				a[i][j] = x
				a[j][i] = x
			}
		}
		eig, err := SymmetricEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				recon := 0.0
				for k := 0; k < n; k++ {
					recon += eig.Values[k] * eig.Vectors[k][i] * eig.Vectors[k][j]
				}
				if math.Abs(recon-a[i][j]) > 1e-8 {
					t.Fatalf("trial %d: reconstruction (%d,%d): %g vs %g", trial, i, j, recon, a[i][j])
				}
			}
		}
		// Eigenvectors are orthonormal.
		for p := 0; p < n; p++ {
			for q := p; q < n; q++ {
				dot := 0.0
				for k := 0; k < n; k++ {
					dot += eig.Vectors[p][k] * eig.Vectors[q][k]
				}
				want := 0.0
				if p == q {
					want = 1
				}
				if math.Abs(dot-want) > 1e-8 {
					t.Fatalf("trial %d: orthonormality (%d,%d): %g", trial, p, q, dot)
				}
			}
		}
	}
}

func TestSymmetricEigenRejectsAsymmetric(t *testing.T) {
	if _, err := SymmetricEigen([][]float64{{1, 2}, {3, 1}}); err == nil {
		t.Fatal("expected asymmetry error")
	}
	if _, err := SymmetricEigen([][]float64{{1, 2}}); err == nil {
		t.Fatal("expected non-square error")
	}
}

func TestChiSquareQuantileKnownValues(t *testing.T) {
	// Reference values from standard χ² tables.
	cases := []struct {
		p    float64
		df   int
		want float64
	}{
		{0.95, 1, 3.841},
		{0.99, 1, 6.635},
		{0.95, 2, 5.991},
		{0.99, 2, 9.210},
		{0.99, 10, 23.209},
		{0.99, 26, 45.642},
		{0.5, 4, 3.357},
	}
	for _, c := range cases {
		got, err := ChiSquareQuantile(c.p, c.df)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("χ²(%g, %d) = %g, want %g", c.p, c.df, got, c.want)
		}
	}
}

func TestChiSquareQuantileEdges(t *testing.T) {
	if _, err := ChiSquareQuantile(0.99, 0); err == nil {
		t.Fatal("df=0 should error")
	}
	if _, err := ChiSquareQuantile(1.0, 3); err == nil {
		t.Fatal("p=1 should error")
	}
	if q, err := ChiSquareQuantile(0, 3); err != nil || q != 0 {
		t.Fatalf("p=0 should give 0, got %g, %v", q, err)
	}
}

func TestChiSquareQuantileMonotone(t *testing.T) {
	prev := 0.0
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999} {
		q, err := ChiSquareQuantile(p, 8)
		if err != nil {
			t.Fatal(err)
		}
		if q <= prev {
			t.Fatalf("quantile not monotone at p=%g: %g <= %g", p, q, prev)
		}
		prev = q
	}
}

func makeObs(t *testing.T, rho float64, m int) *counters.Observation {
	t.Helper()
	set := counters.NewSet("x", "y")
	o := counters.NewObservation("synthetic", set)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < m; i++ {
		a := rng.NormFloat64()
		b := rho*a + math.Sqrt(1-rho*rho)*rng.NormFloat64()
		o.Append([]float64{100 + 10*a, 200 + 10*b})
	}
	return o
}

func TestRegionContainsMean(t *testing.T) {
	o := makeObs(t, 0.9, 200)
	for _, mode := range []NoiseMode{Correlated, Independent} {
		r, err := NewRegion(o, 0.99, mode)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Contains(r.Center()) {
			t.Fatalf("%v region must contain its mean", mode)
		}
	}
}

func TestCorrelatedRegionTighter(t *testing.T) {
	// With strongly correlated counters, the principal-axis box must have
	// smaller volume than the independent box (Figure 3d).
	o := makeObs(t, 0.95, 500)
	corr, err := NewRegion(o, 0.99, Correlated)
	if err != nil {
		t.Fatal(err)
	}
	ind, err := NewRegion(o, 0.99, Independent)
	if err != nil {
		t.Fatal(err)
	}
	if corr.LogVolume() >= ind.LogVolume() {
		t.Fatalf("correlated volume %g should be < independent %g",
			corr.LogVolume(), ind.LogVolume())
	}
}

func TestRegionRejectsBadInput(t *testing.T) {
	set := counters.NewSet("x")
	empty := counters.NewObservation("empty", set)
	if _, err := NewRegion(empty, 0.99, Correlated); err == nil {
		t.Fatal("empty observation should error")
	}
	o := counters.NewObservation("one", set)
	o.Append([]float64{1})
	if _, err := NewRegion(o, 1.5, Correlated); err == nil {
		t.Fatal("confidence > 1 should error")
	}
}

func TestRegionProject(t *testing.T) {
	o := makeObs(t, 0.5, 300)
	r, err := NewRegion(o, 0.99, Correlated)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := r.Project("x")
	if !ok {
		t.Fatal("x should project")
	}
	if lo >= hi {
		t.Fatalf("degenerate interval [%g, %g]", lo, hi)
	}
	mean := r.Center()
	if mean[0] < lo || mean[0] > hi {
		t.Fatalf("mean %g outside [%g, %g]", mean[0], lo, hi)
	}
	if _, _, ok := r.Project("zz"); ok {
		t.Fatal("unknown counter should not project")
	}
}

func TestRegionShrinksWithSamples(t *testing.T) {
	// More samples → tighter region (the paper: "the confidence region can
	// be made tighter by obtaining more samples").
	small, err := NewRegion(makeObs(t, 0.5, 50), 0.99, Correlated)
	if err != nil {
		t.Fatal(err)
	}
	large, err := NewRegion(makeObs(t, 0.5, 5000), 0.99, Correlated)
	if err != nil {
		t.Fatal(err)
	}
	if large.MaxHalfWidth() >= small.MaxHalfWidth() {
		t.Fatalf("region should shrink with samples: %g vs %g",
			large.MaxHalfWidth(), small.MaxHalfWidth())
	}
}

func TestScale(t *testing.T) {
	s := Scale([][]float64{{2, 4}, {4, 8}}, 0.5)
	if s[0][0] != 1 || s[1][1] != 4 {
		t.Fatalf("scale: %v", s)
	}
}

func TestRegionStatisticalCoverage(t *testing.T) {
	// Property: across repeated experiments, the 99% region's box captures
	// the true mean far more often than not (the box contains the
	// ellipsoid, so coverage is at least nominal; we assert a loose 90%).
	const trials = 60
	captured := 0
	truth := []float64{100, 200}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		set := counters.NewSet("x", "y")
		o := counters.NewObservation("cov", set)
		for i := 0; i < 40; i++ {
			a := rng.NormFloat64()
			o.Append([]float64{truth[0] + 5*a + rng.NormFloat64(), truth[1] + 10*a + rng.NormFloat64()})
		}
		r, err := NewRegion(o, 0.99, Correlated)
		if err != nil {
			t.Fatal(err)
		}
		if r.Contains(truth) {
			captured++
		}
	}
	if captured < trials*9/10 {
		t.Fatalf("coverage too low: %d/%d", captured, trials)
	}
}
