package stats

import (
	"fmt"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a symmetric matrix: Values[i] is
// the i-th eigenvalue and Vectors[i] the corresponding unit eigenvector
// (stored as rows), sorted by descending eigenvalue.
type Eigen struct {
	Values  []float64
	Vectors [][]float64
}

// jacobiMaxSweeps bounds the cyclic Jacobi iteration count.
const jacobiMaxSweeps = 100

// SymmetricEigen computes the eigendecomposition of a symmetric matrix with
// the cyclic Jacobi rotation method. The input is not modified. Jacobi is
// slow for huge matrices but numerically robust and dependency-free, and
// CounterPoint's covariance matrices are at most a few dozen wide.
func SymmetricEigen(m [][]float64) (*Eigen, error) {
	if err := checkSquare(m); err != nil {
		return nil, err
	}
	n := len(m)
	// Working copy a; accumulated rotations v (columns are eigenvectors).
	a := make([][]float64, n)
	v := make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		copy(a[i], m[i])
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a[i][j]-a[j][i]) > 1e-9*(1+math.Abs(a[i][j])) {
				return nil, fmt.Errorf("stats: matrix not symmetric at (%d,%d): %g vs %g", i, j, a[i][j], a[j][i])
			}
		}
	}

	off := func() float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += a[i][j] * a[i][j]
			}
		}
		return s
	}
	norm := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			norm += a[i][j] * a[i][j]
		}
	}
	tol := 1e-24 * (norm + 1)

	for sweep := 0; sweep < jacobiMaxSweeps && off() > tol; sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a[p][q]
				if apq == 0 {
					continue
				}
				// Rotation angle from the standard Jacobi formulas.
				theta := (a[q][q] - a[p][p]) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation to a (both sides) and accumulate in v.
				for k := 0; k < n; k++ {
					akp, akq := a[k][p], a[k][q]
					a[k][p] = c*akp - s*akq
					a[k][q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := a[p][k], a[q][k]
					a[p][k] = c*apk - s*aqk
					a[q][k] = s*apk + c*aqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}

	eig := &Eigen{Values: make([]float64, n), Vectors: make([][]float64, n)}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = a[i][i]
	}
	sort.Slice(order, func(x, y int) bool { return diag[order[x]] > diag[order[y]] })
	for rank, col := range order {
		eig.Values[rank] = diag[col]
		vec := make([]float64, n)
		for row := 0; row < n; row++ {
			vec[row] = v[row][col]
		}
		eig.Vectors[rank] = vec
	}
	return eig, nil
}
