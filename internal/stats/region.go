package stats

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"

	"repro/internal/counters"
)

// NoiseMode selects how a confidence region treats cross-counter structure.
type NoiseMode int

// Noise-handling modes (Figure 3d).
const (
	// Correlated exploits the full covariance matrix: the bounding box is
	// aligned with the principal axes of the data, producing the tight red
	// regions of Figure 3d.
	Correlated NoiseMode = iota
	// Independent zeroes all covariances — the loose, axis-aligned green
	// regions of Figure 3d used by naive tools.
	Independent
)

func (m NoiseMode) String() string {
	if m == Independent {
		return "independent"
	}
	return "correlated"
}

// Region is a counter confidence region: the principal-axis bounding box of
// the confidence ellipsoid
//
//	{ v : (v−Ȳ)ᵀ Σ_Ȳ⁻¹ (v−Ȳ) ≤ χ²_{N,1−α} }
//
// encoded as |eᵢ·(v−Ȳ)| ≤ √(λᵢ·χ²) per eigenpair (λᵢ, eᵢ) of Σ_Ȳ
// (Figure 5c, Appendix A).
type Region struct {
	Set        *counters.Set
	Mode       NoiseMode
	Confidence float64
	Mean       []float64
	Axes       [][]float64 // unit eigenvectors eᵢ, rows
	HalfWidths []float64   // √(λᵢ·χ²), same order as Axes
}

// NewRegion builds the confidence region of an observation at the given
// confidence level (the paper fixes 99%). The sample-mean covariance is the
// plug-in estimator Σ_Ȳ = Σ_Y / M.
//
// Callers evaluating many observations (or the same observations against
// many models) should go through a RegionBuilder, which memoises both the
// χ² quantiles and the finished regions.
func NewRegion(o *counters.Observation, confidence float64, mode NoiseMode) (*Region, error) {
	return newRegion(o, confidence, mode, ChiSquareQuantile)
}

// newRegion is the shared construction core; quantile supplies the χ²
// quantile (memoised or not, the builder's choice).
func newRegion(o *counters.Observation, confidence float64, mode NoiseMode, quantile func(p float64, df int) (float64, error)) (*Region, error) {
	if o.Len() == 0 {
		return nil, fmt.Errorf("stats: observation %q has no samples", o.Label)
	}
	if confidence <= 0 || confidence >= 1 {
		return nil, fmt.Errorf("stats: confidence must be in (0,1), got %g", confidence)
	}
	n := o.Set.Len()
	cov := Covariance(o.Samples)
	if mode == Independent {
		cov = Diagonal(cov)
	}
	cov = Scale(cov, 1/float64(o.Len()))
	eig, err := SymmetricEigen(cov)
	if err != nil {
		return nil, err
	}
	chi2, err := quantile(confidence, n)
	if err != nil {
		return nil, err
	}
	r := &Region{
		Set:        o.Set,
		Mode:       mode,
		Confidence: confidence,
		Mean:       o.Mean(),
		Axes:       quantizeAxes(eig.Vectors),
		HalfWidths: make([]float64, n),
	}
	hmax := 0.0
	for i, lambda := range eig.Values {
		if lambda < 0 {
			// Round-off can produce tiny negative eigenvalues.
			lambda = 0
		}
		r.HalfWidths[i] = math.Sqrt(lambda * chi2)
		if r.HalfWidths[i] > hmax {
			hmax = r.HalfWidths[i]
		}
	}
	// Widen each slab by a numerical-safety margin. Two effects demand it:
	// (i) axis quantisation slightly rotates the box, and (ii) exactly
	// linearly dependent counters (walk_done = Σ walk_done_size) produce
	// zero-eigenvalue axes whose eigenvector components carry O(1e-12)
	// Jacobi round-off; without a floor those slabs become inconsistent
	// exact hyperplanes in the downstream rational LP. The margin is far
	// below measurement noise.
	for i := range r.HalfWidths {
		dot := 0.0
		for j := 0; j < n; j++ {
			dot += r.Axes[i][j] * r.Mean[j]
		}
		r.HalfWidths[i] += 1e-4*hmax + 1e-6*(1+math.Abs(dot))
	}
	return r, nil
}

// axisQuantum is the dyadic grid the box axes are snapped to. Quantised
// axis components are exactly representable as float64 and convert to
// rationals with denominator ≤ 2^16, keeping the exact feasibility LP's
// pivots on small numbers.
const axisQuantum = 1.0 / 65536

func quantizeAxes(axes [][]float64) [][]float64 {
	out := make([][]float64, len(axes))
	for i, axis := range axes {
		q := make([]float64, len(axis))
		for j, v := range axis {
			q[j] = math.Round(v/axisQuantum) * axisQuantum
		}
		out[i] = q
	}
	return out
}

// Key returns a compact content key for the region: a hash over the
// counter set, noise mode, confidence level, and the exact float64 bit
// patterns of the mean, axes and half-widths. Two regions with equal
// keys produce bit-identical feasibility LPs downstream, so the engine
// uses the key (with the model's content key) to address its LP cache.
func (r *Region) Key() string {
	h := sha256.New()
	io.WriteString(h, r.Set.Key())
	var scratch [8]byte
	word := func(bits uint64) {
		binary.LittleEndian.PutUint64(scratch[:], bits)
		h.Write(scratch[:])
	}
	word(uint64(r.Mode))
	word(math.Float64bits(r.Confidence))
	word(uint64(len(r.Mean)))
	for _, v := range r.Mean {
		word(math.Float64bits(v))
	}
	for _, axis := range r.Axes {
		for _, v := range axis {
			word(math.Float64bits(v))
		}
	}
	for _, v := range r.HalfWidths {
		word(math.Float64bits(v))
	}
	sum := h.Sum(scratch[:0:0])
	return hex.EncodeToString(sum[:16])
}

// Contains reports whether v lies inside the bounding box.
func (r *Region) Contains(v []float64) bool {
	n := len(r.Mean)
	for i, axis := range r.Axes {
		dot := 0.0
		for j := 0; j < n; j++ {
			dot += axis[j] * (v[j] - r.Mean[j])
		}
		if math.Abs(dot) > r.HalfWidths[i]+1e-9*(1+math.Abs(r.HalfWidths[i])) {
			return false
		}
	}
	return true
}

// Center returns the region's centre (the sample mean Ȳ).
func (r *Region) Center() []float64 {
	out := make([]float64, len(r.Mean))
	copy(out, r.Mean)
	return out
}

// LogVolume returns the natural log of the box volume Π 2hᵢ, with zero
// half-widths clamped to a small epsilon so degenerate regions compare
// sensibly. Correlated regions have smaller volume than independent ones
// for the same data — the quantitative sense in which they are "tighter".
func (r *Region) LogVolume() float64 {
	v := 0.0
	for _, h := range r.HalfWidths {
		w := 2 * h
		if w < 1e-12 {
			w = 1e-12
		}
		v += math.Log(w)
	}
	return v
}

// MaxHalfWidth returns the largest half-width — the region's worst-case
// uncertainty along any principal direction.
func (r *Region) MaxHalfWidth() float64 {
	max := 0.0
	for _, h := range r.HalfWidths {
		if h > max {
			max = h
		}
	}
	return max
}

// Project returns the region's axis-aligned interval for counter event e:
// the minimum and maximum of the e-coordinate over the box. Useful for
// reporting per-counter uncertainty.
func (r *Region) Project(e counters.Event) (lo, hi float64, ok bool) {
	idx, ok := r.Set.Index(e)
	if !ok {
		return 0, 0, false
	}
	lo, hi = r.Mean[idx], r.Mean[idx]
	for i, axis := range r.Axes {
		span := math.Abs(axis[idx]) * r.HalfWidths[i]
		lo -= span
		hi += span
	}
	return lo, hi, true
}
