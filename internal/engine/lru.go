package engine

import "container/list"

// lruCache is a bounded map with least-recently-used eviction. The
// engine's caches used to stop admitting entries once full, which froze
// whatever happened to arrive first and disabled caching for every later
// workload; LRU keeps the hot set live instead. Not safe for concurrent
// use — each cache sits behind its owner's mutex.
type lruCache[K comparable, V any] struct {
	limit     int
	ll        *list.List
	items     map[K]*list.Element
	evictions uint64
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// newLRU returns a cache holding at most limit entries (limit ≥ 1).
func newLRU[K comparable, V any](limit int) *lruCache[K, V] {
	if limit < 1 {
		limit = 1
	}
	return &lruCache[K, V]{
		limit: limit,
		ll:    list.New(),
		items: make(map[K]*list.Element),
	}
}

// Get returns the value for k, marking it most recently used.
func (c *lruCache[K, V]) Get(k K) (V, bool) {
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Add inserts (k, v), evicting the least recently used entry when the
// cache is full. If k is already present its existing value is kept and
// returned — first writer wins, so concurrent builders converge on one
// shared instance.
func (c *lruCache[K, V]) Add(k K, v V) V {
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).val
	}
	if c.ll.Len() >= c.limit {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*lruEntry[K, V]).key)
			c.evictions++
		}
	}
	c.items[k] = c.ll.PushFront(&lruEntry[K, V]{key: k, val: v})
	return v
}

// Len reports the current entry count.
func (c *lruCache[K, V]) Len() int { return c.ll.Len() }

// Evictions reports how many entries have been evicted since creation.
func (c *lruCache[K, V]) Evictions() uint64 { return c.evictions }
