package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/haswell"
	"repro/internal/pagetable"
	"repro/internal/workloads"
)

// This file is the incremental-vs-batch differential property suite: the
// online path's whole correctness story is that the stream state after N
// ingests is bit-identical to a cold batch evaluation of the same
// N-observation corpus — every field of StreamState (first-refuting
// index included), every verdict, every violation count, at every
// prefix. Incremental and batch run on SEPARATE engines so no shared
// cache can make the comparison vacuous.

// randomCorpus draws n observations around randomly feasible or
// infeasible means for the PDE model (misses ≤ walks is the deducible
// constraint), so refutation arrives at a random index.
func randomCorpus(n int, seed int64) []*counters.Observation {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*counters.Observation, n)
	for i := range out {
		cw, pm := 400+50*rng.Float64(), 100+50*rng.Float64()
		if rng.Float64() < 0.3 {
			cw, pm = pm, cw // more misses than walks: infeasible
		}
		out[i] = obsAround(fmt.Sprintf("r%d-%d", seed, i), cw, pm, 40, rng.Int63())
	}
	return out
}

// verdictsMatch compares two verdicts field by field (the wire-relevant
// fields: observation, feasibility, violation keys in order).
func verdictsMatch(a, b *core.Verdict) bool {
	if a.Observation != b.Observation || a.Feasible != b.Feasible || len(a.Violations) != len(b.Violations) {
		return false
	}
	for i := range a.Violations {
		if a.Violations[i].String() != b.Violations[i].String() {
			return false
		}
	}
	return true
}

// diffPrefixes feeds corpus through an incremental session on engIncr
// one observation at a time and, after every ingest, batch-evaluates the
// same prefix cold on engBatch, requiring bit-identical state.
func diffPrefixes(t *testing.T, m *core.Model, corpus []*counters.Observation, incrCfg, batchCfg Config) {
	t.Helper()
	engIncr := New(WithWorkers(1))
	defer engIncr.Close()
	engBatch := New(WithWorkers(1))
	defer engBatch.Close()

	is, err := engIncr.NewSession(m, incrCfg)
	if err != nil {
		t.Fatal(err)
	}
	inc := is.Incremental()
	defer inc.Close()
	bs, err := engBatch.NewSession(m, batchCfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for i, o := range corpus {
		res, err := inc.Ingest(ctx, o)
		if err != nil {
			t.Fatalf("%s: ingest %d: %v", m.Name, i, err)
		}
		if res.Index != i {
			t.Fatalf("%s: ingest %d returned index %d", m.Name, i, res.Index)
		}
		batch, err := bs.Evaluate(ctx, corpus[:i+1])
		if err != nil {
			t.Fatalf("%s: batch prefix %d: %v", m.Name, i+1, err)
		}
		want := StateOf(batch, core.DefaultConfidence)
		if got := inc.State(); got != want {
			t.Fatalf("%s: prefix %d: incremental state %+v != batch state %+v", m.Name, i+1, got, want)
		}
		if res.State != want {
			t.Fatalf("%s: prefix %d: ingest-returned state %+v != batch state %+v", m.Name, i+1, res.State, want)
		}
		if !verdictsMatch(res.Verdict, batch.Verdicts[i]) {
			t.Fatalf("%s: observation %d: incremental verdict %+v != batch verdict %+v",
				m.Name, i, res.Verdict, batch.Verdicts[i])
		}
		// The aggregated violation counts must match the batch aggregate
		// at every prefix too.
		got, want2 := inc.Violated(), batch.ViolatedConstraints
		if len(got) != len(want2) {
			t.Fatalf("%s: prefix %d: violations %v != %v", m.Name, i+1, got, want2)
		}
		for k, n := range want2 {
			if got[k] != n {
				t.Fatalf("%s: prefix %d: violations %v != %v", m.Name, i+1, got, want2)
			}
		}
	}
}

// TestIncrementalMatchesBatchPrefixes is the randomized-corpus
// differential: several seeds, every prefix, bit-identical state and
// verdicts. The incremental side runs the service configuration
// (ephemeral observations, as /v1/streams forces) against a
// non-ephemeral batch baseline, so the cache-path split is part of what
// the differential pins.
func TestIncrementalMatchesBatchPrefixes(t *testing.T) {
	m := pdeModel(t)
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			corpus := randomCorpus(12, seed)
			diffPrefixes(t, m, corpus,
				Config{IdentifyViolations: true, EphemeralObservations: true},
				Config{IdentifyViolations: true})
		})
	}
}

// TestIncrementalFirstRefutedIndex pins the refutation index directly:
// with the first infeasible observation planted at a known position, the
// state must flip exactly there and never move.
func TestIncrementalFirstRefutedIndex(t *testing.T) {
	m := pdeModel(t)
	corpus := []*counters.Observation{
		obsAround("c0", 500, 100, 40, 1),
		obsAround("c1", 450, 120, 40, 2),
		obsAround("bad", 100, 400, 40, 3),
		obsAround("c2", 480, 110, 40, 4),
		obsAround("bad2", 90, 380, 40, 5),
	}
	e := New(WithWorkers(1))
	defer e.Close()
	s, err := e.NewSession(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	inc := s.Incremental()
	defer inc.Close()
	for i, o := range corpus {
		if _, err := inc.Ingest(context.Background(), o); err != nil {
			t.Fatal(err)
		}
		st := inc.State()
		switch {
		case i < 2:
			if st.Refuted || st.FirstRefuted != -1 || st.Confidence != 0 {
				t.Fatalf("prefix %d: unexpectedly refuted: %+v", i+1, st)
			}
		default:
			if !st.Refuted || st.FirstRefuted != 2 {
				t.Fatalf("prefix %d: first-refuted index %d, want 2 (%+v)", i+1, st.FirstRefuted, st)
			}
		}
	}
	st := inc.State()
	if st.Infeasible != 2 {
		t.Fatalf("infeasible: %d, want 2", st.Infeasible)
	}
	if want := RefutationConfidence(core.DefaultConfidence, 2); st.Confidence != want {
		t.Fatalf("confidence: %g, want %g", st.Confidence, want)
	}
}

// TestIncrementalShuffleInvariance ingests the same multiset of
// observations in several shuffled orders: every StreamState field
// except FirstRefuted (which records arrival order by definition) must
// be identical across orders, as must the violation aggregate.
func TestIncrementalShuffleInvariance(t *testing.T) {
	m := pdeModel(t)
	corpus := randomCorpus(10, 99)

	finalState := func(order []int) (StreamState, map[string]int) {
		e := New(WithWorkers(1))
		defer e.Close()
		s, err := e.NewSession(m, Config{IdentifyViolations: true})
		if err != nil {
			t.Fatal(err)
		}
		inc := s.Incremental()
		defer inc.Close()
		for _, idx := range order {
			if _, err := inc.Ingest(context.Background(), corpus[idx]); err != nil {
				t.Fatal(err)
			}
		}
		return inc.State(), inc.Violated()
	}

	order := make([]int, len(corpus))
	for i := range order {
		order[i] = i
	}
	refState, refViol := finalState(order)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3; trial++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		st, viol := finalState(order)
		// Mask the order-dependent field, then require exact equality.
		st.FirstRefuted, refState.FirstRefuted = 0, 0
		if st != refState {
			t.Fatalf("trial %d: shuffled state %+v != reference %+v (order %v)", trial, st, refState, order)
		}
		if len(viol) != len(refViol) {
			t.Fatalf("trial %d: violations %v != %v", trial, viol, refViol)
		}
		for k, n := range refViol {
			if viol[k] != n {
				t.Fatalf("trial %d: violations %v != %v", trial, viol, refViol)
			}
		}
	}
}

// catalogueCorpus simulates ground-truth Haswell observations once (the
// workload of TestGroundTruthFeasibleUnderM8, continued for several
// sampling windows) for the full-catalogue differential.
func catalogueCorpus(t *testing.T, n int) []*counters.Observation {
	t.Helper()
	sim := haswell.NewSimulator(haswell.DefaultConfig(pagetable.Page4K))
	gen, err := workloads.NewRandomBurst(512<<20, 16, 0.8, 13)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(gen, 10000)
	out := make([]*counters.Observation, n)
	for i := range out {
		out[i] = haswell.WithAggregateWalkRef(sim.Observation(gen, 8, 10000))
		out[i].Label = fmt.Sprintf("gt%d", i)
	}
	return out
}

// TestIncrementalCatalogueDifferential runs the incremental-vs-batch
// differential over the paper's Table 3/5/7 catalogue models against
// ground-truth simulator observations: models the data refutes must
// refute at the same index on both paths, models it supports must stay
// consistent on both, with bit-identical state at every prefix. Short
// mode keeps one representative per table.
func TestIncrementalCatalogueDifferential(t *testing.T) {
	models := append(append(haswell.Table3Models(), haswell.Table5Models()...), haswell.Table7Models()...)
	if testing.Short() {
		keep := map[string]bool{"m0": true, "m4": true, "t17": true, "a3": true}
		var sub []haswell.NamedFeatures
		for _, nf := range models {
			if keep[nf.Name] {
				sub = append(sub, nf)
			}
		}
		models = sub
	}
	corpus := catalogueCorpus(t, 3)
	set := haswell.AnalysisSet()
	refuted := 0
	for _, nf := range models {
		nf := nf
		t.Run(nf.Name, func(t *testing.T) {
			m, err := haswell.BuildModel(nf.Name, nf.Features, set)
			if err != nil {
				t.Fatal(err)
			}
			diffPrefixes(t, m, corpus,
				Config{IdentifyViolations: true, EphemeralObservations: true},
				Config{IdentifyViolations: true})
			e := New(WithWorkers(1))
			defer e.Close()
			s, err := e.NewSession(m, Config{})
			if err != nil {
				t.Fatal(err)
			}
			inc := s.Incremental()
			defer inc.Close()
			for _, o := range corpus {
				if _, err := inc.Ingest(context.Background(), o); err != nil {
					t.Fatal(err)
				}
			}
			if inc.State().Refuted {
				refuted++
			}
		})
	}
	// The catalogue must split: ground-truth data refutes the featureless
	// baseline m0 and supports the discovered-feature models, so a
	// differential that saw only one outcome would prove little.
	if !t.Failed() && (refuted == 0 || refuted == len(models)) {
		t.Fatalf("catalogue outcomes did not split: %d/%d refuted", refuted, len(models))
	}
}

// TestIncrementalClosedAndErrorPaths pins the lifecycle contract: a
// cancelled context or failed evaluation leaves the state untouched, and
// a closed session refuses further ingests while keeping its final state
// readable.
func TestIncrementalClosedAndErrorPaths(t *testing.T) {
	e := New(WithWorkers(1))
	defer e.Close()
	s, err := e.NewSession(pdeModel(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	inc := s.Incremental()
	if _, err := inc.Ingest(context.Background(), obsAround("ok", 500, 100, 40, 1)); err != nil {
		t.Fatal(err)
	}
	before := inc.State()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := inc.Ingest(cancelled, obsAround("late", 500, 100, 40, 2)); err == nil {
		t.Fatal("cancelled ingest must fail")
	}
	if inc.State() != before {
		t.Fatal("failed ingest mutated state")
	}

	inc.Close()
	inc.Close() // idempotent
	if _, err := inc.Ingest(context.Background(), obsAround("x", 500, 100, 40, 3)); err != ErrSessionClosed {
		t.Fatalf("ingest after close: %v, want ErrSessionClosed", err)
	}
	if inc.State() != before {
		t.Fatal("close mutated state")
	}
}
