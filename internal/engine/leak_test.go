package engine

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/counters"
)

// This file is the goroutine-leak regression suite for EvaluateStream, the
// workload counterpointd exposes to the network: every way a stream can be
// walked away from — abandoned without a reader, cancelled mid-flight, or
// orphaned by a client disconnect — must leave zero goroutines once the
// stream's context ends, since a long-lived service pays for every leak on
// every request.

// settleGoroutines waits for the goroutine count to drop back to baseline,
// failing with a full stack dump if it never does.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d at baseline, %d now\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamLeakAbandoned abandons streams entirely — no reads, no Result,
// no explicit drain — and requires that ending the request-scoped context
// releases every goroutine the streams spawned.
func TestStreamLeakAbandoned(t *testing.T) {
	baseline := runtime.NumGoroutine()
	e := New(WithWorkers(2))
	s, err := e.NewSession(pdeModel(t), Config{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < 8; i++ {
		corpus := make([]*counters.Observation, 16)
		for j := range corpus {
			corpus[j] = obsAround(fmt.Sprintf("obs-%d-%d", i, j), 500, 100, 40, int64(i*16+j))
		}
		in := make(chan *counters.Observation, len(corpus))
		for _, o := range corpus {
			in <- o
		}
		close(in)
		_ = s.EvaluateStream(ctx, in) // abandoned: nobody ever looks at it
	}
	cancel() // the request context ends; nothing else is done
	e.Close()
	settleGoroutines(t, baseline)
}

// TestStreamLeakMidStreamCancel cancels while verdicts are still being
// produced and the consumer stops reading at the same moment.
func TestStreamLeakMidStreamCancel(t *testing.T) {
	baseline := runtime.NumGoroutine()
	e := New(WithWorkers(2))
	s, err := e.NewSession(pdeModel(t), Config{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan *counters.Observation)
	go func() {
		// Endless supply: only cancellation can end the run.
		for i := 0; ; i++ {
			o := obsAround("obs", 500, 100, 40, int64(i))
			select {
			case in <- o:
			case <-ctx.Done():
				return
			}
		}
	}()
	st := s.EvaluateStream(ctx, in)
	for item := range st.C {
		if item.Err != nil {
			t.Fatal(item.Err)
		}
		if item.Index >= 3 {
			break // stop reading...
		}
	}
	cancel() // ...and cancel mid-flight, never calling Result
	e.Close()
	settleGoroutines(t, baseline)
}

// TestStreamLeakServerDisconnect models the service shape: the stream's
// context is a request context that is cancelled when the client goes
// away, while the handler drains whatever is left and calls Result. Both
// the handler's drain and the engine's internals must unwind.
func TestStreamLeakServerDisconnect(t *testing.T) {
	baseline := runtime.NumGoroutine()
	e := New(WithWorkers(2))
	s, err := e.NewSession(pdeModel(t), Config{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	reqCtx, disconnect := context.WithCancel(context.Background())
	in := make(chan *counters.Observation)
	go func() {
		// Unbounded upload: the run cannot finish before the disconnect.
		for i := 0; ; i++ {
			o := obsAround(fmt.Sprintf("obs-%d", i), 500, 100, 40, int64(i))
			select {
			case in <- o:
			case <-reqCtx.Done():
				return
			}
		}
	}()
	st := s.EvaluateStream(reqCtx, in)
	handlerDone := make(chan error, 1)
	go func() {
		// The handler: forward verdicts until the stream closes, then
		// aggregate — exactly what the NDJSON endpoint does.
		n := 0
		for item := range st.C {
			_ = item
			n++
			if n == 4 {
				disconnect() // client vanished mid-response
			}
		}
		_, err := st.Result()
		handlerDone <- err
	}()
	select {
	case err := <-handlerDone:
		if err != context.Canceled {
			t.Fatalf("handler result error = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("handler never unwound after the disconnect")
	}
	e.Close()
	settleGoroutines(t, baseline)
}
