package engine

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/stats"
)

// The acceptance benchmark of the batched-engine refactor: evaluate a
// 500-observation corpus against one model, comparing
//
//   - PerCall     — the seed path: core.TestObservation per observation,
//     rebuilding the confidence region and a fresh rational LP every time;
//   - SessionCold — a brand-new engine per iteration (first-corpus cost:
//     workspace reuse and quantile memoisation, but no warm region cache);
//   - Session     — a long-lived engine, the steady state of a model sweep
//     or a continuously-running checking service, where the corpus regions
//     are already cached.
//
// Run with -benchmem; the refactor's acceptance criterion is ≥2× fewer
// allocations for Session than PerCall.

func benchCorpus(n int) []*counters.Observation {
	corpus := make([]*counters.Observation, 0, n)
	for i := 0; i < n; i++ {
		label, cw, pm := "ok", 500.0, 100.0
		if i%5 == 4 {
			label, cw, pm = "bad", 100.0, 400.0
		}
		corpus = append(corpus, obsAround(label, cw, pm, 50, int64(i)))
	}
	return corpus
}

func BenchmarkCorpusPerCall(b *testing.B) {
	m := pdeModel(b)
	corpus := benchCorpus(500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inf := 0
		for _, o := range corpus {
			v, err := m.TestObservation(o, core.DefaultConfidence, stats.Correlated, false)
			if err != nil {
				b.Fatal(err)
			}
			if !v.Feasible {
				inf++
			}
		}
		if inf != 100 {
			b.Fatalf("infeasible %d", inf)
		}
	}
}

func BenchmarkCorpusSessionCold(b *testing.B) {
	m := pdeModel(b)
	corpus := benchCorpus(500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New()
		s, err := e.NewSession(m, Config{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Evaluate(context.Background(), corpus)
		if err != nil {
			b.Fatal(err)
		}
		if res.Infeasible != 100 {
			b.Fatalf("infeasible %d", res.Infeasible)
		}
		e.Close()
	}
}

func BenchmarkCorpusSession(b *testing.B) {
	m := pdeModel(b)
	corpus := benchCorpus(500)
	e := New()
	defer e.Close()
	s, err := e.NewSession(m, Config{})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the engine caches once — the steady state under measurement.
	if _, err := s.Evaluate(context.Background(), corpus); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Evaluate(context.Background(), corpus)
		if err != nil {
			b.Fatal(err)
		}
		if res.Infeasible != 100 {
			b.Fatalf("infeasible %d", res.Infeasible)
		}
	}
}

// BenchmarkSweepPerCall / BenchmarkSweepSession measure the Figure 1b/9
// shape: the same corpus against several restrictions of one model, where
// the engine's restricted-model and region caches pay off even from cold.
func BenchmarkSweepPerCall(b *testing.B) {
	m := pdeModel(b)
	corpus := benchCorpus(100)
	sets := []*counters.Set{
		counters.NewSet("load.causes_walk"),
		counters.NewSet("load.pde$_miss"),
		pdeSet(),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, set := range sets {
			sub, err := m.Restrict(set)
			if err != nil {
				b.Fatal(err)
			}
			for _, o := range corpus {
				if _, err := sub.TestObservation(o, core.DefaultConfidence, stats.Correlated, false); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkSweepSession(b *testing.B) {
	m := pdeModel(b)
	corpus := benchCorpus(100)
	sets := []*counters.Set{
		counters.NewSet("load.causes_walk"),
		counters.NewSet("load.pde$_miss"),
		pdeSet(),
	}
	e := New()
	defer e.Close()
	s, err := e.NewSession(m, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, set := range sets {
			sub, err := s.Restrict(set)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sub.Evaluate(context.Background(), corpus); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStreamIngest measures the per-observation cost of the online
// refutation path: one long-lived IncrementalSession — the object behind
// POST /v1/streams/{id}/ingest — folding observations one at a time under
// the service configuration (ephemeral observations, violations on).
//
//   - fresh — every ingested observation is new content, the steady state
//     of a live counter feed: an uncached confidence region, a fresh
//     feasibility LP and a warm-started dual-simplex solve per ingest,
//     with only the canonical-hash probe of the verdict cache shared;
//   - warm — the same observation re-ingested, isolating the fixed
//     per-ingest overhead (state fold, scratch reuse, verdict-cache hit)
//     with no solve of any tier in the timed loop.
func BenchmarkStreamIngest(b *testing.B) {
	const chunk = 512
	freshChunk := func(lap int) []*counters.Observation {
		// Slow drift, like a real feed: each lap is new content, near
		// enough to its neighbours that the warm-start path engages.
		return driftCorpus(pdeSet(), chunk, 60,
			[]float64{500, 200}, []float64{0.25, 0.125}, int64(1000+lap))
	}
	newIngestSession := func(b *testing.B) (*Engine, *IncrementalSession) {
		e := New(WithWorkers(1))
		s, err := e.NewSession(pdeModel(b), Config{IdentifyViolations: true, EphemeralObservations: true})
		if err != nil {
			e.Close()
			b.Fatal(err)
		}
		return e, s.Incremental()
	}

	b.Run("fresh", func(b *testing.B) {
		e, inc := newIngestSession(b)
		defer e.Close()
		defer inc.Close()
		// Warm once with content outside the drift corpus, so every timed
		// ingest really is first-sight content.
		if _, err := inc.Ingest(context.Background(), obsAround("warm", 500, 100, 60, 7)); err != nil {
			b.Fatal(err)
		}
		corpus := freshChunk(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if j := i % chunk; j == 0 && i > 0 {
				b.StopTimer()
				corpus = freshChunk(i / chunk)
				b.StartTimer()
			}
			if _, err := inc.Ingest(context.Background(), corpus[i%chunk]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if st := inc.State(); st.Total != b.N+1 {
			b.Fatalf("state total %d after %d ingests", st.Total, b.N+1)
		}
	})

	b.Run("warm", func(b *testing.B) {
		e, inc := newIngestSession(b)
		defer e.Close()
		defer inc.Close()
		o := obsAround("steady", 500, 100, 60, 42)
		if _, err := inc.Ingest(context.Background(), o); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := inc.Ingest(context.Background(), o); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if cc := e.CacheStats(); cc.VerdictHits == 0 {
			b.Fatal("no verdict-cache hits recorded")
		}
		if st := inc.State(); st.Total != b.N+1 || st.Infeasible != 0 {
			b.Fatalf("state %+v after %d ingests", st, b.N+1)
		}
	})
}

// BenchmarkVerdictCacheHit measures the content-addressed verdict cache's
// steady state: the same observation tested over and over against the
// same model, so after the first call every Test is a verdict-cache hit —
// region lookup, LP-cache hit, cached canonical hash, memoised verdict —
// with no simplex solve of any tier in the timed loop.
func BenchmarkVerdictCacheHit(b *testing.B) {
	m := pdeModel(b)
	e := New(WithWorkers(1))
	defer e.Close()
	s, err := e.NewSession(m, Config{})
	if err != nil {
		b.Fatal(err)
	}
	o := obsAround("steady", 500, 100, 100, 42)
	if _, err := s.Test(context.Background(), o); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Test(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if cc := e.CacheStats(); cc.VerdictHits == 0 {
		b.Fatal("no verdict-cache hits recorded")
	}
}
