package engine

import (
	"sync/atomic"

	"repro/internal/core"
)

// VerdictStore is a persistent backing tier for the content-addressed
// verdict cache. Keys are canonical LP hashes (core.LPHash); values are
// feasibility verdicts. Implementations must be safe for concurrent use;
// internal/perfdb provides the file-backed one counterpointd wires in.
// The interface is declared here (not in perfdb) so the engine stays
// free of storage dependencies.
type VerdictStore interface {
	// Get returns the stored verdict for key, if any.
	Get(key [32]byte) (verdict bool, ok bool)
	// Put records the verdict for key. Errors are the store's to surface
	// (the engine treats persistence as best-effort and keeps serving).
	Put(key [32]byte, verdict bool) error
}

// cacheStats counts engine cache activity. All counters are atomic; LRU
// eviction totals live in the caches themselves behind their mutexes.
type cacheStats struct {
	lpHits        atomic.Uint64
	lpMisses      atomic.Uint64
	verdictHits   atomic.Uint64
	verdictMisses atomic.Uint64
	storeHits     atomic.Uint64
	storeErrors   atomic.Uint64
}

// CacheCounts is a point-in-time snapshot of the engine's cache
// telemetry, shaped for JSON (counterpointd's /stats endpoint).
type CacheCounts struct {
	// LPHits / LPMisses count content-keyed LP cache lookups; LPEvictions
	// counts entries displaced by the LRU policy.
	LPHits      uint64 `json:"lp_hits"`
	LPMisses    uint64 `json:"lp_misses"`
	LPEvictions uint64 `json:"lp_evictions"`
	LPEntries   int    `json:"lp_entries"`
	// VerdictHits / VerdictMisses count content-addressed verdict cache
	// lookups (a hit skips the solve entirely); StoreHits counts the
	// subset of hits served by the persistent store after a memory miss,
	// and StoreErrors counts failed persistence writes.
	VerdictHits      uint64 `json:"verdict_hits"`
	VerdictMisses    uint64 `json:"verdict_misses"`
	VerdictEvictions uint64 `json:"verdict_evictions"`
	VerdictEntries   int    `json:"verdict_entries"`
	StoreHits        uint64 `json:"store_hits"`
	StoreErrors      uint64 `json:"store_errors"`
	// ModelEvictions / SessionEvictions count LRU displacement in the
	// restricted-model and shared-session caches.
	ModelEvictions   uint64 `json:"model_evictions"`
	SessionEvictions uint64 `json:"session_evictions"`
}

// CacheStats snapshots the engine's cache telemetry.
func (e *Engine) CacheStats() CacheCounts {
	c := CacheCounts{
		LPHits:        e.caches.lpHits.Load(),
		LPMisses:      e.caches.lpMisses.Load(),
		VerdictHits:   e.caches.verdictHits.Load(),
		VerdictMisses: e.caches.verdictMisses.Load(),
		StoreHits:     e.caches.storeHits.Load(),
		StoreErrors:   e.caches.storeErrors.Load(),
	}
	e.lpMu.Lock()
	c.LPEvictions = e.lps.Evictions()
	c.LPEntries = e.lps.Len()
	e.lpMu.Unlock()
	e.verdictMu.Lock()
	c.VerdictEvictions = e.verdicts.Evictions()
	c.VerdictEntries = e.verdicts.Len()
	e.verdictMu.Unlock()
	e.mu.Lock()
	c.ModelEvictions = e.models.Evictions()
	e.mu.Unlock()
	e.sessMu.Lock()
	c.SessionEvictions = e.sessions.Evictions()
	e.sessMu.Unlock()
	return c
}

// cachedVerdict consults the content-addressed verdict cache: the
// in-memory LRU first, then the persistent store (promoting a store hit
// into memory).
func (e *Engine) cachedVerdict(h core.LPHash) (feasible, ok bool) {
	e.verdictMu.Lock()
	feasible, ok = e.verdicts.Get(h)
	e.verdictMu.Unlock()
	if ok {
		e.caches.verdictHits.Add(1)
		return feasible, true
	}
	if e.store != nil {
		if feasible, ok = e.store.Get(h); ok {
			e.verdictMu.Lock()
			e.verdicts.Add(h, feasible)
			e.verdictMu.Unlock()
			e.caches.verdictHits.Add(1)
			e.caches.storeHits.Add(1)
			return feasible, true
		}
	}
	e.caches.verdictMisses.Add(1)
	return false, false
}

// storeVerdict records a freshly solved verdict in memory and writes it
// through to the persistent store when one is attached.
func (e *Engine) storeVerdict(h core.LPHash, feasible bool) {
	e.verdictMu.Lock()
	e.verdicts.Add(h, feasible)
	e.verdictMu.Unlock()
	if e.store != nil {
		if err := e.store.Put(h, feasible); err != nil {
			e.caches.storeErrors.Add(1)
		}
	}
}
