// Package engine is CounterPoint's batched feasibility engine: the layer
// that turns package core's single-verdict testing into high-throughput
// corpus evaluation (paper §7.2 calls feasibility testing "embarrassingly
// parallel"; this package is where that parallelism lives).
//
// An Engine is long-lived. It owns
//
//   - a bounded, context-aware worker pool shared by every Session,
//   - a stats.RegionBuilder memoising χ² quantiles and confidence regions
//     across observations, models and sessions,
//   - a pool of simplex.Workspaces so the exact LP reuses its rational
//     tableau from verdict to verdict,
//   - a cache of Restricted models, so counter-group sweeps (Figure 1b/9)
//     share μpath enumeration and cone construction per counter set.
//
// A Session binds one model to an evaluation configuration (confidence,
// noise mode, violation identification, batching, early exit). Sessions
// are cheap; create one per model and reuse it for every corpus. See
// session.go for the streaming API.
package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/floatlp"
	"repro/internal/mudd"
	"repro/internal/simplex"
	"repro/internal/stats"
)

// ErrClosed is returned by operations on an engine after Close.
var ErrClosed = errors.New("engine: closed")

// Engine is a long-lived evaluation runtime. The zero value is not usable;
// call New. Engines are safe for concurrent use.
type Engine struct {
	workers int
	regions *stats.RegionBuilder
	solver  *core.SolverStats

	tasks chan func()
	quit  chan struct{}
	wg    sync.WaitGroup

	closeOnce sync.Once

	scratch sync.Pool // *evalScratch

	mu     sync.Mutex
	models map[restrictKey]*core.Model

	lpMu sync.RWMutex
	lps  map[lpKey]*simplex.Problem

	sessMu   sync.RWMutex
	sessions map[sessionKey]*Session
}

// sessionKey identifies a shared session. Config is a comparable value
// type, and models served repeatedly are themselves shared (the server
// registry hands out one *core.Model per registered name), so pointer
// identity plus the normalised configuration is the right notion of
// sameness.
type sessionKey struct {
	model *core.Model
	cfg   Config
}

type restrictKey struct {
	diagram *mudd.Diagram
	set     string
}

// lpKey identifies a cached feasibility LP. Both the model and the region
// are engine-cached themselves, so pointer identity is the right notion of
// sameness.
type lpKey struct {
	model  *core.Model
	region *stats.Region
}

// evalScratch is the per-worker reusable state: the exact LP workspace,
// the float-filter workspace of the two-tier solver, and the certificate
// checker's int64-kernel scratch. Pooled rather than per-worker so
// Session.Test (which runs inline, off-pool) can borrow one too.
type evalScratch struct {
	ws   *simplex.Workspace
	fl   *floatlp.Workspace
	cert *simplex.Certifier
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers bounds the worker pool. Values below 1 are clamped to 1. The
// default is runtime.GOMAXPROCS(0).
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.workers = n
	}
}

// New starts an engine with its worker pool running. Call Close to stop the
// workers when the engine is no longer needed; the package-level Default
// engine stays up for the life of the process.
func New(opts ...Option) *Engine {
	e := &Engine{
		workers:  runtime.GOMAXPROCS(0),
		regions:  stats.NewRegionBuilder(),
		solver:   &core.SolverStats{},
		quit:     make(chan struct{}),
		models:   make(map[restrictKey]*core.Model),
		lps:      make(map[lpKey]*simplex.Problem),
		sessions: make(map[sessionKey]*Session),
	}
	for _, o := range opts {
		o(e)
	}
	e.scratch.New = func() any {
		return &evalScratch{
			ws:   simplex.NewWorkspace(),
			fl:   floatlp.NewWorkspace(),
			cert: simplex.NewCertifier(),
		}
	}
	e.tasks = make(chan func())
	e.wg.Add(e.workers)
	for i := 0; i < e.workers; i++ {
		go func() {
			defer e.wg.Done()
			for {
				select {
				case f := <-e.tasks:
					f()
				case <-e.quit:
					return
				}
			}
		}()
	}
	return e
}

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the shared process-wide engine, created on first use and
// never closed. Command-line tools and experiments share it so the region
// and model caches amortise across an entire run.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = New() })
	return defaultEngine
}

// Workers reports the pool bound.
func (e *Engine) Workers() int { return e.workers }

// Regions exposes the engine's shared region builder.
func (e *Engine) Regions() *stats.RegionBuilder { return e.regions }

// SolverStats snapshots the engine's two-tier solver telemetry: total
// evaluations, float-filter hits by verdict, certification failures and
// exact fallbacks. Counters accumulate across every session of the engine.
func (e *Engine) SolverStats() core.SolverCounts { return e.solver.Snapshot() }

// Close stops the worker pool and waits for in-flight tasks to finish.
// Pending submissions fail with ErrClosed. Close is idempotent.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.quit) })
	e.wg.Wait()
}

// submit hands f to the pool, blocking until a worker frees up, ctx is
// done, or the engine closes.
func (e *Engine) submit(ctx context.Context, f func()) error {
	select {
	case e.tasks <- f:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-e.quit:
		return ErrClosed
	}
}

func (e *Engine) getScratch() *evalScratch  { return e.scratch.Get().(*evalScratch) }
func (e *Engine) putScratch(s *evalScratch) { e.scratch.Put(s) }

// lpCacheLimit bounds the per-(model, region) LP cache. Workloads that
// never revisit a pair (explore searches evaluate each node once) would
// otherwise grow the cache without ever hitting it; past the cap, LPs are
// built fresh into the pooled problem storage instead of being retained.
const lpCacheLimit = 1 << 16

// lpFor returns the feasibility LP of (m, r), built once and re-solved by
// every subsequent verdict over the same cached region — sweeps that
// revisit a corpus skip the whole constraint-row construction.
func (e *Engine) lpFor(m *core.Model, r *stats.Region, sc *evalScratch) (*simplex.Problem, error) {
	k := lpKey{model: m, region: r}
	e.lpMu.RLock()
	p, ok := e.lps[k]
	full := len(e.lps) >= lpCacheLimit
	e.lpMu.RUnlock()
	if ok {
		return p, nil
	}
	if full {
		p = sc.ws.Prepare(0)
		if err := m.RegionLP(p, r); err != nil {
			return nil, err
		}
		return p, nil
	}
	p = simplex.NewProblem(0)
	if err := m.RegionLP(p, r); err != nil {
		return nil, err
	}
	e.lpMu.Lock()
	if prev, ok := e.lps[k]; ok {
		p = prev
	} else {
		e.lps[k] = p
	}
	e.lpMu.Unlock()
	return p, nil
}

// modelFor returns m restricted to set, memoised per (diagram, set) so
// counter-group sweeps over the same diagram share μpath enumeration and
// cone construction. The base model itself is cached too, keyed by its own
// set, so repeated sweeps converge on one instance per step.
func (e *Engine) modelFor(m *core.Model, set *counters.Set) (*core.Model, error) {
	if set == nil || m.Set.Equal(set) {
		return m, nil
	}
	k := restrictKey{diagram: m.Diagram, set: set.Key()}
	e.mu.Lock()
	cached, ok := e.models[k]
	e.mu.Unlock()
	if ok {
		return cached, nil
	}
	restricted, err := m.Restrict(set)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if prev, ok := e.models[k]; ok {
		restricted = prev
	} else if len(e.models) < modelCacheLimit {
		e.models[k] = restricted
	}
	e.mu.Unlock()
	return restricted, nil
}

// modelCacheLimit bounds the restricted-model cache; like the LP cache it
// degrades to building fresh models rather than growing without bound.
const modelCacheLimit = 1 << 12
