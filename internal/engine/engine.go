// Package engine is CounterPoint's batched feasibility engine: the layer
// that turns package core's single-verdict testing into high-throughput
// corpus evaluation (paper §7.2 calls feasibility testing "embarrassingly
// parallel"; this package is where that parallelism lives).
//
// An Engine is long-lived. It owns
//
//   - a bounded, context-aware worker pool shared by every Session,
//   - a stats.RegionBuilder memoising χ² quantiles and confidence regions
//     across observations, models and sessions,
//   - a pool of simplex.Workspaces so the exact LP reuses its rational
//     tableau from verdict to verdict,
//   - a cache of Restricted models, so counter-group sweeps (Figure 1b/9)
//     share μpath enumeration and cone construction per counter set.
//
// A Session binds one model to an evaluation configuration (confidence,
// noise mode, violation identification, batching, early exit). Sessions
// are cheap; create one per model and reuse it for every corpus. See
// session.go for the streaming API.
package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/floatlp"
	"repro/internal/mudd"
	"repro/internal/simplex"
	"repro/internal/stats"
)

// ErrClosed is returned by operations on an engine after Close.
var ErrClosed = errors.New("engine: closed")

// Engine is a long-lived evaluation runtime. The zero value is not usable;
// call New. Engines are safe for concurrent use.
type Engine struct {
	workers      int
	regions      *stats.RegionBuilder
	solver       *core.SolverStats
	caches       *cacheStats
	store        VerdictStore
	lpLimit      int
	verdictLimit int

	tasks chan func()
	quit  chan struct{}
	wg    sync.WaitGroup

	closeOnce sync.Once

	scratch sync.Pool // *evalScratch

	mu     sync.Mutex
	models *lruCache[restrictKey, *core.Model]

	lpMu sync.Mutex
	lps  *lruCache[lpKey, lpEntry]

	verdictMu sync.Mutex
	verdicts  *lruCache[core.LPHash, bool]

	sessMu   sync.Mutex
	sessions *lruCache[sessionKey, *Session]
}

// sessionKey identifies a shared session. Config is a comparable value
// type, and models served repeatedly are themselves shared (the server
// registry hands out one *core.Model per registered name), so pointer
// identity plus the normalised configuration is the right notion of
// sameness.
type sessionKey struct {
	model *core.Model
	cfg   Config
}

type restrictKey struct {
	diagram *mudd.Diagram
	set     string
}

// lpKey identifies a cached feasibility LP by content: the model's
// content key and the region's content key. Content keys (unlike the
// pointer keys this cache used to hold) survive rebuilt regions and
// deduplicate identical payloads arriving through different pointers.
type lpKey struct {
	model  string
	region string
}

// lpEntry pairs a cached LP with its canonical content hash, computed
// once at build time so verdict-cache lookups on the hot path cost a map
// probe instead of a canonicalization pass.
type lpEntry struct {
	p    *simplex.Problem
	hash core.LPHash
}

// evalScratch is the per-worker reusable state: the exact LP workspace,
// the float-filter workspace of the two-tier solver, the certificate
// checker's int64-kernel scratch, and the warm-start solvers keyed by
// model. Pooled rather than per-worker so Session.Test (which runs
// inline, off-pool) can borrow one too.
type evalScratch struct {
	ws   *simplex.Workspace
	fl   *floatlp.Workspace
	cert *simplex.Certifier
	warm map[*core.Model]*simplex.WarmSolver
}

// warmPerScratchLimit bounds the warm solvers one scratch retains; each
// holds a live integer tableau, so a scratch that has served many models
// sheds them all rather than growing without bound.
const warmPerScratchLimit = 16

// warmFor returns the scratch's warm-start solver for m, creating one on
// first use. Basis reuse only pays within one model's stream of regions,
// so solvers are per (scratch, model).
func (sc *evalScratch) warmFor(m *core.Model) *simplex.WarmSolver {
	if w, ok := sc.warm[m]; ok {
		return w
	}
	if sc.warm == nil || len(sc.warm) >= warmPerScratchLimit {
		sc.warm = make(map[*core.Model]*simplex.WarmSolver)
	}
	w := simplex.NewWarmSolver()
	sc.warm[m] = w
	return w
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers bounds the worker pool. Values below 1 are clamped to 1. The
// default is runtime.GOMAXPROCS(0).
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.workers = n
	}
}

// WithVerdictStore attaches a persistent verdict store (typically
// perfdb's): verdict-cache misses read through to it and fresh verdicts
// write through, so content-addressed verdicts survive process restarts.
func WithVerdictStore(s VerdictStore) Option {
	return func(e *Engine) { e.store = s }
}

// WithCacheLimits overrides the LP and verdict cache bounds. Values below
// 1 keep the corresponding default.
func WithCacheLimits(lps, verdicts int) Option {
	return func(e *Engine) {
		if lps >= 1 {
			e.lpLimit = lps
		}
		if verdicts >= 1 {
			e.verdictLimit = verdicts
		}
	}
}

// New starts an engine with its worker pool running. Call Close to stop the
// workers when the engine is no longer needed; the package-level Default
// engine stays up for the life of the process.
func New(opts ...Option) *Engine {
	e := &Engine{
		workers:      runtime.GOMAXPROCS(0),
		regions:      stats.NewRegionBuilder(),
		solver:       &core.SolverStats{},
		caches:       &cacheStats{},
		lpLimit:      lpCacheLimit,
		verdictLimit: verdictCacheLimit,
		quit:         make(chan struct{}),
	}
	for _, o := range opts {
		o(e)
	}
	e.models = newLRU[restrictKey, *core.Model](modelCacheLimit)
	e.lps = newLRU[lpKey, lpEntry](e.lpLimit)
	e.verdicts = newLRU[core.LPHash, bool](e.verdictLimit)
	e.sessions = newLRU[sessionKey, *Session](sessionCacheLimit)
	e.scratch.New = func() any {
		return &evalScratch{
			ws:   simplex.NewWorkspace(),
			fl:   floatlp.NewWorkspace(),
			cert: simplex.NewCertifier(),
		}
	}
	e.tasks = make(chan func())
	e.wg.Add(e.workers)
	for i := 0; i < e.workers; i++ {
		go func() {
			defer e.wg.Done()
			for {
				select {
				case f := <-e.tasks:
					f()
				case <-e.quit:
					return
				}
			}
		}()
	}
	return e
}

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the shared process-wide engine, created on first use and
// never closed. Command-line tools and experiments share it so the region
// and model caches amortise across an entire run.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = New() })
	return defaultEngine
}

// Workers reports the pool bound.
func (e *Engine) Workers() int { return e.workers }

// Regions exposes the engine's shared region builder.
func (e *Engine) Regions() *stats.RegionBuilder { return e.regions }

// SolverStats snapshots the engine's two-tier solver telemetry: total
// evaluations, float-filter hits by verdict, certification failures and
// exact fallbacks. Counters accumulate across every session of the engine.
func (e *Engine) SolverStats() core.SolverCounts { return e.solver.Snapshot() }

// Close stops the worker pool and waits for in-flight tasks to finish.
// Pending submissions fail with ErrClosed. Close is idempotent.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.quit) })
	e.wg.Wait()
}

// submit hands f to the pool, blocking until a worker frees up, ctx is
// done, or the engine closes.
func (e *Engine) submit(ctx context.Context, f func()) error {
	select {
	case e.tasks <- f:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-e.quit:
		return ErrClosed
	}
}

func (e *Engine) getScratch() *evalScratch  { return e.scratch.Get().(*evalScratch) }
func (e *Engine) putScratch(s *evalScratch) { e.scratch.Put(s) }

// lpCacheLimit bounds the per-(model, region) LP cache. The cache is
// LRU: workloads that revisit pairs keep their hot set resident no matter
// how many one-shot LPs (explore searches evaluate each node once) pass
// through in between.
const lpCacheLimit = 1 << 16

// verdictCacheLimit bounds the in-memory content-addressed verdict
// cache. Entries are a hash and a bool, so the cap is generous.
const verdictCacheLimit = 1 << 18

// lpFor returns the feasibility LP of (m, r) and its content hash. The LP
// is built once and re-solved by every subsequent verdict over the same
// region content — sweeps that revisit a corpus skip the whole
// constraint-row construction, and the hash addresses the verdict cache.
func (e *Engine) lpFor(m *core.Model, r *stats.Region) (*simplex.Problem, core.LPHash, error) {
	k := lpKey{model: m.ContentKey(), region: r.Key()}
	e.lpMu.Lock()
	ent, ok := e.lps.Get(k)
	e.lpMu.Unlock()
	if ok {
		e.caches.lpHits.Add(1)
		return ent.p, ent.hash, nil
	}
	e.caches.lpMisses.Add(1)
	p := simplex.NewProblem(0)
	if err := m.RegionLP(p, r); err != nil {
		return nil, core.LPHash{}, err
	}
	ent = lpEntry{p: p, hash: core.HashLP(p)}
	e.lpMu.Lock()
	ent = e.lps.Add(k, ent) // first writer wins
	e.lpMu.Unlock()
	return ent.p, ent.hash, nil
}

// modelFor returns m restricted to set, memoised per (diagram, set) so
// counter-group sweeps over the same diagram share μpath enumeration and
// cone construction. The base model itself is cached too, keyed by its own
// set, so repeated sweeps converge on one instance per step.
func (e *Engine) modelFor(m *core.Model, set *counters.Set) (*core.Model, error) {
	if set == nil || m.Set.Equal(set) {
		return m, nil
	}
	k := restrictKey{diagram: m.Diagram, set: set.Key()}
	e.mu.Lock()
	cached, ok := e.models.Get(k)
	e.mu.Unlock()
	if ok {
		return cached, nil
	}
	restricted, err := m.Restrict(set)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	restricted = e.models.Add(k, restricted) // first writer wins
	e.mu.Unlock()
	return restricted, nil
}

// modelCacheLimit bounds the restricted-model LRU cache.
const modelCacheLimit = 1 << 12
