package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/stats"
)

const initialModelSrc = `
incr load.causes_walk;
do LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => incr load.pde$_miss;
};
done;
`

func pdeSet() *counters.Set {
	return counters.NewSet("load.causes_walk", "load.pde$_miss")
}

func pdeModel(t testing.TB) *core.Model {
	t.Helper()
	m, err := core.ModelFromDSL("initial", initialModelSrc, pdeSet())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func obsAround(label string, cw, pm float64, samples int, seed int64) *counters.Observation {
	o := counters.NewObservation(label, pdeSet())
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < samples; i++ {
		o.Append([]float64{cw + rng.NormFloat64(), pm + rng.NormFloat64()})
	}
	return o
}

func mixedCorpus() []*counters.Observation {
	return []*counters.Observation{
		obsAround("ok1", 500, 100, 100, 10),
		obsAround("ok2", 300, 299, 100, 11),
		obsAround("bad1", 100, 400, 100, 12),
		obsAround("bad2", 50, 200, 100, 13),
	}
}

// TestEvaluateCorpus is the engine port of the seed's core corpus test.
func TestEvaluateCorpus(t *testing.T) {
	e := New()
	defer e.Close()
	s, err := e.NewSession(pdeModel(t), Config{IdentifyViolations: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate(context.Background(), mixedCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 4 {
		t.Fatalf("total: %d", res.Total)
	}
	if res.Infeasible != 2 {
		t.Fatalf("infeasible: %d, want 2", res.Infeasible)
	}
	if res.ViolatedConstraints["load.pde$_miss <= load.causes_walk"] != 2 {
		t.Fatalf("violation counts: %v", res.ViolatedConstraints)
	}
	if len(res.Verdicts) != 4 {
		t.Fatalf("verdicts: %d", len(res.Verdicts))
	}
	// Verdicts come back in corpus order despite parallel completion.
	for i, want := range []string{"ok1", "ok2", "bad1", "bad2"} {
		if res.Verdicts[i].Observation != want {
			t.Fatalf("verdict %d is %q, want %q", i, res.Verdicts[i].Observation, want)
		}
	}
}

// TestSessionMatchesCorePerCall checks the cached engine path agrees with
// core's uncached per-call path on every observation.
func TestSessionMatchesCorePerCall(t *testing.T) {
	e := New()
	defer e.Close()
	m := pdeModel(t)
	s, err := e.NewSession(m, Config{IdentifyViolations: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range mixedCorpus() {
		got, err := s.Test(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.TestObservation(o, core.DefaultConfidence, stats.Correlated, true)
		if err != nil {
			t.Fatal(err)
		}
		if got.Feasible != want.Feasible {
			t.Fatalf("%s: engine %v, core %v", o.Label, got.Feasible, want.Feasible)
		}
		if len(got.Violations) != len(want.Violations) {
			t.Fatalf("%s: violations %v vs %v", o.Label, got.Violations, want.Violations)
		}
	}
}

// TestEvaluateStreamDelivery checks the streaming path delivers one indexed
// item per observation.
func TestEvaluateStreamDelivery(t *testing.T) {
	e := New()
	defer e.Close()
	s, err := e.NewSession(pdeModel(t), Config{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	corpus := mixedCorpus()
	in := make(chan *counters.Observation)
	go func() {
		defer close(in)
		for _, o := range corpus {
			in <- o
		}
	}()
	st := s.EvaluateStream(context.Background(), in)
	seen := map[int]string{}
	for item := range st.C {
		if item.Err != nil {
			t.Fatal(item.Err)
		}
		seen[item.Index] = item.Verdict.Observation
	}
	if len(seen) != len(corpus) {
		t.Fatalf("streamed %d items, want %d", len(seen), len(corpus))
	}
	for i, o := range corpus {
		if seen[i] != o.Label {
			t.Fatalf("index %d streamed %q, want %q", i, seen[i], o.Label)
		}
	}
	res, err := st.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != len(corpus) || res.Infeasible != 2 {
		t.Fatalf("aggregate %d/%d", res.Infeasible, res.Total)
	}
}

// TestStopOnInfeasible checks the early-exit mode terminates the stream
// without evaluating the whole corpus, and that the refuting verdict
// itself is always delivered on the stream channel.
func TestStopOnInfeasible(t *testing.T) {
	e := New(WithWorkers(1))
	defer e.Close()
	s, err := e.NewSession(pdeModel(t), Config{StopOnInfeasible: true, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One violating observation leading a long tail of feasible ones.
	corpus := []*counters.Observation{obsAround("bad", 100, 400, 80, 1)}
	for i := 0; i < 64; i++ {
		corpus = append(corpus, obsAround("ok", 500, 100, 80, int64(i+2)))
	}
	in := make(chan *counters.Observation, len(corpus))
	for _, o := range corpus {
		in <- o
	}
	close(in)
	st := s.EvaluateStream(context.Background(), in)
	sawRefutation := false
	for item := range st.C {
		if item.Err != nil {
			t.Fatal(item.Err)
		}
		if !item.Verdict.Feasible {
			sawRefutation = true
			if item.Verdict.Observation != "bad" {
				t.Fatalf("refuting verdict from %q", item.Verdict.Observation)
			}
		}
	}
	if !sawRefutation {
		t.Fatal("the refuting verdict never appeared on the stream channel")
	}
	res, err := st.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible == 0 {
		t.Fatal("the infeasible observation was not found")
	}
	if res.Total == len(corpus) {
		t.Fatal("early exit did not skip any work")
	}
}

// TestStreamDeliversErrorItems checks per-item evaluation errors are
// forwarded on C (not just folded into Result) and fail the run.
func TestStreamDeliversErrorItems(t *testing.T) {
	e := New(WithWorkers(1))
	defer e.Close()
	s, err := e.NewSession(pdeModel(t), Config{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	empty := counters.NewObservation("empty", pdeSet()) // no samples: region error
	in := make(chan *counters.Observation, 2)
	in <- obsAround("ok", 500, 100, 40, 1)
	in <- empty
	close(in)
	st := s.EvaluateStream(context.Background(), in)
	sawErr := false
	for item := range st.C {
		if item.Err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("error item never appeared on the stream channel")
	}
	if _, err := st.Result(); err == nil {
		t.Fatal("Result must surface the evaluation error")
	}
}

// TestEvaluateStreamCancellation is the leak-and-promptness test: cancel
// mid-run, require a prompt partial result and no goroutines left behind.
func TestEvaluateStreamCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	e := New(WithWorkers(2))
	s, err := e.NewSession(pdeModel(t), Config{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan *counters.Observation)
	feeder := make(chan struct{})
	go func() {
		defer close(feeder)
		// Unbounded feeder: only cancellation stops the stream.
		for i := 0; ; i++ {
			o := obsAround("obs", 500, 100, 60, int64(i))
			select {
			case in <- o:
			case <-ctx.Done():
				return
			}
		}
	}()
	st := s.EvaluateStream(ctx, in)
	got := 0
	for item := range st.C {
		if item.Err != nil {
			t.Fatal(item.Err)
		}
		got++
		if got == 5 {
			cancel()
		}
	}
	res, err := st.Result()
	if err != context.Canceled {
		t.Fatalf("Result error = %v, want context.Canceled", err)
	}
	if res.Total < 5 {
		t.Fatalf("partial result lost verdicts: %d", res.Total)
	}
	if len(res.Verdicts) != res.Total {
		t.Fatalf("verdicts %d vs total %d", len(res.Verdicts), res.Total)
	}
	<-feeder
	e.Close()

	// Manual leak check (no external goleak dependency): the goroutine
	// count must return to its pre-engine baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after cancel+close\n%s", before, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
}

// TestAbandonedStreamDoesNotWedgePool checks that a consumer which stops
// reading C (without cancelling or calling Result) cannot starve other
// sessions sharing the engine's worker pool.
func TestAbandonedStreamDoesNotWedgePool(t *testing.T) {
	e := New(WithWorkers(1)) // single worker: any wedge would block everyone
	defer e.Close()
	s, err := e.NewSession(pdeModel(t), Config{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Abandon: feed a corpus much larger than the channel buffers, read
	// nothing from st.C, never cancel.
	corpus := make([]*counters.Observation, 24)
	for i := range corpus {
		corpus[i] = obsAround("ok", 500, 100, 40, int64(i))
	}
	in := make(chan *counters.Observation, len(corpus))
	for _, o := range corpus {
		in <- o
	}
	close(in)
	_ = s.EvaluateStream(context.Background(), in)

	// A second evaluation on the same engine must still complete.
	done := make(chan error, 1)
	go func() {
		res, err := s.Evaluate(context.Background(), mixedCorpus())
		if err == nil && res.Total != 4 {
			err = fmt.Errorf("total %d", res.Total)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker pool wedged by the abandoned stream")
	}
}

// TestRestrictSharing checks restricted models are memoised engine-wide.
func TestRestrictSharing(t *testing.T) {
	e := New()
	defer e.Close()
	s, err := e.NewSession(pdeModel(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	sub := counters.NewSet("load.causes_walk")
	r1, err := s.Restrict(sub)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Restrict(sub)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Model() != r2.Model() {
		t.Fatal("restricted model was rebuilt instead of shared")
	}
	if r1.Model().Set.Len() != 1 {
		t.Fatalf("restricted set: %v", r1.Model().Set.Events())
	}
	// Restricting to the session's own set returns the same model.
	same, err := s.Restrict(pdeSet())
	if err != nil {
		t.Fatal(err)
	}
	if same.Model() != s.Model() {
		t.Fatal("identity restrict should not rebuild the model")
	}
}

// TestRegionCacheShared checks two sessions over different models share
// region construction through the engine.
func TestRegionCacheShared(t *testing.T) {
	e := New()
	defer e.Close()
	corpus := mixedCorpus()
	m1 := pdeModel(t)
	m2, err := core.ModelFromDSL("refined", `
do LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => {
        incr load.pde$_miss;
        switch Abort { Yes => done; No => pass; };
    };
};
do StartWalk;
incr load.causes_walk;
done;
`, pdeSet())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*core.Model{m1, m2} {
		s, err := e.NewSession(m, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Evaluate(context.Background(), corpus); err != nil {
			t.Fatal(err)
		}
	}
	// Four observations, one counter set, one confidence, one mode: four
	// cached regions total, not eight.
	if got := e.Regions().Len(); got != len(corpus) {
		t.Fatalf("region cache holds %d entries, want %d", got, len(corpus))
	}
}

// TestSessionValidation covers config validation and eager constraint
// deduction failure propagation.
func TestSessionValidation(t *testing.T) {
	e := New()
	defer e.Close()
	if _, err := e.NewSession(pdeModel(t), Config{Confidence: 1.5}); err == nil {
		t.Fatal("confidence 1.5 should be rejected")
	}
	s, err := e.NewSession(pdeModel(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Config().Confidence; got != core.DefaultConfidence {
		t.Fatalf("default confidence %g", got)
	}
	if got := s.Config().BatchSize; got != DefaultBatchSize {
		t.Fatalf("default batch size %d", got)
	}
}

// TestEvaluateAfterClose checks submissions against a closed engine fail
// with ErrClosed rather than hanging or masquerading as a clean run.
func TestEvaluateAfterClose(t *testing.T) {
	e := New(WithWorkers(1))
	s, err := e.NewSession(pdeModel(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	res, err := s.Evaluate(context.Background(), mixedCorpus())
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Evaluate after Close: err = %v, want ErrClosed", err)
	}
	if res.Total != 0 {
		t.Fatalf("closed engine evaluated %d observations", res.Total)
	}
}

// TestSessionForSharing checks SessionFor memoises per (model, normalised
// config): the steady state of a service handling many requests against
// one registered model.
func TestSessionForSharing(t *testing.T) {
	e := New()
	defer e.Close()
	m := pdeModel(t)
	s1, err := e.SessionFor(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// An explicitly-spelled default config shares the normalised session.
	s2, err := e.SessionFor(m, Config{Confidence: core.DefaultConfidence, BatchSize: DefaultBatchSize})
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("equivalent configs built distinct sessions")
	}
	s3, err := e.SessionFor(m, Config{Confidence: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Fatal("distinct configs shared a session")
	}
	if _, err := e.SessionFor(m, Config{Confidence: math.NaN()}); err == nil {
		t.Fatal("NaN confidence must be rejected")
	}
}

// TestEphemeralObservationsBypassCaches checks ephemeral sessions build
// regions and LPs without inserting request-scoped pointers into the
// engine caches, while verdicts stay identical to the cached path.
func TestEphemeralObservationsBypassCaches(t *testing.T) {
	e := New()
	defer e.Close()
	m := pdeModel(t)
	eph, err := e.SessionFor(m, Config{EphemeralObservations: true, IdentifyViolations: true})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := e.SessionFor(m, Config{IdentifyViolations: true})
	if err != nil {
		t.Fatal(err)
	}
	corpus := mixedCorpus()
	verdicts := make([]*core.Verdict, len(corpus))
	for i, o := range corpus {
		v, err := eph.Test(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		verdicts[i] = v
	}
	if got := e.Regions().Len(); got != 0 {
		t.Fatalf("ephemeral session inserted %d regions into the cache", got)
	}
	for i, o := range corpus {
		want, err := cached.Test(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		got := verdicts[i]
		if got.Feasible != want.Feasible || len(got.Violations) != len(want.Violations) {
			t.Fatalf("%s: ephemeral verdict %v/%d, cached %v/%d", o.Label,
				got.Feasible, len(got.Violations), want.Feasible, len(want.Violations))
		}
	}
	res, err := eph.Evaluate(context.Background(), mixedCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 4 || res.Infeasible != 2 {
		t.Fatalf("ephemeral aggregate %d/%d", res.Infeasible, res.Total)
	}
}
