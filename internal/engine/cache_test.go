package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/counters"
)

func TestLRUBasics(t *testing.T) {
	c := newLRU[int, string](2)
	c.Add(1, "a")
	c.Add(2, "b")
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	// 2 is now least recently used; adding 3 evicts it.
	c.Add(3, "c")
	if _, ok := c.Get(2); ok {
		t.Fatal("expected 2 evicted")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Get(3); !ok {
		t.Fatal("new entry missing")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Evictions())
	}
	// Re-adding an existing key keeps the first value.
	if got := c.Add(1, "z"); got != "a" {
		t.Fatalf("Add(existing) = %q, want %q", got, "a")
	}
}

// TestLPCacheAdmitsPastLimit is the regression test for the frozen-cache
// admission bug: the old map-based cache stopped admitting entries once
// full, so a long-lived engine eventually served every request uncached.
// With LRU, entries admitted after the cap is reached must still hit.
func TestLPCacheAdmitsPastLimit(t *testing.T) {
	e := New(WithCacheLimits(4, 1))
	defer e.Close()
	m := pdeModel(t)
	s, err := e.NewSession(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 8 distinct observations fill the 4-entry LP cache twice over.
	var corpus []*counters.Observation
	for i := 0; i < 8; i++ {
		corpus = append(corpus, obsAround(fmt.Sprintf("o%d", i), 400+30*float64(i), 100, 50, int64(40+i)))
	}
	for _, o := range corpus {
		if _, err := s.Test(context.Background(), o); err != nil {
			t.Fatal(err)
		}
	}
	c := e.CacheStats()
	if c.LPMisses != 8 || c.LPHits != 0 {
		t.Fatalf("first pass: %d misses %d hits, want 8/0", c.LPMisses, c.LPHits)
	}
	if c.LPEvictions != 4 || c.LPEntries != 4 {
		t.Fatalf("evictions %d entries %d, want 4/4", c.LPEvictions, c.LPEntries)
	}
	// Re-testing the most recent 4 observations must hit the cache even
	// though it filled long ago.
	for _, o := range corpus[4:] {
		if _, err := s.Test(context.Background(), o); err != nil {
			t.Fatal(err)
		}
	}
	c = e.CacheStats()
	if c.LPHits != 4 {
		t.Fatalf("second pass: %d LP hits, want 4 (cache froze?)", c.LPHits)
	}
}

// TestVerdictCacheSkipsSolve pins the content-addressed verdict cache:
// re-evaluating the same observation serves the verdict from cache
// without another solver evaluation, and the reconstructed verdict is
// identical, violations included.
func TestVerdictCacheSkipsSolve(t *testing.T) {
	e := New()
	defer e.Close()
	s, err := e.NewSession(pdeModel(t), Config{IdentifyViolations: true})
	if err != nil {
		t.Fatal(err)
	}
	bad := obsAround("bad", 200, 500, 300, 2)
	v1, err := s.Test(context.Background(), bad)
	if err != nil {
		t.Fatal(err)
	}
	evalsAfterFirst := e.SolverStats().Evaluations
	v2, err := s.Test(context.Background(), bad)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.SolverStats().Evaluations; got != evalsAfterFirst {
		t.Fatalf("second test ran %d extra solver evaluations", got-evalsAfterFirst)
	}
	c := e.CacheStats()
	if c.VerdictHits == 0 {
		t.Fatalf("no verdict cache hit recorded: %+v", c)
	}
	if v1.Feasible != v2.Feasible {
		t.Fatal("cached verdict diverges")
	}
	if len(v1.Violations) != len(v2.Violations) {
		t.Fatalf("cached verdict lost violations: %v vs %v", v1.Violations, v2.Violations)
	}
	for i := range v1.Violations {
		if v1.Violations[i].String() != v2.Violations[i].String() {
			t.Fatalf("violation %d diverges: %v vs %v", i, v1.Violations[i], v2.Violations[i])
		}
	}
}

// mapStore is an in-memory VerdictStore for testing the read/write-through
// plumbing.
type mapStore struct {
	mu   sync.Mutex
	m    map[[32]byte]bool
	gets int
	puts int
	fail bool
}

func (s *mapStore) Get(key [32]byte) (bool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	v, ok := s.m[key]
	return v, ok
}

func (s *mapStore) Put(key [32]byte, verdict bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if s.fail {
		return fmt.Errorf("store down")
	}
	if s.m == nil {
		s.m = make(map[[32]byte]bool)
	}
	s.m[key] = verdict
	return nil
}

// TestVerdictStoreRoundTrip simulates a restart: verdicts written through
// to the store by one engine are served as store hits by a fresh engine
// sharing the same store — without re-running the solver.
func TestVerdictStoreRoundTrip(t *testing.T) {
	store := &mapStore{}
	corpus := mixedCorpus()

	e1 := New(WithVerdictStore(store))
	s1, err := e1.NewSession(pdeModel(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := s1.Evaluate(context.Background(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	e1.Close()
	if store.puts != res1.Total {
		t.Fatalf("store received %d puts, want %d", store.puts, res1.Total)
	}

	// "Restart": a fresh engine, fresh caches, same store.
	e2 := New(WithVerdictStore(store))
	defer e2.Close()
	s2, err := e2.NewSession(pdeModel(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Evaluate(context.Background(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Infeasible != res1.Infeasible || res2.Total != res1.Total {
		t.Fatalf("verdicts diverge across restart: %d/%d vs %d/%d",
			res2.Infeasible, res2.Total, res1.Infeasible, res1.Total)
	}
	if got := e2.SolverStats().Evaluations; got != 0 {
		t.Fatalf("restarted engine ran %d solver evaluations, want 0 (all store hits)", got)
	}
	c := e2.CacheStats()
	if c.StoreHits != uint64(res2.Total) {
		t.Fatalf("store hits %d, want %d: %+v", c.StoreHits, res2.Total, c)
	}
}

// TestVerdictStoreErrorsAreNonFatal pins the best-effort contract: a
// failing store surfaces in telemetry but never in verdicts.
func TestVerdictStoreErrorsAreNonFatal(t *testing.T) {
	store := &mapStore{fail: true}
	e := New(WithVerdictStore(store))
	defer e.Close()
	s, err := e.NewSession(pdeModel(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate(context.Background(), mixedCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if res.Total == 0 {
		t.Fatal("no verdicts")
	}
	if c := e.CacheStats(); c.StoreErrors == 0 {
		t.Fatalf("store failures not recorded: %+v", c)
	}
}

// TestEphemeralSessionsConsultVerdictCache: ephemeral observations build
// their LP outside the cache but still hash it and hit the verdict cache
// when the content matches an earlier (cached or ephemeral) evaluation.
func TestEphemeralSessionsConsultVerdictCache(t *testing.T) {
	e := New()
	defer e.Close()
	cached, err := e.NewSession(pdeModel(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	eph, err := e.NewSession(pdeModel(t), Config{EphemeralObservations: true})
	if err != nil {
		t.Fatal(err)
	}
	o := obsAround("shared", 500, 200, 100, 9)
	v1, err := cached.Test(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	evals := e.SolverStats().Evaluations
	v2, err := eph.Test(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.SolverStats().Evaluations; got != evals {
		t.Fatal("ephemeral test re-solved a cached verdict")
	}
	if v1.Feasible != v2.Feasible {
		t.Fatal("ephemeral verdict diverges from cached verdict")
	}
}
