package engine

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/counters"
)

// wideModelSrc is a 3-counter, 4-μpath model. Its feasibility LP (4
// generators × 6 slab rows) sat above the float-filter size gate before
// the int64 kernel moved the crossover; today LPs of this size solve
// faster on the kernel's exact tier, so the gate routes them there.
const wideModelSrc = `
incr load.causes_walk;
do LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => incr load.pde$_miss;
};
do LookupPdpe$;
switch Pdpe$Status {
    Hit  => pass;
    Miss => incr load.pdpe$_miss;
};
done;
`

func wideSet() *counters.Set {
	return counters.NewSet("load.causes_walk", "load.pde$_miss", "load.pdpe$_miss")
}

func wideModel(t testing.TB) *core.Model {
	t.Helper()
	m, err := core.ModelFromDSL("wide", wideModelSrc, wideSet())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func wideObs(label string, cw, pm, pp float64, samples int, seed int64) *counters.Observation {
	o := counters.NewObservation(label, wideSet())
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < samples; i++ {
		o.Append([]float64{cw + rng.NormFloat64(), pm + rng.NormFloat64(), pp + rng.NormFloat64()})
	}
	return o
}

// TestSolverTelemetry checks that corpus evaluation feeds the engine's
// two-tier solver counters: every evaluation is accounted for as either a
// filter hit or an exact fallback, and every exact solve is accounted for
// by the int64-kernel counters (fast or promoted). Float-filter coverage
// on LPs above the (kernel-raised) size gate is pinned by the root
// package's catalogue sweep, whose analysis-set LPs are ~240×46.
func TestSolverTelemetry(t *testing.T) {
	e := New()
	defer e.Close()
	s, err := e.NewSession(wideModel(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	corpus := []*counters.Observation{
		wideObs("ok1", 500, 100, 60, 100, 20),
		wideObs("ok2", 300, 250, 200, 100, 21),
		wideObs("bad1", 100, 400, 50, 100, 22),
	}
	res, err := s.Evaluate(context.Background(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	c := e.SolverStats()
	if c.Evaluations != uint64(res.Total) {
		t.Fatalf("evaluations %d, want %d", c.Evaluations, res.Total)
	}
	if c.FilterHits()+c.ExactFallbacks != c.Evaluations {
		t.Fatalf("counters don't partition: %+v", c)
	}
	if c.KernelFastSolves+c.KernelPromotedSolves != c.ExactFallbacks {
		t.Fatalf("kernel counters don't cover the exact solves: %+v", c)
	}
	if c.KernelPromotedSolves == 0 && c.KernelPromotions != 0 {
		t.Fatalf("promotions without promoted solves: %+v", c)
	}
}

// TestTinyLPsSkipFilter pins the size gate: the 2-counter pde model's LP
// is below filterMinSize, so every verdict is an exact fallback (the
// filter would only add overhead there) while verdicts stay correct.
func TestTinyLPsSkipFilter(t *testing.T) {
	e := New()
	defer e.Close()
	s, err := e.NewSession(pdeModel(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate(context.Background(), mixedCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible != 2 {
		t.Fatalf("infeasible %d, want 2", res.Infeasible)
	}
	c := e.SolverStats()
	if c.FilterHits() != 0 || c.CertFailures != 0 {
		t.Fatalf("tiny LPs engaged the filter: %+v", c)
	}
	if c.ExactFallbacks != c.Evaluations {
		t.Fatalf("tiny LPs not all exact: %+v", c)
	}
}

// TestForceExactDisablesFilter checks the Config escape hatch: verdicts are
// unchanged but every evaluation goes through the exact tier.
func TestForceExactDisablesFilter(t *testing.T) {
	e := New()
	defer e.Close()
	m := pdeModel(t)
	corpus := mixedCorpus()

	hybrid, err := e.NewSession(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hres, err := hybrid.Evaluate(context.Background(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	before := e.SolverStats()

	exact, err := e.NewSession(m, Config{ForceExact: true})
	if err != nil {
		t.Fatal(err)
	}
	eres, err := exact.Evaluate(context.Background(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	after := e.SolverStats()

	if hres.Infeasible != eres.Infeasible || hres.Total != eres.Total {
		t.Fatalf("hybrid (%d/%d infeasible) and exact (%d/%d) verdicts diverge",
			hres.Infeasible, hres.Total, eres.Infeasible, eres.Total)
	}
	for i := range hres.Verdicts {
		if hres.Verdicts[i].Feasible != eres.Verdicts[i].Feasible {
			t.Fatalf("verdict %d diverges: hybrid %v, exact %v",
				i, hres.Verdicts[i].Feasible, eres.Verdicts[i].Feasible)
		}
	}
	if got := after.FilterHits() - before.FilterHits(); got != 0 {
		t.Fatalf("ForceExact session recorded %d filter hits", got)
	}
	if got := after.ExactFallbacks - before.ExactFallbacks; got != uint64(eres.Total) {
		t.Fatalf("ForceExact session recorded %d exact fallbacks, want %d", got, eres.Total)
	}
	// ForceExact must key its own shared session: the two configurations
	// may not collapse onto one cache entry.
	s1, err := e.SessionFor(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e.SessionFor(m, Config{ForceExact: true})
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("SessionFor merged hybrid and ForceExact configurations")
	}
}
