package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/counters"
)

// driftCorpus builds a walk-style corpus: every observation holds the
// same noise samples shifted by a per-observation constant, so the
// sample covariance — and therefore the region axes — are bit-identical
// across the corpus while the region bounds drift. Consecutive
// feasibility LPs then share their coefficient rows and differ only in
// right-hand sides: exactly the workload the warm-start dual simplex
// re-enters a cached basis for.
func driftCorpus(set *counters.Set, n, samples int, base []float64, step []float64, seed int64) []*counters.Observation {
	rng := rand.New(rand.NewSource(seed))
	noise := make([][]float64, samples)
	for i := range noise {
		noise[i] = make([]float64, set.Len())
		for j := range noise[i] {
			noise[i][j] = rng.NormFloat64()
		}
	}
	out := make([]*counters.Observation, n)
	for k := 0; k < n; k++ {
		o := counters.NewObservation(fmt.Sprintf("drift%d", k), set)
		for _, nv := range noise {
			v := make([]float64, set.Len())
			for j := range v {
				v[j] = base[j] + float64(k)*step[j] + nv[j]
			}
			o.Append(v)
		}
		out[k] = o
	}
	return out
}

// TestWarmStartEquivalence drives a drifting-bounds corpus through a
// default session and a ForceExact (cold baseline) session on separate
// engines: the warm-start path must actually fire and every verdict must
// match the cold baseline bit-for-bit.
func TestWarmStartEquivalence(t *testing.T) {
	set := pdeSet()
	corpus := driftCorpus(set, 24, 60, []float64{500, 200}, []float64{4, 2.5}, 17)

	cold := New(WithWorkers(1))
	defer cold.Close()
	cs, err := cold.NewSession(pdeModel(t), Config{ForceExact: true})
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := cs.Evaluate(context.Background(), corpus)
	if err != nil {
		t.Fatal(err)
	}

	// One worker and batch = corpus so one scratch's warm solver sees the
	// whole drift sequence in order.
	warm := New(WithWorkers(1))
	defer warm.Close()
	wsess, err := warm.NewSession(pdeModel(t), Config{BatchSize: len(corpus)})
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := wsess.Evaluate(context.Background(), corpus)
	if err != nil {
		t.Fatal(err)
	}

	if warmRes.Total != coldRes.Total {
		t.Fatalf("totals diverge: %d vs %d", warmRes.Total, coldRes.Total)
	}
	for i := range coldRes.Verdicts {
		if warmRes.Verdicts[i].Feasible != coldRes.Verdicts[i].Feasible {
			t.Fatalf("verdict %d diverges: warm %v, cold %v",
				i, warmRes.Verdicts[i].Feasible, coldRes.Verdicts[i].Feasible)
		}
	}
	c := warm.SolverStats()
	if c.WarmSolves == 0 {
		t.Fatalf("warm-start dual simplex never fired on a drifting-bounds corpus: %+v", c)
	}
	t.Logf("warm solves: %d/%d, mean dual pivots per warm start: %.2f",
		c.WarmSolves, c.Evaluations, c.MeanWarmPivots())
}
