package engine

import (
	"context"
	"errors"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/counters"
)

// This file is the engine's online-refutation path: instead of collecting
// a corpus and calling Evaluate, a caller opens an IncrementalSession and
// feeds observations one at a time as they arrive (a perf_event_open
// group emitting samples continuously, counterpointd's /v1/streams
// ingest). Each Ingest evaluates exactly one observation — building its
// confidence region through the engine's RegionBuilder and re-entering
// the warm-start dual simplex basis left by the previous observation —
// and folds the verdict into a monotone stream state. The fold is
// defined so that the state after N ingests is bit-identical to the
// state derived from a cold batch Evaluate of the same N-observation
// corpus (StateOf); the differential suite in incremental_diff_test.go
// pins this at every prefix.

// ErrSessionClosed is returned by Ingest after Close.
var ErrSessionClosed = errors.New("engine: incremental session closed")

// StreamState is the monotone verdict state of an incremental session:
// a comparable scalar summary of every observation ingested so far.
//
// The state machine is one-way: Refuted flips from false to true on the
// first infeasible observation and never back — subsequent feasible
// observations cannot un-refute a model, they only leave Infeasible and
// Confidence where they are. All fields except FirstRefuted are
// order-invariant: ingesting the same observations in any order yields
// the same Total, Infeasible, Refuted and Confidence (FirstRefuted
// records arrival order by definition).
type StreamState struct {
	// Total counts ingested observations; Infeasible counts the refuting
	// ones.
	Total      int `json:"total"`
	Infeasible int `json:"infeasible"`
	// Refuted reports whether any observation has been infeasible — the
	// one-way phase of the stream.
	Refuted bool `json:"refuted"`
	// FirstRefuted is the ingest index (0-based) of the first refuting
	// observation, or -1 while the stream is consistent. It matches the
	// index of the first infeasible verdict of a batch evaluation of the
	// same corpus in the same order.
	FirstRefuted int `json:"first_refuted"`
	// Confidence is the refutation confidence: 0 while the stream is
	// consistent, 1-(1-c)^Infeasible once refuted (see
	// RefutationConfidence).
	Confidence float64 `json:"confidence"`
}

// RefutationConfidence is the stream's aggregate confidence that the
// model is genuinely refuted: each of the m infeasible observations is
// an independent measurement whose confidence region misses the model
// cone, and a false refutation requires every one of those regions to
// have missed the true counter means — probability at most (1-c)^m. The
// result is 0 while m = 0, tightens monotonically with each refuting
// observation, and depends only on (c, m), never on arrival order, so
// the incremental fold and the batch derivation agree bit-for-bit.
func RefutationConfidence(confidence float64, infeasible int) float64 {
	if infeasible <= 0 {
		return 0
	}
	return 1 - math.Pow(1-confidence, float64(infeasible))
}

// StateOf derives the stream state a batch evaluation implies: the state
// an incremental session would report after ingesting the corpus behind
// res in order. This is the reference side of the incremental-vs-batch
// differential contract — the two paths must agree bit-for-bit on every
// field, FirstRefuted included.
func StateOf(res *CorpusResult, confidence float64) StreamState {
	st := StreamState{
		Total:        res.Total,
		Infeasible:   res.Infeasible,
		Refuted:      res.Infeasible > 0,
		FirstRefuted: -1,
		Confidence:   RefutationConfidence(confidence, res.Infeasible),
	}
	for i, v := range res.Verdicts {
		if !v.Feasible {
			st.FirstRefuted = i
			break
		}
	}
	return st
}

// IngestResult is one Ingest's outcome: the observation's verdict, its
// ingest index, and the stream state after folding it in.
type IngestResult struct {
	// Index is the observation's 0-based position in the ingest order.
	Index   int
	Verdict *core.Verdict
	State   StreamState
}

// IncrementalSession evaluates observations one at a time as they
// arrive, maintaining the monotone stream state. Create with
// Session.Incremental, feed with Ingest, and Close when the stream ends
// so the dedicated scratch returns to the engine pool.
//
// Ingests are serialised (Ingest holds the session lock for the solve):
// an incremental session models one ordered sample stream, and the
// warm-start dual simplex only pays when consecutive LPs arrive on the
// same scratch in order. Open one session per stream; sessions are
// independent.
type IncrementalSession struct {
	s *Session

	mu     sync.Mutex
	sc     *evalScratch
	st     StreamState
	viol   map[string]int
	closed bool
}

// Incremental opens an online-refutation session: a dedicated evaluation
// scratch is checked out of the engine pool for the session's lifetime,
// so every ingest re-enters the same warm-start solver state (each new
// observation's feasibility LP is the bound-drift / row-add case the
// dual simplex repairs in a handful of pivots). Call Close when done.
func (s *Session) Incremental() *IncrementalSession {
	return &IncrementalSession{
		s:    s,
		sc:   s.eng.getScratch(),
		st:   StreamState{FirstRefuted: -1},
		viol: map[string]int{},
	}
}

// Session returns the underlying session.
func (inc *IncrementalSession) Session() *Session { return inc.s }

// Ingest evaluates one observation and folds its verdict into the
// stream state, returning both. The verdict is computed exactly as a
// batch evaluation would compute it — same region construction, same
// two-tier solve, same content-addressed caches — so the state after N
// ingests matches StateOf a batch Evaluate of the same prefix
// bit-for-bit. An evaluation error (or a cancelled ctx) leaves the
// state untouched: the observation is not counted.
func (inc *IncrementalSession) Ingest(ctx context.Context, o *counters.Observation) (IngestResult, error) {
	if err := ctx.Err(); err != nil {
		return IngestResult{}, err
	}
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.closed {
		return IngestResult{}, ErrSessionClosed
	}
	v, err := inc.s.test(inc.sc, o)
	if err != nil {
		return IngestResult{}, err
	}
	idx := inc.st.Total
	inc.st.Total++
	if !v.Feasible {
		inc.st.Infeasible++
		inc.st.Refuted = true
		if inc.st.FirstRefuted < 0 {
			inc.st.FirstRefuted = idx
		}
		inc.st.Confidence = RefutationConfidence(inc.s.cfg.Confidence, inc.st.Infeasible)
		for _, k := range v.Violations {
			inc.viol[k.String()]++
		}
	}
	return IngestResult{Index: idx, Verdict: v, State: inc.st}, nil
}

// State snapshots the current stream state.
func (inc *IncrementalSession) State() StreamState {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.st
}

// Violated returns a copy of the per-constraint violation counts
// aggregated across every infeasible ingest — the incremental twin of
// CorpusResult.ViolatedConstraints (populated only when the session's
// Config.IdentifyViolations is set, exactly as in batch evaluation).
func (inc *IncrementalSession) Violated() map[string]int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	out := make(map[string]int, len(inc.viol))
	for k, n := range inc.viol {
		out[k] = n
	}
	return out
}

// Close ends the session, returning its scratch to the engine pool. The
// final state stays readable through State and Violated; further
// Ingests fail with ErrSessionClosed. Close is idempotent.
func (inc *IncrementalSession) Close() {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.closed {
		return
	}
	inc.closed = true
	inc.s.eng.putScratch(inc.sc)
	inc.sc = nil
}
