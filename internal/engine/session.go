package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/simplex"
	"repro/internal/stats"
)

// Config tunes a Session.
type Config struct {
	// Confidence is the region confidence level; 0 means
	// core.DefaultConfidence (the paper's 99%).
	Confidence float64
	// Mode selects the noise model (default Correlated, the paper's).
	Mode stats.NoiseMode
	// IdentifyViolations deduces the model constraints up front and names
	// the violated ones on every infeasible verdict.
	IdentifyViolations bool
	// BatchSize groups observations per worker task; larger batches
	// amortise scheduling for tiny models. 0 means DefaultBatchSize.
	BatchSize int
	// StopOnInfeasible cancels the remaining evaluation as soon as one
	// infeasible observation is found — the early-exit mode for "is this
	// model refuted at all?" queries (explore's pruning phase).
	StopOnInfeasible bool
	// ForceExact routes every verdict straight to the exact rational
	// simplex, bypassing the float64 revised-simplex filter, the
	// warm-start dual simplex and the content-addressed verdict cache.
	// Verdicts are identical either way (every accelerated path is
	// exactly verified or exactly equivalent); the knob exists for
	// benchmarking the accelerated paths against the cold baseline and as
	// an operational escape hatch.
	ForceExact bool
	// EphemeralObservations marks the session's observations as
	// request-scoped data that will never be evaluated again: confidence
	// regions and feasibility LPs are built fresh per verdict instead of
	// being inserted into the engine caches, whose pointer keys would
	// otherwise pin every payload (and, once the caps fill, disable
	// caching for everything else) in a long-lived service. Model-side
	// caches — χ² quantiles, restricted models, constraints, sessions —
	// still amortise.
	EphemeralObservations bool
}

// DefaultBatchSize is the observations-per-task grouping used when
// Config.BatchSize is zero.
const DefaultBatchSize = 4

func (c Config) withDefaults() Config {
	if c.Confidence == 0 {
		c.Confidence = core.DefaultConfidence
	}
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	return c
}

// Session binds one model to an evaluation configuration on an engine.
// Sessions are safe for concurrent use and cheap to create.
type Session struct {
	eng   *Engine
	model *core.Model
	cfg   Config
}

// NewSession creates a session for m. When cfg.IdentifyViolations is set
// the model constraints are deduced eagerly so worker verdicts share the
// cache instead of racing to build it.
func (e *Engine) NewSession(m *core.Model, cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	// The negated form also rejects NaN, which would otherwise slip
	// through range checks and fail deep inside LP construction.
	if !(cfg.Confidence > 0 && cfg.Confidence < 1) {
		return nil, fmt.Errorf("engine: confidence must be in (0,1), got %g", cfg.Confidence)
	}
	if cfg.IdentifyViolations {
		if _, err := m.Constraints(); err != nil {
			return nil, err
		}
	}
	return &Session{eng: e, model: m, cfg: cfg}, nil
}

// sessionCacheLimit bounds the shared-session cache; like the engine's
// other caches it degrades to building fresh sessions past the cap.
const sessionCacheLimit = 1 << 12

// SessionFor returns the engine's shared session for (m, cfg), creating it
// on first use. Concurrent callers with the same model and configuration —
// the steady state of a long-lived service handling many requests against
// one registered model — receive the same *Session, so eager constraint
// deduction happens once and verdicts share every engine cache. cfg is
// normalised first: configurations differing only in unspecified defaults
// share a session.
func (e *Engine) SessionFor(m *core.Model, cfg Config) (*Session, error) {
	k := sessionKey{model: m, cfg: cfg.withDefaults()}
	e.sessMu.Lock()
	s, ok := e.sessions.Get(k)
	e.sessMu.Unlock()
	if ok {
		return s, nil
	}
	// Built outside the lock: session construction may deduce the model's
	// constraints, which is far too slow to serialise other lookups behind.
	s, err := e.NewSession(m, k.cfg)
	if err != nil {
		return nil, err
	}
	e.sessMu.Lock()
	s = e.sessions.Add(k, s) // first writer wins
	e.sessMu.Unlock()
	return s, nil
}

// Model returns the model under test.
func (s *Session) Model() *core.Model { return s.model }

// Config returns the session configuration (defaults filled in).
func (s *Session) Config() Config { return s.cfg }

// Restrict returns a session over the same engine and configuration whose
// model is restricted to set. Restricted models are memoised engine-wide,
// so the Figure 1b/9 counter-group sweeps share μpath and cone work.
func (s *Session) Restrict(set *counters.Set) (*Session, error) {
	m, err := s.eng.modelFor(s.model, set)
	if err != nil {
		return nil, err
	}
	return s.eng.NewSession(m, s.cfg)
}

// test evaluates one observation using pooled scratch state, the
// engine-wide region and LP caches (or, for ephemeral sessions, fresh
// uncached structures that die with the verdict), and the
// content-addressed verdict cache. A verdict-cache hit skips the solve
// entirely — the region's violation report is closed-form, so the full
// Verdict is still reconstructed. Both paths consult the cache: an
// ephemeral observation pays one canonicalization pass for the chance
// that its LP content was seen before (possibly in a previous process,
// via the persistent store).
func (s *Session) test(sc *evalScratch, o *counters.Observation) (*core.Verdict, error) {
	var (
		r    *stats.Region
		p    *simplex.Problem
		hash core.LPHash
		err  error
	)
	if s.cfg.EphemeralObservations {
		r, err = s.eng.regions.RegionUncached(o, s.model.Set, s.cfg.Confidence, s.cfg.Mode)
		if err != nil {
			return nil, err
		}
		p = sc.ws.Prepare(0)
		if err := s.model.RegionLP(p, r); err != nil {
			return nil, err
		}
		hash = core.HashLP(p)
	} else {
		r, err = s.eng.regions.Region(o, s.model.Set, s.cfg.Confidence, s.cfg.Mode)
		if err != nil {
			return nil, err
		}
		p, hash, err = s.eng.lpFor(s.model, r)
		if err != nil {
			return nil, err
		}
	}
	var v *core.Verdict
	if s.cfg.ForceExact {
		// The pure cold baseline: no float filter, no warm starts, no
		// verdict cache — every evaluation is a from-scratch exact solve.
		sv := core.Solver{Exact: sc.ws, Cert: sc.cert, Stats: s.eng.solver}
		v, err = s.model.TestRegionLP(&sv, p, r, s.cfg.IdentifyViolations)
	} else if feasible, ok := s.eng.cachedVerdict(hash); ok {
		v, err = s.model.VerdictForRegion(r, feasible, s.cfg.IdentifyViolations)
	} else {
		sv := core.Solver{Exact: sc.ws, Filter: sc.fl, Cert: sc.cert, Stats: s.eng.solver, Warm: sc.warmFor(s.model)}
		v, err = s.model.TestRegionLP(&sv, p, r, s.cfg.IdentifyViolations)
		if err == nil {
			s.eng.storeVerdict(hash, v.Feasible)
		}
	}
	if err != nil {
		return nil, err
	}
	v.Observation = o.Label
	return v, nil
}

// Test evaluates a single observation inline (no pool round-trip), still
// sharing the engine's region and workspace caches.
func (s *Session) Test(ctx context.Context, o *counters.Observation) (*core.Verdict, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sc := s.eng.getScratch()
	defer s.eng.putScratch(sc)
	return s.test(sc, o)
}

// EvaluateBatch evaluates corpus on the engine's worker pool and returns
// only the aggregate feasible/infeasible counts — the lean batch-submit
// path for corpus-shaped work that needs neither a verdict stream nor a
// reassembled verdict slice (the sweep's behaviour-class fan-out).
// Observations are chunked into Config.BatchSize pool tasks; the first
// evaluation error cancels the rest and is returned, as is a cancelled
// ctx. With Config.StopOnInfeasible the remaining chunks are cancelled
// after the first infeasible verdict and the counts reflect the partial
// scan. Must not be called from inside an engine pool task — it blocks
// on pool capacity.
func (s *Session) EvaluateBatch(ctx context.Context, corpus []*counters.Observation) (feasible, infeasible int, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		stopped  bool // early exit, not a failure
	)
	fail := func(e error) {
		mu.Lock()
		// Errors that arrive after cancellation are echoes of it, not the
		// cause; keep only an error observed while the batch was live.
		if firstErr == nil && !stopped && bctx.Err() == nil {
			firstErr = e
		}
		mu.Unlock()
		cancel()
	}
	for start := 0; start < len(corpus); start += s.cfg.BatchSize {
		end := start + s.cfg.BatchSize
		if end > len(corpus) {
			end = len(corpus)
		}
		b := corpus[start:end]
		wg.Add(1)
		err := s.eng.submit(bctx, func() {
			defer wg.Done()
			sc := s.eng.getScratch()
			defer s.eng.putScratch(sc)
			for _, o := range b {
				if bctx.Err() != nil {
					return
				}
				v, err := s.test(sc, o)
				if err != nil {
					fail(err)
					return
				}
				mu.Lock()
				if v.Feasible {
					feasible++
				} else {
					infeasible++
					if s.cfg.StopOnInfeasible && !stopped {
						stopped = true
						cancel()
					}
				}
				mu.Unlock()
			}
		})
		if err != nil {
			wg.Done()
			fail(err)
			break
		}
	}
	wg.Wait()
	if firstErr != nil {
		return feasible, infeasible, firstErr
	}
	if err := ctx.Err(); err != nil {
		return feasible, infeasible, err
	}
	return feasible, infeasible, nil
}

// Item is one streamed verdict. Index is the observation's position in the
// input stream (0-based), so out-of-order delivery can be reassembled.
type Item struct {
	Index   int
	Verdict *core.Verdict
	Err     error
}

// CorpusResult summarises evaluating one model over a corpus. It is the
// engine-level replacement for the seed's core.CorpusResult.
type CorpusResult struct {
	Model string
	// Infeasible counts infeasible verdicts; Total counts evaluated
	// observations. On cancellation or early exit, Total reflects the
	// partial progress actually made.
	Infeasible int
	Total      int
	// ViolatedConstraints aggregates, across all infeasible observations,
	// how many observations violated each constraint (keyed by its string).
	ViolatedConstraints map[string]int
	// Verdicts holds the evaluated verdicts in input-stream order. On a
	// complete run Verdicts[i] corresponds to the i-th observation.
	Verdicts []*core.Verdict
}

// Feasible reports whether every evaluated observation was feasible.
func (r *CorpusResult) Feasible() bool { return r.Infeasible == 0 }

// Stream is a running corpus evaluation. Read verdicts from C (closed when
// the evaluation finishes) and call Result for the aggregate. Result may be
// called without draining C; it discards any unread items.
//
// Forwarding to C is decoupled from evaluation: a consumer that stops
// reading C never blocks the engine's worker pool or the aggregate. A
// stream abandoned without cancelling its context retains one forwarder
// goroutine (and the undelivered items) until the context ends; cancel the
// context or call Result to release it promptly.
type Stream struct {
	// C delivers one Item per evaluated observation, in completion order.
	C <-chan Item

	done chan struct{}
	res  *CorpusResult
	err  error
}

// forwardQueue is the unbounded buffer between the aggregator and the
// stream consumer. push never blocks; the forwarder goroutine drains it.
type forwardQueue struct {
	mu    sync.Mutex
	items []Item
	done  bool
	ready chan struct{}
}

func newForwardQueue() *forwardQueue {
	return &forwardQueue{ready: make(chan struct{}, 1)}
}

func (q *forwardQueue) signal() {
	select {
	case q.ready <- struct{}{}:
	default:
	}
}

func (q *forwardQueue) push(it Item) {
	q.mu.Lock()
	q.items = append(q.items, it)
	q.mu.Unlock()
	q.signal()
}

func (q *forwardQueue) finish() {
	q.mu.Lock()
	q.done = true
	q.mu.Unlock()
	q.signal()
}

func (q *forwardQueue) pop() (it Item, ok, done bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) > 0 {
		it = q.items[0]
		q.items = q.items[1:]
		return it, true, false
	}
	return Item{}, false, q.done
}

// streamDrainGrace bounds how long the forwarder keeps offering items to
// the consumer after the run's context ends, so the item that terminated
// an early-exit run still reaches an attentive reader while an abandoned
// stream is released promptly.
const streamDrainGrace = 100 * time.Millisecond

// Result blocks until the stream finishes, then returns the aggregated
// result. On cancellation it returns the partial aggregate together with
// the context's error; on an evaluation error, the partial aggregate and
// that error.
func (st *Stream) Result() (*CorpusResult, error) {
	for range st.C {
		// Items are aggregated before they are offered on C; discarding
		// unread ones loses nothing.
	}
	<-st.done
	return st.res, st.err
}

// EvaluateStream evaluates every observation arriving on in against the
// session's model using the engine's worker pool, emitting verdicts as they
// complete. The stream stops early when ctx is cancelled, when an
// evaluation fails, or — with Config.StopOnInfeasible — as soon as one
// infeasible verdict lands. Evaluation and aggregation goroutines exit
// promptly in every case (a slow or absent consumer of C only delays the
// dedicated forwarder, never the pool); partial aggregates remain
// available via Result.
func (s *Session) EvaluateStream(ctx context.Context, in <-chan *counters.Observation) *Stream {
	sctx, cancel := context.WithCancel(ctx)
	out := make(chan Item, s.eng.workers)
	results := make(chan Item, s.eng.workers)
	st := &Stream{
		C:    out,
		done: make(chan struct{}),
		res: &CorpusResult{
			Model:               s.model.Name,
			ViolatedConstraints: map[string]int{},
		},
	}

	var pending sync.WaitGroup
	dispatched := make(chan struct{})
	// submitErr records a pool failure (engine closed). Written by the
	// dispatcher before dispatched closes; read by the aggregator after
	// results closes, which the closer orders after dispatched.
	var submitErr error

	// Dispatcher: batch incoming observations and hand each batch to the
	// engine pool.
	go func() {
		defer close(dispatched)
		index := 0
		first := 0
		var batch []*counters.Observation
		flush := func() bool {
			if len(batch) == 0 {
				return true
			}
			b, start := batch, first
			batch = nil
			pending.Add(1)
			err := s.eng.submit(sctx, func() {
				defer pending.Done()
				sc := s.eng.getScratch()
				defer s.eng.putScratch(sc)
				for i, o := range b {
					if sctx.Err() != nil {
						return
					}
					v, err := s.test(sc, o)
					select {
					case results <- Item{Index: start + i, Verdict: v, Err: err}:
					case <-sctx.Done():
						return
					}
				}
			})
			if err != nil {
				pending.Done()
				if errors.Is(err, ErrClosed) {
					submitErr = err
				}
				return false
			}
			return true
		}
		for {
			select {
			case o, ok := <-in:
				if !ok {
					flush()
					return
				}
				if len(batch) == 0 {
					first = index
				}
				batch = append(batch, o)
				index++
				if len(batch) >= s.cfg.BatchSize {
					if !flush() {
						return
					}
				}
			case <-sctx.Done():
				return
			}
		}
	}()

	// Closer: results has no more senders once the dispatcher stopped and
	// every submitted batch drained.
	go func() {
		<-dispatched
		pending.Wait()
		close(results)
	}()

	// Aggregator: fold items into the corpus result and queue them for the
	// forwarder. Items — including error items and the verdict that
	// triggers an early exit — are queued before any self-cancellation, so
	// the stream's consumer sees the item that ended the run. The queue
	// never blocks, so a slow consumer cannot back up the worker pool.
	fq := newForwardQueue()
	go func() {
		defer close(st.done)
		defer fq.finish()
		var evalErr error
		var indices []int
		for item := range results {
			if item.Err != nil {
				if evalErr == nil {
					evalErr = item.Err
				}
			} else {
				st.res.Total++
				if !item.Verdict.Feasible {
					st.res.Infeasible++
					for _, k := range item.Verdict.Violations {
						st.res.ViolatedConstraints[k.String()]++
					}
				}
				st.res.Verdicts = append(st.res.Verdicts, item.Verdict)
				indices = append(indices, item.Index)
			}
			fq.push(item)
			if item.Err != nil {
				cancel() // fail fast; keep draining so workers unblock
			} else if s.cfg.StopOnInfeasible && !item.Verdict.Feasible {
				cancel() // early exit
			}
		}
		sort.Sort(&verdictsByIndex{indices, st.res.Verdicts})
		switch {
		case evalErr != nil:
			st.err = evalErr
		case submitErr != nil:
			st.err = submitErr
		case ctx.Err() != nil:
			st.err = ctx.Err()
		}
	}()

	// Forwarder: drain the queue into C. While the run is live it waits on
	// the consumer indefinitely (the documented contract: drain, cancel, or
	// call Result); once the run is cancelled — by the parent context, an
	// error, or early exit — it keeps offering each remaining item for
	// streamDrainGrace so an attentive reader still receives the final
	// verdicts, then gives up. It owns the context cleanup: sctx is only
	// cancelled for cause elsewhere, so observing sctx.Done here always
	// means a genuine cancellation, never end-of-run cleanup.
	go func() {
		defer cancel()
		defer close(out)
		cancelled := false
		offer := func(it Item) bool {
			t := time.NewTimer(streamDrainGrace)
			defer t.Stop()
			select {
			case out <- it:
				return true
			case <-t.C:
				return false
			}
		}
		for {
			it, ok, done := fq.pop()
			if !ok {
				if done {
					return
				}
				if cancelled {
					t := time.NewTimer(streamDrainGrace)
					select {
					case <-fq.ready:
						t.Stop()
					case <-t.C:
						return
					}
				} else {
					select {
					case <-fq.ready:
					case <-sctx.Done():
						cancelled = true
					}
				}
				continue
			}
			if cancelled {
				if !offer(it) {
					return
				}
				continue
			}
			select {
			case out <- it:
			case <-sctx.Done():
				cancelled = true
				if !offer(it) {
					return
				}
			}
		}
	}()

	return st
}

// verdictsByIndex sorts the aggregate's verdicts back into input order.
type verdictsByIndex struct {
	idx []int
	v   []*core.Verdict
}

func (s *verdictsByIndex) Len() int           { return len(s.idx) }
func (s *verdictsByIndex) Less(i, j int) bool { return s.idx[i] < s.idx[j] }
func (s *verdictsByIndex) Swap(i, j int) {
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
	s.v[i], s.v[j] = s.v[j], s.v[i]
}

// Evaluate tests every observation of corpus against the session's model
// and returns the aggregate — the drop-in replacement for the seed's
// core.EvaluateCorpus.
func (s *Session) Evaluate(ctx context.Context, corpus []*counters.Observation) (*CorpusResult, error) {
	in := make(chan *counters.Observation, len(corpus))
	for _, o := range corpus {
		in <- o
	}
	close(in)
	return s.EvaluateStream(ctx, in).Result()
}

// EvaluateCorpus is a one-shot convenience: a session on the default
// engine with the given settings, evaluated over corpus.
func EvaluateCorpus(ctx context.Context, m *core.Model, corpus []*counters.Observation, confidence float64, mode stats.NoiseMode, identifyViolations bool) (*CorpusResult, error) {
	s, err := Default().NewSession(m, Config{
		Confidence:         confidence,
		Mode:               mode,
		IdentifyViolations: identifyViolations,
	})
	if err != nil {
		return nil, err
	}
	return s.Evaluate(ctx, corpus)
}
