package haswell

import (
	"fmt"
	"sync"

	"repro/internal/counters"
	"repro/internal/pagetable"
	"repro/internal/workloads"
)

// CorpusSpec sizes the simulated measurement corpus. The paper collects ~20
// million HEC samples; our default corpus is scaled to keep the full
// experiment suite in CI-sized minutes while stressing the same MMU
// corners.
type CorpusSpec struct {
	// Samples and UopsPerSample control each observation's time series.
	Samples       int
	UopsPerSample int
	// Quick restricts the corpus to a representative subset (used by tests).
	Quick bool
	// Seed offsets all workload and simulator seeds.
	Seed int64
}

// DefaultCorpusSpec is the experiment-scale corpus.
func DefaultCorpusSpec() CorpusSpec {
	return CorpusSpec{Samples: 24, UopsPerSample: 20000, Seed: 1}
}

// QuickCorpusSpec is the test-scale corpus.
func QuickCorpusSpec() CorpusSpec {
	return CorpusSpec{Samples: 12, UopsPerSample: 8000, Quick: true, Seed: 1}
}

// corpusEntry couples a workload constructor with a simulator config.
type corpusEntry struct {
	label string
	gen   func() (workloads.Generator, error)
	cfg   Config
}

// BuildCorpus simulates the workload corpus on the ground-truth hardware
// (DiscoveredFeatures) and returns one observation per workload/config,
// already extended with the walk_ref aggregate. Workloads cover the
// regimes each discovered feature is inferred from:
//
//   - burst-random → MSHR merging + early PSC lookup (pde$_miss >
//     causes_walk, ret_stlb_miss > walk_done);
//   - small/medium random at 4K → walk replay (walk_done exceeding what
//     walk_ref allows);
//   - 1G/2M pages → the PML4E-cache-vs-bypass ambiguity;
//   - looping stencil/linear with warm TLBs → LSQ prefetcher activity
//     decoupled from every miss stream;
//   - linear sweeps with mixed load-store ratios → prefetcher triggers and
//     store behaviour.
func BuildCorpus(spec CorpusSpec) ([]*counters.Observation, error) {
	entries := corpusEntries(spec)
	obs := make([]*counters.Observation, len(entries))
	errs := make([]error, len(entries))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i, e := range entries {
		wg.Add(1)
		go func(i int, e corpusEntry) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			gen, err := e.gen()
			if err != nil {
				errs[i] = fmt.Errorf("corpus %s: %w", e.label, err)
				return
			}
			sim := NewSimulator(e.cfg)
			// Warm up: one sample's worth of micro-ops reaches steady state.
			sim.Step(gen, spec.UopsPerSample)
			o := sim.Observation(gen, spec.Samples, spec.UopsPerSample)
			o.Label = e.label + "/" + o.Label
			obs[i] = WithAggregateWalkRef(o)
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return obs, nil
}

func corpusEntries(spec CorpusSpec) []corpusEntry {
	seed := spec.Seed
	cfg4k := func() Config { return DefaultConfig(pagetable.Page4K) }
	var out []corpusEntry
	add := func(label string, cfg Config, gen func() (workloads.Generator, error)) {
		cfg.Seed = seed + int64(len(out))
		out = append(out, corpusEntry{label: label, gen: gen, cfg: cfg})
	}

	// Burst-random: merging + early-PSC anomaly (pde$_miss > causes_walk).
	for _, fp := range []uint64{256 << 20, 1 << 30} {
		fp := fp
		for _, burst := range []int{8, 16} {
			burst := burst
			add(fmt.Sprintf("burst%d-%dm", burst, fp>>20), cfg4k(), func() (workloads.Generator, error) {
				return workloads.NewRandomBurst(fp, burst, 0.8, seed+101)
			})
			if spec.Quick {
				break
			}
		}
		if spec.Quick {
			break
		}
	}

	// Random, PDE-cache-friendly footprint: exposes replayed walks
	// (walk_done with missing walk_ref).
	for _, fp := range []uint64{24 << 20, 48 << 20} {
		fp := fp
		add(fmt.Sprintf("random-%dm", fp>>20), cfg4k(), func() (workloads.Generator, error) {
			return workloads.NewRandom(fp, 1.0, seed+201)
		})
		if spec.Quick {
			break
		}
	}

	// Large random: deep walks, PDE-cache misses.
	if !spec.Quick {
		add("random-1g", cfg4k(), func() (workloads.Generator, error) {
			return workloads.NewRandom(1<<30, 0.7, seed+301)
		})
	}

	// Huge pages: the PML4E-cache / bypass ambiguity. The footprint must
	// exceed STLB reach (1024 × 1 GB) for 1 GB translations to walk; the
	// simulator's bump allocator only hands out addresses, so a multi-TB
	// footprint costs no memory.
	cfg1g := DefaultConfig(pagetable.Page1G)
	add("random-1gpage", cfg1g, func() (workloads.Generator, error) {
		return workloads.NewRandom(4<<40, 1.0, seed+401)
	})
	cfg2m := DefaultConfig(pagetable.Page2M)
	add("random-2mpage", cfg2m, func() (workloads.Generator, error) {
		return workloads.NewRandom(8<<30, 0.9, seed+451)
	})

	// Looping stencil inside DTLB reach: prefetcher signal with no miss
	// stream. A small store fraction keeps store-side-trigger models
	// testable the way the paper's corpus does (Table 5: t12 is feasible).
	add("stencil-loop", cfg4k(), func() (workloads.Generator, error) {
		return workloads.NewStencil(160<<10, 0.9)
	})

	// Linear sweeps: prefetcher + merging together.
	for _, stride := range []uint64{64, 192} {
		stride := stride
		add(fmt.Sprintf("linear-s%d", stride), cfg4k(), func() (workloads.Generator, error) {
			return workloads.NewLinear(64<<20, stride, 0.9, false)
		})
		if spec.Quick {
			break
		}
	}
	if !spec.Quick {
		add("linear-desc", cfg4k(), func() (workloads.Generator, error) {
			return workloads.NewLinear(32<<20, 64, 1.0, true)
		})
		// Store-only linear: must show no prefetch activity (C.2).
		add("linear-stores", cfg4k(), func() (workloads.Generator, error) {
			return workloads.NewLinear(32<<20, 64, 0.0, false)
		})
		add("pointerchase", cfg4k(), func() (workloads.Generator, error) {
			return workloads.NewPointerChase(128<<20, seed+501)
		})
		add("zipfian", cfg4k(), func() (workloads.Generator, error) {
			return workloads.NewZipfian(256<<20, 1.2, 0.85, seed+601)
		})
		// Accessed-bit clearing: prefetch walks abort mid-stream.
		abit := cfg4k()
		abit.AccessedClearEvery = 50000
		add("linear-abitclear", abit, func() (workloads.Generator, error) {
			return workloads.NewLinear(16<<20, 64, 1.0, false)
		})
	}
	return out
}
