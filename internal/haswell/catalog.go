package haswell

// This file defines the model catalogues explored in the paper's case
// study: the initial search m0–m11 (Table 3), the TLB-prefetch trigger
// analysis t0–t17 (Table 5), and the abort-point analysis a0–a3 (Table 7).

// NamedFeatures pairs a model name with its feature set.
type NamedFeatures struct {
	Name     string
	Features ModelFeatures
}

// pfDefaults returns the prefetch trigger configuration shared by the
// Table 3 models: speculative, load-triggered, in the load-store queue.
func pfDefaults(f ModelFeatures) ModelFeatures {
	f.PfSpec = true
	f.PfLoads = true
	f.PfStores = false
	f.PfTrigger = TriggerLSQ
	return f
}

// SearchUniverse returns the candidate feature axes of the guided
// exploration search — the Table 3 space that Figures 7, 8 and 10 explore.
func SearchUniverse() []string {
	return []string{"tlb-pf", "early-psc", "merging", "pml4e", "bypass"}
}

// SearchFeatures maps a guided-search feature selection over the
// SearchUniverse names to concrete ModelFeatures; on reports whether a
// named feature is enabled. An enabled TLB prefetcher gets the Table 3
// trigger configuration (speculative, load-triggered, LSQ).
func SearchFeatures(on func(string) bool) ModelFeatures {
	f := ModelFeatures{
		TLBPrefetch: on("tlb-pf"),
		EarlyPSC:    on("early-psc"),
		Merging:     on("merging"),
		PML4ECache:  on("pml4e"),
		WalkBypass:  on("bypass"),
	}
	if f.TLBPrefetch {
		f = pfDefaults(f)
	}
	return f
}

// Table3Models returns the twelve μDDs of the initial model search
// (Table 3 / Figure 10), identified by their feature columns:
// TlbPf, EarlyPsc, Merging, Pml4eCache, WalkBypass.
func Table3Models() []NamedFeatures {
	mk := func(name string, pf, epsc, merge, pml4e, bypass bool) NamedFeatures {
		f := ModelFeatures{
			TLBPrefetch: pf,
			EarlyPSC:    epsc,
			Merging:     merge,
			PML4ECache:  pml4e,
			WalkBypass:  bypass,
		}
		if pf {
			f = pfDefaults(f)
		}
		return NamedFeatures{Name: name, Features: f}
	}
	return []NamedFeatures{
		mk("m0", false, false, false, false, false),
		mk("m1", true, false, false, false, false),
		mk("m2", true, true, true, false, false),
		mk("m3", true, true, true, true, false),
		mk("m4", true, true, true, true, true),
		mk("m5", false, true, true, true, true),
		mk("m6", true, false, true, true, true),
		mk("m7", true, true, false, true, true),
		mk("m8", true, true, true, false, true),
		mk("m9", false, true, true, false, true),
		mk("m10", true, false, true, false, true),
		mk("m11", true, true, false, false, true),
	}
}

// Table5Models returns the eighteen trigger-condition variants of m4
// (Table 5): columns Spec, Load, Store, DtlbMiss, StlbMiss. A miss-stream
// column replaces the LSQ trigger point; otherwise prefetches attach in the
// load-store queue before DTLB lookup.
func Table5Models() []NamedFeatures {
	base := ModelFeatures{
		TLBPrefetch: true,
		EarlyPSC:    true,
		Merging:     true,
		PML4ECache:  true,
		WalkBypass:  true,
	}
	mk := func(name string, spec, load, store, dtlb, stlb bool) NamedFeatures {
		f := base
		f.PfSpec = spec
		f.PfLoads = load
		f.PfStores = store
		switch {
		case stlb:
			f.PfTrigger = TriggerSTLBMiss
		case dtlb:
			f.PfTrigger = TriggerDTLBMiss
		default:
			f.PfTrigger = TriggerLSQ
		}
		return NamedFeatures{Name: name, Features: f}
	}
	return []NamedFeatures{
		mk("t0", true, true, false, false, false),
		mk("t1", true, true, false, true, false),
		mk("t2", true, true, false, false, true),
		mk("t3", true, false, true, false, false),
		mk("t4", true, false, true, true, false),
		mk("t5", true, false, true, false, true),
		mk("t6", true, true, true, false, false),
		mk("t7", true, true, true, true, false),
		mk("t8", true, true, true, false, true),
		mk("t9", false, true, false, false, false),
		mk("t10", false, true, false, true, false),
		mk("t11", false, true, false, false, true),
		mk("t12", false, false, true, false, false),
		mk("t13", false, false, true, true, false),
		mk("t14", false, false, true, false, true),
		mk("t15", false, true, true, false, false),
		mk("t16", false, true, true, true, false),
		mk("t17", false, true, true, false, true),
	}
}

// CatalogModel pairs one named model of the case-study catalogue with its
// DSL source, the form service front ends (cmd/counterpointd) register at
// boot so every Table 3/5/7 model is servable by name without a Go caller.
type CatalogModel struct {
	Name     string
	Features ModelFeatures
	Source   string
}

// Catalog returns the full named-model catalogue — the initial search
// m0–m11, the trigger analysis t0–t17, the abort analysis a0–a3, and the
// converged "discovered" model — each with its generated DSL source.
// Names are unique across the tables.
func Catalog() []CatalogModel {
	var out []CatalogModel
	add := func(nf NamedFeatures) {
		out = append(out, CatalogModel{
			Name:     nf.Name,
			Features: nf.Features,
			Source:   GenerateDSL(nf.Features),
		})
	}
	for _, nf := range Table3Models() {
		add(nf)
	}
	for _, nf := range Table5Models() {
		add(nf)
	}
	for _, nf := range Table7Models() {
		add(nf)
	}
	add(NamedFeatures{Name: "discovered", Features: DiscoveredModelFeatures()})
	return out
}

// Table7Models returns the abort-point variants of t0 with walk bypassing
// removed (Table 7): a0 allows aborts only during the walk (the baseline
// squash-abort every model has), a1–a3 cumulatively add earlier points.
func Table7Models() []NamedFeatures {
	base := pfDefaults(ModelFeatures{
		TLBPrefetch: true,
		EarlyPSC:    true,
		Merging:     true,
		PML4ECache:  true,
		WalkBypass:  false,
	})
	mk := func(name string, psc, l2, l1 bool) NamedFeatures {
		f := base
		f.AbortAfterPSC = psc
		f.AbortAfterL2TLB = l2
		f.AbortAfterL1TLB = l1
		return NamedFeatures{Name: name, Features: f}
	}
	return []NamedFeatures{
		mk("a0", false, false, false),
		mk("a1", true, false, false),
		mk("a2", true, true, false),
		mk("a3", true, true, true),
	}
}
