package haswell

import (
	"math/rand"

	"repro/internal/counters"
	"repro/internal/memsim"
	"repro/internal/pagetable"
	"repro/internal/workloads"
)

// Simulator is the simulated Haswell MMU plus its supporting substrates:
// a real four-level page table, a three-level data-cache hierarchy, split
// L1 DTLBs, a unified STLB, and the paging-structure caches.
type Simulator struct {
	cfg   Config
	table *pagetable.Table
	mem   *memsim.Hierarchy
	dtlb  *tlbCache
	stlb  *tlbCache
	pde   *pscCache // VA[47:21] → PD entry
	pdpte *pscCache // VA[47:30] → PDPT entry
	pml4e *pscCache // VA[47:39] → PML4 entry
	rng   *rand.Rand

	counts counters.Vector
	set    *counters.Set

	// Prefetcher trigger state: last load's page and cache line index.
	lastLoadPage uint64
	lastLoadLine int
	haveLastLoad bool

	// MSHR window state. Walks complete (and their TLB/PSC fills become
	// visible) at the end of the window they started in; demand misses to a
	// pending virtual page within the window merge into the owner walk.
	windowLeft   int
	pendingVPNs  map[uint64]bool
	pendingFills []fillReq

	uops uint64
}

// physBase places page-table pages far above workload identity-mapped data
// so walker refs and data never alias in the cache hierarchy.
const physBase = 1 << 40

// NewSimulator builds a simulator for cfg.
func NewSimulator(cfg Config) *Simulator {
	cfg.applyDefaults()
	s := &Simulator{
		cfg:         cfg,
		table:       pagetable.New(physBase),
		mem:         memsim.MustHierarchy(memsim.HaswellConfig()),
		dtlb:        newTLB(cfg.DTLBEntries, 4),
		stlb:        newTLB(cfg.STLBEntries, 8),
		pde:         newPSC(cfg.PDEEntries),
		pdpte:       newPSC(cfg.PDPTEEntries),
		pml4e:       newPSC(cfg.PML4EEntries),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		set:         GroundTruthSet(),
		pendingVPNs: map[uint64]bool{},
		windowLeft:  cfg.WindowUops,
	}
	s.counts = counters.NewVector(s.set)
	return s
}

// Config returns the simulator's configuration (defaults applied).
func (s *Simulator) Config() Config { return s.cfg }

// Counts returns a snapshot of the ground-truth counter totals.
func (s *Simulator) Counts() counters.Vector { return s.counts.Clone() }

// Uops returns the number of micro-ops processed.
func (s *Simulator) Uops() uint64 { return s.uops }

func (s *Simulator) vpn(va uint64) uint64 { return va / uint64(s.cfg.PageSize) }

func (s *Simulator) incr(e counters.Event) { s.counts.Add(e, 1) }

func (s *Simulator) typed(t counters.AccessType, suffix string) counters.Event {
	return counters.E(t, suffix)
}

// Step processes n accesses from gen.
func (s *Simulator) Step(gen workloads.Generator, n int) {
	for i := 0; i < n; i++ {
		s.process(gen.Next())
	}
}

// Observation runs the workload for numSamples intervals of uopsPerSample
// micro-ops each and returns the per-interval ground-truth counter deltas —
// the noise-free time series that perf would see with one physical counter
// per event.
func (s *Simulator) Observation(gen workloads.Generator, numSamples, uopsPerSample int) *counters.Observation {
	o := counters.NewObservation(gen.Name(), s.set)
	prev := s.counts.Clone()
	for k := 0; k < numSamples; k++ {
		s.Step(gen, uopsPerSample)
		cur := s.counts
		delta := make([]float64, s.set.Len())
		for i := range delta {
			delta[i] = cur.Values[i] - prev.Values[i]
		}
		o.Append(delta)
		prev = cur.Clone()
	}
	return o
}

func (s *Simulator) process(a workloads.Access) {
	s.uops++
	if s.cfg.AccessedClearEvery > 0 && s.uops%uint64(s.cfg.AccessedClearEvery) == 0 {
		s.table.ClearAccessed()
	}
	if s.windowLeft <= 0 {
		s.rollWindow()
	}
	s.windowLeft--

	t := counters.Store
	if a.IsLoad {
		t = counters.Load
	}
	retired := s.rng.Float64() >= s.cfg.SpecRate

	ps := s.cfg.PageSize
	va := a.VA &^ ps.Mask()
	s.table.EnsureMapped(va, ps)
	vpn := s.vpn(a.VA)

	// LSQ-side TLB prefetcher: fires on consecutive same-page loads to
	// cache lines 51→52 (ascending) or 8→7 (descending), before any TLB
	// lookup and regardless of speculation (paper §7.1). 4K pages only.
	if s.cfg.Features.TLBPrefetch && a.IsLoad && ps == pagetable.Page4K {
		page := a.VA >> 12
		line := int(a.VA >> 6 & 0x3f)
		if s.haveLastLoad && s.lastLoadPage == page {
			if s.lastLoadLine == 51 && line == 52 {
				s.prefetch(a.VA + uint64(ps))
			} else if s.lastLoadLine == 8 && line == 7 {
				s.prefetch(a.VA - uint64(ps))
			}
		}
		s.lastLoadPage = page
		s.lastLoadLine = line
		s.haveLastLoad = true
	}

	// Data access (identity-mapped) keeps the hierarchy realistic.
	defer s.mem.Access(a.VA)

	// L1 DTLB.
	if s.dtlb.Lookup(vpn) {
		if retired {
			s.incr(s.typed(t, counters.Ret))
		}
		return
	}
	// STLB.
	if s.stlb.Lookup(vpn) {
		s.incr(s.typed(t, counters.STLBHit))
		switch ps {
		case pagetable.Page4K:
			s.incr(s.typed(t, counters.STLBHit4K))
		case pagetable.Page2M:
			s.incr(s.typed(t, counters.STLBHit2M))
		}
		s.dtlb.Fill(vpn)
		if retired {
			s.incr(s.typed(t, counters.Ret))
		}
		return
	}

	// STLB miss. Early-PSC hardware looks the PDE cache up before the MSHR
	// merge decision, so merged requests also count PDE-cache misses. The
	// PDE cache holds only non-leaf 4K-region PD entries, so 2M and 1G
	// requests probe it and always miss (Table 1 constraint (2) relies on
	// this: every walk's pde$_miss budget covers its deepest refs).
	pdeHit := false
	pdeLooked := false
	if s.cfg.Features.EarlyPSC {
		pdeLooked = true
		pdeHit = s.pdeLookup(a.VA, ps, t)
	}

	if s.cfg.Features.WalkMerging && s.pendingVPNs[vpn] {
		// Merged into the outstanding walk: no causes_walk, no refs; the
		// micro-op obtains its translation from the owner walk.
		if retired {
			s.incr(s.typed(t, counters.Ret))
			s.incr(s.typed(t, counters.RetSTLBMiss))
		}
		return
	}
	s.pendingVPNs[vpn] = true

	s.incr(s.typed(t, counters.CausesWalk))
	if !s.cfg.Features.EarlyPSC {
		// Conventional hardware: only the walk owner consults the PDE cache,
		// at walk start.
		pdeLooked = true
		pdeHit = s.pdeLookup(a.VA, ps, t)
	}

	// Determine the walk start level from the paging-structure caches.
	startLevel := s.walkStartLevel(a.VA, ps, pdeLooked, pdeHit)

	cleared := s.rng.Float64() < s.cfg.ClearRate
	if cleared {
		// Machine clear mid-walk: a partial prefix of the walk's references
		// was already issued and counted.
		s.partialWalkRefs(a.VA, startLevel)
		if retired && s.cfg.Features.WalkReplay {
			// Replay at retirement as a non-speculative walk: completes and
			// fills, but its references are not recorded by walk_ref.
			s.replayWalk(a.VA, ps, vpn)
			s.walkDone(t, ps)
			s.incr(s.typed(t, counters.Ret))
			s.incr(s.typed(t, counters.RetSTLBMiss))
		}
		// Squashed (or replay-less hardware): the translation is abandoned.
		return
	}

	// Normal demand walk.
	steps, ok := s.table.Walk(a.VA, startLevel, true, false)
	for _, st := range steps {
		s.walkRef(st.EntryPhys)
	}
	if !ok {
		// Page fault — cannot happen here because EnsureMapped ran, but be
		// conservative: abandon without completion.
		return
	}
	s.fillAfterWalk(a.VA, ps, vpn)
	s.walkDone(t, ps)
	if retired {
		s.incr(s.typed(t, counters.Ret))
		s.incr(s.typed(t, counters.RetSTLBMiss))
	}
}

// pdeLookup probes the PDE cache for a translation request of type t,
// incrementing T.pde$_miss on a miss. Only 4K regions can hit: 2M/1G leaf
// entries are never cached, so those probes always miss.
func (s *Simulator) pdeLookup(va uint64, ps pagetable.PageSize, t counters.AccessType) bool {
	hit := ps == pagetable.Page4K && s.pde.Lookup(va>>21)
	if !hit {
		s.incr(s.typed(t, counters.PDECacheMis))
	}
	return hit
}

// walkStartLevel consults the PSC hierarchy: the longest cached prefix lets
// the walker skip levels. pdeLooked/pdeHit carry the (possibly early) PDE
// result.
func (s *Simulator) walkStartLevel(va uint64, ps pagetable.PageSize, pdeLooked, pdeHit bool) int {
	switch ps {
	case pagetable.Page4K:
		if pdeLooked && pdeHit {
			return 3 // read only the PT entry
		}
		if !pdeLooked {
			if s.pde.Lookup(va >> 21) {
				return 3
			}
		}
		if s.pdpte.Lookup(va >> 30) {
			return 2
		}
		if s.cfg.Features.PML4ECache && s.pml4e.Lookup(va>>39) {
			return 1
		}
		return 0
	case pagetable.Page2M:
		if s.pdpte.Lookup(va >> 30) {
			return 2 // read only the PD (leaf) entry
		}
		if s.cfg.Features.PML4ECache && s.pml4e.Lookup(va>>39) {
			return 1
		}
		return 0
	default: // 1G
		if s.cfg.Features.PML4ECache && s.pml4e.Lookup(va>>39) {
			return 1 // read only the PDPT (leaf) entry
		}
		return 0
	}
}

// walkRef issues one page-walker load and classifies it by serving level.
func (s *Simulator) walkRef(entryPhys uint64) {
	switch s.mem.Access(entryPhys) {
	case memsim.L1:
		s.incr(counters.WalkRefL1)
	case memsim.L2:
		s.incr(counters.WalkRefL2)
	case memsim.L3:
		s.incr(counters.WalkRefL3)
	default:
		s.incr(counters.WalkRefMem)
	}
}

// partialWalkRefs emits the reference prefix a machine-cleared walk issued
// before the clear (anywhere from zero to all of its reads).
func (s *Simulator) partialWalkRefs(va uint64, startLevel int) {
	steps, _ := s.table.Walk(va, startLevel, false, false)
	if len(steps) == 0 {
		return
	}
	k := s.rng.Intn(len(steps) + 1)
	for _, st := range steps[:k] {
		s.walkRef(st.EntryPhys)
	}
}

// replayWalk re-walks non-speculatively: accessed bits are set and caches
// filled, but no walk_ref counters increment (replay loads carry special
// non-speculative attributes that walk_ref does not capture — paper §C.4).
func (s *Simulator) replayWalk(va uint64, ps pagetable.PageSize, vpn uint64) {
	if _, ok := s.table.Walk(va, 0, true, false); !ok {
		return
	}
	s.fillAfterWalk(va, ps, vpn)
}

// fillReq is a deferred TLB/PSC fill that becomes visible when the walk's
// window ends.
type fillReq struct {
	va  uint64
	vpn uint64
	ps  pagetable.PageSize
}

// fillAfterWalk schedules the completed translation's TLB and paging-
// structure cache fills for the end of the current window, modelling walk
// latency: until the walk completes, further misses to the same page keep
// missing the STLB and merge into the owner walk.
func (s *Simulator) fillAfterWalk(va uint64, ps pagetable.PageSize, vpn uint64) {
	s.pendingFills = append(s.pendingFills, fillReq{va: va, vpn: vpn, ps: ps})
}

// rollWindow completes the window's outstanding walks: fills become
// visible and the MSHRs drain.
func (s *Simulator) rollWindow() {
	s.windowLeft = s.cfg.WindowUops
	for _, f := range s.pendingFills {
		s.stlb.Fill(f.vpn)
		s.dtlb.Fill(f.vpn)
		switch f.ps {
		case pagetable.Page4K:
			s.pde.Fill(f.va >> 21)
			s.pdpte.Fill(f.va >> 30)
		case pagetable.Page2M:
			s.pdpte.Fill(f.va >> 30)
		}
		if s.cfg.Features.PML4ECache {
			s.pml4e.Fill(f.va >> 39)
		}
	}
	s.pendingFills = s.pendingFills[:0]
	for k := range s.pendingVPNs {
		delete(s.pendingVPNs, k)
	}
}

func (s *Simulator) walkDone(t counters.AccessType, ps pagetable.PageSize) {
	s.incr(s.typed(t, counters.WalkDone))
	switch ps {
	case pagetable.Page4K:
		s.incr(s.typed(t, counters.WalkDone4K))
	case pagetable.Page2M:
		s.incr(s.typed(t, counters.WalkDone2M))
	default:
		s.incr(s.typed(t, counters.WalkDone1G))
	}
}

// prefetch performs a TLB prefetch for the page containing va: a PDE-cache
// lookup followed by a prefetch-induced page table walk that injects loads
// like a demand walk but aborts on the first entry whose accessed bit is
// unset, and never sets accessed bits itself (paper §7.1).
func (s *Simulator) prefetch(va uint64) {
	ps := s.cfg.PageSize
	s.table.EnsureMapped(va&^ps.Mask(), ps)
	pdeHit := false
	if ps == pagetable.Page4K {
		pdeHit = s.pde.Lookup(va >> 21)
		if !pdeHit {
			// The prefetcher lives on the load side.
			s.incr(s.typed(counters.Load, counters.PDECacheMis))
		}
	}
	startLevel := 0
	if pdeHit {
		startLevel = 3
	} else if s.pdpte.Lookup(va >> 30) {
		startLevel = 2
	} else if s.cfg.Features.PML4ECache && s.pml4e.Lookup(va>>39) {
		startLevel = 1
	}
	steps, ok := s.table.Walk(va, startLevel, false, true)
	for _, st := range steps {
		s.walkRef(st.EntryPhys)
	}
	if !ok {
		// Aborted (unset accessed bit or unmapped): no fill, no completion.
		return
	}
	// Successful prefetch fills the STLB and paging-structure caches; no
	// causes_walk, no walk_done (those count demand STLB misses).
	vpn := s.vpn(va)
	s.stlb.Fill(vpn)
	switch ps {
	case pagetable.Page4K:
		s.pde.Fill(va >> 21)
		s.pdpte.Fill(va >> 30)
	case pagetable.Page2M:
		s.pdpte.Fill(va >> 30)
	}
}
