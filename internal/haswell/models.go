package haswell

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/dsl"
	"repro/internal/mudd"
)

// TriggerPoint locates the TLB prefetcher's trigger in the pipeline
// (Table 6: LSQ scan before DTLB lookup, the DTLB miss stream, or the STLB
// miss stream).
type TriggerPoint int

// Prefetch trigger points.
const (
	TriggerLSQ TriggerPoint = iota
	TriggerDTLBMiss
	TriggerSTLBMiss
)

func (p TriggerPoint) String() string {
	switch p {
	case TriggerLSQ:
		return "lsq"
	case TriggerDTLBMiss:
		return "dtlb-miss"
	case TriggerSTLBMiss:
		return "stlb-miss"
	}
	return "?"
}

// RefMode selects how walker memory references appear in μDDs.
type RefMode int

// Reference modelling modes.
const (
	// RefsAggregate increments the synthetic walk_ref sum. Because each
	// reference's serving level is a free choice, the split-counter cone
	// projects exactly onto the aggregate: no constraint information is
	// lost, and μpath counts stay small enough for corpus-scale search.
	RefsAggregate RefMode = iota
	// RefsPerLevel adds a serving-level decision per reference, emitting
	// walk_ref.{l1,l2,l3,mem} — the full Table 2 Refs group, used to verify
	// Table 1's constraints and the Figure 1b scaling.
	RefsPerLevel
)

// ModelFeatures parameterises a candidate μDD along the paper's feature
// axes (Tables 3–7).
type ModelFeatures struct {
	TLBPrefetch bool
	EarlyPSC    bool
	Merging     bool
	PML4ECache  bool
	WalkBypass  bool

	// Prefetch trigger conditions (Table 5/6); meaningful with TLBPrefetch.
	PfSpec    bool // prefetches may ride purely speculative micro-ops
	PfLoads   bool
	PfStores  bool
	PfTrigger TriggerPoint

	// Translation-request abort points (Table 7). Walk-abort for squashed
	// micro-ops is part of every baseline model; these add earlier points.
	AbortAfterPSC   bool
	AbortAfterL2TLB bool
	AbortAfterL1TLB bool

	// ConservativeAborts restricts aborted walks to the conventional
	// assumption behind Table 1's constraints (2) and (3): every walk
	// issues at least one reference before aborting, and never more than
	// its paging-structure-cache-determined depth. The paper's case study
	// *discovers* that real aborts are laxer ("walks can be aborted at any
	// point — even before issuing a single memory access"), so the search
	// models m0–m11/t/a leave this off.
	ConservativeAborts bool

	RefMode RefMode
}

// DiscoveredModelFeatures returns the μDD feature set matching the
// hardware the case study converges on (model m8 with the discovered
// prefetch trigger conditions of model t0).
func DiscoveredModelFeatures() ModelFeatures {
	return ModelFeatures{
		TLBPrefetch: true,
		EarlyPSC:    true,
		Merging:     true,
		PML4ECache:  false,
		WalkBypass:  true,
		PfSpec:      true,
		PfLoads:     true,
		PfTrigger:   TriggerLSQ,
	}
}

// modelBuilder accumulates DSL source with indentation.
type modelBuilder struct {
	b      strings.Builder
	indent int
	f      ModelFeatures
	t      string // current micro-op type: "load" or "store"
}

func (m *modelBuilder) line(format string, args ...any) {
	m.b.WriteString(strings.Repeat("    ", m.indent))
	fmt.Fprintf(&m.b, format, args...)
	m.b.WriteString("\n")
}

func (m *modelBuilder) open(format string, args ...any) {
	m.line(format, args...)
	m.indent++
}

func (m *modelBuilder) close(suffix string) {
	m.indent--
	m.line("}%s", suffix)
}

// GenerateDSL renders the μDD DSL source for the feature set: one `uop`
// block per micro-op type, mirroring the simulator's ground-truth counter
// semantics (see package comment).
func GenerateDSL(f ModelFeatures) string {
	m := &modelBuilder{f: f}
	m.line("// Haswell MMU model: %s", FeatureString(f))
	for _, t := range []string{"load", "store"} {
		m.t = t
		m.open("uop %s {", strings.ToUpper(t[:1])+t[1:])
		m.uopBody()
		m.close("")
	}
	return m.b.String()
}

func (m *modelBuilder) uopBody() {
	// Establish the shared μpath properties up front.
	m.line("switch PageSize { P4K => pass; P2M => pass; P1G => pass; };")
	m.line("switch Retired { Yes => pass; No => pass; };")
	m.pfAttach(TriggerLSQ)
	m.open("switch DtlbStatus {")
	m.open("Hit => {")
	m.retInc(false)
	m.line("done;")
	m.close(";")
	m.open("Miss => {")
	m.abortGate(m.f.AbortAfterL1TLB, "AbortAtL1TLB")
	m.pfAttach(TriggerDTLBMiss)
	m.open("switch StlbStatus {")
	m.open("Hit => {")
	m.line("incr %s.stlb_hit;", m.t)
	m.line("switch PageSize { P4K => incr %s.stlb_hit_4k; P2M => incr %s.stlb_hit_2m; P1G => pass; };", m.t, m.t)
	m.retInc(false)
	m.line("done;")
	m.close(";")
	m.open("Miss => {")
	m.abortGate(m.f.AbortAfterL2TLB, "AbortAtL2TLB")
	m.pfAttach(TriggerSTLBMiss)
	if m.f.EarlyPSC {
		m.pdeLookup()
		m.abortGate(m.f.AbortAfterPSC, "AbortAtPSC")
	}
	if m.f.Merging {
		m.open("switch Merged {")
		m.open("Yes => {")
		m.retInc(true)
		m.line("done;")
		m.close(";")
		m.line("No => pass;")
		m.close(";")
	}
	m.line("incr %s.causes_walk;", m.t)
	if !m.f.EarlyPSC {
		m.pdeLookup()
	}
	m.open("switch Retired {")
	m.open("Yes => {")
	m.walkDone()
	m.line("incr %s.ret;", m.t)
	m.line("incr %s.ret_stlb_miss;", m.t)
	m.line("done;")
	m.close(";")
	m.open("No => switch WalkOutcome {")
	m.open("Done => {")
	m.walkDone()
	m.line("done;")
	m.close(";")
	m.open("Abort => {")
	if m.f.ConservativeAborts {
		m.conservativeAbortRefs()
	} else {
		m.partialRefs("Abort")
	}
	m.line("done;")
	m.close(";")
	m.close(";") // WalkOutcome
	m.close(";") // Retired
	m.close(";") // Stlb Miss
	m.close(";") // StlbStatus
	m.close(";") // Dtlb Miss
	m.close(";") // DtlbStatus
}

// retInc increments the retirement counters on retired paths; stlbMiss adds
// ret_stlb_miss (the micro-op's demand access missed the STLB).
func (m *modelBuilder) retInc(stlbMiss bool) {
	if stlbMiss {
		m.line("switch Retired { Yes => { incr %s.ret; incr %s.ret_stlb_miss; }; No => pass; };", m.t, m.t)
	} else {
		m.line("switch Retired { Yes => incr %s.ret; No => pass; };", m.t)
	}
}

// abortGate lets squashed micro-ops abandon the translation request at this
// pipeline point (Table 7).
func (m *modelBuilder) abortGate(enabled bool, prop string) {
	if !enabled {
		return
	}
	m.line("switch Retired { Yes => pass; No => switch %s { Yes => done; No => pass; }; };", prop)
}

// pdeLookup is the PDE-cache probe of a translation request. Only 4K
// regions can hit; 2M and 1G probes always miss because the PDE cache
// holds non-leaf entries only.
func (m *modelBuilder) pdeLookup() {
	m.open("switch PageSize {")
	m.line("P4K => switch Pde$Status { Hit => pass; Miss => incr %s.pde$_miss; };", m.t)
	m.line("P2M => incr %s.pde$_miss;", m.t)
	m.line("P1G => incr %s.pde$_miss;", m.t)
	m.close(";")
}

// walkDone emits the completion counters followed by the walk's memory
// references (or the bypass alternative).
func (m *modelBuilder) walkDone() {
	m.line("incr %s.walk_done;", m.t)
	m.line("switch PageSize { P4K => incr %s.walk_done_4k; P2M => incr %s.walk_done_2m; P1G => incr %s.walk_done_1g; };", m.t, m.t, m.t)
	if m.f.WalkBypass {
		m.open("switch Bypassed {")
		m.open("Yes => {")
		// A machine-cleared-then-replayed walk completes without counted
		// references, but the cleared attempt may already have issued a
		// partial prefix.
		m.partialRefs("Bypass")
		m.close(";")
		m.open("No => {")
		m.fullRefs()
		m.close(";")
		m.close(";")
	} else {
		m.fullRefs()
	}
}

// fullRefs emits the complete walk's references, with the count determined
// by page size and paging-structure cache hits.
func (m *modelBuilder) fullRefs() {
	m.open("switch PageSize {")
	m.open("P4K => switch Pde$Status {")
	m.line("Hit => %s", m.refs("D4kHit", 1))
	m.open("Miss => switch Pdpte$Status {")
	m.line("Hit => { incr %s.pdpte$_hit; %s };", m.t, m.refsInline("D4kPdpte", 2))
	m.open("Miss => {")
	m.line("incr %s.pdpte$_miss;", m.t)
	if m.f.PML4ECache {
		m.open("switch Pml4e$Status {")
		m.line("Hit => %s", m.refs("D4kPml4e", 3))
		m.line("Miss => { incr %s.pml4e$_miss; %s };", m.t, m.refsInline("D4kFull", 4))
		m.close(";")
	} else {
		m.line("%s", m.refsInline("D4kFull", 4))
	}
	m.close(";") // 4K Pdpte Miss
	m.close(";") // Pdpte switch
	m.close(";") // Pde switch
	m.open("P2M => switch Pdpte$Status {")
	m.line("Hit => { incr %s.pdpte$_hit; %s };", m.t, m.refsInline("D2mHit", 1))
	m.open("Miss => {")
	m.line("incr %s.pdpte$_miss;", m.t)
	if m.f.PML4ECache {
		m.open("switch Pml4e$Status {")
		m.line("Hit => %s", m.refs("D2mPml4e", 2))
		m.line("Miss => { incr %s.pml4e$_miss; %s };", m.t, m.refsInline("D2mFull", 3))
		m.close(";")
	} else {
		m.line("%s", m.refsInline("D2mFull", 3))
	}
	m.close(";")
	m.close(";") // P2M switch
	if m.f.PML4ECache {
		m.open("P1G => switch Pml4e$Status {")
		m.line("Hit => %s", m.refs("D1gPml4e", 1))
		m.line("Miss => { incr %s.pml4e$_miss; %s };", m.t, m.refsInline("D1gFull", 2))
		m.close(";")
	} else {
		m.line("P1G => %s", m.refs("D1gFull", 2))
	}
	m.close(";") // PageSize
}

// refs renders n walker references as a single DSL statement (with
// trailing semicolon) under the given context tag.
func (m *modelBuilder) refs(ctx string, n int) string {
	return "{ " + m.refsInline(ctx, n) + " };"
}

// refsInline renders n walker references without braces.
func (m *modelBuilder) refsInline(ctx string, n int) string {
	var parts []string
	for i := 1; i <= n; i++ {
		parts = append(parts, m.oneRef(ctx, i))
	}
	return strings.Join(parts, " ")
}

func (m *modelBuilder) oneRef(ctx string, i int) string {
	if m.f.RefMode == RefsAggregate {
		return "incr walk_ref;"
	}
	prop := fmt.Sprintf("%sRef%dLvl", ctx, i)
	return fmt.Sprintf("switch %s { L1 => incr walk_ref.l1; L2 => incr walk_ref.l2; L3 => incr walk_ref.l3; Mem => incr walk_ref.mem; };", prop)
}

// conservativeAbortRefs emits the conventional-model abort prefix: at least
// one reference, at most the walk's PSC-determined depth.
func (m *modelBuilder) conservativeAbortRefs() {
	depthSwitch := func(ctx string, max int) {
		if max == 1 {
			m.line("%s", m.refsInline(ctx, 1))
			return
		}
		m.open("switch %sDepth {", ctx)
		for k := 1; k <= max; k++ {
			m.line("D%d => %s", k, m.refs(fmt.Sprintf("%sD%d", ctx, k), k))
		}
		m.close(";")
	}
	m.open("switch PageSize {")
	m.open("P4K => switch Pde$Status {")
	m.line("Hit => %s", m.refs("A4kHit", 1))
	m.open("Miss => {")
	depthSwitch("A4k", 4)
	m.close(";")
	m.close(";") // Pde$Status
	m.open("P2M => {")
	depthSwitch("A2m", 3)
	m.close(";")
	m.open("P1G => {")
	depthSwitch("A1g", 2)
	m.close(";")
	m.close(";") // PageSize
}

// partialRefs emits 0–3 references (the prefix an aborted or cleared walk
// issued before stopping).
func (m *modelBuilder) partialRefs(ctx string) {
	m.open("switch %sRefs {", ctx)
	m.line("R0 => pass;")
	for k := 1; k <= 3; k++ {
		m.line("R%d => %s", k, m.refs(ctx+fmt.Sprint(k), k))
	}
	m.close(";")
}

// pfAttach emits the prefetch trigger block when the model's trigger point
// matches the current pipeline location.
func (m *modelBuilder) pfAttach(at TriggerPoint) {
	f := m.f
	if !f.TLBPrefetch || f.PfTrigger != at {
		return
	}
	if (m.t == "load" && !f.PfLoads) || (m.t == "store" && !f.PfStores) {
		return
	}
	if f.PfSpec {
		m.pfBlock()
		return
	}
	// Non-speculative trigger: only retired micro-ops may carry a prefetch.
	m.open("switch Retired {")
	m.open("Yes => {")
	m.pfBlock()
	m.close(";")
	m.line("No => pass;")
	m.close(";")
}

// pfBlock is one optional TLB prefetch riding the current micro-op: a PDE
// cache lookup (load-side counter — the prefetcher lives in the load
// pipeline) and 1–4 injected walker references; prefetch walks never
// complete as demand walks, so no causes_walk or walk_done.
func (m *modelBuilder) pfBlock() {
	m.open("switch PfTriggered {")
	m.line("No => pass;")
	m.open("Yes => {")
	m.open("switch PageSize {")
	m.line("P4K => switch PfPde$Status { Hit => pass; Miss => incr load.pde$_miss; };")
	m.line("P2M => incr load.pde$_miss;")
	m.line("P1G => incr load.pde$_miss;")
	m.close(";")
	m.open("switch PfDepth {")
	for d := 1; d <= 4; d++ {
		m.line("D%d => %s", d, m.refs(fmt.Sprintf("Pf%d", d), d))
	}
	m.close(";")
	m.close(";") // Yes
	m.close(";") // PfTriggered
}

// FeatureString renders the feature set compactly, e.g.
// "pf(spec,load,lsq)+epsc+merge+bypass".
func FeatureString(f ModelFeatures) string {
	var parts []string
	if f.TLBPrefetch {
		var pf []string
		if f.PfSpec {
			pf = append(pf, "spec")
		}
		if f.PfLoads {
			pf = append(pf, "load")
		}
		if f.PfStores {
			pf = append(pf, "store")
		}
		pf = append(pf, f.PfTrigger.String())
		parts = append(parts, "pf("+strings.Join(pf, ",")+")")
	}
	if f.EarlyPSC {
		parts = append(parts, "epsc")
	}
	if f.Merging {
		parts = append(parts, "merge")
	}
	if f.PML4ECache {
		parts = append(parts, "pml4e")
	}
	if f.WalkBypass {
		parts = append(parts, "bypass")
	}
	if f.AbortAfterPSC {
		parts = append(parts, "abort-psc")
	}
	if f.AbortAfterL2TLB {
		parts = append(parts, "abort-l2tlb")
	}
	if f.AbortAfterL1TLB {
		parts = append(parts, "abort-l1tlb")
	}
	if len(parts) == 0 {
		return "baseline"
	}
	return strings.Join(parts, "+")
}

// BuildDiagram compiles the feature set's DSL into a μDD.
func BuildDiagram(name string, f ModelFeatures) (*mudd.Diagram, error) {
	return dsl.Compile(name, GenerateDSL(f))
}

// BuildModel compiles the feature set into a core.Model over set (nil set
// uses the model's own counters).
func BuildModel(name string, f ModelFeatures, set *counters.Set) (*core.Model, error) {
	d, err := BuildDiagram(name, f)
	if err != nil {
		return nil, err
	}
	return core.NewModel(name, d, set)
}

// AnalysisSet returns the counter set used for corpus-scale model
// evaluation: the 22 Ret/STLB/Walk events plus the walk_ref aggregate.
func AnalysisSet() *counters.Set {
	reg := counters.NewHaswellRegistry(false)
	var evs []counters.Event
	for _, g := range []counters.Group{counters.GroupRet, counters.GroupSTLB, counters.GroupWalk} {
		evs = append(evs, reg.GroupEvents(g)...)
	}
	evs = append(evs, AggregateWalkRef)
	return counters.NewSet(evs...)
}
