package haswell

// tlbCache is a set-associative LRU TLB keyed by virtual page number.
type tlbCache struct {
	sets  int
	ways  int
	tags  [][]uint64
	valid [][]bool
	lru   [][]uint64
	clock uint64
}

func newTLB(entries, ways int) *tlbCache {
	sets := entries / ways
	if sets < 1 {
		sets = 1
		ways = entries
	}
	t := &tlbCache{sets: sets, ways: ways}
	t.tags = make([][]uint64, sets)
	t.valid = make([][]bool, sets)
	t.lru = make([][]uint64, sets)
	for i := range t.tags {
		t.tags[i] = make([]uint64, ways)
		t.valid[i] = make([]bool, ways)
		t.lru[i] = make([]uint64, ways)
	}
	return t
}

func (t *tlbCache) set(vpn uint64) int { return int(vpn % uint64(t.sets)) }

// Lookup reports whether vpn is cached, updating LRU state on hit.
func (t *tlbCache) Lookup(vpn uint64) bool {
	s := t.set(vpn)
	t.clock++
	for w := 0; w < t.ways; w++ {
		if t.valid[s][w] && t.tags[s][w] == vpn {
			t.lru[s][w] = t.clock
			return true
		}
	}
	return false
}

// Fill inserts vpn, evicting the LRU way.
func (t *tlbCache) Fill(vpn uint64) {
	s := t.set(vpn)
	t.clock++
	victim := 0
	for w := 0; w < t.ways; w++ {
		if t.valid[s][w] && t.tags[s][w] == vpn {
			t.lru[s][w] = t.clock
			return
		}
		if !t.valid[s][w] {
			victim = w
			break
		}
		if t.lru[s][w] < t.lru[s][victim] {
			victim = w
		}
	}
	t.tags[s][victim] = vpn
	t.valid[s][victim] = true
	t.lru[s][victim] = t.clock
}

// Flush invalidates every entry.
func (t *tlbCache) Flush() {
	for s := range t.valid {
		for w := range t.valid[s] {
			t.valid[s][w] = false
		}
	}
}

// pscCache is a small fully-associative LRU paging-structure cache (PDE,
// PDPTE or PML4E cache) keyed by a virtual-address prefix.
type pscCache struct {
	cap   int
	tags  []uint64
	lru   []uint64
	clock uint64
}

func newPSC(entries int) *pscCache {
	return &pscCache{cap: entries}
}

// Lookup reports whether the prefix is cached.
func (c *pscCache) Lookup(prefix uint64) bool {
	c.clock++
	for i, t := range c.tags {
		if t == prefix {
			c.lru[i] = c.clock
			return true
		}
	}
	return false
}

// Fill inserts the prefix, evicting LRU if full.
func (c *pscCache) Fill(prefix uint64) {
	c.clock++
	for i, t := range c.tags {
		if t == prefix {
			c.lru[i] = c.clock
			return
		}
	}
	if len(c.tags) < c.cap {
		c.tags = append(c.tags, prefix)
		c.lru = append(c.lru, c.clock)
		return
	}
	victim := 0
	for i := range c.lru {
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	c.tags[victim] = prefix
	c.lru[victim] = c.clock
}

// Flush empties the cache.
func (c *pscCache) Flush() {
	c.tags = c.tags[:0]
	c.lru = c.lru[:0]
}
