// Package haswell simulates the data side of the Intel Haswell memory
// management unit at micro-op granularity, emitting ground-truth values for
// the 26 hardware event counters of Table 2.
//
// The paper measures real Haswell silicon; we have none (and Go's runtime
// would corrupt any real measurement), so this simulator is the substituted
// hardware under test. Its feature set is configurable along exactly the
// axes that the paper's guided model exploration discovers (Tables 3–7):
// an LSQ-side TLB prefetcher with cache-line-pair triggers, early
// paging-structure-cache lookup, page-table-walk merging through MSHRs,
// an optional PML4E (root-level) MMU cache, machine-clear walk aborts, and
// walk replay (completions whose memory references are not counted — the
// paper's "walk bypassing").
//
// Ground-truth counter semantics (documented here because every model μDD
// in models.go must mirror them exactly):
//
//	T.ret            retired micro-op of access type T
//	T.ret_stlb_miss  retired micro-op of type T whose demand access missed the STLB
//	T.stlb_hit(+4k/2m)  demand L1-TLB miss that hit the STLB (speculative included)
//	T.causes_walk    demand STLB miss that allocated a new page walk (merged
//	                 requests and prefetches do not count)
//	T.pde$_miss      PDE-cache miss by any 4K translation request of type T:
//	                 walk owners, merged requests (early-PSC hardware), and
//	                 load-side prefetches
//	T.walk_done(+size)  completed demand walks, including replayed walks
//	walk_ref.{l1,l2,l3,mem}  page-walker loads by the level of the data-cache
//	                 hierarchy that served them; demand and prefetch walks
//	                 count, replayed (non-speculative) walks do not
package haswell

import (
	"repro/internal/counters"
	"repro/internal/pagetable"
)

// Features selects which discovered microarchitectural behaviours the
// simulated hardware implements. The paper's final Haswell feature set is
// DiscoveredFeatures.
type Features struct {
	// TLBPrefetch enables the load-store-queue-side TLB prefetcher.
	TLBPrefetch bool
	// EarlyPSC looks the PDE cache up before MSHR merge / walk start, so
	// merged requests also hit or miss the PDE cache.
	EarlyPSC bool
	// WalkMerging merges outstanding walks to the same virtual page into a
	// single walk via MMU MSHRs.
	WalkMerging bool
	// PML4ECache adds a root-level (PML4E) paging-structure cache.
	PML4ECache bool
	// WalkReplay makes machine-cleared walks of retiring micro-ops replay
	// non-speculatively: the walk completes (walk_done increments) but its
	// memory references are not recorded by walk_ref — the behaviour the
	// paper calls walk bypassing.
	WalkReplay bool
}

// DiscoveredFeatures is the feature set the paper's case study converges on
// (model m8; m4 additionally assumes a PML4E cache, which the data cannot
// distinguish — our simulated silicon omits it).
func DiscoveredFeatures() Features {
	return Features{
		TLBPrefetch: true,
		EarlyPSC:    true,
		WalkMerging: true,
		PML4ECache:  false,
		WalkReplay:  true,
	}
}

// Config parameterises one simulated machine.
type Config struct {
	Features Features
	// PageSize used for all mappings of the run (the paper repeats
	// experiments at 4K, 2M and 1G).
	PageSize pagetable.PageSize
	// SpecRate is the probability that a micro-op is squashed (wrong-path
	// speculation) instead of retiring.
	SpecRate float64
	// ClearRate is the probability that a demand walk is machine-cleared
	// mid-walk.
	ClearRate float64
	// WindowUops is the MSHR overlap window: STLB misses to the same
	// virtual page within a window merge into one walk.
	WindowUops int
	// AccessedClearEvery clears all page-table accessed bits every N
	// micro-ops (an OS reclaim-scan stand-in); 0 disables. Unset accessed
	// bits are what make prefetch-induced walks abort.
	AccessedClearEvery int
	// Seed drives all randomness (speculation, clears).
	Seed int64

	// DTLBEntries/STLBEntries size the TLBs (defaults applied when zero).
	DTLBEntries, STLBEntries int
	// PDEEntries/PDPTEEntries/PML4EEntries size the paging-structure
	// caches (defaults applied when zero).
	PDEEntries, PDPTEEntries, PML4EEntries int
}

// DefaultConfig returns a Haswell-like configuration with the discovered
// feature set at the given page size.
func DefaultConfig(ps pagetable.PageSize) Config {
	return Config{
		Features:   DiscoveredFeatures(),
		PageSize:   ps,
		SpecRate:   0.04,
		ClearRate:  0.03,
		WindowUops: 16,
		Seed:       1,
	}
}

func (c *Config) applyDefaults() {
	if c.DTLBEntries == 0 {
		c.DTLBEntries = 64
	}
	if c.STLBEntries == 0 {
		c.STLBEntries = 1024
	}
	if c.PDEEntries == 0 {
		c.PDEEntries = 32
	}
	if c.PDPTEEntries == 0 {
		c.PDPTEEntries = 4
	}
	if c.PML4EEntries == 0 {
		c.PML4EEntries = 2
	}
	if c.WindowUops <= 0 {
		c.WindowUops = 16
	}
	if c.PageSize == 0 {
		c.PageSize = pagetable.Page4K
	}
}

// AggregateWalkRef is the synthetic event name for the sum of the four
// walk_ref.* counters. The per-reference cache level is a free choice in
// every model (each walker load may be served anywhere), so the model cone
// over the four split counters carries no information beyond their sum;
// corpus-scale models therefore use this aggregate, keeping μpath counts
// tractable, while small per-level models verify Table 1's constraints.
const AggregateWalkRef counters.Event = "walk_ref"

// GroundTruthSet returns the counter set the simulator records: the 26
// documented Haswell MMU events.
func GroundTruthSet() *counters.Set {
	return counters.NewSet(counters.NewHaswellRegistry(false).Events()...)
}

// WithAggregateWalkRef returns a copy of o extended with the walk_ref
// aggregate column (the sum of walk_ref.{l1,l2,l3,mem}).
func WithAggregateWalkRef(o *counters.Observation) *counters.Observation {
	events := append(o.Set.Events(), AggregateWalkRef)
	set := counters.NewSet(events...)
	out := counters.NewObservation(o.Label, set)
	idx := make([]int, 0, 4)
	for _, e := range []counters.Event{counters.WalkRefL1, counters.WalkRefL2, counters.WalkRefL3, counters.WalkRefMem} {
		if i, ok := o.Set.Index(e); ok {
			idx = append(idx, i)
		}
	}
	// One flat backing array for the whole extended corpus instead of an
	// allocation per sample row.
	n := set.Len()
	backing := make([]float64, len(o.Samples)*n)
	out.Samples = make([][]float64, 0, len(o.Samples))
	for s, row := range o.Samples {
		ext := backing[s*n : (s+1)*n : (s+1)*n]
		copy(ext, row)
		sum := 0.0
		for _, i := range idx {
			sum += row[i]
		}
		ext[n-1] = sum
		out.Samples = append(out.Samples, ext)
	}
	return out
}
