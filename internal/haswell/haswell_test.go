package haswell

import (
	"testing"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/pagetable"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func totals(t *testing.T, sim *Simulator) counters.Vector {
	t.Helper()
	return sim.Counts()
}

func TestGroundTruthBasicInvariants(t *testing.T) {
	sim := NewSimulator(DefaultConfig(pagetable.Page4K))
	gen, err := workloads.NewRandom(64<<20, 0.8, 3)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(gen, 200000)
	c := totals(t, sim)
	get := func(e counters.Event) float64 { return c.Get(e) }

	if get("load.ret") == 0 || get("store.ret") == 0 {
		t.Fatal("retirement counters should be active")
	}
	for _, ty := range counters.AccessTypes() {
		done := get(counters.E(ty, counters.WalkDone))
		sum := get(counters.E(ty, counters.WalkDone4K)) +
			get(counters.E(ty, counters.WalkDone2M)) +
			get(counters.E(ty, counters.WalkDone1G))
		if done != sum {
			t.Fatalf("%s: walk_done %g != size sum %g", ty, done, sum)
		}
		if done > get(counters.E(ty, counters.CausesWalk)) {
			t.Fatalf("%s: walk_done exceeds causes_walk", ty)
		}
		hit := get(counters.E(ty, counters.STLBHit))
		hitSum := get(counters.E(ty, counters.STLBHit4K)) + get(counters.E(ty, counters.STLBHit2M))
		if hit != hitSum {
			t.Fatalf("%s: stlb_hit %g != variant sum %g", ty, hit, hitSum)
		}
		if get(counters.E(ty, counters.RetSTLBMiss)) > get(counters.E(ty, counters.Ret)) {
			t.Fatalf("%s: ret_stlb_miss exceeds ret", ty)
		}
	}
	refs := get(counters.WalkRefL1) + get(counters.WalkRefL2) +
		get(counters.WalkRefL3) + get(counters.WalkRefMem)
	if refs == 0 {
		t.Fatal("walker should reference memory")
	}
}

func TestBurstsProduceThePaperAnomaly(t *testing.T) {
	// Merging + early PSC: merged requests miss the PDE cache without
	// causing walks, so pde$_miss > causes_walk (paper §1).
	sim := NewSimulator(DefaultConfig(pagetable.Page4K))
	gen, err := workloads.NewRandomBurst(512<<20, 16, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(gen, 150000)
	c := totals(t, sim)
	if c.Get("load.pde$_miss") <= c.Get("load.causes_walk") {
		t.Fatalf("anomaly missing: pde$_miss=%g causes_walk=%g",
			c.Get("load.pde$_miss"), c.Get("load.causes_walk"))
	}
	// Merging also makes retired STLB misses exceed completed walks
	// (violating Table 1 constraint (1) for non-merging models).
	if c.Get("load.ret_stlb_miss") <= c.Get("load.walk_done") {
		t.Fatalf("merging signature missing: rsm=%g done=%g",
			c.Get("load.ret_stlb_miss"), c.Get("load.walk_done"))
	}
}

func TestAnomalyRequiresEarlyPSCAndMerging(t *testing.T) {
	cfg := DefaultConfig(pagetable.Page4K)
	cfg.Features.EarlyPSC = false
	sim := NewSimulator(cfg)
	gen, _ := workloads.NewRandomBurst(512<<20, 16, 1.0, 5)
	sim.Step(gen, 150000)
	c := totals(t, sim)
	if c.Get("load.pde$_miss") > c.Get("load.causes_walk") {
		t.Fatal("without early PSC the anomaly must vanish")
	}
}

func TestReplaysCreateRefDeficit(t *testing.T) {
	// PDE-cache-friendly random: most walks read 1 entry; replays read 0.
	// Total refs must fall below completed walks — the walk-bypass
	// signature that refutes models m0–m3.
	sim := NewSimulator(DefaultConfig(pagetable.Page4K))
	gen, err := workloads.NewRandom(24<<20, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(gen, 100000) // warm up PDE cache and STLB pressure
	before := totals(t, sim)
	sim.Step(gen, 300000)
	after := totals(t, sim)
	delta := func(e counters.Event) float64 { return after.Get(e) - before.Get(e) }
	refs := delta(counters.WalkRefL1) + delta(counters.WalkRefL2) +
		delta(counters.WalkRefL3) + delta(counters.WalkRefMem)
	done := delta("load.walk_done") + delta("store.walk_done")
	if refs >= done {
		t.Fatalf("replay deficit missing: refs=%g done=%g", refs, done)
	}
}

func TestPrefetcherActivityWithWarmTLBs(t *testing.T) {
	// Small looping stencil: after warm-up there is no demand miss stream,
	// yet the LSQ prefetcher keeps injecting walker loads.
	sim := NewSimulator(DefaultConfig(pagetable.Page4K))
	gen, err := workloads.NewStencil(160<<10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(gen, 50000) // warm up
	before := totals(t, sim)
	sim.Step(gen, 100000)
	after := totals(t, sim)
	delta := func(e counters.Event) float64 { return after.Get(e) - before.Get(e) }
	walks := delta("load.causes_walk") + delta("store.causes_walk")
	refs := delta(counters.WalkRefL1) + delta(counters.WalkRefL2) +
		delta(counters.WalkRefL3) + delta(counters.WalkRefMem)
	if walks > refs/10 {
		t.Fatalf("steady state should be walk-free but ref-ful: walks=%g refs=%g", walks, refs)
	}
	if refs == 0 {
		t.Fatal("prefetcher should inject walker loads")
	}
	// Without the prefetcher, steady state is silent.
	cfg := DefaultConfig(pagetable.Page4K)
	cfg.Features.TLBPrefetch = false
	quiet := NewSimulator(cfg)
	gen2, _ := workloads.NewStencil(160<<10, 1.0)
	quiet.Step(gen2, 50000)
	b2 := totals(t, quiet)
	quiet.Step(gen2, 100000)
	a2 := totals(t, quiet)
	refs2 := a2.Get(counters.WalkRefL1) + a2.Get(counters.WalkRefL2) +
		a2.Get(counters.WalkRefL3) + a2.Get(counters.WalkRefMem) -
		b2.Get(counters.WalkRefL1) - b2.Get(counters.WalkRefL2) -
		b2.Get(counters.WalkRefL3) - b2.Get(counters.WalkRefMem)
	if refs2 != 0 {
		t.Fatalf("prefetcher-less hardware should be silent, refs=%g", refs2)
	}
}

func TestStoreOnlyStreamsDoNotPrefetch(t *testing.T) {
	// Paper C.2: "no instances of our microbenchmark with a store-only
	// access pattern trigger TLB prefetching".
	sim := NewSimulator(DefaultConfig(pagetable.Page4K))
	gen, err := workloads.NewStencil(160<<10, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(gen, 50000)
	before := totals(t, sim)
	sim.Step(gen, 100000)
	after := totals(t, sim)
	refs := after.Get(counters.WalkRefL1) + after.Get(counters.WalkRefL2) +
		after.Get(counters.WalkRefL3) + after.Get(counters.WalkRefMem) -
		before.Get(counters.WalkRefL1) - before.Get(counters.WalkRefL2) -
		before.Get(counters.WalkRefL3) - before.Get(counters.WalkRefMem)
	if refs != 0 {
		t.Fatalf("store-only stream must not trigger prefetches, refs=%g", refs)
	}
}

func TestHugePageCounters(t *testing.T) {
	sim := NewSimulator(DefaultConfig(pagetable.Page1G))
	gen, err := workloads.NewRandom(4<<40, 1.0, 9)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(gen, 100000)
	c := totals(t, sim)
	if c.Get("load.walk_done_1g") == 0 {
		t.Fatal("1G walks should complete")
	}
	if c.Get("load.walk_done_4k") != 0 || c.Get("load.walk_done_2m") != 0 {
		t.Fatal("only 1G completions expected")
	}
	// 1G probes always miss the PDE cache (leaf entries are not cached), so
	// every translation request counts a miss.
	if c.Get("load.pde$_miss") < c.Get("load.causes_walk") {
		t.Fatal("1G translation requests should always miss the PDE cache")
	}
}

func TestObservationDeltas(t *testing.T) {
	sim := NewSimulator(DefaultConfig(pagetable.Page4K))
	gen, _ := workloads.NewRandom(64<<20, 1.0, 11)
	o := sim.Observation(gen, 5, 10000)
	if o.Len() != 5 {
		t.Fatalf("samples: %d", o.Len())
	}
	tot := o.Total()
	final := sim.Counts()
	for i, e := range o.Set.Events() {
		if tot[i] != final.Get(e) {
			t.Fatalf("%s: samples sum %g != final count %g", e, tot[i], final.Get(e))
		}
	}
	if sim.Uops() != 50000 {
		t.Fatalf("uops: %d", sim.Uops())
	}
}

func TestWithAggregateWalkRef(t *testing.T) {
	set := GroundTruthSet()
	o := counters.NewObservation("x", set)
	row := make([]float64, set.Len())
	for i, e := range set.Events() {
		switch e {
		case counters.WalkRefL1:
			row[i] = 1
		case counters.WalkRefL2:
			row[i] = 2
		case counters.WalkRefL3:
			row[i] = 3
		case counters.WalkRefMem:
			row[i] = 4
		}
	}
	o.Append(row)
	ext := WithAggregateWalkRef(o)
	if got := ext.Samples[0][ext.Set.Len()-1]; got != 10 {
		t.Fatalf("aggregate: %g, want 10", got)
	}
	if !ext.Set.Contains(AggregateWalkRef) {
		t.Fatal("aggregate event missing")
	}
}

func TestCatalogSizes(t *testing.T) {
	if got := len(Table3Models()); got != 12 {
		t.Fatalf("Table 3 models: %d", got)
	}
	if got := len(Table5Models()); got != 18 {
		t.Fatalf("Table 5 models: %d", got)
	}
	if got := len(Table7Models()); got != 4 {
		t.Fatalf("Table 7 models: %d", got)
	}
	seen := map[string]bool{}
	for _, nf := range append(append(Table3Models(), Table5Models()...), Table7Models()...) {
		if seen[nf.Name] {
			t.Fatalf("duplicate model name %s", nf.Name)
		}
		seen[nf.Name] = true
	}
}

func TestAllCatalogModelsCompile(t *testing.T) {
	set := AnalysisSet()
	for _, nf := range append(append(Table3Models(), Table5Models()...), Table7Models()...) {
		m, err := BuildModel(nf.Name, nf.Features, set)
		if err != nil {
			t.Fatalf("%s: %v", nf.Name, err)
		}
		if m.NumPaths() < 10 {
			t.Fatalf("%s: suspiciously few μpaths (%d)", nf.Name, m.NumPaths())
		}
	}
}

func TestPerLevelRefModeCompiles(t *testing.T) {
	f := DiscoveredModelFeatures()
	f.TLBPrefetch = false // keep path count small for per-level refs
	f.RefMode = RefsPerLevel
	d, err := BuildDiagram("perlevel", f)
	if err != nil {
		t.Fatal(err)
	}
	set := d.Counters()
	for _, e := range []counters.Event{counters.WalkRefL1, counters.WalkRefMem} {
		if !set.Contains(e) {
			t.Fatalf("per-level mode should emit %s", e)
		}
	}
}

func TestGroundTruthFeasibleUnderM8(t *testing.T) {
	set := AnalysisSet()
	var m8 NamedFeatures
	for _, nf := range Table3Models() {
		if nf.Name == "m8" {
			m8 = nf
		}
	}
	m, err := BuildModel(m8.Name, m8.Features, set)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(DefaultConfig(pagetable.Page4K))
	gen, _ := workloads.NewRandomBurst(512<<20, 16, 0.8, 13)
	sim.Step(gen, 10000)
	obs := WithAggregateWalkRef(sim.Observation(gen, 10, 10000))
	v, err := m.TestObservation(obs, core.DefaultConfidence, stats.Correlated, false)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Feasible {
		t.Fatal("the discovered model must accept ground-truth data")
	}
	// And the featureless baseline must reject it.
	m0, err := BuildModel("m0", Table3Models()[0].Features, set)
	if err != nil {
		t.Fatal(err)
	}
	v0, err := m0.TestObservation(obs, core.DefaultConfidence, stats.Correlated, false)
	if err != nil {
		t.Fatal(err)
	}
	if v0.Feasible {
		t.Fatal("the baseline model must be refuted by ground-truth data")
	}
}

func TestQuickCorpus(t *testing.T) {
	corpus, err := BuildCorpus(QuickCorpusSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) < 5 {
		t.Fatalf("quick corpus too small: %d", len(corpus))
	}
	for _, o := range corpus {
		if o.Len() == 0 {
			t.Fatalf("observation %s empty", o.Label)
		}
		if !o.Set.Contains(AggregateWalkRef) {
			t.Fatalf("observation %s missing aggregate", o.Label)
		}
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	run := func() counters.Vector {
		sim := NewSimulator(DefaultConfig(pagetable.Page4K))
		gen, err := workloads.NewRandomBurst(128<<20, 8, 0.9, 21)
		if err != nil {
			t.Fatal(err)
		}
		sim.Step(gen, 50000)
		return sim.Counts()
	}
	a, b := run(), run()
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("simulator not deterministic at %s: %g vs %g",
				a.Set.At(i), a.Values[i], b.Values[i])
		}
	}
}

func TestGenerateDSLDeterministic(t *testing.T) {
	f := DiscoveredModelFeatures()
	if GenerateDSL(f) != GenerateDSL(f) {
		t.Fatal("model generation must be deterministic")
	}
}

func TestFeatureStringDistinct(t *testing.T) {
	// Within each table, every model differs in at least one feature, so
	// the rendered strings must be distinct. (Across tables t0 ≡ m4 by
	// construction.)
	for _, tbl := range [][]NamedFeatures{Table3Models(), Table5Models(), Table7Models()} {
		seen := map[string]string{}
		for _, nf := range tbl {
			s := FeatureString(nf.Features)
			if prev, dup := seen[s]; dup {
				t.Fatalf("feature string %q shared by %s and %s", s, prev, nf.Name)
			}
			seen[s] = nf.Name
		}
	}
}
