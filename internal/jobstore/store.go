// Package jobstore is counterpointd's durable job journal: an
// append-only, CRC-framed record log (see journal.go for the format)
// that implements jobs.Journal, so every submit, event, checkpoint and
// terminal outcome of a jobs.Manager survives a crash. On reopen the
// loader repairs a torn tail (truncate at the first bad frame), and
// Recover (recover.go) adopts the journaled jobs back into a fresh
// manager — re-listing terminal jobs and auto-resuming interrupted ones
// from their last checkpoint.
//
// Durability contract:
//
//   - JobSubmitted fsyncs before acking: a job the client was told
//     exists is on disk. A failed write rejects the submission.
//   - Events are appended without fsync (they ride the next commit
//     barrier); checkpoints are coalesced per job (CheckpointEvery) and
//     fsynced when flushed; the terminal record flushes the pending
//     checkpoint and fsyncs, so every exit path — success, failure,
//     cancellation, panic — lands its final frontier durably.
//   - Transient write errors are retried with backoff; persistent ones
//     flip the store into a degraded state: records are dropped (and
//     counted), Health reports the error and the next probe time, and
//     the daemon keeps serving from memory while refusing new durable
//     submits (the server maps that to 503 + Retry-After). A later
//     successful probe reopens the file and clears the state.
//   - The log compacts (rewrite live records, fsync, atomic rename)
//     when it exceeds CompactFactor times its live content.
package jobstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/faultfs"
	"repro/internal/jobs"
)

// ErrClosed reports an append on a closed store.
var ErrClosed = errors.New("jobstore: store closed")

// Default Options values.
const (
	DefaultCheckpointEvery    = 200 * time.Millisecond
	DefaultRetryAttempts      = 3
	DefaultRetryBackoff       = 10 * time.Millisecond
	DefaultDegradedBackoff    = time.Second
	DefaultDegradedBackoffMax = time.Minute
	DefaultCompactMinBytes    = 1 << 20
	DefaultCompactFactor      = 4.0
)

// Options configures a Store.
type Options struct {
	// FS is the filesystem the journal lives on. nil means the real one
	// (faultfs.OS); tests inject faultfs.Mem to simulate crashes.
	FS faultfs.FS
	// CheckpointEvery coalesces per-job checkpoint journaling: within the
	// window only the latest checkpoint is kept, flushed when the window
	// elapses or the job finishes. Sweeps checkpoint per cell — this is
	// what keeps that O(cells) fsyncs instead of O(cells²) bytes.
	// 0 means DefaultCheckpointEvery; negative flushes every checkpoint.
	CheckpointEvery time.Duration
	// RetryAttempts and RetryBackoff govern transient-error retries per
	// append (backoff doubles per attempt). 0 means the defaults.
	RetryAttempts int
	RetryBackoff  time.Duration
	// DegradedBackoff is the initial probe delay after the store degrades,
	// doubling per consecutive degradation up to DegradedBackoffMax.
	DegradedBackoff    time.Duration
	DegradedBackoffMax time.Duration
	// CompactMinBytes and CompactFactor bound compaction: the log is
	// rewritten when it is larger than CompactMinBytes AND more than
	// CompactFactor times its live content.
	CompactMinBytes int64
	CompactFactor   float64

	// now and sleep are test hooks for the retry/degradation clocks.
	now   func() time.Time
	sleep func(time.Duration)
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = faultfs.OS{}
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = DefaultCheckpointEvery
	}
	if o.RetryAttempts <= 0 {
		o.RetryAttempts = DefaultRetryAttempts
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = DefaultRetryBackoff
	}
	if o.DegradedBackoff <= 0 {
		o.DegradedBackoff = DefaultDegradedBackoff
	}
	if o.DegradedBackoffMax <= 0 {
		o.DegradedBackoffMax = DefaultDegradedBackoffMax
	}
	if o.CompactMinBytes <= 0 {
		o.CompactMinBytes = DefaultCompactMinBytes
	}
	if o.CompactFactor <= 1 {
		o.CompactFactor = DefaultCompactFactor
	}
	if o.now == nil {
		o.now = time.Now
	}
	if o.sleep == nil {
		o.sleep = time.Sleep
	}
	return o
}

// jobEntry is one job's live records: the in-memory image of the journal
// used for compaction (raw payloads) and recovery (parsed headers).
type jobEntry struct {
	id     string
	spec   specRecord // parsed; spec.Spec stays raw JSON
	specP  []byte     // raw payloads, re-framed verbatim on compaction
	events [][]byte
	ckptP  []byte
	term   terminalRecord
	termP  []byte

	terminal bool
	// pendingCp coalesces checkpoint bursts: only the latest value in a
	// CheckpointEvery window is serialized and journaled.
	pendingCp any
	lastCkpt  time.Time
}

// Store is the durable job journal. It implements jobs.Journal; all
// methods are safe for concurrent use.
type Store struct {
	opts Options
	path string

	mu     sync.Mutex
	f      faultfs.File
	off    int64 // known-good end of the file (frame-aligned)
	live   int64 // bytes of live records (compaction denominator)
	index  map[string]*jobEntry
	order  []string
	closed bool

	// Degradation state.
	degraded       bool
	lastErr        error
	nextRetry      time.Time
	degradeBackoff time.Duration

	// Telemetry.
	appends      uint64
	fsyncs       uint64
	retries      uint64
	dropped      uint64
	encodeErrors uint64
	compactions  uint64
	degradations uint64
	repaired     bool
}

// Open opens (creating if needed) the journal at path, repairs any torn
// tail, loads the live record index, and compacts if the log has grown
// past its live content. The returned store is ready to be wired into a
// jobs.Manager via jobs.Options.Journal.
func Open(path string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	f, err := opts.FS.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobstore: open %s: %w", path, err)
	}
	s := &Store{
		opts:  opts,
		path:  path,
		f:     f,
		index: map[string]*jobEntry{},
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("jobstore: seek %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobstore: seek %s: %w", path, err)
	}
	r := bufio.NewReader(f)
	for {
		typ, payload, err := readFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail: everything before this frame is intact (CRCs
			// verified); everything from here on is the crash's damage.
			// Truncate and carry on — losing an unsynced suffix is the
			// journal's contract, not corruption.
			s.repaired = true
			break
		}
		s.applyLocked(typ, payload)
		s.off += int64(frameHeader + len(payload))
	}
	if s.repaired || s.off < size {
		if err := f.Truncate(s.off); err != nil {
			f.Close()
			return nil, fmt.Errorf("jobstore: repair %s: %w", path, err)
		}
		s.repaired = true
	}
	if _, err := f.Seek(s.off, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobstore: seek %s: %w", path, err)
	}
	s.recomputeLiveLocked()
	s.maybeCompactLocked()
	return s, nil
}

// applyLocked folds one loaded record into the index.
func (s *Store) applyLocked(typ recordType, payload []byte) {
	switch typ {
	case recSpec:
		var rec specRecord
		if json.Unmarshal(payload, &rec) != nil || rec.ID == "" {
			return
		}
		if s.index[rec.ID] != nil {
			return
		}
		s.index[rec.ID] = &jobEntry{id: rec.ID, spec: rec, specP: payload}
		s.order = append(s.order, rec.ID)
	case recEvent:
		var rec eventRecord
		if json.Unmarshal(payload, &rec) != nil {
			return
		}
		if e := s.index[rec.ID]; e != nil {
			e.events = append(e.events, payload)
		}
	case recCheckpoint:
		var rec checkpointRecord
		if json.Unmarshal(payload, &rec) != nil {
			return
		}
		if e := s.index[rec.ID]; e != nil {
			e.ckptP = payload
		}
	case recTerminal:
		var rec terminalRecord
		if json.Unmarshal(payload, &rec) != nil {
			return
		}
		if e := s.index[rec.ID]; e != nil {
			e.term = rec
			e.termP = payload
			e.terminal = true
		}
	case recRemove:
		var rec removeRecord
		if json.Unmarshal(payload, &rec) != nil {
			return
		}
		s.removeEntryLocked(rec.ID)
	}
	// Unknown types: valid CRC, unknown meaning — skipped for forward
	// compatibility.
}

func (s *Store) removeEntryLocked(id string) {
	if s.index[id] == nil {
		return
	}
	delete(s.index, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i:i], s.order[i+1:]...)
			break
		}
	}
}

func frameLen(payload []byte) int64 { return int64(frameHeader + len(payload)) }

func (s *Store) recomputeLiveLocked() {
	s.live = 0
	for _, e := range s.index {
		s.live += frameLen(e.specP)
		for _, p := range e.events {
			s.live += frameLen(p)
		}
		if e.ckptP != nil {
			s.live += frameLen(e.ckptP)
		}
		if e.termP != nil {
			s.live += frameLen(e.termP)
		}
	}
}

// reopenLocked (re)opens the journal file positioned at the known-good
// offset, truncating anything a dying handle left beyond it.
func (s *Store) reopenLocked() error {
	f, err := s.opts.FS.OpenFile(s.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(s.off); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(s.off, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	s.f = f
	return nil
}

// resetTailLocked restores the file to the last known-good frame
// boundary after a failed append; if even that fails, the handle is
// dropped so the next attempt reopens and repairs.
func (s *Store) resetTailLocked() {
	if s.f == nil {
		return
	}
	if err := s.f.Truncate(s.off); err != nil {
		s.f.Close()
		s.f = nil
		return
	}
	if _, err := s.f.Seek(s.off, io.SeekStart); err != nil {
		s.f.Close()
		s.f = nil
	}
}

// writeFrameLocked writes one frame (optionally through an fsync
// barrier), advancing the known-good offset only on full success.
func (s *Store) writeFrameLocked(fr []byte, sync bool) error {
	if s.f == nil {
		if err := s.reopenLocked(); err != nil {
			return err
		}
	}
	if _, err := s.f.Write(fr); err != nil {
		s.resetTailLocked()
		return err
	}
	if sync {
		if err := s.f.Sync(); err != nil {
			// Written but not durable is indistinguishable from not
			// written for the caller; roll the tail back so the in-memory
			// offset keeps matching the trusted file prefix.
			s.resetTailLocked()
			return err
		}
		s.fsyncs++
	}
	s.off += int64(len(fr))
	s.appends++
	return nil
}

// appendLocked is the journal's write path: degradation gate, bounded
// retries with doubling backoff, then degradation on persistent failure.
func (s *Store) appendLocked(typ recordType, payload []byte, sync bool) error {
	if s.closed {
		return ErrClosed
	}
	if s.degraded && s.opts.now().Before(s.nextRetry) {
		s.dropped++
		return fmt.Errorf("jobstore: degraded: %w", s.lastErr)
	}
	fr := frame(typ, payload)
	backoff := s.opts.RetryBackoff
	var err error
	for try := 0; try < s.opts.RetryAttempts; try++ {
		if try > 0 {
			s.retries++
			s.opts.sleep(backoff)
			backoff *= 2
		}
		if err = s.writeFrameLocked(fr, sync); err == nil {
			if s.degraded {
				// Probe succeeded: back to healthy.
				s.degraded = false
				s.lastErr = nil
				s.degradeBackoff = 0
			}
			return nil
		}
	}
	s.degradeLocked(err)
	s.dropped++
	return err
}

func (s *Store) degradeLocked(err error) {
	s.degradations++
	s.degraded = true
	s.lastErr = err
	if s.degradeBackoff <= 0 {
		s.degradeBackoff = s.opts.DegradedBackoff
	} else {
		s.degradeBackoff *= 2
		if s.degradeBackoff > s.opts.DegradedBackoffMax {
			s.degradeBackoff = s.opts.DegradedBackoffMax
		}
	}
	s.nextRetry = s.opts.now().Add(s.degradeBackoff)
	// Drop the handle: the probe after nextRetry reopens from scratch,
	// which also heals transient fd-level damage.
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}

// encodeSpec serializes a submission spec for the journal via the
// DurableSpec hook (see jobs.Journal); specs without one journal as
// null and the job is listed but not auto-resumable.
func encodeSpec(spec any) (json.RawMessage, error) {
	type durable interface{ DurableSpec() (any, bool) }
	if spec == nil {
		return nil, nil
	}
	if d, ok := spec.(durable); ok {
		wire, ok := d.DurableSpec()
		if !ok {
			return nil, nil
		}
		return json.Marshal(wire)
	}
	return json.Marshal(spec)
}

// JobSubmitted implements jobs.Journal. It is the durability gate: the
// record is fsynced before the submission is acked, and an error rejects
// the submission.
func (s *Store) JobSubmitted(id, kind, resumedFrom string, created time.Time, spec any) error {
	specJSON, err := encodeSpec(spec)
	if err != nil {
		// An unserializable spec is not a storage failure: journal the job
		// without it (listed after recovery, not auto-resumable).
		specJSON = nil
	}
	rec := specRecord{ID: id, Kind: kind, ResumedFrom: resumedFrom, Created: created, Spec: specJSON}
	payload, merr := json.Marshal(rec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil || merr != nil {
		s.encodeErrors++
		if merr != nil {
			return fmt.Errorf("jobstore: encode spec record: %w", merr)
		}
	}
	if aerr := s.appendLocked(recSpec, payload, true); aerr != nil {
		return aerr
	}
	e := &jobEntry{id: id, spec: rec, specP: payload}
	s.index[id] = e
	s.order = append(s.order, id)
	s.live += frameLen(payload)
	return nil
}

// JobEvent implements jobs.Journal. Events are buffered appends (no
// fsync of their own — they ride the next commit barrier); failures
// degrade the store but never the job.
func (s *Store) JobEvent(id string, ev jobs.Event) {
	data, err := json.Marshal(ev.Data)
	if ev.Data == nil {
		data, err = nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.index[id]
	if e == nil || s.closed {
		return
	}
	if err != nil {
		s.encodeErrors++
		data = nil
	}
	payload, err := json.Marshal(eventRecord{ID: id, Seq: ev.Seq, Kind: ev.Kind, Data: data})
	if err != nil {
		s.encodeErrors++
		return
	}
	// The in-memory index is authoritative even when the disk write
	// fails: a later compaction rewrites from it, healing the gap.
	e.events = append(e.events, payload)
	s.live += frameLen(payload)
	s.appendLocked(recEvent, payload, false)
}

// JobCheckpoint implements jobs.Journal. Checkpoints coalesce per job:
// within a CheckpointEvery window only the newest value is kept (the
// value is serialized lazily at flush, so a sweep checkpointing per cell
// costs one retained slice reference, not one serialization, per cell).
func (s *Store) JobCheckpoint(id string, cp any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.index[id]
	if e == nil || e.terminal || s.closed {
		return
	}
	e.pendingCp = cp
	if s.opts.CheckpointEvery > 0 && s.opts.now().Sub(e.lastCkpt) < s.opts.CheckpointEvery {
		return
	}
	s.flushCheckpointLocked(e, true)
}

// flushCheckpointLocked serializes and journals e's pending checkpoint.
func (s *Store) flushCheckpointLocked(e *jobEntry, sync bool) {
	if e.pendingCp == nil {
		return
	}
	cpJSON, err := json.Marshal(e.pendingCp)
	e.pendingCp = nil
	e.lastCkpt = s.opts.now()
	if err != nil {
		s.encodeErrors++
		return
	}
	payload, err := json.Marshal(checkpointRecord{ID: e.id, Checkpoint: cpJSON})
	if err != nil {
		s.encodeErrors++
		return
	}
	if e.ckptP != nil {
		s.live -= frameLen(e.ckptP)
	}
	e.ckptP = payload
	s.live += frameLen(payload)
	s.appendLocked(recCheckpoint, payload, sync)
}

// JobFinished implements jobs.Journal: the commit barrier. The pending
// checkpoint flushes first (unsynced — the terminal fsync right after
// covers both), then the terminal record lands with fsync.
func (s *Store) JobFinished(id string, state jobs.State, errMsg string, result any, started, finished time.Time) {
	resJSON, merr := json.Marshal(result)
	if result == nil {
		resJSON, merr = nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.index[id]
	if e == nil || e.terminal || s.closed {
		return
	}
	s.flushCheckpointLocked(e, false)
	if merr != nil {
		s.encodeErrors++
		resJSON = nil
	}
	rec := terminalRecord{ID: id, State: state, Error: errMsg, Result: resJSON, Started: started, Finished: finished}
	payload, err := json.Marshal(rec)
	if err != nil {
		s.encodeErrors++
		return
	}
	e.term = rec
	e.termP = payload
	e.terminal = true
	s.live += frameLen(payload)
	s.appendLocked(recTerminal, payload, true)
	s.maybeCompactLocked()
}

// JobRemoved implements jobs.Journal: the job's records become dead
// weight in the log (reclaimed by compaction) and recovery will not
// re-list it.
func (s *Store) JobRemoved(id string) {
	payload, err := json.Marshal(removeRecord{ID: id})
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.index[id]
	if e == nil || s.closed {
		return
	}
	if err != nil {
		s.encodeErrors++
		return
	}
	s.live -= frameLen(e.specP)
	for _, p := range e.events {
		s.live -= frameLen(p)
	}
	if e.ckptP != nil {
		s.live -= frameLen(e.ckptP)
	}
	if e.termP != nil {
		s.live -= frameLen(e.termP)
	}
	s.removeEntryLocked(id)
	s.appendLocked(recRemove, payload, false)
	s.maybeCompactLocked()
}

// maybeCompactLocked compacts when the log is big and mostly dead.
func (s *Store) maybeCompactLocked() {
	if s.closed || s.degraded {
		return
	}
	if s.off <= s.opts.CompactMinBytes {
		return
	}
	if float64(s.off) <= s.opts.CompactFactor*float64(s.live) {
		return
	}
	s.compactLocked()
}

// compactLocked rewrites the live records into a temp file, fsyncs it,
// and atomically renames it over the journal. On any failure the old
// journal stays in place untouched.
func (s *Store) compactLocked() error {
	// Materialize coalesced checkpoints first so the rewrite carries the
	// newest state (they go straight into the new file, not the old one).
	for _, id := range s.order {
		if e := s.index[id]; e != nil && e.pendingCp != nil {
			cpJSON, err := json.Marshal(e.pendingCp)
			e.pendingCp = nil
			e.lastCkpt = s.opts.now()
			if err != nil {
				s.encodeErrors++
				continue
			}
			payload, err := json.Marshal(checkpointRecord{ID: e.id, Checkpoint: cpJSON})
			if err != nil {
				s.encodeErrors++
				continue
			}
			if e.ckptP != nil {
				s.live -= frameLen(e.ckptP)
			}
			e.ckptP = payload
			s.live += frameLen(payload)
		}
	}
	tmp := s.path + ".compact"
	tf, err := s.opts.FS.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		tf.Close()
		s.opts.FS.Remove(tmp)
		return err
	}
	w := bufio.NewWriterSize(tf, 1<<16)
	var off int64
	for _, id := range s.order {
		e := s.index[id]
		if e == nil {
			continue
		}
		recs := [][]byte{e.specP}
		types := []recordType{recSpec}
		for _, p := range e.events {
			recs = append(recs, p)
			types = append(types, recEvent)
		}
		if e.ckptP != nil {
			recs = append(recs, e.ckptP)
			types = append(types, recCheckpoint)
		}
		if e.termP != nil {
			recs = append(recs, e.termP)
			types = append(types, recTerminal)
		}
		for i, p := range recs {
			fr := frame(types[i], p)
			if _, err := w.Write(fr); err != nil {
				return abort(err)
			}
			off += int64(len(fr))
		}
	}
	if err := w.Flush(); err != nil {
		return abort(err)
	}
	if err := tf.Sync(); err != nil {
		return abort(err)
	}
	if err := tf.Close(); err != nil {
		s.opts.FS.Remove(tmp)
		return err
	}
	// Swap: close the old handle, rename over it, reopen at the new end.
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	if err := s.opts.FS.Rename(tmp, s.path); err != nil {
		s.opts.FS.Remove(tmp)
		s.reopenLocked() // back to the old journal
		return err
	}
	s.off = off
	s.live = off
	s.compactions++
	return s.reopenLocked()
}

// Compact forces a compaction (tests and operators; the write path
// triggers it automatically via the size heuristics).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

// Sync flushes any coalesced checkpoints and fsyncs the journal.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, id := range s.order {
		if e := s.index[id]; e != nil {
			s.flushCheckpointLocked(e, false)
		}
	}
	if s.f == nil {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.fsyncs++
	return nil
}

// Close flushes pending state, fsyncs, and closes the journal. Close is
// idempotent; appends after it fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	for _, id := range s.order {
		if e := s.index[id]; e != nil {
			s.flushCheckpointLocked(e, false)
		}
	}
	s.closed = true
	if s.f == nil {
		return nil
	}
	serr := s.f.Sync()
	cerr := s.f.Close()
	s.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}

// Degraded reports whether the store is currently refusing durable
// writes after persistent failures.
func (s *Store) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Health is the store's /healthz-facing state.
type Health struct {
	// State is "ok" or "degraded".
	State string `json:"state"`
	// LastError is the failure that degraded the store.
	LastError string `json:"last_error,omitempty"`
	// RetryInMS counts down to the next write probe (0 when healthy).
	RetryInMS int64 `json:"retry_in_ms,omitempty"`
	// Dropped counts records lost to degradation since boot.
	Dropped uint64 `json:"dropped_records,omitempty"`
}

// Health snapshots the degradation state.
func (s *Store) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{State: "ok", Dropped: s.dropped}
	if s.degraded {
		h.State = "degraded"
		if s.lastErr != nil {
			h.LastError = s.lastErr.Error()
		}
		if d := s.nextRetry.Sub(s.opts.now()); d > 0 {
			h.RetryInMS = d.Milliseconds()
		}
	}
	return h
}

// Counts is the store's /stats-facing telemetry.
type Counts struct {
	State          string `json:"state"`
	Jobs           int    `json:"jobs"`
	SizeBytes      int64  `json:"size_bytes"`
	LiveBytes      int64  `json:"live_bytes"`
	Appends        uint64 `json:"appends"`
	Fsyncs         uint64 `json:"fsyncs"`
	Retries        uint64 `json:"retries"`
	DroppedRecords uint64 `json:"dropped_records"`
	EncodeErrors   uint64 `json:"encode_errors"`
	Compactions    uint64 `json:"compactions"`
	Degradations   uint64 `json:"degradations"`
	// Repaired reports a torn tail truncated at open.
	Repaired bool `json:"repaired,omitempty"`
}

// Stats snapshots the store's telemetry.
func (s *Store) Stats() Counts {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := Counts{
		State:          "ok",
		Jobs:           len(s.index),
		SizeBytes:      s.off,
		LiveBytes:      s.live,
		Appends:        s.appends,
		Fsyncs:         s.fsyncs,
		Retries:        s.retries,
		DroppedRecords: s.dropped,
		EncodeErrors:   s.encodeErrors,
		Compactions:    s.compactions,
		Degradations:   s.degradations,
		Repaired:       s.repaired,
	}
	if s.degraded {
		c.State = "degraded"
	}
	return c
}

// Repaired reports whether Open truncated a torn tail.
func (s *Store) Repaired() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repaired
}
