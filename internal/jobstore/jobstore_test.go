package jobstore

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/faultfs"
	"repro/internal/haswell"
	"repro/internal/jobs"
	"repro/internal/sweep"
)

// sweepBase hand-builds a small deterministic base corpus (no simulator:
// these tests exercise durability, not hardware modelling). It is part
// of the journaled spec, so rebuilt jobs see the identical corpus.
func sweepBase() []*counters.Observation {
	gt := haswell.GroundTruthSet()
	var out []*counters.Observation
	for k := 0; k < 2; k++ {
		o := counters.NewObservation("synthetic", gt)
		rng := rand.New(rand.NewSource(int64(k + 1)))
		for s := 0; s < 6; s++ {
			row := make([]float64, gt.Len())
			for j := range row {
				row[j] = float64((k*83+j*29)%300 + rng.Intn(25))
			}
			o.Append(row)
		}
		out = append(out, haswell.WithAggregateWalkRef(o))
	}
	return out
}

func sweepSpec(eng *engine.Engine) jobs.SweepSpec {
	return jobs.SweepSpec{
		Grid: sweep.Grid{
			Events: []uint8{0x42, sweep.EventPageWalkerLoads},
			Umasks: []uint8{0x01, 0x0F, 0x1F},
			Cmasks: []uint8{0x00, 0x10},
		},
		Seed:    7,
		Base:    sweepBase(),
		Workers: 1,
		Engine:  eng,
	}
}

// fastOpts are store options tuned for tests: every checkpoint flushes
// (no coalescing window to wait out) and retries are instant.
func fastOpts(m *faultfs.Mem) Options {
	return Options{
		FS:              m,
		CheckpointEvery: -1,
		RetryAttempts:   2,
		RetryBackoff:    time.Microsecond,
	}
}

func mustOpen(t *testing.T, m *faultfs.Mem) *Store {
	t.Helper()
	s, err := Open("jobs.db", fastOpts(m))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// cellEvents extracts the journaled/live "cell" event payloads as JSON
// lines — the byte-identity currency of the resume contract.
func cellEvents(t *testing.T, evs []jobs.Event) []string {
	t.Helper()
	var out []string
	for _, ev := range evs {
		if ev.Kind != "cell" {
			continue
		}
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("marshal event: %v", err)
		}
		out = append(out, string(b))
	}
	return out
}

func jobEvents(t *testing.T, ctx context.Context, j *jobs.Job) []jobs.Event {
	t.Helper()
	var out []jobs.Event
	for ev := range j.Events(ctx, 0) {
		out = append(out, ev)
	}
	return out
}

// TestJournalRelistsTerminalJobsByteIdentically: run a sweep to
// completion under a journal, power-cycle, recover into a fresh manager,
// and require the re-listed job to replay the same ID, state, events and
// result, byte for byte.
func TestJournalRelistsTerminalJobsByteIdentically(t *testing.T) {
	ctx := context.Background()
	mem := faultfs.NewMem()
	st := mustOpen(t, mem)
	eng := engine.New()
	defer eng.Close()
	m := jobs.NewManager(jobs.Options{Journal: st})
	j, err := m.SubmitSweep(sweepSpec(eng))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	wantEvents := jobEvents(t, ctx, j)
	wantResult, err := json.Marshal(j.Result())
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	st.Close()
	mem.Crash(0)

	st2 := mustOpen(t, mem)
	defer st2.Close()
	eng2 := engine.New()
	defer eng2.Close()
	m2 := jobs.NewManager(jobs.Options{Journal: st2})
	defer m2.Close()
	rep, err := Recover(m2, st2, map[string]Rebuilder{"sweep": jobs.RebuildSweep(eng2)})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rep.Relisted != 1 || rep.Interrupted != 0 || rep.Resumed != 0 {
		t.Fatalf("report = %+v, want 1 relisted", rep)
	}
	rj, ok := m2.Get(j.ID)
	if !ok {
		t.Fatalf("job %s not re-listed", j.ID)
	}
	rst := rj.Status()
	if rst.State != jobs.StateDone || !rst.Restored {
		t.Fatalf("recovered status = %+v, want done+restored", rst)
	}
	gotEvents := jobEvents(t, ctx, rj)
	wj, _ := json.Marshal(wantEvents)
	gj, _ := json.Marshal(gotEvents)
	if !bytes.Equal(wj, gj) {
		t.Fatalf("recovered events diverge:\nwant %s\ngot  %s", wj, gj)
	}
	gotResult, err := json.Marshal(rj.Result())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantResult, gotResult) {
		t.Fatalf("recovered result diverges:\nwant %s\ngot  %s", wantResult, gotResult)
	}
	// Recovered terminal jobs stay resumable through the normal path.
	if _, err := m2.Resume(j.ID); err != nil {
		t.Fatalf("resume recovered job: %v", err)
	}
}

// TestRecoverAutoResumesInterruptedSweepBitIdentically is the crash
// drill: kill the power mid-grid, restart, and require the auto-resumed
// continuation to finish with cells and cell events byte-identical to an
// uninterrupted reference run.
func TestRecoverAutoResumesInterruptedSweepBitIdentically(t *testing.T) {
	ctx := context.Background()

	// Reference: the same spec, uninterrupted, no journal.
	refEng := engine.New()
	refM := jobs.NewManager(jobs.Options{})
	ref, err := refM.SubmitSweep(sweepSpec(refEng))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	refCells, err := json.Marshal(ref.Result().(*jobs.SweepResult).Cells)
	if err != nil {
		t.Fatal(err)
	}
	refCellEvents := cellEvents(t, jobEvents(t, ctx, ref))
	refM.Close()
	refEng.Close()

	// Victim: same spec under a journal; power fails after the third
	// committed cell.
	mem := faultfs.NewMem()
	st := mustOpen(t, mem)
	eng := engine.New()
	defer eng.Close()
	m := jobs.NewManager(jobs.Options{Journal: st})
	j, err := m.SubmitSweep(sweepSpec(eng))
	if err != nil {
		t.Fatal(err)
	}
	evCtx, evCancel := context.WithCancel(ctx)
	seen := 0
	for ev := range j.Events(evCtx, 0) {
		if ev.Kind == "cell" {
			seen++
			if seen == 3 {
				// Power fails, and the "process" never writes again:
				// persistent faults keep the dying manager's shutdown
				// records (cancellation terminal, final checkpoint) from
				// reaching the journal, exactly like a kill -9.
				mem.Crash(0)
				mem.FailWrites(1<<30, errors.New("process died"))
				mem.FailSyncs(1<<30, errors.New("process died"))
				break
			}
		}
	}
	evCancel()
	m.Close()
	st.Close()
	mem.Heal()

	st2 := mustOpen(t, mem)
	defer st2.Close()
	eng2 := engine.New()
	defer eng2.Close()
	m2 := jobs.NewManager(jobs.Options{Journal: st2})
	defer m2.Close()
	rep, err := Recover(m2, st2, map[string]Rebuilder{"sweep": jobs.RebuildSweep(eng2)})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rep.Interrupted != 1 || rep.Resumed != 1 {
		t.Fatalf("report = %+v, want 1 interrupted + 1 resumed", rep)
	}

	// The interrupted original is closed out and marked.
	oj, ok := m2.Get(j.ID)
	if !ok {
		t.Fatalf("interrupted job %s not re-listed", j.ID)
	}
	ost := oj.Status()
	if ost.State != jobs.StateFailed || !ost.Restored || ost.Error != interruptedError {
		t.Fatalf("interrupted status = %+v", ost)
	}

	// Find and await the continuation.
	var cont *jobs.Job
	for _, stt := range m2.List() {
		if stt.ResumedFrom == j.ID {
			c, ok := m2.Get(stt.ID)
			if !ok {
				t.Fatalf("continuation %s vanished", stt.ID)
			}
			cont = c
		}
	}
	if cont == nil {
		t.Fatalf("no continuation resumed_from %s in %+v", j.ID, m2.List())
	}
	if err := cont.Wait(ctx); err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	gotCells, err := json.Marshal(cont.Result().(*jobs.SweepResult).Cells)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refCells, gotCells) {
		t.Fatalf("resumed cells diverge from uninterrupted run:\nwant %s\ngot  %s", refCells, gotCells)
	}
	// Cell-event byte identity across the crash: the journaled prefix of
	// the interrupted job plus the continuation's fresh cells must equal
	// the uninterrupted stream, except that both halves renumber Seq —
	// so compare the cells they carry.
	var prefix, suffix []string
	for _, line := range cellEvents(t, jobEvents(t, ctx, oj)) {
		prefix = append(prefix, line)
	}
	for _, line := range cellEvents(t, jobEvents(t, ctx, cont)) {
		suffix = append(suffix, line)
	}
	if len(prefix) == 0 {
		t.Fatal("no durable cell events survived the crash")
	}
	stitched := append(append([]string(nil), prefix...), suffix...)
	if len(stitched) != len(refCellEvents) {
		t.Fatalf("stitched %d cell events, reference %d", len(stitched), len(refCellEvents))
	}
	for i := range stitched {
		if !sameCell(t, stitched[i], refCellEvents[i]) {
			t.Fatalf("cell event %d diverges:\nwant %s\ngot  %s", i, refCellEvents[i], stitched[i])
		}
	}
}

// sameCell compares two cell-event JSON lines ignoring Seq (the stitched
// halves renumber their logs; the cell payload is the contract).
func sameCell(t *testing.T, a, b string) bool {
	t.Helper()
	var ea, eb jobs.Event
	if err := json.Unmarshal([]byte(a), &ea); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b), &eb); err != nil {
		t.Fatal(err)
	}
	da, _ := json.Marshal(ea.Data)
	db, _ := json.Marshal(eb.Data)
	return ea.Kind == eb.Kind && bytes.Equal(da, db)
}

// TestTornTailRepair: a torn final frame is truncated on open; every
// fsynced record before it survives.
func TestTornTailRepair(t *testing.T) {
	mem := faultfs.NewMem()
	st := mustOpen(t, mem)
	t0 := time.Unix(1700000000, 0).UTC()
	if err := st.JobSubmitted("j000001", "test", "", t0, map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	st.JobEvent("j000001", jobs.Event{Seq: 0, Kind: "progress", Data: map[string]int{"n": 1}})
	st.JobFinished("j000001", jobs.StateDone, "", map[string]string{"ok": "yes"}, t0, t0.Add(time.Second))
	// An unsynced event, then a crash that tears it mid-frame.
	st.JobEvent("j000001", jobs.Event{Seq: 99, Kind: "late", Data: nil})
	mem.Crash(7)
	st.Close()

	st2 := mustOpen(t, mem)
	defer st2.Close()
	if !st2.Repaired() {
		t.Fatal("torn tail not reported as repaired")
	}
	snap := st2.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d jobs, want 1", len(snap))
	}
	rj := snap[0]
	if !rj.Terminal || rj.State != jobs.StateDone {
		t.Fatalf("job not terminal-done after repair: %+v", rj)
	}
	if len(rj.Events) != 1 || rj.Events[0].Kind != "progress" {
		t.Fatalf("events after repair = %+v", rj.Events)
	}
	if string(rj.Result) != `{"ok":"yes"}` {
		t.Fatalf("result after repair = %s", rj.Result)
	}
	// The repaired journal accepts appends again, durably.
	if err := st2.JobSubmitted("j000002", "test", "", t0, nil); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	mem.Crash(0)
	st3 := mustOpen(t, mem)
	defer st3.Close()
	if got := len(st3.Snapshot()); got != 2 {
		t.Fatalf("snapshot after post-repair append = %d jobs, want 2", got)
	}
}

// TestDegradationAndProbeRecovery: persistent write failures degrade the
// store (submits rejected, health reports the error and countdown);
// after the backoff a healthy probe clears it.
func TestDegradationAndProbeRecovery(t *testing.T) {
	mem := faultfs.NewMem()
	now := time.Unix(1700000000, 0)
	opts := fastOpts(mem)
	opts.DegradedBackoff = 10 * time.Second
	opts.now = func() time.Time { return now }
	opts.sleep = func(time.Duration) {}
	st, err := Open("jobs.db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	injected := errors.New("disk on fire")
	mem.FailWrites(100, injected)
	if err := st.JobSubmitted("j000001", "test", "", now, nil); !errors.Is(err, injected) {
		t.Fatalf("submit during faults: err = %v", err)
	}
	if !st.Degraded() {
		t.Fatal("store not degraded after persistent failures")
	}
	h := st.Health()
	if h.State != "degraded" || h.LastError == "" || h.RetryInMS <= 0 || h.Dropped == 0 {
		t.Fatalf("health = %+v", h)
	}
	// Before the probe time: rejected without touching the disk.
	mem.Heal()
	if err := st.JobSubmitted("j000002", "test", "", now, nil); err == nil {
		t.Fatal("submit accepted while degraded and before probe time")
	}
	// Past the probe time: the reopen probe succeeds and clears the state.
	now = now.Add(11 * time.Second)
	if err := st.JobSubmitted("j000003", "test", "", now, nil); err != nil {
		t.Fatalf("submit after probe: %v", err)
	}
	if st.Degraded() {
		t.Fatal("store still degraded after successful probe")
	}
	if h := st.Health(); h.State != "ok" || h.RetryInMS != 0 {
		t.Fatalf("health after recovery = %+v", h)
	}
	if c := st.Stats(); c.Degradations != 1 || c.DroppedRecords == 0 {
		t.Fatalf("stats after recovery = %+v", c)
	}
}

// TestCompactionDropsDeadRecords: removed jobs are dead weight that
// compaction reclaims, and the compacted journal reloads cleanly.
func TestCompactionDropsDeadRecords(t *testing.T) {
	mem := faultfs.NewMem()
	opts := fastOpts(mem)
	opts.CompactMinBytes = 1
	opts.CompactFactor = 2
	st, err := Open("jobs.db", opts)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1700000000, 0).UTC()
	big := bytes.Repeat([]byte("x"), 1000)
	for i := 0; i < 20; i++ {
		id := jobID(i)
		if err := st.JobSubmitted(id, "test", "", t0, map[string]string{"pad": string(big)}); err != nil {
			t.Fatal(err)
		}
		st.JobEvent(id, jobs.Event{Seq: 0, Kind: "progress", Data: string(big)})
		st.JobFinished(id, jobs.StateDone, "", map[string]int{"i": i}, t0, t0)
	}
	grown := st.Stats().SizeBytes
	for i := 0; i < 19; i++ {
		st.JobRemoved(jobID(i))
	}
	c := st.Stats()
	if c.Compactions == 0 {
		t.Fatalf("no compaction after removing 19/20 jobs (size %d → %d, live %d)", grown, c.SizeBytes, c.LiveBytes)
	}
	if c.SizeBytes >= grown/4 {
		t.Fatalf("compaction barely shrank the log: %d → %d", grown, c.SizeBytes)
	}
	if c.SizeBytes != c.LiveBytes {
		t.Fatalf("compacted log size %d != live %d", c.SizeBytes, c.LiveBytes)
	}
	st.Close()
	mem.Crash(0)
	st2 := mustOpen(t, mem)
	defer st2.Close()
	snap := st2.Snapshot()
	if len(snap) != 1 || snap[0].ID != jobID(19) {
		t.Fatalf("compacted journal reloads %d jobs, want just %s", len(snap), jobID(19))
	}
	if len(snap[0].Events) != 1 { // the "progress" event survived compaction
		t.Fatalf("survivor has %d events, want 1", len(snap[0].Events))
	}
}

func jobID(i int) string { return "j" + string(rune('A'+i/10)) + string(rune('0'+i%10)) + "0000" }

// TestCheckpointCoalescing: a burst of checkpoints inside the window
// journals once at the flush point — and the terminal barrier always
// lands the newest one.
func TestCheckpointCoalescing(t *testing.T) {
	mem := faultfs.NewMem()
	now := time.Unix(1700000000, 0)
	opts := fastOpts(mem)
	opts.CheckpointEvery = time.Minute
	opts.now = func() time.Time { return now }
	st, err := Open("jobs.db", opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.JobSubmitted("j000001", "test", "", now, nil); err != nil {
		t.Fatal(err)
	}
	base := st.Stats().Appends
	for i := 0; i < 100; i++ {
		st.JobCheckpoint("j000001", map[string]int{"n": i})
	}
	// First checkpoint flushed immediately (no window yet), the other 99
	// coalesced.
	if got := st.Stats().Appends - base; got != 1 {
		t.Fatalf("checkpoint burst journaled %d records, want 1", got)
	}
	st.JobFinished("j000001", jobs.StateDone, "", nil, now, now)
	st.Close()
	mem.Crash(0)
	st2 := mustOpen(t, mem)
	defer st2.Close()
	snap := st2.Snapshot()
	if len(snap) != 1 {
		t.Fatal("job lost")
	}
	if got := string(snap[0].Checkpoint); got != `{"n":99}` {
		t.Fatalf("durable checkpoint = %s, want the newest (n=99)", got)
	}
}

// TestShortWriteRepairedOnRetry: a short write mid-frame is rolled back
// to the frame boundary and the retry lands the record intact.
func TestShortWriteRepairedOnRetry(t *testing.T) {
	mem := faultfs.NewMem()
	st := mustOpen(t, mem)
	defer st.Close()
	t0 := time.Unix(1700000000, 0).UTC()
	if err := st.JobSubmitted("j000001", "test", "", t0, nil); err != nil {
		t.Fatal(err)
	}
	mem.ShortWrites(1)
	if err := st.JobSubmitted("j000002", "test", "", t0, nil); err != nil {
		t.Fatalf("submit with one short write should retry and succeed: %v", err)
	}
	if got := st.Stats().Retries; got == 0 {
		t.Fatal("short write did not count a retry")
	}
	mem.Crash(0)
	st2 := mustOpen(t, mem)
	defer st2.Close()
	if st2.Repaired() {
		t.Fatal("retry left a torn frame behind")
	}
	if got := len(st2.Snapshot()); got != 2 {
		t.Fatalf("snapshot = %d jobs, want 2", got)
	}
}

// BenchmarkJournalAppend measures the unsynced event append path — the
// per-cell/per-node hot path of a journaled job (alloc-gated in CI).
func BenchmarkJournalAppend(b *testing.B) {
	mem := faultfs.NewMem()
	st, err := Open("jobs.db", Options{FS: mem, CheckpointEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if err := st.JobSubmitted("j000001", "bench", "", time.Unix(1700000000, 0), nil); err != nil {
		b.Fatal(err)
	}
	data := map[string]int{"cell": 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data["cell"] = i
		st.JobEvent("j000001", jobs.Event{Seq: i, Kind: "cell", Data: data})
	}
}
