package jobstore

// Recovery: turning a reopened journal back into manager state. Terminal
// jobs are adopted as-is — same IDs, byte-identical event history and
// result — so a restarted daemon re-lists everything its clients knew
// about. Jobs that were in flight when the process died are first closed
// out (a terminal "interrupted" record is journaled so a second restart
// agrees), then automatically resumed from their last durable checkpoint
// through the same ResumeExplore/ResumeSweep paths a client would use —
// which is exactly why the resumed run is bit-identical to an
// uninterrupted one.

import (
	"encoding/json"
	"time"

	"repro/internal/jobs"
)

// RecoveredJob is one job reconstructed from the journal (see
// Store.Snapshot).
type RecoveredJob struct {
	ID          string
	Kind        string
	ResumedFrom string
	Created     time.Time
	// Spec and Checkpoint are the journaled wire forms (null when the
	// spec was not durable / no checkpoint landed).
	Spec       json.RawMessage
	Checkpoint json.RawMessage
	// Events replays the journaled log; Data fields are raw JSON, so
	// re-serving them is byte-identical to the original stream.
	Events []jobs.Event
	// Terminal state (valid when Terminal).
	Terminal bool
	State    jobs.State
	Error    string
	Result   json.RawMessage
	Started  time.Time
	Finished time.Time
}

// Snapshot returns every journaled job in journal order.
func (s *Store) Snapshot() []RecoveredJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RecoveredJob, 0, len(s.order))
	for _, id := range s.order {
		e := s.index[id]
		if e == nil {
			continue
		}
		rj := RecoveredJob{
			ID:          e.id,
			Kind:        e.spec.Kind,
			ResumedFrom: e.spec.ResumedFrom,
			Created:     e.spec.Created,
			Spec:        e.spec.Spec,
			Terminal:    e.terminal,
		}
		if e.ckptP != nil {
			var rec checkpointRecord
			if json.Unmarshal(e.ckptP, &rec) == nil {
				rj.Checkpoint = rec.Checkpoint
			}
		}
		for _, p := range e.events {
			var rec eventRecord
			if json.Unmarshal(p, &rec) != nil {
				continue
			}
			ev := jobs.Event{Seq: rec.Seq, Kind: rec.Kind}
			if len(rec.Data) > 0 && string(rec.Data) != "null" {
				ev.Data = rec.Data
			}
			rj.Events = append(rj.Events, ev)
		}
		if e.terminal {
			rj.State = e.term.State
			rj.Error = e.term.Error
			rj.Result = e.term.Result
			rj.Started = e.term.Started
			rj.Finished = e.term.Finished
		}
		out = append(out, rj)
	}
	return out
}

// Rebuilder decodes a job kind's journaled spec and checkpoint back into
// the typed values Manager.Resume expects (jobs.RebuildSweep and
// jobs.RebuildExplore are the built-in ones). spec is never empty;
// checkpoint may be.
type Rebuilder func(spec, checkpoint []byte) (specv any, cp any, err error)

// interruptedError marks jobs that were in flight when the daemon died.
const interruptedError = "jobs: interrupted by daemon restart"

// RecoveryReport summarizes what Recover did.
type RecoveryReport struct {
	// Relisted counts terminal jobs adopted back into the manager;
	// Interrupted counts in-flight jobs closed out as failed (each also
	// Relisted-adopted, but reported separately).
	Relisted    int
	Interrupted int
	// Resumed counts interrupted jobs automatically continued from their
	// checkpoint; Skipped counts jobs that could not be adopted or
	// resumed (unknown kind, unserializable spec, rebuild failure).
	Resumed int
	Skipped int
	// Repaired reports that Open truncated a torn tail.
	Repaired bool
}

// Recover adopts every journaled job into m and auto-resumes the ones a
// crash interrupted. rebuild maps job kinds to their spec decoders;
// kinds without one (or jobs whose spec was not durable) are still
// re-listed but cannot resume. Call it once, after NewManager and before
// serving traffic, with the store already wired in as m's Journal — the
// interrupted-terminal records and resumed submissions land in the same
// journal.
func Recover(m *jobs.Manager, s *Store, rebuild map[string]Rebuilder) (RecoveryReport, error) {
	rep := RecoveryReport{Repaired: s.Repaired()}
	var resume []string
	for _, rj := range s.Snapshot() {
		var specv, cpv any
		canResume := false
		if rb := rebuild[rj.Kind]; rb != nil && len(rj.Spec) > 0 {
			if sv, cv, err := rb(rj.Spec, rj.Checkpoint); err == nil {
				specv, cpv, canResume = sv, cv, true
			}
		}
		a := jobs.AdoptedJob{
			ID:          rj.ID,
			Kind:        rj.Kind,
			ResumedFrom: rj.ResumedFrom,
			Created:     rj.Created,
			Started:     rj.Started,
			Finished:    rj.Finished,
			Events:      rj.Events,
			Spec:        specv,
			Checkpoint:  cpv,
		}
		if rj.Terminal {
			a.State = rj.State
			a.Error = rj.Error
			if len(rj.Result) > 0 {
				a.Result = rj.Result
			}
			if _, err := m.Adopt(a); err != nil {
				rep.Skipped++
				continue
			}
			rep.Relisted++
			continue
		}
		// In flight at the crash: close it out. The journaled terminal
		// record makes a second restart see a terminal job, not a
		// double-resume; the adopted job carries the interruption as its
		// error and the resumed continuation links back via resumed_from.
		now := time.Now()
		a.State = jobs.StateFailed
		a.Error = interruptedError
		ev := jobs.Event{
			Seq:  len(a.Events),
			Kind: string(jobs.StateFailed),
			Data: map[string]string{"error": interruptedError},
		}
		a.Events = append(a.Events, ev)
		a.Finished = now
		s.JobEvent(rj.ID, ev)
		s.JobFinished(rj.ID, jobs.StateFailed, interruptedError, nil, rj.Started, now)
		if _, err := m.Adopt(a); err != nil {
			rep.Skipped++
			continue
		}
		rep.Interrupted++
		if canResume {
			resume = append(resume, rj.ID)
		} else {
			rep.Skipped++
		}
	}
	// Resume after every adoption so ID bumping has seen all journaled
	// IDs (a continuation must never collide with a not-yet-adopted job).
	for _, id := range resume {
		if _, err := m.Resume(id); err != nil {
			rep.Skipped++
			continue
		}
		rep.Resumed++
	}
	return rep, nil
}
