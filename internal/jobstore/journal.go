package jobstore

// The journal's on-disk format: a flat sequence of CRC-framed records,
//
//	[magic 0xCF 0x4A][type 1B][len u32le][crc32c u32le][payload]
//
// where payload is a JSON envelope per record type. Append-only with
// fsync at commit points; a crash can only damage the tail, so the
// loader's repair rule is simple and total: scan frames until the first
// bad one (torn header, short payload, CRC mismatch, bad magic), keep
// everything before it, truncate the rest. CRCs make "bad" detectable
// even when the tear lands inside a payload; a record is trusted only
// when its checksum verifies.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"repro/internal/jobs"
)

// Record types. Unknown types with valid CRCs are skipped on load
// (forward compatibility), never treated as corruption.
type recordType byte

const (
	recSpec       recordType = 1 // a job was submitted
	recEvent      recordType = 2 // one event appended to a job's log
	recCheckpoint recordType = 3 // a job's latest resumable state
	recTerminal   recordType = 4 // a job reached a terminal state
	recRemove     recordType = 5 // a job left the retained ring
)

const (
	frameMagic0 = 0xCF
	frameMagic1 = 0x4A
	frameHeader = 2 + 1 + 4 + 4
	// maxPayload bounds a frame's declared length; anything larger is
	// corruption by definition (a torn length field reading garbage).
	maxPayload = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frame encodes one record.
func frame(typ recordType, payload []byte) []byte {
	b := make([]byte, frameHeader+len(payload))
	b[0], b[1], b[2] = frameMagic0, frameMagic1, byte(typ)
	binary.LittleEndian.PutUint32(b[3:7], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[7:11], crc32.Checksum(payload, crcTable))
	copy(b[frameHeader:], payload)
	return b
}

// Payload envelopes. Raw JSON stays raw (json.RawMessage) end to end, so
// a recovered job replays its journaled history byte-identically.

type specRecord struct {
	ID          string          `json:"id"`
	Kind        string          `json:"kind"`
	ResumedFrom string          `json:"resumed_from,omitempty"`
	Created     time.Time       `json:"created"`
	Spec        json.RawMessage `json:"spec,omitempty"`
}

type eventRecord struct {
	ID   string          `json:"id"`
	Seq  int             `json:"seq"`
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data,omitempty"`
}

type checkpointRecord struct {
	ID         string          `json:"id"`
	Checkpoint json.RawMessage `json:"checkpoint"`
}

type terminalRecord struct {
	ID       string          `json:"id"`
	State    jobs.State      `json:"state"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Started  time.Time       `json:"started,omitempty"`
	Finished time.Time       `json:"finished"`
}

type removeRecord struct {
	ID string `json:"id"`
}

// readFrame reads one frame from r. io.EOF at the first header byte
// means a clean end; any other failure (short header, short payload,
// bad magic, insane length, CRC mismatch) returns errTorn — the caller
// truncates there.
var errTorn = fmt.Errorf("jobstore: torn or corrupt frame")

func readFrame(r *bufio.Reader) (recordType, []byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, errTorn
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, errTorn
	}
	if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 {
		return 0, nil, errTorn
	}
	n := binary.LittleEndian.Uint32(hdr[3:7])
	if n > maxPayload {
		return 0, nil, errTorn
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, errTorn
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[7:11]) {
		return 0, nil, errTorn
	}
	return recordType(hdr[2]), payload, nil
}
