// Package perfdb holds a census of documented hardware event counters per
// x86-64 microarchitecture, supporting Figure 1a of the paper: the number
// of HECs grew more than 10× between 2009 and 2019.
//
// The paper derives its counts from the Linux perf pmu-events database;
// that database is unavailable offline, so the entries below are
// reconstructed estimates consistent with the paper's Figure 1a data
// points (NHM-EX | 8 cores through CLX | 56 cores). "Named" counts one
// documented event name per core; "Addressable" removes deprecated events
// and accounts for per-core replication of core events plus system-wide
// uncore events:
//
//	addressable = coreEvents×(1−deprecated)×cores + uncoreEvents×(1−deprecated)
package perfdb

import "sort"

// Microarch is one microarchitecture's event census.
type Microarch struct {
	// Name is the perf shorthand (NHM-EX, HSX, ...).
	Name string
	// Year of server availability.
	Year int
	// TypicalCores is the typical core count of a server system of the era.
	TypicalCores int
	// CoreEvents / UncoreEvents are documented event names by domain.
	CoreEvents, UncoreEvents int
	// DeprecatedFrac is the fraction of documented names deprecated by the
	// vendor (removed conservatively from the addressable count).
	DeprecatedFrac float64
}

// Named returns the number of documented event names for a single core.
func (m Microarch) Named() int {
	return m.CoreEvents + m.UncoreEvents
}

// Addressable estimates the system-wide addressable events.
func (m Microarch) Addressable() int {
	core := float64(m.CoreEvents) * (1 - m.DeprecatedFrac) * float64(m.TypicalCores)
	uncore := float64(m.UncoreEvents) * (1 - m.DeprecatedFrac)
	return int(core + uncore)
}

// Census returns the Figure 1a microarchitectures in chronological order.
func Census() []Microarch {
	ms := []Microarch{
		{Name: "NHM-EX", Year: 2009, TypicalCores: 8, CoreEvents: 680, UncoreEvents: 320, DeprecatedFrac: 0.08},
		{Name: "WSM-EX", Year: 2011, TypicalCores: 10, CoreEvents: 710, UncoreEvents: 390, DeprecatedFrac: 0.08},
		{Name: "IVT", Year: 2013, TypicalCores: 15, CoreEvents: 840, UncoreEvents: 620, DeprecatedFrac: 0.06},
		{Name: "HSX", Year: 2014, TypicalCores: 18, CoreEvents: 980, UncoreEvents: 830, DeprecatedFrac: 0.05},
		{Name: "KNL", Year: 2016, TypicalCores: 72, CoreEvents: 700, UncoreEvents: 410, DeprecatedFrac: 0.04},
		{Name: "CLX", Year: 2019, TypicalCores: 56, CoreEvents: 1280, UncoreEvents: 1650, DeprecatedFrac: 0.03},
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Year < ms[j].Year })
	return ms
}

// GrowthFactor returns the ratio of the last census entry's addressable
// events to the first's — the paper's headline "more than 10× since 2009".
func GrowthFactor() float64 {
	ms := Census()
	first := ms[0].Addressable()
	last := ms[len(ms)-1].Addressable()
	if first == 0 {
		return 0
	}
	return float64(last) / float64(first)
}
