package perfdb

import "testing"

func TestCensusChronological(t *testing.T) {
	ms := Census()
	if len(ms) != 6 {
		t.Fatalf("census entries: %d", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Year < ms[i-1].Year {
			t.Fatal("census not chronological")
		}
	}
	if ms[0].Name != "NHM-EX" || ms[len(ms)-1].Name != "CLX" {
		t.Fatalf("endpoints: %s .. %s", ms[0].Name, ms[len(ms)-1].Name)
	}
}

func TestAddressableExceedsNamed(t *testing.T) {
	// Per-core replication means system-wide addressable counts dominate
	// single-core named counts for multi-core parts.
	for _, m := range Census() {
		if m.Addressable() <= m.Named() {
			t.Errorf("%s: addressable %d should exceed named %d",
				m.Name, m.Addressable(), m.Named())
		}
	}
}

func TestGrowthFactorOver10x(t *testing.T) {
	// The paper's headline: >10× growth from 2009 to 2019.
	if g := GrowthFactor(); g < 10 {
		t.Fatalf("growth factor %g, want >= 10", g)
	}
}

func TestNamedGrowth(t *testing.T) {
	ms := Census()
	if ms[len(ms)-1].Named() <= ms[0].Named() {
		t.Fatal("named events should grow over the decade")
	}
}
