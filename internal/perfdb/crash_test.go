package perfdb

// Crash-consistency suite for VerdictStore on the faultfs harness: an
// acked Put must survive power loss, and injected write/fsync faults
// must surface as errors instead of silent data loss.

import (
	"errors"
	"io"
	"testing"

	"repro/internal/faultfs"
)

func vkey(b byte) (k [32]byte) {
	for i := range k {
		k[i] = b
	}
	return k
}

// TestVerdictStoreAckedPutSurvivesCrash is the regression test for the
// Flush-stops-at-the-OS-buffer bug: before Put fsynced, a verdict could
// be acked, flushed, and still vanish in a power loss. Kill the machine
// right after Put returns — the verdict must be there on reopen.
func TestVerdictStoreAckedPutSurvivesCrash(t *testing.T) {
	m := faultfs.NewMem()
	s, err := OpenVerdictStoreFS(m, "v.db")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(vkey(1), true); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := s.Put(vkey(2), false); err != nil {
		t.Fatalf("put: %v", err)
	}
	// Power loss. No Close, no extra Flush/Sync: whatever Put acked is
	// all we get to keep.
	m.Crash(0)

	r, err := OpenVerdictStoreFS(m, "v.db")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	if v, ok := r.Get(vkey(1)); !ok || !v {
		t.Fatalf("verdict 1 after crash = (%v, %v), want (true, true)", v, ok)
	}
	if v, ok := r.Get(vkey(2)); !ok || v {
		t.Fatalf("verdict 2 after crash = (%v, %v), want (false, true)", v, ok)
	}
	if r.Len() != 2 {
		t.Fatalf("Len after crash = %d, want 2", r.Len())
	}
}

// TestVerdictStoreFailedSyncIsNotAcked pins the other half of the
// contract: when the fsync fails, Put must return the error (the engine
// counts it as a store error) — and losing that record in a crash is
// then legal, not a lie.
func TestVerdictStoreFailedSyncIsNotAcked(t *testing.T) {
	m := faultfs.NewMem()
	s, err := OpenVerdictStoreFS(m, "v.db")
	if err != nil {
		t.Fatal(err)
	}
	m.FailSyncs(1, nil)
	if err := s.Put(vkey(3), true); err == nil {
		t.Fatal("Put acked a verdict whose fsync failed")
	}
	// The store still serves it from memory for this process.
	if v, ok := s.Get(vkey(3)); !ok || !v {
		t.Fatalf("in-memory verdict after failed sync = (%v, %v)", v, ok)
	}
	m.Crash(0)
	r, err := OpenVerdictStoreFS(m, "v.db")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.Get(vkey(3)); ok {
		// Fine either way semantically, but with the fsync failing before
		// any sync succeeded nothing can be durable here.
		t.Fatal("unacked verdict unexpectedly durable")
	}
}

// TestVerdictStoreShortWriteSurfacesError: a short write must fail the
// Put (bufio reports the underlying error on flush) rather than ack a
// half-record.
func TestVerdictStoreShortWriteSurfacesError(t *testing.T) {
	m := faultfs.NewMem()
	s, err := OpenVerdictStoreFS(m, "v.db")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(vkey(4), true); err != nil {
		t.Fatal(err)
	}
	m.ShortWrites(1)
	if err := s.Put(vkey(5), true); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short-write Put err = %v, want ErrShortWrite", err)
	}
	// The earlier acked record must be untouched by the torn tail: crash
	// and reload.
	m.Crash(0)
	r, err := OpenVerdictStoreFS(m, "v.db")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v, ok := r.Get(vkey(4)); !ok || !v {
		t.Fatalf("acked verdict lost after short write + crash: (%v, %v)", v, ok)
	}
}

// TestVerdictStoreTornTailRepair: a crash that tears the final line must
// not corrupt the store — the torn line is dropped on load and the next
// append starts on a fresh line.
func TestVerdictStoreTornTailRepair(t *testing.T) {
	m := faultfs.NewMem()
	s, err := OpenVerdictStoreFS(m, "v.db")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(vkey(6), true); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(vkey(7), false); err != nil {
		t.Fatal(err)
	}
	// Tear mid-way through the last record: keep the synced prefix plus
	// 10 bytes of whatever was in flight. Write one more record without
	// letting its fsync land, then tear it.
	m.FailSyncs(1, nil)
	_ = s.Put(vkey(8), true)
	m.Crash(10)

	r, err := OpenVerdictStoreFS(m, "v.db")
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if v, ok := r.Get(vkey(6)); !ok || !v {
		t.Fatalf("verdict 6 lost to torn tail: (%v, %v)", v, ok)
	}
	if v, ok := r.Get(vkey(7)); !ok || v {
		t.Fatalf("verdict 7 lost to torn tail: (%v, %v)", v, ok)
	}
	if _, ok := r.Get(vkey(8)); ok {
		t.Fatal("torn record parsed as valid")
	}
	// Appends after repair are well-formed: add a record, crash, reload.
	if err := r.Put(vkey(9), true); err != nil {
		t.Fatal(err)
	}
	m.Crash(0)
	r2, err := OpenVerdictStoreFS(m, "v.db")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if v, ok := r2.Get(vkey(9)); !ok || !v {
		t.Fatalf("post-repair append lost: (%v, %v)", v, ok)
	}
	if r2.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r2.Len())
	}
}
