package perfdb

// File-backed verdict store: the persistence tier of the engine's
// content-addressed verdict cache. The format is an append-only text log,
// one record per line:
//
//	<64 hex chars of the canonical LP hash> <0|1>
//
// Append-only keeps writes crash-tolerant (a torn final line is dropped
// on load) and makes the file trivially mergeable across machines — cat
// two stores together and the later record for a key wins, but since a
// key's verdict is a pure function of its content, duplicates can never
// disagree. counterpointd opens one with -verdict-db and wires it into
// the engine via engine.WithVerdictStore.
//
// Durability contract: Put acks a verdict only after it has been flushed
// AND fsynced (Sync) — the OS buffer alone does not survive power loss,
// and an acked-then-lost verdict would silently re-solve on the next
// boot, or worse, disagree with a peer that trusted the ack. The store
// runs on a faultfs.FS so the crash-consistency suite can pull the plug
// between flush and fsync and pin that contract.

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/faultfs"
)

// VerdictStore is a concurrency-safe, file-backed map from canonical LP
// hashes to feasibility verdicts. It satisfies engine.VerdictStore.
type VerdictStore struct {
	mu     sync.Mutex
	m      map[[32]byte]bool
	f      faultfs.File
	w      *bufio.Writer
	closed bool
}

// OpenVerdictStore opens (creating if needed) the store at path on the
// real filesystem.
func OpenVerdictStore(path string) (*VerdictStore, error) {
	return OpenVerdictStoreFS(faultfs.OS{}, path)
}

// OpenVerdictStoreFS opens (creating if needed) the store at path on
// fsys and loads every well-formed record. Malformed or torn lines — a
// crash mid-append, a truncated copy — are skipped, not fatal: losing a
// cached verdict only costs a re-solve.
func OpenVerdictStoreFS(fsys faultfs.FS, path string) (*VerdictStore, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("perfdb: open verdict store: %w", err)
	}
	s := &VerdictStore{m: make(map[[32]byte]bool), f: f}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		key, verdict, ok := parseRecord(sc.Text())
		if !ok {
			continue
		}
		s.m[key] = verdict
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("perfdb: read verdict store: %w", err)
	}
	// Appends go through one buffered writer positioned at the end.
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("perfdb: seek verdict store: %w", err)
	}
	s.w = bufio.NewWriter(f)
	// A torn final line (crash mid-append) has no trailing newline; start
	// our appends with one so the next record doesn't glue onto it.
	if size > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], size-1); err != nil {
			f.Close()
			return nil, fmt.Errorf("perfdb: read verdict store tail: %w", err)
		}
		if last[0] != '\n' {
			s.w.WriteByte('\n')
		}
	}
	return s, nil
}

// parseRecord parses one "hexkey 0|1" line.
func parseRecord(line string) (key [32]byte, verdict, ok bool) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return key, false, false
	}
	fields := strings.Fields(line)
	if len(fields) != 2 || len(fields[0]) != 64 {
		return key, false, false
	}
	b, err := hex.DecodeString(fields[0])
	if err != nil || len(b) != 32 {
		return key, false, false
	}
	copy(key[:], b)
	switch fields[1] {
	case "0":
		return key, false, true
	case "1":
		return key, true, true
	}
	return key, false, false
}

// Get returns the stored verdict for key, if any.
func (s *VerdictStore) Get(key [32]byte) (bool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

// Put records the verdict for key and commits it: the record is
// appended, flushed, and fsynced before Put returns nil, so an acked
// verdict survives power loss. The fsync is per fresh verdict, which is
// noise next to the LP solve that produced it. Duplicate puts of a known
// key are deduplicated in memory and on disk (and cost no I/O at all).
func (s *VerdictStore) Put(key [32]byte, verdict bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("perfdb: verdict store closed")
	}
	if prev, ok := s.m[key]; ok && prev == verdict {
		return nil
	}
	s.m[key] = verdict
	bit := byte('0')
	if verdict {
		bit = '1'
	}
	var line [67]byte
	hex.Encode(line[:64], key[:])
	line[64] = ' '
	line[65] = bit
	line[66] = '\n'
	if _, err := s.w.Write(line[:]); err != nil {
		return fmt.Errorf("perfdb: append verdict: %w", err)
	}
	return s.syncLocked()
}

// Len reports how many verdicts the store holds.
func (s *VerdictStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Flush forces buffered appends to the operating system. It does NOT
// fsync — a flushed-but-unsynced record can still be lost to power
// failure; use Sync for the durability barrier.
func (s *VerdictStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("perfdb: flush verdict store: %w", err)
	}
	return nil
}

// Sync flushes buffered appends and fsyncs the backing file: after a nil
// return every previously appended verdict survives a crash.
func (s *VerdictStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.syncLocked()
}

func (s *VerdictStore) syncLocked() error {
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("perfdb: flush verdict store: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("perfdb: sync verdict store: %w", err)
	}
	return nil
}

// Close flushes, syncs, and closes the backing file. The store rejects
// writes afterwards; Close is idempotent.
func (s *VerdictStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	serr := func() error {
		if err := s.w.Flush(); err != nil {
			return fmt.Errorf("perfdb: flush verdict store: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("perfdb: sync verdict store: %w", err)
		}
		return nil
	}()
	cerr := s.f.Close()
	if serr != nil {
		return serr
	}
	if cerr != nil {
		return fmt.Errorf("perfdb: close verdict store: %w", cerr)
	}
	return nil
}
