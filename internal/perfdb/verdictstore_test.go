package perfdb

import (
	"os"
	"path/filepath"
	"testing"
)

func key(b byte) (k [32]byte) {
	for i := range k {
		k[i] = b
	}
	return k
}

func TestVerdictStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.db")
	s, err := OpenVerdictStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("fresh store Len = %d", s.Len())
	}
	if err := s.Put(key(1), true); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(2), false); err != nil {
		t.Fatal(err)
	}
	// Duplicate put: no growth.
	if err := s.Put(key(1), true); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(key(1)); !ok || !v {
		t.Fatalf("Get(1) = %v, %v", v, ok)
	}
	if v, ok := s.Get(key(2)); !ok || v {
		t.Fatalf("Get(2) = %v, %v", v, ok)
	}
	if _, ok := s.Get(key(3)); ok {
		t.Fatal("phantom key")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Put(key(4), true); err == nil {
		t.Fatal("Put after Close succeeded")
	}

	// Reopen: both verdicts survive, the duplicate collapsed.
	s2, err := OpenVerdictStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", s2.Len())
	}
	if v, ok := s2.Get(key(1)); !ok || !v {
		t.Fatalf("reopened Get(1) = %v, %v", v, ok)
	}
	if v, ok := s2.Get(key(2)); !ok || v {
		t.Fatalf("reopened Get(2) = %v, %v", v, ok)
	}
}

func TestVerdictStoreToleratesCorruptLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.db")
	good := "2222222222222222222222222222222222222222222222222222222222222222 1\n"
	corrupt := "# comment line\n" +
		"\n" +
		"nothex!22222222222222222222222222222222222222222222222222222222 1\n" +
		"22222222222222222222222222222222222222222222222222222222222222 1\n" + // short key
		good +
		"3333333333333333333333333333333333333333333333333333333333333333 2\n" + // bad verdict
		"4444444444444444444444444444444444444444444444444444444444444444" // torn final line
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenVerdictStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (only the well-formed record)", s.Len())
	}
	if v, ok := s.Get(key(0x22)); !ok || !v {
		t.Fatalf("well-formed record lost: %v, %v", v, ok)
	}
	// The store must still accept appends after loading a corrupt file,
	// and a reopen must see them.
	if err := s.Put(key(5), false); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenVerdictStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get(key(5)); !ok || v {
		t.Fatalf("post-corruption append lost: %v, %v", v, ok)
	}
}

func TestVerdictStoreFlushVisibility(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.db")
	s, err := OpenVerdictStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(key(7), true); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Another reader (a second process in real use) sees flushed records.
	s2, err := OpenVerdictStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get(key(7)); !ok || !v {
		t.Fatalf("flushed record invisible to reader: %v, %v", v, ok)
	}
}
