package dsl

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/counters"
)

// randomProgram emits a random syntactically valid DSL program. Each
// switch gets a globally unique property name so arm sets never conflict.
func randomProgram(rng *rand.Rand, depth int) string {
	var b strings.Builder
	next := 0
	emitStmts(rng, &b, depth, &next)
	return b.String()
}

func emitStmts(rng *rand.Rand, b *strings.Builder, depth int, next *int) {
	n := rng.Intn(3) + 1
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			fmt.Fprintf(b, "incr c%d;\n", rng.Intn(4))
		case 1:
			fmt.Fprintf(b, "do ev%d;\n", rng.Intn(4))
		case 2:
			b.WriteString("pass;\n")
		default:
			if depth <= 0 {
				fmt.Fprintf(b, "incr c%d;\n", rng.Intn(4))
				continue
			}
			// A fresh property per switch keeps the generator simple and
			// the program trivially consistent.
			fmt.Fprintf(b, "switch Q%d {\n", *next)
			*next++
			arms := rng.Intn(2) + 2
			for a := 0; a < arms; a++ {
				fmt.Fprintf(b, "V%d => {\n", a)
				emitStmts(rng, b, depth-1, next)
				if rng.Intn(4) == 0 {
					b.WriteString("done;\n")
				}
				b.WriteString("};\n")
			}
			b.WriteString("};\n")
		}
	}
}

// TestRandomProgramsCompileAndRoundTrip: random programs compile to valid
// μDDs, and formatting preserves the compiled signature multiset.
func TestRandomProgramsCompileAndRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	set := counters.NewSet("c0", "c1", "c2", "c3")
	for trial := 0; trial < 120; trial++ {
		src := randomProgram(rng, 2)
		d, err := Compile(fmt.Sprintf("rand%d", trial), src)
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		paths, err := d.Paths()
		if err != nil {
			t.Fatalf("trial %d: paths: %v", trial, err)
		}
		if len(paths) == 0 {
			t.Fatalf("trial %d: no μpaths", trial)
		}
		formatted, err := FormatSource(src)
		if err != nil {
			t.Fatalf("trial %d: format: %v", trial, err)
		}
		d2, err := Compile("fmt", formatted)
		if err != nil {
			t.Fatalf("trial %d: recompile formatted: %v\n%s", trial, err, formatted)
		}
		s1, err := d.Signatures(set)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := d2.Signatures(set)
		if err != nil {
			t.Fatal(err)
		}
		m1 := map[string]int{}
		for _, s := range s1 {
			m1[s.Key()]++
		}
		m2 := map[string]int{}
		for _, s := range s2 {
			m2[s.Key()]++
		}
		if len(m1) != len(m2) {
			t.Fatalf("trial %d: signature sets differ after formatting", trial)
		}
		for k, v := range m1 {
			if m2[k] != v {
				t.Fatalf("trial %d: signature multiset differs at %s", trial, k)
			}
		}
	}
}
