package dsl

import (
	"testing"
)

// FuzzParse asserts two invariants the service layer depends on when it
// compiles untrusted uploaded DSL source:
//
//  1. Parse never panics, whatever the input;
//  2. accepted source round-trips: Format(Parse(src)) re-parses, and a
//     second format pass is a fixpoint, so canonical form is stable.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"incr a;",
		"do X;\npass;\ndone;",
		"incr load.causes_walk;\nswitch Pde$Status {\n    Hit => pass;\n    Miss => incr load.pde$_miss;\n};\ndone;\n",
		"uop Load {\n    incr a;\n}\nuop Store {\n    done;\n}\n",
		"switch A { X => { switch B { Y => done; }; }; };",
		"switch A { X => incr a; Y => do b; Z => pass; };",
		"// comment\nincr a; done;",
		"uop L {}",
		"switch A {}",
		"incr ;",
		"done; incr a;",
		"switch A { X => pass; X => pass; };",
		"uop 1 { incr a; }",
		"\x00\xff\xfe",
		"incr a\nincr b\ndone",
		"switch Pf { D1 => { incr x; incr y; }; };",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejected input only needs to not panic
		}
		formatted := Format(prog)
		prog2, err := Parse(formatted)
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v\nsource: %q\nformatted: %q", err, src, formatted)
		}
		if again := Format(prog2); again != formatted {
			t.Fatalf("format is not a fixpoint\nfirst:  %q\nsecond: %q", formatted, again)
		}
		if (len(prog.Uops) > 0) != (len(prog2.Uops) > 0) {
			t.Fatalf("round-trip changed the program shape: %d uops -> %d", len(prog.Uops), len(prog2.Uops))
		}
	})
}
