package dsl

import (
	"repro/internal/counters"
	"repro/internal/mudd"
)

// Compile parses src and builds the corresponding μDD. For `uop` files the
// result is the merged diagram of all blocks (one branch per micro-op type,
// selected by the synthetic "Diagram" property).
func Compile(name, src string) (*mudd.Diagram, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Uops) > 0 {
		ds := make([]*mudd.Diagram, len(prog.Uops))
		for i, blk := range prog.Uops {
			d, err := compileStmts(blk.Name, blk.Body)
			if err != nil {
				return nil, err
			}
			ds[i] = d
		}
		merged := mudd.Merge(name, ds...)
		if err := merged.Validate(); err != nil {
			return nil, err
		}
		return merged, nil
	}
	d, err := compileStmts(name, prog.Stmts)
	if err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// MustCompile is Compile that panics on error, for statically known models.
func MustCompile(name, src string) *mudd.Diagram {
	d, err := Compile(name, src)
	if err != nil {
		panic(err)
	}
	return d
}

// contFn supplies a continuation node lazily, so unreachable continuations
// (after `done`) are never allocated.
type contFn func() (mudd.NodeID, error)

// compiler builds one diagram, allocating the shared implicit END node
// lazily so diagrams whose every μpath ends in an explicit `done` do not
// grow an unreachable END.
type compiler struct {
	d      *mudd.Diagram
	end    mudd.NodeID
	hasEnd bool
}

func (c *compiler) endNode() (mudd.NodeID, error) {
	if !c.hasEnd {
		c.end = c.d.AddEnd()
		c.hasEnd = true
	}
	return c.end, nil
}

func compileStmts(name string, stmts []Stmt) (*mudd.Diagram, error) {
	c := &compiler{d: mudd.New(name)}
	entry, err := c.seq(stmts, c.endNode)
	if err != nil {
		return nil, err
	}
	c.d.Link(c.d.StartNode(), entry)
	return c.d, nil
}

// seq compiles a statement list, returning its entry node. Control falls
// through to cont after the last statement.
func (c *compiler) seq(stmts []Stmt, cont contFn) (mudd.NodeID, error) {
	if len(stmts) == 0 {
		return cont()
	}
	head, rest := stmts[0], stmts[1:]
	// restCont memoises the compiled remainder so switch cases that fall
	// through share a single merge point.
	var restNode mudd.NodeID
	restDone := false
	restCont := func() (mudd.NodeID, error) {
		if !restDone {
			n, err := c.seq(rest, cont)
			if err != nil {
				return 0, err
			}
			restNode = n
			restDone = true
		}
		return restNode, nil
	}

	switch s := head.(type) {
	case *IncrStmt:
		node := c.d.AddCounter(counters.Event(s.Counter))
		next, err := restCont()
		if err != nil {
			return 0, err
		}
		c.d.Link(node, next)
		return node, nil
	case *DoStmt:
		node := c.d.AddEvent(s.Event)
		next, err := restCont()
		if err != nil {
			return 0, err
		}
		c.d.Link(node, next)
		return node, nil
	case *PassStmt:
		return c.seq(rest, cont)
	case *DoneStmt:
		if len(rest) > 0 {
			l, col := rest[0].Pos()
			return 0, errAt(l, col, "unreachable statement after done")
		}
		n, _ := c.endNode()
		return n, nil
	case *SwitchStmt:
		dec := c.d.AddDecision(s.Property)
		for _, cs := range s.Cases {
			entry, err := c.seq(cs.Body, restCont)
			if err != nil {
				return 0, err
			}
			c.d.LinkValue(dec, entry, cs.Value)
		}
		return dec, nil
	default:
		l, col := head.Pos()
		return 0, errAt(l, col, "unsupported statement")
	}
}
