package dsl

import (
	"strings"
	"testing"

	"repro/internal/counters"
)

// figure2Src is the model specification from Figure 2 of the paper.
const figure2Src = `
incr load.causes_walk;
do LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => incr load.pde$_miss
};
done;
`

func TestCompileFigure2(t *testing.T) {
	d, err := Compile("fig2", figure2Src)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := d.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d μpaths, want 2", len(paths))
	}
	set := d.Counters()
	if !set.Equal(counters.NewSet("load.causes_walk", "load.pde$_miss")) {
		t.Fatalf("counters: %v", set.Events())
	}
	sigs := map[string]bool{}
	for _, p := range paths {
		sigs[d.Signature(p, set).Key()] = true
	}
	if !sigs["1|0"] || !sigs["1|1"] {
		t.Fatalf("signatures: %v", sigs)
	}
}

func TestCompileFigure6c(t *testing.T) {
	// The refined model of Figure 6c: PDE$ looked up first, walks can
	// abort after a PDE cache miss.
	src := `
do LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => {
        incr load.pde$_miss;
        switch Abort {
            Yes => done;
            No  => pass;
        };
    };
};
do StartWalk;
incr load.causes_walk;
done;
`
	d, err := Compile("fig6c", src)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := d.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d μpaths, want 3", len(paths))
	}
	set := counters.NewSet("load.causes_walk", "load.pde$_miss")
	sigs := map[string]bool{}
	for _, p := range paths {
		sigs[d.Signature(p, set).Key()] = true
	}
	// Hit path: (1,0); Miss+NoAbort: (1,1); Miss+Abort: (0,1) — the μpath
	// whose signature violates constraint C (Figure 6d).
	for _, want := range []string{"1|0", "1|1", "0|1"} {
		if !sigs[want] {
			t.Fatalf("missing signature %s: %v", want, sigs)
		}
	}
}

func TestCompileUopBlocks(t *testing.T) {
	src := `
uop Load {
    incr load.ret;
}
uop Store {
    incr store.ret;
}
`
	d, err := Compile("uops", src)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := d.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	set := counters.NewSet("load.ret", "store.ret")
	sigs := map[string]bool{}
	for _, p := range paths {
		sigs[d.Signature(p, set).Key()] = true
	}
	if !sigs["1|0"] || !sigs["0|1"] {
		t.Fatalf("signatures: %v", sigs)
	}
}

func TestPropertyConsistencyAcrossSwitches(t *testing.T) {
	src := `
switch P {
    A => incr x;
    B => pass;
};
switch P {
    A => incr y;
    B => pass;
};
`
	d, err := Compile("consistent", src)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := d.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (property consistency)", len(paths))
	}
}

func TestImplicitDone(t *testing.T) {
	d, err := Compile("implicit", "incr a;")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := d.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths: %d", len(paths))
	}
}

func TestEmptyProgram(t *testing.T) {
	d, err := Compile("empty", "")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := d.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("empty program should have exactly the trivial path, got %d", len(paths))
	}
}

func TestAllPathsDone(t *testing.T) {
	// Every arm ends in done: no implicit END needed, no dangling nodes.
	src := `
switch P {
    A => done;
    B => done;
};
`
	d, err := Compile("alldone", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Paths(); err != nil {
		t.Fatal(err)
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"incr;", "expected identifier"},
		{"bogus x;", "unknown statement"},
		{"switch P { };", "no cases"},
		{"switch P { A => pass; A => pass; };", "duplicate case"},
		{"done; incr x;", "unreachable statement after done"},
		{"incr x = 3;", "did you mean"},
		{"@", "unexpected character"},
		{"switch P { A -> pass; };", "unexpected character"},
		{"switch P { A pass; };", "expected '=>'"},
		{"incr a incr b;", "expected ';'"},
	}
	for i, tc := range cases {
		_, err := Compile("bad", tc.src)
		if err == nil {
			t.Errorf("case %d (%q): expected error", i, tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("case %d (%q): error %q does not contain %q", i, tc.src, err, tc.wantSub)
		}
	}
}

func TestErrorPosition(t *testing.T) {
	_, err := Compile("pos", "incr a;\nbogus;")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 2:1") {
		t.Fatalf("error %q lacks position", err)
	}
}

func TestComments(t *testing.T) {
	src := `
// leading comment
incr a; # trailing comment
done;
`
	if _, err := Compile("comments", src); err != nil {
		t.Fatal(err)
	}
}

func TestSharedMergePoint(t *testing.T) {
	// Both switch arms fall through; the remainder must be compiled once
	// (shared merge node), not duplicated.
	src := `
switch P {
    A => incr x;
    B => incr y;
};
incr z;
`
	d, err := Compile("merge", src)
	if err != nil {
		t.Fatal(err)
	}
	zCount := 0
	for _, n := range d.Nodes() {
		if n.Label == "z" {
			zCount++
		}
	}
	if zCount != 1 {
		t.Fatalf("merge point duplicated: %d z nodes", zCount)
	}
}

func TestStmtString(t *testing.T) {
	prog, err := Parse("incr a; do b; pass; switch P { X => pass; }; done;")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"incr a", "do b", "pass", "switch P (1 cases)", "done"}
	for i, s := range prog.Stmts {
		if got := StmtString(s); got != want[i] {
			t.Errorf("stmt %d: got %q want %q", i, got, want[i])
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCompile("bad", "bogus;")
}
