package dsl

import (
	"fmt"
	"strings"
)

// Format renders a parsed program back to canonical DSL source: four-space
// indentation, one statement per line, trailing semicolons everywhere.
// Format(Parse(src)) is a fixpoint: formatting formatted source returns it
// unchanged, and the formatted program parses to the same AST shape.
func Format(p *Program) string {
	var b strings.Builder
	if len(p.Uops) > 0 {
		for i, u := range p.Uops {
			if i > 0 {
				b.WriteString("\n")
			}
			fmt.Fprintf(&b, "uop %s {\n", u.Name)
			formatStmts(&b, u.Body, 1)
			b.WriteString("}\n")
		}
		return b.String()
	}
	formatStmts(&b, p.Stmts, 0)
	return b.String()
}

// FormatSource parses and reformats DSL source.
func FormatSource(src string) (string, error) {
	p, err := Parse(src)
	if err != nil {
		return "", err
	}
	return Format(p), nil
}

func formatStmts(b *strings.Builder, stmts []Stmt, depth int) {
	for _, s := range stmts {
		formatStmt(b, s, depth)
	}
}

func indent(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("    ", depth))
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch t := s.(type) {
	case *IncrStmt:
		fmt.Fprintf(b, "incr %s;\n", t.Counter)
	case *DoStmt:
		fmt.Fprintf(b, "do %s;\n", t.Event)
	case *PassStmt:
		b.WriteString("pass;\n")
	case *DoneStmt:
		b.WriteString("done;\n")
	case *SwitchStmt:
		fmt.Fprintf(b, "switch %s {\n", t.Property)
		for _, c := range t.Cases {
			indent(b, depth+1)
			if len(c.Body) == 1 && !isSwitch(c.Body[0]) {
				fmt.Fprintf(b, "%s => %s\n", c.Value, inlineStmt(c.Body[0]))
				continue
			}
			fmt.Fprintf(b, "%s => {\n", c.Value)
			formatStmts(b, c.Body, depth+2)
			indent(b, depth+1)
			b.WriteString("};\n")
		}
		indent(b, depth)
		b.WriteString("};\n")
	default:
		b.WriteString("/* unknown statement */\n")
	}
}

func isSwitch(s Stmt) bool {
	_, ok := s.(*SwitchStmt)
	return ok
}

func inlineStmt(s Stmt) string {
	switch t := s.(type) {
	case *IncrStmt:
		return fmt.Sprintf("incr %s;", t.Counter)
	case *DoStmt:
		return fmt.Sprintf("do %s;", t.Event)
	case *PassStmt:
		return "pass;"
	case *DoneStmt:
		return "done;"
	}
	return "pass;"
}
