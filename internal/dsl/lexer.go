// Package dsl implements CounterPoint's domain-specific language for
// specifying μpath Decision Diagrams (paper §6, Figure 2).
//
// The language is deliberately tiny — "the DSL does not support functions,
// loops, or variables beyond μpath properties":
//
//	incr load.causes_walk;      // counter node
//	do   LookupPde$;            // standard event node
//	switch Pde$Status {         // decision node
//	    Hit  => pass;           // no-op
//	    Miss => incr load.pde$_miss;
//	};
//	done;                       // END node
//
// Case bodies may be single statements or { blocks }. A `done` inside a
// case terminates that μpath early; control otherwise rejoins the statement
// after the switch. Falling off the end of a program is an implicit `done`.
//
// A file may instead define one diagram per micro-op type:
//
//	uop Load  { ... }
//	uop Store { ... }
//
// which compiles to the merged μDD of the per-type diagrams.
package dsl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokLBrace
	tokRBrace
	tokSemi
	tokArrow // =>
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokSemi:
		return "';'"
	case tokArrow:
		return "'=>'"
	}
	return "?"
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// Error is a DSL syntax or semantic error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("dsl: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// isIdentRune permits the characters of HEC names like "load.pde$_miss"
// and property names like "Pde$Status".
func isIdentRune(r rune, first bool) bool {
	if unicode.IsLetter(r) || r == '_' || r == '$' {
		return true
	}
	if first {
		return false
	}
	return unicode.IsDigit(r) || r == '.' || r == '+'
}

// lex tokenises src. Comments run from "//" or "#" to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	rs := []rune(src)
	i := 0
	advance := func() {
		if rs[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
		i++
	}
	for i < len(rs) {
		r := rs[i]
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			advance()
		case r == '#' || (r == '/' && i+1 < len(rs) && rs[i+1] == '/'):
			for i < len(rs) && rs[i] != '\n' {
				advance()
			}
		case r == '{':
			toks = append(toks, token{tokLBrace, "{", line, col})
			advance()
		case r == '}':
			toks = append(toks, token{tokRBrace, "}", line, col})
			advance()
		case r == ';':
			toks = append(toks, token{tokSemi, ";", line, col})
			advance()
		case r == '=':
			if i+1 < len(rs) && rs[i+1] == '>' {
				toks = append(toks, token{tokArrow, "=>", line, col})
				advance()
				advance()
			} else {
				return nil, errAt(line, col, "unexpected '='; did you mean '=>'?")
			}
		case isIdentRune(r, true):
			startLine, startCol := line, col
			var b strings.Builder
			for i < len(rs) && isIdentRune(rs[i], false) {
				b.WriteRune(rs[i])
				advance()
			}
			toks = append(toks, token{tokIdent, b.String(), startLine, startCol})
		default:
			return nil, errAt(line, col, "unexpected character %q", string(r))
		}
	}
	toks = append(toks, token{tokEOF, "", line, col})
	return toks, nil
}
