package dsl

import "fmt"

// AST node types. A program is a []Stmt.

// Stmt is any DSL statement.
type Stmt interface {
	stmt()
	Pos() (line, col int)
}

type pos struct{ line, col int }

func (p pos) Pos() (int, int) { return p.line, p.col }

// IncrStmt increments a hardware event counter (a counter node).
type IncrStmt struct {
	pos
	Counter string
}

// DoStmt performs a standard microarchitectural event (an event node).
type DoStmt struct {
	pos
	Event string
}

// PassStmt does nothing.
type PassStmt struct{ pos }

// DoneStmt terminates the μpath (an END node).
type DoneStmt struct{ pos }

// SwitchStmt branches on a μpath property (a decision node).
type SwitchStmt struct {
	pos
	Property string
	Cases    []SwitchCase
}

// SwitchCase is one labelled arm of a switch.
type SwitchCase struct {
	Value string
	Body  []Stmt
}

func (IncrStmt) stmt()   {}
func (DoStmt) stmt()     {}
func (PassStmt) stmt()   {}
func (DoneStmt) stmt()   {}
func (SwitchStmt) stmt() {}

// UopBlock is one `uop Name { ... }` block.
type UopBlock struct {
	Name string
	Body []Stmt
}

// Program is a parsed DSL file: either a bare statement list (Stmts) or a
// set of per-micro-op-type blocks (Uops). Exactly one of the two is set.
type Program struct {
	Stmts []Stmt
	Uops  []UopBlock
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, errAt(t.line, t.col, "expected %s, found %s %q", k, t.kind, t.text)
	}
	p.i++
	return t, nil
}

// expectSemi consumes a ';' but tolerates its absence before '}' or EOF,
// matching the paper's examples which omit trailing semicolons.
func (p *parser) expectSemi() error {
	t := p.cur()
	if t.kind == tokSemi {
		p.i++
		return nil
	}
	if t.kind == tokRBrace || t.kind == tokEOF {
		return nil
	}
	return errAt(t.line, t.col, "expected ';', found %s %q", t.kind, t.text)
}

// Parse parses DSL source into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	if p.cur().kind == tokIdent && p.cur().text == "uop" {
		for p.cur().kind != tokEOF {
			blk, err := p.parseUop()
			if err != nil {
				return nil, err
			}
			prog.Uops = append(prog.Uops, *blk)
		}
		if len(prog.Uops) == 0 {
			return nil, errAt(1, 1, "empty program")
		}
		return prog, nil
	}
	stmts, err := p.parseStmts(tokEOF)
	if err != nil {
		return nil, err
	}
	prog.Stmts = stmts
	if _, err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	return prog, nil
}

func (p *parser) parseUop() (*UopBlock, error) {
	kw := p.cur()
	if kw.kind != tokIdent || kw.text != "uop" {
		return nil, errAt(kw.line, kw.col, "expected 'uop', found %q", kw.text)
	}
	p.i++
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	body, err := p.parseStmts(tokRBrace)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return &UopBlock{Name: name.text, Body: body}, nil
}

// parseStmts parses statements until the terminator token kind.
func (p *parser) parseStmts(until tokenKind) ([]Stmt, error) {
	var out []Stmt
	for {
		t := p.cur()
		if t.kind == until || t.kind == tokEOF {
			return out, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, errAt(t.line, t.col, "expected statement, found %s %q", t.kind, t.text)
	}
	at := pos{t.line, t.col}
	switch t.text {
	case "incr":
		p.i++
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if err := p.expectSemi(); err != nil {
			return nil, err
		}
		return &IncrStmt{pos: at, Counter: name.text}, nil
	case "do":
		p.i++
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if err := p.expectSemi(); err != nil {
			return nil, err
		}
		return &DoStmt{pos: at, Event: name.text}, nil
	case "pass":
		p.i++
		if err := p.expectSemi(); err != nil {
			return nil, err
		}
		return &PassStmt{pos: at}, nil
	case "done":
		p.i++
		if err := p.expectSemi(); err != nil {
			return nil, err
		}
		return &DoneStmt{pos: at}, nil
	case "switch":
		p.i++
		return p.parseSwitch(at)
	default:
		return nil, errAt(t.line, t.col,
			"unknown statement %q (expected incr, do, pass, done, or switch)", t.text)
	}
}

func (p *parser) parseSwitch(at pos) (Stmt, error) {
	prop, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	sw := &SwitchStmt{pos: at, Property: prop.text}
	seen := map[string]bool{}
	for p.cur().kind != tokRBrace {
		val, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if seen[val.text] {
			return nil, errAt(val.line, val.col, "duplicate case %q in switch %s", val.text, sw.Property)
		}
		seen[val.text] = true
		if _, err := p.expect(tokArrow); err != nil {
			return nil, err
		}
		var body []Stmt
		if p.cur().kind == tokLBrace {
			p.i++
			body, err = p.parseStmts(tokRBrace)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBrace); err != nil {
				return nil, err
			}
			if err := p.expectSemi(); err != nil {
				return nil, err
			}
		} else {
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			body = []Stmt{s}
		}
		sw.Cases = append(sw.Cases, SwitchCase{Value: val.text, Body: body})
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	if err := p.expectSemi(); err != nil {
		return nil, err
	}
	if len(sw.Cases) == 0 {
		l, c := at.Pos()
		return nil, errAt(l, c, "switch %s has no cases", sw.Property)
	}
	return sw, nil
}

// String renders a statement for diagnostics.
func StmtString(s Stmt) string {
	switch t := s.(type) {
	case *IncrStmt:
		return "incr " + t.Counter
	case *DoStmt:
		return "do " + t.Event
	case *PassStmt:
		return "pass"
	case *DoneStmt:
		return "done"
	case *SwitchStmt:
		return fmt.Sprintf("switch %s (%d cases)", t.Property, len(t.Cases))
	}
	return "?"
}
