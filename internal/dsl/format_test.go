package dsl

import (
	"strings"
	"testing"

	"repro/internal/counters"
)

const messySrc = `
incr load.causes_walk; do LookupPde$;
switch Pde$Status { Hit => pass;
    Miss => { incr load.pde$_miss; switch Abort { Yes => done; No => pass; }; };
};
done;
`

func TestFormatFixpoint(t *testing.T) {
	once, err := FormatSource(messySrc)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := FormatSource(once)
	if err != nil {
		t.Fatal(err)
	}
	if once != twice {
		t.Fatalf("formatting is not a fixpoint:\n--- once ---\n%s--- twice ---\n%s", once, twice)
	}
}

func TestFormatPreservesSemantics(t *testing.T) {
	// The formatted source must compile to a μDD with identical μpath
	// counter signatures.
	formatted, err := FormatSource(messySrc)
	if err != nil {
		t.Fatal(err)
	}
	set := counters.NewSet("load.causes_walk", "load.pde$_miss")
	orig := MustCompile("orig", messySrc)
	fmted := MustCompile("fmt", formatted)
	os, err := orig.Signatures(set)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := fmted.Signatures(set)
	if err != nil {
		t.Fatal(err)
	}
	a := map[string]int{}
	for _, s := range os {
		a[s.Key()]++
	}
	b := map[string]int{}
	for _, s := range fs {
		b[s.Key()]++
	}
	if len(a) != len(b) {
		t.Fatalf("signature sets differ: %v vs %v", a, b)
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("signature multiset differs at %s: %d vs %d", k, v, b[k])
		}
	}
}

func TestFormatUopBlocks(t *testing.T) {
	src := "uop Load { incr load.ret; }\nuop Store { incr store.ret; }\n"
	out, err := FormatSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "uop Load {") || !strings.Contains(out, "uop Store {") {
		t.Fatalf("uop blocks missing:\n%s", out)
	}
	if _, err := Parse(out); err != nil {
		t.Fatalf("formatted uop source does not parse: %v", err)
	}
}

func TestFormatInlineCases(t *testing.T) {
	out, err := FormatSource("switch P { A => incr x; B => done; };")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "A => incr x;") {
		t.Fatalf("single statements should stay inline:\n%s", out)
	}
}

func TestFormatBadSource(t *testing.T) {
	if _, err := FormatSource("bogus;"); err == nil {
		t.Fatal("bad source should error")
	}
}
