package sweep

import (
	"context"
	"fmt"

	"repro/internal/counters"
	"repro/internal/haswell"
	"repro/internal/pagetable"
	"repro/internal/workloads"
)

// BaseSpec sizes the sweep's base corpus: the ground-truth observations
// every derived event is synthesised from. The grid multiplies whatever
// is simulated here by hundreds of cells, so the base stays deliberately
// small — six workloads chosen to exercise distinct counter regimes
// (including the descending non-dividing-stride Linear and minimum-
// footprint Random parameterisations the generator bugfixes unblocked).
type BaseSpec struct {
	// Samples and UopsPerSample control each observation's time series.
	Samples       int
	UopsPerSample int
	// Seed offsets all workload and simulator seeds; the whole corpus —
	// and therefore the whole sweep — is a pure function of it.
	Seed int64
}

// DefaultBaseSpec is the service-scale base corpus.
func DefaultBaseSpec() BaseSpec {
	return BaseSpec{Samples: 12, UopsPerSample: 6000, Seed: 1}
}

func (s BaseSpec) withDefaults() BaseSpec {
	d := DefaultBaseSpec()
	if s.Samples <= 0 {
		s.Samples = d.Samples
	}
	if s.UopsPerSample <= 0 {
		s.UopsPerSample = d.UopsPerSample
	}
	return s
}

type baseEntry struct {
	label string
	ps    pagetable.PageSize
	gen   func(seed int64) (workloads.Generator, error)
}

// baseEntries is the flat workload table behind every sweep. Order is
// load-bearing: entry index feeds each simulator seed, and resumed jobs
// rebuild the corpus expecting bit-identical samples.
var baseEntries = []baseEntry{
	{"burst8-256m", pagetable.Page4K, func(seed int64) (workloads.Generator, error) {
		return workloads.NewRandomBurst(256<<20, 8, 0.8, seed+11)
	}},
	{"random-24m", pagetable.Page4K, func(seed int64) (workloads.Generator, error) {
		return workloads.NewRandom(24<<20, 1.0, seed+23)
	}},
	{"random-2mpage", pagetable.Page2M, func(seed int64) (workloads.Generator, error) {
		return workloads.NewRandom(8<<30, 0.9, seed+31)
	}},
	// Descending linear whose stride does not divide the footprint: the
	// exact shape the pre-fix Linear turned into 2^64-wrapped addresses.
	{"linear-desc-nondiv", pagetable.Page4K, func(seed int64) (workloads.Generator, error) {
		return workloads.NewLinear(32<<20+100, 64, 1.0, true)
	}},
	{"stencil-loop", pagetable.Page4K, func(seed int64) (workloads.Generator, error) {
		return workloads.NewStencil(160<<10, 0.9)
	}},
	{"zipfian-64m", pagetable.Page4K, func(seed int64) (workloads.Generator, error) {
		return workloads.NewZipfian(64<<20, 1.3, 0.85, seed+47)
	}},
}

// BuildBaseCorpus simulates the sweep's workload table on the ground-truth
// hardware and returns one observation per entry, extended with the
// walk_ref aggregate. Entries run sequentially so the context is honoured
// between simulations (corpus synthesis is the slow prefix of a sweep
// job, and a cancelled job must not keep simulating).
func BuildBaseCorpus(ctx context.Context, spec BaseSpec) ([]*counters.Observation, error) {
	spec = spec.withDefaults()
	obs := make([]*counters.Observation, 0, len(baseEntries))
	for i, e := range baseEntries {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		gen, err := e.gen(spec.Seed)
		if err != nil {
			return nil, fmt.Errorf("sweep: corpus %s: %w", e.label, err)
		}
		cfg := haswell.DefaultConfig(e.ps)
		cfg.Seed = spec.Seed + int64(i)
		sim := haswell.NewSimulator(cfg)
		// Warm up: one sample's worth of micro-ops reaches steady state.
		sim.Step(gen, spec.UopsPerSample)
		o := sim.Observation(gen, spec.Samples, spec.UopsPerSample)
		o.Label = e.label + "/" + o.Label
		obs = append(obs, haswell.WithAggregateWalkRef(o))
	}
	return obs, nil
}
