package sweep

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/counters"
	"repro/internal/haswell"
)

// makeBase hand-builds a tiny deterministic base corpus (no simulation):
// two observations over the ground-truth set, values below 256, extended
// with the walk_ref aggregate like the real corpus.
func makeBase(t *testing.T) []*counters.Observation {
	t.Helper()
	gt := haswell.GroundTruthSet()
	var out []*counters.Observation
	for k := 0; k < 2; k++ {
		o := counters.NewObservation("synthetic", gt)
		for s := 0; s < 3; s++ {
			row := make([]float64, gt.Len())
			for j := range row {
				row[j] = float64((k*97 + s*31 + j*7) % 200)
			}
			o.Append(row)
		}
		out = append(out, haswell.WithAggregateWalkRef(o))
	}
	return out
}

func TestGridCellsOrderAndSize(t *testing.T) {
	g := Grid{Events: []uint8{0x10, 0x20}, Umasks: []uint8{0x01, 0x03}, Cmasks: []uint8{0x00}}
	if g.Size() != 4 {
		t.Fatalf("size: %d", g.Size())
	}
	cells := g.Cells()
	want := []RawConfig{
		{0x10, 0x01, 0x00}, {0x10, 0x03, 0x00},
		{0x20, 0x01, 0x00}, {0x20, 0x03, 0x00},
	}
	if !reflect.DeepEqual(cells, want) {
		t.Fatalf("cells: %v", cells)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Grid{Events: []uint8{1}}).Validate(); err == nil {
		t.Fatal("empty axes should be rejected")
	}
}

func TestDefaultGridDwarfsCatalogue(t *testing.T) {
	g := DefaultGrid()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cat := len(haswell.Catalog())
	if g.Size() < 10*cat {
		t.Fatalf("default grid has %d cells, want >= 10x the %d-model catalogue", g.Size(), cat)
	}
	// The architectural selector must be part of the stock scan.
	found := false
	for _, e := range g.Events {
		if e == EventPageWalkerLoads {
			found = true
		}
	}
	if !found {
		t.Fatalf("default grid omits event %#x", EventPageWalkerLoads)
	}
}

func TestRawConfigCode(t *testing.T) {
	c := RawConfig{Event: 0x0D, Umask: 0x03, Cmask: 0x01}
	if c.Code() != 0x100030D {
		t.Fatalf("code: %#x", c.Code())
	}
	if c.String() != "0x100030d" {
		t.Fatalf("string: %q", c)
	}
}

func TestDecoderDeterministicAcrossInstances(t *testing.T) {
	base := makeBase(t)
	target := haswell.AnalysisSet()
	d1, err := NewDecoder(7, base, target)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDecoder(7, base, target)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range DefaultGrid().Cells() {
		a, b := d1.Decode(cfg), d2.Decode(cfg)
		if a.Sig != b.Sig {
			t.Fatalf("%s: signatures diverge: %q vs %q", cfg, a.Sig, b.Sig)
		}
		for i := range a.Corpus {
			if !reflect.DeepEqual(a.Corpus[i].Samples, b.Corpus[i].Samples) {
				t.Fatalf("%s: derived samples diverge at obs %d", cfg, i)
			}
		}
	}
	if d1.UniqueBehaviours() != d2.UniqueBehaviours() {
		t.Fatalf("behaviour counts diverge: %d vs %d", d1.UniqueBehaviours(), d2.UniqueBehaviours())
	}
	if d1.UniqueBehaviours() >= DefaultGrid().Size() {
		t.Fatalf("no aliasing across %d cells (%d behaviours)", DefaultGrid().Size(), d1.UniqueBehaviours())
	}
}

func TestDecoderUmaskAliasing(t *testing.T) {
	d, err := NewDecoder(1, makeBase(t), haswell.AnalysisSet())
	if err != nil {
		t.Fatal(err)
	}
	// Umask bits at or above BankSlots are ignored: 0x1F and 0x0F alias,
	// 0x11 and 0x01 alias — and aliasing means the SAME derivation back,
	// pointer for pointer (that is what feeds the engine's region cache).
	pairs := [][2]RawConfig{
		{{Event: 0x42, Umask: 0x0F}, {Event: 0x42, Umask: 0x1F}},
		{{Event: 0x42, Umask: 0x01}, {Event: 0x42, Umask: 0x11}},
		{{Event: 0x42, Umask: 0xFF}, {Event: 0x42, Umask: 0x0F}},
	}
	for _, p := range pairs {
		a, b := d.Decode(p[0]), d.Decode(p[1])
		if a != b {
			t.Fatalf("%s and %s should alias to one *Derived", p[0], p[1])
		}
		for i := range a.Corpus {
			if a.Corpus[i] != b.Corpus[i] {
				t.Fatalf("aliased derivations must share observation pointers")
			}
		}
	}
	if a, b := d.Decode(RawConfig{Event: 0x42, Umask: 0x01}), d.Decode(RawConfig{Event: 0x42, Umask: 0x03}); a == b {
		t.Fatalf("distinct umasks should not alias")
	}
}

func TestDecoderCmaskGatesToZero(t *testing.T) {
	d, err := NewDecoder(1, makeBase(t), haswell.AnalysisSet())
	if err != nil {
		t.Fatal(err)
	}
	zero := d.Decode(RawConfig{Event: 0x42, Umask: 0x00})
	if zero.Sig != "zero" {
		t.Fatalf("umask 0 signature: %q", zero.Sig)
	}
	// Synthetic base values stay under 200 per column, so a threshold of
	// 0x10<<8 = 4096 gates every sample: different signature, identical
	// derived content (content-level aliasing the LP cache must catch).
	gated := d.Decode(RawConfig{Event: 0x42, Umask: 0x0F, Cmask: 0x10})
	if gated == zero {
		t.Fatal("distinct signatures should not share a derivation")
	}
	agg, _ := haswell.AnalysisSet().Index(haswell.AggregateWalkRef)
	for i := range gated.Corpus {
		for s, row := range gated.Corpus[i].Samples {
			if row[agg] != 0 {
				t.Fatalf("obs %d sample %d: gated value %g, want 0", i, s, row[agg])
			}
			if !reflect.DeepEqual(row, zero.Corpus[i].Samples[s]) {
				t.Fatalf("obs %d sample %d: gated row differs from zero row", i, s)
			}
		}
	}
}

// TestDecoderArchitecturalEvent pins the feasible alias: event 0xBC with
// umask 0x0F at cmask 0 must reproduce the walk_ref aggregate exactly, so
// its derived corpus is the base corpus projected onto the analysis set.
func TestDecoderArchitecturalEvent(t *testing.T) {
	base := makeBase(t)
	target := haswell.AnalysisSet()
	d, err := NewDecoder(99, base, target)
	if err != nil {
		t.Fatal(err)
	}
	dv := d.Decode(RawConfig{Event: EventPageWalkerLoads, Umask: 0x0F})
	for i, o := range dv.Corpus {
		want := base[i].Project(target)
		if !reflect.DeepEqual(o.Samples, want.Samples) {
			t.Fatalf("obs %d: architectural derivation differs from base projection", i)
		}
	}
}

func TestDecoderRejectsBadInputs(t *testing.T) {
	base := makeBase(t)
	if _, err := NewDecoder(1, nil, haswell.AnalysisSet()); err == nil {
		t.Fatal("empty base should be rejected")
	}
	// Target without the walk_ref aggregate has nothing to synthesise into.
	if _, err := NewDecoder(1, base, haswell.GroundTruthSet()); err == nil {
		t.Fatal("target without the aggregate should be rejected")
	}
	// Mixed base sets.
	mixed := append([]*counters.Observation{}, base...)
	mixed = append(mixed, counters.NewObservation("odd", counters.NewSet("a", "b")))
	if _, err := NewDecoder(1, mixed, haswell.AnalysisSet()); err == nil {
		t.Fatal("mixed base sets should be rejected")
	}
}

func TestBuildBaseCorpusDeterministic(t *testing.T) {
	spec := BaseSpec{Samples: 2, UopsPerSample: 400, Seed: 5}
	a, err := BuildBaseCorpus(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildBaseCorpus(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(baseEntries) {
		t.Fatalf("corpus size: %d", len(a))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatalf("labels diverge: %q vs %q", a[i].Label, b[i].Label)
		}
		if seen[a[i].Label] {
			t.Fatalf("duplicate label %q", a[i].Label)
		}
		seen[a[i].Label] = true
		if !reflect.DeepEqual(a[i].Samples, b[i].Samples) {
			t.Fatalf("corpus %q not bit-identical across builds", a[i].Label)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildBaseCorpus(ctx, spec); err == nil {
		t.Fatal("cancelled context should abort the build")
	}
}
