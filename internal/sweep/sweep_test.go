package sweep

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/counters"
	"repro/internal/haswell"
)

// makeBase hand-builds a tiny deterministic base corpus (no simulation):
// two observations over the ground-truth set, values below 256, extended
// with the walk_ref aggregate like the real corpus.
func makeBase(t *testing.T) []*counters.Observation {
	t.Helper()
	gt := haswell.GroundTruthSet()
	var out []*counters.Observation
	for k := 0; k < 2; k++ {
		o := counters.NewObservation("synthetic", gt)
		for s := 0; s < 3; s++ {
			row := make([]float64, gt.Len())
			for j := range row {
				row[j] = float64((k*97 + s*31 + j*7) % 200)
			}
			o.Append(row)
		}
		out = append(out, haswell.WithAggregateWalkRef(o))
	}
	return out
}

func TestGridCellsOrderAndSize(t *testing.T) {
	g := Grid{Events: []uint8{0x10, 0x20}, Umasks: []uint8{0x01, 0x03}, Cmasks: []uint8{0x00}}
	if g.Size() != 4 {
		t.Fatalf("size: %d", g.Size())
	}
	cells := g.Cells()
	want := []RawConfig{
		{0x10, 0x01, 0x00}, {0x10, 0x03, 0x00},
		{0x20, 0x01, 0x00}, {0x20, 0x03, 0x00},
	}
	if !reflect.DeepEqual(cells, want) {
		t.Fatalf("cells: %v", cells)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Grid{Events: []uint8{1}}).Validate(); err == nil {
		t.Fatal("empty axes should be rejected")
	}
}

func TestDefaultGridDwarfsCatalogue(t *testing.T) {
	g := DefaultGrid()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cat := len(haswell.Catalog())
	if g.Size() < 10*cat {
		t.Fatalf("default grid has %d cells, want >= 10x the %d-model catalogue", g.Size(), cat)
	}
	// The architectural selector must be part of the stock scan.
	found := false
	for _, e := range g.Events {
		if e == EventPageWalkerLoads {
			found = true
		}
	}
	if !found {
		t.Fatalf("default grid omits event %#x", EventPageWalkerLoads)
	}
}

func TestRawConfigCode(t *testing.T) {
	c := RawConfig{Event: 0x0D, Umask: 0x03, Cmask: 0x01}
	if c.Code() != 0x100030D {
		t.Fatalf("code: %#x", c.Code())
	}
	if c.String() != "0x100030d" {
		t.Fatalf("string: %q", c)
	}
}

func TestDecoderDeterministicAcrossInstances(t *testing.T) {
	base := makeBase(t)
	target := haswell.AnalysisSet()
	d1, err := NewDecoder(7, base, target)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDecoder(7, base, target)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range DefaultGrid().Cells() {
		a, b := d1.Decode(cfg), d2.Decode(cfg)
		if a.Sig != b.Sig {
			t.Fatalf("%s: signatures diverge: %q vs %q", cfg, a.Sig, b.Sig)
		}
		for i := range a.Corpus {
			if !reflect.DeepEqual(a.Corpus[i].Samples, b.Corpus[i].Samples) {
				t.Fatalf("%s: derived samples diverge at obs %d", cfg, i)
			}
		}
	}
	if d1.UniqueBehaviours() != d2.UniqueBehaviours() {
		t.Fatalf("behaviour counts diverge: %d vs %d", d1.UniqueBehaviours(), d2.UniqueBehaviours())
	}
	if d1.UniqueBehaviours() >= DefaultGrid().Size() {
		t.Fatalf("no aliasing across %d cells (%d behaviours)", DefaultGrid().Size(), d1.UniqueBehaviours())
	}
}

func TestDecoderUmaskAliasing(t *testing.T) {
	d, err := NewDecoder(1, makeBase(t), haswell.AnalysisSet())
	if err != nil {
		t.Fatal(err)
	}
	// Umask bits at or above BankSlots are ignored: 0x1F and 0x0F alias,
	// 0x11 and 0x01 alias — and aliasing means the SAME derivation back,
	// pointer for pointer (that is what feeds the engine's region cache).
	pairs := [][2]RawConfig{
		{{Event: 0x42, Umask: 0x0F}, {Event: 0x42, Umask: 0x1F}},
		{{Event: 0x42, Umask: 0x01}, {Event: 0x42, Umask: 0x11}},
		{{Event: 0x42, Umask: 0xFF}, {Event: 0x42, Umask: 0x0F}},
	}
	for _, p := range pairs {
		a, b := d.Decode(p[0]), d.Decode(p[1])
		if a != b {
			t.Fatalf("%s and %s should alias to one *Derived", p[0], p[1])
		}
		for i := range a.Corpus {
			if a.Corpus[i] != b.Corpus[i] {
				t.Fatalf("aliased derivations must share observation pointers")
			}
		}
	}
	if a, b := d.Decode(RawConfig{Event: 0x42, Umask: 0x01}), d.Decode(RawConfig{Event: 0x42, Umask: 0x03}); a == b {
		t.Fatalf("distinct umasks should not alias")
	}
}

func TestDecoderCmaskGatesToZero(t *testing.T) {
	d, err := NewDecoder(1, makeBase(t), haswell.AnalysisSet())
	if err != nil {
		t.Fatal(err)
	}
	zero := d.Decode(RawConfig{Event: 0x42, Umask: 0x00})
	if zero.Sig != "zero" {
		t.Fatalf("umask 0 signature: %q", zero.Sig)
	}
	// Synthetic base values stay under 200 per column, so a threshold of
	// 0x10<<8 = 4096 gates every sample: different signature, identical
	// derived content (content-level aliasing the LP cache must catch).
	gated := d.Decode(RawConfig{Event: 0x42, Umask: 0x0F, Cmask: 0x10})
	if gated == zero {
		t.Fatal("distinct signatures should not share a derivation")
	}
	agg, _ := haswell.AnalysisSet().Index(haswell.AggregateWalkRef)
	for i := range gated.Corpus {
		for s, row := range gated.Corpus[i].Samples {
			if row[agg] != 0 {
				t.Fatalf("obs %d sample %d: gated value %g, want 0", i, s, row[agg])
			}
			if !reflect.DeepEqual(row, zero.Corpus[i].Samples[s]) {
				t.Fatalf("obs %d sample %d: gated row differs from zero row", i, s)
			}
		}
	}
}

// TestDecoderArchitecturalEvent pins the feasible alias: event 0xBC with
// umask 0x0F at cmask 0 must reproduce the walk_ref aggregate exactly, so
// its derived corpus is the base corpus projected onto the analysis set.
func TestDecoderArchitecturalEvent(t *testing.T) {
	base := makeBase(t)
	target := haswell.AnalysisSet()
	d, err := NewDecoder(99, base, target)
	if err != nil {
		t.Fatal(err)
	}
	dv := d.Decode(RawConfig{Event: EventPageWalkerLoads, Umask: 0x0F})
	for i, o := range dv.Corpus {
		want := base[i].Project(target)
		if !reflect.DeepEqual(o.Samples, want.Samples) {
			t.Fatalf("obs %d: architectural derivation differs from base projection", i)
		}
	}
}

func TestDecoderRejectsBadInputs(t *testing.T) {
	base := makeBase(t)
	if _, err := NewDecoder(1, nil, haswell.AnalysisSet()); err == nil {
		t.Fatal("empty base should be rejected")
	}
	// Target without the walk_ref aggregate has nothing to synthesise into.
	if _, err := NewDecoder(1, base, haswell.GroundTruthSet()); err == nil {
		t.Fatal("target without the aggregate should be rejected")
	}
	// Mixed base sets.
	mixed := append([]*counters.Observation{}, base...)
	mixed = append(mixed, counters.NewObservation("odd", counters.NewSet("a", "b")))
	if _, err := NewDecoder(1, mixed, haswell.AnalysisSet()); err == nil {
		t.Fatal("mixed base sets should be rejected")
	}
}

func TestPlanGroupsCellsBySignature(t *testing.T) {
	d, err := NewDecoder(7, makeBase(t), haswell.AnalysisSet())
	if err != nil {
		t.Fatal(err)
	}
	cells := DefaultGrid().Cells()
	plan := d.Plan(cells)
	if len(plan) == 0 || len(plan) >= len(cells) {
		t.Fatalf("%d classes for %d cells", len(plan), len(cells))
	}
	// The plan partitions the cell list: every index exactly once, class
	// members ascending, representatives in first-occurrence order.
	seen := make([]bool, len(cells))
	lastRep := -1
	for k, cl := range plan {
		if len(cl.Cells) == 0 {
			t.Fatalf("class %d is empty", k)
		}
		if cl.Cells[0] <= lastRep {
			t.Fatalf("class %d representative %d out of order (prev %d)", k, cl.Cells[0], lastRep)
		}
		lastRep = cl.Cells[0]
		prev := -1
		for _, i := range cl.Cells {
			if i <= prev {
				t.Fatalf("class %d cells not ascending: %v", k, cl.Cells)
			}
			prev = i
			if seen[i] {
				t.Fatalf("cell %d in two classes", i)
			}
			seen[i] = true
			// Membership is exactly signature equality.
			if got := d.Signature(cells[i]); got != cl.Sig {
				t.Fatalf("cell %d signature %q in class %q", i, got, cl.Sig)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("cell %d missing from the plan", i)
		}
	}
	// Planning is pure: no corpus was materialised.
	if d.UniqueBehaviours() != 0 {
		t.Fatalf("plan materialised %d derivations", d.UniqueBehaviours())
	}
}

// TestDecodeClassMatchesDecode pins the pooled path: DecodeClass must
// produce content bit-identical to the memoised Decode for every cell,
// including when its buffers are recycled across classes in arbitrary
// order.
func TestDecodeClassMatchesDecode(t *testing.T) {
	base := makeBase(t)
	target := haswell.AnalysisSet()
	ref, err := NewDecoder(7, base, target)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(7, base, target)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range DefaultGrid().Cells() {
		want := ref.Decode(cfg)
		dv := d.DecodeClass(cfg)
		if dv.Sig != want.Sig {
			t.Fatalf("%s: signature %q, want %q", cfg, dv.Sig, want.Sig)
		}
		for i := range dv.Corpus {
			if dv.Corpus[i].Label != want.Corpus[i].Label {
				t.Fatalf("%s obs %d: label %q, want %q", cfg, i, dv.Corpus[i].Label, want.Corpus[i].Label)
			}
			if !reflect.DeepEqual(dv.Corpus[i].Samples, want.Corpus[i].Samples) {
				t.Fatalf("%s obs %d: pooled derivation diverges from memoised", cfg, i)
			}
		}
		// Releasing hands the same buffers to the next decode; the fill
		// must leave no residue (every column overwritten).
		d.Release(dv)
	}
}

func TestDecodeClassIsConcurrencySafe(t *testing.T) {
	base := makeBase(t)
	target := haswell.AnalysisSet()
	d, err := NewDecoder(3, base, target)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewDecoder(3, base, target)
	if err != nil {
		t.Fatal(err)
	}
	cells := DefaultGrid().Cells()
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := w; i < len(cells); i += 8 {
				dv := d.DecodeClass(cells[i])
				sig := dv.Sig
				d.Release(dv)
				if want := ref.Signature(cells[i]); sig != want {
					errs <- fmt.Errorf("cell %d: %q want %q", i, sig, want)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestLargeGridReachesHundredFold(t *testing.T) {
	g := LargeGrid()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cat := len(haswell.Catalog())
	if g.Size() < 100*cat {
		t.Fatalf("large grid has %d cells, want >= 100x the %d-model catalogue", g.Size(), cat)
	}
	found := false
	for _, e := range g.Events {
		if e == EventPageWalkerLoads {
			found = true
		}
	}
	if !found {
		t.Fatalf("large grid omits event %#x", EventPageWalkerLoads)
	}
	// The aliased umask axis must collapse a meaningful share of the grid.
	d, err := NewDecoder(1, makeBase(t), haswell.AnalysisSet())
	if err != nil {
		t.Fatal(err)
	}
	if plan := d.Plan(g.Cells()); len(plan)*3 > 2*g.Size() {
		t.Fatalf("large grid barely aliases: %d classes for %d cells", len(plan), g.Size())
	}
}

func TestBuildBaseCorpusDeterministic(t *testing.T) {
	spec := BaseSpec{Samples: 2, UopsPerSample: 400, Seed: 5}
	a, err := BuildBaseCorpus(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildBaseCorpus(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(baseEntries) {
		t.Fatalf("corpus size: %d", len(a))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatalf("labels diverge: %q vs %q", a[i].Label, b[i].Label)
		}
		if seen[a[i].Label] {
			t.Fatalf("duplicate label %q", a[i].Label)
		}
		seen[a[i].Label] = true
		if !reflect.DeepEqual(a[i].Samples, b[i].Samples) {
			t.Fatalf("corpus %q not bit-identical across builds", a[i].Label)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildBaseCorpus(ctx, spec); err == nil {
		t.Fatal("cancelled context should abort the build")
	}
}
