// Package sweep expands a raw hardware-counter config grid — event ×
// umask × cmask, the axes a perf_event_attr encodes — into synthetic
// "hidden event" counter columns over a simulated corpus, the workload
// behind the service's POST /v1/sweep endpoint.
//
// The paper refutes assumptions against a hand-curated catalogue of
// documented Haswell MMU events; "Exploration and Exploitation of Hidden
// PMU Events" (arXiv:2304.12072) shows the interesting regime is the
// thousands of *undocumented* encodings an event-select MSR accepts.
// This package stands in for that hidden space: a deterministic, seeded
// Decoder maps every raw config onto a behaviour synthesised from the
// simulator's ground-truth counters, and the engine is asked, per
// encoding, whether the derived event could be the page-walker reference
// count the discovered model expects (the walk_ref aggregate). Encodings
// whose behaviour is consistent survive; the rest are refuted — at grid
// sizes 10–100× the haswell-mmu catalogue, which is exactly the stress
// test the engine's content-addressed LP/verdict caches exist for.
//
// Hidden-space structure (all deliberate, all deterministic in the seed):
//
//   - Each event selector indexes a bank of BankSlots ground-truth
//     counters through a seeded permutation; umask bits select bank
//     members to sum. Umask bits at or above BankSlots are ignored, so
//     umasks equal modulo 1<<BankSlots alias to the same behaviour —
//     real PMUs are full of such aliases, and aliased cells must hit the
//     engine's caches instead of re-solving.
//   - A non-zero cmask gates each sample: totals below cmask<<8 read as
//     zero (a threshold counter). A cmask high enough to gate everything
//     aliases with umask 0.
//   - Event EventPageWalkerLoads (0xBC, the documented Haswell
//     page_walker_loads selector) is architectural: its bank is exactly
//     walk_ref.{l1,l2,l3,mem}, so umask 0x0F at cmask 0 reproduces the
//     walk_ref aggregate bit for bit and must be found feasible.
//
// Decoding memoises by selection signature: two configs that alias
// return the *same* *Derived (same observation pointers), so the
// engine's pointer-keyed region cache — and, through region content
// hashes, the LP and verdict caches — dedup across grid cells.
//
// For grid-scale scans the Decoder also acts as a planner: Plan groups a
// cell list into behaviour classes by signature before anything is
// materialised or solved, so a batched scan evaluates one representative
// corpus per class (DecodeClass, pooled buffers) and copies the verdict
// onto every aliased cell without touching the engine.
package sweep

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/counters"
	"repro/internal/haswell"
)

// RawConfig is one raw counter configuration: the event-select, unit-mask
// and counter-mask fields of a perf-style encoding.
type RawConfig struct {
	Event uint8 `json:"event"`
	Umask uint8 `json:"umask"`
	Cmask uint8 `json:"cmask"`
}

// Code packs the config in the perf event encoding (cmask<<24 | umask<<8
// | event), the form Snippet-3-style flat config tables use.
func (c RawConfig) Code() uint32 {
	return uint32(c.Cmask)<<24 | uint32(c.Umask)<<8 | uint32(c.Event)
}

// String renders the packed code in hex, e.g. "0x100030d".
func (c RawConfig) String() string { return fmt.Sprintf("%#x", c.Code()) }

// EventPageWalkerLoads is the architectural event selector (Haswell's
// documented page_walker_loads event code): its bank is exactly the four
// walk_ref level counters, so umask 0x0F at cmask 0 is the true walk_ref
// aggregate.
const EventPageWalkerLoads uint8 = 0xBC

// Grid declares a raw config space as three flat axes; its cells are the
// cross product.
type Grid struct {
	Events []uint8
	Umasks []uint8
	Cmasks []uint8
}

// Validate rejects grids with an empty axis.
func (g Grid) Validate() error {
	if len(g.Events) == 0 || len(g.Umasks) == 0 || len(g.Cmasks) == 0 {
		return fmt.Errorf("sweep: grid needs at least one event, umask and cmask")
	}
	return nil
}

// Size returns the number of grid cells.
func (g Grid) Size() int { return len(g.Events) * len(g.Umasks) * len(g.Cmasks) }

// Cells expands the grid in deterministic order: event-major, then umask,
// then cmask. Cell indices — checkpoint offsets included — refer to this
// order.
func (g Grid) Cells() []RawConfig {
	out := make([]RawConfig, 0, g.Size())
	for _, e := range g.Events {
		for _, u := range g.Umasks {
			for _, c := range g.Cmasks {
				out = append(out, RawConfig{Event: e, Umask: u, Cmask: c})
			}
		}
	}
	return out
}

// DefaultGrid is the stock hidden-event scan: 16 event selectors (real
// Haswell event codes, the architectural page_walker_loads selector
// included) × 8 umasks × 3 cmasks = 384 cells, >10× the haswell-mmu model
// catalogue. Declared as flat tables in the style of the hidden-PMU
// scanners' config arrays.
func DefaultGrid() Grid {
	return Grid{
		Events: []uint8{
			0x08, 0x0D, 0x24, 0x3C, 0x49, 0x4F, 0x51, 0x5C,
			0x85, 0xA1, 0xAE, EventPageWalkerLoads, 0xC2, 0xD0, 0xD1, 0xF0,
		},
		Umasks: []uint8{0x00, 0x01, 0x03, 0x0F, 0x11, 0x1F, 0x81, 0xFF},
		Cmasks: []uint8{0x00, 0x01, 0x10},
	}
}

// LargeGrid pushes the scan toward the hidden-PMU papers' 100× regime:
// 64 event selectors × 16 umasks × 4 cmasks = 4096 cells, >100× the
// haswell-mmu catalogue yet still under the service's default
// -max-sweep-cells cap. The umask axis deliberately repeats low nibbles
// across high bits (0x11 aliases 0x01, 0xF3 aliases 0x03, ...) the way
// real PMU encodings do, so roughly half the grid collapses onto already-
// planned behaviour classes.
func LargeGrid() Grid {
	return Grid{
		Events: []uint8{
			0x03, 0x05, 0x08, 0x0D, 0x0E, 0x10, 0x11, 0x14,
			0x24, 0x27, 0x2E, 0x3C, 0x48, 0x49, 0x4C, 0x4F,
			0x51, 0x58, 0x5C, 0x5E, 0x60, 0x63, 0x79, 0x80,
			0x85, 0x87, 0x88, 0x89, 0x9C, 0xA1, 0xA2, 0xA3,
			0xA8, 0xAB, 0xAE, 0xB0, 0xB1, 0xB7, EventPageWalkerLoads, 0xBD,
			0xC0, 0xC1, 0xC2, 0xC3, 0xC4, 0xC5, 0xC8, 0xCA,
			0xCC, 0xD0, 0xD1, 0xD2, 0xD3, 0xE6, 0xF0, 0xF1,
			0xF2, 0xF4, 0x6C, 0x6D, 0x6E, 0x6F, 0x70, 0x71,
		},
		Umasks: []uint8{
			0x00, 0x01, 0x02, 0x03, 0x05, 0x07, 0x0B, 0x0F,
			0x11, 0x13, 0x1F, 0x33, 0x55, 0x7F, 0xAA, 0xFF,
		},
		Cmasks: []uint8{0x00, 0x01, 0x04, 0x10},
	}
}

// BankSlots is the number of ground-truth counters an event selector's
// bank exposes; umask bits at or above it are ignored (aliasing).
const BankSlots = 4

// cmaskShift scales the 8-bit cmask into a per-sample threshold
// (threshold = cmask << cmaskShift).
const cmaskShift = 8

// Derived is one decoded behaviour: the derived corpus for every base
// observation, over the decoder's target set, with the walk_ref aggregate
// column replaced by the synthesised event. Aliasing configs share one
// *Derived — pointer equality is the aliasing test.
type Derived struct {
	// Sig is the behaviour's content signature (selected ground-truth
	// columns plus threshold).
	Sig string
	// Corpus holds one derived observation per base observation, in base
	// order.
	Corpus []*counters.Observation
}

// Class is one behaviour class of a planned scan: the cells whose
// configs decode to the same derived corpus. Cells holds ascending
// cell-list indices; Cells[0] is the representative a batched scan
// actually evaluates, the rest inherit its verdict.
type Class struct {
	Sig   string
	Cells []int
}

// Decoder deterministically maps raw configs onto derived corpora over a
// fixed base corpus. Decode memoises by behaviour, so aliased configs
// reuse observation pointers; Decode/UniqueBehaviours are not safe for
// concurrent use. Plan, Signature, DecodeClass and Release never touch
// the memo and may be called from concurrent scan workers.
type Decoder struct {
	seed    int64
	base    []*counters.Observation
	target  *counters.Set
	sources []int // base-set column indices selectable by hashed banks
	perm    []int // seeded permutation of sources
	refBank []int // base-set columns of walk_ref.{l1,l2,l3,mem}
	proj    []int // base-set column per target column (-1 for the aggregate)
	aggPos  int   // aggregate column in target
	memo    map[string]*Derived
	pool    sync.Pool // *Derived shaped for base×target, recycled by DecodeClass/Release
}

// Plan groups cells into behaviour classes by signature, in first-
// occurrence order, without materialising a single corpus — the planning
// stage of a batched scan. Representatives (Cells[0]) are therefore in
// ascending cell order across classes, which is what lets a batched
// evaluator commit verdicts in exact grid order.
func (d *Decoder) Plan(cells []RawConfig) []Class {
	index := make(map[string]int, len(cells))
	var classes []Class
	for i, cfg := range cells {
		sig := d.Signature(cfg)
		k, ok := index[sig]
		if !ok {
			k = len(classes)
			index[sig] = k
			classes = append(classes, Class{Sig: sig})
		}
		classes[k].Cells = append(classes[k].Cells, i)
	}
	return classes
}

// NewDecoder builds a decoder over base (simulator ground-truth
// observations, walk_ref aggregate included) producing derived corpora
// over target. Every target event except the walk_ref aggregate must be
// recorded by the base corpus — silently zero-filled counters would make
// every verdict meaningless.
func NewDecoder(seed int64, base []*counters.Observation, target *counters.Set) (*Decoder, error) {
	if len(base) == 0 {
		return nil, fmt.Errorf("sweep: decoder needs a base corpus")
	}
	set := base[0].Set
	for _, o := range base[1:] {
		if !o.Set.Equal(set) {
			return nil, fmt.Errorf("sweep: base corpus mixes counter sets (%q vs %q)", o.Set, set)
		}
	}
	aggPos, ok := target.Index(haswell.AggregateWalkRef)
	if !ok {
		return nil, fmt.Errorf("sweep: target set must contain %s", haswell.AggregateWalkRef)
	}
	d := &Decoder{
		seed:   seed,
		base:   base,
		target: target,
		aggPos: aggPos,
		proj:   make([]int, target.Len()),
		memo:   map[string]*Derived{},
	}
	for j := 0; j < target.Len(); j++ {
		e := target.At(j)
		if j == aggPos {
			d.proj[j] = -1
			continue
		}
		i, ok := set.Index(e)
		if !ok {
			return nil, fmt.Errorf("sweep: base corpus does not record target counter %s", e)
		}
		d.proj[j] = i
	}
	for _, e := range []counters.Event{counters.WalkRefL1, counters.WalkRefL2, counters.WalkRefL3, counters.WalkRefMem} {
		i, ok := set.Index(e)
		if !ok {
			return nil, fmt.Errorf("sweep: base corpus does not record %s", e)
		}
		d.refBank = append(d.refBank, i)
	}
	// Bank sources: every base column except the aggregate itself (the
	// synthesised event must derive from ground truth, not from a prior
	// derivation).
	for i, e := range set.Events() {
		if e == haswell.AggregateWalkRef {
			continue
		}
		d.sources = append(d.sources, i)
	}
	if len(d.sources) < BankSlots {
		return nil, fmt.Errorf("sweep: base corpus has %d selectable counters, need at least %d", len(d.sources), BankSlots)
	}
	d.perm = seededPerm(seed, len(d.sources))
	return d, nil
}

// seededPerm is a Fisher–Yates shuffle driven by splitmix64, so the
// permutation depends only on the seed (no math/rand version drift).
func seededPerm(seed int64, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	x := uint64(seed) ^ 0x9E3779B97F4A7C15
	next := func() uint64 {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// bankStart hashes an event selector to its bank's starting position in
// the permuted source list.
func bankStart(seed int64, event uint8) int {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(event) + 0x632BE59BD9B4E019
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int(z % uint64(1<<62)) // keep it non-negative before the caller's mod
}

// bank returns the base-set columns behind an event selector's BankSlots
// slots.
func (d *Decoder) bank(event uint8) []int {
	if event == EventPageWalkerLoads {
		return d.refBank
	}
	start := bankStart(d.seed, event) % len(d.sources)
	out := make([]int, BankSlots)
	for b := 0; b < BankSlots; b++ {
		out[b] = d.sources[d.perm[(start+b)%len(d.sources)]]
	}
	return out
}

// selection resolves a config to the base columns it sums and its gating
// threshold. Umask bits at or above BankSlots are ignored.
func (d *Decoder) selection(cfg RawConfig) (cols []int, threshold float64) {
	bank := d.bank(cfg.Event)
	for b := 0; b < BankSlots; b++ {
		if cfg.Umask&(1<<b) != 0 {
			cols = append(cols, bank[b])
		}
	}
	sort.Ints(cols)
	// Duplicate columns are impossible within one bank, but two hashed
	// banks may overlap after the sort; keep duplicates — double-counting
	// is a legitimate hidden behaviour — so the signature stays faithful.
	return cols, float64(uint64(cfg.Cmask) << cmaskShift)
}

// Signature returns the behaviour signature cfg decodes to, without
// materialising the corpus (cheap aliasing queries for tests and stats).
func (d *Decoder) Signature(cfg RawConfig) string {
	cols, threshold := d.selection(cfg)
	return signature(cols, threshold)
}

func signature(cols []int, threshold float64) string {
	if len(cols) == 0 {
		return "zero"
	}
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprintf("c%d", c)
	}
	return fmt.Sprintf("%s|t%g", strings.Join(parts, "+"), threshold)
}

// newDerived allocates a Derived shaped for the decoder's base corpus
// and target set: one observation per base observation, each
// observation's rows carved out of a single flat backing array. The
// whole derivation costs len(base) backing allocations instead of one
// per sample row.
func (d *Decoder) newDerived() *Derived {
	n := d.target.Len()
	dv := &Derived{Corpus: make([]*counters.Observation, len(d.base))}
	for i, o := range d.base {
		out := counters.NewObservation("", d.target)
		backing := make([]float64, len(o.Samples)*n)
		out.Samples = make([][]float64, len(o.Samples))
		for s := range o.Samples {
			out.Samples[s] = backing[s*n : (s+1)*n : (s+1)*n]
		}
		dv.Corpus[i] = out
	}
	return dv
}

// fill overwrites every column of dv with cfg's decoded behaviour. Every
// target column is written unconditionally, which is what makes recycled
// buffers safe: nothing from the previous occupant survives.
func (d *Decoder) fill(dv *Derived, cols []int, threshold float64, sig string) {
	dv.Sig = sig
	for i, o := range d.base {
		out := dv.Corpus[i]
		out.Label = o.Label + "#" + sig
		for s, row := range o.Samples {
			r := out.Samples[s]
			for j, bi := range d.proj {
				if bi >= 0 {
					r[j] = row[bi]
				}
			}
			v := 0.0
			for _, ci := range cols {
				v += row[ci]
			}
			if threshold > 0 && v < threshold {
				v = 0
			}
			r[d.aggPos] = v
		}
	}
}

// Decode returns the derived corpus for cfg, memoised by behaviour:
// aliasing configs get the same *Derived back, observation pointers
// included.
func (d *Decoder) Decode(cfg RawConfig) *Derived {
	cols, threshold := d.selection(cfg)
	sig := signature(cols, threshold)
	if dv, ok := d.memo[sig]; ok {
		return dv
	}
	dv := d.newDerived()
	d.fill(dv, cols, threshold, sig)
	d.memo[sig] = dv
	return dv
}

// DecodeClass materialises cfg's derived corpus from the decoder's
// buffer pool, bypassing the memo: a planned scan decodes each behaviour
// class exactly once (Plan already collapsed the aliases), so memoising
// would only pin every class's corpus in memory for the whole scan.
// Safe for concurrent use. Call Release once the class verdict is
// committed so peak memory tracks in-flight classes, not grid size; the
// observations must not be retained past that point.
func (d *Decoder) DecodeClass(cfg RawConfig) *Derived {
	cols, threshold := d.selection(cfg)
	sig := signature(cols, threshold)
	dv, _ := d.pool.Get().(*Derived)
	if dv == nil {
		dv = d.newDerived()
	}
	d.fill(dv, cols, threshold, sig)
	return dv
}

// Release recycles a DecodeClass derivation's buffers for the next
// class. Never release a memoised Decode result — those are shared by
// pointer across aliased configs.
func (d *Decoder) Release(dv *Derived) { d.pool.Put(dv) }

// UniqueBehaviours counts the distinct behaviours decoded so far — the
// dedup denominator a full-grid scan reports next to its cell count.
func (d *Decoder) UniqueBehaviours() int { return len(d.memo) }
