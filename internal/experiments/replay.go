package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/haswell"
	"repro/internal/stats"
)

func init() {
	registry = append(registry, Experiment{
		Name:  "replay",
		Title: "Appendix C.4: page table walk replays as the bypass mechanism",
		Run:   runReplay,
	})
}

// runReplay reproduces Appendix C.4: replacing the abstract walk-bypassing
// feature with the mechanically concrete walk-replay feature (speculative
// walks abort on machine clears and are replayed non-speculatively at
// retirement, with the replay's references not recorded by walk_ref)
// yields a feasible model — and the feasibility depends on the other
// discovered features: removing miss-merging makes it infeasible again,
// demonstrating that CounterPoint's holistic modelling captures feature
// interactions that isolated analyses miss.
func runReplay(w io.Writer, opts Options) error {
	obs, err := corpus(opts)
	if err != nil {
		return err
	}
	set := haswell.AnalysisSet()

	// In cone terms a replayed walk is exactly a bypassed completion: the
	// walk_done increments, the references do not. The replay model is
	// therefore t0 with the bypass μpaths justified mechanically, plus the
	// abort capability replay requires (cleared walks of squashed μops).
	replay := haswell.DiscoveredModelFeatures()
	replay.PML4ECache = true // t0 derives from m4
	r0, err := haswell.BuildModel("r0", replay, set)
	if err != nil {
		return err
	}
	res, err := engine.EvaluateCorpus(context.Background(), r0, obs, core.DefaultConfidence, stats.Correlated, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "r0 (t0 with walk replay; replays' refs uncounted): %d/%d infeasible\n",
		res.Infeasible, res.Total)

	noMerge := replay
	noMerge.Merging = false
	r1, err := haswell.BuildModel("r0-minus-merging", noMerge, set)
	if err != nil {
		return err
	}
	res1, err := engine.EvaluateCorpus(context.Background(), r1, obs, core.DefaultConfidence, stats.Correlated, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "r0 without miss-merging:                           %d/%d infeasible\n",
		res1.Infeasible, res1.Total)
	if res.Infeasible == 0 && res1.Infeasible > 0 {
		fmt.Fprintln(w, "replay explains the missing walker references only together with")
		fmt.Fprintln(w, "the other discovered features (paper: \"removing other features ...")
		fmt.Fprintln(w, "makes the resulting model infeasible\")")
	}
	return nil
}
