package experiments

import (
	"context"
	"fmt"
	"io"
	"math/big"

	"repro/internal/cone"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/exact"
	"repro/internal/explore"
	"repro/internal/haswell"
	"repro/internal/multiplex"
	"repro/internal/pagetable"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// runTable1 verifies that the three representative Table 1 constraints are
// implied by the conventional (initial, m0-style) Haswell MMU model with
// per-level walker references.
func runTable1(w io.Writer, opts Options) error {
	f := haswell.ModelFeatures{RefMode: haswell.RefsPerLevel, ConservativeAborts: true}
	d, err := haswell.BuildDiagram("table1", f)
	if err != nil {
		return err
	}
	reg := counters.NewHaswellRegistry(false)
	set := counters.NewSet(reg.Events()...)
	m, err := core.NewModel("table1", d, set)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "model: conventional Haswell MMU (%d μpaths)\n", m.NumPaths())

	coeff := func(pairs map[counters.Event]int64) exact.Vec {
		v := exact.NewVec(set.Len())
		for e, c := range pairs {
			i, ok := set.Index(e)
			if !ok {
				panic(fmt.Sprintf("unknown event %q", e))
			}
			v[i] = big.NewRat(c, 1)
		}
		return v
	}
	refs := map[counters.Event]int64{
		counters.WalkRefL1: 1, counters.WalkRefL2: 1, counters.WalkRefL3: 1, counters.WalkRefMem: 1,
	}

	// Constraint (1): load.ret_stlb_miss <= load.walk_done.
	c1 := coeff(map[counters.Event]int64{"load.ret_stlb_miss": 1, "load.walk_done": -1})

	// Constraint (2): walk_ref <= load.causes_walk + store.causes_walk
	//   + 3 load.pde$_miss + 3 store.pde$_miss − load.walk_done_2m
	//   − store.walk_done_2m − 2 load.walk_done_1g − 2 store.walk_done_1g.
	p2 := map[counters.Event]int64{
		"load.causes_walk": -1, "store.causes_walk": -1,
		"load.pde$_miss": -3, "store.pde$_miss": -3,
		"load.walk_done_2m": 1, "store.walk_done_2m": 1,
		"load.walk_done_1g": 2, "store.walk_done_1g": 2,
	}
	for e := range refs {
		p2[e] = 1
	}
	c2 := coeff(p2)

	// Constraint (3): load.causes_walk + store.causes_walk +
	//   load.walk_done_1g + store.walk_done_1g <= walk_ref.
	p3 := map[counters.Event]int64{
		"load.causes_walk": 1, "store.causes_walk": 1,
		"load.walk_done_1g": 1, "store.walk_done_1g": 1,
	}
	for e := range refs {
		p3[e] = -1
	}
	c3 := coeff(p3)

	for i, cv := range []exact.Vec{c1, c2, c3} {
		k := cone.Constraint{Set: set, Coeffs: cv, Rel: cone.LEZero}
		fmt.Fprintf(w, "(%d) %s\n    implied by model: %v\n", i+1, k, m.Cone().Implies(k))
	}
	return nil
}

// runFig6 replays the guided-refinement walkthrough: the initial model is
// refuted, the violated constraint names the flaw, and the refined model
// (early PSC lookup + abortable requests) accepts the data because it
// contains a μpath whose signature violates C.
func runFig6(w io.Writer, opts Options) error {
	set := counters.NewSet("load.causes_walk", "load.pde$_miss")
	initial, err := core.ModelFromDSL("fig6a", `
incr load.causes_walk;
do LookupPde$;
switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss; };
done;
`, set)
	if err != nil {
		return err
	}
	refined, err := core.ModelFromDSL("fig6c", `
do LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => {
        incr load.pde$_miss;
        switch Abort { Yes => done; No => pass; };
    };
};
do StartWalk;
incr load.causes_walk;
done;
`, set)
	if err != nil {
		return err
	}
	// Ground-truth-like anomalous observation: pde$_miss > causes_walk.
	obs := anomalousObservation(set)
	v, err := initial.TestObservation(obs, core.DefaultConfidence, stats.Correlated, true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "initial model feasible: %v\n", v.Feasible)
	for _, k := range v.Violations {
		fmt.Fprintf(w, "violated: %s\n", k)
	}
	v2, err := refined.TestObservation(obs, core.DefaultConfidence, stats.Correlated, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "refined model feasible: %v\n", v2.Feasible)
	// Figure 6d: the refined μDD contains a μpath violating C.
	c := cone.Constraint{Set: set, Coeffs: exact.VecFromInts(-1, 1), Rel: cone.LEZero}
	fmt.Fprintf(w, "refined model still implies C: %v (must be false)\n", refined.Cone().Implies(c))
	for _, g := range refined.Cone().Generators {
		if !c.SatisfiedBy(g) {
			fmt.Fprintf(w, "μpath counter signature violating C: %v (Pde$Status=Miss, Abort=Yes)\n", g)
		}
	}
	return nil
}

func anomalousObservation(set *counters.Set) *counters.Observation {
	obs := counters.NewObservation("anomalous", set)
	for i := 0; i < 240; i++ {
		jitterA := float64(i%7) - 3
		jitterB := float64((i*13)%11) - 5
		obs.Append([]float64{2000 + 40*jitterA, 2600 + 40*jitterA + jitterB})
	}
	return obs
}

// modelTable runs a model catalogue over the corpus and prints a Table
// 3/5/7-style summary. All models share the default engine's session
// caches, so the corpus regions are built once for the whole catalogue
// (and once across all tables in one process).
func modelTable(w io.Writer, opts Options, models []haswell.NamedFeatures) error {
	obs, err := corpus(opts)
	if err != nil {
		return err
	}
	set := haswell.AnalysisSet()
	fmt.Fprintf(w, "%-5s %-50s %-6s\n", "model", "features", "#inf")
	for _, nf := range models {
		m, err := haswell.BuildModel(nf.Name, nf.Features, set)
		if err != nil {
			return err
		}
		res, err := engine.EvaluateCorpus(context.Background(), m, obs, core.DefaultConfidence, stats.Correlated, false)
		if err != nil {
			return err
		}
		star := " "
		if res.Infeasible == 0 {
			star = "*"
		}
		fmt.Fprintf(w, "%s%-4s %-50s %d/%d\n", star, nf.Name, haswell.FeatureString(nf.Features), res.Infeasible, res.Total)
	}
	return nil
}

func runTable3(w io.Writer, opts Options) error {
	return modelTable(w, opts, haswell.Table3Models())
}

func runTable5(w io.Writer, opts Options) error {
	return modelTable(w, opts, haswell.Table5Models())
}

func runTable7(w io.Writer, opts Options) error {
	return modelTable(w, opts, haswell.Table7Models())
}

// runFig10 runs the automated discovery/elimination search over the
// Table 3 feature space (haswell.SearchUniverse) and prints the search
// graph plus the Figure 7 classification. The frontier-parallel search is
// bit-identical to the sequential one, so the report is stable.
func runFig10(w io.Writer, opts Options) error {
	obs, err := corpus(opts)
	if err != nil {
		return err
	}
	universe := haswell.SearchUniverse()
	set := haswell.AnalysisSet()
	builder := func(fs explore.FeatureSet) (*core.Model, error) {
		return haswell.BuildModel("search:"+fs.Key(), haswell.SearchFeatures(func(f string) bool { return fs[f] }), set)
	}
	s := explore.NewSearch(builder, obs)
	final, err := s.Discover(explore.NewFeatureSet(), universe)
	if err != nil {
		return err
	}
	if final.Feasible() {
		if _, err := s.Eliminate(final, universe); err != nil {
			return err
		}
		// The paper's m4-vs-m8 ambiguity: adding the PML4E cache to the
		// discovered model must also be feasible, leaving the data unable
		// to resolve the root-level MMU cache.
		if !final.Features["pml4e"] {
			if _, err := s.Evaluate(final.Features.With("pml4e"), final.Features.Key(), explore.OpEnumerated); err != nil {
				return err
			}
		}
	}
	fmt.Fprint(w, s.GraphReport())
	c := s.Classify(universe)
	fmt.Fprintf(w, "required features (in every feasible model): %v\n", c.Required)
	fmt.Fprintf(w, "optional features (data cannot resolve):     %v\n", c.Optional)
	return nil
}

// measurementCorpus simulates the realistic measurement pipeline for the
// §7.1 statistics: phased workloads recorded at scheduler-slice granularity
// and multiplexed onto 8 physical counters (the paper's SMT-off setup), so
// the resulting samples carry correlated multiplexing noise like perf's.
func measurementCorpus(opts Options, set *counters.Set) ([]*counters.Observation, error) {
	samples := 40
	slices := 20
	if opts.Quick {
		samples = 16
	}
	var out []*counters.Observation
	for seed := int64(1); seed <= 4; seed++ {
		truth, err := corrTruth(samples, slices, 1000, seed)
		if err != nil {
			return nil, err
		}
		noisy, err := multiplex.Apply(truth.Project(set), multiplex.Config{
			PhysicalCounters: 8, SlicesPerSample: slices,
			RotationJitter: true, JitterSeed: seed,
		})
		if err != nil {
			return nil, err
		}
		noisy.Label = fmt.Sprintf("%s/mux%d", truth.Label, seed)
		out = append(out, noisy)
		if opts.Quick {
			break
		}
	}
	return out, nil
}

// corrTruth simulates a workload whose MMU intensity drifts on a timescale
// longer than one sample interval: phases of walk-heavy activity (with the
// merging violation) alternate with TLB-resident phases every 25k μops
// against 20k-μop samples. Every MMU counter rides the same intensity
// envelope, so counter pairs are strongly correlated across samples — the
// §7.1 structure ("over 25% of counter pairs have ρ > 0.9") that makes
// correlated confidence regions tight along constraint directions while
// independent regions blur into the common-mode swing.
func corrTruth(samples, slicesPerSample, uopsPerSlice int, seed int64) (*counters.Observation, error) {
	active, err := workloads.NewRandomBurst(512<<20, 4, 1.0, 40+seed)
	if err != nil {
		return nil, err
	}
	quiet, err := workloads.NewStencil(96<<10, 1.0)
	if err != nil {
		return nil, err
	}
	gen, err := workloads.NewPhased(active, 25000, quiet, 25000)
	if err != nil {
		return nil, err
	}
	cfg := haswell.DefaultConfig(pagetable.Page4K)
	cfg.Features.TLBPrefetch = false
	cfg.Seed = seed
	sim := haswell.NewSimulator(cfg)
	sim.Step(gen, 30000)
	return sim.Observation(gen, samples*slicesPerSample, uopsPerSlice), nil
}

// runCorrStats reports the §7.1 statistics: the fraction of strongly
// correlated counter pairs in multiplexed measurements and how many more
// violations correlated confidence regions detect than independent ones.
func runCorrStats(w io.Writer, opts Options) error {
	reg := counters.NewHaswellRegistry(false)
	set := counters.NewSet(reg.Events()...)
	obs, err := measurementCorpus(opts, set)
	if err != nil {
		return err
	}
	strong, total := 0.0, 0.0
	for _, o := range obs {
		cov := stats.Covariance(o.Samples)
		// Only counters that actually fired participate in the pair
		// statistic; idle counters have no correlation to speak of.
		var active []int
		for i := range cov {
			if cov[i][i] > 0 {
				active = append(active, i)
			}
		}
		sub := make([][]float64, len(active))
		for r, i := range active {
			sub[r] = make([]float64, len(active))
			for c, j := range active {
				sub[r][c] = cov[i][j]
			}
		}
		strong += stats.FractionPairsAbove(stats.Correlation(sub), 0.9)
		total++
	}
	fmt.Fprintf(w, "fraction of active counter pairs with |ρ| > 0.9: %.0f%% (paper: >25%%)\n",
		100*strong/total)

	// Detection comparison: test every deduced constraint of the refutable
	// non-merging model against each observation's region under both noise
	// modes (the paper counts model-constraint violations the same way).
	f := haswell.DiscoveredModelFeatures()
	f.Merging = false
	f.TLBPrefetch = false
	f.RefMode = haswell.RefsPerLevel
	m, err := haswell.BuildModel("corrstats", f, set)
	if err != nil {
		return err
	}
	h, err := m.Constraints()
	if err != nil {
		return err
	}
	viol := map[stats.NoiseMode]int{}
	byConstraint := map[stats.NoiseMode]map[string]int{
		stats.Correlated:  {},
		stats.Independent: {},
	}
	for _, o := range obs {
		for _, mode := range []stats.NoiseMode{stats.Correlated, stats.Independent} {
			r, err := stats.NewRegion(o, core.DefaultConfidence, mode)
			if err != nil {
				return err
			}
			for _, k := range h.All() {
				if core.RegionViolates(r, k) {
					viol[mode]++
					byConstraint[mode][k.String()]++
				}
			}
		}
	}
	for _, mode := range []stats.NoiseMode{stats.Correlated, stats.Independent} {
		for _, k := range sortedKeys(byConstraint[mode]) {
			fmt.Fprintf(w, "  [%s] %dx %s\n", mode, byConstraint[mode][k], k)
		}
	}
	fmt.Fprintf(w, "constraint violations detected, correlated regions:  %d\n", viol[stats.Correlated])
	fmt.Fprintf(w, "constraint violations detected, independent regions: %d\n", viol[stats.Independent])
	switch {
	case viol[stats.Independent] > 0:
		fmt.Fprintf(w, "correlated regions detect %.0f%% more violations (paper: >24%%)\n",
			100*float64(viol[stats.Correlated]-viol[stats.Independent])/float64(viol[stats.Independent]))
	case viol[stats.Correlated] > 0:
		fmt.Fprintf(w, "correlated regions detect %d violations the independent baseline misses entirely (paper: >24%% more)\n",
			viol[stats.Correlated])
	}
	return nil
}
