package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dcache"
	"repro/internal/errata"
	"repro/internal/haswell"
	"repro/internal/pagetable"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func init() {
	registry = append(registry,
		Experiment{
			Name:  "extension",
			Title: "Section 9 (future work): a second component — L1D stream prefetcher",
			Run:   runExtension,
		},
		Experiment{
			Name:  "errata",
			Title: "Section 7.1 footnote: counter errata corrupt verdicts unless SMT is off",
			Run:   runErrata,
		},
	)
}

// runExtension applies the full CounterPoint loop to a component other
// than the MMU: an L1 data cache with a next-line stream prefetcher.
func runExtension(w io.Writer, opts Options) error {
	sim, err := dcache.NewSim(dcache.DefaultConfig())
	if err != nil {
		return err
	}
	gen, err := workloads.NewLinear(8<<20, 64, 1.0, false)
	if err != nil {
		return err
	}
	obs := sim.Observation(gen, 20, 10000)

	conventional, err := core.ModelFromDSL("l1d-conventional", dcache.ConventionalModelSrc, dcache.Set())
	if err != nil {
		return err
	}
	v, err := conventional.TestObservation(obs, core.DefaultConfidence, stats.Correlated, true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "conventional model (fill = miss) on streaming workload: feasible=%v\n", v.Feasible)
	for _, k := range v.Violations {
		fmt.Fprintf(w, "  violated: %s\n", k)
	}
	refined, err := core.ModelFromDSL("l1d-prefetcher", dcache.PrefetcherModelSrc, dcache.Set())
	if err != nil {
		return err
	}
	v2, err := refined.TestObservation(obs, core.DefaultConfidence, stats.Correlated, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "refined model (+ stream prefetch μpaths):               feasible=%v\n", v2.Feasible)
	fmt.Fprintln(w, "the same refute-and-refine loop generalises beyond the MMU")
	return nil
}

// runErrata demonstrates the measurement-methodology hazard of footnote 9:
// SMT-triggered overcounting on mem_uops_retired falsely refutes the true
// model, and disabling SMT (the paper's mitigation) restores soundness.
func runErrata(w io.Writer, opts Options) error {
	sim := haswell.NewSimulator(haswell.DefaultConfig(pagetable.Page4K))
	gen, err := workloads.NewRandom(64<<20, 1.0, 3)
	if err != nil {
		return err
	}
	sim.Step(gen, 20000)
	samples := 16
	if !opts.Quick {
		samples = 24
	}
	truth := haswell.WithAggregateWalkRef(sim.Observation(gen, samples, 10000))
	set := haswell.AnalysisSet()
	m, err := haswell.BuildModel("true-model", haswell.DiscoveredModelFeatures(), set)
	if err != nil {
		return err
	}
	for _, smt := range []bool{false, true} {
		obs, fired := errata.Apply(truth, errata.MachineConfig{SMTEnabled: smt}, errata.Haswell())
		v, err := m.TestObservation(obs, core.DefaultConfidence, stats.Correlated, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "SMT=%-5v errata fired=%-8v true model feasible=%v\n", smt, fired, v.Feasible)
	}
	fmt.Fprintln(w, "(the paper disables SMT in the BIOS so HSD29/HSM30 cannot poison verdicts)")
	return nil
}
