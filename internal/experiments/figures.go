package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/cone"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/exact"
	"repro/internal/haswell"
	"repro/internal/multiplex"
	"repro/internal/pagetable"
	"repro/internal/perfdb"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// runFig1a prints the HEC census: named events per core and estimated
// system-wide addressable events per microarchitecture.
func runFig1a(w io.Writer, opts Options) error {
	fmt.Fprintf(w, "%-8s %-5s %-6s %-8s %-12s\n", "uarch", "year", "cores", "named", "addressable")
	for _, m := range perfdb.Census() {
		fmt.Fprintf(w, "%-8s %-5d %-6d %-8d %-12d\n",
			m.Name, m.Year, m.TypicalCores, m.Named(), m.Addressable())
	}
	fmt.Fprintf(w, "growth 2009→2019: %.1fx (paper: >10x)\n", perfdb.GrowthFactor())
	return nil
}

// fig1bModel is the μDD whose constraint count is swept: the discovered
// feature set plus the PML4E cache so the hypothetical MMU$ counters exist.
func fig1bModel() (haswell.ModelFeatures, error) {
	f := haswell.DiscoveredModelFeatures()
	f.PML4ECache = true
	return f, nil
}

// runFig1b deduces the complete model-constraint set per cumulative
// counter group and prints its superlinear growth.
func runFig1b(w io.Writer, opts Options) error {
	f, err := fig1bModel()
	if err != nil {
		return err
	}
	d, err := haswell.BuildDiagram("fig1b", f)
	if err != nil {
		return err
	}
	steps := analysisSteps(!opts.Quick)
	fmt.Fprintf(w, "%-8s %-10s %-13s %-11s\n", "group", "#counters", "#constraints", "time")
	for _, st := range steps {
		m, err := core.NewModel("fig1b/"+string(st.Group), d, st.Set)
		if err != nil {
			return err
		}
		t0 := time.Now()
		h, err := m.Constraints()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s %-10d %-13d %-11s\n",
			st.Group, st.Set.Len(), len(h.All()), time.Since(t0).Round(time.Millisecond))
	}
	return nil
}

// fig1cTruth simulates the Figure 1c measurement at scheduler-slice
// granularity: a phased workload whose merge-heavy phase violates Table 1
// constraint (1) by a modest margin, interleaved with a quiet phase so
// per-slice rates are non-stationary and multiplexing extrapolation is
// noisy.
func fig1cTruth(samples, slicesPerSample, uopsPerSlice int) (*counters.Observation, error) {
	// Phase A: bursty same-page pairs whose walks merge (each retired pair
	// books two ret_stlb_miss against one walk_done — the violation).
	// Phase B: plain random misses with one walk per retired miss. The mix
	// keeps the constraint-(1) violation margin near 10%, and the phase
	// alternation (700/1500 μops against 1000-μop scheduler slices) makes
	// per-slice rates non-stationary so extrapolation noise is substantial.
	bursty, err := workloads.NewRandomBurst(512<<20, 2, 0.85, 31)
	if err != nil {
		return nil, err
	}
	plain, err := workloads.NewRandom(64<<20, 0.85, 33)
	if err != nil {
		return nil, err
	}
	active, err := workloads.NewPhased(bursty, 1400, plain, 700)
	if err != nil {
		return nil, err
	}
	quiet, err := workloads.NewStencil(96<<10, 1.0)
	if err != nil {
		return nil, err
	}
	// The quiet phase spans multiple whole scheduler slices, so a counter
	// whose multiplexing slots land in the quiet window extrapolates from
	// near-zero activity — the bursty regime of real perf multiplexing.
	gen, err := workloads.NewPhased(active, 5400, quiet, 2600)
	if err != nil {
		return nil, err
	}
	cfg := haswell.DefaultConfig(pagetable.Page4K)
	cfg.Features.TLBPrefetch = false // isolate the merging violation
	sim := haswell.NewSimulator(cfg)
	sim.Step(gen, samples*uopsPerSlice)
	return sim.Observation(gen, samples*slicesPerSample, uopsPerSlice), nil
}

// fig1cCounterOrder puts constraint (1)'s counters first (Figure 1c's
// legend: ret_stlb_miss, walk_done, causes_walk, pde$_miss) followed by
// counters that add multiplexing noise but no additional violation signal.
// Store-side walk counters are omitted: they would re-encode the same
// merging violation and mask the noise effect the figure isolates.
func fig1cCounterOrder() []counters.Event {
	return []counters.Event{
		"load.ret_stlb_miss", "load.walk_done", "load.causes_walk", "load.pde$_miss",
		"load.ret", "load.stlb_hit", "load.stlb_hit_4k",
		"load.stlb_hit_2m", "load.walk_done_4k", "load.walk_done_2m",
		"load.walk_done_1g", "store.ret", "store.ret_stlb_miss",
		"store.stlb_hit", "store.stlb_hit_4k", "store.stlb_hit_2m",
		"store.pde$_miss",
		counters.WalkRefL1, counters.WalkRefL2, counters.WalkRefL3, counters.WalkRefMem,
	}
}

// runFig1c multiplexes increasing numbers of active HECs onto 4 physical
// counters and reports measurement noise and whether the constraint-(1)
// violation is still detected at 99% confidence.
func runFig1c(w io.Writer, opts Options) error {
	slices := 20
	samples := 30
	uopsPerSlice := 1000
	if opts.Quick {
		samples = 16
	}
	truth, err := fig1cTruth(samples, slices, uopsPerSlice)
	if err != nil {
		return err
	}
	order := fig1cCounterOrder()
	trials := 5
	counts := []int{4, 7, 10, 13, 16, 19, 21}
	if opts.Quick {
		counts = []int{4, 12, 21}
		trials = 2
	}
	fmt.Fprintf(w, "%-10s %-14s %-22s %-22s\n",
		"#counters", "noise(norm)", "detected(independent)", "detected(correlated)")
	base := -1.0
	for _, n := range counts {
		set := counters.NewSet(order[:n]...)
		// The representative model constraint of Figure 1c is Table 1's (1):
		// load.ret_stlb_miss ≤ load.walk_done, which walk merging on the
		// ground-truth hardware genuinely violates.
		coeffs := exact.NewVec(set.Len())
		iRsm, _ := set.Index("load.ret_stlb_miss")
		iDone, _ := set.Index("load.walk_done")
		coeffs[iRsm].SetInt64(1)
		coeffs[iDone].SetInt64(-1)
		c1 := cone.Constraint{Set: set, Coeffs: coeffs, Rel: cone.LEZero}

		detected := map[stats.NoiseMode]int{}
		noiseSum := 0.0
		for trial := 0; trial < trials; trial++ {
			mux := multiplex.Config{
				PhysicalCounters: 4, SlicesPerSample: slices,
				RotationJitter: true, JitterSeed: int64(trial + 1),
			}
			noisy, err := multiplex.Apply(truth.Project(set), mux)
			if err != nil {
				return err
			}
			noiseSum += multiplex.NoiseSummary(noisy)
			for _, mode := range []stats.NoiseMode{stats.Independent, stats.Correlated} {
				r, err := stats.NewRegion(noisy, core.DefaultConfidence, mode)
				if err != nil {
					return err
				}
				if core.RegionViolates(r, c1) {
					detected[mode]++
				}
			}
		}
		noise := noiseSum / float64(trials)
		if base < 0 {
			base = noise
			if base == 0 {
				base = 1
			}
		}
		fmt.Fprintf(w, "%-10d %-14.2f %d/%-20d %d/%-20d\n",
			n, noise/base, detected[stats.Independent], trials, detected[stats.Correlated], trials)
	}
	fmt.Fprintln(w, "(Detection rate of the constraint-(1) violation over multiplexing trials")
	fmt.Fprintln(w, " with 4 physical counters. The paper's Figure 1c: noise grows with active")
	fmt.Fprintln(w, " HECs until the violation can no longer be detected at 99% confidence —")
	fmt.Fprintln(w, " on their testbed beyond 19 active HECs, here beyond ~13-16.)")
	return nil
}

// runFig3 reproduces the Figure 3a–c demonstration: the same infeasible
// behaviour is detectable only with the right counters.
func runFig3(w io.Writer, opts Options) error {
	// μpath signatures of the Figure 3a model over
	// (causes_walk, walk_done, ret_stlb_miss):
	// retire (1,1,1); squashed-complete (1,1,0); squashed-abort (1,0,0).
	full := counters.NewSet("load.causes_walk", "load.walk_done", "load.ret_stlb_miss")
	sigs := []exact.Vec{
		exact.VecFromInts(1, 1, 1),
		exact.VecFromInts(1, 1, 0),
		exact.VecFromInts(1, 0, 0),
	}
	// The Figure 3a observation: more retired STLB misses than completed
	// walks (walk merging on the real hardware).
	obs := counters.NewObservation("fig3", full)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		obs.Append([]float64{
			300 + rng.NormFloat64(),
			295 + rng.NormFloat64(),
			299 + rng.NormFloat64(), // ret_stlb_miss > walk_done
		})
	}
	cases := []struct {
		name string
		set  *counters.Set
		// project the three-counter signatures onto the case's set
	}{
		{"3a: {causes_walk, walk_done, ret_stlb_miss}", full},
		{"3b: {causes_walk, ret_stlb_miss} (walk_done dropped)", counters.NewSet("load.causes_walk", "load.ret_stlb_miss")},
		{"3c: {causes_walk, pde$_miss, ret_stlb_miss} (substituted)", counters.NewSet("load.causes_walk", "load.pde$_miss", "load.ret_stlb_miss")},
	}
	for _, c := range cases {
		var ss []exact.Vec
		if c.set.Contains("load.pde$_miss") {
			// 3c: pde$_miss has subtly different semantics from walk_done —
			// any walk-causing micro-op may miss or hit the PDE cache
			// independent of retirement, so the only implied constraints are
			// pde$_miss <= causes_walk and ret_stlb_miss <= causes_walk,
			// which the observation satisfies: the violation slips through.
			ss = []exact.Vec{
				exact.VecFromInts(1, 1, 1), // retire, PDE miss
				exact.VecFromInts(1, 0, 1), // retire, PDE hit
				exact.VecFromInts(1, 1, 0), // squashed, PDE miss
				exact.VecFromInts(1, 0, 0), // squashed, PDE hit
			}
			j, _ := c.set.Index("load.pde$_miss")
			proj := obs.Project(c.set)
			for _, row := range proj.Samples {
				row[j] = 280 + rng.NormFloat64()
			}
			verdictLine(w, c.name, c.set, ss, proj)
			continue
		}
		for _, s := range sigs {
			v := exact.NewVec(c.set.Len())
			for i := 0; i < full.Len(); i++ {
				if j, ok := c.set.Index(full.At(i)); ok {
					v[j].Set(s[i])
				}
			}
			ss = append(ss, v)
		}
		verdictLine(w, c.name, c.set, ss, obs.Project(c.set))
	}
	return nil
}

func verdictLine(w io.Writer, name string, set *counters.Set, sigs []exact.Vec, obs *counters.Observation) {
	k := cone.New(set, sigs)
	r, err := stats.NewRegion(obs, core.DefaultConfidence, stats.Correlated)
	if err != nil {
		fmt.Fprintf(w, "%-55s error: %v\n", name, err)
		return
	}
	// Feasible iff some point of the region is in the cone; reuse the
	// H-representation for an exact check on the region box corners via LP
	// would duplicate core; instead test the region centre and the verdict
	// via the model-cone LP in core by wrapping the cone in a Model-less
	// test: the centre is representative for this demonstration.
	h, err := k.Constraints()
	if err != nil {
		fmt.Fprintf(w, "%-55s error: %v\n", name, err)
		return
	}
	violated := 0
	for _, kc := range h.All() {
		if core.RegionViolates(r, kc) {
			violated++
		}
	}
	verdict := "violation NOT detected"
	if violated > 0 {
		verdict = fmt.Sprintf("violation detected (%d constraints)", violated)
	}
	fmt.Fprintf(w, "%-55s %s\n", name, verdict)
}

// runFig3d compares correlated and independent confidence regions on
// multiplexed data (also Figure 5c's construction).
func runFig3d(w io.Writer, opts Options) error {
	truth, err := fig1cTruth(20, 20, 1000)
	if err != nil {
		return err
	}
	set := counters.NewSet("load.causes_walk", "load.pde$_miss")
	noisy, err := multiplex.Apply(truth.Project(set), multiplex.Config{PhysicalCounters: 1, SlicesPerSample: 20})
	if err != nil {
		return err
	}
	corr, err := stats.NewRegion(noisy, core.DefaultConfidence, stats.Correlated)
	if err != nil {
		return err
	}
	ind, err := stats.NewRegion(noisy, core.DefaultConfidence, stats.Independent)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "correlated  log-volume %8.2f  max half-width %10.1f\n", corr.LogVolume(), corr.MaxHalfWidth())
	fmt.Fprintf(w, "independent log-volume %8.2f  max half-width %10.1f\n", ind.LogVolume(), ind.MaxHalfWidth())
	fmt.Fprintf(w, "correlated region is e^%.2f = %.1fx smaller in volume\n",
		ind.LogVolume()-corr.LogVolume(), expApprox(ind.LogVolume()-corr.LogVolume()))
	return nil
}

func expApprox(x float64) float64 {
	// Small helper for the human-readable factor; clamp huge values.
	if x > 20 {
		return 4.8e8
	}
	e := 1.0
	term := 1.0
	for i := 1; i < 24; i++ {
		term *= x / float64(i)
		e += term
	}
	return e
}

// runFig5a deduces the model cone of the running PDE-cache example and
// prints its generators and facets.
func runFig5a(w io.Writer, opts Options) error {
	set := counters.NewSet("load.causes_walk", "load.pde$_miss")
	m, err := core.ModelFromDSL("fig5a", `
incr load.causes_walk;
do LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => incr load.pde$_miss;
};
done;
`, set)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "μpaths: %d\n", m.NumPaths())
	for _, g := range m.Cone().Generators {
		fmt.Fprintf(w, "generator: %v\n", g)
	}
	h, err := m.Constraints()
	if err != nil {
		return err
	}
	for _, k := range h.All() {
		fmt.Fprintf(w, "constraint: %s\n", k)
	}
	return nil
}

// runFig9a times observation-feasibility testing per counter group.
func runFig9a(w io.Writer, opts Options) error {
	return timingSweep(w, opts, false)
}

// runFig9b times constraint deduction per counter group.
func runFig9b(w io.Writer, opts Options) error {
	return timingSweep(w, opts, true)
}

// timingSweep runs the Figure 9 counter-group sweep through one engine
// session per base model, restricted per step. It uses a dedicated,
// freshly-created engine — not engine.Default() — so the timed region
// always measures cold per-verdict (or per-deduction) cost: the shared
// engine's region/LP caches would otherwise make every re-run of the
// figure in one process report warm cache hits instead of the paper's
// scaling curve.
func timingSweep(w io.Writer, opts Options, deduce bool) error {
	obsList, err := corpus(opts)
	if err != nil {
		return err
	}
	obs := obsList[0]
	f := haswell.DiscoveredModelFeatures()
	d, err := haswell.BuildDiagram("fig9", f)
	if err != nil {
		return err
	}
	base, err := core.NewModel("fig9", d, nil)
	if err != nil {
		return err
	}
	eng := engine.New()
	defer eng.Close()
	sess, err := eng.NewSession(base, engine.Config{Mode: stats.Correlated})
	if err != nil {
		return err
	}
	steps := analysisSteps(false)
	if opts.Quick && deduce {
		steps = steps[:3]
	}
	fmt.Fprintf(w, "%-8s %-10s %-12s\n", "group", "#counters", "time")
	for _, st := range steps {
		sub, err := sess.Restrict(st.Set)
		if err != nil {
			return err
		}
		t0 := time.Now()
		if deduce {
			if _, err := sub.Model().Constraints(); err != nil {
				return err
			}
		} else {
			if _, err := sub.Test(context.Background(), obs); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "%-8s %-10d %-12s\n", st.Group, st.Set.Len(), time.Since(t0).Round(time.Microsecond))
	}
	return nil
}
