// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md). Each experiment
// prints the same rows/series the paper reports; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/counters"
	"repro/internal/haswell"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks corpora and sweeps for test runs.
	Quick bool
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	Name  string
	Title string
	Run   func(w io.Writer, opts Options) error
}

var registry = []Experiment{
	{"fig1a", "Figure 1a: HEC count scaling 2009-2019", runFig1a},
	{"fig1b", "Figure 1b: model constraints vs counter groups", runFig1b},
	{"fig1c", "Figure 1c: multiplexing noise vs active HECs", runFig1c},
	{"fig3", "Figure 3a-c: counter choice determines violation detection", runFig3},
	{"fig3d", "Figure 3d: correlated vs independent confidence regions", runFig3d},
	{"fig5a", "Figure 5a: model cone from μpath counter signatures", runFig5a},
	{"table1", "Table 1: representative Haswell MMU model constraints", runTable1},
	{"fig6", "Figure 6: guided refinement removes a violation", runFig6},
	{"table3", "Table 3: initial model search m0-m11", runTable3},
	{"fig10", "Figure 10: discovery/elimination search graph", runFig10},
	{"table5", "Table 5: TLB prefetch trigger conditions t0-t17", runTable5},
	{"table7", "Table 7: translation-request abort points a0-a3", runTable7},
	{"corrstats", "Section 7.1: correlation statistics and detection gains", runCorrStats},
	{"fig9a", "Figure 9a: feasibility-testing time vs counter groups", runFig9a},
	{"fig9b", "Figure 9b: constraint-deduction time vs counter groups", runFig9b},
}

// All returns every experiment in presentation order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByName finds an experiment.
func ByName(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run executes the named experiment with a header.
func Run(w io.Writer, name string, opts Options) error {
	e, ok := ByName(name)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q", name)
	}
	fmt.Fprintf(w, "== %s ==\n", e.Title)
	if err := e.Run(w, opts); err != nil {
		return fmt.Errorf("experiments: %s: %w", e.Name, err)
	}
	fmt.Fprintln(w)
	return nil
}

// corpusCache shares the simulated corpus across experiments in one
// process.
var (
	corpusOnce  sync.Once
	corpusQuick bool
	corpusObs   []*counters.Observation
	corpusErr   error
)

func corpus(opts Options) ([]*counters.Observation, error) {
	corpusOnce.Do(func() {
		spec := haswell.DefaultCorpusSpec()
		if opts.Quick {
			spec = haswell.QuickCorpusSpec()
		}
		corpusQuick = opts.Quick
		corpusObs, corpusErr = haswell.BuildCorpus(spec)
	})
	return corpusObs, corpusErr
}

// analysisSteps returns the cumulative counter-group steps used on the
// x-axes of Figures 1b, 1c and 9: Ret | 4, L2TLB | 10, Walk | 22,
// Refs | 23 (aggregate walk_ref), and optionally MMU$ | 29.
func analysisSteps(includeMMUC bool) []counters.GroupStep {
	reg := counters.NewHaswellRegistry(false)
	var steps []counters.GroupStep
	var acc []counters.Event
	for _, g := range []counters.Group{counters.GroupRet, counters.GroupSTLB, counters.GroupWalk} {
		acc = append(acc, reg.GroupEvents(g)...)
		steps = append(steps, counters.GroupStep{Group: g, Set: counters.NewSet(acc...)})
	}
	acc = append(acc, haswell.AggregateWalkRef)
	steps = append(steps, counters.GroupStep{Group: counters.GroupRefs, Set: counters.NewSet(acc...)})
	if includeMMUC {
		mmuc := counters.NewHaswellRegistry(true)
		acc = append(acc, mmuc.GroupEvents(counters.GroupMMUC)...)
		steps = append(steps, counters.GroupStep{Group: counters.GroupMMUC, Set: counters.NewSet(acc...)})
	}
	return steps
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
