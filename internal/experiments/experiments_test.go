package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// runQuick executes one experiment in quick mode and returns its output.
func runQuick(t *testing.T, name string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(&buf, name, Options{Quick: true}); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	out := buf.String()
	if len(out) < 40 {
		t.Fatalf("%s: suspiciously short output:\n%s", name, out)
	}
	return out
}

func TestRegistryComplete(t *testing.T) {
	names := map[string]bool{}
	for _, e := range All() {
		if e.Name == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment entry %+v", e)
		}
		if names[e.Name] {
			t.Fatalf("duplicate experiment %s", e.Name)
		}
		names[e.Name] = true
	}
	for _, want := range []string{"fig1a", "fig1b", "fig1c", "fig3", "fig3d",
		"fig5a", "table1", "fig6", "table3", "fig10", "table5", "table7",
		"corrstats", "fig9a", "fig9b"} {
		if !names[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, "nope", Options{}); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestFig1a(t *testing.T) {
	out := runQuick(t, "fig1a")
	if !strings.Contains(out, "NHM-EX") || !strings.Contains(out, "CLX") {
		t.Fatalf("census rows missing:\n%s", out)
	}
	if !strings.Contains(out, "growth") {
		t.Fatalf("growth factor missing:\n%s", out)
	}
}

func TestFig1b(t *testing.T) {
	out := runQuick(t, "fig1b")
	for _, g := range []string{"Ret", "L2TLB", "Walk", "Refs"} {
		if !strings.Contains(out, g) {
			t.Fatalf("missing group %s:\n%s", g, out)
		}
	}
}

func TestFig1c(t *testing.T) {
	out := runQuick(t, "fig1c")
	if !strings.Contains(out, "#counters") {
		t.Fatalf("missing sweep header:\n%s", out)
	}
	// The 4-counter row must detect the violation in every trial.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "4 ") {
			if !strings.Contains(line, "2/2") {
				t.Fatalf("4-counter row should detect: %q", line)
			}
		}
	}
}

func TestFig3(t *testing.T) {
	out := runQuick(t, "fig3")
	if !strings.Contains(out, "3a") || !strings.Contains(out, "violation detected") {
		t.Fatalf("3a should detect:\n%s", out)
	}
	if strings.Count(out, "violation NOT detected") != 2 {
		t.Fatalf("3b and 3c should both miss the violation:\n%s", out)
	}
}

func TestFig3d(t *testing.T) {
	out := runQuick(t, "fig3d")
	if !strings.Contains(out, "correlated") || !strings.Contains(out, "smaller in volume") {
		t.Fatalf("volume comparison missing:\n%s", out)
	}
}

func TestFig5a(t *testing.T) {
	out := runQuick(t, "fig5a")
	if !strings.Contains(out, "load.pde$_miss <= load.causes_walk") {
		t.Fatalf("constraint C missing:\n%s", out)
	}
}

func TestTable1(t *testing.T) {
	out := runQuick(t, "table1")
	if strings.Count(out, "implied by model: true") != 3 {
		t.Fatalf("all three Table 1 constraints must be implied:\n%s", out)
	}
}

func TestFig6(t *testing.T) {
	out := runQuick(t, "fig6")
	if !strings.Contains(out, "initial model feasible: false") {
		t.Fatalf("initial model must be refuted:\n%s", out)
	}
	if !strings.Contains(out, "refined model feasible: true") {
		t.Fatalf("refined model must accept the data:\n%s", out)
	}
}

func TestFig9a(t *testing.T) {
	out := runQuick(t, "fig9a")
	if !strings.Contains(out, "Walk") {
		t.Fatalf("timing sweep incomplete:\n%s", out)
	}
}

func TestFig9b(t *testing.T) {
	out := runQuick(t, "fig9b")
	if !strings.Contains(out, "L2TLB") {
		t.Fatalf("timing sweep incomplete:\n%s", out)
	}
}

// TestCaseStudyTables runs the heavyweight corpus-backed experiments once,
// sharing the cached quick corpus, and checks the headline shapes.
func TestCaseStudyTables(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus simulation is slow")
	}
	out3 := runQuick(t, "table3")
	// m4 and m8 must be the feasible models of the initial search.
	for _, line := range strings.Split(out3, "\n") {
		if strings.Contains(line, "m4 ") || strings.Contains(line, "m8 ") {
			if !strings.HasPrefix(line, "*") {
				t.Fatalf("m4/m8 must be feasible: %q", line)
			}
		}
		if strings.Contains(line, "m0 ") && strings.HasPrefix(line, "*") {
			t.Fatalf("m0 must be refuted: %q", line)
		}
	}

	out5 := runQuick(t, "table5")
	if !strings.Contains(out5, "*t0 ") {
		t.Fatalf("t0 must be feasible:\n%s", out5)
	}

	out7 := runQuick(t, "table7")
	for _, a := range []string{"a0", "a1", "a2", "a3"} {
		if strings.Contains(out7, "*"+a+" ") {
			t.Fatalf("%s must stay infeasible (aborts cannot replace bypass):\n%s", a, out7)
		}
	}

	out10 := runQuick(t, "fig10")
	if !strings.Contains(out10, "FEASIBLE") {
		t.Fatalf("search must reach a feasible model:\n%s", out10)
	}
	for _, f := range []string{"bypass", "early-psc", "merging", "tlb-pf"} {
		if !strings.Contains(out10, "required features") || !strings.Contains(out10, f) {
			t.Fatalf("feature %s must be discovered:\n%s", f, out10)
		}
	}

	outC := runQuick(t, "corrstats")
	if !strings.Contains(outC, "ρ") {
		t.Fatalf("correlation stats missing:\n%s", outC)
	}
}

func TestReplayExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus simulation is slow")
	}
	out := runQuick(t, "replay")
	if !strings.Contains(out, "0/") {
		t.Fatalf("replay model should be feasible:\n%s", out)
	}
	if !strings.Contains(out, "without miss-merging") {
		t.Fatalf("merging ablation missing:\n%s", out)
	}
}

func TestExtensionExperiment(t *testing.T) {
	out := runQuick(t, "extension")
	if !strings.Contains(out, "feasible=false") || !strings.Contains(out, "feasible=true") {
		t.Fatalf("extension should refute then accept:\n%s", out)
	}
}

func TestErrataExperiment(t *testing.T) {
	out := runQuick(t, "errata")
	if !strings.Contains(out, "SMT=false") || !strings.Contains(out, "HSD29") {
		t.Fatalf("errata demonstration incomplete:\n%s", out)
	}
	if !strings.Contains(out, "SMT=true  errata fired=[HSD29   ] true model feasible=false") {
		t.Fatalf("SMT-on verdict should be falsely refuted:\n%s", out)
	}
}
