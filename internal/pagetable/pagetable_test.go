package pagetable

import (
	"testing"
	"testing/quick"
)

func TestPageSizeLevels(t *testing.T) {
	if Page4K.Levels() != 4 || Page2M.Levels() != 3 || Page1G.Levels() != 2 {
		t.Fatal("levels wrong")
	}
	if Page4K.String() != "4K" || Page2M.String() != "2M" || Page1G.String() != "1G" {
		t.Fatal("strings wrong")
	}
}

func TestMapAndTranslate(t *testing.T) {
	pt := New(1 << 40)
	va := uint64(0x10_0000_0000)
	if _, ok := pt.Translate(va); ok {
		t.Fatal("unmapped VA should not translate")
	}
	if err := pt.Map(va, Page4K); err != nil {
		t.Fatal(err)
	}
	ps, ok := pt.Translate(va)
	if !ok || ps != Page4K {
		t.Fatalf("translate: %v %v", ps, ok)
	}
	if pt.MappedPages() != 1 {
		t.Fatalf("pages: %d", pt.MappedPages())
	}
	// Idempotent remap.
	if err := pt.Map(va, Page4K); err != nil {
		t.Fatal(err)
	}
	if pt.MappedPages() != 1 {
		t.Fatal("remap should not add pages")
	}
}

func TestMapSizeConflict(t *testing.T) {
	pt := New(1 << 40)
	va := uint64(0x10_0000_0000)
	if err := pt.Map(va, Page4K); err != nil {
		t.Fatal(err)
	}
	// Same region as 2M leaf conflicts with existing PT table.
	if err := pt.Map(va&^Page2M.Mask(), Page2M); err == nil {
		t.Fatal("expected size conflict")
	}
	// And mapping 4K under an existing 1G leaf conflicts too.
	pt2 := New(1 << 40)
	if err := pt2.Map(va&^Page1G.Mask(), Page1G); err != nil {
		t.Fatal(err)
	}
	if err := pt2.Map(va, Page4K); err == nil {
		t.Fatal("expected leaf conflict")
	}
}

func TestWalkFull4K(t *testing.T) {
	pt := New(1 << 40)
	va := uint64(0x10_0000_0000)
	pt.EnsureMapped(va, Page4K)
	steps, ok := pt.Walk(va, 0, true, false)
	if !ok {
		t.Fatal("walk should complete")
	}
	if len(steps) != 4 {
		t.Fatalf("4K full walk: %d steps, want 4", len(steps))
	}
	for i, st := range steps {
		if st.Level != i {
			t.Fatalf("step %d at level %d", i, st.Level)
		}
		if st.AccessedWas {
			t.Fatalf("fresh entry %d should have unset accessed bit", i)
		}
	}
	if !steps[3].Leaf {
		t.Fatal("last step should be leaf")
	}
	// Second walk sees accessed bits set.
	steps2, _ := pt.Walk(va, 0, false, false)
	for i, st := range steps2 {
		if !st.AccessedWas {
			t.Fatalf("step %d accessed bit should be set", i)
		}
	}
}

func TestWalkStartLevelSkips(t *testing.T) {
	pt := New(1 << 40)
	va := uint64(0x10_0000_0000)
	pt.EnsureMapped(va, Page4K)
	steps, ok := pt.Walk(va, 3, true, false)
	if !ok || len(steps) != 1 {
		t.Fatalf("PDE-hit walk: ok=%v steps=%d", ok, len(steps))
	}
	if steps[0].Level != 3 || !steps[0].Leaf {
		t.Fatalf("step: %+v", steps[0])
	}
}

func TestWalkHugePages(t *testing.T) {
	pt := New(1 << 40)
	va := uint64(0x40_0000_0000)
	pt.EnsureMapped(va, Page1G)
	steps, ok := pt.Walk(va, 0, true, false)
	if !ok || len(steps) != 2 {
		t.Fatalf("1G walk: ok=%v steps=%d, want 2", ok, len(steps))
	}
	pt2 := New(1 << 40)
	pt2.EnsureMapped(va, Page2M)
	steps, ok = pt2.Walk(va, 0, true, false)
	if !ok || len(steps) != 3 {
		t.Fatalf("2M walk: ok=%v steps=%d, want 3", ok, len(steps))
	}
}

func TestWalkAbortOnUnaccessed(t *testing.T) {
	pt := New(1 << 40)
	va := uint64(0x10_0000_0000)
	pt.EnsureMapped(va, Page4K)
	// Prefetch-style walk on a never-demand-walked page: the first entry's
	// accessed bit is unset → abort after one read.
	steps, ok := pt.Walk(va, 0, false, true)
	if ok {
		t.Fatal("prefetch walk over unaccessed entries must abort")
	}
	if len(steps) != 1 {
		t.Fatalf("abort after %d steps, want 1", len(steps))
	}
	// Demand-walk it (sets accessed bits), then prefetch completes.
	if _, ok := pt.Walk(va, 0, true, false); !ok {
		t.Fatal("demand walk failed")
	}
	if _, ok := pt.Walk(va, 0, false, true); !ok {
		t.Fatal("prefetch over accessed entries should complete")
	}
	// Neighbour page: shared upper levels accessed, fresh PT leaf unset.
	va2 := va + uint64(Page4K)
	pt.EnsureMapped(va2, Page4K)
	steps, ok = pt.Walk(va2, 0, false, true)
	if ok {
		t.Fatal("prefetch of fresh neighbour page must abort at leaf")
	}
	if len(steps) != 4 {
		t.Fatalf("abort at leaf after %d steps, want 4", len(steps))
	}
}

func TestClearAccessed(t *testing.T) {
	pt := New(1 << 40)
	va := uint64(0x10_0000_0000)
	pt.EnsureMapped(va, Page4K)
	pt.Walk(va, 0, true, false)
	pt.ClearAccessed()
	steps, _ := pt.Walk(va, 0, false, false)
	for _, st := range steps {
		if st.AccessedWas {
			t.Fatal("accessed bits should be cleared")
		}
	}
}

func TestWalkUnmappedFaults(t *testing.T) {
	pt := New(1 << 40)
	va := uint64(0x10_0000_0000)
	pt.EnsureMapped(va, Page4K)
	// A different PML4 region entirely: the very first entry read faults.
	steps, ok := pt.Walk(0x7f_0000_0000_00, 0, true, false)
	if ok {
		t.Fatal("unmapped walk should fail")
	}
	if len(steps) != 1 {
		t.Fatalf("fault after %d steps, want 1", len(steps))
	}
}

func TestEntryPhysDistinct(t *testing.T) {
	// Property: distinct mapped pages have distinct leaf entry addresses,
	// and all entry addresses fall in the table allocator's range.
	pt := New(1 << 40)
	seen := map[uint64]bool{}
	f := func(page uint16) bool {
		va := uint64(0x10_0000_0000) + uint64(page)*uint64(Page4K)
		pt.EnsureMapped(va, Page4K)
		steps, ok := pt.Walk(va, 0, false, false)
		if !ok || len(steps) != 4 {
			return false
		}
		leaf := steps[3].EntryPhys
		if prev := seen[leaf]; prev {
			// Same page revisited is fine; different page colliding is not.
			return true
		}
		seen[leaf] = true
		return leaf >= 1<<40 && leaf < pt.TableBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMappedPagesAndTableBytes(t *testing.T) {
	pt := New(1 << 40)
	base := uint64(0x10_0000_0000)
	for i := uint64(0); i < 10; i++ {
		pt.EnsureMapped(base+i*uint64(Page4K), Page4K)
	}
	if pt.MappedPages() != 10 {
		t.Fatalf("pages: %d", pt.MappedPages())
	}
	if pt.TableBytes() <= 1<<40 {
		t.Fatal("table bytes should grow past the base")
	}
}
