// Package pagetable implements an x86-64-style four-level radix page table
// (PML4 → PDPT → PD → PT) with 4 KB, 2 MB and 1 GB mappings and per-entry
// accessed bits.
//
// The Haswell MMU simulator walks these tables exactly as a hardware page
// table walker would: one entry read per level, each read addressed by the
// physical address of the entry so the cache hierarchy (package memsim) can
// classify it into the walk_ref.{l1,l2,l3,mem} counters. Accessed bits
// matter because prefetch-induced walks abort when they encounter an entry
// whose accessed bit is unset (paper §7.1), while demand walks set it.
package pagetable

import "fmt"

// PageSize selects the translation granularity of a mapping.
type PageSize int

// Supported page sizes.
const (
	Page4K PageSize = 1 << 12
	Page2M PageSize = 1 << 21
	Page1G PageSize = 1 << 30
)

func (s PageSize) String() string {
	switch s {
	case Page4K:
		return "4K"
	case Page2M:
		return "2M"
	case Page1G:
		return "1G"
	}
	return fmt.Sprintf("PageSize(%d)", int(s))
}

// Levels returns how many page-table levels a walk for this page size
// traverses (the leaf entry's level): 4K → 4, 2M → 3, 1G → 2.
func (s PageSize) Levels() int {
	switch s {
	case Page4K:
		return 4
	case Page2M:
		return 3
	case Page1G:
		return 2
	}
	panic(fmt.Sprintf("pagetable: invalid page size %d", int(s)))
}

// Mask returns the page-offset mask.
func (s PageSize) Mask() uint64 { return uint64(s) - 1 }

const (
	entriesPerTable = 512
	entryBytes      = 8
	tableBytes      = entriesPerTable * entryBytes
)

// node is one 4 KB page-table page.
type node struct {
	phys     uint64 // physical base address of this table page
	children [entriesPerTable]*node
	leaf     [entriesPerTable]bool
	present  [entriesPerTable]bool
	accessed [entriesPerTable]bool
	target   [entriesPerTable]uint64 // leaf: physical frame base
}

// Table is a four-level page table with a bump physical-frame allocator.
type Table struct {
	root      *node
	nextPhys  uint64
	pageCount int
}

// New returns an empty table. Physical addresses for table pages and data
// frames are handed out by a bump allocator starting at physBase.
func New(physBase uint64) *Table {
	t := &Table{nextPhys: physBase &^ uint64(tableBytes-1)}
	t.root = t.newNode()
	return t
}

func (t *Table) newNode() *node {
	n := &node{phys: t.nextPhys}
	t.nextPhys += tableBytes
	return n
}

// indices extracts the 9-bit radix index for each level (level 0 = PML4).
func indices(va uint64) [4]int {
	return [4]int{
		int(va >> 39 & 0x1ff),
		int(va >> 30 & 0x1ff),
		int(va >> 21 & 0x1ff),
		int(va >> 12 & 0x1ff),
	}
}

// Map establishes a mapping of size s covering va, allocating intermediate
// tables as needed. Mapping is idempotent; remapping a region at a
// different size is an error (as it would be for a real OS).
func (t *Table) Map(va uint64, s PageSize) error {
	idx := indices(va)
	leafLevel := s.Levels() - 1 // 0-based level holding the leaf entry
	n := t.root
	for level := 0; level < leafLevel; level++ {
		i := idx[level]
		if n.present[i] {
			if n.leaf[i] {
				return fmt.Errorf("pagetable: va %#x already mapped as leaf at level %d", va, level)
			}
		} else {
			child := t.newNode()
			n.children[i] = child
			n.present[i] = true
		}
		n = n.children[i]
	}
	i := idx[leafLevel]
	if n.present[i] {
		if !n.leaf[i] {
			return fmt.Errorf("pagetable: va %#x already mapped at smaller size", va)
		}
		return nil
	}
	n.present[i] = true
	n.leaf[i] = true
	n.target[i] = t.nextPhys
	t.nextPhys += uint64(s)
	t.pageCount++
	return nil
}

// EnsureMapped maps the page containing va at size s if not yet mapped.
func (t *Table) EnsureMapped(va uint64, s PageSize) {
	if err := t.Map(va&^s.Mask(), s); err != nil {
		// Map is idempotent for same-size remaps; a size conflict is a
		// simulator bug worth failing loudly on.
		panic(err)
	}
}

// Step describes one walker memory access during a walk: the level read
// (0 = PML4), the physical address of the entry, whether the entry was the
// leaf, and whether its accessed bit was already set before this walk.
type Step struct {
	Level       int
	EntryPhys   uint64
	Leaf        bool
	AccessedWas bool
	TargetPhys  uint64 // leaf steps: translated frame base
}

// Walk returns the sequence of entry reads for va starting at startLevel
// (0 = full walk from PML4; a paging-structure-cache hit lets the walker
// skip levels). setAccessed controls whether the walk sets accessed bits as
// it goes (demand walks do; prefetch walks must not). If abortOnUnaccessed
// is true the walk stops after reading the first entry whose accessed bit
// is unset (prefetch semantics), reporting ok=false.
//
// ok reports whether a complete translation was obtained.
func (t *Table) Walk(va uint64, startLevel int, setAccessed, abortOnUnaccessed bool) (steps []Step, ok bool) {
	idx := indices(va)
	n := t.root
	// Descend silently to startLevel (these levels were served by a
	// paging-structure cache and emit no memory references).
	for level := 0; level < startLevel; level++ {
		i := idx[level]
		if !n.present[i] || n.leaf[i] {
			// Cache claimed a hit for a prefix that does not exist or was a
			// leaf above startLevel; treat as a failed translation.
			return nil, false
		}
		n = n.children[i]
	}
	for level := startLevel; level < 4; level++ {
		i := idx[level]
		st := Step{
			Level:       level,
			EntryPhys:   n.phys + uint64(i*entryBytes),
			AccessedWas: n.accessed[i],
		}
		if !n.present[i] {
			// Page fault: the entry read still happened.
			steps = append(steps, st)
			return steps, false
		}
		st.Leaf = n.leaf[i]
		if n.leaf[i] {
			st.TargetPhys = n.target[i]
		}
		steps = append(steps, st)
		if abortOnUnaccessed && !n.accessed[i] {
			return steps, false
		}
		if setAccessed {
			n.accessed[i] = true
		}
		if n.leaf[i] {
			return steps, true
		}
		n = n.children[i]
	}
	return steps, false
}

// Translate reports whether va has a valid mapping and its page size.
func (t *Table) Translate(va uint64) (PageSize, bool) {
	idx := indices(va)
	n := t.root
	for level := 0; level < 4; level++ {
		i := idx[level]
		if !n.present[i] {
			return 0, false
		}
		if n.leaf[i] {
			switch level {
			case 1:
				return Page1G, true
			case 2:
				return Page2M, true
			case 3:
				return Page4K, true
			default:
				return 0, false
			}
		}
		n = n.children[i]
	}
	return 0, false
}

// ClearAccessed clears every accessed bit (as an OS page-reclaim scan
// would), letting tests and workloads re-create the unset-accessed-bit
// conditions that abort prefetch walks.
func (t *Table) ClearAccessed() {
	var rec func(n *node)
	rec = func(n *node) {
		for i := 0; i < entriesPerTable; i++ {
			n.accessed[i] = false
			if n.present[i] && !n.leaf[i] {
				rec(n.children[i])
			}
		}
	}
	rec(t.root)
}

// MappedPages returns the number of leaf mappings.
func (t *Table) MappedPages() int { return t.pageCount }

// TableBytes returns the total size of allocated page-table pages — the
// walker's physical footprint, which determines how well walker refs cache.
func (t *Table) TableBytes() uint64 { return t.nextPhys }
