package cone

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/counters"
	"repro/internal/exact"
)

func set2() *counters.Set {
	return counters.NewSet("load.causes_walk", "load.pde$_miss")
}

func set3() *counters.Set {
	return counters.NewSet("load.causes_walk", "load.walk_done", "load.ret_stlb_miss")
}

func TestNewNormalizesAndDedupes(t *testing.T) {
	s := set2()
	c := New(s, []exact.Vec{
		exact.VecFromInts(2, 4),
		exact.VecFromInts(1, 2),
		exact.VecFromInts(0, 0),
		exact.VecFromInts(1, 0),
	})
	if len(c.Generators) != 2 {
		t.Fatalf("got %d generators, want 2", len(c.Generators))
	}
}

func TestContains(t *testing.T) {
	// Figure 6a cone: paths give signatures (1,0) and (1,1):
	// causes_walk always increments, pde$_miss only on miss.
	c := New(set2(), []exact.Vec{exact.VecFromInts(1, 0), exact.VecFromInts(1, 1)})
	cases := []struct {
		v    exact.Vec
		want bool
	}{
		{exact.VecFromInts(5, 3), true},   // 2*(1,0) + 3*(1,1)
		{exact.VecFromInts(5, 5), true},   // boundary
		{exact.VecFromInts(5, 0), true},   // boundary
		{exact.VecFromInts(3, 5), false},  // pde$_miss > causes_walk violates C
		{exact.VecFromInts(0, 0), true},   // apex
		{exact.VecFromInts(-1, 0), false}, // negative counters impossible
	}
	for i, tc := range cases {
		if got := c.Contains(tc.v); got != tc.want {
			t.Errorf("case %d: Contains(%v) = %v, want %v", i, tc.v, got, tc.want)
		}
	}
}

func TestConstraintsPDECacheExample(t *testing.T) {
	// The §5 model: constraints should include pde$_miss <= causes_walk,
	// pde$_miss >= 0 (i.e. -pde$_miss <= 0 is implied by cone geometry).
	c := New(set2(), []exact.Vec{exact.VecFromInts(1, 0), exact.VecFromInts(1, 1)})
	h, err := c.Constraints()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Equalities) != 0 {
		t.Fatalf("unexpected equalities: %v", h.Equalities)
	}
	if len(h.Inequalities) != 2 {
		t.Fatalf("got %d inequalities, want 2: %v", len(h.Inequalities), h.Inequalities)
	}
	var found bool
	for _, k := range h.Inequalities {
		if k.String() == "load.pde$_miss <= load.causes_walk" {
			found = true
		}
	}
	if !found {
		var ss []string
		for _, k := range h.Inequalities {
			ss = append(ss, k.String())
		}
		t.Fatalf("constraint C not deduced; got: %s", strings.Join(ss, "; "))
	}
}

func TestConstraintsFigure3a(t *testing.T) {
	// Figure 3a: counters (causes_walk, walk_done, ret_stlb_miss).
	// μpaths: walk completes and retires (1,1,1); walk completes but μop
	// squashed (1,1,0); walk initiated but does not complete (1,0,0).
	c := New(set3(), []exact.Vec{
		exact.VecFromInts(1, 1, 1),
		exact.VecFromInts(1, 1, 0),
		exact.VecFromInts(1, 0, 0),
	})
	h, err := c.Constraints()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"load.ret_stlb_miss <= load.walk_done": false,
		"load.walk_done <= load.causes_walk":   false,
		"0 <= load.ret_stlb_miss":              false,
	}
	for _, k := range h.Inequalities {
		if _, ok := want[k.String()]; ok {
			want[k.String()] = true
		}
	}
	for s, ok := range want {
		if !ok {
			var got []string
			for _, k := range h.Inequalities {
				got = append(got, k.String())
			}
			t.Fatalf("missing constraint %q; got %s", s, strings.Join(got, "; "))
		}
	}
}

func TestEqualityDeduction(t *testing.T) {
	// stlb_hit = stlb_hit_4k + stlb_hit_2m (paper §6 footnote): signatures
	// always increment the aggregate together with exactly one variant.
	s := counters.NewSet("load.stlb_hit_4k", "load.stlb_hit_2m", "load.stlb_hit")
	c := New(s, []exact.Vec{
		exact.VecFromInts(1, 0, 1),
		exact.VecFromInts(0, 1, 1),
	})
	h, err := c.Constraints()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Equalities) != 1 {
		t.Fatalf("got %d equalities, want 1: %v", len(h.Equalities), h.Equalities)
	}
	eq := h.Equalities[0]
	// The equality must annihilate both generators.
	for _, g := range c.Generators {
		if eq.Coeffs.Dot(g).Sign() != 0 {
			t.Fatalf("equality %s does not annihilate %v", eq, g)
		}
	}
}

func TestEssentialGenerators(t *testing.T) {
	// (1,1) is interior to cone{(1,0),(0,1)} ∪ {(1,1)} and must be pruned.
	s := set2()
	c := New(s, []exact.Vec{
		exact.VecFromInts(1, 0),
		exact.VecFromInts(0, 1),
		exact.VecFromInts(1, 1),
	})
	ess := c.EssentialGenerators()
	if len(ess) != 2 {
		t.Fatalf("got %d essential generators, want 2", len(ess))
	}
}

func TestImplies(t *testing.T) {
	c := New(set2(), []exact.Vec{exact.VecFromInts(1, 0), exact.VecFromInts(1, 1)})
	// pde$_miss - causes_walk <= 0 is implied.
	k := Constraint{Set: c.Set, Coeffs: exact.VecFromInts(-1, 1), Rel: LEZero}
	if !c.Implies(k) {
		t.Fatal("constraint C should be implied")
	}
	// Refined model (Figure 6c) adds signature (0,1): aborted request that
	// misses the PDE cache but never starts a walk. C no longer implied.
	refined := New(set2(), []exact.Vec{
		exact.VecFromInts(1, 0), exact.VecFromInts(1, 1), exact.VecFromInts(0, 1),
	})
	if refined.Implies(k) {
		t.Fatal("refined model must not imply constraint C")
	}
}

func TestSubsetOf(t *testing.T) {
	small := New(set2(), []exact.Vec{exact.VecFromInts(1, 0), exact.VecFromInts(1, 1)})
	big := New(set2(), []exact.Vec{
		exact.VecFromInts(1, 0), exact.VecFromInts(1, 1), exact.VecFromInts(0, 1),
	})
	if !small.SubsetOf(big) {
		t.Fatal("small should be subset of big")
	}
	if big.SubsetOf(small) {
		t.Fatal("big should not be subset of small")
	}
}

func TestConstraintString(t *testing.T) {
	s := set2()
	k := Constraint{Set: s, Coeffs: exact.VecFromInts(-3, 1), Rel: LEZero}
	if got := k.String(); got != "load.pde$_miss <= 3*load.causes_walk" {
		t.Fatalf("got %q", got)
	}
	k2 := Constraint{Set: s, Coeffs: exact.VecFromInts(0, 0), Rel: EQZero}
	if got := k2.String(); got != "0 = 0" {
		t.Fatalf("got %q", got)
	}
}

func TestConstraintEvalAndSatisfied(t *testing.T) {
	k := Constraint{Set: set2(), Coeffs: exact.VecFromInts(-1, 1), Rel: LEZero}
	if got := k.Eval([]float64{2, 5}); got != 3 {
		t.Fatalf("eval: got %g want 3", got)
	}
	if k.SatisfiedBy(exact.VecFromInts(2, 5)) {
		t.Fatal("(2,5) violates C")
	}
	if !k.SatisfiedBy(exact.VecFromInts(5, 2)) {
		t.Fatal("(5,2) satisfies C")
	}
}

func TestEmptyCone(t *testing.T) {
	c := New(set2(), nil)
	h, err := c.Constraints()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Equalities) != 2 {
		t.Fatalf("trivial cone: got %d equalities, want 2", len(h.Equalities))
	}
	if !c.Contains(exact.VecFromInts(0, 0)) {
		t.Fatal("trivial cone must contain origin")
	}
	if c.Contains(exact.VecFromInts(1, 0)) {
		t.Fatal("trivial cone contains only origin")
	}
}

// TestHRepVRepRoundTrip is the Minkowski–Weyl property check: a random
// non-negative integral point is in the cone (by LP on generators) iff it
// satisfies every deduced constraint.
func TestHRepVRepRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(3) + 2
		evs := make([]counters.Event, n)
		for i := range evs {
			evs[i] = counters.Event(string(rune('a' + i)))
		}
		s := counters.NewSet(evs...)
		ng := rng.Intn(4) + 1
		gens := make([]exact.Vec, ng)
		for i := range gens {
			gens[i] = exact.NewVec(n)
			for j := 0; j < n; j++ {
				gens[i][j].SetInt64(int64(rng.Intn(3)))
			}
		}
		c := New(s, gens)
		h, err := c.Constraints()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for probe := 0; probe < 20; probe++ {
			v := exact.NewVec(n)
			for j := 0; j < n; j++ {
				v[j].SetInt64(int64(rng.Intn(5)))
			}
			inCone := c.Contains(v)
			satisfiesAll := true
			for _, k := range h.All() {
				if !k.SatisfiedBy(v) {
					satisfiesAll = false
					break
				}
			}
			// Membership must imply satisfying all constraints. The converse
			// requires v >= 0 within the span, which holds here because the
			// H-rep includes all facets.
			if inCone != satisfiesAll {
				t.Fatalf("trial %d probe %d: inCone=%v satisfiesAll=%v v=%v gens=%v",
					trial, probe, inCone, satisfiesAll, v, c.Generators)
			}
		}
	}
}

// TestConstraintsConcurrentFirstCall is the race regression for the lazy
// H-representation cache: the service layer deduces constraints from
// concurrent request handlers, so racing first callers must share one
// deduction (previously an unsynchronised write to the cache).
func TestConstraintsConcurrentFirstCall(t *testing.T) {
	c := New(set3(), []exact.Vec{
		exact.VecFromInts(1, 0, 0),
		exact.VecFromInts(1, 1, 0),
		exact.VecFromInts(1, 1, 1),
	})
	const callers = 8
	results := make(chan *HRep, callers)
	for i := 0; i < callers; i++ {
		go func() {
			h, err := c.Constraints()
			if err != nil {
				t.Error(err)
			}
			results <- h
		}()
	}
	first := <-results
	for i := 1; i < callers; i++ {
		if got := <-results; got != first {
			t.Fatal("concurrent first callers built distinct H-representations")
		}
	}
}
