package cone

import (
	"math/rand"
	"testing"

	"repro/internal/counters"
	"repro/internal/exact"
)

// TestConicCombinationMembership: any random non-negative combination of
// generators is in the cone, and satisfies every deduced constraint.
func TestConicCombinationMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(3) + 2
		evs := make([]counters.Event, n)
		for i := range evs {
			evs[i] = counters.Event(string(rune('a' + i)))
		}
		set := counters.NewSet(evs...)
		ng := rng.Intn(3) + 2
		gens := make([]exact.Vec, ng)
		for i := range gens {
			gens[i] = exact.NewVec(n)
			for j := 0; j < n; j++ {
				gens[i][j].SetInt64(int64(rng.Intn(4)))
			}
		}
		c := New(set, gens)
		h, err := c.Constraints()
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 10; probe++ {
			v := exact.NewVec(n)
			for _, g := range c.Generators {
				coeff := int64(rng.Intn(4))
				for j := range v {
					tmp := g[j].Num().Int64() * coeff
					cur := v[j].Num().Int64()
					v[j].SetInt64(cur + tmp)
				}
			}
			if !c.Contains(v) {
				t.Fatalf("trial %d: conic combination %v not contained", trial, v)
			}
			for _, k := range h.All() {
				if !k.SatisfiedBy(v) {
					t.Fatalf("trial %d: combination violates deduced %s", trial, k)
				}
			}
		}
	}
}

// TestZeroPaddingPreservesMembership: extending the counter set with events
// no signature touches pins the new coordinates to zero but preserves
// membership of zero-padded points.
func TestZeroPaddingPreservesMembership(t *testing.T) {
	small := counters.NewSet("a", "b")
	big := counters.NewSet("a", "b", "c")
	gensSmall := []exact.Vec{exact.VecFromInts(1, 0), exact.VecFromInts(1, 1)}
	gensBig := []exact.Vec{exact.VecFromInts(1, 0, 0), exact.VecFromInts(1, 1, 0)}
	cs := New(small, gensSmall)
	cb := New(big, gensBig)
	pts := []exact.Vec{
		exact.VecFromInts(3, 2),
		exact.VecFromInts(2, 3),
		exact.VecFromInts(5, 5),
	}
	for _, p := range pts {
		padded := exact.VecFromInts(p[0].Num().Int64(), p[1].Num().Int64(), 0)
		if cs.Contains(p) != cb.Contains(padded) {
			t.Fatalf("padding changed membership for %v", p)
		}
	}
	// A non-zero padded coordinate is never reachable.
	if cb.Contains(exact.VecFromInts(3, 2, 1)) {
		t.Fatal("untouched counter must stay zero")
	}
}

// TestEssentialGeneratorsPreserveCone: pruning interior generators must not
// change cone membership.
func TestEssentialGeneratorsPreserveCone(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		n := rng.Intn(3) + 2
		evs := make([]counters.Event, n)
		for i := range evs {
			evs[i] = counters.Event(string(rune('a' + i)))
		}
		set := counters.NewSet(evs...)
		ng := rng.Intn(4) + 3
		gens := make([]exact.Vec, ng)
		for i := range gens {
			gens[i] = exact.NewVec(n)
			for j := 0; j < n; j++ {
				gens[i][j].SetInt64(int64(rng.Intn(3)))
			}
		}
		full := New(set, gens)
		pruned := New(set, full.EssentialGenerators())
		for probe := 0; probe < 10; probe++ {
			v := exact.NewVec(n)
			for j := 0; j < n; j++ {
				v[j].SetInt64(int64(rng.Intn(6)))
			}
			if full.Contains(v) != pruned.Contains(v) {
				t.Fatalf("trial %d: pruning changed membership of %v", trial, v)
			}
		}
	}
}
