package cone

import (
	"fmt"

	"math/big"
	"math/bits"

	"repro/internal/exact"
	"repro/internal/simplex"
)

// bitset is a fixed-width bit vector over processed inequality indices.
// Replacing the former map[int]bool tight sets, it makes the adjacency
// pre-test one AND+popcount sweep and set union one OR sweep.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

func (b bitset) or(c bitset) {
	for i := range b {
		b[i] |= c[i]
	}
}

// andCount returns |b ∩ c|.
func andCount(b, c bitset) int {
	n := 0
	for i := range b {
		n += bits.OnesCount64(b[i] & c[i])
	}
	return n
}

// appendAnd appends the indices of b ∩ c to out.
func appendAnd(b, c bitset, out []int) []int {
	for w := range b {
		word := b[w] & c[w]
		base := w << 6
		for word != 0 {
			out = append(out, base+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	return out
}

// ddRay is one ray in the double-description state: a GCD-normalised
// integer vector carried in the int64 kernel representation (iv) whenever
// it fits, with a per-ray *big.Rat fallback (bv) otherwise. tight records
// which processed inequality indices are tight (=0) at the ray, driving
// the combinatorial adjacency test.
type ddRay struct {
	iv    []int64   // normalised integer entries; nil when the ray is wide
	bv    exact.Vec // big fallback (normalised integral); nil when iv != nil
	tight bitset
}

// vec materialises the ray as a big.Rat vector.
func (r *ddRay) vec() exact.Vec {
	if r.iv != nil {
		return exact.Vec64{Num: r.iv, Den: 1}.Vec()
	}
	return r.bv
}

// key returns the deduplication key; int64 and wide rays of equal value
// produce equal keys (both print normalised integers).
func (r *ddRay) key() string {
	if r.iv != nil {
		return exact.Vec64{Num: r.iv, Den: 1}.Key()
	}
	return r.bv.Key()
}

// rayFromVec normalises v and stores it in the kernel representation when
// every entry fits int64.
func rayFromVec(v exact.Vec, tight bitset) ddRay {
	n := v.NormalizeIntegral()
	if v64, ok := exact.Vec64FromVec(n); ok {
		return ddRay{iv: v64.Num, tight: tight}
	}
	return ddRay{bv: n, tight: tight}
}

// ddMaxRays bounds intermediate double-description growth.
const ddMaxRays = 200000

// ddY is one processed hyperplane normal: the exact big.Rat vector plus,
// when it fits, the int64 common-denominator form used for kernel dot
// products (only signs and integer combinations are consumed, so the
// positive denominator never materialises).
type ddY struct {
	v  exact.Vec
	iv []int64 // common-denominator numerators; nil when wide
}

// dotSign classifies ray r against y: the sign of r·y. The kernel path is
// an overflow-checked integer dot product (positive denominators cannot
// change the sign); any overflow or wide operand falls back to big.Rat.
func (y *ddY) dotSign(r *ddRay) int {
	if r.iv != nil && y.iv != nil {
		if s, ok := (exact.Vec64{Num: r.iv, Den: 1}).IntDotSign(y.iv); ok {
			return s
		}
	}
	return r.vec().Dot(y.v).Sign()
}

// intDot returns the integer dot product Σ r.iv[i]·y.iv[i], ok=false on
// overflow or wide operands. The true r·y is this over y's (positive)
// denominator; combinations only need the numerator (a positive rescale of
// the combined ray, which GCD normalisation removes anyway).
func (y *ddY) intDot(r *ddRay) (int64, bool) {
	if r.iv == nil || y.iv == nil {
		return 0, false
	}
	var sum int64
	for i, a := range r.iv {
		if a == 0 || y.iv[i] == 0 {
			continue
		}
		t, ok := exact.MulInt64(a, y.iv[i])
		if !ok {
			return 0, false
		}
		sum, ok = exact.AddInt64(sum, t)
		if !ok {
			return 0, false
		}
	}
	return sum, true
}

// combineRays builds the hyperplane ray w = (p·y)·n − (n·y)·p for an
// adjacent (pos, neg) pair, GCD-normalised. The kernel path combines the
// integer forms with overflow-checked arithmetic (the shared positive
// denominator of y drops out under normalisation); overflow or wide
// operands fall back to exact big.Rat arithmetic for this pair only.
func combineRays(p, n *ddRay, y *ddY, tight bitset) (ddRay, bool) {
	if sp, ok := y.intDot(p); ok {
		if sn, ok := y.intDot(n); ok {
			if w, ok := combineInt(p.iv, n.iv, sp, sn); ok {
				if allZero(w) {
					return ddRay{}, false
				}
				return ddRay{iv: w, tight: tight}, true
			}
		}
	}
	// Big fallback for this pair.
	pv, nv := p.vec(), n.vec()
	pd := pv.Dot(y.v)
	nd := nv.Dot(y.v)
	w := nv.Scale(pd)
	negnd := new(big.Rat).Neg(nd)
	w.AddScaled(negnd, pv)
	w = w.NormalizeIntegral()
	if w.IsZero() {
		return ddRay{}, false
	}
	r := rayFromVec(w, tight)
	return r, true
}

// combineInt computes normalise(sp·n − sn·p) in checked int64 arithmetic.
func combineInt(p, n []int64, sp, sn int64) ([]int64, bool) {
	out := make([]int64, len(p))
	g := uint64(0)
	for i := range p {
		a, ok := exact.MulInt64(sp, n[i])
		if !ok {
			return nil, false
		}
		b, ok := exact.MulInt64(sn, p[i])
		if !ok {
			return nil, false
		}
		d, ok := exact.SubInt64(a, b)
		if !ok {
			return nil, false
		}
		out[i] = d
		if d != 0 {
			g = exact.GCD64(g, exact.AbsU64(d))
		}
	}
	if g > 1 {
		for i, v := range out {
			if v < 0 {
				out[i] = -int64(exact.AbsU64(v) / g)
			} else {
				out[i] = int64(uint64(v) / g)
			}
		}
	}
	return out, true
}

func allZero(xs []int64) bool {
	for _, x := range xs {
		if x != 0 {
			return false
		}
	}
	return true
}

// dualExtremeRays computes the extreme rays of the dual cone
//
//	D = { a ∈ ℝ^d : a·y ≤ 0 for every y in ys }
//
// with the double description (Motzkin) method over exact rationals: int64
// kernel arithmetic on GCD-normalised integer rays, promoting to big.Rat
// per ray (and per combination) on overflow.
//
// Preconditions: the ys span ℝ^d (guaranteed by the caller, which works in
// row-space coordinates), so D is pointed and the final state carries no
// lineality. The returned rays are GCD-normalised and minimal (each verified
// non-redundant by LP), and are exactly the facet normals of cone(ys).
func dualExtremeRays(ys []exact.Vec, d int) ([]exact.Vec, error) {
	if d == 0 {
		return nil, nil
	}

	// Hyperplane normals, converted once to the kernel form where possible.
	dys := make([]ddY, len(ys))
	for i, y := range ys {
		dys[i].v = y
		if v64, ok := exact.Vec64FromVec(y); ok {
			dys[i].iv = v64.Num
		}
	}

	// State: lineality basis L and rays R, all satisfying the inequalities
	// processed so far. The lineality pivot branch runs at most d times and
	// stays on big.Rat; the per-constraint ray classification and pairing —
	// the hot loops — run on the kernel.
	var lineality []exact.Vec
	for i := 0; i < d; i++ {
		l := exact.NewVec(d)
		l[i].SetInt64(1)
		lineality = append(lineality, l)
	}
	var rays []ddRay

	for mi := range dys {
		y := &dys[mi]
		// 1. If some lineality direction violates the hyperplane, pivot it
		// out: it becomes the unique ray strictly inside the half-space and
		// everything else is projected onto the hyperplane a·y = 0.
		pivot := -1
		for li, l := range lineality {
			if l.Dot(y.v).Sign() != 0 {
				pivot = li
				break
			}
		}
		if pivot >= 0 {
			l0 := lineality[pivot]
			lineality = append(lineality[:pivot], lineality[pivot+1:]...)
			dot0 := l0.Dot(y.v)
			// Scale l0 so that l0·y = -1 (strictly feasible direction).
			scale := new(big.Rat).Inv(dot0)
			scale.Neg(scale)
			l0 = l0.Scale(scale)
			// Project remaining lineality and rays onto the hyperplane:
			// x' = x + (x·y)·l0  ⇒  x'·y = x·y + (x·y)(l0·y) = 0.
			for i, l := range lineality {
				proj := l.Clone()
				proj.AddScaled(l.Dot(y.v), l0)
				lineality[i] = proj
			}
			for i := range rays {
				proj := rays[i].vec().Clone()
				proj.AddScaled(proj.Dot(y.v), l0)
				tight := rays[i].tight
				tight.set(mi)
				rays[i] = rayFromVec(proj, tight)
			}
			// l0 came from the lineality space, so it satisfies every
			// previously processed constraint with equality and the new one
			// strictly.
			l0tight := newBitset(len(ys))
			for k := 0; k < mi; k++ {
				l0tight.set(k)
			}
			rays = append(rays, rayFromVec(l0, l0tight))
			continue
		}

		// 2. Lineality is entirely on the hyperplane; classify rays by sign
		// (one pass), then split into pre-sized groups.
		signs := make([]int8, len(rays))
		var nNeg, nZero, nPos int
		for i := range rays {
			switch y.dotSign(&rays[i]) {
			case -1:
				signs[i] = -1
				nNeg++
			case 0:
				signs[i] = 0
				nZero++
			case 1:
				signs[i] = 1
				nPos++
			}
		}
		if nPos == 0 {
			kept := make([]ddRay, 0, nNeg+nZero)
			for i := range rays {
				if signs[i] == 0 {
					rays[i].tight.set(mi)
				}
				kept = append(kept, rays[i])
			}
			rays = dedupeRays(kept)
			continue
		}
		neg := make([]ddRay, 0, nNeg)
		zero := make([]ddRay, 0, nZero)
		pos := make([]ddRay, 0, nPos)
		for i := range rays {
			switch signs[i] {
			case -1:
				neg = append(neg, rays[i])
			case 0:
				rays[i].tight.set(mi)
				zero = append(zero, rays[i])
			case 1:
				pos = append(pos, rays[i])
			}
		}
		next := make([]ddRay, 0, nNeg+nZero+nPos)
		next = append(next, neg...)
		next = append(next, zero...)
		// Combine adjacent (pos, neg) pairs into new hyperplane rays.
		var commonScratch []int
		for pi := range pos {
			for ni := range neg {
				ok, common := adjacent(&pos[pi], &neg[ni], dys, d, len(lineality), commonScratch[:0])
				commonScratch = common
				if !ok {
					continue
				}
				// Tight at the new ray: indices tight at BOTH parents, plus mi.
				tight := newBitset(len(ys))
				for w := range tight {
					tight[w] = pos[pi].tight[w] & neg[ni].tight[w]
				}
				tight.set(mi)
				w, ok := combineRays(&pos[pi], &neg[ni], y, tight)
				if !ok {
					continue
				}
				next = append(next, w)
				if len(next) > ddMaxRays {
					return nil, fmt.Errorf("cone: double description exceeded %d rays", ddMaxRays)
				}
			}
		}
		rays = dedupeRays(next)
	}

	if len(lineality) != 0 {
		return nil, fmt.Errorf("cone: dual cone not pointed (generators do not span, internal error)")
	}

	// Final minimality pass: drop any ray in the conic hull of the others.
	vecs := make([]exact.Vec, len(rays))
	for i := range rays {
		vecs[i] = rays[i].vec()
	}
	var out []exact.Vec
	ws := simplex.NewWorkspace() // one tableau for the whole minimality pass
	for i, v := range vecs {
		others := make([]exact.Vec, 0, len(vecs)-1+len(out))
		others = append(others, out...)
		others = append(others, vecs[i+1:]...)
		if !inConicHull(ws, v, others) {
			out = append(out, v)
		}
	}
	return out, nil
}

// adjacent implements the algebraic (rank-based) adjacency test: extreme
// rays p and n of a cone with lineality dimension lin in ℝ^d are adjacent
// iff the constraints tight at both have rank ≥ d − lin − 2. The bitset
// AND+popcount pre-test rejects most pairs without touching any rational
// arithmetic; the rank test never rejects a truly adjacent pair even when
// the working set carries redundant rays, so no facet is ever lost —
// spurious combinations are removed by the final LP minimality pass.
// common is a reusable index scratch, returned for the caller to recycle.
func adjacent(p, n *ddRay, ys []ddY, d, lin int, common []int) (bool, []int) {
	need := d - lin - 2
	if need <= 0 {
		return true, common
	}
	if andCount(p.tight, n.tight) < need {
		return false, common
	}
	common = appendAnd(p.tight, n.tight, common)
	rows := make([]exact.Vec, len(common))
	for i, k := range common {
		rows[i] = ys[k].v
	}
	return len(exact.RowSpaceBasis(rows)) >= need, common
}

func dedupeRays(rs []ddRay) []ddRay {
	seen := make(map[string]int, len(rs))
	out := make([]ddRay, 0, len(rs))
	for i := range rs {
		k := rs[i].key()
		if j, dup := seen[k]; dup {
			// Merge tight sets (same geometric ray discovered twice).
			out[j].tight.or(rs[i].tight)
			continue
		}
		seen[k] = len(out)
		out = append(out, rs[i])
	}
	return out
}
