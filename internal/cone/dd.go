package cone

import (
	"fmt"
	"math/big"

	"repro/internal/exact"
	"repro/internal/simplex"
)

// ddRay is one ray in the double-description state. tight records which
// processed inequality indices are tight (=0) at the ray, driving the
// combinatorial adjacency test.
type ddRay struct {
	v     exact.Vec
	tight map[int]bool
}

// ddMaxRays bounds intermediate double-description growth.
const ddMaxRays = 200000

// dualExtremeRays computes the extreme rays of the dual cone
//
//	D = { a ∈ ℝ^d : a·y ≤ 0 for every y in ys }
//
// with the double description (Motzkin) method over exact rationals.
//
// Preconditions: the ys span ℝ^d (guaranteed by the caller, which works in
// row-space coordinates), so D is pointed and the final state carries no
// lineality. The returned rays are GCD-normalised and minimal (each verified
// non-redundant by LP), and are exactly the facet normals of cone(ys).
func dualExtremeRays(ys []exact.Vec, d int) ([]exact.Vec, error) {
	if d == 0 {
		return nil, nil
	}

	// State: lineality basis L and rays R, all satisfying the inequalities
	// processed so far.
	var lineality []exact.Vec
	for i := 0; i < d; i++ {
		l := exact.NewVec(d)
		l[i].SetInt64(1)
		lineality = append(lineality, l)
	}
	var rays []ddRay

	for mi, y := range ys {
		// 1. If some lineality direction violates the hyperplane, pivot it
		// out: it becomes the unique ray strictly inside the half-space and
		// everything else is projected onto the hyperplane a·y = 0.
		pivot := -1
		for li, l := range lineality {
			if l.Dot(y).Sign() != 0 {
				pivot = li
				break
			}
		}
		if pivot >= 0 {
			l0 := lineality[pivot]
			lineality = append(lineality[:pivot], lineality[pivot+1:]...)
			dot0 := l0.Dot(y)
			// Scale l0 so that l0·y = -1 (strictly feasible direction).
			scale := new(big.Rat).Inv(dot0)
			scale.Neg(scale)
			l0 = l0.Scale(scale)
			// Project remaining lineality and rays onto the hyperplane:
			// x' = x + (x·y)·l0  ⇒  x'·y = x·y + (x·y)(l0·y) = 0.
			for i, l := range lineality {
				proj := l.Clone()
				proj.AddScaled(l.Dot(y), l0)
				lineality[i] = proj
			}
			for i := range rays {
				proj := rays[i].v.Clone()
				proj.AddScaled(rays[i].v.Dot(y), l0)
				rays[i].v = proj.NormalizeIntegral()
				rays[i].tight[mi] = true
			}
			// l0 came from the lineality space, so it satisfies every
			// previously processed constraint with equality and the new one
			// strictly.
			l0tight := make(map[int]bool, mi)
			for k := 0; k < mi; k++ {
				l0tight[k] = true
			}
			rays = append(rays, ddRay{v: l0.NormalizeIntegral(), tight: l0tight})
			continue
		}

		// 2. Lineality is entirely on the hyperplane; split rays by sign.
		var neg, zero, pos []ddRay
		for _, r := range rays {
			switch r.v.Dot(y).Sign() {
			case -1:
				neg = append(neg, r)
			case 0:
				r.tight[mi] = true
				zero = append(zero, r)
			case 1:
				pos = append(pos, r)
			}
		}
		if len(pos) == 0 {
			rays = dedupeRays(append(neg, zero...))
			continue
		}
		next := append([]ddRay{}, neg...)
		next = append(next, zero...)
		// Combine adjacent (pos, neg) pairs into new hyperplane rays.
		for _, p := range pos {
			for _, n := range neg {
				if !adjacent(p, n, ys, d, len(lineality)) {
					continue
				}
				// w = (p·y)·n − (n·y)·p lies on the hyperplane and in the cone.
				pd := p.v.Dot(y)
				nd := n.v.Dot(y)
				w := n.v.Scale(pd)
				negnd := new(big.Rat).Neg(nd)
				w.AddScaled(negnd, p.v)
				w = w.NormalizeIntegral()
				if w.IsZero() {
					continue
				}
				t := map[int]bool{mi: true}
				for k := range p.tight {
					if n.tight[k] {
						t[k] = true
					}
				}
				next = append(next, ddRay{v: w, tight: t})
				if len(next) > ddMaxRays {
					return nil, fmt.Errorf("cone: double description exceeded %d rays", ddMaxRays)
				}
			}
		}
		rays = dedupeRays(next)
	}

	if len(lineality) != 0 {
		return nil, fmt.Errorf("cone: dual cone not pointed (generators do not span, internal error)")
	}

	// Final minimality pass: drop any ray in the conic hull of the others.
	vecs := make([]exact.Vec, len(rays))
	for i, r := range rays {
		vecs[i] = r.v
	}
	var out []exact.Vec
	ws := simplex.NewWorkspace() // one tableau for the whole minimality pass
	for i, v := range vecs {
		others := make([]exact.Vec, 0, len(vecs)-1+len(out))
		others = append(others, out...)
		others = append(others, vecs[i+1:]...)
		if !inConicHull(ws, v, others) {
			out = append(out, v)
		}
	}
	return out, nil
}

// adjacent implements the algebraic (rank-based) adjacency test: extreme
// rays p and n of a cone with lineality dimension lin in ℝ^d are adjacent
// iff the constraints tight at both have rank ≥ d − lin − 2. The rank test
// never rejects a truly adjacent pair even when the working set carries
// redundant rays, so no facet is ever lost; spurious combinations are
// removed by the final LP minimality pass.
func adjacent(p, n ddRay, ys []exact.Vec, d, lin int) bool {
	need := d - lin - 2
	if need <= 0 {
		return true
	}
	var rows []exact.Vec
	for k := range p.tight {
		if n.tight[k] {
			rows = append(rows, ys[k])
		}
	}
	if len(rows) < need {
		return false
	}
	return len(exact.RowSpaceBasis(rows)) >= need
}

func dedupeRays(rs []ddRay) []ddRay {
	seen := map[string]int{}
	out := make([]ddRay, 0, len(rs))
	for _, r := range rs {
		k := r.v.Key()
		if i, dup := seen[k]; dup {
			// Merge tight sets (same geometric ray discovered twice).
			for idx := range r.tight {
				out[i].tight[idx] = true
			}
			continue
		}
		seen[k] = len(out)
		out = append(out, r)
	}
	return out
}
