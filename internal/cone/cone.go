// Package cone implements model cones (paper §3) and model-constraint
// deduction (paper §6).
//
// The model cone K_D of a μDD D is the set of all HEC value combinations
// producible by non-negative flows of micro-ops over D's μpaths:
//
//	K_D = { Σ_p S(p)·f(p) : f(p) ≥ 0 }
//
// By the Minkowski–Weyl theorem, K_D has a dual H-representation as a
// finite set of model constraints (equalities and inequalities). The paper
// derives it with a custom conic-hull procedure on top of a convex-hull
// solver; we compute the identical object exactly over ℚ with the double
// description method applied to the dual cone: the facet normals of
// cone(S) are precisely the extreme rays of {a : a·s ≤ 0 ∀ s ∈ S}.
//
// The deduction pipeline mirrors §6:
//  1. normalise signatures by their GCD and deduplicate;
//  2. Gaussian elimination identifies equality constraints (the orthogonal
//     complement of the signatures' span);
//  3. signatures interior to the cone are removed using linear programming;
//  4. the conic hull's facets are computed (double description on the dual)
//     and emitted as inequality constraints.
package cone

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
	"sync"

	"repro/internal/counters"
	"repro/internal/exact"
	"repro/internal/simplex"
)

// Rel distinguishes equality from inequality model constraints.
type Rel int

// Constraint relations: Coeffs·v ≤ 0 or Coeffs·v = 0.
const (
	LEZero Rel = iota
	EQZero
)

// Constraint is one model constraint a·v REL 0 over the counter set.
type Constraint struct {
	Set    *counters.Set
	Coeffs exact.Vec
	Rel    Rel
}

// Eval returns a·v for a float-valued counter vector aligned with the
// constraint's set.
func (c Constraint) Eval(v []float64) float64 {
	sum := 0.0
	for i, a := range c.Coeffs {
		f, _ := a.Float64()
		sum += f * v[i]
	}
	return sum
}

// SatisfiedBy reports whether the exact vector v satisfies the constraint.
func (c Constraint) SatisfiedBy(v exact.Vec) bool {
	d := c.Coeffs.Dot(v)
	if c.Rel == EQZero {
		return d.Sign() == 0
	}
	return d.Sign() <= 0
}

// String renders the constraint with negative terms moved to the right-hand
// side, matching the paper's presentation, e.g.
// "load.pde$_miss <= load.causes_walk".
func (c Constraint) String() string {
	var lhs, rhs []string
	term := func(coeff *big.Rat, ev counters.Event) string {
		abs := new(big.Rat).Abs(coeff)
		if abs.Cmp(big.NewRat(1, 1)) == 0 {
			return string(ev)
		}
		return abs.RatString() + "*" + string(ev)
	}
	for i, a := range c.Coeffs {
		switch a.Sign() {
		case 1:
			lhs = append(lhs, term(a, c.Set.At(i)))
		case -1:
			rhs = append(rhs, term(a, c.Set.At(i)))
		}
	}
	if len(lhs) == 0 {
		lhs = []string{"0"}
	}
	if len(rhs) == 0 {
		rhs = []string{"0"}
	}
	rel := "<="
	if c.Rel == EQZero {
		rel = "="
	}
	return strings.Join(lhs, " + ") + " " + rel + " " + strings.Join(rhs, " + ")
}

// Cone is a model cone in V-representation (generators = μpath counter
// signatures), with lazy exact H-representation.
type Cone struct {
	Set        *counters.Set
	Generators []exact.Vec // normalised, deduplicated, non-zero

	hOnce sync.Once // guards the deduction: concurrent first callers share one run
	hRep  *HRep     // cached constraint system
	hErr  error

	// gen64 caches the generators' int64 kernel image (generators are
	// GCD-normalised integer vectors, so they virtually always fit); nil
	// rows mark generators too wide for the kernel. Implies runs its dot
	// products on this cache instead of big.Rat.
	gen64Once sync.Once
	gen64     [][]int64
}

// generators64 returns (building once) the int64 image of the generators.
func (c *Cone) generators64() [][]int64 {
	c.gen64Once.Do(func() {
		c.gen64 = make([][]int64, len(c.Generators))
		for i, g := range c.Generators {
			if v64, ok := exact.Vec64FromVec(g); ok && v64.Den == 1 {
				c.gen64[i] = v64.Num
			}
		}
	})
	return c.gen64
}

// HRep is the H-representation of a model cone: the complete set of model
// constraints implied by a μDD.
type HRep struct {
	Equalities   []Constraint
	Inequalities []Constraint
}

// All returns equalities followed by inequalities.
func (h *HRep) All() []Constraint {
	out := make([]Constraint, 0, len(h.Equalities)+len(h.Inequalities))
	out = append(out, h.Equalities...)
	out = append(out, h.Inequalities...)
	return out
}

// New builds a cone over set from raw signatures: signatures are GCD-
// normalised, deduplicated, and zero signatures dropped (they generate
// nothing).
func New(set *counters.Set, signatures []exact.Vec) *Cone {
	c := &Cone{Set: set}
	seen := map[string]bool{}
	for _, s := range signatures {
		if len(s) != set.Len() {
			panic(fmt.Sprintf("cone: signature width %d != set width %d", len(s), set.Len()))
		}
		n := s.NormalizeIntegral()
		if n.IsZero() {
			continue
		}
		k := n.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		c.Generators = append(c.Generators, n)
	}
	return c
}

// Dim returns the ambient dimension (number of counters).
func (c *Cone) Dim() int { return c.Set.Len() }

// Contains reports whether v lies in the cone, i.e. whether non-negative
// flows f with Σ f_i g_i = v exist (solved by phase-1 simplex). One-off
// convenience; loops (SubsetOf, constraint deduction) share a workspace
// through containsWS so the rational tableau is built once.
func (c *Cone) Contains(v exact.Vec) bool {
	return c.containsWS(simplex.NewWorkspace(), v)
}

// containsWS is Contains on a caller-held workspace: the membership LP is
// rebuilt into the workspace's reusable problem storage, so a loop of
// membership tests stops allocating tableaux.
func (c *Cone) containsWS(ws *simplex.Workspace, v exact.Vec) bool {
	p := ws.Prepare(len(c.Generators))
	for i := 0; i < c.Set.Len(); i++ {
		row, rhs := p.GrowConstraint(simplex.EQ)
		for j, g := range c.Generators {
			row[j].Set(g[i])
		}
		rhs.Set(v[i])
	}
	return ws.SolveStatus(p) == simplex.Optimal
}

// ContainsFloat is Contains for float64 vectors (converted exactly).
func (c *Cone) ContainsFloat(v []float64) bool {
	return c.Contains(exact.VecFromFloats(v))
}

// EssentialGenerators returns the generators that are not redundant, i.e.
// those not expressible as conic combinations of the remaining generators.
// This is the paper's LP-based interior-signature pruning step.
func (c *Cone) EssentialGenerators() []exact.Vec {
	gens := make([]exact.Vec, len(c.Generators))
	copy(gens, c.Generators)
	// Iterate until fixpoint is unnecessary: removing a redundant generator
	// keeps others' redundancy status, as cone(G \ {g}) = cone(G) when g is
	// redundant. One pass with progressive removal is sound.
	out := make([]exact.Vec, 0, len(gens))
	remaining := make([]exact.Vec, len(gens))
	copy(remaining, gens)
	ws := simplex.NewWorkspace() // one tableau for the whole pruning loop
	for i := 0; i < len(remaining); i++ {
		g := remaining[i]
		others := make([]exact.Vec, 0, len(remaining)-1+len(out))
		others = append(others, out...)
		others = append(others, remaining[i+1:]...)
		if !inConicHull(ws, g, others) {
			out = append(out, g)
		}
	}
	return out
}

func inConicHull(ws *simplex.Workspace, v exact.Vec, gens []exact.Vec) bool {
	if len(gens) == 0 {
		return v.IsZero()
	}
	p := ws.Prepare(len(gens))
	for i := range v {
		row, rhs := p.GrowConstraint(simplex.EQ)
		for j, g := range gens {
			row[j].Set(g[i])
		}
		rhs.Set(v[i])
	}
	return ws.SolveStatus(p) == simplex.Optimal
}

// Constraints computes (and caches) the complete H-representation of the
// cone: equality constraints spanning the orthogonal complement of the
// generators, plus the facet inequalities of the conic hull. Safe for
// concurrent use: first callers racing on an undeduced cone (the service
// layer's concurrent requests) share a single deduction.
func (c *Cone) Constraints() (*HRep, error) {
	c.hOnce.Do(func() { c.hRep, c.hErr = c.buildConstraints() })
	return c.hRep, c.hErr
}

func (c *Cone) buildConstraints() (*HRep, error) {
	n := c.Set.Len()
	h := &HRep{}

	// Step 2 (§6): equality constraints from Gaussian elimination — the
	// null space of the generator matrix read as rows.
	for _, e := range exact.NullSpaceBasis(c.Generators, n) {
		h.Equalities = append(h.Equalities, Constraint{Set: c.Set, Coeffs: canonicalSign(e), Rel: EQZero})
	}

	if len(c.Generators) == 0 {
		// The trivial cone {0}: x = 0 componentwise, already captured by the
		// n equality constraints above.
		return h, nil
	}

	// Step 3 (§6): prune interior/redundant generators with LP.
	gens := c.EssentialGenerators()

	// Express generators in coordinates of a row-space basis B, making the
	// cone full-dimensional for the dual computation.
	basis := exact.RowSpaceBasis(gens)
	d := len(basis)
	ys := make([]exact.Vec, len(gens))
	for i, g := range gens {
		y, ok := exact.SolveInSpan(g, basis)
		if !ok {
			return nil, fmt.Errorf("cone: generator not in its own span (internal error)")
		}
		ys[i] = y
	}

	// Step 4 (§6): facets of cone(ys) = extreme rays of the dual cone
	// {a in R^d : a·y ≤ 0 for all y}, via exact double description.
	rays, err := dualExtremeRays(ys, d)
	if err != nil {
		return nil, err
	}

	// Lift each dual ray a back to counter space: find α in span(B) with
	// α·b_j = a_j, i.e. solve Gram·w = a, α = Σ w_k b_k.
	gram := exact.NewMat(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			gram.Data[i][j].Set(basis[i].Dot(basis[j]))
		}
	}
	for _, a := range rays {
		w, ok := solveLinear(gram, a)
		if !ok {
			return nil, fmt.Errorf("cone: singular Gram matrix (internal error)")
		}
		alpha := exact.NewVec(n)
		for k, bk := range basis {
			alpha.AddScaled(w[k], bk)
		}
		alpha = alpha.NormalizeIntegral()
		h.Inequalities = append(h.Inequalities, Constraint{Set: c.Set, Coeffs: alpha, Rel: LEZero})
	}
	sortConstraints(h.Inequalities)
	sortConstraints(h.Equalities)
	return h, nil
}

// Implies reports whether every generator of the cone satisfies k — i.e.
// whether the model implies constraint k (used to confirm refinements such
// as Figure 6d, where the refined μDD must no longer imply the violated
// constraint). The generator dot products run on the int64 kernel (the
// constraint's coefficients and the cached integer generators), falling
// back to exact big.Rat arithmetic per generator on overflow.
func (c *Cone) Implies(k Constraint) bool {
	k64, k64ok := exact.Vec64FromVec(k.Coeffs)
	gen64 := c.generators64()
	for i, g := range c.Generators {
		if k64ok && gen64[i] != nil {
			if s, ok := k64.IntDotSign(gen64[i]); ok {
				if k.Rel == EQZero {
					if s != 0 {
						return false
					}
				} else if s > 0 {
					return false
				}
				continue
			}
		}
		if !k.SatisfiedBy(g) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether c's cone is contained in d's cone (every
// generator of c lies in d). Used to verify that refinement steps expand
// the model cone (paper §5: "the model cones are verified to ensure that
// the model cone is expanded").
func (c *Cone) SubsetOf(d *Cone) bool {
	ws := simplex.NewWorkspace() // one tableau across all membership tests
	for _, g := range c.Generators {
		if !d.containsWS(ws, g) {
			return false
		}
	}
	return true
}

// canonicalSign flips a vector so that its first non-zero entry is positive,
// giving equality constraints a canonical orientation.
func canonicalSign(v exact.Vec) exact.Vec {
	for _, x := range v {
		if x.Sign() > 0 {
			return v
		}
		if x.Sign() < 0 {
			return v.Scale(big.NewRat(-1, 1))
		}
	}
	return v
}

func sortConstraints(cs []Constraint) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Coeffs.Key() < cs[j].Coeffs.Key() })
}

// solveLinear solves the square system A·x = b exactly.
func solveLinear(a *exact.Mat, b exact.Vec) (exact.Vec, bool) {
	n := a.Rows
	aug := exact.NewMat(n, n+1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			aug.Data[i][j].Set(a.Data[i][j])
		}
		aug.Data[i][n].Set(b[i])
	}
	pivots := aug.RowEchelon()
	if len(pivots) != n {
		return nil, false
	}
	x := exact.NewVec(n)
	for i, pc := range pivots {
		if pc >= n {
			return nil, false
		}
		x[pc].Set(aug.Data[i][n])
	}
	return x, true
}
