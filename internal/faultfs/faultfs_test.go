package faultfs

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

func openRW(t *testing.T, fsys FS, name string) File {
	t.Helper()
	f, err := fsys.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("OpenFile(%s): %v", name, err)
	}
	return f
}

func TestMemWriteSyncCrash(t *testing.T) {
	m := NewMem()
	f := openRW(t, m, "j")
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if _, err := f.Write([]byte("+volatile")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := m.Bytes("j"); string(got) != "durable+volatile" {
		t.Fatalf("Bytes = %q", got)
	}
	if got := m.Durable("j"); string(got) != "durable" {
		t.Fatalf("Durable = %q", got)
	}

	m.Crash(0)
	// The old handle is dead.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: err = %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash: err = %v, want ErrCrashed", err)
	}
	// Reopening sees only the synced prefix.
	g := openRW(t, m, "j")
	got, err := io.ReadAll(g)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(got) != "durable" {
		t.Fatalf("after crash file = %q, want %q", got, "durable")
	}
}

func TestMemCrashTornTail(t *testing.T) {
	m := NewMem()
	f := openRW(t, m, "j")
	if _, err := f.Write([]byte("base")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("unsynced-record")); err != nil {
		t.Fatal(err)
	}
	m.Crash(3)
	if got := m.Bytes("j"); string(got) != "baseuns" {
		t.Fatalf("after torn crash = %q, want %q", got, "baseuns")
	}
	// A tear larger than the volatile tail keeps everything.
	g := openRW(t, m, "j")
	if _, err := g.Seek(0, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("!!")); err != nil {
		t.Fatal(err)
	}
	m.Crash(100)
	if got := m.Bytes("j"); string(got) != "baseuns!!" {
		t.Fatalf("after big-tear crash = %q", got)
	}
}

func TestMemShortAndFailedWrites(t *testing.T) {
	m := NewMem()
	f := openRW(t, m, "j")

	m.ShortWrites(1)
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write err = %v", err)
	}
	if n != 4 {
		t.Fatalf("short write n = %d, want 4", n)
	}
	if got := m.Bytes("j"); string(got) != "abcd" {
		t.Fatalf("after short write = %q", got)
	}

	injected := errors.New("disk on fire")
	m.FailWrites(1, injected)
	if n, err := f.Write([]byte("zz")); err != injected || n != 0 {
		t.Fatalf("failed write = (%d, %v), want (0, injected)", n, err)
	}
	// Faults are consumed; the next write succeeds.
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("write after faults: %v", err)
	}
	if got := m.Bytes("j"); string(got) != "abcdok" {
		t.Fatalf("final = %q", got)
	}
}

func TestMemFailedSyncKeepsWatermark(t *testing.T) {
	m := NewMem()
	f := openRW(t, m, "j")
	if _, err := f.Write([]byte("record")); err != nil {
		t.Fatal(err)
	}
	m.FailSyncs(1, nil)
	if err := f.Sync(); err == nil {
		t.Fatal("injected sync error did not fire")
	}
	// The failed fsync must not have made anything durable.
	m.Crash(0)
	if got := m.Bytes("j"); len(got) != 0 {
		t.Fatalf("after failed-sync crash = %q, want empty", got)
	}
}

func TestMemTruncateAndSeek(t *testing.T) {
	m := NewMem()
	f := openRW(t, m, "j")
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if got := m.Bytes("j"); string(got) != "0123" {
		t.Fatalf("after truncate = %q", got)
	}
	// Truncate below the watermark pulls the watermark down too.
	m.Crash(0)
	if got := m.Bytes("j"); string(got) != "0123" {
		t.Fatalf("after truncate+crash = %q", got)
	}
	g := openRW(t, m, "j")
	if off, err := g.Seek(0, io.SeekEnd); err != nil || off != 4 {
		t.Fatalf("seek end = (%d, %v)", off, err)
	}
	if _, err := g.Write([]byte("45")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if n, err := g.ReadAt(buf, 2); err != nil || n != 3 {
		t.Fatalf("ReadAt = (%d, %v)", n, err)
	}
	if string(buf) != "234" {
		t.Fatalf("ReadAt = %q", buf)
	}
}

func TestMemOpenRenameRemove(t *testing.T) {
	m := NewMem()
	if _, err := m.OpenFile("missing", os.O_RDWR, 0o644); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	f := openRW(t, m, "a")
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("a", "b"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if m.Bytes("a") != nil {
		t.Fatal("a survived rename")
	}
	if string(m.Bytes("b")) != "x" {
		t.Fatal("b missing after rename")
	}
	if err := m.Remove("b"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := m.Remove("b"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("double remove: %v", err)
	}
	// O_TRUNC resets content and watermark.
	g := openRW(t, m, "c")
	if _, err := g.Write([]byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	h, err := m.OpenFile("c", os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := io.ReadAll(h); len(got) != 0 {
		t.Fatalf("after O_TRUNC = %q", got)
	}
}

// TestOSRoundTrip pins that the production passthrough satisfies the
// same contract the stores rely on (minus crash simulation).
func TestOSRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	var fsys FS = OS{}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hell")) {
		t.Fatalf("read back %q", got)
	}
	if f.Name() != path {
		t.Fatalf("Name = %q", f.Name())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	other := filepath.Join(t.TempDir(), "g")
	if err := fsys.Rename(path, other); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(other); err != nil {
		t.Fatal(err)
	}
}
