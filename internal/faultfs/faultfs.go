// Package faultfs is the filesystem seam under CounterPoint's durable
// stores (internal/jobstore's journal, internal/perfdb's verdict store):
// a minimal FS/File interface pair with a passthrough OS implementation
// for production and a crash-simulating in-memory implementation (Mem)
// for tests.
//
// The point of the seam is that durability claims are only testable if
// the test can take the power away. Mem models exactly the failure
// surface an append-only store cares about:
//
//   - a write/flush reaches the "OS buffer" (the file's volatile tail)
//     but is NOT durable until Sync succeeds;
//   - Crash simulates power loss: every byte since the last successful
//     Sync is gone, optionally except a torn prefix of the final write
//     (the partial page the disk happened to flush);
//   - short writes, write errors and fsync errors can be injected
//     deterministically, so retry/degradation paths are exercised on
//     demand instead of waiting for a flaky disk.
//
// Stores written against FS run unchanged on the real filesystem (OS)
// and under the fault harness, which is how the crash-consistency suites
// in internal/jobstore and internal/perfdb pin "no acked record is ever
// lost" without superuser tricks or real power cycles.
package faultfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the slice of *os.File the durable stores need: sequential and
// positional reads for load, appends for the write path, Sync for the
// commit barrier, Truncate for torn-tail repair.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.Seeker
	io.Closer
	// Sync makes every written byte durable (fsync). A store's record is
	// "committed" only once Sync has returned nil.
	Sync() error
	// Truncate cuts the file to size — the repair primitive for torn
	// tails.
	Truncate(size int64) error
	// Name returns the path the file was opened with.
	Name() string
}

// FS opens, renames and removes files. Implementations must allow a file
// to be reopened after a crash (a new process looking at what survived).
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath (the compaction
	// commit step).
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// OS is the production FS: a passthrough to package os.
type OS struct{}

// OpenFile opens a real file.
func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename renames a real file.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove removes a real file.
func (OS) Remove(name string) error { return os.Remove(name) }
