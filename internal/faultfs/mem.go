package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"sync"
)

// ErrCrashed is returned by operations on a file handle that was open
// when Mem.Crash was called — the process holding it is "dead" and must
// reopen the file to see what survived.
var ErrCrashed = errors.New("faultfs: file handle lost in crash")

// Mem is an in-memory FS with a volatile/durable split per file and
// deterministic fault injection. It is the test double for OS: writes
// land in a volatile tail, Sync advances the durable watermark, and
// Crash throws away everything above it (optionally keeping a torn
// prefix of the unsynced tail). All methods are safe for concurrent use.
type Mem struct {
	mu    sync.Mutex
	files map[string]*memData
	// gen counts crashes; handles opened in an older generation are dead.
	gen uint64

	failWrites  int
	writeErr    error
	shortWrites int
	failSyncs   int
	syncErr     error
}

// memData is one file's backing store. synced is the durable watermark:
// buf[:synced] survives a Crash, buf[synced:] is the volatile tail.
type memData struct {
	buf    []byte
	synced int
}

// NewMem returns an empty in-memory filesystem.
func NewMem() *Mem {
	return &Mem{files: make(map[string]*memData)}
}

// FailWrites makes the next n writes (across all files) fail with err
// before touching any bytes. A nil err defaults to a generic I/O error.
func (m *Mem) FailWrites(n int, err error) {
	if err == nil {
		err = errors.New("faultfs: injected write error")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failWrites = n
	m.writeErr = err
}

// ShortWrites makes the next n writes write only a prefix (about half,
// at least one byte) and return io.ErrShortWrite — the classic partial
// append a store must repair.
func (m *Mem) ShortWrites(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shortWrites = n
}

// FailSyncs makes the next n Sync calls fail with err without advancing
// the durable watermark. A nil err defaults to a generic fsync error.
func (m *Mem) FailSyncs(n int, err error) {
	if err == nil {
		err = errors.New("faultfs: injected fsync error")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failSyncs = n
	m.syncErr = err
}

// Heal clears every pending fault injection.
func (m *Mem) Heal() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failWrites, m.shortWrites, m.failSyncs = 0, 0, 0
}

// Crash simulates power loss: every file loses its volatile tail (bytes
// written since the last successful Sync), every open handle starts
// returning ErrCrashed, and the filesystem is usable again — like a
// reboot. tear keeps up to tear bytes of each file's unsynced tail, the
// partial sector the disk happened to flush, so loaders can be tested
// against torn final records.
func (m *Mem) Crash(tear int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range m.files {
		keep := d.synced
		if tear > 0 && keep+tear < len(d.buf) {
			keep += tear
		} else if tear > 0 {
			keep = len(d.buf)
		}
		d.buf = d.buf[:keep:keep]
		if d.synced > len(d.buf) {
			d.synced = len(d.buf)
		}
	}
	m.gen++
	m.failWrites, m.shortWrites, m.failSyncs = 0, 0, 0
}

// Durable returns a copy of the bytes of name that would survive a
// crash right now (everything up to the durable watermark).
func (m *Mem) Durable(name string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.files[name]
	if d == nil {
		return nil
	}
	return append([]byte(nil), d.buf[:d.synced]...)
}

// Bytes returns a copy of the full current contents of name, volatile
// tail included.
func (m *Mem) Bytes(name string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.files[name]
	if d == nil {
		return nil
	}
	return append([]byte(nil), d.buf...)
}

// OpenFile opens (or creates, with os.O_CREATE) an in-memory file.
func (m *Mem) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.files[name]
	if d == nil {
		if flag&os.O_CREATE == 0 {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		d = &memData{}
		m.files[name] = d
	}
	if flag&os.O_TRUNC != 0 {
		d.buf = nil
		d.synced = 0
	}
	return &memFile{fs: m, d: d, name: name, gen: m.gen}, nil
}

// Rename atomically replaces newpath with oldpath, carrying the durable
// watermark with it.
func (m *Mem) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.files[oldpath]
	if d == nil {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(m.files, oldpath)
	m.files[newpath] = d
	return nil
}

// Remove deletes a file.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.files[name] == nil {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// memFile is one open handle: a position into the shared memData, dead
// once the generation it was opened in has crashed.
type memFile struct {
	fs     *Mem
	d      *memData
	name   string
	pos    int64
	gen    uint64
	closed bool
}

func (f *memFile) check() error {
	if f.closed {
		return fs.ErrClosed
	}
	if f.gen != f.fs.gen {
		return ErrCrashed
	}
	return nil
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	if f.pos >= int64(len(f.d.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.d.buf[f.pos:])
	f.pos += int64(n)
	return n, nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	if off >= int64(len(f.d.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.d.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	if f.fs.failWrites > 0 {
		f.fs.failWrites--
		return 0, f.fs.writeErr
	}
	n := len(p)
	var werr error
	if f.fs.shortWrites > 0 && n > 0 {
		f.fs.shortWrites--
		n = n / 2
		if n == 0 {
			n = 1
		}
		werr = io.ErrShortWrite
	}
	end := f.pos + int64(n)
	if end > int64(len(f.d.buf)) {
		grown := make([]byte, end)
		copy(grown, f.d.buf)
		f.d.buf = grown
	}
	copy(f.d.buf[f.pos:end], p[:n])
	f.pos = end
	return n, werr
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	switch whence {
	case io.SeekStart:
		f.pos = offset
	case io.SeekCurrent:
		f.pos += offset
	case io.SeekEnd:
		f.pos = int64(len(f.d.buf)) + offset
	default:
		return 0, errors.New("faultfs: bad whence")
	}
	if f.pos < 0 {
		f.pos = 0
		return 0, errors.New("faultfs: negative seek")
	}
	return f.pos, nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return err
	}
	if f.fs.failSyncs > 0 {
		f.fs.failSyncs--
		return f.fs.syncErr
	}
	f.d.synced = len(f.d.buf)
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return err
	}
	if size < 0 || size > int64(len(f.d.buf)) {
		if size < 0 {
			return errors.New("faultfs: negative truncate")
		}
		return nil
	}
	f.d.buf = f.d.buf[:size:size]
	if f.d.synced > int(size) {
		f.d.synced = int(size)
	}
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return fs.ErrClosed
	}
	f.closed = true
	return nil
}

func (f *memFile) Name() string { return f.name }
