// Package multiplex simulates hardware event counter multiplexing — the
// mechanism by which perf time-shares N logical counters over K physical
// counters (typically 4–8 on x86-64) and the dominant noise source in HEC
// measurements (paper §1, Figure 1c).
//
// Within each sample interval the kernel rotates which K logical events are
// programmed. A counter scheduled for s of the interval's S scheduler
// slices observes only those slices and is linearly extrapolated:
//
//	reported = observed × S / s
//
// Extrapolation is exact for perfectly steady workloads and noisy for
// bursty ones; the more logical counters are active, the fewer slices each
// gets and the larger the extrapolation error — reproducing Figure 1c's
// noise scaling. Because all counters ride the same workload phases, their
// errors are correlated, which is precisely the structure CounterPoint's
// correlated confidence regions exploit.
package multiplex

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/counters"
)

// Config parameterises the multiplexing scheduler.
type Config struct {
	// PhysicalCounters is K, the number of simultaneously programmable
	// counters (Haswell: 4 per thread, 8 with hyperthreading off).
	PhysicalCounters int
	// SlicesPerSample is S, the number of rotation quanta per reported
	// sample interval.
	SlicesPerSample int
	// RotationJitter randomises the rotation offset at each sample
	// boundary (seeded by JitterSeed). Real perf rotation timing drifts
	// against workload phases; without jitter a deterministic rotation can
	// resonate with periodic workloads.
	RotationJitter bool
	JitterSeed     int64
}

// DefaultConfig mirrors a Haswell with SMT disabled (8 programmable
// counters, as the paper's methodology requires) and perf's default 4 ms
// rotation inside a 100 ms sample.
func DefaultConfig() Config {
	return Config{PhysicalCounters: 8, SlicesPerSample: 25}
}

// Apply multiplexes a slice-granularity ground-truth observation. truth
// must contain numSamples × cfg.SlicesPerSample rows, each the counter
// deltas of one scheduler slice. The result has numSamples rows of
// extrapolated counter values — what perf would report.
func Apply(truth *counters.Observation, cfg Config) (*counters.Observation, error) {
	if cfg.PhysicalCounters <= 0 || cfg.SlicesPerSample <= 0 {
		return nil, fmt.Errorf("multiplex: non-positive config")
	}
	n := truth.Set.Len()
	s := cfg.SlicesPerSample
	if truth.Len() == 0 || truth.Len()%s != 0 {
		return nil, fmt.Errorf("multiplex: %d slices not divisible into samples of %d", truth.Len(), s)
	}
	k := cfg.PhysicalCounters
	out := counters.NewObservation(truth.Label, truth.Set)
	rotation := 0
	var rng *rand.Rand
	if cfg.RotationJitter {
		rng = rand.New(rand.NewSource(cfg.JitterSeed))
	}
	for base := 0; base < truth.Len(); base += s {
		if rng != nil {
			rotation = rng.Intn(n)
		}
		observed := make([]float64, n)
		slices := make([]int, n)
		for sl := 0; sl < s; sl++ {
			row := truth.Samples[base+sl]
			if k >= n {
				// No multiplexing needed: everything counts all the time.
				for c := 0; c < n; c++ {
					observed[c] += row[c]
					slices[c]++
				}
				continue
			}
			for j := 0; j < k; j++ {
				c := (rotation + j) % n
				observed[c] += row[c]
				slices[c]++
			}
			rotation = (rotation + k) % n
		}
		sample := make([]float64, n)
		for c := 0; c < n; c++ {
			if slices[c] == 0 {
				// Never scheduled this interval: perf reports zero with a
				// zero enabled-time; we conservatively report 0.
				continue
			}
			sample[c] = observed[c] * float64(s) / float64(slices[c])
		}
		out.Append(sample)
	}
	return out, nil
}

// NoiseSummary quantifies multiplexing noise for an observation: the mean,
// over counters with non-trivial activity, of each counter's coefficient
// of variation (σ/μ) across samples. Figure 1c plots this against the
// number of active counters.
func NoiseSummary(o *counters.Observation) float64 {
	if o.Len() < 2 {
		return 0
	}
	n := o.Set.Len()
	mean := o.Mean()
	total, used := 0.0, 0
	for c := 0; c < n; c++ {
		if mean[c] < 1 {
			continue
		}
		varc := 0.0
		for _, row := range o.Samples {
			d := row[c] - mean[c]
			varc += d * d
		}
		varc /= float64(o.Len() - 1)
		total += math.Sqrt(varc) / mean[c]
		used++
	}
	if used == 0 {
		return 0
	}
	return total / float64(used)
}
