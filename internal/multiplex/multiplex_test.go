package multiplex

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/counters"
)

// sliceObs builds a slice-granularity observation of samples×slices rows
// over n counters; value generates the per-slice delta for counter c at
// global slice index s.
func sliceObs(n, samples, slices int, value func(c, s int) float64) *counters.Observation {
	evs := make([]counters.Event, n)
	for i := range evs {
		evs[i] = counters.Event(string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	set := counters.NewSet(evs...)
	o := counters.NewObservation("synthetic", set)
	for s := 0; s < samples*slices; s++ {
		row := make([]float64, n)
		for c := 0; c < n; c++ {
			row[c] = value(c, s)
		}
		o.Append(row)
	}
	return o
}

func TestNoMultiplexingWhenEnoughCounters(t *testing.T) {
	truth := sliceObs(4, 3, 10, func(c, s int) float64 { return float64(c + 1) })
	got, err := Apply(truth, Config{PhysicalCounters: 8, SlicesPerSample: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("samples: %d", got.Len())
	}
	for _, row := range got.Samples {
		for c, v := range row {
			if v != float64(c+1)*10 {
				t.Fatalf("exact aggregation expected: %v", row)
			}
		}
	}
}

func TestSteadyWorkloadExtrapolatesExactly(t *testing.T) {
	// Perfectly steady per-slice rates extrapolate with zero error even
	// under heavy multiplexing.
	truth := sliceObs(12, 4, 24, func(c, s int) float64 { return 5 })
	got, err := Apply(truth, Config{PhysicalCounters: 4, SlicesPerSample: 24})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range got.Samples {
		for _, v := range row {
			if math.Abs(v-5*24) > 1e-9 {
				t.Fatalf("steady extrapolation should be exact: %v", row)
			}
		}
	}
}

func TestBurstyWorkloadIsNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bursty := func(c, s int) float64 {
		if rng.Float64() < 0.2 {
			return 40
		}
		return 1
	}
	truth := sliceObs(16, 30, 20, bursty)
	noisy, err := Apply(truth, Config{PhysicalCounters: 4, SlicesPerSample: 20})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Apply(truth, Config{PhysicalCounters: 16, SlicesPerSample: 20})
	if err != nil {
		t.Fatal(err)
	}
	if NoiseSummary(noisy) <= NoiseSummary(clean) {
		t.Fatalf("multiplexing should add noise: %g vs %g",
			NoiseSummary(noisy), NoiseSummary(clean))
	}
}

func TestNoiseGrowsWithCounters(t *testing.T) {
	// Figure 1c's shape: with fixed K, more active counters → more noise.
	mk := func(n int) float64 {
		rng := rand.New(rand.NewSource(7))
		truth := sliceObs(n, 40, 20, func(c, s int) float64 {
			if rng.Float64() < 0.3 {
				return 25
			}
			return 2
		})
		noisy, err := Apply(truth, Config{PhysicalCounters: 4, SlicesPerSample: 20})
		if err != nil {
			t.Fatal(err)
		}
		return NoiseSummary(noisy)
	}
	n8, n24 := mk(8), mk(24)
	if n24 <= n8 {
		t.Fatalf("noise should grow with counters: n8=%g n24=%g", n8, n24)
	}
}

func TestExtrapolationPreservesScaleOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := sliceObs(10, 50, 20, func(c, s int) float64 {
		return 10 + rng.Float64()
	})
	noisy, err := Apply(truth, Config{PhysicalCounters: 4, SlicesPerSample: 20})
	if err != nil {
		t.Fatal(err)
	}
	truthMean := 0.0
	for _, row := range truth.Samples {
		truthMean += row[0]
	}
	truthMean = truthMean * 20 / float64(truth.Len()) // per-sample scale
	m := noisy.Mean()
	if math.Abs(m[0]-truthMean) > 0.1*truthMean {
		t.Fatalf("extrapolated mean %g far from truth %g", m[0], truthMean)
	}
}

func TestApplyErrors(t *testing.T) {
	truth := sliceObs(4, 2, 10, func(c, s int) float64 { return 1 })
	if _, err := Apply(truth, Config{PhysicalCounters: 0, SlicesPerSample: 10}); err == nil {
		t.Fatal("zero physical counters should error")
	}
	if _, err := Apply(truth, Config{PhysicalCounters: 4, SlicesPerSample: 7}); err == nil {
		t.Fatal("non-divisible slices should error")
	}
}

func TestNoiseSummaryEdgeCases(t *testing.T) {
	set := counters.NewSet("x")
	o := counters.NewObservation("tiny", set)
	if NoiseSummary(o) != 0 {
		t.Fatal("empty observation has zero noise")
	}
	o.Append([]float64{0})
	o.Append([]float64{0})
	if NoiseSummary(o) != 0 {
		t.Fatal("all-zero counters contribute no noise")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.PhysicalCounters != 8 || cfg.SlicesPerSample != 25 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}
